// Sized-cache behavioral test: the ROADMAP's remaining bufpool item was
// that the flat DefaultCapacity trails the working set of paper-scale
// datasets, so large grids thrash the LRU. bufpool.CapacityFor sizes the
// cache from the dataset (or, sharded, from each partition) at load time;
// this test builds a dataset whose working set exceeds DefaultCapacity and
// proves the sized cache serves a warmed sweep without a single miss or
// eviction where the flat default keeps faulting.
package sae

import (
	"testing"

	"sae/internal/bufpool"
	"sae/internal/core"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/workload"
)

// thrashN's ~22.5K heap pages (plus index) exceed DefaultCapacity (16384),
// the smallest scale where the old flat default demonstrably thrashes.
const thrashN = 180_000

// sweep runs one full pass of narrow range queries covering the whole key
// domain; each query touches well under exec.ScanThreshold pages, so the
// scan-resistant admission path stays out of the way and every page goes
// through normal LRU admission.
func sweep(t *testing.T, sp *core.ServiceProvider) {
	t.Helper()
	const width = 11_000 // ~200 records, ~25 heap pages per query
	for lo := 0; lo < record.KeyDomain; lo += width {
		hi := lo + width - 1
		if hi >= record.KeyDomain {
			hi = record.KeyDomain - 1
		}
		if _, _, err := sp.Query(record.Range{Lo: record.Key(lo), Hi: record.Key(hi)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSizedCacheStopsThrashing(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 180K-record provider")
	}
	ds, err := workload.Generate(workload.UNF, thrashN, 314)
	if err != nil {
		t.Fatal(err)
	}
	build := func(pages int) *core.ServiceProvider {
		sp := core.NewServiceProvider(pagestore.NewMem())
		sp.ConfigureCache(pages, bufpool.ChargeAllAccesses)
		if err := sp.Load(ds.Records); err != nil {
			t.Fatal(err)
		}
		return sp
	}

	// Flat default: working set > capacity, so a warmed sequential sweep
	// still faults (the classic LRU sweep pathology).
	flat := build(bufpool.DefaultCapacity)
	sweep(t, flat) // warm
	warm := flat.CacheStats()
	sweep(t, flat)
	after := flat.CacheStats()
	flatMisses := after.Misses - warm.Misses
	if flatMisses == 0 {
		t.Fatalf("flat default did not thrash at n=%d; raise thrashN so the regression stays observable", thrashN)
	}

	// Sized from the dataset: the whole working set fits, so the second
	// sweep is all hits — no misses, no evictions.
	sized := build(bufpool.CapacityFor(thrashN))
	sweep(t, sized) // warm
	warm = sized.CacheStats()
	sweep(t, sized)
	after = sized.CacheStats()
	if d := after.Misses - warm.Misses; d != 0 {
		t.Fatalf("sized cache missed %d times on a warmed sweep (flat default: %d)", d, flatMisses)
	}
	if d := after.Evictions - warm.Evictions; d != 0 {
		t.Fatalf("sized cache evicted %d nodes on a warmed sweep", d)
	}
}
