// Sharded-query benchmarks: the payoff of horizontal partitioning. Under
// the paper's simulated I/O model every node access occupies a disk; a
// single deployment owns one disk, a sharded deployment owns one per
// shard, so aggregate verified-query throughput grows with the shard count
// until the host's real CPU (hashing, record copies) becomes the ceiling —
// on a multi-core host the scaling approaches linear. The benchmark runs
// the same driver as the saebench shard figure (BENCH_shard.json), so the
// two always measure the same thing:
//
//	go test -bench=ShardedQueries -benchtime=1x .
//	go run ./cmd/saebench -figure shard
package sae

import (
	"fmt"
	"testing"
	"time"

	"sae/internal/core"
	"sae/internal/experiments"
	"sae/internal/workload"
)

// shardBenchPerAccess is the paper's 10 ms node-access charge scaled ~67x
// down, matching experiments.DefaultShardConfig: heavy enough that the
// simulated disks dominate the real CPU, light enough for quick runs.
const shardBenchPerAccess = 150 * time.Microsecond

// shardBenchWorkers keeps every deployment's disks saturated.
const shardBenchWorkers = 32

// BenchmarkShardedQueries drives verified scatter-gather queries against
// sharded deployments of 1, 2, 4 and 8 shards over the same 100K-record
// dataset, charging each shard's node accesses to that shard's simulated
// disk. The queries/s metric is the aggregate verified throughput.
func BenchmarkShardedQueries(b *testing.B) {
	ds, err := workload.Generate(workload.UNF, benchN, 1)
	if err != nil {
		b.Fatalf("Generate: %v", err)
	}
	// Narrow queries (0.1% extent) keep per-query CPU small relative to
	// the simulated stall; see experiments.DefaultShardConfig.
	queries := workload.Queries(256, 0.001, 2)
	for _, shards := range []int{1, 2, 4, 8} {
		sys, err := core.NewShardedSystem(ds.Records, shards)
		if err != nil {
			b.Fatalf("NewShardedSystem(%d): %v", shards, err)
		}
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			disks := experiments.NewSimDisks(sys.Plan.Shards())
			elapsed, _, err := experiments.DriveSharded(sys, disks, queries, b.N, shardBenchWorkers, shardBenchPerAccess)
			if err != nil {
				b.Fatalf("DriveSharded: %v", err)
			}
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/s")
			}
		})
	}
}
