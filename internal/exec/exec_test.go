package exec

import (
	"testing"

	"sae/internal/pagestore"
)

func TestNilContextIsSafe(t *testing.T) {
	var c *Context
	c.AccountRead()
	c.AccountWrite()
	c.AccountAlloc()
	c.AccountFree()
	c.BeginScan()
	c.EndScan()
	if c.Scanning() {
		t.Fatal("nil context reports scanning")
	}
	if c.Stats() != (pagestore.Stats{}) {
		t.Fatal("nil context reports non-zero stats")
	}
}

func TestAccounting(t *testing.T) {
	c := NewContext()
	for i := 0; i < 3; i++ {
		c.AccountRead()
	}
	c.AccountWrite()
	c.AccountWrite()
	c.AccountAlloc()
	c.AccountFree()
	got := c.Stats()
	want := pagestore.Stats{Reads: 3, Writes: 2, Allocs: 1, Frees: 1}
	if got != want {
		t.Fatalf("Stats = %+v, want %+v", got, want)
	}
	if got.Accesses() != 5 {
		t.Fatalf("Accesses = %d, want 5", got.Accesses())
	}

	// Phase deltas work like the global counters did.
	mid := c.Stats()
	c.AccountRead()
	if d := c.Stats().Sub(mid); d.Reads != 1 || d.Writes != 0 {
		t.Fatalf("phase delta = %+v, want one read", d)
	}
}

func TestScanNesting(t *testing.T) {
	c := NewContext()
	if c.Scanning() {
		t.Fatal("fresh context scanning")
	}
	c.BeginScan()
	c.BeginScan()
	c.EndScan()
	if !c.Scanning() {
		t.Fatal("nested scan ended early")
	}
	c.EndScan()
	if c.Scanning() {
		t.Fatal("scan did not end")
	}
	c.EndScan() // underflow is a no-op
	if c.Scanning() {
		t.Fatal("underflowed EndScan re-opened the scan")
	}
}
