// Package exec defines the request-scoped execution context threaded through
// the storage stack: pagestore → bufpool → bptree/mbtree/xbtree/heapfile →
// core/tom → wire.
//
// The seed measured per-query costs as store.Stats() deltas around the call,
// which corrupts under concurrency: two queries in flight each observe the
// other's page accesses, so the whole system was effectively one query at a
// time. A Context instead carries its own access counters; every layer
// charges the context for the node accesses it performs on behalf of the
// request, and the global pagestore.Counting totals keep accumulating
// underneath exactly as before (its counters are atomics, so the merge of
// concurrent requests into the global totals is race-free). Per-query
// numbers come from the context and are exact no matter how many requests
// run in parallel.
//
// A Context belongs to one request on one goroutine: its counters are plain
// ints with no locking. All methods are nil-safe — a nil *Context is "no
// request-scoped accounting" and costs one predicted branch — so load-time
// paths (bulkloads, restores) simply pass nil.
//
// Besides accounting, the context carries a scan hint: a long range scan
// marks itself (BeginScan/EndScan) and the decoded-node cache skips LRU
// admission for the pages the scan faults in, so one big scan cannot evict
// the hot set (scan-resistant admission, as in production buffer pools).
package exec

import (
	"sync"

	"sae/internal/pagestore"
)

// ScanThreshold is the number of distinct pages a single traversal (a heap
// GetMany run, a B+-tree leaf-chain walk) may touch before it declares
// itself a scan via BeginScan: from then on the pages it faults in bypass
// LRU admission in the decoded-node cache. The first ScanThreshold pages
// are still admitted — short queries ARE the hot set — so only the long
// tail of a big scan is kept out.
const ScanThreshold = 64

// Context is the per-request execution state. Create one per query or
// update with NewContext; zero value is also ready.
type Context struct {
	stats pagestore.Stats
	// scan is a nesting depth: >0 while inside a declared scan section.
	scan int
}

// NewContext returns a fresh request context.
func NewContext() *Context { return &Context{} }

// ctxPool recycles Contexts across requests. A Context is tiny, but the
// burst serve loop creates one per query per burst; pooling keeps the
// steady-state allocation count of a burst at zero.
var ctxPool = sync.Pool{New: func() any { return &Context{} }}

// GetContext returns a zeroed Context from the pool. Pair with PutContext
// once the request's stats have been read out.
func GetContext() *Context {
	c := ctxPool.Get().(*Context)
	c.Reset()
	return c
}

// PutContext returns a Context to the pool. The caller must not touch it
// afterwards. Putting nil is a no-op.
func PutContext(c *Context) {
	if c != nil {
		ctxPool.Put(c)
	}
}

// Reset clears the context for reuse by a new request.
func (c *Context) Reset() {
	if c != nil {
		*c = Context{}
	}
}

// AccountRead charges one page read to the request.
func (c *Context) AccountRead() {
	if c != nil {
		c.stats.Reads++
	}
}

// AccountWrite charges one page write to the request.
func (c *Context) AccountWrite() {
	if c != nil {
		c.stats.Writes++
	}
}

// AccountAlloc charges one page allocation to the request.
func (c *Context) AccountAlloc() {
	if c != nil {
		c.stats.Allocs++
	}
}

// AccountFree charges one page free to the request.
func (c *Context) AccountFree() {
	if c != nil {
		c.stats.Frees++
	}
}

// Stats returns a snapshot of the request's counters (zero for nil).
// Phase costs are measured as deltas between snapshots, mirroring how the
// global counters were used before — but on state no other request touches.
func (c *Context) Stats() pagestore.Stats {
	if c == nil {
		return pagestore.Stats{}
	}
	return c.stats
}

// BeginScan marks the start of a long sequential scan. Sections nest; the
// hint stays up until every section has ended.
func (c *Context) BeginScan() {
	if c != nil {
		c.scan++
	}
}

// EndScan closes the innermost scan section.
func (c *Context) EndScan() {
	if c != nil && c.scan > 0 {
		c.scan--
	}
}

// Scanning reports whether the request is inside a scan section; the
// decoded-node cache bypasses LRU admission while it is.
func (c *Context) Scanning() bool {
	return c != nil && c.scan > 0
}

// Lane is the per-serve-lane execution scratch. A burst-mode server runs N
// independent lanes (one per GOMAXPROCS slot); each lane serves its bursts
// on a single goroutine, so everything hanging off a Lane is accessed
// without locks. The lane keeps a reusable set of request Contexts sized to
// the largest burst it has seen, so steady-state bursts allocate nothing.
type Lane struct {
	// ID is the lane's index in [0, NumLanes); lanes use it for shard
	// affinity (e.g. picking a bufpool shard or a stats slot).
	ID int

	ctxs []*Context
}

// NewLane returns an empty lane with the given index.
func NewLane(id int) *Lane { return &Lane{ID: id} }

// Contexts returns n reset request contexts owned by the lane. The slice
// and the contexts are valid until the next Contexts call; the lane grows
// its context set on demand and never shrinks it.
func (l *Lane) Contexts(n int) []*Context {
	for len(l.ctxs) < n {
		l.ctxs = append(l.ctxs, NewContext())
	}
	out := l.ctxs[:n]
	for _, c := range out {
		c.Reset()
	}
	return out
}

// ScanTracker applies the admission-cutoff policy for one traversal: the
// caller notes each distinct page as it advances, and once the traversal
// has crossed ScanThreshold pages the tracker opens a scan section on the
// context — exactly once. End (usually deferred) closes it. Keeping the
// trigger here means every traversal (heap GetMany runs, B+-tree and
// MB-Tree leaf chains) shares one cutoff policy.
type ScanTracker struct {
	ctx   *Context
	seen  int
	began bool
}

// TrackScan returns a tracker for one traversal under ctx. Always pair
// with a deferred End.
func TrackScan(ctx *Context) ScanTracker {
	return ScanTracker{ctx: ctx}
}

// NotePage records that the traversal advanced to another distinct page,
// opening the scan section when the threshold is crossed.
func (s *ScanTracker) NotePage() {
	s.seen++
	if s.seen == ScanThreshold+1 {
		s.began = true
		s.ctx.BeginScan()
	}
}

// End closes the scan section if this tracker opened one.
func (s *ScanTracker) End() {
	if s.began {
		s.began = false
		s.ctx.EndScan()
	}
}
