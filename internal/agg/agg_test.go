package agg

import (
	"math/rand"
	"testing"

	"sae/internal/record"
)

// foldKeys is the reference: fold keys one at a time.
func foldKeys(keys []record.Key) Agg {
	var a Agg
	for _, k := range keys {
		a = a.Add(k)
	}
	return a
}

func TestMonoidLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randAgg := func() Agg {
		n := rng.Intn(5)
		keys := make([]record.Key, n)
		for i := range keys {
			keys[i] = record.Key(rng.Uint32())
		}
		return foldKeys(keys)
	}
	for trial := 0; trial < 1000; trial++ {
		a, b, c := randAgg(), randAgg(), randAgg()
		if got := a.Merge(Agg{}); got != a {
			t.Fatalf("right identity: %v.Merge(empty) = %v", a, got)
		}
		if got := (Agg{}).Merge(a); got != a {
			t.Fatalf("left identity: empty.Merge(%v) = %v", a, got)
		}
		if a.Merge(b) != b.Merge(a) {
			t.Fatalf("commutativity: %v vs %v", a.Merge(b), b.Merge(a))
		}
		if a.Merge(b).Merge(c) != a.Merge(b.Merge(c)) {
			t.Fatalf("associativity: %v vs %v", a.Merge(b).Merge(c), a.Merge(b.Merge(c)))
		}
	}
}

func TestFoldMatchesOfKey(t *testing.T) {
	keys := []record.Key{7, 3, 3, 9, 1}
	a := foldKeys(keys)
	want := Agg{Count: 5, Sum: 23, Min: 1, Max: 9}
	if a != want {
		t.Fatalf("fold = %v, want %v", a, want)
	}
	if got := OfKey(3, 2); got != (Agg{Count: 2, Sum: 6, Min: 3, Max: 3}) {
		t.Fatalf("OfKey(3,2) = %v", got)
	}
	if !OfKey(3, 0).Empty() {
		t.Fatal("OfKey(k,0) must be empty")
	}
}

func TestEncodingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 1000; trial++ {
		a := Agg{
			Count: rng.Uint64(),
			Sum:   rng.Uint64(),
			Min:   record.Key(rng.Uint32()),
			Max:   record.Key(rng.Uint32()),
		}
		enc := a.AppendTo(nil)
		if len(enc) != Size {
			t.Fatalf("encoded %d bytes, want %d", len(enc), Size)
		}
		if back := FromBytes(enc); back != a {
			t.Fatalf("round trip: %v -> %v", a, back)
		}
	}
}

func TestNormalizeEmptyEncodesIdentically(t *testing.T) {
	// An empty aggregate reached via different merges must encode to the
	// same bytes after Normalize: tokens and wire frames compare bit for
	// bit.
	dirty := Agg{Count: 0, Sum: 0, Min: 42, Max: 7}
	if got, want := dirty.Normalize().AppendTo(nil), (Agg{}).AppendTo(nil); string(got) != string(want) {
		t.Fatalf("normalized empty encodings differ: %x vs %x", got, want)
	}
	if a := OfKey(5, 1); a.Normalize() != a {
		t.Fatal("Normalize must not disturb a non-empty aggregate")
	}
}

func TestTokenRoundTripAndVerify(t *testing.T) {
	q := record.Range{Lo: 10, Hi: 99}
	a := foldKeys([]record.Key{10, 50, 99})
	tok := TokenFor(q, a)

	enc := tok.AppendTo(nil)
	if len(enc) != TokenSize {
		t.Fatalf("token encoded %d bytes, want %d", len(enc), TokenSize)
	}
	back := TokenFromBytes(enc)
	if back != tok {
		t.Fatalf("token round trip: %v -> %v", tok, back)
	}
	if err := back.Verify(q, a); err != nil {
		t.Fatalf("honest verify: %v", err)
	}
}

func TestTokenVerifyRejectsTampering(t *testing.T) {
	q := record.Range{Lo: 10, Hi: 99}
	a := foldKeys([]record.Key{10, 50, 99})
	tok := TokenFor(q, a)

	// Wrong scalar against an honest token.
	bad := a
	bad.Sum++
	if err := tok.Verify(q, bad); err == nil {
		t.Fatal("inflated sum accepted")
	}
	// Honest scalar against a token whose aggregate was rewritten (tag no
	// longer binds).
	forged := tok
	forged.Agg.Count++
	if err := forged.Verify(q, forged.Agg); err == nil {
		t.Fatal("retagged-free forgery accepted")
	}
	// Token replayed for a different range.
	if err := tok.Verify(record.Range{Lo: 10, Hi: 100}, a); err == nil {
		t.Fatal("cross-range replay accepted")
	}
	// Empty-vs-normalized equivalence: a zero answer passes against an
	// empty token regardless of stale Min/Max bits.
	empty := TokenFor(q, Agg{})
	if err := empty.Verify(q, Agg{Min: 3, Max: 1}); err != nil {
		t.Fatalf("normalized empty answer rejected: %v", err)
	}
}
