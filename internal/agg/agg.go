// Package agg defines the (COUNT, SUM, MIN, MAX) aggregate annotation the
// authenticated-aggregation fast path stores in index internal nodes and
// ships over the wire.
//
// An Agg summarizes a multiset of search keys. It forms a commutative
// monoid under Merge, so per-subtree annotations compose bottom-up in the
// trees and per-shard partials compose left-to-right at the router/client:
// counts and sums add, mins and maxes take the extremum. The empty
// aggregate (Count == 0) is the identity.
//
// Aggregates are over the search key — the one numeric attribute every
// record carries — which is exactly what the paper's range machinery
// indexes; COUNT/SUM/AVG/MIN/MAX over any key range all derive from it
// (AVG = Sum/Count).
package agg

import (
	"encoding/binary"
	"fmt"

	"sae/internal/digest"
	"sae/internal/record"
)

// Size is the binary encoding size of an Agg: count 8, sum 8, min 4, max 4.
const Size = 24

// Agg is a (COUNT, SUM, MIN, MAX) summary of a multiset of search keys.
// The zero Agg is the empty aggregate; Min/Max are meaningful only when
// Count > 0.
type Agg struct {
	Count uint64
	Sum   uint64 // sum of keys; 2^32 keys of 2^32-1 still fit in 64 bits
	Min   record.Key
	Max   record.Key
}

// Empty reports whether the aggregate summarizes no keys.
func (a Agg) Empty() bool { return a.Count == 0 }

// OfKey returns the aggregate of n copies of key k (n == 0 is empty).
func OfKey(k record.Key, n uint64) Agg {
	if n == 0 {
		return Agg{}
	}
	return Agg{Count: n, Sum: n * uint64(k), Min: k, Max: k}
}

// Add folds one more copy of key k into a.
func (a Agg) Add(k record.Key) Agg { return a.Merge(OfKey(k, 1)) }

// Merge combines two aggregates over disjoint multisets.
func (a Agg) Merge(b Agg) Agg {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	out := Agg{Count: a.Count + b.Count, Sum: a.Sum + b.Sum, Min: a.Min, Max: a.Max}
	if b.Min < out.Min {
		out.Min = b.Min
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	return out
}

// AppendTo serializes a onto buf (Size bytes, big-endian).
func (a Agg) AppendTo(buf []byte) []byte {
	var b [Size]byte
	a.PutBytes(b[:])
	return append(buf, b[:]...)
}

// PutBytes writes the Size-byte encoding into buf.
func (a Agg) PutBytes(buf []byte) {
	binary.BigEndian.PutUint64(buf[0:8], a.Count)
	binary.BigEndian.PutUint64(buf[8:16], a.Sum)
	binary.BigEndian.PutUint32(buf[16:20], uint32(a.Min))
	binary.BigEndian.PutUint32(buf[20:24], uint32(a.Max))
}

// FromBytes decodes the Size-byte encoding.
func FromBytes(buf []byte) Agg {
	return Agg{
		Count: binary.BigEndian.Uint64(buf[0:8]),
		Sum:   binary.BigEndian.Uint64(buf[8:16]),
		Min:   record.Key(binary.BigEndian.Uint32(buf[16:20])),
		Max:   record.Key(binary.BigEndian.Uint32(buf[20:24])),
	}
}

// Normalize clears Min/Max on an empty aggregate so that any two encodings
// of "no keys" are bit-identical (decoders and mergers rely on Count, but
// tokens and wire frames compare bytes).
func (a Agg) Normalize() Agg {
	if a.Count == 0 {
		return Agg{}
	}
	return a
}

// String renders the aggregate for logs and errors.
func (a Agg) String() string {
	if a.Empty() {
		return "agg{empty}"
	}
	return fmt.Sprintf("agg{count=%d sum=%d min=%d max=%d}", a.Count, a.Sum, a.Min, a.Max)
}

// Token is the trusted entity's aggregate verification token: the
// aggregate it computed from its own annotated index, plus a tag binding
// the aggregate to the exact query range. The client checks the service
// provider's scalar against the token and recomputes the tag, exactly as
// it checks a range result against the XOR verification token — the trust
// argument is the same (the token travels the authenticated client↔TE
// path; see the README's "Verified aggregation" section).
type Token struct {
	Agg Agg
	Tag digest.Digest
}

// tagDomain domain-separates aggregate tags from every other digest use.
const tagDomain = "SAE-AGG-V1"

// TagFor computes the range-binding tag over (domain, q, a).
func TagFor(q record.Range, a Agg) digest.Digest {
	var b [len(tagDomain) + 8 + Size]byte
	copy(b[:], tagDomain)
	binary.BigEndian.PutUint32(b[len(tagDomain):], uint32(q.Lo))
	binary.BigEndian.PutUint32(b[len(tagDomain)+4:], uint32(q.Hi))
	a.Normalize().PutBytes(b[len(tagDomain)+8:])
	return digest.OfBytes(b[:])
}

// TokenFor builds the TE-side token for a query range.
func TokenFor(q record.Range, a Agg) Token {
	a = a.Normalize()
	return Token{Agg: a, Tag: TagFor(q, a)}
}

// TokenSize is the wire size of a Token.
const TokenSize = Size + digest.Size

// AppendTo serializes the token (aggregate, then tag).
func (t Token) AppendTo(buf []byte) []byte {
	buf = t.Agg.AppendTo(buf)
	return append(buf, t.Tag[:]...)
}

// TokenFromBytes decodes a serialized token.
func TokenFromBytes(buf []byte) Token {
	return Token{Agg: FromBytes(buf[:Size]), Tag: digest.FromBytes(buf[Size : Size+digest.Size])}
}

// Verify checks a claimed scalar answer against the token for range q: the
// tag must bind (q, token aggregate) and the scalar must equal the token's
// aggregate bit for bit.
func (t Token) Verify(q record.Range, got Agg) error {
	if t.Tag != TagFor(q, t.Agg.Normalize()) {
		return fmt.Errorf("agg: token tag does not bind range [%d, %d]", q.Lo, q.Hi)
	}
	if got.Normalize() != t.Agg.Normalize() {
		return fmt.Errorf("agg: answer %v contradicts trusted token %v", got, t.Agg)
	}
	return nil
}
