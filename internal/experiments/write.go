package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/exec"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/tom"
	"sae/internal/wal"
	"sae/internal/workload"
)

// Write experiment: the group-commit pipeline's numbers. A durable SAE
// deployment (checkpoint + WAL on the real filesystem) commits the same
// update load two ways — serially, one fsync and one two-party apply
// per update, and through the group committer, which coalesces
// concurrent writers into groups that pay ONE fsync, ONE lock pass per
// party and ONE digest dispatch each. The headline pair runs at
// GOMAXPROCS=1: group commit is a latency-amortization win, not a
// parallelism win, so it must show up on a single core. A procs sweep
// records how the grouped path scales when cores are added, and a TOM
// section prices the comparison system's per-update root re-sign
// against the batched one-sign-per-group path. Results land in
// BENCH_write.json via saebench -figure write.

// WriteConfig parameterizes the run.
type WriteConfig struct {
	// N is the seed dataset cardinality.
	N int
	// SerialUpdates is how many one-at-a-time durable commits the serial
	// baseline measures.
	SerialUpdates int
	// Writers and UpdatesPerWriter shape the grouped measurement:
	// Writers concurrent submitters each committing UpdatesPerWriter
	// single-record updates, coalesced by the committer.
	Writers          int
	UpdatesPerWriter int
	// MaxGroup caps the commit group size (0 = core.DefaultMaxGroup).
	MaxGroup int
	// TOMUpdates sizes the sign-amortization comparison; TOMBatch is the
	// ops-per-group it batches (and so the signs it saves per group).
	TOMUpdates int
	TOMBatch   int
	// Dir is where the durable directories live; empty means the current
	// directory, deliberately NOT os.TempDir — /tmp is often tmpfs,
	// where fsync is free and the serial baseline would look fast.
	Dir      string
	Dist     workload.Distribution
	Seed     int64
	Progress func(string)
}

// DefaultWriteConfig mirrors the committed BENCH_write.json run.
func DefaultWriteConfig() WriteConfig {
	return WriteConfig{
		N:                20_000,
		SerialUpdates:    400,
		Writers:          128,
		UpdatesPerWriter: 50,
		MaxGroup:         core.DefaultMaxGroup,
		TOMUpdates:       384,
		TOMBatch:         32,
		Dist:             workload.UNF,
		Seed:             1,
	}
}

// WriteProcsPoint is one GOMAXPROCS measurement of the grouped path.
type WriteProcsPoint struct {
	Procs         int     `json:"procs"`
	UpdatesPerSec float64 `json:"updatesPerSec"`
	AvgGroup      float64 `json:"avgGroupSize"`
}

// WriteResult is the machine-readable outcome.
type WriteResult struct {
	N          int  `json:"n"`
	Writers    int  `json:"writers"`
	MaxGroup   int  `json:"maxGroup"`
	SHANI      bool `json:"shaNI"`
	GOMAXPROCS int  `json:"gomaxprocs"`

	// Single-core headline: serial durable commits vs the group
	// committer under concurrent submitters, same directory flavor.
	SerialUpdatesPerSec float64 `json:"serialUpdatesPerSec"`
	GroupUpdatesPerSec  float64 `json:"groupUpdatesPerSec"`
	GroupCommitWin      float64 `json:"groupCommitWin"`
	// AvgGroupSize is ops/groups achieved by the grouped run; the win is
	// only meaningful when this is deep (the acceptance bar is >= 32).
	AvgGroupSize float64 `json:"avgGroupSize"`
	SerialSyncs  int64   `json:"serialWalSyncs"`
	GroupSyncs   int64   `json:"groupWalSyncs"`

	// Grouped-path scaling as cores are added.
	Procs []WriteProcsPoint `json:"procsSweep"`

	// TOM comparison: per-update root re-sign vs one sign per group.
	TOMSerialUpdatesPerSec float64 `json:"tomSerialUpdatesPerSec"`
	TOMBatchUpdatesPerSec  float64 `json:"tomBatchUpdatesPerSec"`
	TOMBatch               int     `json:"tomBatchSize"`
	SignAmortWin           float64 `json:"signAmortWin"`
}

// measureSerialWrites commits updates one at a time through a durable
// system: every update pays a full WAL fsync and both party applies.
func measureSerialWrites(cfg *WriteConfig, seed []record.Record) (float64, int64, error) {
	dir, err := os.MkdirTemp(cfg.Dir, "sae-write-serial-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	ds, err := core.OpenDurableSystem(dir, seed, 1)
	if err != nil {
		return 0, 0, err
	}
	defer ds.Close()
	t0 := time.Now()
	for i := 0; i < cfg.SerialUpdates; i++ {
		key := record.Key((i * 6151) % record.KeyDomain)
		if _, err := ds.Insert(key); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(t0)
	st := ds.Stats()
	if out, err := ds.Query(record.Range{Lo: 0, Hi: record.KeyDomain}); err != nil || out.VerifyErr != nil {
		return 0, 0, fmt.Errorf("serial run failed verification: %v / %v", err, out.VerifyErr)
	}
	return float64(cfg.SerialUpdates) / elapsed.Seconds(), st.Syncs, nil
}

// measureGroupedWrites commits Writers*UpdatesPerWriter updates through
// the group committer under concurrent single-record submitters and
// returns (updates/s, achieved ops-per-group, fsyncs).
func measureGroupedWrites(cfg *WriteConfig, seed []record.Record) (float64, float64, int64, error) {
	dir, err := os.MkdirTemp(cfg.Dir, "sae-write-group-")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	ds, err := core.OpenDurableSystem(dir, seed, cfg.MaxGroup)
	if err != nil {
		return 0, 0, 0, err
	}
	defer ds.Close()

	total := cfg.Writers * cfg.UpdatesPerWriter
	errs := make([]error, cfg.Writers)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.UpdatesPerWriter; i++ {
				key := record.Key(((w*cfg.UpdatesPerWriter + i) * 6151) % record.KeyDomain)
				if _, err := ds.Insert(key); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return 0, 0, 0, err
		}
	}
	st := ds.Stats()
	if out, err := ds.Query(record.Range{Lo: 0, Hi: record.KeyDomain}); err != nil || out.VerifyErr != nil {
		return 0, 0, 0, fmt.Errorf("grouped run failed verification: %v / %v", err, out.VerifyErr)
	}
	avgGroup := float64(st.Ops) / float64(st.Groups)
	return float64(total) / elapsed.Seconds(), avgGroup, st.Syncs, nil
}

// measureTOMWrites prices the comparison system's update path: serial
// re-signs the MB-tree root per update, batched signs once per
// TOMBatch-op group through Provider.ApplyBatchCtx.
func measureTOMWrites(cfg *WriteConfig, seed []record.Record) (float64, float64, error) {
	build := func() (*tom.Provider, *tom.Owner, error) {
		owner, err := tom.NewOwner()
		if err != nil {
			return nil, nil, err
		}
		p := tom.NewProvider(pagestore.NewMem())
		if err := p.Load(seed, owner); err != nil {
			return nil, nil, err
		}
		return p, owner, nil
	}
	recs := make([]record.Record, cfg.TOMUpdates)
	nextID := record.ID(10_000_000)
	for i := range recs {
		recs[i] = record.Synthesize(nextID+record.ID(i), record.Key((i*5081)%record.KeyDomain))
	}

	p, owner, err := build()
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	for i := range recs {
		if err := p.ApplyInsert(recs[i], owner); err != nil {
			return 0, 0, err
		}
	}
	serialQPS := float64(len(recs)) / time.Since(t0).Seconds()

	p, owner, err = build()
	if err != nil {
		return 0, 0, err
	}
	ctx := exec.NewContext()
	t0 = time.Now()
	for lo := 0; lo < len(recs); lo += cfg.TOMBatch {
		hi := lo + cfg.TOMBatch
		if hi > len(recs) {
			hi = len(recs)
		}
		ops := make([]wal.Op, 0, hi-lo)
		for i := lo; i < hi; i++ {
			ops = append(ops, wal.InsertOp(recs[i]))
		}
		if err := p.ApplyBatchCtx(ctx, ops, owner); err != nil {
			return 0, 0, err
		}
	}
	batchQPS := float64(len(recs)) / time.Since(t0).Seconds()
	return serialQPS, batchQPS, nil
}

// RunWrite measures the write pipeline end to end.
func RunWrite(cfg WriteConfig) (*WriteResult, error) {
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	if cfg.MaxGroup <= 0 {
		cfg.MaxGroup = core.DefaultMaxGroup
	}
	ds, err := workload.Generate(cfg.Dist, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &WriteResult{
		N:          cfg.N,
		Writers:    cfg.Writers,
		MaxGroup:   cfg.MaxGroup,
		SHANI:      digest.Accelerated,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		TOMBatch:   cfg.TOMBatch,
	}

	// Headline pair on one core: the win must come from amortization
	// (one fsync, one lock pass, one digest dispatch per group), not
	// from parallel apply.
	prev := runtime.GOMAXPROCS(1)
	progress("write: serial durable baseline (1 fsync per update, 1 core)")
	res.SerialUpdatesPerSec, res.SerialSyncs, err = measureSerialWrites(&cfg, ds.Records)
	if err != nil {
		runtime.GOMAXPROCS(prev)
		return nil, err
	}
	progress(fmt.Sprintf("write: group commit, %d concurrent writers (1 core)", cfg.Writers))
	res.GroupUpdatesPerSec, res.AvgGroupSize, res.GroupSyncs, err = measureGroupedWrites(&cfg, ds.Records)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		return nil, err
	}
	res.GroupCommitWin = res.GroupUpdatesPerSec / res.SerialUpdatesPerSec

	// Scaling sweep: the grouped path as cores are added.
	maxProcs := prev
	procCounts := []int{1}
	for k := 2; k <= maxProcs; k *= 2 {
		procCounts = append(procCounts, k)
	}
	if last := procCounts[len(procCounts)-1]; last != maxProcs {
		procCounts = append(procCounts, maxProcs)
	}
	for _, k := range procCounts {
		if k == 1 {
			res.Procs = append(res.Procs, WriteProcsPoint{
				Procs: 1, UpdatesPerSec: res.GroupUpdatesPerSec, AvgGroup: res.AvgGroupSize,
			})
			continue
		}
		progress(fmt.Sprintf("write: group commit at GOMAXPROCS=%d", k))
		p := runtime.GOMAXPROCS(k)
		qps, avg, _, err := measureGroupedWrites(&cfg, ds.Records)
		runtime.GOMAXPROCS(p)
		if err != nil {
			return nil, err
		}
		res.Procs = append(res.Procs, WriteProcsPoint{Procs: k, UpdatesPerSec: qps, AvgGroup: avg})
	}

	// TOM comparison: what batching buys when every group must end in an
	// RSA root re-sign.
	progress("write: TOM sign amortization (per-update vs per-group re-sign)")
	res.TOMSerialUpdatesPerSec, res.TOMBatchUpdatesPerSec, err = measureTOMWrites(&cfg, ds.Records)
	if err != nil {
		return nil, err
	}
	res.SignAmortWin = res.TOMBatchUpdatesPerSec / res.TOMSerialUpdatesPerSec
	return res, nil
}

// WriteWriteJSON emits the machine-readable result.
func WriteWriteJSON(w io.Writer, res *WriteResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
