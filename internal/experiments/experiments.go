// Package experiments regenerates every figure of the paper's evaluation
// (Figures 5-8): for each dataset distribution (UNF, SKW) and cardinality n,
// it outsources the same dataset under both SAE and TOM, runs the paper's
// query workload (100 uniform queries of 0.5% extent), and collects the
// communication, processing, verification and storage metrics.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"sae/internal/core"
	"sae/internal/costmodel"
	"sae/internal/tom"
	"sae/internal/workload"
)

// Config parameterizes a sweep.
type Config struct {
	Cardinalities []int
	Dists         []workload.Distribution
	NumQueries    int
	Extent        float64
	Seed          int64
	// Progress, if non-nil, receives one line per sweep step.
	Progress func(string)
}

// PaperScale is the paper's exact parameter grid: n from 100K to 1M, both
// distributions, 100 queries of 0.5% extent.
func PaperScale() Config {
	return Config{
		Cardinalities: []int{100_000, 250_000, 500_000, 750_000, 1_000_000},
		Dists:         []workload.Distribution{workload.UNF, workload.SKW},
		NumQueries:    100,
		Extent:        workload.DefaultExtent,
		Seed:          1,
	}
}

// QuickScale is a laptop-friendly sweep preserving the figures' shapes.
func QuickScale() Config {
	return Config{
		Cardinalities: []int{20_000, 50_000, 100_000},
		Dists:         []workload.Distribution{workload.UNF, workload.SKW},
		NumQueries:    50,
		Extent:        workload.DefaultExtent,
		Seed:          1,
	}
}

// Cell is the full set of measurements for one (distribution, n) grid point.
type Cell struct {
	Dist workload.Distribution
	N    int

	AvgResultSize float64

	// Figure 5: authentication bytes shipped per query.
	VTBytes    int     // SAE: constant 20
	AvgVOBytes float64 // TOM: grows with n

	// Figure 6: per-query processing (averages).
	SAESPIndex costmodel.Breakdown // B+-tree traversal + leaf scan
	SAESPFetch costmodel.Breakdown // dataset-file scan
	SAETE      costmodel.Breakdown // XB-Tree token generation
	TOMSPIndex costmodel.Breakdown // MB-Tree traversal + VO assembly
	TOMSPFetch costmodel.Breakdown

	// Figure 7: client verification CPU (averages).
	SAEClient costmodel.Breakdown
	TOMClient costmodel.Breakdown

	// Figure 8: storage.
	SAESPBytes int64
	TOMSPBytes int64
	TEBytes    int64
}

// SAESPTotal is the SP's full per-query cost under SAE.
func (c *Cell) SAESPTotal() costmodel.Breakdown { return c.SAESPIndex.Add(c.SAESPFetch) }

// TOMSPTotal is the SP's full per-query cost under TOM.
func (c *Cell) TOMSPTotal() costmodel.Breakdown { return c.TOMSPIndex.Add(c.TOMSPFetch) }

// IndexReduction is SAE's SP saving over TOM on the index component — the
// paper's 24-39% band.
func (c *Cell) IndexReduction() float64 {
	t := costmodel.Millis(c.TOMSPIndex.Total())
	if t == 0 {
		return 0
	}
	return 1 - costmodel.Millis(c.SAESPIndex.Total())/t
}

// TotalReduction is the saving including the (identical) dataset fetch.
func (c *Cell) TotalReduction() float64 {
	t := costmodel.Millis(c.TOMSPTotal().Total())
	if t == 0 {
		return 0
	}
	return 1 - costmodel.Millis(c.SAESPTotal().Total())/t
}

func (cfg *Config) progress(format string, args ...any) {
	if cfg.Progress != nil {
		cfg.Progress(fmt.Sprintf(format, args...))
	}
}

// Sweep measures every grid point. Systems are built and released one at a
// time to bound peak memory (a 1M-record dataset is ~0.5 GB per provider).
func Sweep(cfg Config) ([]*Cell, error) {
	var cells []*Cell
	for _, dist := range cfg.Dists {
		for _, n := range cfg.Cardinalities {
			cell, err := runCell(cfg, dist, n)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s n=%d: %w", dist, n, err)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

func runCell(cfg Config, dist workload.Distribution, n int) (*Cell, error) {
	cfg.progress("[%s n=%d] generating dataset", dist, n)
	ds, err := workload.Generate(dist, n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	queries := workload.Queries(cfg.NumQueries, cfg.Extent, cfg.Seed+int64(n))
	cell := &Cell{Dist: dist, N: n, VTBytes: core.VTSize}

	// --- SAE ---
	cfg.progress("[%s n=%d] building SAE system", dist, n)
	start := time.Now()
	sae, err := core.NewSystem(ds.Records)
	if err != nil {
		return nil, err
	}
	cfg.progress("[%s n=%d] SAE built in %v; running %d queries", dist, n, time.Since(start).Round(time.Millisecond), len(queries))
	var resultSum int
	for _, q := range queries {
		out, err := sae.Query(q)
		if err != nil {
			return nil, err
		}
		if out.VerifyErr != nil {
			return nil, fmt.Errorf("SAE verification failed for %v: %w", q, out.VerifyErr)
		}
		resultSum += len(out.Result)
		cell.SAESPIndex = cell.SAESPIndex.Add(out.SPCost.Index)
		cell.SAESPFetch = cell.SAESPFetch.Add(out.SPCost.Fetch)
		cell.SAETE = cell.SAETE.Add(out.TECost)
		cell.SAEClient = cell.SAEClient.Add(out.ClientCost)
	}
	nq := len(queries)
	cell.AvgResultSize = float64(resultSum) / float64(nq)
	cell.SAESPIndex = cell.SAESPIndex.Div(nq)
	cell.SAESPFetch = cell.SAESPFetch.Div(nq)
	cell.SAETE = cell.SAETE.Div(nq)
	cell.SAEClient = cell.SAEClient.Div(nq)
	cell.SAESPBytes = sae.SP.StorageBytes()
	cell.TEBytes = sae.TE.StorageBytes()
	sae = nil
	runtime.GC()

	// --- TOM ---
	cfg.progress("[%s n=%d] building TOM system", dist, n)
	start = time.Now()
	tomSys, err := tom.NewSystem(ds.Records)
	if err != nil {
		return nil, err
	}
	cfg.progress("[%s n=%d] TOM built in %v; running %d queries", dist, n, time.Since(start).Round(time.Millisecond), len(queries))
	var voBytes int64
	for _, q := range queries {
		out, err := tomSys.Query(q)
		if err != nil {
			return nil, err
		}
		if out.VerifyErr != nil {
			return nil, fmt.Errorf("TOM verification failed for %v: %w", q, out.VerifyErr)
		}
		voBytes += int64(out.VO.Size())
		cell.TOMSPIndex = cell.TOMSPIndex.Add(out.SPCost.Index)
		cell.TOMSPFetch = cell.TOMSPFetch.Add(out.SPCost.Fetch)
		cell.TOMClient = cell.TOMClient.Add(out.ClientCost)
	}
	cell.AvgVOBytes = float64(voBytes) / float64(nq)
	cell.TOMSPIndex = cell.TOMSPIndex.Div(nq)
	cell.TOMSPFetch = cell.TOMSPFetch.Div(nq)
	cell.TOMClient = cell.TOMClient.Div(nq)
	cell.TOMSPBytes = tomSys.Provider.StorageBytes()
	tomSys = nil
	runtime.GC()

	return cell, nil
}
