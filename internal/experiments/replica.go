package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/record"
	"sae/internal/replica"
	"sae/internal/router"
	"sae/internal/shard"
	"sae/internal/wire"
	"sae/internal/workload"
)

// Replica-tier experiment: the same sharded deployment served over real
// loopback TCP through the router, measured two ways — primaries alone
// versus primaries plus read replicas in every shard's endpoint set.
// Both paths verify every result (replicas answer bit-identically at
// the same generation stamp, so the client's XOR check needs no new
// trust); the within-run throughput ratio prices the replica
// indirection and is what the CI gate holds to >= 90%.

// ReplicaConfig parameterizes the replica-tier measurement.
type ReplicaConfig struct {
	N       int
	Shards  int
	// ReplicasPerShard read replicas are bootstrapped from each shard's
	// primary and join its routed endpoint set.
	ReplicasPerShard int
	Queries          int
	// Workers is the number of concurrent client goroutines; requests
	// pipeline over shared connections on both paths.
	Workers int
	// Extent is the query width as a fraction of the key domain.
	Extent   float64
	Dist     workload.Distribution
	Seed     int64
	Progress func(string)
}

// DefaultReplicaConfig mirrors the router-overhead geometry with two
// replicas per shard — the deployment shape the chaos smoke runs.
func DefaultReplicaConfig() ReplicaConfig {
	return ReplicaConfig{
		N:                100_000,
		Shards:           2,
		ReplicasPerShard: 2,
		Queries:          400,
		Workers:          8,
		Extent:           0.001,
		Dist:             workload.UNF,
		Seed:             1,
	}
}

// ReplicaResult is the machine-readable BENCH_replica.json payload.
type ReplicaResult struct {
	N                int  `json:"n"`
	Shards           int  `json:"shards"`
	ReplicasPerShard int  `json:"replicasPerShard"`
	Workers          int  `json:"workers"`
	Queries          int  `json:"queries"`
	GOMAXPROCS       int  `json:"gomaxprocs"`
	SHANI            bool `json:"shaNI"`
	// BaselineQPS is routed verified-query throughput against the
	// primaries alone; ReplicatedQPS the same workload with every
	// shard's replicas in the endpoint set.
	BaselineQPS   float64 `json:"baselineQueriesPerSec"`
	ReplicatedQPS float64 `json:"replicatedQueriesPerSec"`
	// ReplicatedRelative = ReplicatedQPS / BaselineQPS: the fraction of
	// primary-only throughput that survives spreading reads across the
	// replica set. Within-run, so comparable across machines; the CI
	// gate holds it to >= 0.9.
	ReplicatedRelative float64 `json:"replicatedRelative"`
	// Failovers counts router failovers during the replicated run — a
	// healthy run has none; nonzero means the measurement absorbed
	// retries and understates the steady state.
	Failovers uint64 `json:"failovers"`
}

// RunReplica serves a replicated sharded deployment on loopback and
// measures routed verified-query throughput with and without the
// replica tier.
func RunReplica(cfg ReplicaConfig) (ReplicaResult, error) {
	res := ReplicaResult{
		N: cfg.N, Shards: cfg.Shards, ReplicasPerShard: cfg.ReplicasPerShard,
		Workers: cfg.Workers, Queries: cfg.Queries,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SHANI:      digest.Accelerated,
	}
	if cfg.Progress != nil {
		cfg.Progress(fmt.Sprintf("replica tier: %d records, %d shards x %d replicas, %d workers...",
			cfg.N, cfg.Shards, cfg.ReplicasPerShard, cfg.Workers))
	}
	ds, err := workload.Generate(cfg.Dist, cfg.N, cfg.Seed)
	if err != nil {
		return res, err
	}
	plan := shard.PlanFor(ds.Records, cfg.Shards)
	parts := plan.Partition(ds.Records)

	var closers []interface{ Close() error }
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i].Close()
		}
	}()

	// One durable primary per shard: writes, generation stamps and the
	// replication feed on one address.
	primAddrs := make([]string, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		dir, err := os.MkdirTemp("", "sae-replica-bench-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		sys, err := core.OpenDurableSystem(dir, parts[i], 0)
		if err != nil {
			return res, err
		}
		closers = append(closers, sys)
		hub := replica.Attach(sys, 0)
		psrv, err := wire.ServePrimary("127.0.0.1:0", sys, hub, nil,
			wire.WithShardInfo(wire.ShardInfo{Index: i, Plan: plan}))
		if err != nil {
			return res, err
		}
		closers = append(closers, psrv)
		primAddrs[i] = psrv.Addr()
	}

	// Replicas bootstrap from their primary over the wire, exactly as
	// the saenet replica role does.
	replicaAddrs := make([][]string, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		for j := 0; j < cfg.ReplicasPerShard; j++ {
			rep, info, err := wire.BootstrapReplica(primAddrs[i])
			if err != nil {
				return res, fmt.Errorf("bootstrap shard %d replica %d: %w", i, j, err)
			}
			rsrv, err := wire.ServeReplica("127.0.0.1:0", rep, nil, wire.WithShardInfo(info))
			if err != nil {
				return res, err
			}
			closers = append(closers, rsrv)
			replicaAddrs[i] = append(replicaAddrs[i], rsrv.Addr())
		}
	}

	measure := func(replicas [][]string) (float64, uint64, error) {
		rt, err := router.New(router.Config{
			SPs: primAddrs, TEs: primAddrs, Replicas: replicas,
		})
		if err != nil {
			return 0, 0, err
		}
		defer rt.Close()
		if err := rt.Serve("127.0.0.1:0"); err != nil {
			return 0, 0, err
		}
		vc, err := wire.DialVerified(rt.Addr())
		if err != nil {
			return 0, 0, err
		}
		defer vc.Close()
		qs := workload.Queries(256, cfg.Extent, cfg.Seed+1)
		elapsed, err := driveWire(qs, cfg.Queries, cfg.Workers, func(q record.Range) ([]record.Record, error) {
			recs, _, err := vc.Query(q)
			return recs, err
		})
		if err != nil {
			return 0, 0, err
		}
		return float64(cfg.Queries) / elapsed.Seconds(), rt.Counters().Failovers, nil
	}

	if cfg.Progress != nil {
		cfg.Progress("replica tier: measuring primaries-only baseline...")
	}
	if res.BaselineQPS, _, err = measure(nil); err != nil {
		return res, fmt.Errorf("baseline drive: %w", err)
	}
	if cfg.Progress != nil {
		cfg.Progress("replica tier: measuring with replicas in every endpoint set...")
	}
	if res.ReplicatedQPS, res.Failovers, err = measure(replicaAddrs); err != nil {
		return res, fmt.Errorf("replicated drive: %w", err)
	}
	res.ReplicatedRelative = res.ReplicatedQPS / res.BaselineQPS
	return res, nil
}

// WriteReplicaJSON emits the machine-readable BENCH_replica.json
// payload.
func WriteReplicaJSON(w io.Writer, res ReplicaResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
