package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/wire"
	"sae/internal/workload"
)

// Burst experiment: the tentpole's numbers. One loopback SP serves the
// same small-query workload three ways — per-request (the PR 4 fast
// path: goroutine per frame, two write syscalls per response), burst
// (pipelined frames drained per read wakeup, served on per-core lanes,
// one vectored write per burst) and burst over a file-backed store with
// the mmap read path — and the client drives it with enough in-flight
// work to saturate the serve side either way. The sweep re-creates the
// server at each GOMAXPROCS value so the lane count follows, yielding
// queries/s, ns/record and scaling efficiency per lane count. Results
// land in BENCH_burst.json via saebench -figure burst.

// BurstConfig parameterizes the run.
type BurstConfig struct {
	// N is the dataset cardinality.
	N int
	// ResultRecords is the target records per query. Burst serving exists
	// for small queries — the regime where per-request overhead (frame
	// syscalls, goroutine spawns, per-frame allocations) dominates.
	ResultRecords int
	// BurstSize is the client-side group size per vectored write.
	BurstSize int
	// Conns is the number of client connections per measurement; each
	// maps to one lane at the server.
	Conns int
	// InFlight is the per-connection pipelining depth of the per-request
	// client (the burst client keeps BurstSize frames in flight).
	InFlight int
	// Duration is the measured wall-clock per point.
	Duration time.Duration
	Dist     workload.Distribution
	Seed     int64
	Progress func(string)
}

// DefaultBurstConfig mirrors the committed BENCH_burst.json run.
func DefaultBurstConfig() BurstConfig {
	return BurstConfig{
		N:             100_000,
		ResultRecords: 12,
		BurstSize:     32,
		Conns:         2,
		InFlight:      16,
		Duration:      1200 * time.Millisecond,
		Dist:          workload.UNF,
		Seed:          1,
	}
}

// BurstLanePoint is one lane-count measurement of the sweep.
type BurstLanePoint struct {
	Lanes      int     `json:"lanes"`
	QPS        float64 `json:"queriesPerSec"`
	NsPerRec   float64 `json:"nsPerRecord"`
	Efficiency float64 `json:"scalingEfficiency"`
}

// BurstResult is the machine-readable outcome.
type BurstResult struct {
	N             int  `json:"n"`
	ResultRecords int  `json:"resultRecordsPerQuery"`
	BurstSize     int  `json:"burstSize"`
	SHANI         bool `json:"shaNI"`
	GOMAXPROCS    int  `json:"gomaxprocs"`

	// Single-core batching win: burst vs per-request serving, same
	// workload, same client concurrency, one lane.
	PerRequestQPS float64 `json:"perRequestQueriesPerSec"`
	BurstQPS      float64 `json:"burstQueriesPerSec"`
	BatchWin      float64 `json:"batchWin"`

	// Lane sweep (GOMAXPROCS 1 → N; a single-core host records one point).
	Lanes []BurstLanePoint `json:"lanes"`

	// Real-I/O mode: burst serving over a file-backed store, pread vs
	// mmap read path.
	FilePreadQPS float64 `json:"filePreadQueriesPerSec"`
	FileMmapQPS  float64 `json:"fileMmapQueriesPerSec"`
	MmapActive   bool    `json:"mmapActive"`
}

// burstWorkload builds small ranges each holding ~ResultRecords records,
// cycled by the measurement clients.
func burstWorkload(sorted []record.Record, resultRecords, count int, seed int64) []record.Range {
	qs := make([]record.Range, 0, count)
	n := len(sorted)
	step := (n - resultRecords - 1) / count
	if step < 1 {
		step = 1
	}
	for i := 0; i+resultRecords < n && len(qs) < count; i += step {
		qs = append(qs, record.Range{Lo: sorted[i].Key, Hi: sorted[i+resultRecords-1].Key})
	}
	return qs
}

// measureServe drives addr with the configured client shape for cfg.
// Duration and returns (queries/s, ns served per record).
func measureServe(cfg *BurstConfig, addr string, qs []record.Range, burst bool) (float64, float64, error) {
	var queries, records atomic.Int64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for c := 0; c < cfg.Conns; c++ {
		cl, err := wire.DialSP(addr)
		if err != nil {
			return 0, 0, err
		}
		defer cl.Close()
		workers := 1
		if !burst {
			workers = cfg.InFlight
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(cl *wire.SPClient, off int) {
				defer wg.Done()
				i := off
				for {
					select {
					case <-stop:
						return
					default:
					}
					if burst {
						batch := make([]record.Range, cfg.BurstSize)
						for j := range batch {
							batch[j] = qs[(i+j)%len(qs)]
						}
						i += cfg.BurstSize
						raws, err := cl.QueryRawMany(batch)
						if err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
						queries.Add(int64(len(raws)))
						for _, raw := range raws {
							records.Add(int64((len(raw) - 4) / record.Size))
						}
					} else {
						raw, err := cl.QueryRaw(qs[i%len(qs)])
						if err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
						i++
						queries.Add(1)
						records.Add(int64((len(raw) - 4) / record.Size))
					}
				}
			}(cl, c*7919+w*131)
		}
	}
	// Warm-up, then reset counters for the measured window.
	time.Sleep(cfg.Duration / 4)
	queries.Store(0)
	records.Store(0)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	q, r := queries.Load(), records.Load()
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, 0, err
	}
	if q == 0 {
		return 0, 0, fmt.Errorf("experiments: no queries completed")
	}
	qps := float64(q) / elapsed.Seconds()
	nsPerRec := float64(elapsed.Nanoseconds()) / float64(r)
	return qps, nsPerRec, nil
}

// RunBurst measures the burst serve loop end to end.
func RunBurst(cfg BurstConfig) (*BurstResult, error) {
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	ds, err := workload.Generate(cfg.Dist, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	progress(fmt.Sprintf("burst: outsourcing %d records", cfg.N))
	sp := core.NewServiceProvider(pagestore.NewMem())
	if err := sp.Load(ds.Records); err != nil {
		return nil, err
	}
	sorted, _, err := sp.Query(record.Range{Lo: 0, Hi: record.KeyDomain - 1})
	if err != nil {
		return nil, err
	}
	qs := burstWorkload(sorted, cfg.ResultRecords, 1024, cfg.Seed)

	res := &BurstResult{
		N:             cfg.N,
		ResultRecords: cfg.ResultRecords,
		BurstSize:     cfg.BurstSize,
		SHANI:         digest.Accelerated,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}

	serveWith := func(burstMode bool) (float64, float64, error) {
		srv, err := wire.ServeSP("127.0.0.1:0", sp, nil, wire.WithBurstServing(burstMode))
		if err != nil {
			return 0, 0, err
		}
		defer srv.Close()
		return measureServe(&cfg, srv.Addr(), qs, burstMode)
	}

	// Single-core batching win: per-request vs burst at the current
	// GOMAXPROCS (the CI gate reads this pair on 1-core runners).
	progress("burst: measuring per-request serving")
	res.PerRequestQPS, _, err = serveWith(false)
	if err != nil {
		return nil, err
	}
	progress("burst: measuring burst serving")
	res.BurstQPS, _, err = serveWith(true)
	if err != nil {
		return nil, err
	}
	res.BatchWin = res.BurstQPS / res.PerRequestQPS

	// Lane sweep: lanes follow GOMAXPROCS at server creation.
	maxProcs := runtime.GOMAXPROCS(0)
	laneCounts := []int{1}
	for k := 2; k <= maxProcs; k *= 2 {
		laneCounts = append(laneCounts, k)
	}
	if last := laneCounts[len(laneCounts)-1]; last != maxProcs {
		laneCounts = append(laneCounts, maxProcs)
	}
	var qps1 float64
	for _, k := range laneCounts {
		progress(fmt.Sprintf("burst: lane sweep at %d lanes", k))
		prev := runtime.GOMAXPROCS(k)
		laneCfg := cfg
		laneCfg.Conns = 2 * k
		srv, err := wire.ServeSP("127.0.0.1:0", sp, nil, wire.WithBurstServing(true))
		if err != nil {
			runtime.GOMAXPROCS(prev)
			return nil, err
		}
		qps, nsRec, err := measureServe(&laneCfg, srv.Addr(), qs, true)
		srv.Close()
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return nil, err
		}
		if k == 1 {
			qps1 = qps
		}
		eff := 1.0
		if qps1 > 0 {
			eff = qps / (float64(k) * qps1)
		}
		res.Lanes = append(res.Lanes, BurstLanePoint{Lanes: k, QPS: qps, NsPerRec: nsRec, Efficiency: eff})
	}

	// Real-I/O mode: the same dataset on a file-backed store, burst
	// serving over pread and over the mmap window.
	dir, err := os.MkdirTemp("", "sae-burst-io")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	serveFile := func(mmap bool) (float64, error) {
		store, err := pagestore.CreateFile(filepath.Join(dir, fmt.Sprintf("sp-mmap-%v.pages", mmap)))
		if err != nil {
			return 0, err
		}
		defer store.Close()
		if mmap {
			if err := store.EnableMmap(); err != nil {
				return 0, err
			}
		}
		fsp := core.NewServiceProvider(store)
		if err := fsp.Load(ds.Records); err != nil {
			return 0, err
		}
		res.MmapActive = res.MmapActive || store.MmapActive()
		srv, err := wire.ServeSP("127.0.0.1:0", fsp, nil, wire.WithBurstServing(true))
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		qps, _, err := measureServe(&cfg, srv.Addr(), qs, true)
		return qps, err
	}
	progress("burst: measuring file-backed serving (pread)")
	if res.FilePreadQPS, err = serveFile(false); err != nil {
		return nil, err
	}
	progress("burst: measuring file-backed serving (mmap)")
	if res.FileMmapQPS, err = serveFile(true); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteBurstJSON emits the machine-readable result.
func WriteBurstJSON(w io.Writer, res *BurstResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
