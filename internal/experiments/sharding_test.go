package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"sae/internal/workload"
)

// TestRunShardScalingSmoke runs a miniature sweep and checks the cells and
// the JSON payload are well-formed; absolute throughput is machine-bound
// and not asserted.
func TestRunShardScalingSmoke(t *testing.T) {
	cfg := ShardConfig{
		N:           4_000,
		ShardCounts: []int{1, 2},
		Queries:     60,
		Workers:     8,
		PerAccess:   5 * time.Microsecond,
		Extent:      0.001,
		Dist:        workload.UNF,
		Seed:        3,
	}
	cells, err := RunShardScaling(cfg)
	if err != nil {
		t.Fatalf("RunShardScaling: %v", err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells, want 2", len(cells))
	}
	for i, c := range cells {
		if c.Shards != cfg.ShardCounts[i] || c.Queries != cfg.Queries {
			t.Fatalf("cell %d mis-labeled: %+v", i, c)
		}
		if c.QueriesPerSec <= 0 || c.Speedup <= 0 || c.AvgShardsTouched < 1 {
			t.Fatalf("cell %d has degenerate metrics: %+v", i, c)
		}
	}
	if cells[0].Speedup != 1 {
		t.Fatalf("baseline speedup %v, want 1", cells[0].Speedup)
	}

	var buf bytes.Buffer
	if err := WriteShardJSON(&buf, cells); err != nil {
		t.Fatalf("WriteShardJSON: %v", err)
	}
	var decoded struct {
		Benchmark string      `json:"benchmark"`
		Unit      string      `json:"unit"`
		Results   []ShardCell `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("BENCH_shard.json payload does not parse: %v", err)
	}
	if decoded.Benchmark != "sharded_queries" || len(decoded.Results) != 2 {
		t.Fatalf("unexpected payload: %+v", decoded)
	}
}

// TestSimDisksSerializePerShard: one disk's reservations never overlap,
// two disks run in parallel.
func TestSimDisksSerializePerShard(t *testing.T) {
	disks := NewSimDisks(2)
	const d = 5 * time.Millisecond
	start := time.Now()
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		go func() {
			disks.Stall(0, d)
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if elapsed := time.Since(start); elapsed < 4*d {
		t.Fatalf("4 stalls on one disk finished in %v, below the serialized %v", elapsed, 4*d)
	}
	start = time.Now()
	go func() {
		disks.Stall(0, d)
		done <- struct{}{}
	}()
	disks.Stall(1, d)
	<-done
	if elapsed := time.Since(start); elapsed >= 2*d {
		t.Fatalf("two different disks serialized: %v", elapsed)
	}
}
