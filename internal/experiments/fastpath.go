package experiments

import (
	"crypto/sha1"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/exec"
	"sae/internal/record"
	"sae/internal/workload"
)

// Fast-path experiment: before/after numbers for the zero-copy,
// parallel-crypto serve→wire→verify chain. "Seed" measures the
// pre-fastpath pipeline (materialize the result slice, encode it into a
// fresh payload, decode on the client, re-serialize every record to hash
// it); "fast" measures the new chain (pinned-page streaming into a reused
// frame, in-place hashing of the wire bytes through the SHA-NI core).
// The numbers land in BENCH_fastpath.json via saebench -figure fastpath.

// FastpathConfig parameterizes the run.
type FastpathConfig struct {
	// N is the dataset cardinality.
	N int
	// ResultRecords is the target result size per query (the verify and
	// serve measurements are per-record dominated).
	ResultRecords int
	// Iters is the measured iteration count per variant.
	Iters int
	// WorkerCounts are the verify fan-outs to sweep.
	WorkerCounts []int
	Dist         workload.Distribution
	Seed         int64
	Progress     func(string)
}

// DefaultFastpathConfig mirrors the root benchmarks: 100K records, ~1000
// record results (the paper's mid selectivity).
func DefaultFastpathConfig() FastpathConfig {
	return FastpathConfig{
		N:             100_000,
		ResultRecords: 1000,
		Iters:         300,
		WorkerCounts:  []int{1, 2, 4},
		Dist:          workload.UNF,
		Seed:          1,
	}
}

// FastpathVerifyPoint is one verify-variant measurement.
type FastpathVerifyPoint struct {
	Workers    int     `json:"workers"`
	NsPerRec   float64 `json:"nsPerRecord"`
	RecordsSec float64 `json:"recordsPerSec"`
}

// FastpathResult is the machine-readable outcome.
type FastpathResult struct {
	N             int  `json:"n"`
	ResultRecords int  `json:"resultRecords"`
	SHANI         bool `json:"shaNI"`
	GOMAXPROCS    int  `json:"gomaxprocs"`

	VerifySeedNsPerRec float64               `json:"verifySeedNsPerRecord"`
	VerifyFastNsPerRec float64               `json:"verifyFastNsPerRecord"`
	VerifySpeedup      float64               `json:"verifySpeedup"`
	VerifyWorkers      []FastpathVerifyPoint `json:"verifyWorkers"`

	ServeSeedQPS      float64 `json:"serveSeedQueriesPerSec"`
	ServeFastQPS      float64 `json:"serveFastQueriesPerSec"`
	ServeSpeedup      float64 `json:"serveSpeedup"`
	ServeSeedAllocsOp float64 `json:"serveSeedAllocsPerOp"`
	ServeFastAllocsOp float64 `json:"serveFastAllocsPerOp"`
	ServeSeedBytesOp  float64 `json:"serveSeedBytesPerOp"`
	ServeFastBytesOp  float64 `json:"serveFastBytesPerOp"`
	AllocReduction    float64 `json:"serveAllocReduction"`
}

// seedClientVerify replicates the pre-fastpath client pipeline exactly:
// decode the wire payload into fresh records, then re-serialize and hash
// every record through crypto/sha1 (the stdlib schedule the seed used —
// this PR's SHA-NI core must not flatter the baseline) and XOR-fold.
func seedClientVerify(q record.Range, payload []byte, vt digest.Digest) error {
	n := int(uint32(payload[0])<<24 | uint32(payload[1])<<16 | uint32(payload[2])<<8 | uint32(payload[3]))
	b := payload[4:]
	recs := make([]record.Record, 0, n)
	for i := 0; i < n; i++ {
		r, err := record.Unmarshal(b)
		if err != nil {
			return err
		}
		recs = append(recs, r)
		b = b[record.Size:]
	}
	var acc digest.Accumulator
	var buf [record.Size]byte
	for i := range recs {
		if !q.Contains(recs[i].Key) {
			return fmt.Errorf("experiments: record outside range")
		}
		acc.Add(digest.Digest(sha1.Sum(recs[i].AppendBinary(buf[:0]))))
	}
	if acc.Sum() != vt {
		return fmt.Errorf("experiments: token mismatch")
	}
	return nil
}

// encodeRecordsSeed replicates the pre-fastpath wire encoder: a fresh
// payload per response.
func encodeRecordsSeed(recs []record.Record) []byte {
	out := make([]byte, 4, 4+len(recs)*record.Size)
	out[0] = byte(len(recs) >> 24)
	out[1] = byte(len(recs) >> 16)
	out[2] = byte(len(recs) >> 8)
	out[3] = byte(len(recs))
	for i := range recs {
		out = recs[i].AppendBinary(out)
	}
	return out
}

// allocsDuring runs fn and returns (allocated objects, allocated bytes).
func allocsDuring(fn func()) (float64, float64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs - before.Mallocs), float64(after.TotalAlloc - before.TotalAlloc)
}

// RunFastpath measures the before/after chain.
func RunFastpath(cfg FastpathConfig) (*FastpathResult, error) {
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	ds, err := workload.Generate(cfg.Dist, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	progress(fmt.Sprintf("fastpath: outsourcing %d records", cfg.N))
	sys, err := core.NewSystem(ds.Records)
	if err != nil {
		return nil, err
	}

	// Pick a range holding ~ResultRecords records.
	all, _, err := sys.SP.Query(record.Range{Lo: 0, Hi: record.KeyDomain - 1})
	if err != nil {
		return nil, err
	}
	if len(all) < cfg.ResultRecords {
		return nil, fmt.Errorf("experiments: dataset yields %d records, need %d", len(all), cfg.ResultRecords)
	}
	start := (len(all) - cfg.ResultRecords) / 2
	q := record.Range{Lo: all[start].Key, Hi: all[start+cfg.ResultRecords-1].Key}
	result, _, err := sys.SP.Query(q)
	if err != nil {
		return nil, err
	}
	vt, _, err := sys.TE.GenerateVT(q)
	if err != nil {
		return nil, err
	}
	enc := make([]byte, 0, len(result)*record.Size)
	for i := range result {
		enc = result[i].AppendBinary(enc)
	}
	nRec := len(result)
	payload := encodeRecordsSeed(result)

	res := &FastpathResult{
		N:             cfg.N,
		ResultRecords: nRec,
		SHANI:         digest.Accelerated,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}

	// Client verification: seed = materialized records through the serial
	// Figure 7 check; fast = in-place wire-bytes verification.
	progress("fastpath: measuring client verification")
	iters := cfg.Iters
	measure := func(fn func()) float64 {
		fn() // warm
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(iters*nRec)
	}
	res.VerifySeedNsPerRec = measure(func() {
		if err := seedClientVerify(q, payload, vt); err != nil {
			panic(err)
		}
	})
	vp1 := core.NewVerifyPool(1)
	res.VerifyFastNsPerRec = measure(func() {
		if _, err := vp1.VerifyEncoded(q, enc, vt); err != nil {
			panic(err)
		}
	})
	res.VerifySpeedup = res.VerifySeedNsPerRec / res.VerifyFastNsPerRec
	for _, w := range cfg.WorkerCounts {
		vp := core.NewVerifyPool(w)
		ns := measure(func() {
			if _, err := vp.VerifyEncoded(q, enc, vt); err != nil {
				panic(err)
			}
		})
		res.VerifyWorkers = append(res.VerifyWorkers, FastpathVerifyPoint{
			Workers:    w,
			NsPerRec:   ns,
			RecordsSec: 1e9 / ns,
		})
	}

	// SP serve: seed = materialize + fresh-payload encode; fast = stream
	// borrowed records into one reused frame.
	progress("fastpath: measuring SP serve path")
	seedServe := func() {
		recs, _, err := sys.SP.QueryCtx(exec.NewContext(), q)
		if err != nil {
			panic(err)
		}
		if p := encodeRecordsSeed(recs); len(p) < nRec*record.Size {
			panic("short payload")
		}
	}
	frame := make([]byte, 0, 4+nRec*record.Size+1024)
	fastServe := func() {
		frame = append(frame[:0], 0, 0, 0, 0)
		if _, _, err := sys.SP.ServeRangeCtx(exec.NewContext(), q, func(r *record.Record) error {
			frame = r.AppendBinary(frame)
			return nil
		}); err != nil {
			panic(err)
		}
	}
	seedServe()
	fastServe()
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		seedServe()
	}
	seedDur := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		fastServe()
	}
	fastDur := time.Since(t0)
	res.ServeSeedQPS = float64(iters) / seedDur.Seconds()
	res.ServeFastQPS = float64(iters) / fastDur.Seconds()
	res.ServeSpeedup = res.ServeFastQPS / res.ServeSeedQPS
	mallocs, bytes := allocsDuring(func() {
		for i := 0; i < iters; i++ {
			seedServe()
		}
	})
	res.ServeSeedAllocsOp = mallocs / float64(iters)
	res.ServeSeedBytesOp = bytes / float64(iters)
	mallocs, bytes = allocsDuring(func() {
		for i := 0; i < iters; i++ {
			fastServe()
		}
	})
	res.ServeFastAllocsOp = mallocs / float64(iters)
	res.ServeFastBytesOp = bytes / float64(iters)
	if res.ServeFastAllocsOp > 0 {
		res.AllocReduction = res.ServeSeedAllocsOp / res.ServeFastAllocsOp
	}
	return res, nil
}

// WriteFastpathJSON emits the machine-readable result.
func WriteFastpathJSON(w io.Writer, res *FastpathResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
