package experiments

import (
	"strings"
	"testing"
	"time"

	"sae/internal/workload"
)

// tinyConfig keeps unit-test sweeps fast.
func tinyConfig() Config {
	return Config{
		Cardinalities: []int{5_000, 10_000},
		Dists:         []workload.Distribution{workload.UNF, workload.SKW},
		NumQueries:    10,
		Extent:        workload.DefaultExtent,
		Seed:          1,
	}
}

func TestSweepShapes(t *testing.T) {
	cells, err := Sweep(tinyConfig())
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	for _, c := range cells {
		// Fig 5 shape: the VT is constant and tiny; the VO is much larger.
		if c.VTBytes != 20 {
			t.Fatalf("[%s n=%d] VT = %d bytes, want 20", c.Dist, c.N, c.VTBytes)
		}
		if c.AvgVOBytes < 10*float64(c.VTBytes) {
			t.Fatalf("[%s n=%d] VO (%.0f B) not much larger than VT", c.Dist, c.N, c.AvgVOBytes)
		}
		// Fig 6 shape: SAE's index work undercuts TOM's; the TE is cheap
		// relative to the SP.
		if r := c.IndexReduction(); r <= 0 {
			t.Fatalf("[%s n=%d] SAE index reduction = %.2f, want > 0", c.Dist, c.N, r)
		}
		if c.SAETE.Total() > c.SAESPTotal().Total() {
			t.Fatalf("[%s n=%d] TE cost exceeds SP cost", c.Dist, c.N)
		}
		// Fig 8 shape: TE storage is a small fraction of SP storage; SP
		// storage is similar under both models.
		if c.TEBytes*3 > c.SAESPBytes {
			t.Fatalf("[%s n=%d] TE storage not small: TE=%d SP=%d", c.Dist, c.N, c.TEBytes, c.SAESPBytes)
		}
		ratio := float64(c.TOMSPBytes) / float64(c.SAESPBytes)
		if ratio < 0.9 || ratio > 1.3 {
			t.Fatalf("[%s n=%d] TOM/SAE SP storage ratio %.2f out of band", c.Dist, c.N, ratio)
		}
	}
	// Growth with n within each distribution: larger n, larger VO and more
	// SP work (fixed-extent queries hit more records).
	byDist := map[workload.Distribution][]*Cell{}
	for _, c := range cells {
		byDist[c.Dist] = append(byDist[c.Dist], c)
	}
	for dist, cs := range byDist {
		if len(cs) < 2 {
			continue
		}
		if cs[0].AvgVOBytes >= cs[1].AvgVOBytes {
			t.Fatalf("[%s] VO size did not grow with n", dist)
		}
		if cs[0].SAESPTotal().Total() >= cs[1].SAESPTotal().Total() {
			t.Fatalf("[%s] SP cost did not grow with n", dist)
		}
	}
}

func TestSweepSKWSmallerResults(t *testing.T) {
	cells, err := Sweep(Config{
		Cardinalities: []int{10_000},
		Dists:         []workload.Distribution{workload.UNF, workload.SKW},
		NumQueries:    20,
		Extent:        workload.DefaultExtent,
		Seed:          2,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	// The paper: SKW average result cardinality is smaller than UNF for
	// uniformly placed queries (most queries land in the cold region).
	if cells[1].AvgResultSize >= cells[0].AvgResultSize {
		t.Fatalf("SKW avg result (%.0f) not below UNF (%.0f)",
			cells[1].AvgResultSize, cells[0].AvgResultSize)
	}
}

func TestTableRendering(t *testing.T) {
	cells, err := Sweep(Config{
		Cardinalities: []int{5_000},
		Dists:         []workload.Distribution{workload.UNF},
		NumQueries:    5,
		Extent:        workload.DefaultExtent,
		Seed:          3,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for _, table := range BuildAll(cells) {
		out := table.Format()
		if !strings.Contains(out, "UNF") || !strings.Contains(out, "5000") {
			t.Fatalf("table %q missing expected cells:\n%s", table.Title, out)
		}
		csv := table.CSV()
		if lines := strings.Count(csv, "\n"); lines != 2 { // header + 1 row
			t.Fatalf("table %q CSV has %d lines, want 2", table.Title, lines)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	var msgs []string
	cfg := Config{
		Cardinalities: []int{2_000},
		Dists:         []workload.Distribution{workload.UNF},
		NumQueries:    3,
		Extent:        workload.DefaultExtent,
		Seed:          4,
		Progress:      func(s string) { msgs = append(msgs, s) },
	}
	if _, err := Sweep(cfg); err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(msgs) == 0 {
		t.Fatal("no progress messages emitted")
	}
}

func TestResponseTimeShape(t *testing.T) {
	cells, err := Sweep(Config{
		Cardinalities: []int{10_000},
		Dists:         []workload.Distribution{workload.UNF},
		NumQueries:    10,
		Extent:        workload.DefaultExtent,
		Seed:          5,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	sae, tom := ResponseTimes(cells[0], DefaultNetwork)
	if sae >= tom {
		t.Fatalf("SAE response time (%v) not below TOM (%v)", sae, tom)
	}
	table := BuildResponseTime(cells, DefaultNetwork)
	if len(table.Rows) != 1 {
		t.Fatalf("unexpected table rows: %d", len(table.Rows))
	}
}

func TestNetworkModelTransfer(t *testing.T) {
	nm := NetworkModel{RTT: 10 * time.Millisecond, Bandwidth: 1000}
	if got := nm.Transfer(0); got != 10*time.Millisecond {
		t.Fatalf("Transfer(0) = %v, want RTT", got)
	}
	if got := nm.Transfer(1000); got != 10*time.Millisecond+time.Second {
		t.Fatalf("Transfer(1000) = %v", got)
	}
}

func TestUpdateExperimentShape(t *testing.T) {
	cells, err := RunUpdates(Config{
		Cardinalities: []int{8_000},
		Dists:         []workload.Distribution{workload.UNF},
		NumQueries:    25, // => 100 updates
		Extent:        workload.DefaultExtent,
		Seed:          6,
	})
	if err != nil {
		t.Fatalf("RunUpdates: %v", err)
	}
	c := cells[0]
	// Every party's per-update access count is O(height): single digits.
	for name, acc := range map[string]float64{
		"SAE SP": c.SAESPAccesses, "SAE TE": c.SAETEAccesses, "TOM SP": c.TOMSPAccesses,
	} {
		if acc <= 0 || acc > 40 {
			t.Fatalf("%s accesses per update = %.1f, want small positive", name, acc)
		}
	}
	// TOM pays an RSA signature per update; its CPU must dominate SAE's.
	if c.TOMWall <= c.SAEWall {
		t.Fatalf("TOM per-update CPU (%v) not above SAE (%v)", c.TOMWall, c.SAEWall)
	}
	table := BuildUpdates(cells)
	if len(table.Rows) != 1 {
		t.Fatal("unexpected update table shape")
	}
}
