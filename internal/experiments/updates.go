package experiments

import (
	"fmt"
	"time"

	"sae/internal/core"
	"sae/internal/costmodel"
	"sae/internal/record"
	"sae/internal/tom"
	"sae/internal/workload"
)

// The paper argues updates are where TOM hurts most: the DO must rebuild
// authentication information and re-sign on every change, while SAE's
// parties each do one O(log n) index update. This extension experiment
// measures both models applying the same update stream.

// UpdateCell is one grid point of the update experiment.
type UpdateCell struct {
	Dist workload.Distribution
	N    int
	// Per-update averages over the stream (inserts + deletes).
	SAESPAccesses float64 // B+-tree + heap
	SAETEAccesses float64 // XB-Tree + list pages
	TOMSPAccesses float64 // MB-Tree + heap
	SAEWall       time.Duration
	TOMWall       time.Duration // includes one RSA signature per update
}

// RunUpdates applies cfg.NumQueries×4 updates (3:1 insert:delete) per grid
// point under both models and reports the averages.
func RunUpdates(cfg Config) ([]*UpdateCell, error) {
	var cells []*UpdateCell
	for _, dist := range cfg.Dists {
		for _, n := range cfg.Cardinalities {
			cell, err := runUpdateCell(cfg, dist, n)
			if err != nil {
				return nil, fmt.Errorf("experiments: updates %s n=%d: %w", dist, n, err)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

func runUpdateCell(cfg Config, dist workload.Distribution, n int) (*UpdateCell, error) {
	cfg.progress("[updates %s n=%d] building systems", dist, n)
	ds, err := workload.Generate(dist, n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	updates := cfg.NumQueries * 4
	cell := &UpdateCell{Dist: dist, N: n}

	// --- SAE ---
	saeSys, err := core.NewSystem(ds.Records)
	if err != nil {
		return nil, err
	}
	spBefore := saeSys.SP.Stats()
	teBefore := saeSys.TE.Stats()
	start := time.Now()
	var fresh []record.Record
	for i := 0; i < updates; i++ {
		if i%4 == 3 && len(fresh) > 0 {
			victim := fresh[len(fresh)-1]
			fresh = fresh[:len(fresh)-1]
			if err := saeSys.Delete(victim.ID); err != nil {
				return nil, err
			}
			continue
		}
		r, err := saeSys.Insert(record.Key((i * 997) % record.KeyDomain))
		if err != nil {
			return nil, err
		}
		fresh = append(fresh, r)
	}
	cell.SAEWall = time.Since(start) / time.Duration(updates)
	cell.SAESPAccesses = float64(saeSys.SP.Stats().Sub(spBefore).Accesses()) / float64(updates)
	cell.SAETEAccesses = float64(saeSys.TE.Stats().Sub(teBefore).Accesses()) / float64(updates)
	saeSys = nil

	// --- TOM ---
	tomSys, err := tom.NewSystem(ds.Records)
	if err != nil {
		return nil, err
	}
	pBefore := tomSys.Provider.Stats()
	start = time.Now()
	fresh = fresh[:0]
	for i := 0; i < updates; i++ {
		if i%4 == 3 && len(fresh) > 0 {
			victim := fresh[len(fresh)-1]
			fresh = fresh[:len(fresh)-1]
			if err := tomSys.Delete(victim.ID, victim.Key); err != nil {
				return nil, err
			}
			continue
		}
		r, err := tomSys.Insert(record.Key((i*997)%record.KeyDomain), record.ID(10_000_000+i))
		if err != nil {
			return nil, err
		}
		fresh = append(fresh, r)
	}
	cell.TOMWall = time.Since(start) / time.Duration(updates)
	cell.TOMSPAccesses = float64(tomSys.Provider.Stats().Sub(pBefore).Accesses()) / float64(updates)
	return cell, nil
}

// BuildUpdates renders the update-cost extension table.
func BuildUpdates(cells []*UpdateCell) *Table {
	t := &Table{
		Title:   "Extension — owner update cost (per update; accesses charged 10 ms)",
		Columns: []string{"dist", "n", "SAE SP acc", "SAE TE acc", "TOM SP acc", "SAE CPU ms", "TOM CPU ms (RSA)"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			string(c.Dist),
			fmt.Sprintf("%d", c.N),
			fmt.Sprintf("%.1f", c.SAESPAccesses),
			fmt.Sprintf("%.1f", c.SAETEAccesses),
			fmt.Sprintf("%.1f", c.TOMSPAccesses),
			fmt.Sprintf("%.3f", costmodel.Millis(c.SAEWall)),
			fmt.Sprintf("%.3f", costmodel.Millis(c.TOMWall)),
		})
	}
	return t
}
