package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/record"
	"sae/internal/router"
	"sae/internal/wire"
	"sae/internal/workload"
)

// Router-hop overhead experiment: the same sharded deployment served
// over real loopback TCP, queried two ways — a shard-aware client
// scattering from the client side (wire.ShardedVerifyingClient) versus a
// plain single-system client behind the router tier. Both paths verify
// every result; the throughput ratio prices the extra hop (one more
// serialize/deserialize and one more process on the result path).

// RouterConfig parameterizes the overhead measurement.
type RouterConfig struct {
	N       int
	Shards  int
	Queries int
	// Workers is the number of concurrent client goroutines; requests
	// pipeline over shared connections on both paths.
	Workers int
	// Extent is the query width as a fraction of the key domain.
	Extent   float64
	Dist     workload.Distribution
	Seed     int64
	Progress func(string)
}

// DefaultRouterConfig mirrors the shard-scaling geometry: narrow
// queries over 100K records, enough workers to keep every shard busy.
func DefaultRouterConfig() RouterConfig {
	return RouterConfig{
		N:       100_000,
		Shards:  4,
		Queries: 400,
		Workers: 8,
		Extent:  0.001,
		Dist:    workload.UNF,
		Seed:    1,
	}
}

// RouterResult is the machine-readable BENCH_router.json payload.
type RouterResult struct {
	N          int  `json:"n"`
	Shards     int  `json:"shards"`
	Workers    int  `json:"workers"`
	Queries    int  `json:"queries"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	SHANI      bool `json:"shaNI"`
	// DirectQPS is client-side scatter throughput; RoutedQPS the same
	// workload through the router's single endpoint.
	DirectQPS float64 `json:"directQueriesPerSec"`
	RoutedQPS float64 `json:"routedQueriesPerSec"`
	// RoutedRelative = RoutedQPS / DirectQPS: the fraction of direct
	// throughput that survives the extra hop. Machine-independent-ish
	// (both sides run on the same box in the same process group), which
	// is what the CI regression gate checks.
	RoutedRelative float64 `json:"routedRelative"`
}

// RunRouterOverhead serves a sharded deployment on loopback and
// measures verified-query throughput with and without the router tier.
func RunRouterOverhead(cfg RouterConfig) (RouterResult, error) {
	res := RouterResult{
		N: cfg.N, Shards: cfg.Shards, Workers: cfg.Workers, Queries: cfg.Queries,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SHANI:      digest.Accelerated,
	}
	if cfg.Progress != nil {
		cfg.Progress(fmt.Sprintf("router overhead: %d records, %d shards, %d workers...", cfg.N, cfg.Shards, cfg.Workers))
	}
	ds, err := workload.Generate(cfg.Dist, cfg.N, cfg.Seed)
	if err != nil {
		return res, err
	}
	sys, err := core.NewShardedSystem(ds.Records, cfg.Shards)
	if err != nil {
		return res, err
	}
	var spAddrs, teAddrs []string
	var servers []interface{ Close() error }
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < sys.Plan.Shards(); i++ {
		si := wire.ShardInfo{Index: i, Plan: sys.Plan}
		spSrv, err := wire.ServeSP("127.0.0.1:0", sys.SPs[i], nil, wire.WithShardInfo(si))
		if err != nil {
			return res, err
		}
		servers = append(servers, spSrv)
		teSrv, err := wire.ServeTE("127.0.0.1:0", sys.TEs[i], nil, wire.WithShardInfo(si))
		if err != nil {
			return res, err
		}
		servers = append(servers, teSrv)
		spAddrs = append(spAddrs, spSrv.Addr())
		teAddrs = append(teAddrs, teSrv.Addr())
	}
	rt, err := router.New(router.Config{SPs: spAddrs, TEs: teAddrs})
	if err != nil {
		return res, err
	}
	defer rt.Close()
	if err := rt.Serve("127.0.0.1:0"); err != nil {
		return res, err
	}

	qs := workload.Queries(256, cfg.Extent, cfg.Seed+1)

	direct, err := wire.DialShardedVerifying(spAddrs, teAddrs)
	if err != nil {
		return res, err
	}
	defer direct.Close()
	if cfg.Progress != nil {
		cfg.Progress("router overhead: measuring direct client-side scatter...")
	}
	directElapsed, err := driveWire(qs, cfg.Queries, cfg.Workers, direct.Query)
	if err != nil {
		return res, fmt.Errorf("direct drive: %w", err)
	}
	res.DirectQPS = float64(cfg.Queries) / directElapsed.Seconds()

	routed, err := wire.DialVerifying(rt.Addr(), rt.Addr())
	if err != nil {
		return res, err
	}
	defer routed.Close()
	if cfg.Progress != nil {
		cfg.Progress("router overhead: measuring plain client through the router...")
	}
	routedElapsed, err := driveWire(qs, cfg.Queries, cfg.Workers, routed.Query)
	if err != nil {
		return res, fmt.Errorf("routed drive: %w", err)
	}
	res.RoutedQPS = float64(cfg.Queries) / routedElapsed.Seconds()
	res.RoutedRelative = res.RoutedQPS / res.DirectQPS
	return res, nil
}

// driveWire runs count verified queries (cycled from qs) from `workers`
// concurrent goroutines over one shared (pipelining) client, after a
// short warmup.
func driveWire(qs []record.Range, count, workers int, query func(record.Range) ([]record.Record, error)) (time.Duration, error) {
	if workers < 1 {
		workers = 1
	}
	for i := 0; i < min(32, len(qs)); i++ { // warm caches and conns
		if _, err := query(qs[i]); err != nil {
			return 0, err
		}
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		firstE error
	)
	next := make(chan int)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if _, err := query(qs[i%len(qs)]); err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < count; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return time.Since(start), firstE
}

// WriteRouterJSON emits the machine-readable BENCH_router.json payload.
func WriteRouterJSON(w io.Writer, res RouterResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
