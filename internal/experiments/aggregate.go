package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"sae/internal/agg"
	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/record"
	"sae/internal/tom"
	"sae/internal/workload"
)

// Aggregation fast-path experiment: the verified COUNT/SUM/MIN/MAX scalar
// from annotated internal nodes versus the only alternative the protocols
// had before — run a verified range scan and fold the records client-side.
// Both variants end in the same trusted scalar; the fast path replaces the
// O(result) scan, shipping and folding with an O(log n) canonical-cover
// descent and a constant-size response, so both gated quantities are
// WITHIN-RUN ratios (speedup and response-bytes reduction), comparable
// across machines. The numbers land in BENCH_agg.json via saebench
// -figure agg.

// AggConfig parameterizes the run.
type AggConfig struct {
	// N is the dataset cardinality.
	N int
	// Queries is the number of distinct ranges per variant.
	Queries int
	// Iters is how many times the query set is repeated per measurement.
	Iters int
	// Extent is the query-range width as a fraction of the key domain.
	Extent   float64
	Dist     workload.Distribution
	Seed     int64
	Progress func(string)
}

// DefaultAggConfig mirrors the root benchmarks: 100K records with the
// paper's mid selectivity (~1% of the domain per range).
func DefaultAggConfig() AggConfig {
	return AggConfig{
		N:       100_000,
		Queries: 50,
		Iters:   20,
		Extent:  workload.DefaultExtent,
		Dist:    workload.UNF,
		Seed:    1,
	}
}

// AggResult is the machine-readable outcome.
type AggResult struct {
	N          int     `json:"n"`
	Queries    int     `json:"queries"`
	AvgRecords float64 `json:"avgResultRecords"`
	SHANI      bool    `json:"shaNI"`
	GOMAXPROCS int     `json:"gomaxprocs"`

	// SAE: scan-and-fold (SP range scan + TE token + client XOR verify +
	// fold) vs the aggregate fast path (annotated descent + token check).
	ScanQPS        float64 `json:"scanFoldQueriesPerSec"`
	AggQPS         float64 `json:"aggQueriesPerSec"`
	AggSpeedup     float64 `json:"aggSpeedup"`
	ScanRespBytes  float64 `json:"scanRespBytesPerQuery"`
	AggRespBytes   float64 `json:"aggRespBytesPerQuery"`
	RespBytesRatio float64 `json:"respBytesReduction"`

	// TOM: verified scan (records + range VO) vs the aggregate VO.
	TOMScanQPS        float64 `json:"tomScanFoldQueriesPerSec"`
	TOMAggQPS         float64 `json:"tomAggQueriesPerSec"`
	TOMAggSpeedup     float64 `json:"tomAggSpeedup"`
	TOMScanRespBytes  float64 `json:"tomScanRespBytesPerQuery"`
	TOMAggRespBytes   float64 `json:"tomAggRespBytesPerQuery"`
	TOMRespBytesRatio float64 `json:"tomRespBytesReduction"`
}

// RunAgg measures the aggregation fast path against scan-and-fold under
// both protocols.
func RunAgg(cfg AggConfig) (*AggResult, error) {
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	ds, err := workload.Generate(cfg.Dist, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	progress(fmt.Sprintf("agg: outsourcing %d records under SAE and TOM", cfg.N))
	sys, err := core.NewSystem(ds.Records)
	if err != nil {
		return nil, err
	}
	tomSys, err := tom.NewSystem(ds.Records)
	if err != nil {
		return nil, err
	}
	qs := workload.Queries(cfg.Queries, cfg.Extent, cfg.Seed+500)

	res := &AggResult{
		N:          cfg.N,
		Queries:    len(qs),
		SHANI:      digest.Accelerated,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// One correctness pass doubles as the warm-up and gathers the response
	// sizes: the scan ships every covered record (plus, under TOM, the
	// range VO); the fast path ships a 24-byte scalar and a 44-byte token
	// (under TOM one aggregate VO).
	var totalRecs, tomScanBytes, tomAggBytes float64
	for _, q := range qs {
		scan, err := sys.Query(q)
		if err != nil || scan.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: scan %v: %v / %v", q, err, scan.VerifyErr)
		}
		fold := foldRecords(scan.Result, q)
		out, err := sys.Aggregate(q)
		if err != nil || out.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: aggregate %v: %v / %v", q, err, out.VerifyErr)
		}
		if out.Agg != fold {
			return nil, fmt.Errorf("experiments: aggregate %v = %v, scan fold %v", q, out.Agg, fold)
		}
		totalRecs += float64(len(scan.Result))

		tScan, err := tomSys.Query(q)
		if err != nil || tScan.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: TOM scan %v: %v / %v", q, err, tScan.VerifyErr)
		}
		tOut, err := tomSys.Aggregate(q)
		if err != nil || tOut.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: TOM aggregate %v: %v / %v", q, err, tOut.VerifyErr)
		}
		if tOut.Agg != fold {
			return nil, fmt.Errorf("experiments: TOM aggregate %v = %v, scan fold %v", q, tOut.Agg, fold)
		}
		tomScanBytes += float64(len(tScan.Result)*record.Size + tScan.VO.Size())
		tomAggBytes += float64(tOut.VO.Size())
	}
	nq := float64(len(qs))
	res.AvgRecords = totalRecs / nq
	res.ScanRespBytes = res.AvgRecords*record.Size + digest.Size
	res.AggRespBytes = agg.Size + agg.TokenSize
	res.RespBytesRatio = res.ScanRespBytes / res.AggRespBytes
	res.TOMScanRespBytes = tomScanBytes / nq
	res.TOMAggRespBytes = tomAggBytes / nq
	res.TOMRespBytesRatio = res.TOMScanRespBytes / res.TOMAggRespBytes

	// The fast path finishes a query set in single-digit milliseconds, far
	// too short a sample for a stable ratio, so every variant repeats its
	// (Iters x Queries) loop until a minimum wall-clock duration has
	// elapsed — the scan side runs once, the aggregate side accumulates
	// however many rounds fit.
	const minMeasure = 300 * time.Millisecond
	measure := func(fn func(record.Range)) float64 {
		t0 := time.Now()
		ops := 0
		for {
			for i := 0; i < cfg.Iters; i++ {
				for _, q := range qs {
					fn(q)
				}
			}
			ops += cfg.Iters * len(qs)
			if time.Since(t0) >= minMeasure {
				break
			}
		}
		return float64(ops) / time.Since(t0).Seconds()
	}

	progress("agg: measuring SAE scan-and-fold vs aggregate fast path")
	res.ScanQPS = measure(func(q record.Range) {
		out, err := sys.Query(q)
		if err != nil || out.VerifyErr != nil {
			panic(fmt.Sprintf("scan %v: %v / %v", q, err, out.VerifyErr))
		}
		foldRecords(out.Result, q)
	})
	res.AggQPS = measure(func(q record.Range) {
		out, err := sys.Aggregate(q)
		if err != nil || out.VerifyErr != nil {
			panic(fmt.Sprintf("aggregate %v: %v / %v", q, err, out.VerifyErr))
		}
	})
	res.AggSpeedup = res.AggQPS / res.ScanQPS

	progress("agg: measuring TOM scan-and-fold vs aggregate VO")
	res.TOMScanQPS = measure(func(q record.Range) {
		out, err := tomSys.Query(q)
		if err != nil || out.VerifyErr != nil {
			panic(fmt.Sprintf("TOM scan %v: %v / %v", q, err, out.VerifyErr))
		}
		foldRecords(out.Result, q)
	})
	res.TOMAggQPS = measure(func(q record.Range) {
		out, err := tomSys.Aggregate(q)
		if err != nil || out.VerifyErr != nil {
			panic(fmt.Sprintf("TOM aggregate %v: %v / %v", q, err, out.VerifyErr))
		}
	})
	res.TOMAggSpeedup = res.TOMAggQPS / res.TOMScanQPS
	return res, nil
}

// foldRecords is the client-side fold the fast path replaces.
func foldRecords(recs []record.Record, q record.Range) agg.Agg {
	var a agg.Agg
	for i := range recs {
		if q.Contains(recs[i].Key) {
			a = a.Add(recs[i].Key)
		}
	}
	return a.Normalize()
}

// WriteAggJSON emits the machine-readable result.
func WriteAggJSON(w io.Writer, res *AggResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
