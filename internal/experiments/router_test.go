package experiments

import "testing"

// TestRouterOverheadSmoke: a scaled-down overhead run completes, both
// paths serve verified queries, and the relative throughput is sane.
func TestRouterOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback deployment in -short mode")
	}
	cfg := DefaultRouterConfig()
	cfg.N = 20_000
	cfg.Queries = 60
	cfg.Shards = 2
	cfg.Workers = 4
	res, err := RunRouterOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectQPS <= 0 || res.RoutedQPS <= 0 {
		t.Fatalf("non-positive throughput: direct %.1f routed %.1f", res.DirectQPS, res.RoutedQPS)
	}
	if res.RoutedRelative <= 0.05 {
		t.Fatalf("routed path at %.1f%% of direct — the hop cannot cost 20x", 100*res.RoutedRelative)
	}
}
