package experiments

import (
	"fmt"
	"strings"

	"sae/internal/costmodel"
)

// Table is a formatted experiment result, one row per (distribution, n).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Format renders the table with aligned columns for terminal output.
func (t *Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func ms(b costmodel.Breakdown) string {
	return fmt.Sprintf("%.1f", costmodel.Millis(b.Total()))
}

func mb(bytes int64) string {
	return fmt.Sprintf("%.1f", float64(bytes)/(1<<20))
}

// BuildFig5 is the communication-overhead table: authentication bytes per
// query between the (TE, client) pair in SAE versus the (SP, client) pair in
// TOM. The paper's Figure 5 shows the VO 2-3 orders of magnitude above the
// constant 20-byte VT.
func BuildFig5(cells []*Cell) *Table {
	t := &Table{
		Title:   "Figure 5 — Communication overhead vs n (bytes of authentication data per query)",
		Columns: []string{"dist", "n", "|RS| avg", "SAE VT (B)", "TOM VO (B)", "VO/VT"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			string(c.Dist),
			fmt.Sprintf("%d", c.N),
			fmt.Sprintf("%.0f", c.AvgResultSize),
			fmt.Sprintf("%d", c.VTBytes),
			fmt.Sprintf("%.0f", c.AvgVOBytes),
			fmt.Sprintf("%.0fx", c.AvgVOBytes/float64(c.VTBytes)),
		})
	}
	return t
}

// BuildFig6 is the query-processing table: simulated milliseconds (10 ms per
// node access) at the SP under both models plus the TE's token generation.
// Index columns isolate the tree work — where the paper's 24-39% SAE
// reduction comes from; total columns add the (identical) dataset-file scan.
func BuildFig6(cells []*Cell) *Table {
	t := &Table{
		Title:   "Figure 6 — Query processing time vs n (ms; 10 ms per node access)",
		Columns: []string{"dist", "n", "SAE SP idx", "TOM SP idx", "idx saving", "SAE SP total", "TOM SP total", "SAE TE"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			string(c.Dist),
			fmt.Sprintf("%d", c.N),
			ms(c.SAESPIndex),
			ms(c.TOMSPIndex),
			fmt.Sprintf("%.0f%%", 100*c.IndexReduction()),
			ms(c.SAESPTotal()),
			ms(c.TOMSPTotal()),
			ms(c.SAETE),
		})
	}
	return t
}

// BuildFig7 is the verification-time table: client CPU per query. Both
// series grow linearly with the result size; SAE stays below TOM because
// the client only XORs record digests instead of rebuilding a Merkle path
// and checking an RSA signature.
func BuildFig7(cells []*Cell) *Table {
	t := &Table{
		Title:   "Figure 7 — Verification time vs n (client CPU, ms)",
		Columns: []string{"dist", "n", "|RS| avg", "SAE client", "TOM client"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			string(c.Dist),
			fmt.Sprintf("%d", c.N),
			fmt.Sprintf("%.0f", c.AvgResultSize),
			fmt.Sprintf("%.3f", costmodel.Millis(c.SAEClient.Total())),
			fmt.Sprintf("%.3f", costmodel.Millis(c.TOMClient.Total())),
		})
	}
	return t
}

// BuildFig8 is the storage table: megabytes at the SP under both models
// (dominated by the 500-byte records either way) and at the TE (a small
// fraction — one 28-byte tuple per record).
func BuildFig8(cells []*Cell) *Table {
	t := &Table{
		Title:   "Figure 8 — Storage cost vs n (MB)",
		Columns: []string{"dist", "n", "SAE SP", "TOM SP", "SAE TE", "TE/SP"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			string(c.Dist),
			fmt.Sprintf("%d", c.N),
			mb(c.SAESPBytes),
			mb(c.TOMSPBytes),
			mb(c.TEBytes),
			fmt.Sprintf("%.1f%%", 100*float64(c.TEBytes)/float64(c.SAESPBytes)),
		})
	}
	return t
}

// BuildAll renders every figure from one sweep.
func BuildAll(cells []*Cell) []*Table {
	return []*Table{BuildFig5(cells), BuildFig6(cells), BuildFig7(cells), BuildFig8(cells)}
}
