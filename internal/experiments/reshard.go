package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/record"
	"sae/internal/replica"
	"sae/internal/reshard"
	"sae/internal/router"
	"sae/internal/shard"
	"sae/internal/wire"
	"sae/internal/workload"
)

// Reshard experiment: split a hot shard online behind the router while
// verified readers stream through it and a paced group-commit writer
// hammers the very shard being split. Three numbers fall out, and the
// CI gate holds two of them:
//
//   - CutoverPauseMs: the freeze→router-ack window — the only interval
//     a write can observe the reshard. The gate holds it to at most one
//     commit-group interval: all bulk data movement happens while the
//     source still serves, so the pause contains only the straggler
//     drain (one parallel target commit) and two control round trips.
//   - MigratedRelative: routed verified throughput on the successor
//     topology over the pre-split baseline, within-run. The gate holds
//     it to >= 90% — the split must not leave the data slower to serve.
//   - ReadFailures: verified-read errors observed by clients across the
//     whole split. The gate holds it to exactly zero.

// ReshardConfig parameterizes the online-split measurement.
type ReshardConfig struct {
	N      int
	Shards int // pre-split shard count; the last shard is split in two
	// Queries per throughput measurement (baseline and post-split).
	Queries int
	Workers int
	// Extent is the query width as a fraction of the key domain.
	Extent float64
	// Readers is the number of verified clients streaming through the
	// router for the whole life of the split.
	Readers int
	// WriteBatch records are committed as one group every WritePace —
	// the deployment's commit-group cadence, against which the cutover
	// pause is judged.
	WriteBatch int
	WritePace  time.Duration
	Dist       workload.Distribution
	Seed       int64
	Progress   func(string)
}

// DefaultReshardConfig mirrors the replica-tier geometry with a paced
// writer at a 25ms commit-group cadence.
func DefaultReshardConfig() ReshardConfig {
	return ReshardConfig{
		N:          60_000,
		Shards:     2,
		Queries:    300,
		Workers:    8,
		Extent:     0.001,
		Readers:    3,
		WriteBatch: 64,
		WritePace:  25 * time.Millisecond,
		Dist:       workload.UNF,
		Seed:       1,
	}
}

// ReshardResult is the machine-readable BENCH_reshard.json payload.
type ReshardResult struct {
	N          int  `json:"n"`
	Shards     int  `json:"shards"`
	PostShards int  `json:"postShards"`
	Workers    int  `json:"workers"`
	Queries    int  `json:"queries"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	SHANI      bool `json:"shaNI"`
	// BaselineQPS is routed verified-query throughput before the split;
	// MigratedQPS the same workload against the successor topology.
	BaselineQPS float64 `json:"baselineQueriesPerSec"`
	MigratedQPS float64 `json:"migratedQueriesPerSec"`
	// MigratedRelative = MigratedQPS / BaselineQPS, within-run. The CI
	// gate holds it to >= 0.9.
	MigratedRelative float64 `json:"migratedRelative"`
	// CutoverPauseMs is the freeze→router-ack window; the CI gate holds
	// it to at most one commit-group interval.
	CutoverPauseMs float64 `json:"cutoverPauseMs"`
	// CommitGroupIntervalMs is the measured mean time between the
	// writer's group commits during the split — the deployment's commit
	// cadence the pause is judged against.
	CommitGroupIntervalMs float64 `json:"commitGroupIntervalMs"`
	// ReadFailures counts verified-read errors across the split; the CI
	// gate holds it to exactly zero.
	ReadFailures int `json:"readFailures"`
	// ChurnReads is how many verified reads completed during the split
	// (denominator context for ReadFailures).
	ChurnReads int `json:"churnReads"`
	// GroupsStreamed and RecordsMigrated size the online copy.
	GroupsStreamed  int `json:"groupsStreamed"`
	RecordsMigrated int `json:"recordsMigrated"`
}

// RunReshard serves a sharded durable deployment on loopback behind the
// router, splits its hottest shard online under a live verified
// workload, and reports the pause, the throughput ratio and the failure
// count.
func RunReshard(cfg ReshardConfig) (ReshardResult, error) {
	res := ReshardResult{
		N: cfg.N, Shards: cfg.Shards, PostShards: cfg.Shards + 1,
		Workers: cfg.Workers, Queries: cfg.Queries,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SHANI:      digest.Accelerated,
	}
	if cfg.Progress != nil {
		cfg.Progress(fmt.Sprintf("reshard: %d records, %d shards, %d readers + paced writer...",
			cfg.N, cfg.Shards, cfg.Readers))
	}
	ds, err := workload.Generate(cfg.Dist, cfg.N, cfg.Seed)
	if err != nil {
		return res, err
	}
	plan := shard.PlanFor(ds.Records, cfg.Shards)
	parts := plan.Partition(ds.Records)

	var closers []interface{ Close() error }
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i].Close()
		}
	}()

	primAddrs := make([]string, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		dir, err := os.MkdirTemp("", "sae-reshard-bench-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		sys, err := core.OpenDurableSystem(dir, parts[i], 0)
		if err != nil {
			return res, err
		}
		closers = append(closers, sys)
		hub := replica.Attach(sys, 0)
		psrv, err := wire.ServePrimary("127.0.0.1:0", sys, hub, nil,
			wire.WithShardInfo(wire.ShardInfo{Index: i, Plan: plan}))
		if err != nil {
			return res, err
		}
		closers = append(closers, psrv)
		primAddrs[i] = psrv.Addr()
	}
	rt, err := router.New(router.Config{SPs: primAddrs, TEs: primAddrs})
	if err != nil {
		return res, err
	}
	closers = append(closers, rt)
	if err := rt.Serve("127.0.0.1:0"); err != nil {
		return res, err
	}

	measure := func() (float64, error) {
		vc, err := wire.DialVerified(rt.Addr())
		if err != nil {
			return 0, err
		}
		defer vc.Close()
		qs := workload.Queries(256, cfg.Extent, cfg.Seed+1)
		elapsed, err := driveWire(qs, cfg.Queries, cfg.Workers, func(q record.Range) ([]record.Record, error) {
			recs, _, err := vc.Query(q)
			return recs, err
		})
		if err != nil {
			return 0, err
		}
		return float64(cfg.Queries) / elapsed.Seconds(), nil
	}

	if cfg.Progress != nil {
		cfg.Progress("reshard: measuring pre-split baseline...")
	}
	if res.BaselineQPS, err = measure(); err != nil {
		return res, fmt.Errorf("baseline drive: %w", err)
	}

	// The live workload that spans the split: verified readers through
	// the router (zero tolerance) plus a paced group-commit writer into
	// the shard being split, which stops at the retirement fence.
	sh := cfg.Shards - 1
	span := plan.Span(sh)
	at := (span.Lo + record.KeyDomain) / 2
	next, err := plan.SplitShard(sh, []record.Key{at})
	if err != nil {
		return res, err
	}

	stop := make(chan struct{})
	var bg sync.WaitGroup
	readerErrs := make([]error, cfg.Readers)
	reads := make([]int, cfg.Readers)
	fails := make([]int, cfg.Readers)
	for w := 0; w < cfg.Readers; w++ {
		bg.Add(1)
		go func(w int) {
			defer bg.Done()
			vc, err := wire.DialVerified(rt.Addr())
			if err != nil {
				readerErrs[w] = err
				fails[w]++
				return
			}
			defer vc.Close()
			qs := workload.Queries(64, cfg.Extent, cfg.Seed+int64(100+w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := vc.Query(qs[i%len(qs)]); err != nil {
					readerErrs[w] = fmt.Errorf("read %d: %w", i, err)
					fails[w]++
					return
				}
				reads[w]++
			}
		}(w)
	}
	var (
		groups     int
		writeStart time.Time
		writeEnd   time.Time
		writerErr  error
	)
	bg.Add(1)
	go func() {
		defer bg.Done()
		wc, err := wire.DialSP(primAddrs[sh])
		if err != nil {
			writerErr = err
			return
		}
		defer wc.Close()
		tick := time.NewTicker(cfg.WritePace)
		defer tick.Stop()
		writeStart = time.Now()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			batch := make([]record.Record, cfg.WriteBatch)
			for j := range batch {
				key := span.Lo + record.Key(uint64(i*cfg.WriteBatch+j)*6151%uint64(record.KeyDomain-span.Lo))
				batch[j] = record.Synthesize(record.ID(1<<41+i*cfg.WriteBatch+j), key)
			}
			if err := wc.InsertBatch(batch); err != nil {
				if strings.Contains(err.Error(), "retired") {
					return // the fence: the shard has been migrated away
				}
				writerErr = err
				return
			}
			groups++
			writeEnd = time.Now()
		}
	}()

	if cfg.Progress != nil {
		cfg.Progress("reshard: splitting the hot shard online...")
	}
	dirs := []string{}
	for j := 0; j < 2; j++ {
		dir, err := os.MkdirTemp("", "sae-reshard-target-*")
		if err != nil {
			close(stop)
			bg.Wait()
			return res, err
		}
		defer os.RemoveAll(dir)
		dirs = append(dirs, dir)
	}
	co, rres, err := reshard.Run(reshard.Config{
		Current:    plan,
		Next:       next,
		FirstShard: sh,
		Replaced:   1,
		Primaries:  primAddrs,
		TargetDirs: dirs,
		Routers:    []string{rt.Addr()},
	})
	if err != nil {
		close(stop)
		bg.Wait()
		return res, fmt.Errorf("online split: %w", err)
	}
	closers = append(closers, co)

	// Let the workload breathe on the successor topology, then stop it.
	time.Sleep(4 * cfg.WritePace)
	close(stop)
	bg.Wait()
	if writerErr != nil {
		return res, fmt.Errorf("paced writer: %w", writerErr)
	}
	for _, n := range reads {
		res.ChurnReads += n
	}
	for w, n := range fails {
		res.ReadFailures += n
		if readerErrs[w] != nil && cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("reshard: reader %d FAILED: %v", w, readerErrs[w]))
		}
	}
	res.CutoverPauseMs = float64(rres.CutoverPause.Microseconds()) / 1e3
	if groups >= 1 && writeEnd.After(writeStart) {
		res.CommitGroupIntervalMs = float64(writeEnd.Sub(writeStart).Microseconds()) / 1e3 / float64(groups)
	}
	res.GroupsStreamed = rres.GroupsStreamed
	res.RecordsMigrated = rres.RecordsMigrated

	if cfg.Progress != nil {
		cfg.Progress("reshard: measuring post-split throughput...")
	}
	if res.MigratedQPS, err = measure(); err != nil {
		return res, fmt.Errorf("post-split drive: %w", err)
	}
	res.MigratedRelative = res.MigratedQPS / res.BaselineQPS
	return res, nil
}

// WriteReshardJSON emits the machine-readable BENCH_reshard.json
// payload.
func WriteReshardJSON(w io.Writer, res ReshardResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
