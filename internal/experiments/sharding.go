package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/workload"
)

// Shard-scaling experiment: aggregate verified-query throughput of a
// sharded SAE deployment as the shard count grows, under the paper's
// simulated I/O model. Each shard owns one simulated disk that serves one
// node access at a time (the per-access charge, scaled down to keep runs
// fast); sharding multiplies the deployment's aggregate I/O bandwidth, so
// throughput should scale near-linearly until queries start spanning
// multiple shards or the workload skews onto one partition.

// ShardConfig parameterizes the scaling run.
type ShardConfig struct {
	// N is the total dataset cardinality, split across the shards.
	N int
	// ShardCounts are the deployment sizes to sweep.
	ShardCounts []int
	// Queries per deployment size.
	Queries int
	// Workers is the number of concurrent clients driving each deployment.
	Workers int
	// PerAccess is the simulated I/O charge per node access at each
	// shard's disk (the paper's 10 ms, scaled down).
	PerAccess time.Duration
	// Extent is the query width as a fraction of the key domain.
	Extent   float64
	Dist     workload.Distribution
	Seed     int64
	Progress func(string)
}

// DefaultShardConfig mirrors the root BenchmarkShardedQueries geometry.
// The per-access charge is the paper's 10 ms scaled ~67x down and the
// extent narrowed to 0.1%, which keeps each query's simulated I/O an
// order of magnitude above its real CPU (hashing + record copies) — the
// disk-bound regime where sharding's extra spindles are the payoff — while
// a full sweep still finishes in seconds. Workers comfortably exceed the
// largest deployment so every disk stays busy.
func DefaultShardConfig() ShardConfig {
	return ShardConfig{
		N:           100_000,
		ShardCounts: []int{1, 2, 4, 8},
		Queries:     600,
		Workers:     32,
		PerAccess:   150 * time.Microsecond,
		Extent:      0.001,
		Dist:        workload.UNF,
		Seed:        1,
	}
}

// ShardCell is one deployment size's measurement.
type ShardCell struct {
	Shards        int     `json:"shards"`
	Queries       int     `json:"queries"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	// Speedup is relative to the 1-shard deployment in the same run.
	Speedup float64 `json:"speedup"`
	// AvgShardsTouched is the mean number of shards a query scattered to.
	AvgShardsTouched float64 `json:"avg_shards_touched"`
}

// SimDisks models one serial disk per shard as a virtual-time FIFO
// queue: each sub-request atomically reserves the disk's next-free
// interval and sleeps until its reservation ends. Different shards' disks
// run in parallel; one shard's requests serialize in virtual time — the
// aggregate service rate is exactly one access per PerAccess per disk,
// with none of the wake-up convoy a sleep-under-mutex model suffers at
// high worker counts.
type SimDisks struct {
	next []atomic.Int64 // per-disk next-free time, ns since start
	base time.Time
}

// NewSimDisks returns one virtual-time disk per shard.
func NewSimDisks(shards int) *SimDisks {
	return &SimDisks{next: make([]atomic.Int64, shards), base: time.Now()}
}

// Stall charges one shard's disk for d and waits until the reserved
// interval has passed.
func (s *SimDisks) Stall(shard int, d time.Duration) {
	if d <= 0 {
		return
	}
	for {
		now := int64(time.Since(s.base))
		cur := s.next[shard].Load()
		start := cur
		if now > start {
			start = now // disk was idle: service begins immediately
		}
		end := start + int64(d)
		if s.next[shard].CompareAndSwap(cur, end) {
			time.Sleep(time.Duration(end - now))
			return
		}
	}
}

// driveSharded runs queries against a sharded system from `workers`
// concurrent clients, charging every shard's accesses to that shard's
// simulated disk. It returns the elapsed wall time and the total number
// of shard touches.
func driveSharded(sys *core.ShardedSystem, disks *SimDisks, qs []record.Range, workers int, perAccess time.Duration) (time.Duration, int64, error) {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstE  error
		touches int64
	)
	next := make(chan int)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var localTouches int64
			for i := range next {
				out, err := sys.Query(qs[i%len(qs)])
				if err == nil && out.VerifyErr != nil {
					err = out.VerifyErr
				}
				if err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = err
					}
					mu.Unlock()
					continue
				}
				// Pay each shard's I/O at that shard's disk. Different
				// shards stall in parallel across workers; the same shard
				// serializes — exactly what an N-disk deployment buys.
				for _, pc := range out.PerShard {
					accesses := pc.SPCost.Total().Accesses + pc.TECost.Accesses
					disks.Stall(pc.Shard, time.Duration(accesses)*perAccess)
					localTouches++
				}
			}
			mu.Lock()
			touches += localTouches
			mu.Unlock()
		}()
	}
	for i := 0; i < len(qs); i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return time.Since(start), touches, firstE
}

// RunShardScaling builds one sharded deployment per shard count over the
// same dataset and measures aggregate verified-query throughput under the
// simulated per-shard disks.
func RunShardScaling(cfg ShardConfig) ([]ShardCell, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	ds, err := workload.Generate(cfg.Dist, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Extent <= 0 {
		cfg.Extent = workload.DefaultExtent
	}
	qs := workload.Queries(256, cfg.Extent, cfg.Seed+1)
	cells := make([]ShardCell, 0, len(cfg.ShardCounts))
	var base float64
	for _, shards := range cfg.ShardCounts {
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("shard scaling: %d shards over %d records...", shards, cfg.N))
		}
		sys, err := core.NewShardedSystem(ds.Records, shards)
		if err != nil {
			return nil, err
		}
		disks := NewSimDisks(sys.Plan.Shards())
		// Warm once so first-touch cache fills don't skew the smallest run.
		if _, _, err := driveSharded(sys, disks, qs[:min(64, len(qs))], cfg.Workers, 0); err != nil {
			return nil, err
		}
		elapsed, touches, err := DriveSharded(sys, disks, qs, cfg.Queries, cfg.Workers, cfg.PerAccess)
		if err != nil {
			return nil, err
		}
		qps := float64(cfg.Queries) / elapsed.Seconds()
		cell := ShardCell{
			Shards:           shards,
			Queries:          cfg.Queries,
			ElapsedMS:        float64(elapsed.Milliseconds()),
			QueriesPerSec:    qps,
			AvgShardsTouched: float64(touches) / float64(cfg.Queries),
		}
		if base == 0 {
			base = qps
		}
		cell.Speedup = qps / base
		cells = append(cells, cell)
	}
	return cells, nil
}

// DriveSharded runs `count` verified queries (cycled from qs) against a
// sharded system from `workers` concurrent clients, charging every
// shard's node accesses to that shard's simulated disk. It returns the
// elapsed wall time and the total number of shard touches. Shared by
// RunShardScaling and the root BenchmarkShardedQueries so the benchmark
// and BENCH_shard.json measure exactly the same thing.
func DriveSharded(sys *core.ShardedSystem, disks *SimDisks, qs []record.Range, count, workers int, perAccess time.Duration) (time.Duration, int64, error) {
	repeated := make([]record.Range, count)
	for i := range repeated {
		repeated[i] = qs[i%len(qs)]
	}
	return driveSharded(sys, disks, repeated, workers, perAccess)
}

// WriteShardJSON emits the machine-readable BENCH_shard.json payload.
func WriteShardJSON(w io.Writer, cells []ShardCell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Benchmark string      `json:"benchmark"`
		Unit      string      `json:"unit"`
		Cells     []ShardCell `json:"results"`
	}{Benchmark: "sharded_queries", Unit: "queries_per_sec", Cells: cells})
}
