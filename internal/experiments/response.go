package experiments

import (
	"fmt"
	"time"

	"sae/internal/costmodel"
	"sae/internal/record"
)

// The paper's closing claim is that SAE gives the client a lower response
// time — the interval between sending the query and finishing verification.
// This extension table models it with an explicit network: the client talks
// to the SP and TE in parallel under SAE, and to the SP alone under TOM.
//
//	SAE: max(SP processing + result transfer, TE processing + VT transfer) + verify
//	TOM: SP processing + (result + VO) transfer + verify
//
// Transfer time = RTT + bytes / bandwidth.

// NetworkModel prices a transfer.
type NetworkModel struct {
	RTT       time.Duration
	Bandwidth float64 // bytes per second
}

// DefaultNetwork approximates the paper era's broadband WAN: 20 ms RTT,
// 10 Mbit/s downstream.
var DefaultNetwork = NetworkModel{RTT: 20 * time.Millisecond, Bandwidth: 10e6 / 8}

// Transfer returns the time to move n bytes.
func (nm NetworkModel) Transfer(n int64) time.Duration {
	return nm.RTT + time.Duration(float64(n)/nm.Bandwidth*float64(time.Second))
}

// ResponseTimes computes both models' client-perceived latency for a cell.
func ResponseTimes(c *Cell, nm NetworkModel) (sae, tom time.Duration) {
	resultBytes := int64(c.AvgResultSize * record.Size)
	spLeg := c.SAESPTotal().Total() + nm.Transfer(resultBytes)
	teLeg := c.SAETE.Total() + nm.Transfer(int64(c.VTBytes))
	sae = spLeg
	if teLeg > sae {
		sae = teLeg
	}
	sae += c.SAEClient.Total()

	tom = c.TOMSPTotal().Total() + nm.Transfer(resultBytes+int64(c.AvgVOBytes)) + c.TOMClient.Total()
	return sae, tom
}

// BuildResponseTime renders the response-time extension table.
func BuildResponseTime(cells []*Cell, nm NetworkModel) *Table {
	t := &Table{
		Title: fmt.Sprintf("Extension — client response time (ms; network RTT %v, %.0f Mbit/s)",
			nm.RTT, nm.Bandwidth*8/1e6),
		Columns: []string{"dist", "n", "SAE", "TOM", "saving"},
	}
	for _, c := range cells {
		sae, tom := ResponseTimes(c, nm)
		t.Rows = append(t.Rows, []string{
			string(c.Dist),
			fmt.Sprintf("%d", c.N),
			fmt.Sprintf("%.0f", costmodel.Millis(sae)),
			fmt.Sprintf("%.0f", costmodel.Millis(tom)),
			fmt.Sprintf("%.0f%%", 100*(1-costmodel.Millis(sae)/costmodel.Millis(tom))),
		})
	}
	return t
}
