// Package costmodel turns page-access counts into the simulated processing
// times the paper reports: "when measuring processing cost, we charge 10
// milli-seconds for each node access". CPU time (hashing, XORing, signature
// checks) is measured on the real clock and reported separately.
package costmodel

import (
	"fmt"
	"time"

	"sae/internal/pagestore"
)

// DefaultPerAccess is the paper's charge per node (page) access.
const DefaultPerAccess = 10 * time.Millisecond

// Model prices page accesses.
type Model struct {
	PerAccess time.Duration
}

// Default is the paper's cost model.
var Default = Model{PerAccess: DefaultPerAccess}

// IOCost returns the simulated I/O time for a number of node accesses.
func (m Model) IOCost(accesses int64) time.Duration {
	return time.Duration(accesses) * m.PerAccess
}

// Breakdown is the cost of one measured operation.
type Breakdown struct {
	Accesses int64         // node accesses charged
	IO       time.Duration // Accesses × PerAccess
	CPU      time.Duration // measured wall time of the computation itself
}

// Measure prices a stats delta plus measured CPU time.
func (m Model) Measure(delta pagestore.Stats, cpu time.Duration) Breakdown {
	return Breakdown{
		Accesses: delta.Accesses(),
		IO:       m.IOCost(delta.Accesses()),
		CPU:      cpu,
	}
}

// Total returns IO + CPU.
func (b Breakdown) Total() time.Duration { return b.IO + b.CPU }

// Add accumulates another breakdown.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Accesses: b.Accesses + o.Accesses,
		IO:       b.IO + o.IO,
		CPU:      b.CPU + o.CPU,
	}
}

// Div averages the breakdown over n operations.
func (b Breakdown) Div(n int) Breakdown {
	if n == 0 {
		return Breakdown{}
	}
	return Breakdown{
		Accesses: b.Accesses / int64(n),
		IO:       b.IO / time.Duration(n),
		CPU:      b.CPU / time.Duration(n),
	}
}

// Millis renders a duration as fractional milliseconds for report tables.
func Millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// String summarizes the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("%.1fms (io %.1fms over %d accesses, cpu %.2fms)",
		Millis(b.Total()), Millis(b.IO), b.Accesses, Millis(b.CPU))
}
