package costmodel

import (
	"testing"
	"time"

	"sae/internal/pagestore"
)

func TestIOCost(t *testing.T) {
	if got := Default.IOCost(7); got != 70*time.Millisecond {
		t.Fatalf("IOCost(7) = %v, want 70ms", got)
	}
	if got := Default.IOCost(0); got != 0 {
		t.Fatalf("IOCost(0) = %v, want 0", got)
	}
}

func TestMeasure(t *testing.T) {
	delta := pagestore.Stats{Reads: 3, Writes: 2}
	b := Default.Measure(delta, 5*time.Millisecond)
	if b.Accesses != 5 {
		t.Fatalf("Accesses = %d, want 5", b.Accesses)
	}
	if b.IO != 50*time.Millisecond {
		t.Fatalf("IO = %v, want 50ms", b.IO)
	}
	if b.Total() != 55*time.Millisecond {
		t.Fatalf("Total = %v, want 55ms", b.Total())
	}
}

func TestAddDiv(t *testing.T) {
	a := Breakdown{Accesses: 10, IO: 100 * time.Millisecond, CPU: 10 * time.Millisecond}
	sum := a.Add(a).Add(a).Add(a)
	if sum.Accesses != 40 {
		t.Fatalf("sum accesses = %d", sum.Accesses)
	}
	avg := sum.Div(4)
	if avg != a {
		t.Fatalf("avg = %+v, want %+v", avg, a)
	}
	if (Breakdown{}).Div(0) != (Breakdown{}) {
		t.Fatal("Div(0) must return zero breakdown")
	}
}

func TestMillis(t *testing.T) {
	if got := Millis(1500 * time.Microsecond); got != 1.5 {
		t.Fatalf("Millis = %v, want 1.5", got)
	}
}

func TestString(t *testing.T) {
	b := Breakdown{Accesses: 2, IO: 20 * time.Millisecond, CPU: time.Millisecond}
	if s := b.String(); s == "" {
		t.Fatal("empty String()")
	}
}
