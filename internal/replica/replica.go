package replica

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/exec"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/wal"
)

// ErrGap reports that the pulled group stream does not continue the
// replica's sequence — groups were lost (or the hub's retention window
// moved past us) and the replica must re-bootstrap from a snapshot.
var ErrGap = errors.New("replica: group stream gap")

// Replica is one read replica of a shard's SAE primary: a full SP+TE
// pair rebuilt from a sequence-stamped snapshot and advanced by whole
// commit groups. Construction and group application run the exact code
// paths the primary's own crash recovery runs (bulkload + ApplyBatchCtx),
// which is what makes replica answers bit-identical to the primary's at
// the same generation stamp.
//
// The replica-level lock orders group application against verified
// serving: ServeVerified returns records, a token and a stamp that all
// belong to one group boundary, never a mid-apply mixture.
type Replica struct {
	mu    sync.RWMutex
	owner *core.DataOwner
	sp    *core.ServiceProvider
	te    *core.TrustedEntity
	seq   uint64
}

// NewFromSnapshot builds a replica from a snapshot's record set and the
// generation stamp it was cut at.
func NewFromSnapshot(recs []record.Record, seq uint64) (*Replica, error) {
	r := &Replica{}
	if err := r.load(recs, seq); err != nil {
		return nil, err
	}
	return r, nil
}

// load rebuilds the parties from scratch, mirroring the primary's own
// checkpoint rebuild (OpenDurableSystem): owner over the record set,
// bulkloaded SP and TE over fresh in-memory page stores.
func (r *Replica) load(recs []record.Record, seq uint64) error {
	owner := core.NewDataOwner(recs)
	sp := core.NewServiceProvider(pagestore.NewMem())
	te := core.NewTrustedEntity(pagestore.NewMem())
	sorted := append([]record.Record(nil), recs...)
	slices.SortFunc(sorted, record.SortByKey)
	if err := owner.Outsource(sp, te, sorted); err != nil {
		return fmt.Errorf("replica: rebuilding from snapshot: %w", err)
	}
	r.owner, r.sp, r.te, r.seq = owner, sp, te, seq
	return nil
}

// Reset replaces the replica's whole state with a fresh snapshot — the
// catch-up path when the hub's retention window has moved past us.
// Serving continues on the old state until the swap, then atomically
// jumps to the new generation.
func (r *Replica) Reset(recs []record.Record, seq uint64) error {
	// Build outside the lock (bulkload is the expensive part), swap under
	// it.
	nr := &Replica{}
	if err := nr.load(recs, seq); err != nil {
		return err
	}
	r.mu.Lock()
	r.owner, r.sp, r.te, r.seq = nr.owner, nr.sp, nr.te, nr.seq
	r.mu.Unlock()
	return nil
}

// ApplyGroups advances the replica by whole commit groups. Groups at or
// below the replica's sequence are skipped (idempotent re-delivery); a
// group that does not continue the sequence returns ErrGap and applies
// nothing further. A non-gap apply error leaves the replica torn between
// parties and the caller must Reset from a snapshot.
func (r *Replica) ApplyGroups(groups []wal.Group) error {
	if len(groups) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ctx := exec.NewContext()
	for _, g := range groups {
		if g.Seq <= r.seq {
			continue
		}
		if g.Seq != r.seq+1 {
			return fmt.Errorf("%w: at %d, next group is %d", ErrGap, r.seq, g.Seq)
		}
		if err := r.sp.ApplyBatchCtx(ctx, g.Ops); err != nil {
			return fmt.Errorf("replica: applying group %d to SP: %w", g.Seq, err)
		}
		if err := r.te.ApplyBatchCtx(ctx, g.Ops); err != nil {
			return fmt.Errorf("replica: applying group %d to TE: %w", g.Seq, err)
		}
		for i := range g.Ops {
			switch g.Ops[i].Kind {
			case wal.OpInsert:
				r.owner.Restore([]record.Record{g.Ops[i].Rec})
			case wal.OpDelete:
				r.owner.Forget([]record.ID{g.Ops[i].ID})
			}
		}
		r.seq = g.Seq
	}
	return nil
}

// Seq returns the replica's generation stamp: the sequence of the last
// commit group folded into its state.
func (r *Replica) Seq() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seq
}

// Count returns the replica's record count.
func (r *Replica) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.owner.Count()
}

// SP exposes the replica's service provider for plain (non-stamped) read
// serving. Plain reads are individually safe against concurrent group
// application (the SP has its own lock) but a records+token pair fetched
// as two plain requests may straddle a group boundary — use
// ServeVerified when the pair must be atomic. The lock covers only the
// pointer read (Reset swaps the parties wholesale).
func (r *Replica) SP() *core.ServiceProvider {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sp
}

// TE exposes the replica's trusted entity for plain token serving; see SP
// for the consistency caveat.
func (r *Replica) TE() *core.TrustedEntity {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.te
}

// ServeVerified answers one range query atomically at a single group
// boundary: the emitted records, the verification token and the returned
// generation stamp are mutually consistent even while the feed is
// applying groups. The triple verifies with the unchanged XOR check.
func (r *Replica) ServeVerified(q record.Range, emit func(*record.Record) error) (n int, vt digest.Digest, seq uint64, err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ctx := exec.NewContext()
	n, _, err = r.sp.ServeRangeCtx(ctx, q, emit)
	if err != nil {
		return 0, digest.Zero, 0, err
	}
	vt, _, err = r.te.GenerateVTCtx(ctx, q)
	if err != nil {
		return 0, digest.Zero, 0, err
	}
	return n, vt, r.seq, nil
}

// Query is ServeVerified with materialized records (tests, tools).
func (r *Replica) Query(q record.Range) ([]record.Record, digest.Digest, uint64, error) {
	var recs []record.Record
	_, vt, seq, err := r.ServeVerified(q, func(rec *record.Record) error {
		recs = append(recs, *rec)
		return nil
	})
	return recs, vt, seq, err
}
