package replica

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/workload"
)

func newPrimary(t *testing.T, n int, maxGroup int) (*core.DurableSystem, *Hub) {
	t.Helper()
	ds, err := workload.Generate(workload.UNF, n, 7)
	if err != nil {
		t.Fatalf("generating dataset: %v", err)
	}
	sys, err := core.OpenDurableSystem(t.TempDir(), ds.Records, maxGroup)
	if err != nil {
		t.Fatalf("opening durable system: %v", err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys, Attach(sys, 0)
}

func bootstrap(t *testing.T, h *Hub) *Replica {
	t.Helper()
	recs, seq, err := h.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	r, err := NewFromSnapshot(recs, seq)
	if err != nil {
		t.Fatalf("bootstrapping replica: %v", err)
	}
	return r
}

// catchUp pulls groups from the hub until the replica has the hub's
// newest sequence, re-bootstrapping if the retention window moved past.
func catchUp(t *testing.T, h *Hub, r *Replica) {
	t.Helper()
	for {
		gs, snap, last := h.Since(r.Seq(), 8)
		if snap {
			recs, seq, err := h.Snapshot()
			if err != nil {
				t.Fatalf("re-snapshot: %v", err)
			}
			if err := r.Reset(recs, seq); err != nil {
				t.Fatalf("reset: %v", err)
			}
			continue
		}
		if err := r.ApplyGroups(gs); err != nil {
			t.Fatalf("applying groups: %v", err)
		}
		if r.Seq() >= last {
			return
		}
	}
}

// assertParity checks the replica against the primary record-for-record,
// token-for-token, at the same generation stamp: the bit-identical claim.
func assertParity(t *testing.T, sys *core.DurableSystem, r *Replica) {
	t.Helper()
	if got, want := r.Seq(), sys.Seq(); got != want {
		t.Fatalf("generation stamp: replica %d, primary %d", got, want)
	}
	ranges := []record.Range{
		{Lo: 0, Hi: record.KeyDomain},
		{Lo: 100_000, Hi: 400_000},
		{Lo: 9_000_000, Hi: record.KeyDomain},
		{Lo: 5_000_000, Hi: 5_000_000},
	}
	for _, q := range ranges {
		prec, _, err := sys.SP.Query(q)
		if err != nil {
			t.Fatalf("primary query %v: %v", q, err)
		}
		pvt, _, err := sys.TE.GenerateVT(q)
		if err != nil {
			t.Fatalf("primary VT %v: %v", q, err)
		}
		rrec, rvt, _, err := r.Query(q)
		if err != nil {
			t.Fatalf("replica query %v: %v", q, err)
		}
		if pvt != rvt {
			t.Fatalf("VT mismatch over %v: primary %x, replica %x", q, pvt, rvt)
		}
		if len(prec) != len(rrec) {
			t.Fatalf("result size over %v: primary %d, replica %d", q, len(prec), len(rrec))
		}
		var pb, rb []byte
		for i := range prec {
			pb = prec[i].AppendBinary(pb[:0])
			rb = rrec[i].AppendBinary(rb[:0])
			if !bytes.Equal(pb, rb) {
				t.Fatalf("record %d over %v not bit-identical", i, q)
			}
		}
		// The replica's answers must pass the client's unchanged XOR check.
		if _, err := (core.Client{}).Verify(q, rrec, rvt); err != nil {
			t.Fatalf("verifying replica answer over %v: %v", q, err)
		}
		ptok, _, err := sys.TE.AggToken(q)
		if err != nil {
			t.Fatalf("primary agg token %v: %v", q, err)
		}
		rtok, _, err := r.TE().AggToken(q)
		if err != nil {
			t.Fatalf("replica agg token %v: %v", q, err)
		}
		if !bytes.Equal(ptok.AppendTo(nil), rtok.AppendTo(nil)) {
			t.Fatalf("aggregate token mismatch over %v", q)
		}
	}
	if got, want := r.Count(), sys.Owner.Count(); got != want {
		t.Fatalf("record count: replica %d, primary %d", got, want)
	}
}

// TestParityUnderWrites drives mixed insert/delete rounds through the
// primary's commit pipeline with the replica tailing by delta pulls, and
// asserts full bit parity (records, VTs, aggregate tokens, generation
// stamp) after every catch-up.
func TestParityUnderWrites(t *testing.T) {
	sys, hub := newPrimary(t, 2000, 16)
	rep := bootstrap(t, hub)
	assertParity(t, sys, rep)

	var inserted []record.ID
	for round := 0; round < 12; round++ {
		keys := make([]record.Key, 20)
		for i := range keys {
			keys[i] = record.Key((round*31 + i*997) % record.KeyDomain)
		}
		recs, err := sys.InsertBatch(keys)
		if err != nil {
			t.Fatalf("round %d insert: %v", round, err)
		}
		for i := range recs {
			inserted = append(inserted, recs[i].ID)
		}
		if len(inserted) >= 10 {
			if err := sys.DeleteBatch(inserted[:5]); err != nil {
				t.Fatalf("round %d delete: %v", round, err)
			}
			inserted = inserted[5:]
		}
		catchUp(t, hub, rep)
		assertParity(t, sys, rep)
	}
}

// TestGapForcesSnapshot holds a replica back past the hub's retention
// window and checks the protocol pushes it through a full re-bootstrap,
// after which parity holds again.
func TestGapForcesSnapshot(t *testing.T) {
	sys, hub := newPrimary(t, 500, 4)
	hub.retain = 4 // tiny window so a short stall falls behind
	rep := bootstrap(t, hub)

	// Advance the primary far past the window while the replica sleeps.
	for i := 0; i < 12; i++ {
		if _, err := sys.InsertBatch([]record.Key{record.Key(i * 1000)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	gs, snap, _ := hub.Since(rep.Seq(), 0)
	if !snap {
		t.Fatalf("expected snapshotNeeded after falling %d groups behind, got %d groups", 12, len(gs))
	}
	// Feeding a non-contiguous stream directly must fail loudly, not
	// corrupt silently.
	tail, _, _ := hub.Since(sys.Seq()-2, 0)
	if err := rep.ApplyGroups(tail); !errors.Is(err, ErrGap) {
		t.Fatalf("applying gapped stream: got %v, want ErrGap", err)
	}
	catchUp(t, hub, rep)
	assertParity(t, sys, rep)
}

// TestIdempotentRedelivery re-applies already-folded groups and checks
// they are skipped rather than double-applied.
func TestIdempotentRedelivery(t *testing.T) {
	sys, hub := newPrimary(t, 300, 8)
	rep := bootstrap(t, hub)
	if _, err := sys.InsertBatch([]record.Key{1, 2, 3}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	gs, _, _ := hub.Since(rep.Seq(), 0)
	if err := rep.ApplyGroups(gs); err != nil {
		t.Fatalf("first apply: %v", err)
	}
	if err := rep.ApplyGroups(gs); err != nil {
		t.Fatalf("redelivery: %v", err)
	}
	assertParity(t, sys, rep)
}

// TestServeWhileApplying races verified serving against a live feed and
// a primary write burst (run under -race). Every answer must verify and
// carry a non-decreasing generation stamp.
func TestServeWhileApplying(t *testing.T) {
	sys, hub := newPrimary(t, 1000, 8)
	rep := bootstrap(t, hub)

	stop := make(chan struct{})
	var bg, readers sync.WaitGroup

	// Primary writer. Bounded so the race-instrumented run stays cheap;
	// once the budget is spent it just waits for the readers.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for i := 0; i < 800; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sys.InsertBatch([]record.Key{record.Key((i * 137) % record.KeyDomain)}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	// Replica feed.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			gs, snap, last := hub.Since(rep.Seq(), 4)
			if snap {
				recs, seq, err := hub.Snapshot()
				if err != nil {
					t.Errorf("feed snapshot: %v", err)
					return
				}
				if err := rep.Reset(recs, seq); err != nil {
					t.Errorf("feed reset: %v", err)
					return
				}
				continue
			}
			if err := rep.ApplyGroups(gs); err != nil {
				t.Errorf("feed apply: %v", err)
				return
			}
			if rep.Seq() >= last {
				time.Sleep(200 * time.Microsecond) // caught up; don't spin
			}
		}
	}()

	// Verified readers.
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			var lastGen uint64
			q := record.Range{Lo: record.Key(w * 1_000_000), Hi: record.Key(w*1_000_000 + 3_000_000)}
			for i := 0; i < 80; i++ {
				recs, vt, gen, err := rep.Query(q)
				if err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
				if _, err := (core.Client{}).Verify(q, recs, vt); err != nil {
					t.Errorf("reader %d: verification failed at gen %d: %v", w, gen, err)
					return
				}
				if gen < lastGen {
					t.Errorf("reader %d: generation went backwards: %d after %d", w, gen, lastGen)
					return
				}
				lastGen = gen
			}
		}(w)
	}

	// Let readers finish, then stop writer and feed.
	readers.Wait()
	close(stop)
	bg.Wait()

	catchUp(t, hub, rep)
	assertParity(t, sys, rep)
}
