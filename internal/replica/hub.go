// Package replica adds read replicas to a shard's SAE primary. A replica
// is bootstrapped from a sequence-stamped DurableSystem snapshot (the
// checkpoint's own byte format) and kept current by tailing the
// primary's WAL commit groups; it applies whole groups through the very
// ApplyBatchCtx path the primary ran, so its pages, verification tokens
// and aggregate tokens stay bit-identical to the primary's at the same
// generation stamp — parity-tested, not assumed.
//
// Replicas need no new trust machinery: SAE verification is end-to-end,
// so any replica's answer must pass the same XOR-VT check a primary's
// would, and a corrupted or lagging replica can at worst fail loudly.
// What a replica must prove is freshness, which is why every verified
// answer carries the generation stamp of the commit group it was served
// at: the router (and paranoid clients) bound staleness against it.
package replica

import (
	"sync"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/wal"
)

// DefaultRetain is how many recent commit groups a hub keeps for delta
// catch-up before a lagging replica is pushed back to a full snapshot.
const DefaultRetain = 256

// Hub sits on a primary's group committer and retains the most recent
// commit groups for replica tailing. It is the primary-side half of the
// replication protocol: replicas pull groups after their own sequence,
// and when they have fallen behind the retention window the hub tells
// them to re-bootstrap from a fresh snapshot instead.
type Hub struct {
	ds *core.DurableSystem

	mu     sync.Mutex
	groups []wal.Group // retained groups, contiguous ascending sequences
	last   uint64      // sequence of the newest applied group
	retain int
}

// Attach hooks a hub onto ds's committer. Attach before the system sees
// write traffic (or while quiesced); retain <= 0 selects DefaultRetain.
func Attach(ds *core.DurableSystem, retain int) *Hub {
	if retain <= 0 {
		retain = DefaultRetain
	}
	h := &Hub{ds: ds, retain: retain, last: ds.Seq()}
	ds.Committer().SetCommitHook(h.onCommit)
	return h
}

// onCommit runs under the commit lock, once per applied group, in
// sequence order. The committer builds a fresh ops slice per group, so
// retaining it without a copy is safe.
func (h *Hub) onCommit(seq uint64, ops []wal.Op) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if seq != h.last+1 {
		// A sequence was skipped (an apply failed mid-stream). The ring
		// must stay contiguous or Since would hand out streams with holes;
		// drop it and force every tailer through a snapshot.
		h.groups = h.groups[:0]
	}
	h.groups = append(h.groups, wal.Group{Seq: seq, Ops: ops})
	if len(h.groups) > h.retain {
		// Copy down instead of reslicing so evicted groups are actually
		// released rather than pinned by the backing array.
		n := copy(h.groups, h.groups[len(h.groups)-h.retain:])
		for i := n; i < len(h.groups); i++ {
			h.groups[i] = wal.Group{}
		}
		h.groups = h.groups[:n]
	}
	h.last = seq
}

// Last returns the newest retained sequence (the primary's generation
// stamp as the hub has observed it).
func (h *Hub) Last() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}

// Since returns up to max retained groups with sequences above after,
// plus the hub's newest sequence. snapshotNeeded reports that the
// retention window no longer reaches back to after — the tailer must
// re-bootstrap from Snapshot before pulling again. max <= 0 means all.
func (h *Hub) Since(after uint64, max int) (gs []wal.Group, snapshotNeeded bool, last uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if after >= h.last {
		return nil, false, h.last
	}
	if len(h.groups) == 0 || h.groups[0].Seq > after+1 {
		return nil, true, h.last
	}
	// Sequences are contiguous, so the first wanted group sits at a
	// computable offset.
	idx := int(after + 1 - h.groups[0].Seq)
	end := len(h.groups)
	if max > 0 && idx+max < end {
		end = idx + max
	}
	return append([]wal.Group(nil), h.groups[idx:end]...), false, h.last
}

// Snapshot cuts a sequence-stamped record dump at a commit boundary: the
// record set and the stamp belong to the same generation even under a
// live write burst. This is exactly the content a DurableSystem
// checkpoint would hold at that boundary.
func (h *Hub) Snapshot() ([]record.Record, uint64, error) {
	return h.ds.SnapshotRecords()
}
