package sigs

import (
	"testing"

	"sae/internal/digest"
)

func newSigner(t *testing.T) *Signer {
	t.Helper()
	s, err := NewSigner()
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	return s
}

func TestSignVerify(t *testing.T) {
	s := newSigner(t)
	d := digest.OfBytes([]byte("root"))
	sig, err := s.Sign(d)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if len(sig) != SignatureSize {
		t.Fatalf("signature size = %d, want %d", len(sig), SignatureSize)
	}
	if err := s.Verifier().Verify(d, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsWrongDigest(t *testing.T) {
	s := newSigner(t)
	sig, err := s.Sign(digest.OfBytes([]byte("root")))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := s.Verifier().Verify(digest.OfBytes([]byte("other")), sig); err == nil {
		t.Fatal("Verify accepted a signature over a different digest")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	s := newSigner(t)
	d := digest.OfBytes([]byte("root"))
	sig, err := s.Sign(d)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	sig[0] ^= 0xFF
	if err := s.Verifier().Verify(d, sig); err == nil {
		t.Fatal("Verify accepted a corrupted signature")
	}
}

func TestVerifyRejectsForeignKey(t *testing.T) {
	a, b := newSigner(t), newSigner(t)
	d := digest.OfBytes([]byte("root"))
	sig, err := a.Sign(d)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := b.Verifier().Verify(d, sig); err == nil {
		t.Fatal("Verify accepted a signature from a different owner key")
	}
}
