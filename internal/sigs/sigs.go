// Package sigs provides the public-key signature scheme used by the
// traditional outsourcing model (TOM): the data owner signs the MB-Tree's
// root digest, the service provider stores the signature alongside the tree,
// and clients verify the reconstructed root against it.
//
// The paper uses an RSA cryptosystem via Crypto++; we use the standard
// library's crypto/rsa with PKCS #1 v1.5 over the SHA-1 root digest.
package sigs

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"fmt"

	"sae/internal/digest"
)

// KeyBits is the RSA modulus size. 1024 bits matches the era of the paper's
// experiments; Signature sizes (128 bytes) feed the VO-size accounting.
const KeyBits = 1024

// SignatureSize is the byte length of a signature under KeyBits.
const SignatureSize = KeyBits / 8

// Signer holds the data owner's private key.
type Signer struct {
	priv *rsa.PrivateKey
}

// Verifier holds the public half, distributed to clients out of band.
type Verifier struct {
	pub *rsa.PublicKey
}

// NewSigner generates a fresh owner key pair.
func NewSigner() (*Signer, error) {
	priv, err := rsa.GenerateKey(rand.Reader, KeyBits)
	if err != nil {
		return nil, fmt.Errorf("sigs: generating owner key: %w", err)
	}
	return &Signer{priv: priv}, nil
}

// Verifier returns the verifier for this signer's public key.
func (s *Signer) Verifier() *Verifier {
	return &Verifier{pub: &s.priv.PublicKey}
}

// Sign signs a root digest.
func (s *Signer) Sign(d digest.Digest) ([]byte, error) {
	sig, err := rsa.SignPKCS1v15(rand.Reader, s.priv, crypto.SHA1, d[:])
	if err != nil {
		return nil, fmt.Errorf("sigs: signing root digest: %w", err)
	}
	return sig, nil
}

// Verify checks that sig is a valid signature over d.
func (v *Verifier) Verify(d digest.Digest, sig []byte) error {
	if err := rsa.VerifyPKCS1v15(v.pub, crypto.SHA1, d[:], sig); err != nil {
		return fmt.Errorf("sigs: root signature rejected: %w", err)
	}
	return nil
}
