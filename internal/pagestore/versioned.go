package pagestore

import (
	"fmt"
	"sync"
)

// Versioned wraps a Store with page-level multi-version concurrency
// control, the substrate for MVCC snapshot reads: a reader opens a
// snapshot at the current generation and keeps seeing exactly that state
// — bit-identical pages — no matter how many commit groups the writer
// applies after, while the writer never waits for the reader.
//
// The mechanism is copy-on-write at the page level. Every page carries
// the generation it was last written in. Opening a snapshot captures the
// current generation S and advances the store's generation, so every
// later write is stamped > S; the first write (or free) of a page whose
// current content is visible to an open snapshot saves the old bytes
// into a version chain before the overwrite. A snapshot read returns the
// live page when its stamp is <= S, else the newest saved version
// stamped <= S. Version memory is bounded by the pages rewritten while a
// snapshot is open and is released when the last snapshot closes.
//
// Generations advance only at snapshot opens, so a write-only workload
// (no snapshots) pays one map update per write and saves nothing.
type Versioned struct {
	inner Store

	mu      sync.RWMutex
	gen     uint64            // generation stamped on new writes
	lastGen map[PageID]uint64 // page -> generation of its live content
	vers    map[PageID][]pageVersion
	snaps   map[uint64]int // open snapshot generation -> refcount
}

type pageVersion struct {
	gen   uint64
	bytes []byte
}

// NewVersioned wraps inner with page versioning.
func NewVersioned(inner Store) *Versioned {
	return &Versioned{
		inner:   inner,
		gen:     1,
		lastGen: make(map[PageID]uint64),
		vers:    make(map[PageID][]pageVersion),
		snaps:   make(map[uint64]int),
	}
}

// Allocate implements Store. The fresh (or recycled, zeroed) page belongs
// to the current generation; recycled pages' prior content was saved by
// the Free that released them, if any snapshot needed it.
func (v *Versioned) Allocate() (PageID, error) {
	id, err := v.inner.Allocate()
	if err != nil {
		return 0, err
	}
	v.mu.Lock()
	v.lastGen[id] = v.gen
	v.mu.Unlock()
	return id, nil
}

// Read implements Store: live reads pass straight through.
func (v *Versioned) Read(id PageID, buf []byte) error {
	return v.inner.Read(id, buf)
}

// saveIfVisibleLocked saves the page's current bytes into its version
// chain when an open snapshot still sees them. Caller holds v.mu.
func (v *Versioned) saveIfVisibleLocked(id PageID) error {
	g := v.lastGen[id]
	if g >= v.gen {
		return nil // already stamped in the current generation: no open snapshot sees it
	}
	needed := false
	for s := range v.snaps {
		if s >= g {
			needed = true
			break
		}
	}
	if !needed {
		return nil
	}
	old := make([]byte, PageSize)
	if err := v.inner.Read(id, old); err != nil {
		return fmt.Errorf("pagestore: saving page %d version: %w", id, err)
	}
	v.vers[id] = append(v.vers[id], pageVersion{gen: g, bytes: old})
	return nil
}

// Write implements Store, saving the overwritten content first when an
// open snapshot still sees it.
func (v *Versioned) Write(id PageID, buf []byte) error {
	v.mu.Lock()
	if err := v.saveIfVisibleLocked(id); err != nil {
		v.mu.Unlock()
		return err
	}
	v.lastGen[id] = v.gen
	v.mu.Unlock()
	return v.inner.Write(id, buf)
}

// Free implements Store. The released page may be recycled and zeroed by
// a later Allocate, so its content is saved exactly like an overwrite.
func (v *Versioned) Free(id PageID) error {
	v.mu.Lock()
	if err := v.saveIfVisibleLocked(id); err != nil {
		v.mu.Unlock()
		return err
	}
	v.lastGen[id] = v.gen
	v.mu.Unlock()
	return v.inner.Free(id)
}

// NumPages implements Store.
func (v *Versioned) NumPages() int { return v.inner.NumPages() }

// Close implements Store.
func (v *Versioned) Close() error { return v.inner.Close() }

// Sync flushes the inner store when it supports syncing (file-backed
// stores); in-memory stores are a no-op.
func (v *Versioned) Sync() error {
	if s, ok := v.inner.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Generation returns the generation new writes are stamped with.
func (v *Versioned) Generation() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.gen
}

// VersionedPages returns how many pages currently hold saved versions
// (tests and introspection).
func (v *Versioned) VersionedPages() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.vers)
}

// OpenSnapshot freezes the current state: the returned view reads every
// page exactly as it is now, forever, regardless of later writes. The
// caller must Close the view to release retained page versions. The
// caller is responsible for quiescing writers across the call (the SAE
// parties open snapshots under their structure read-lock, so no write is
// in flight mid-open).
func (v *Versioned) OpenSnapshot() *SnapshotView {
	v.mu.Lock()
	s := v.gen
	v.gen++
	v.snaps[s]++
	v.mu.Unlock()
	return &SnapshotView{v: v, s: s}
}

// closeSnapshot releases one reference on generation s, dropping all
// retained versions once no snapshot remains. (Per-version pruning would
// retain less while multiple overlapping snapshots are open; snapshots
// are short-lived scan handles, so the simple rule bounds memory fine.)
func (v *Versioned) closeSnapshot(s uint64) {
	v.mu.Lock()
	if n := v.snaps[s]; n > 1 {
		v.snaps[s] = n - 1
	} else {
		delete(v.snaps, s)
	}
	if len(v.snaps) == 0 {
		v.vers = make(map[PageID][]pageVersion)
	}
	v.mu.Unlock()
}

// SnapshotView is a read-only Store serving the state frozen by
// OpenSnapshot. Reads are safe concurrently with each other and with
// writes to the parent store.
type SnapshotView struct {
	v      *Versioned
	s      uint64
	closed bool
	mu     sync.Mutex // guards closed
}

// Generation returns the snapshot's generation stamp.
func (sv *SnapshotView) Generation() uint64 { return sv.s }

// Read implements Store for the frozen state.
func (sv *SnapshotView) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadBufSize
	}
	v := sv.v
	v.mu.RLock()
	if g, ok := v.lastGen[id]; !ok || g <= sv.s {
		// Live content still is (or predates) the snapshot state. The
		// inner read happens under the version lock so a concurrent
		// writer cannot overwrite between the check and the read.
		err := v.inner.Read(id, buf)
		v.mu.RUnlock()
		return err
	}
	// Newest saved version at or before the snapshot generation.
	var best *pageVersion
	for i := range v.vers[id] {
		pv := &v.vers[id][i]
		if pv.gen <= sv.s && (best == nil || pv.gen > best.gen) {
			best = pv
		}
	}
	if best == nil {
		v.mu.RUnlock()
		return fmt.Errorf("%w: snapshot read of page %d at generation %d", ErrBadPageID, id, sv.s)
	}
	copy(buf, best.bytes)
	v.mu.RUnlock()
	return nil
}

// Allocate implements Store; snapshots are read-only.
func (sv *SnapshotView) Allocate() (PageID, error) {
	return 0, fmt.Errorf("pagestore: snapshot view is read-only")
}

// Write implements Store; snapshots are read-only.
func (sv *SnapshotView) Write(PageID, []byte) error {
	return fmt.Errorf("pagestore: snapshot view is read-only")
}

// Free implements Store; snapshots are read-only.
func (sv *SnapshotView) Free(PageID) error {
	return fmt.Errorf("pagestore: snapshot view is read-only")
}

// NumPages implements Store.
func (sv *SnapshotView) NumPages() int { return sv.v.NumPages() }

// Close releases the snapshot's retained versions. Idempotent.
func (sv *SnapshotView) Close() error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.closed {
		return nil
	}
	sv.closed = true
	sv.v.closeSnapshot(sv.s)
	return nil
}
