package pagestore

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheConcurrentMisses exercises the miss path, which releases the
// pool mutex around the inner read: parallel readers, writers and frees
// over a small pool must stay coherent (run with -race), satisfy the
// hits+misses accounting invariant, and converge to the inner store's
// content once the writers stop.
func TestCacheConcurrentMisses(t *testing.T) {
	const (
		pages   = 64
		writers = 4
		readers = 4
		rounds  = 500
	)
	inner := NewCounting(NewMem())
	cache := NewCache(inner, 16) // far below the working set: constant misses
	ids := make([]PageID, pages)
	final := make([]atomic.Uint64, pages)
	buf := make([]byte, PageSize)
	for i := range ids {
		id, err := cache.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		binary.BigEndian.PutUint64(buf[:8], 0)
		if err := cache.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}

	var readsIssued atomic.Int64
	var wg sync.WaitGroup
	perWriter := pages / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wbuf := make([]byte, PageSize)
			for r := 1; r <= rounds; r++ {
				p := w*perWriter + r%perWriter
				v := uint64(w)<<32 | uint64(r)
				binary.BigEndian.PutUint64(wbuf[:8], v)
				if err := cache.Write(ids[p], wbuf); err != nil {
					t.Error(err)
					return
				}
				final[p].Store(v)
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			rbuf := make([]byte, PageSize)
			for r := 0; r < rounds*4; r++ {
				p := (rd*31 + r*7) % pages
				if err := cache.Read(ids[p], rbuf); err != nil {
					t.Error(err)
					return
				}
				readsIssued.Add(1)
			}
		}(rd)
	}
	wg.Wait()

	hits, misses := cache.HitsMisses()
	if hits+misses != readsIssued.Load() {
		t.Fatalf("hits(%d) + misses(%d) != reads issued (%d)", hits, misses, readsIssued.Load())
	}
	// Convergence: every page must read back its final written value,
	// whether served from the pool or the inner store.
	for p, id := range ids {
		if err := cache.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if got, want := binary.BigEndian.Uint64(buf[:8]), final[p].Load(); got != want {
			t.Fatalf("page %d converged to %d, want %d (stale pool entry?)", id, got, want)
		}
	}
}

// TestCacheStaleMissFillDropped pins the generation-stamp behavior: a
// write that lands between a miss's inner read and its fill must win.
func TestCacheStaleMissFillDropped(t *testing.T) {
	inner := NewMem()
	cache := NewCache(inner, 8)
	id, err := cache.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	old := make([]byte, PageSize)
	old[0] = 1
	if err := inner.Write(id, old); err != nil { // bypass the pool
		t.Fatal(err)
	}

	// Simulate the interleaving by hand: record the generation as
	// Read's miss path would, then let a write overtake it.
	cache.mu.Lock()
	gen := cache.gen.Current(id)
	cache.mu.Unlock()

	newer := make([]byte, PageSize)
	newer[0] = 2
	if err := cache.Write(id, newer); err != nil {
		t.Fatal(err)
	}

	// The stale fill must be dropped because the generation moved on.
	cache.mu.Lock()
	if !cache.gen.Stale(id, gen) {
		cache.mu.Unlock()
		t.Fatal("write did not bump the page generation")
	}
	cache.mu.Unlock()

	got := make([]byte, PageSize)
	if err := cache.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("pool served stale byte %d, want 2", got[0])
	}
}

// TestCacheAllocateRecycledPage ensures a freed-then-recycled page id
// cannot resurface its old cached bytes.
func TestCacheAllocateRecycledPage(t *testing.T) {
	cache := NewCache(NewMem(), 8)
	id, err := cache.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	buf[0] = 0xEE
	if err := cache.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := cache.Free(id); err != nil {
		t.Fatal(err)
	}
	id2, err := cache.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Skipf("store did not recycle page %d (got %d)", id, id2)
	}
	got := make([]byte, PageSize)
	if err := cache.Read(id2, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("recycled page served stale byte %#x, want zeroed page", got[0])
	}
}
