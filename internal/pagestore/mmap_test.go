package pagestore

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
)

func fillPage(seed byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = byte(int(seed) + i*13)
	}
	return p
}

// TestEnableMmapReadParity writes pages through the pwrite path and
// reads them back through the mmap window: the unified page cache must
// make every write visible, including writes issued AFTER the mapping
// was established.
func TestEnableMmapReadParity(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap not supported on this platform")
	}
	s, err := CreateFile(filepath.Join(t.TempDir(), "mmap.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var ids []PageID
	var want [][]byte
	for i := 0; i < 5; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p := fillPage(byte(i))
		if err := s.Write(id, p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		want = append(want, p)
	}
	if err := s.EnableMmap(); err != nil {
		t.Fatalf("EnableMmap: %v", err)
	}
	if !s.MmapActive() {
		t.Fatal("MmapActive false after EnableMmap")
	}
	buf := make([]byte, PageSize)
	for i, id := range ids {
		if err := s.Read(id, buf); err != nil {
			t.Fatalf("Read(%v): %v", id, err)
		}
		if !bytes.Equal(buf, want[i]) {
			t.Fatalf("page %d read through mmap != written bytes", i)
		}
	}

	// A write AFTER mapping must be coherent through the window.
	p := fillPage(0xAB)
	if err := s.Write(ids[2], p); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(ids[2], buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, p) {
		t.Fatal("post-mmap write not visible through the mapping")
	}
}

// TestMmapGrowthRemap allocates far past the initial mapping: pages
// beyond the mapped window must still read correctly (ReadAt fallback or
// a remapped window), and a remap must pick them up.
func TestMmapGrowthRemap(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap not supported on this platform")
	}
	s, err := CreateFile(filepath.Join(t.TempDir(), "grow.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.EnableMmap(); err != nil {
		t.Fatal(err)
	}
	// Enough pages to cross at least one remap chunk.
	n := mmapRemapChunk/PageSize + 8
	ids := make([]PageID, n)
	for i := 0; i < n; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := s.Write(id, fillPage(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, PageSize)
	for i, id := range ids {
		if err := s.Read(id, buf); err != nil {
			t.Fatalf("Read(%v): %v", id, err)
		}
		if !bytes.Equal(buf, fillPage(byte(i))) {
			t.Fatalf("page %d corrupted across remap growth", i)
		}
	}
}

// TestMmapEnvRoundTrip is the satellite's ReopenFile round trip: create
// under SAE_IO=mmap, write pages, free one (free-list trailer), close,
// reopen under SAE_IO=mmap — the data and the free list must survive,
// and the reopened store must serve reads from its mapping.
func TestMmapEnvRoundTrip(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap not supported on this platform")
	}
	t.Setenv("SAE_IO", "mmap")
	if !MmapRequested() {
		t.Fatal("MmapRequested false under SAE_IO=mmap")
	}
	path := filepath.Join(t.TempDir(), "roundtrip.pages")
	s, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !s.MmapActive() {
		t.Fatal("CreateFile under SAE_IO=mmap did not map the file")
	}
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := s.Write(id, fillPage(byte(40+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Free(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := ReopenFile(path)
	if err != nil {
		t.Fatalf("ReopenFile: %v", err)
	}
	defer r.Close()
	if !r.MmapActive() {
		t.Fatal("ReopenFile under SAE_IO=mmap did not map the file")
	}
	buf := make([]byte, PageSize)
	for i, id := range ids {
		if i == 3 {
			continue // freed
		}
		if err := r.Read(id, buf); err != nil {
			t.Fatalf("Read(%v) after reopen: %v", id, err)
		}
		if !bytes.Equal(buf, fillPage(byte(40+i))) {
			t.Fatalf("page %d corrupted across mmap reopen", i)
		}
	}
	// The freed page must come back from the recovered free list before
	// any fresh page is appended.
	id, err := r.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[3] {
		t.Fatalf("Allocate after reopen = %v, want recycled %v", id, ids[3])
	}
}

// TestMmapConcurrentReads hammers one store from many goroutines — reads
// through the mapping racing writes and allocations. Run with -race;
// this is the satellite's "concurrent lane reads don't serialize on one
// lock" regression net (correctness half; the non-serialization is the
// RWMutex + ReadAt/pread structure itself).
func TestMmapConcurrentReads(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap not supported on this platform")
	}
	s, err := CreateFile(filepath.Join(t.TempDir(), "conc.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.EnableMmap(); err != nil {
		t.Fatal(err)
	}
	const pages = 64
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := s.Write(id, fillPage(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for iter := 0; iter < 200; iter++ {
				i := (g*31 + iter) % pages
				if err := s.Read(ids[i], buf); err != nil {
					t.Errorf("Read: %v", err)
					return
				}
				if buf[0] != fillPage(byte(i))[0] {
					t.Errorf("page %d first byte mismatch", i)
					return
				}
			}
		}(g)
	}
	// Concurrent growth: allocations remap under the write lock while
	// readers stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 64; i++ {
			id, err := s.Allocate()
			if err != nil {
				t.Errorf("Allocate: %v", err)
				return
			}
			if err := s.Write(id, fillPage(byte(i))); err != nil {
				t.Errorf("Write: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestEnableMmapUnsupportedOrClosed covers the error paths: a closed
// store refuses to map.
func TestEnableMmapOnClosedStore(t *testing.T) {
	s, err := CreateFile(filepath.Join(t.TempDir(), "closed.pages"))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.EnableMmap(); err == nil {
		t.Fatal("EnableMmap succeeded on a closed store")
	}
}
