package pagestore

import (
	"bytes"
	"sync"
	"testing"
)

func TestVersionedSnapshotIsolation(t *testing.T) {
	v := NewVersioned(NewMem())
	id, err := v.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Write(id, fillPage(1)); err != nil {
		t.Fatal(err)
	}

	snap := v.OpenSnapshot()
	defer snap.Close()

	// Overwrite twice after the snapshot: the snapshot keeps the original.
	if err := v.Write(id, fillPage(2)); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(id, fillPage(3)); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, PageSize)
	if err := snap.Read(id, buf); err != nil {
		t.Fatalf("snapshot read: %v", err)
	}
	if !bytes.Equal(buf, fillPage(1)) {
		t.Fatalf("snapshot sees %d, want the pre-snapshot content 1", buf[0])
	}
	if err := v.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fillPage(3)) {
		t.Fatalf("live read sees %d, want latest content 3", buf[0])
	}
	if v.VersionedPages() != 1 {
		t.Fatalf("%d versioned pages, want 1 (second overwrite saves nothing)", v.VersionedPages())
	}
}

func TestVersionedFreeAndRecycle(t *testing.T) {
	v := NewVersioned(NewMem())
	id, _ := v.Allocate()
	if err := v.Write(id, fillPage(7)); err != nil {
		t.Fatal(err)
	}
	snap := v.OpenSnapshot()
	defer snap.Close()

	// Free, then recycle the page for unrelated content.
	if err := v.Free(id); err != nil {
		t.Fatal(err)
	}
	id2, _ := v.Allocate()
	if id2 != id {
		t.Fatalf("expected the freed page %d to be recycled, got %d", id, id2)
	}
	if err := v.Write(id2, fillPage(9)); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, PageSize)
	if err := snap.Read(id, buf); err != nil {
		t.Fatalf("snapshot read of freed page: %v", err)
	}
	if !bytes.Equal(buf, fillPage(7)) {
		t.Fatalf("snapshot of a freed+recycled page sees %d, want 7", buf[0])
	}
}

func TestVersionedMultipleSnapshots(t *testing.T) {
	v := NewVersioned(NewMem())
	id, _ := v.Allocate()
	v.Write(id, fillPage(1))
	s1 := v.OpenSnapshot()
	v.Write(id, fillPage(2))
	s2 := v.OpenSnapshot()
	v.Write(id, fillPage(3))

	buf := make([]byte, PageSize)
	if err := s1.Read(id, buf); err != nil || buf[0] != 1 {
		t.Fatalf("s1 sees %d (err %v), want 1", buf[0], err)
	}
	if err := s2.Read(id, buf); err != nil || buf[0] != 2 {
		t.Fatalf("s2 sees %d (err %v), want 2", buf[0], err)
	}
	s1.Close()
	if err := s2.Read(id, buf); err != nil || buf[0] != 2 {
		t.Fatalf("s2 after s1 close sees %d (err %v), want 2", buf[0], err)
	}
	s2.Close()
	if v.VersionedPages() != 0 {
		t.Fatalf("%d versioned pages retained after all snapshots closed", v.VersionedPages())
	}
	// Post-close writes save nothing.
	v.Write(id, fillPage(4))
	if v.VersionedPages() != 0 {
		t.Fatalf("write with no open snapshot saved a version")
	}
}

func TestVersionedNoSnapshotNoOverhead(t *testing.T) {
	v := NewVersioned(NewMem())
	id, _ := v.Allocate()
	for i := 0; i < 10; i++ {
		if err := v.Write(id, fillPage(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if v.VersionedPages() != 0 {
		t.Fatalf("write-only workload saved %d page versions", v.VersionedPages())
	}
}

// TestVersionedConcurrentReadersWriter races snapshot readers against a
// writer; every snapshot must keep seeing its frozen byte, and the run
// must be race-clean under -race.
func TestVersionedConcurrentReadersWriter(t *testing.T) {
	v := NewVersioned(NewMem())
	id, _ := v.Allocate()
	v.Write(id, fillPage(0))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := v.OpenSnapshot()
				if err := snap.Read(id, buf); err != nil {
					errCh <- err
					snap.Close()
					return
				}
				want := buf[0]
				for k := 0; k < 3; k++ {
					if err := snap.Read(id, buf); err != nil || buf[0] != want {
						errCh <- err
						snap.Close()
						return
					}
				}
				snap.Close()
			}
		}()
	}
	for i := 1; i <= 200; i++ {
		if err := v.Write(id, fillPage(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatalf("concurrent snapshot reader: %v", err)
		}
	}
}

func TestCountingSyncPassthrough(t *testing.T) {
	// Mem-backed: Sync is a no-op that must not error.
	c := NewCounting(NewVersioned(NewMem()))
	if err := c.Sync(); err != nil {
		t.Fatalf("Sync over Mem: %v", err)
	}
}
