package pagestore

import "sync/atomic"

// Stats is a snapshot of access counters.
type Stats struct {
	Reads  int64
	Writes int64
	Allocs int64
	Frees  int64
}

// Accesses returns the total number of node (page) accesses: reads plus
// writes. This is the quantity the paper charges 10 ms for.
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// Sub returns s - o component-wise, for measuring deltas around a query.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:  s.Reads - o.Reads,
		Writes: s.Writes - o.Writes,
		Allocs: s.Allocs - o.Allocs,
		Frees:  s.Frees - o.Frees,
	}
}

// Add returns s + o component-wise.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:  s.Reads + o.Reads,
		Writes: s.Writes + o.Writes,
		Allocs: s.Allocs + o.Allocs,
		Frees:  s.Frees + o.Frees,
	}
}

// ReadAccountant is implemented by stores that can charge a read without
// performing it. The decoded-node cache (internal/bufpool) uses it under
// its charge-every-access policy to keep the paper's node-access
// accounting exact on cache hits while skipping the page copy.
type ReadAccountant interface {
	AccountRead(id PageID)
}

// Counting wraps a Store and counts every operation. All experiments wrap
// their stores in Counting so the cost model can translate page accesses
// into simulated milliseconds.
type Counting struct {
	inner  Store
	reads  atomic.Int64
	writes atomic.Int64
	allocs atomic.Int64
	frees  atomic.Int64
}

// NewCounting wraps inner with access counting.
func NewCounting(inner Store) *Counting {
	return &Counting{inner: inner}
}

// Allocate implements Store.
func (c *Counting) Allocate() (PageID, error) {
	c.allocs.Add(1)
	return c.inner.Allocate()
}

// Read implements Store.
func (c *Counting) Read(id PageID, buf []byte) error {
	c.reads.Add(1)
	return c.inner.Read(id, buf)
}

// AccountRead implements ReadAccountant: it charges a read that was
// served from a decoded-node cache without touching the inner store.
func (c *Counting) AccountRead(PageID) {
	c.reads.Add(1)
}

// Write implements Store.
func (c *Counting) Write(id PageID, buf []byte) error {
	c.writes.Add(1)
	return c.inner.Write(id, buf)
}

// Free implements Store.
func (c *Counting) Free(id PageID) error {
	c.frees.Add(1)
	return c.inner.Free(id)
}

// NumPages implements Store.
func (c *Counting) NumPages() int { return c.inner.NumPages() }

// Sync flushes the wrapped store to stable storage when it supports
// syncing (file-backed stores, or Versioned over one); in-memory stores
// are a no-op. Commit and snapshot barriers call this so durability
// claims hold for on-disk deployments.
func (c *Counting) Sync() error {
	if s, ok := c.inner.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Close implements Store.
func (c *Counting) Close() error { return c.inner.Close() }

// Stats returns a snapshot of the counters.
func (c *Counting) Stats() Stats {
	return Stats{
		Reads:  c.reads.Load(),
		Writes: c.writes.Load(),
		Allocs: c.allocs.Load(),
		Frees:  c.frees.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counting) Reset() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.allocs.Store(0)
	c.frees.Store(0)
}
