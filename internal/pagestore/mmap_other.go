//go:build !linux

package pagestore

import (
	"errors"
	"os"
)

// The mmap read path is Linux-only (the only platform the benchmarks
// target); elsewhere EnableMmap reports unsupported and the store keeps
// serving reads via pread.
const mmapSupported = false

func mmapFile(_ *os.File, _ int) ([]byte, error) {
	return nil, errors.New("pagestore: mmap unavailable")
}

func munmapFile(_ []byte) error { return nil }
