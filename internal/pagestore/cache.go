package pagestore

import (
	"container/list"
	"sync"

	"sae/internal/genstamp"
)

// Cache is a write-through LRU buffer pool over a Store. Reads served from
// the pool do not touch the underlying store, so when the inner store is a
// Counting wrapper, only pool misses count as node accesses.
//
// The headline experiments run without a pool (the paper charges every node
// access); Cache exists for the buffer-pool ablation bench.
//
// The mutex is released while a miss reads the inner store, so concurrent
// misses proceed in parallel instead of serializing on one lock. A
// per-page generation stamp (bumped by every Write and Free) keeps the
// race safe: a miss-fill whose read was overtaken by a write or free is
// simply dropped.
type Cache struct {
	mu       sync.Mutex
	inner    Store
	capacity int
	lru      *list.List // front = most recent; values are *cacheEntry
	byID     map[PageID]*list.Element
	// gen stamps follow the drop-stale-fill protocol shared with the
	// bufpool shards; see package genstamp.
	gen    genstamp.Table[PageID]
	hits   int64
	misses int64
}

type cacheEntry struct {
	id   PageID
	data []byte
}

// NewCache wraps inner with an LRU pool of capacity pages. capacity must be
// at least 1.
func NewCache(inner Store, capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		inner:    inner,
		capacity: capacity,
		lru:      list.New(),
		byID:     make(map[PageID]*list.Element, capacity),
		gen:      genstamp.New[PageID](),
	}
}

// Allocate implements Store.
func (c *Cache) Allocate() (PageID, error) {
	id, err := c.inner.Allocate()
	if err == nil {
		// The id may be a recycled freed page; make sure no stale copy
		// (or in-flight miss-fill) can resurface under it.
		c.mu.Lock()
		c.gen.Bump(id)
		if el, ok := c.byID[id]; ok {
			c.lru.Remove(el)
			delete(c.byID, id)
		}
		c.mu.Unlock()
	}
	return id, err
}

// Read implements Store. Hits are served under the lock; misses release
// it for the duration of the inner read.
func (c *Cache) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadBufSize
	}
	c.mu.Lock()
	if el, ok := c.byID[id]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		copy(buf, el.Value.(*cacheEntry).data)
		c.mu.Unlock()
		return nil
	}
	c.misses++
	gen := c.gen.Current(id)
	c.mu.Unlock()

	if err := c.inner.Read(id, buf); err != nil {
		return err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen.Stale(id, gen) {
		// A write or free overtook this read; its data is stale.
		return nil
	}
	if el, ok := c.byID[id]; ok {
		// Another miss filled the entry first.
		c.lru.MoveToFront(el)
		return nil
	}
	c.insertLocked(id, buf)
	return nil
}

// Write implements Store. Writes go through to the inner store and refresh
// the cached copy.
func (c *Cache) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadBufSize
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen.Bump(id)
	if err := c.inner.Write(id, buf); err != nil {
		return err
	}
	if el, ok := c.byID[id]; ok {
		c.lru.MoveToFront(el)
		copy(el.Value.(*cacheEntry).data, buf)
		return nil
	}
	c.insertLocked(id, buf)
	return nil
}

func (c *Cache) insertLocked(id PageID, buf []byte) {
	data := make([]byte, PageSize)
	copy(data, buf)
	el := c.lru.PushFront(&cacheEntry{id: id, data: data})
	c.byID[id] = el
	for c.lru.Len() > c.capacity {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.byID, old.Value.(*cacheEntry).id)
	}
}

// Free implements Store.
func (c *Cache) Free(id PageID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen.Bump(id)
	if el, ok := c.byID[id]; ok {
		c.lru.Remove(el)
		delete(c.byID, id)
	}
	return c.inner.Free(id)
}

// NumPages implements Store.
func (c *Cache) NumPages() int { return c.inner.NumPages() }

// Close implements Store.
func (c *Cache) Close() error { return c.inner.Close() }

// HitsMisses returns the pool's hit/miss counters.
func (c *Cache) HitsMisses() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
