//go:build linux

package pagestore

import (
	"os"
	"syscall"
)

// mmapSupported gates the SAE_IO=mmap read path; see File.EnableMmap.
const mmapSupported = true

// mmapFile maps exactly length bytes of f read-only and shared, so the
// window observes every later pwrite through the unified page cache. The
// map never extends past EOF — the caller sizes it to whole data pages —
// so no access through it can fault on a hole.
func mmapFile(f *os.File, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
