package pagestore

import (
	"fmt"
	"os"
	"sync"
)

// File is a file-backed page store. Page id i lives at byte offset
// i*PageSize. It is safe for concurrent use.
//
// The free list is kept in memory only: this store backs freshly built
// experiment state, not a crash-safe database, so no free-list persistence
// or write-ahead logging is needed.
type File struct {
	mu            sync.Mutex
	f             *os.File
	nPages        int
	free          []PageID
	closed        bool
	removeOnClose bool
}

// OpenFile creates (truncating) a file-backed store at path. The file is
// removed on Close; use ReopenFile for a store that persists.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: opening %s: %w", path, err)
	}
	return &File{f: f, removeOnClose: true}, nil
}

// CreateFile creates (truncating) a persistent file-backed store at path:
// unlike OpenFile, Close leaves the file on disk so a later ReopenFile can
// resume from it.
func CreateFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: creating %s: %w", path, err)
	}
	return &File{f: f}, nil
}

// ReopenFile opens an existing page file, recovering the page count from
// its size. The in-memory free list is not persisted: pages freed in a
// previous session are treated as live (space is leaked, never corrupted),
// the standard trade for a store without a free-space map.
func ReopenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: reopening %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagestore: stat %s: %w", path, err)
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pagestore: %s size %d is not page-aligned", path, info.Size())
	}
	return &File{f: f, nPages: int(info.Size() / PageSize)}, nil
}

// Allocate implements Store.
func (s *File) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStoreClosed
	}
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		var zero [PageSize]byte
		if _, err := s.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
			return 0, fmt.Errorf("pagestore: zeroing recycled page %d: %w", id, err)
		}
		return id, nil
	}
	id := PageID(s.nPages)
	s.nPages++
	var zero [PageSize]byte
	if _, err := s.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("pagestore: extending file for page %d: %w", id, err)
	}
	return id, nil
}

// Read implements Store.
func (s *File) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadBufSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if int(id) >= s.nPages {
		return fmt.Errorf("%w: read %d", ErrBadPageID, id)
	}
	if _, err := s.f.ReadAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagestore: reading page %d: %w", id, err)
	}
	return nil
}

// Write implements Store.
func (s *File) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadBufSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if int(id) >= s.nPages {
		return fmt.Errorf("%w: write %d", ErrBadPageID, id)
	}
	if _, err := s.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagestore: writing page %d: %w", id, err)
	}
	return nil
}

// Free implements Store.
func (s *File) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if int(id) >= s.nPages {
		return fmt.Errorf("%w: free %d", ErrBadPageID, id)
	}
	s.free = append(s.free, id)
	return nil
}

// NumPages implements Store.
func (s *File) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nPages - len(s.free)
}

// Close implements Store. Stores created with OpenFile remove their file;
// CreateFile/ReopenFile stores persist.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	name := s.f.Name()
	if err := s.f.Close(); err != nil {
		return err
	}
	if s.removeOnClose {
		return os.Remove(name)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (s *File) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	return s.f.Sync()
}
