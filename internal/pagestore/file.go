package pagestore

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// File is a file-backed page store. Page id i lives at byte offset
// i*PageSize. It is safe for concurrent use: reads and writes are
// positioned (pread/pwrite) under a shared lock, so any number of serve
// lanes read concurrently without serializing on the store; only the
// operations that mutate store geometry (Allocate, Free, Close, mmap
// remaps) take the lock exclusively.
//
// With SAE_IO=mmap in the environment (or an explicit EnableMmap call)
// reads are served from a read-only memory map of the file instead of
// pread, so a burst serve touches pages without any syscall at all.
// Writes stay pwrite — Linux's unified page cache keeps the map coherent
// with them — and the map covers exactly the file's current size (never
// beyond EOF, so no SIGBUS); it is re-established from Allocate as the
// file grows, one remap per ~4 MB of growth, with reads of not-yet-mapped
// tail pages falling back to pread in between.
//
// The free list is held in memory while the store is open; persistent
// stores (CreateFile/ReopenFile) additionally write it into a trailer of
// whole pages appended at Close, which ReopenFile recovers and strips — so
// pages freed before a restart are reusable after it. A crash before
// Close loses only the free list (space is leaked until the next clean
// close, never corrupted); there is still no write-ahead logging.
type File struct {
	mu            sync.RWMutex
	f             *os.File
	nPages        int
	free          []PageID
	closed        bool
	removeOnClose bool
	// mapped is the mmap-backed read window (nil when mmap I/O is off);
	// mmapOn records that mmap mode is requested so Allocate keeps the
	// window growing with the file.
	mapped []byte
	mmapOn bool
}

// mmapRemapChunk is how far (in bytes) the file may outgrow the read
// window before Allocate re-establishes the map: one remap syscall per
// ~4 MB of growth, with tail reads falling back to pread in between.
const mmapRemapChunk = 4 << 20

// MmapRequested reports whether the environment selects the mmap read
// path (SAE_IO=mmap) for file-backed stores.
func MmapRequested() bool { return os.Getenv("SAE_IO") == "mmap" }

// Free-list trailer layout: the trailer occupies whole pages appended
// after the last data page. Freed page ids (4 bytes each) pack from the
// trailer's start; the final trailerFooterSize bytes of the file hold
// [magic 8 | count 4 | trailerPages 4]. An 8-byte magic makes accidental
// collision with data-page bytes vanishingly unlikely, and a file whose
// tail does not match is simply treated as trailer-less (legacy files keep
// opening, with the old leak-on-restart behavior).
const (
	trailerMagic      = "SAEFREE1"
	trailerFooterSize = 16
)

// OpenFile creates (truncating) a file-backed store at path. The file is
// removed on Close; use ReopenFile for a store that persists.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: opening %s: %w", path, err)
	}
	s := &File{f: f, removeOnClose: true}
	if MmapRequested() {
		_ = s.EnableMmap() // best effort; pread remains the fallback
	}
	return s, nil
}

// CreateFile creates (truncating) a persistent file-backed store at path:
// unlike OpenFile, Close leaves the file on disk so a later ReopenFile can
// resume from it.
func CreateFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: creating %s: %w", path, err)
	}
	s := &File{f: f}
	if MmapRequested() {
		_ = s.EnableMmap()
	}
	return s, nil
}

// ReopenFile opens an existing page file, recovering the page count from
// its size and the free list from the trailer a previous clean Close
// wrote (see the trailer layout above). Files without a trailer — legacy
// stores, or stores that crashed before Close — open with an empty free
// list: their freed pages are treated as live (space leaked, never
// corrupted).
func ReopenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: reopening %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagestore: stat %s: %w", path, err)
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pagestore: %s size %d is not page-aligned", path, info.Size())
	}
	s := &File{f: f, nPages: int(info.Size() / PageSize)}
	if err := s.recoverFreeList(); err != nil {
		f.Close()
		return nil, err
	}
	if MmapRequested() {
		_ = s.EnableMmap()
	}
	return s, nil
}

// recoverFreeList detects, parses and strips a free-list trailer. Called
// with the store not yet shared; no lock held.
func (s *File) recoverFreeList() error {
	filePages := s.nPages
	if filePages == 0 {
		return nil
	}
	var footer [trailerFooterSize]byte
	if _, err := s.f.ReadAt(footer[:], int64(filePages)*PageSize-trailerFooterSize); err != nil {
		return fmt.Errorf("pagestore: reading free-list footer: %w", err)
	}
	if string(footer[:8]) != trailerMagic {
		return nil // no trailer: legacy or crashed file
	}
	count := int(binary.BigEndian.Uint32(footer[8:12]))
	trailerPages := int(binary.BigEndian.Uint32(footer[12:16]))
	need := (4*count + trailerFooterSize + PageSize - 1) / PageSize
	if trailerPages < need || trailerPages > filePages {
		return fmt.Errorf("pagestore: free-list trailer claims %d pages for %d entries in a %d-page file",
			trailerPages, count, filePages)
	}
	dataPages := filePages - trailerPages
	ids := make([]byte, 4*count)
	if _, err := s.f.ReadAt(ids, int64(dataPages)*PageSize); err != nil {
		return fmt.Errorf("pagestore: reading free list: %w", err)
	}
	free := make([]PageID, count)
	seen := make(map[PageID]struct{}, count)
	for i := range free {
		id := PageID(binary.BigEndian.Uint32(ids[4*i : 4*i+4]))
		if int(id) >= dataPages {
			return fmt.Errorf("pagestore: freed page %d outside %d data pages", id, dataPages)
		}
		// A duplicated id (a corrupt trailer the footer checks cannot see)
		// would make Allocate hand the same page out twice — reject.
		if _, dup := seen[id]; dup {
			return fmt.Errorf("pagestore: free-list trailer lists page %d twice", id)
		}
		seen[id] = struct{}{}
		free[i] = id
	}
	// Strip the trailer so data pages append cleanly after it.
	if err := s.f.Truncate(int64(dataPages) * PageSize); err != nil {
		return fmt.Errorf("pagestore: stripping free-list trailer: %w", err)
	}
	s.nPages = dataPages
	s.free = free
	return nil
}

// writeFreeList appends the trailer for the current free list. Caller
// holds s.mu. An empty free list writes nothing, keeping the file
// byte-identical to the legacy format.
func (s *File) writeFreeList() error {
	count := len(s.free)
	if count == 0 {
		return nil
	}
	trailerPages := (4*count + trailerFooterSize + PageSize - 1) / PageSize
	buf := make([]byte, trailerPages*PageSize)
	for i, id := range s.free {
		binary.BigEndian.PutUint32(buf[4*i:4*i+4], uint32(id))
	}
	footer := buf[len(buf)-trailerFooterSize:]
	copy(footer[:8], trailerMagic)
	binary.BigEndian.PutUint32(footer[8:12], uint32(count))
	binary.BigEndian.PutUint32(footer[12:16], uint32(trailerPages))
	if _, err := s.f.WriteAt(buf, int64(s.nPages)*PageSize); err != nil {
		return fmt.Errorf("pagestore: writing free-list trailer: %w", err)
	}
	return s.f.Sync()
}

// Allocate implements Store.
func (s *File) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStoreClosed
	}
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		var zero [PageSize]byte
		if _, err := s.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
			return 0, fmt.Errorf("pagestore: zeroing recycled page %d: %w", id, err)
		}
		return id, nil
	}
	id := PageID(s.nPages)
	s.nPages++
	var zero [PageSize]byte
	if _, err := s.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("pagestore: extending file for page %d: %w", id, err)
	}
	// Re-establish the window on the first page of a store mapped while
	// empty, then once per chunk of growth; tail pages between remaps are
	// served by the pread fallback.
	if s.mmapOn && (len(s.mapped) == 0 || s.nPages*PageSize >= len(s.mapped)+mmapRemapChunk) {
		if err := s.remapLocked(); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// Read implements Store.
func (s *File) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadBufSize
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrStoreClosed
	}
	if int(id) >= s.nPages {
		return fmt.Errorf("%w: read %d", ErrBadPageID, id)
	}
	off := int64(id) * PageSize
	if end := off + PageSize; end <= int64(len(s.mapped)) {
		copy(buf, s.mapped[off:end])
		return nil
	}
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("pagestore: reading page %d: %w", id, err)
	}
	return nil
}

// Write implements Store.
func (s *File) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadBufSize
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrStoreClosed
	}
	if int(id) >= s.nPages {
		return fmt.Errorf("%w: write %d", ErrBadPageID, id)
	}
	// pwrite under the shared lock: positioned writes to distinct pages
	// are independent, and the structures above serialize same-page
	// writers with their own locks. The mmap window (if any) observes the
	// write through the unified page cache.
	if _, err := s.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagestore: writing page %d: %w", id, err)
	}
	return nil
}

// Free implements Store.
func (s *File) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if int(id) >= s.nPages {
		return fmt.Errorf("%w: free %d", ErrBadPageID, id)
	}
	s.free = append(s.free, id)
	return nil
}

// NumPages implements Store.
func (s *File) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nPages - len(s.free)
}

// Close implements Store. Stores created with OpenFile remove their file;
// CreateFile/ReopenFile stores persist, writing their free list into a
// trailer so a later ReopenFile recycles freed pages.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if len(s.mapped) > 0 {
		_ = munmapFile(s.mapped)
		s.mapped = nil
	}
	name := s.f.Name()
	if !s.removeOnClose {
		// Data pages must be durable BEFORE the trailer: writeFreeList
		// syncs only after appending the trailer, so without this barrier
		// a crash between the two could leave a valid-looking trailer
		// over unsynced data pages — recovery would then trust a free
		// list describing pages that never reached the disk.
		if err := s.f.Sync(); err != nil {
			s.f.Close()
			return err
		}
		if err := s.writeFreeList(); err != nil {
			s.f.Close()
			return err
		}
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	if s.removeOnClose {
		return os.Remove(name)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (s *File) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrStoreClosed
	}
	return s.f.Sync()
}

// EnableMmap switches the store's read path to a read-only memory map of
// the file (see the type comment). Safe to call at any point; reads of
// pages the window does not yet cover fall back to pread. Returns an
// error on platforms without mmap support, leaving the store fully
// functional on the pread path.
func (s *File) EnableMmap() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if !mmapSupported {
		return fmt.Errorf("pagestore: mmap I/O is not supported on this platform")
	}
	s.mmapOn = true
	return s.remapLocked()
}

// MmapActive reports whether the mmap read path is engaged. An empty
// store reports true with nothing mapped yet; the window is established
// by the first allocation.
func (s *File) MmapActive() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mmapOn
}

// remapLocked (re)establishes the read window over exactly the file's
// current data pages. Caller holds s.mu exclusively — no reader can be
// inside the old window while it is unmapped.
func (s *File) remapLocked() error {
	if len(s.mapped) > 0 {
		if err := munmapFile(s.mapped); err != nil {
			return fmt.Errorf("pagestore: unmapping %s: %w", s.f.Name(), err)
		}
		s.mapped = nil
	}
	size := s.nPages * PageSize
	if size == 0 {
		return nil
	}
	m, err := mmapFile(s.f, size)
	if err != nil {
		return fmt.Errorf("pagestore: mapping %s: %w", s.f.Name(), err)
	}
	s.mapped = m
	return nil
}
