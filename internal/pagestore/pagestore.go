// Package pagestore provides the disk-page abstraction every index and file
// in this repository is built on: fixed 4096-byte pages addressed by PageID.
//
// Two backing implementations are provided (in-memory and file-backed) plus
// two wrappers: Counting, which tallies page accesses so experiments can
// charge the paper's 10 ms per node access, and Cache, an LRU buffer pool
// used by the ablation studies.
package pagestore

import (
	"errors"
	"fmt"
	"sync"
)

// PageSize is the fixed page size in bytes, matching the paper's setup.
const PageSize = 4096

// PageID addresses a page within a store. IDs are dense, starting at 0.
type PageID uint32

// InvalidPage is a sentinel for "no page" (e.g. a leaf's missing sibling).
const InvalidPage PageID = ^PageID(0)

// Store is the minimal page-device contract. Read and Write operate on whole
// pages; buf must be exactly PageSize bytes.
type Store interface {
	// Allocate reserves a fresh zeroed page and returns its id.
	Allocate() (PageID, error)
	// Read fills buf with the content of page id.
	Read(id PageID, buf []byte) error
	// Write persists buf as the content of page id.
	Write(id PageID, buf []byte) error
	// Free releases a page. Freed ids may be recycled by Allocate.
	Free(id PageID) error
	// NumPages returns the number of live (allocated, not freed) pages.
	NumPages() int
	// Close releases underlying resources.
	Close() error
}

// Errors shared by implementations.
var (
	ErrBadPageID   = errors.New("pagestore: page id out of range or freed")
	ErrBadBufSize  = errors.New("pagestore: buffer must be exactly one page")
	ErrStoreClosed = errors.New("pagestore: store is closed")
)

// Mem is an in-memory store. It is safe for concurrent use.
type Mem struct {
	mu     sync.RWMutex
	pages  [][]byte
	free   []PageID
	closed bool
}

// NewMem returns an empty in-memory page store.
func NewMem() *Mem {
	return &Mem{}
}

// Allocate implements Store.
func (m *Mem) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrStoreClosed
	}
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		m.pages[id] = make([]byte, PageSize)
		return id, nil
	}
	id := PageID(len(m.pages))
	m.pages = append(m.pages, make([]byte, PageSize))
	return id, nil
}

// Read implements Store.
func (m *Mem) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadBufSize
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrStoreClosed
	}
	if int(id) >= len(m.pages) || m.pages[id] == nil {
		return fmt.Errorf("%w: read %d", ErrBadPageID, id)
	}
	copy(buf, m.pages[id])
	return nil
}

// Write implements Store.
func (m *Mem) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadBufSize
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	if int(id) >= len(m.pages) || m.pages[id] == nil {
		return fmt.Errorf("%w: write %d", ErrBadPageID, id)
	}
	copy(m.pages[id], buf)
	return nil
}

// Free implements Store.
func (m *Mem) Free(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	if int(id) >= len(m.pages) || m.pages[id] == nil {
		return fmt.Errorf("%w: free %d", ErrBadPageID, id)
	}
	m.pages[id] = nil
	m.free = append(m.free, id)
	return nil
}

// NumPages implements Store.
func (m *Mem) NumPages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages) - len(m.free)
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.pages = nil
	m.free = nil
	return nil
}

// Bytes returns the total live storage in bytes (NumPages × PageSize).
// Storage-cost experiments (Fig. 8) read this.
func Bytes(s Store) int64 {
	return int64(s.NumPages()) * PageSize
}
