package pagestore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestCreateFilePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.pages")
	s, err := CreateFile(path)
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	want := make([]byte, PageSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, want); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("CreateFile store removed its file on Close: %v", err)
	}

	r, err := ReopenFile(path)
	if err != nil {
		t.Fatalf("ReopenFile: %v", err)
	}
	defer r.Close()
	if n := r.NumPages(); n != 1 {
		t.Fatalf("NumPages after reopen = %d, want 1", n)
	}
	got := make([]byte, PageSize)
	if err := r.Read(id, got); err != nil {
		t.Fatalf("Read after reopen: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page content lost across reopen")
	}
	// New allocations extend past the recovered pages.
	id2, err := r.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != 1 {
		t.Fatalf("post-reopen allocation id = %d, want 1", id2)
	}
}

func TestOpenFileRemovesOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ephemeral.pages")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := s.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("OpenFile store left its file behind: %v", err)
	}
}

func TestReopenFileRejectsMisalignedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.pages")
	if err := os.WriteFile(path, make([]byte, PageSize+17), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReopenFile(path); err == nil {
		t.Fatal("ReopenFile accepted a misaligned file")
	}
}

func TestReopenFileMissing(t *testing.T) {
	if _, err := ReopenFile(filepath.Join(t.TempDir(), "nope.pages")); err == nil {
		t.Fatal("ReopenFile accepted a missing file")
	}
}

func TestSyncOnClosedStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.pages")
	s, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Sync(); err != ErrStoreClosed {
		t.Fatalf("Sync after close = %v, want ErrStoreClosed", err)
	}
}

// TestReopenRecyclesFreedPages: pages freed before a clean Close come back
// from the free list after ReopenFile, instead of leaking forever.
func TestReopenRecyclesFreedPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "free.pages")
	s, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 10; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		if err := s.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []PageID{2, 5, 7} {
		if err := s.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.NumPages(); got != 7 {
		t.Fatalf("NumPages before close: %d, want 7", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := ReopenFile(path)
	if err != nil {
		t.Fatalf("ReopenFile: %v", err)
	}
	defer r.Close()
	if got := r.NumPages(); got != 7 {
		t.Fatalf("NumPages after reopen: %d, want 7 (free list lost?)", got)
	}
	// Surviving data pages are intact (the trailer was stripped cleanly).
	if err := r.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 {
		t.Fatalf("page 3 content corrupted: %d", buf[0])
	}
	// The three freed pages come back (LIFO) before the file extends.
	got := map[PageID]bool{}
	for i := 0; i < 3; i++ {
		id, err := r.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		got[id] = true
	}
	for _, id := range []PageID{2, 5, 7} {
		if !got[id] {
			t.Fatalf("freed page %d not recycled after reopen (got %v)", id, got)
		}
	}
	id, err := r.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 10 {
		t.Fatalf("post-recycle allocation extended to %d, want 10", id)
	}
}

// TestReopenFreeListRoundTripsTwice: a second close/reopen cycle preserves
// a still-unconsumed free list.
func TestReopenFreeListRoundTripsTwice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "free2.pages")
	s, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Free(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 2; cycle++ {
		r, err := ReopenFile(path)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if got := r.NumPages(); got != 3 {
			t.Fatalf("cycle %d: NumPages %d, want 3", cycle, got)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	r, err := ReopenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if id, err := r.Allocate(); err != nil || id != 1 {
		t.Fatalf("Allocate after two cycles: id %d err %v, want 1", id, err)
	}
}

// TestReopenLegacyFileWithoutTrailer: a raw page file written without a
// trailer (pre-trailer format, or a crash before Close) still opens, with
// every page treated as live.
func TestReopenLegacyFileWithoutTrailer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.pages")
	raw := make([]byte, 3*PageSize)
	for i := range raw {
		raw[i] = byte(i)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := ReopenFile(path)
	if err != nil {
		t.Fatalf("ReopenFile(legacy): %v", err)
	}
	defer s.Close()
	if got := s.NumPages(); got != 3 {
		t.Fatalf("legacy NumPages: %d, want 3", got)
	}
	if id, err := s.Allocate(); err != nil || id != 3 {
		t.Fatalf("legacy Allocate: id %d err %v, want 3", id, err)
	}
}

// TestReopenRejectsCorruptTrailer: a trailer whose footer lies about its
// geometry is rejected rather than silently mis-parsed.
func TestReopenRejectsCorruptTrailer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.pages")
	s, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Free(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate the claimed entry count beyond what the trailer can hold.
	binarySetU32(raw[len(raw)-8:len(raw)-4], 1<<20)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReopenFile(path); err == nil {
		t.Fatal("corrupt trailer accepted")
	}
}

func binarySetU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// TestReopenRejectsDuplicateFreeListEntry: a trailer listing the same page
// twice would double-allocate it; recovery must reject it.
func TestReopenRejectsDuplicateFreeListEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.pages")
	s, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []PageID{1, 2} {
		if err := s.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The trailer's two ids sit at the start of the last page; duplicate
	// the first over the second.
	trailer := raw[len(raw)-PageSize:]
	copy(trailer[4:8], trailer[0:4])
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReopenFile(path); err == nil {
		t.Fatal("duplicate free-list entry accepted")
	}
}
