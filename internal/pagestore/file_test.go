package pagestore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestCreateFilePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.pages")
	s, err := CreateFile(path)
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	want := make([]byte, PageSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, want); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("CreateFile store removed its file on Close: %v", err)
	}

	r, err := ReopenFile(path)
	if err != nil {
		t.Fatalf("ReopenFile: %v", err)
	}
	defer r.Close()
	if n := r.NumPages(); n != 1 {
		t.Fatalf("NumPages after reopen = %d, want 1", n)
	}
	got := make([]byte, PageSize)
	if err := r.Read(id, got); err != nil {
		t.Fatalf("Read after reopen: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page content lost across reopen")
	}
	// New allocations extend past the recovered pages.
	id2, err := r.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != 1 {
		t.Fatalf("post-reopen allocation id = %d, want 1", id2)
	}
}

func TestOpenFileRemovesOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ephemeral.pages")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := s.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("OpenFile store left its file behind: %v", err)
	}
}

func TestReopenFileRejectsMisalignedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.pages")
	if err := os.WriteFile(path, make([]byte, PageSize+17), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReopenFile(path); err == nil {
		t.Fatal("ReopenFile accepted a misaligned file")
	}
}

func TestReopenFileMissing(t *testing.T) {
	if _, err := ReopenFile(filepath.Join(t.TempDir(), "nope.pages")); err == nil {
		t.Fatal("ReopenFile accepted a missing file")
	}
}

func TestSyncOnClosedStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.pages")
	s, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Sync(); err != ErrStoreClosed {
		t.Fatalf("Sync after close = %v, want ErrStoreClosed", err)
	}
}
