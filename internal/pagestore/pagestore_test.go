package pagestore

import (
	"bytes"
	"path/filepath"
	"testing"
)

// storeFactories lets every conformance test run against both backends.
func storeFactories(t *testing.T) map[string]func(t *testing.T) Store {
	return map[string]func(t *testing.T) Store{
		"mem": func(t *testing.T) Store { return NewMem() },
		"file": func(t *testing.T) Store {
			s, err := OpenFile(filepath.Join(t.TempDir(), "pages.db"))
			if err != nil {
				t.Fatalf("OpenFile: %v", err)
			}
			return s
		},
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()

			id, err := s.Allocate()
			if err != nil {
				t.Fatalf("Allocate: %v", err)
			}
			buf := make([]byte, PageSize)
			if err := s.Read(id, buf); err != nil {
				t.Fatalf("Read fresh page: %v", err)
			}
			if !bytes.Equal(buf, make([]byte, PageSize)) {
				t.Fatal("fresh page is not zeroed")
			}

			for i := range buf {
				buf[i] = byte(i)
			}
			if err := s.Write(id, buf); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got := make([]byte, PageSize)
			if err := s.Read(id, got); err != nil {
				t.Fatalf("Read back: %v", err)
			}
			if !bytes.Equal(got, buf) {
				t.Fatal("read back different bytes than written")
			}
			if n := s.NumPages(); n != 1 {
				t.Fatalf("NumPages = %d, want 1", n)
			}
		})
	}
}

func TestStoreFreeAndRecycle(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()

			a, _ := s.Allocate()
			b, _ := s.Allocate()
			buf := make([]byte, PageSize)
			buf[0] = 0xEE
			if err := s.Write(a, buf); err != nil {
				t.Fatalf("Write: %v", err)
			}
			if err := s.Free(a); err != nil {
				t.Fatalf("Free: %v", err)
			}
			if n := s.NumPages(); n != 1 {
				t.Fatalf("NumPages after free = %d, want 1", n)
			}
			c, err := s.Allocate()
			if err != nil {
				t.Fatalf("Allocate after free: %v", err)
			}
			if c != a {
				t.Fatalf("recycled id = %d, want %d", c, a)
			}
			got := make([]byte, PageSize)
			if err := s.Read(c, got); err != nil {
				t.Fatalf("Read recycled: %v", err)
			}
			if !bytes.Equal(got, make([]byte, PageSize)) {
				t.Fatal("recycled page was not zeroed")
			}
			_ = b
		})
	}
}

func TestStoreErrors(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()

			short := make([]byte, PageSize-1)
			if err := s.Read(0, short); err != ErrBadBufSize {
				t.Fatalf("Read(short buf) error = %v, want ErrBadBufSize", err)
			}
			full := make([]byte, PageSize)
			if err := s.Read(12345, full); err == nil {
				t.Fatal("Read of unallocated page succeeded")
			}
			if err := s.Write(12345, full); err == nil {
				t.Fatal("Write of unallocated page succeeded")
			}
		})
	}
}

func TestMemClosedStore(t *testing.T) {
	s := NewMem()
	id, _ := s.Allocate()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	buf := make([]byte, PageSize)
	if err := s.Read(id, buf); err != ErrStoreClosed {
		t.Fatalf("Read after close error = %v, want ErrStoreClosed", err)
	}
	if _, err := s.Allocate(); err != ErrStoreClosed {
		t.Fatalf("Allocate after close error = %v, want ErrStoreClosed", err)
	}
}

func TestCountingStats(t *testing.T) {
	c := NewCounting(NewMem())
	id, _ := c.Allocate()
	buf := make([]byte, PageSize)
	_ = c.Write(id, buf)
	_ = c.Read(id, buf)
	_ = c.Read(id, buf)
	st := c.Stats()
	if st.Reads != 2 || st.Writes != 1 || st.Allocs != 1 {
		t.Fatalf("Stats = %+v, want reads=2 writes=1 allocs=1", st)
	}
	if st.Accesses() != 3 {
		t.Fatalf("Accesses = %d, want 3", st.Accesses())
	}
	c.Reset()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("Stats after Reset = %+v, want zero", st)
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{Reads: 5, Writes: 3, Allocs: 2, Frees: 1}
	b := Stats{Reads: 2, Writes: 1, Allocs: 1, Frees: 0}
	if got := a.Sub(b); got != (Stats{Reads: 3, Writes: 2, Allocs: 1, Frees: 1}) {
		t.Fatalf("Sub = %+v", got)
	}
	if got := b.Add(b); got != (Stats{Reads: 4, Writes: 2, Allocs: 2, Frees: 0}) {
		t.Fatalf("Add = %+v", got)
	}
}

func TestCacheServesHitsWithoutInnerReads(t *testing.T) {
	counting := NewCounting(NewMem())
	cache := NewCache(counting, 4)

	id, _ := cache.Allocate()
	buf := make([]byte, PageSize)
	buf[0] = 7
	if err := cache.Write(id, buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	before := counting.Stats().Reads
	for i := 0; i < 5; i++ {
		if err := cache.Read(id, buf); err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	if after := counting.Stats().Reads; after != before {
		t.Fatalf("cache hit touched inner store: reads %d -> %d", before, after)
	}
	hits, misses := cache.HitsMisses()
	if hits != 5 || misses != 0 {
		t.Fatalf("hits=%d misses=%d, want 5/0", hits, misses)
	}
}

func TestCacheEviction(t *testing.T) {
	counting := NewCounting(NewMem())
	cache := NewCache(counting, 2)

	ids := make([]PageID, 3)
	buf := make([]byte, PageSize)
	for i := range ids {
		id, _ := cache.Allocate()
		ids[i] = id
		buf[0] = byte(i + 1)
		if err := cache.Write(id, buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	// ids[0] must have been evicted (capacity 2, three inserts).
	if err := cache.Read(ids[0], buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if buf[0] != 1 {
		t.Fatalf("evicted page content = %d, want 1", buf[0])
	}
	_, misses := cache.HitsMisses()
	if misses == 0 {
		t.Fatal("expected at least one miss after eviction")
	}
}

func TestCacheFreeDropsCachedCopy(t *testing.T) {
	cache := NewCache(NewMem(), 4)
	id, _ := cache.Allocate()
	buf := make([]byte, PageSize)
	buf[0] = 9
	_ = cache.Write(id, buf)
	if err := cache.Free(id); err != nil {
		t.Fatalf("Free: %v", err)
	}
	// Reallocate; must observe a zeroed page, not the stale cached copy.
	id2, _ := cache.Allocate()
	if id2 != id {
		t.Skipf("store did not recycle id (got %d want %d)", id2, id)
	}
	got := make([]byte, PageSize)
	if err := cache.Read(id2, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got[0] != 0 {
		t.Fatal("cache served stale content for recycled page")
	}
}

func TestBytes(t *testing.T) {
	s := NewMem()
	for i := 0; i < 3; i++ {
		if _, err := s.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if got := Bytes(s); got != 3*PageSize {
		t.Fatalf("Bytes = %d, want %d", got, 3*PageSize)
	}
}
