package wire

import (
	"encoding/binary"
	"fmt"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/exec"
	"sae/internal/record"
	"sae/internal/replica"
	"sae/internal/wal"
)

// serveSPRead answers the read-only SP protocol messages (range query,
// batch query, aggregate) against any service provider. It is shared by
// the stand-alone SPServer, the composite primary server and the replica
// server, which is what keeps read responses byte-for-byte identical
// across topologies. ok is false for messages it does not own.
func serveSPRead(sp *core.ServiceProvider, req Frame, rb *RespBuf) (Frame, bool) {
	switch req.Type {
	case MsgQuery:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		// One execution context per network request: concurrent requests
		// on this (or any other) connection account their accesses
		// independently. The serve path streams each record from its
		// pinned page straight into the pooled response frame — the only
		// per-record copy between the heap file and the socket.
		at := rb.beginRecords()
		n, _, err := sp.ServeRangeCtx(exec.NewContext(), q, rb.appendRecord)
		if err != nil {
			return errFrame(err), true
		}
		rb.endRecords(at, n)
		return Frame{Type: MsgResult, Payload: rb.b}, true
	case MsgBatchQuery:
		qs, err := DecodeRanges(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		rb.b = binary.BigEndian.AppendUint32(rb.b, uint32(len(qs)))
		for _, q := range qs {
			at := rb.beginRecords()
			n, _, err := sp.ServeRangeCtx(exec.NewContext(), q, rb.appendRecord)
			if err != nil {
				return errFrame(err), true
			}
			rb.endRecords(at, n)
		}
		return Frame{Type: MsgBatchResult, Payload: rb.b}, true
	case MsgAggQuery:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		// The aggregation fast path: a canonical-cover descent over the
		// annotated B+-tree, no heap access, a constant 24-byte response.
		a, _, err := sp.AggregateCtx(exec.NewContext(), q)
		if err != nil {
			return errFrame(err), true
		}
		rb.b = a.AppendTo(rb.b)
		return Frame{Type: MsgAggResult, Payload: rb.b}, true
	}
	return Frame{}, false
}

// serveTERead answers the read-only TE protocol messages (token, batch
// token, aggregate token) against any trusted entity; see serveSPRead.
func serveTERead(te *core.TrustedEntity, req Frame, rb *RespBuf) (Frame, bool) {
	switch req.Type {
	case MsgVTRequest:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		vt, _, err := te.GenerateVTCtx(exec.NewContext(), q)
		if err != nil {
			return errFrame(err), true
		}
		rb.b = append(rb.b, vt[:]...)
		return Frame{Type: MsgVT, Payload: rb.b}, true
	case MsgBatchVT:
		qs, err := DecodeRanges(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		// The batch fans out across the TE's crypto worker pool; each
		// token still runs under its own request context, so accounting
		// and token bytes match the serial loop exactly.
		vts, err := te.GenerateVTBatch(qs, 0)
		if err != nil {
			return errFrame(err), true
		}
		rb.b = binary.BigEndian.AppendUint32(rb.b, uint32(len(vts)))
		for i := range vts {
			rb.b = append(rb.b, vts[i][:]...)
		}
		return Frame{Type: MsgBatchVTResult, Payload: rb.b}, true
	case MsgAggTokenReq:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		tok, _, err := te.AggTokenCtx(exec.NewContext(), q)
		if err != nil {
			return errFrame(err), true
		}
		rb.b = tok.AppendTo(rb.b)
		return Frame{Type: MsgAggToken, Payload: rb.b}, true
	}
	return Frame{}, false
}

// genStampFrame answers a generation-stamp request.
func genStampFrame(seq uint64, rb *RespBuf) Frame {
	rb.b = binary.BigEndian.AppendUint64(rb.b, seq)
	return Frame{Type: MsgGenStamp, Payload: rb.b}
}

// serveVerified encodes one atomically-served (gen, VT, records) triple:
// an 8-byte stamp and a 20-byte token slot reserved up front, records
// streamed behind them, both holes patched once the serve call reports
// what boundary it ran at.
func serveVerified(req Frame, rb *RespBuf,
	serve func(q record.Range, emit func(*record.Record) error) (int, digest.Digest, uint64, error)) Frame {
	q, err := DecodeRange(req.Payload)
	if err != nil {
		return errFrame(err)
	}
	base := len(rb.b)
	rb.b = append(rb.b, make([]byte, 8+digest.Size)...)
	at := rb.beginRecords()
	n, vt, seq, err := serve(q, rb.appendRecord)
	if err != nil {
		return errFrame(err)
	}
	rb.endRecords(at, n)
	binary.BigEndian.PutUint64(rb.b[base:base+8], seq)
	copy(rb.b[base+8:base+8+digest.Size], vt[:])
	return Frame{Type: MsgVerifiedResult, Payload: rb.b}
}

// PrimaryServer exposes a whole durable shard — SP reads, TE tokens,
// owner writes through the group-commit pipeline, verified (stamped)
// queries, and the replication endpoints replicas bootstrap and tail
// from — on ONE address.
type PrimaryServer struct {
	*Server
	ds  *core.DurableSystem
	hub *replica.Hub
}

// ServePrimary starts a primary server on addr. hub must be attached to
// ds's committer (replica.Attach); it supplies the snapshot and
// group-retention halves of the replication protocol.
func ServePrimary(addr string, ds *core.DurableSystem, hub *replica.Hub, logf func(string, ...any), opts ...ServerOption) (*PrimaryServer, error) {
	srv := &PrimaryServer{ds: ds, hub: hub}
	s, err := newServer(addr, srv.handle, logf, opts)
	if err != nil {
		return nil, err
	}
	srv.Server = s
	s.start()
	return srv, nil
}

func (s *PrimaryServer) handle(req Frame, rb *RespBuf) Frame {
	if resp, ok := serveSPRead(s.ds.SP, req, rb); ok {
		return resp
	}
	if resp, ok := serveTERead(s.ds.TE, req, rb); ok {
		return resp
	}
	switch req.Type {
	case MsgGenStampReq:
		return genStampFrame(s.ds.Seq(), rb)
	case MsgVerifiedQuery:
		return serveVerified(req, rb, s.ds.ServeVerified)
	case MsgInsert:
		r, err := record.Unmarshal(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		return s.commitOps([]wal.Op{wal.InsertOp(r)})
	case MsgDelete:
		id, key, err := DecodeDelete(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		return s.commitOps([]wal.Op{wal.DeleteOp(id, key)})
	case MsgBatchInsert:
		ops, err := decodeInsertOps(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		return s.commitOps(ops)
	case MsgBatchDelete:
		ops, err := decodeDeleteOps(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		return s.commitOps(ops)
	case MsgReplicaSnapReq:
		recs, seq, err := s.hub.Snapshot()
		if err != nil {
			return errFrame(err)
		}
		si := s.shardInfo.Load()
		if si == nil {
			si = &ShardInfo{}
		}
		sib := EncodeShardInfo(*si)
		rb.AppendUint32(uint32(len(sib)))
		rb.Append(sib)
		rb.b = core.EncodeSnapshot(rb.b, recs, seq)
		return Frame{Type: MsgReplicaSnap, Payload: rb.b}
	case MsgReplicaPull:
		after, max, err := DecodeReplicaPull(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		gs, snapshotNeeded, _ := s.hub.Since(after, max)
		flags := byte(0)
		if snapshotNeeded {
			flags |= replicaFlagSnapshotNeeded
		}
		rb.b = append(rb.b, flags)
		rb.b = binary.BigEndian.AppendUint32(rb.b, uint32(len(gs)))
		for i := range gs {
			if rb.b, err = wal.AppendGroupWire(rb.b, gs[i]); err != nil {
				return errFrame(err)
			}
		}
		return Frame{Type: MsgReplicaGroups, Payload: rb.b}
	case MsgShardMapReq:
		return s.shardMapFrame()
	default:
		return errFrame(fmt.Errorf("%w: primary cannot handle message type %d", ErrProtocol, req.Type))
	}
}

// commitOps routes wire-submitted writes through the primary's
// group-commit pipeline — durable, generation-stamped, observed by the
// replication hub — then folds them into the owner's bookkeeping.
// (Stand-alone SP/TE servers apply writes directly; a primary must not,
// or replicas would never hear about them.)
func (s *PrimaryServer) commitOps(ops []wal.Op) Frame {
	if err := s.ds.Committer().SubmitOps(ops); err != nil {
		return errFrame(err)
	}
	for i := range ops {
		switch ops[i].Kind {
		case wal.OpInsert:
			s.ds.Owner.Restore([]record.Record{ops[i].Rec})
		case wal.OpDelete:
			s.ds.Owner.Forget([]record.ID{ops[i].ID})
		}
	}
	return Frame{Type: MsgAck}
}

// ReplicaServer exposes one read replica on one address: SP reads, TE
// tokens, verified (stamped) queries and the generation stamp. Writes are
// rejected — replicas advance only by tailing their primary's commit
// groups.
type ReplicaServer struct {
	*Server
	rep *replica.Replica
}

// ServeReplica starts a replica server on addr.
func ServeReplica(addr string, rep *replica.Replica, logf func(string, ...any), opts ...ServerOption) (*ReplicaServer, error) {
	srv := &ReplicaServer{rep: rep}
	s, err := newServer(addr, srv.handle, logf, opts)
	if err != nil {
		return nil, err
	}
	srv.Server = s
	s.start()
	return srv, nil
}

func (s *ReplicaServer) handle(req Frame, rb *RespBuf) Frame {
	if resp, ok := serveSPRead(s.rep.SP(), req, rb); ok {
		return resp
	}
	if resp, ok := serveTERead(s.rep.TE(), req, rb); ok {
		return resp
	}
	switch req.Type {
	case MsgGenStampReq:
		return genStampFrame(s.rep.Seq(), rb)
	case MsgVerifiedQuery:
		return serveVerified(req, rb, s.rep.ServeVerified)
	case MsgShardMapReq:
		return s.shardMapFrame()
	case MsgInsert, MsgDelete, MsgBatchInsert, MsgBatchDelete:
		return errFrame(fmt.Errorf("%w: replica is read-only; write to the shard's primary", ErrProtocol))
	default:
		return errFrame(fmt.Errorf("%w: replica cannot handle message type %d", ErrProtocol, req.Type))
	}
}
