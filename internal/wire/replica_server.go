package wire

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/exec"
	"sae/internal/record"
	"sae/internal/replica"
	"sae/internal/wal"
)

// serveSPRead answers the read-only SP protocol messages (range query,
// batch query, aggregate) against any service provider. It is shared by
// the stand-alone SPServer, the composite primary server and the replica
// server, which is what keeps read responses byte-for-byte identical
// across topologies. ok is false for messages it does not own.
func serveSPRead(sp *core.ServiceProvider, req Frame, rb *RespBuf) (Frame, bool) {
	switch req.Type {
	case MsgQuery:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		// One execution context per network request: concurrent requests
		// on this (or any other) connection account their accesses
		// independently. The serve path streams each record from its
		// pinned page straight into the pooled response frame — the only
		// per-record copy between the heap file and the socket.
		at := rb.beginRecords()
		n, _, err := sp.ServeRangeCtx(exec.NewContext(), q, rb.appendRecord)
		if err != nil {
			return errFrame(err), true
		}
		rb.endRecords(at, n)
		return Frame{Type: MsgResult, Payload: rb.b}, true
	case MsgBatchQuery:
		qs, err := DecodeRanges(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		rb.b = binary.BigEndian.AppendUint32(rb.b, uint32(len(qs)))
		for _, q := range qs {
			at := rb.beginRecords()
			n, _, err := sp.ServeRangeCtx(exec.NewContext(), q, rb.appendRecord)
			if err != nil {
				return errFrame(err), true
			}
			rb.endRecords(at, n)
		}
		return Frame{Type: MsgBatchResult, Payload: rb.b}, true
	case MsgAggQuery:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		// The aggregation fast path: a canonical-cover descent over the
		// annotated B+-tree, no heap access, a constant 24-byte response.
		a, _, err := sp.AggregateCtx(exec.NewContext(), q)
		if err != nil {
			return errFrame(err), true
		}
		rb.b = a.AppendTo(rb.b)
		return Frame{Type: MsgAggResult, Payload: rb.b}, true
	}
	return Frame{}, false
}

// serveTERead answers the read-only TE protocol messages (token, batch
// token, aggregate token) against any trusted entity; see serveSPRead.
func serveTERead(te *core.TrustedEntity, req Frame, rb *RespBuf) (Frame, bool) {
	switch req.Type {
	case MsgVTRequest:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		vt, _, err := te.GenerateVTCtx(exec.NewContext(), q)
		if err != nil {
			return errFrame(err), true
		}
		rb.b = append(rb.b, vt[:]...)
		return Frame{Type: MsgVT, Payload: rb.b}, true
	case MsgBatchVT:
		qs, err := DecodeRanges(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		// The batch fans out across the TE's crypto worker pool; each
		// token still runs under its own request context, so accounting
		// and token bytes match the serial loop exactly.
		vts, err := te.GenerateVTBatch(qs, 0)
		if err != nil {
			return errFrame(err), true
		}
		rb.b = binary.BigEndian.AppendUint32(rb.b, uint32(len(vts)))
		for i := range vts {
			rb.b = append(rb.b, vts[i][:]...)
		}
		return Frame{Type: MsgBatchVTResult, Payload: rb.b}, true
	case MsgAggTokenReq:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err), true
		}
		tok, _, err := te.AggTokenCtx(exec.NewContext(), q)
		if err != nil {
			return errFrame(err), true
		}
		rb.b = tok.AppendTo(rb.b)
		return Frame{Type: MsgAggToken, Payload: rb.b}, true
	}
	return Frame{}, false
}

// genStampFrame answers a generation-stamp request.
func genStampFrame(seq uint64, rb *RespBuf) Frame {
	rb.b = binary.BigEndian.AppendUint64(rb.b, seq)
	return Frame{Type: MsgGenStamp, Payload: rb.b}
}

// serveVerified encodes one atomically-served (epoch, gen, VT, records)
// quadruple: two 8-byte stamps and a 20-byte token slot reserved up
// front, records streamed behind them, the holes patched once the serve
// call reports what boundary it ran at. The epoch is the server's current
// plan epoch, so every verified answer names the topology it was served
// under.
//
// When the server is one shard of many it refuses ranges that escape its
// own span: a router must clamp sub-queries to shard spans, so a range
// that reaches past the span means a confused (or malicious) router is
// trying to make one shard attest keys another shard owns — the
// seam-suppression attack the span check closes.
func serveVerified(req Frame, rb *RespBuf, si *ShardInfo,
	serve func(q record.Range, emit func(*record.Record) error) (int, digest.Digest, uint64, error)) Frame {
	q, err := DecodeRange(req.Payload)
	if err != nil {
		return errFrame(err)
	}
	var epoch uint64
	if si != nil {
		epoch = si.Plan.Epoch()
		if si.Plan.Shards() > 1 {
			span := si.Plan.Span(si.Index)
			if q.Lo < span.Lo || q.Hi > span.Hi {
				return errFrame(fmt.Errorf("%w: verified query [%d,%d] escapes shard %d's span [%d,%d]",
					ErrProtocol, q.Lo, q.Hi, si.Index, span.Lo, span.Hi))
			}
		}
	}
	base := len(rb.b)
	rb.b = append(rb.b, make([]byte, 16+digest.Size)...)
	at := rb.beginRecords()
	n, vt, seq, err := serve(q, rb.appendRecord)
	if err != nil {
		return errFrame(err)
	}
	rb.endRecords(at, n)
	binary.BigEndian.PutUint64(rb.b[base:base+8], epoch)
	binary.BigEndian.PutUint64(rb.b[base+8:base+16], seq)
	copy(rb.b[base+16:base+16+digest.Size], vt[:])
	return Frame{Type: MsgVerifiedResult, Payload: rb.b}
}

// freezeWaitMax bounds how long a wire-submitted write blocks behind a
// freeze before failing back to the caller; a freeze that outlives it is
// a stuck reshard, and surfacing the error beats hanging the connection.
const freezeWaitMax = 5 * time.Second

// PrimaryServer exposes a whole durable shard — SP reads, TE tokens,
// owner writes through the group-commit pipeline, verified (stamped)
// queries, and the replication endpoints replicas bootstrap and tail
// from — on ONE address.
//
// For resharding the primary additionally runs a small lifecycle machine:
// warming (a freshly-bootstrapped reshard target refuses client traffic
// until the coordinator activates it at cutover, so it never attests data
// it has not caught up to), frozen (writes block while the coordinator
// drains the final commit group; auto-thaws on TTL), and retired (the
// span has been migrated away — writes and client reads are permanently
// refused while replication pulls keep serving stragglers).
type PrimaryServer struct {
	*Server
	ds  *core.DurableSystem
	hub *replica.Hub

	mu        sync.Mutex
	frozen    bool
	thawCh    chan struct{} // non-nil while frozen; closed on thaw
	thawTimer *time.Timer
	warming   atomic.Bool
	retired   atomic.Bool
}

// ServePrimary starts a primary server on addr. hub must be attached to
// ds's committer (replica.Attach); it supplies the snapshot and
// group-retention halves of the replication protocol.
func ServePrimary(addr string, ds *core.DurableSystem, hub *replica.Hub, logf func(string, ...any), opts ...ServerOption) (*PrimaryServer, error) {
	srv := &PrimaryServer{ds: ds, hub: hub}
	s, err := newServer(addr, srv.handle, logf, opts)
	if err != nil {
		return nil, err
	}
	srv.Server = s
	s.start()
	return srv, nil
}

func (s *PrimaryServer) handle(req Frame, rb *RespBuf) Frame {
	if blocked, resp := s.gateClientTraffic(req); blocked {
		return resp
	}
	if resp, ok := serveSPRead(s.ds.SP, req, rb); ok {
		return resp
	}
	if resp, ok := serveTERead(s.ds.TE, req, rb); ok {
		return resp
	}
	switch req.Type {
	case MsgGenStampReq:
		return genStampFrame(s.ds.Seq(), rb)
	case MsgVerifiedQuery:
		return serveVerified(req, rb, s.shardInfo.Load(), s.ds.ServeVerified)
	case MsgPlanUpdate:
		si, err := DecodeShardInfo(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.AdoptPlan(si); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgFreeze:
		ttl, err := DecodeFreeze(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		s.freeze(ttl)
		// Ack only after every in-flight commit group has drained: once the
		// coordinator sees the ack, the WAL stream is complete and final.
		s.ds.Committer().Quiesce()
		return Frame{Type: MsgAck}
	case MsgThaw:
		s.thaw()
		return Frame{Type: MsgAck}
	case MsgRetire:
		s.Retire()
		return Frame{Type: MsgAck}
	case MsgInsert:
		r, err := record.Unmarshal(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		return s.commitOps([]wal.Op{wal.InsertOp(r)})
	case MsgDelete:
		id, key, err := DecodeDelete(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		return s.commitOps([]wal.Op{wal.DeleteOp(id, key)})
	case MsgBatchInsert:
		ops, err := decodeInsertOps(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		return s.commitOps(ops)
	case MsgBatchDelete:
		ops, err := decodeDeleteOps(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		return s.commitOps(ops)
	case MsgReplicaSnapReq:
		recs, seq, err := s.hub.Snapshot()
		if err != nil {
			return errFrame(err)
		}
		si := s.shardInfo.Load()
		if si == nil {
			si = &ShardInfo{}
		}
		sib := EncodeShardInfo(*si)
		rb.AppendUint32(uint32(len(sib)))
		rb.Append(sib)
		rb.b = core.EncodeSnapshot(rb.b, recs, seq)
		return Frame{Type: MsgReplicaSnap, Payload: rb.b}
	case MsgReplicaPull:
		after, max, err := DecodeReplicaPull(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		gs, snapshotNeeded, _ := s.hub.Since(after, max)
		flags := byte(0)
		if snapshotNeeded {
			flags |= replicaFlagSnapshotNeeded
		}
		rb.b = append(rb.b, flags)
		rb.b = binary.BigEndian.AppendUint32(rb.b, uint32(len(gs)))
		for i := range gs {
			if rb.b, err = wal.AppendGroupWire(rb.b, gs[i]); err != nil {
				return errFrame(err)
			}
		}
		return Frame{Type: MsgReplicaGroups, Payload: rb.b}
	case MsgShardMapReq:
		return s.shardMapFrame()
	default:
		return errFrame(fmt.Errorf("%w: primary cannot handle message type %d", ErrProtocol, req.Type))
	}
}

// gateClientTraffic enforces the reshard lifecycle on inbound frames.
// Control frames, the generation stamp, the shard map and the replication
// endpoints always pass (the coordinator and draining stragglers need
// them in every state); client reads are refused while warming or
// retired; writes are additionally refused once retired.
func (s *PrimaryServer) gateClientTraffic(req Frame) (bool, Frame) {
	switch req.Type {
	case MsgPlanUpdate, MsgFreeze, MsgThaw, MsgRetire,
		MsgGenStampReq, MsgShardMapReq, MsgReplicaSnapReq, MsgReplicaPull:
		return false, Frame{}
	}
	if s.retired.Load() {
		return true, errFrame(fmt.Errorf("%w: shard retired after reshard; refresh the plan and re-route", ErrProtocol))
	}
	if s.warming.Load() {
		return true, errFrame(fmt.Errorf("%w: reshard target still warming; not yet serving clients", ErrProtocol))
	}
	return false, Frame{}
}

// SetWarming marks (or clears) the warming state: a reshard target is
// created warming and flipped live by the coordinator at cutover.
func (s *PrimaryServer) SetWarming(on bool) { s.warming.Store(on) }

// Retire permanently fences the shard off from clients — its span now
// lives elsewhere. Replication pulls keep working so a straggling target
// can still drain the final groups. A frozen server is thawed first so
// blocked writers fail out instead of hanging until the TTL.
func (s *PrimaryServer) Retire() {
	s.retired.Store(true)
	s.thaw()
}

// AdoptPlan installs a new shard attestation. Only a strictly higher
// epoch is accepted: a replayed MsgPlanUpdate carrying an older topology
// cannot roll the server back.
func (s *PrimaryServer) AdoptPlan(si ShardInfo) error {
	cur := s.shardInfo.Load()
	var curEpoch uint64
	if cur != nil {
		curEpoch = cur.Plan.Epoch()
	}
	if si.Plan.Epoch() <= curEpoch {
		return fmt.Errorf("%w: plan update at epoch %d rejected; already at epoch %d",
			ErrProtocol, si.Plan.Epoch(), curEpoch)
	}
	s.SetShardInfo(si)
	return nil
}

// freeze blocks new write commits until thawed or until ttl expires —
// the auto-thaw is the liveness backstop against a coordinator that dies
// holding the freeze.
func (s *PrimaryServer) freeze(ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.frozen {
		s.frozen = true
		s.thawCh = make(chan struct{})
	}
	if s.thawTimer != nil {
		s.thawTimer.Stop()
	}
	if ttl > 0 {
		s.thawTimer = time.AfterFunc(ttl, s.thaw)
	}
}

func (s *PrimaryServer) thaw() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		s.frozen = false
		close(s.thawCh)
		s.thawCh = nil
	}
	if s.thawTimer != nil {
		s.thawTimer.Stop()
		s.thawTimer = nil
	}
}

// waitThaw blocks the calling writer while the shard is frozen. Writers
// block rather than error so the freeze window is invisible to clients —
// the write completes (against the successor topology's surviving
// primary, or against this one after a thaw) instead of surfacing a
// transient failure during cutover.
func (s *PrimaryServer) waitThaw() error {
	s.mu.Lock()
	if !s.frozen {
		s.mu.Unlock()
		return nil
	}
	ch := s.thawCh
	s.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-time.After(freezeWaitMax):
		return fmt.Errorf("%w: write blocked %v behind a frozen shard", ErrProtocol, freezeWaitMax)
	}
}

// commitOps routes wire-submitted writes through the primary's
// group-commit pipeline — durable, generation-stamped, observed by the
// replication hub — then folds them into the owner's bookkeeping.
// (Stand-alone SP/TE servers apply writes directly; a primary must not,
// or replicas would never hear about them.)
func (s *PrimaryServer) commitOps(ops []wal.Op) Frame {
	if err := s.waitThaw(); err != nil {
		return errFrame(err)
	}
	if s.retired.Load() {
		return errFrame(fmt.Errorf("%w: shard retired after reshard; write to the new topology", ErrProtocol))
	}
	if err := s.ds.Committer().SubmitOps(ops); err != nil {
		return errFrame(err)
	}
	for i := range ops {
		switch ops[i].Kind {
		case wal.OpInsert:
			s.ds.Owner.Restore([]record.Record{ops[i].Rec})
		case wal.OpDelete:
			s.ds.Owner.Forget([]record.ID{ops[i].ID})
		}
	}
	return Frame{Type: MsgAck}
}

// ReplicaServer exposes one read replica on one address: SP reads, TE
// tokens, verified (stamped) queries and the generation stamp. Writes are
// rejected — replicas advance only by tailing their primary's commit
// groups.
type ReplicaServer struct {
	*Server
	rep *replica.Replica
}

// ServeReplica starts a replica server on addr.
func ServeReplica(addr string, rep *replica.Replica, logf func(string, ...any), opts ...ServerOption) (*ReplicaServer, error) {
	srv := &ReplicaServer{rep: rep}
	s, err := newServer(addr, srv.handle, logf, opts)
	if err != nil {
		return nil, err
	}
	srv.Server = s
	s.start()
	return srv, nil
}

func (s *ReplicaServer) handle(req Frame, rb *RespBuf) Frame {
	if resp, ok := serveSPRead(s.rep.SP(), req, rb); ok {
		return resp
	}
	if resp, ok := serveTERead(s.rep.TE(), req, rb); ok {
		return resp
	}
	switch req.Type {
	case MsgGenStampReq:
		return genStampFrame(s.rep.Seq(), rb)
	case MsgVerifiedQuery:
		return serveVerified(req, rb, s.shardInfo.Load(), s.rep.ServeVerified)
	case MsgShardMapReq:
		return s.shardMapFrame()
	case MsgInsert, MsgDelete, MsgBatchInsert, MsgBatchDelete:
		return errFrame(fmt.Errorf("%w: replica is read-only; write to the shard's primary", ErrProtocol))
	default:
		return errFrame(fmt.Errorf("%w: replica cannot handle message type %d", ErrProtocol, req.Type))
	}
}
