package wire

import (
	"encoding/binary"
	"fmt"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/record"
	"sae/internal/wal"
)

// replicaFlagSnapshotNeeded in a MsgReplicaGroups flags byte tells the
// tailer its sequence has fallen out of the primary's retention window:
// re-bootstrap from a snapshot before pulling again.
const replicaFlagSnapshotNeeded = byte(1 << 0)

// EncodeReplicaPull builds a MsgReplicaPull payload: the tailer's current
// sequence plus the most groups it wants in one response (0 = no limit).
func EncodeReplicaPull(after uint64, max int) []byte {
	var out [12]byte
	binary.BigEndian.PutUint64(out[0:8], after)
	binary.BigEndian.PutUint32(out[8:12], uint32(max))
	return out[:]
}

// DecodeReplicaPull parses a MsgReplicaPull payload.
func DecodeReplicaPull(b []byte) (after uint64, max int, err error) {
	if len(b) != 12 {
		return 0, 0, fmt.Errorf("%w: replica pull payload of %d bytes", ErrProtocol, len(b))
	}
	return binary.BigEndian.Uint64(b[0:8]), int(binary.BigEndian.Uint32(b[8:12])), nil
}

// DecodeReplicaGroups parses a MsgReplicaGroups payload into whole commit
// groups plus the snapshot-needed flag.
func DecodeReplicaGroups(b []byte) ([]wal.Group, bool, error) {
	if len(b) < 5 {
		return nil, false, fmt.Errorf("%w: truncated replica groups payload", ErrProtocol)
	}
	snapshotNeeded := b[0]&replicaFlagSnapshotNeeded != 0
	n := binary.BigEndian.Uint32(b[1:5])
	b = b[5:]
	// Every group costs at least its 12-byte header; bound a hostile
	// count before the count-sized allocation.
	if int(n) > len(b)/12+1 {
		return nil, false, fmt.Errorf("%w: implausible group count %d for %d payload bytes", ErrProtocol, n, len(b))
	}
	gs := make([]wal.Group, 0, n)
	for i := uint32(0); i < n; i++ {
		g, rest, err := wal.DecodeGroupWire(b)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		gs = append(gs, g)
		b = rest
	}
	if len(b) != 0 {
		return nil, false, fmt.Errorf("%w: %d trailing bytes after replica groups", ErrProtocol, len(b))
	}
	return gs, snapshotNeeded, nil
}

// DecodeReplicaSnap parses a MsgReplicaSnap payload: the primary's shard
// attestation (index + partition plan, which the replica re-serves so
// clients and routers see a consistent topology) followed by a
// sequence-stamped record dump in the checkpoint's byte format.
func DecodeReplicaSnap(b []byte) (ShardInfo, []record.Record, uint64, error) {
	if len(b) < 4 {
		return ShardInfo{}, nil, 0, fmt.Errorf("%w: truncated replica snapshot", ErrProtocol)
	}
	silen := int(binary.BigEndian.Uint32(b[0:4]))
	b = b[4:]
	if silen > len(b) {
		return ShardInfo{}, nil, 0, fmt.Errorf("%w: shard attestation of %d bytes in %d payload bytes", ErrProtocol, silen, len(b))
	}
	si, err := DecodeShardInfo(b[:silen])
	if err != nil {
		return ShardInfo{}, nil, 0, err
	}
	recs, seq, err := core.DecodeSnapshot(b[silen:])
	if err != nil {
		return ShardInfo{}, nil, 0, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	return si, recs, seq, nil
}

// DecodeVerifiedResult parses a MsgVerifiedResult payload into its plan
// epoch, generation stamp, verification token and the still-encoded
// record section (an EncodeRecords payload aliasing b), which verifying
// callers hash in place before materializing.
func DecodeVerifiedResult(b []byte) (epoch, seq uint64, vt digest.Digest, recsRaw []byte, err error) {
	if len(b) < 16+digest.Size+4 {
		return 0, 0, digest.Zero, nil, fmt.Errorf("%w: truncated verified result (%d bytes)", ErrProtocol, len(b))
	}
	epoch = binary.BigEndian.Uint64(b[0:8])
	seq = binary.BigEndian.Uint64(b[8:16])
	vt = digest.FromBytes(b[16 : 16+digest.Size])
	return epoch, seq, vt, b[16+digest.Size:], nil
}
