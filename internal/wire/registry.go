package wire

// The frame registry is the single authoritative table of every message
// type the protocol defines. Frame numbers used to be assigned ad hoc
// across files as the protocol grew; the registry pins each number to a
// name in one place, a test asserts the table is dense and collision-free
// (see registry_test.go), and README.md documents the same map for
// operators reading packet traces. New frames MUST be added here.
var frameRegistry = []struct {
	Type MsgType
	Name string
}{
	{MsgQuery, "Query"},
	{MsgResult, "Result"},
	{MsgVTRequest, "VTRequest"},
	{MsgVT, "VT"},
	{MsgInsert, "Insert"},
	{MsgDelete, "Delete"},
	{MsgAck, "Ack"},
	{MsgErr, "Err"},
	{MsgTOMQuery, "TOMQuery"},
	{MsgTOMResult, "TOMResult"},
	{MsgBatchQuery, "BatchQuery"},
	{MsgBatchResult, "BatchResult"},
	{MsgBatchVT, "BatchVT"},
	{MsgBatchVTResult, "BatchVTResult"},
	{MsgShardMapReq, "ShardMapReq"},
	{MsgShardMap, "ShardMap"},
	{MsgTOMShardedResult, "TOMShardedResult"},
	{MsgBatchInsert, "BatchInsert"},
	{MsgBatchDelete, "BatchDelete"},
	{MsgAggQuery, "AggQuery"},
	{MsgAggResult, "AggResult"},
	{MsgAggTokenReq, "AggTokenReq"},
	{MsgAggToken, "AggToken"},
	{MsgTOMAggQuery, "TOMAggQuery"},
	{MsgTOMAggResult, "TOMAggResult"},
	{MsgTOMAggShardedResult, "TOMAggShardedResult"},
	{MsgGenStampReq, "GenStampReq"},
	{MsgGenStamp, "GenStamp"},
	{MsgReplicaSnapReq, "ReplicaSnapReq"},
	{MsgReplicaSnap, "ReplicaSnap"},
	{MsgReplicaPull, "ReplicaPull"},
	{MsgReplicaGroups, "ReplicaGroups"},
	{MsgVerifiedQuery, "VerifiedQuery"},
	{MsgVerifiedResult, "VerifiedResult"},
	{MsgPlanUpdate, "PlanUpdate"},
	{MsgFreeze, "Freeze"},
	{MsgThaw, "Thaw"},
	{MsgRetire, "Retire"},
	{MsgReshardCutover, "ReshardCutover"},
}

// FrameName returns the registered name of a message type, for logs and
// error strings; unknown types render as "Msg(<n>)".
func FrameName(t MsgType) string {
	for _, e := range frameRegistry {
		if e.Type == t {
			return e.Name
		}
	}
	return "Msg(" + itoa(int(t)) + ")"
}

// itoa avoids pulling strconv into the hot frame path for a log-only
// helper.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
