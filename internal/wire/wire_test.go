package wire

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/tom"
	"sae/internal/workload"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: MsgQuery, ID: 0xDEADBEEF, Payload: []byte{1, 2, 3}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if out.Type != in.Type || out.ID != in.ID || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestFrameRejectsHugePayload(t *testing.T) {
	var buf bytes.Buffer
	// type + id + a length far beyond MaxPayload.
	buf.Write([]byte{byte(MsgQuery), 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrProtocol) {
		t.Fatalf("ReadFrame(huge) error = %v, want ErrProtocol", err)
	}
}

func TestRangeCodec(t *testing.T) {
	q := record.Range{Lo: 123, Hi: 456789}
	got, err := DecodeRange(EncodeRange(q))
	if err != nil || got != q {
		t.Fatalf("range codec: got %v err %v", got, err)
	}
	if _, err := DecodeRange([]byte{1, 2}); !errors.Is(err, ErrProtocol) {
		t.Fatal("DecodeRange accepted a short payload")
	}
}

func TestRecordsCodec(t *testing.T) {
	recs := []record.Record{record.Synthesize(1, 10), record.Synthesize(2, 20)}
	buf := append(EncodeRecords(recs), 0xAA, 0xBB)
	got, rest, err := DecodeRecords(buf)
	if err != nil {
		t.Fatalf("DecodeRecords: %v", err)
	}
	if len(got) != 2 || !got[0].Equal(&recs[0]) || !got[1].Equal(&recs[1]) {
		t.Fatal("records round trip mismatch")
	}
	if !bytes.Equal(rest, []byte{0xAA, 0xBB}) {
		t.Fatal("trailing bytes not preserved")
	}
	if _, _, err := DecodeRecords([]byte{0, 0, 0, 5, 1}); !errors.Is(err, ErrProtocol) {
		t.Fatal("DecodeRecords accepted a truncated record list")
	}
}

func TestDeleteCodec(t *testing.T) {
	id, key, err := DecodeDelete(EncodeDelete(42, 99))
	if err != nil || id != 42 || key != 99 {
		t.Fatalf("delete codec: id=%d key=%d err=%v", id, key, err)
	}
}

// launchSAE boots an SP and a TE over loopback with a shared dataset.
func launchSAE(t *testing.T, n int) (*SPServer, *TEServer, *workload.Dataset) {
	t.Helper()
	ds, err := workload.Generate(workload.UNF, n, 55)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sp := core.NewServiceProvider(pagestore.NewMem())
	te := core.NewTrustedEntity(pagestore.NewMem())
	if err := sp.Load(ds.Records); err != nil {
		t.Fatalf("sp.Load: %v", err)
	}
	if err := te.Load(ds.Records); err != nil {
		t.Fatalf("te.Load: %v", err)
	}
	spSrv, err := ServeSP("127.0.0.1:0", sp, nil)
	if err != nil {
		t.Fatalf("ServeSP: %v", err)
	}
	t.Cleanup(func() { spSrv.Close() })
	teSrv, err := ServeTE("127.0.0.1:0", te, nil)
	if err != nil {
		t.Fatalf("ServeTE: %v", err)
	}
	t.Cleanup(func() { teSrv.Close() })
	return spSrv, teSrv, ds
}

func TestNetworkedVerifiedQuery(t *testing.T) {
	spSrv, teSrv, ds := launchSAE(t, 5000)
	client, err := DialVerifying(spSrv.Addr(), teSrv.Addr())
	if err != nil {
		t.Fatalf("DialVerifying: %v", err)
	}
	defer client.Close()

	for _, q := range workload.Queries(10, workload.DefaultExtent, 56) {
		recs, err := client.Query(q)
		if err != nil {
			t.Fatalf("Query(%v): %v", q, err)
		}
		want := 0
		for i := range ds.Records {
			if q.Contains(ds.Records[i].Key) {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("Query(%v) = %d records, want %d", q, len(recs), want)
		}
	}
}

func TestNetworkedTokenBytes(t *testing.T) {
	// The Figure 5 claim measured on a real socket: the TE→client exchange
	// per query is a handful of bytes (frame overhead + 20-byte token).
	spSrv, teSrv, _ := launchSAE(t, 3000)
	_ = spSrv
	te, err := DialTE(teSrv.Addr())
	if err != nil {
		t.Fatalf("DialTE: %v", err)
	}
	defer te.Close()
	const queries = 10
	for _, q := range workload.Queries(queries, workload.DefaultExtent, 57) {
		if _, err := te.GenerateVT(q); err != nil {
			t.Fatalf("GenerateVT: %v", err)
		}
	}
	perQuery := te.BytesReceived() / queries
	if perQuery != HeaderSize+digest.Size {
		t.Fatalf("TE->client bytes per query = %d, want %d", perQuery, HeaderSize+digest.Size)
	}
}

func TestNetworkedUpdateFlow(t *testing.T) {
	spSrv, teSrv, _ := launchSAE(t, 2000)
	client, err := DialVerifying(spSrv.Addr(), teSrv.Addr())
	if err != nil {
		t.Fatalf("DialVerifying: %v", err)
	}
	defer client.Close()

	// The owner pushes an insert to both parties over the wire.
	fresh := record.Synthesize(900_001, 4_242_424)
	if err := client.SP.Insert(fresh); err != nil {
		t.Fatalf("SP.Insert: %v", err)
	}
	if err := client.TE.Insert(fresh); err != nil {
		t.Fatalf("TE.Insert: %v", err)
	}
	recs, err := client.Query(record.Range{Lo: 4_242_000, Hi: 4_243_000})
	if err != nil {
		t.Fatalf("Query after insert: %v", err)
	}
	found := false
	for i := range recs {
		if recs[i].ID == fresh.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted record not returned after networked update")
	}
	// And a delete.
	if err := client.SP.Delete(fresh.ID, fresh.Key); err != nil {
		t.Fatalf("SP.Delete: %v", err)
	}
	if err := client.TE.Delete(fresh.ID, fresh.Key); err != nil {
		t.Fatalf("TE.Delete: %v", err)
	}
	recs, err = client.Query(record.Range{Lo: 4_242_000, Hi: 4_243_000})
	if err != nil {
		t.Fatalf("Query after delete: %v", err)
	}
	for i := range recs {
		if recs[i].ID == fresh.ID {
			t.Fatal("deleted record still returned")
		}
	}
}

func TestNetworkedTamperDetection(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 3000, 58)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sp := core.NewServiceProvider(pagestore.NewMem())
	te := core.NewTrustedEntity(pagestore.NewMem())
	if err := sp.Load(ds.Records); err != nil {
		t.Fatal(err)
	}
	if err := te.Load(ds.Records); err != nil {
		t.Fatal(err)
	}
	// Find a query with results, then make the networked SP malicious.
	var q record.Range
	for _, cand := range workload.Queries(50, workload.DefaultExtent, 59) {
		cnt := 0
		for i := range ds.Records {
			if cand.Contains(ds.Records[i].Key) {
				cnt++
			}
		}
		if cnt >= 2 {
			q = cand
			break
		}
	}
	sp.SetTamper(core.DropTamper(0))

	spSrv, err := ServeSP("127.0.0.1:0", sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer spSrv.Close()
	teSrv, err := ServeTE("127.0.0.1:0", te, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer teSrv.Close()

	client, err := DialVerifying(spSrv.Addr(), teSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Query(q); !errors.Is(err, core.ErrVerificationFailed) {
		t.Fatalf("networked drop attack not detected: %v", err)
	}
}

func TestNetworkedTOM(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 3000, 60)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	owner, err := tom.NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	provider := tom.NewProvider(pagestore.NewMem())
	if err := provider.Load(ds.Records, owner); err != nil {
		t.Fatal(err)
	}
	srv, err := ServeTOM("127.0.0.1:0", provider, owner, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc, err := DialTOM(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	client := &VerifyingTOMClient{Provider: tc, Verifier: owner.Verifier()}
	q := workload.Queries(1, workload.DefaultExtent, 61)[0]
	recs, err := client.Query(q)
	if err != nil {
		t.Fatalf("TOM networked query: %v", err)
	}
	want := 0
	for i := range ds.Records {
		if q.Contains(ds.Records[i].Key) {
			want++
		}
	}
	if len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	// VO bytes on the wire dwarf the SAE token.
	if tc.BytesReceived() < 1000 {
		t.Fatalf("TOM response suspiciously small: %d bytes", tc.BytesReceived())
	}
}

func TestServerRejectsUnknownMessage(t *testing.T) {
	spSrv, _, _ := launchSAE(t, 100)
	c, err := dial(spSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.roundTrip(Frame{Type: MsgVT})
	if err == nil || !strings.Contains(err.Error(), "cannot handle") {
		t.Fatalf("unknown message error = %v", err)
	}
}

func TestConcurrentNetworkedClients(t *testing.T) {
	spSrv, teSrv, _ := launchSAE(t, 5000)
	queries := workload.Queries(8, workload.DefaultExtent, 62)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := DialVerifying(spSrv.Addr(), teSrv.Addr())
			if err != nil {
				errCh <- err
				return
			}
			defer client.Close()
			for rep := 0; rep < 5; rep++ {
				if _, err := client.Query(queries[(w+rep)%len(queries)]); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent client: %v", err)
	}
}
