package wire

import (
	"testing"

	"sae/internal/record"
	"sae/internal/workload"
)

func TestBatchCodecs(t *testing.T) {
	ids := []record.ID{1, 77, 900000}
	keys := []record.Key{10, 20, 30}
	gotIDs, gotKeys, err := DecodeDeletes(EncodeDeletes(ids, keys))
	if err != nil {
		t.Fatalf("delete batch codec: %v", err)
	}
	for i := range ids {
		if gotIDs[i] != ids[i] || gotKeys[i] != keys[i] {
			t.Fatalf("delete %d round trip: got (%d,%d), want (%d,%d)", i, gotIDs[i], gotKeys[i], ids[i], keys[i])
		}
	}
	if _, _, err := DecodeDeletes([]byte{0, 0, 0, 9, 1, 2}); err == nil {
		t.Fatal("DecodeDeletes accepted an implausible count")
	}
}

// TestOwnerClientBatchUpdates pushes insert and delete batches through
// the wire batch frames and checks verified queries see exactly the
// committed state.
func TestOwnerClientBatchUpdates(t *testing.T) {
	spSrv, teSrv, ds := launchSAE(t, 3000)
	owner, err := DialOwner(spSrv.Addr(), teSrv.Addr(), ds.Records)
	if err != nil {
		t.Fatalf("DialOwner: %v", err)
	}
	defer owner.Close()
	client, err := DialVerifying(spSrv.Addr(), teSrv.Addr())
	if err != nil {
		t.Fatalf("DialVerifying: %v", err)
	}
	defer client.Close()

	keys := make([]record.Key, 120)
	for i := range keys {
		keys[i] = record.Key((i * 4093) % record.KeyDomain)
	}
	ins, err := owner.InsertBatch(keys)
	if err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	if len(ins) != len(keys) {
		t.Fatalf("InsertBatch returned %d records, want %d", len(ins), len(keys))
	}
	delIDs := make([]record.ID, 0, 40)
	for i := 0; i < 40; i++ {
		delIDs = append(delIDs, ins[i*2].ID)
	}
	if err := owner.DeleteBatch(delIDs); err != nil {
		t.Fatalf("DeleteBatch: %v", err)
	}
	if err := owner.DeleteBatch([]record.ID{987654321}); err == nil {
		t.Fatal("DeleteBatch accepted an unknown id")
	}
	if got, want := owner.Count(), len(ds.Records)+len(keys)-len(delIDs); got != want {
		t.Fatalf("owner count %d, want %d", got, want)
	}

	// Verified queries over the updated state: results must verify
	// against the TE's tokens, so SP and TE saw identical batches.
	deleted := make(map[record.ID]bool, len(delIDs))
	for _, id := range delIDs {
		deleted[id] = true
	}
	for _, q := range workload.Queries(10, workload.DefaultExtent, 777) {
		recs, err := client.Query(q)
		if err != nil {
			t.Fatalf("verified query after batches: %v", err)
		}
		want := 0
		for i := range ds.Records {
			if q.Contains(ds.Records[i].Key) {
				want++
			}
		}
		for i := range ins {
			if !deleted[ins[i].ID] && q.Contains(ins[i].Key) {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("query %v returned %d records, want %d", q, len(recs), want)
		}
	}
}
