package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"

	"sae/internal/core"
	"sae/internal/exec"
	"sae/internal/mbtree"
	"sae/internal/record"
	"sae/internal/tom"
	"sae/internal/wal"
)

// Handler maps one request frame to one response frame. rb is a pooled
// response payload buffer the handler may (but need not) encode into:
// returning a Frame whose Payload aliases rb.b is safe because the buffer
// is recycled only after the frame has been written to the socket.
type Handler func(req Frame, rb *RespBuf) Frame

// RespBuf is one pooled response payload buffer. Before pooling, every
// response frame allocated its payload — for record-heavy results that
// was the server write path's dominant allocation.
type RespBuf struct{ b []byte }

// respBufRetain caps the capacity a recycled buffer may keep. The
// occasional multi-megabyte response should not pin its buffer in the
// pool forever.
const respBufRetain = 4 << 20

var respBufPool = sync.Pool{New: func() any { return new(RespBuf) }}

func getRespBuf() *RespBuf {
	rb := respBufPool.Get().(*RespBuf)
	rb.b = rb.b[:0]
	return rb
}

func putRespBuf(rb *RespBuf) {
	if cap(rb.b) <= respBufRetain {
		respBufPool.Put(rb)
	}
}

// Len returns the bytes encoded into the buffer so far.
func (rb *RespBuf) Len() int { return len(rb.b) }

// Bytes returns the encoded payload. The slice aliases the pooled buffer:
// it is valid until the returned response frame has been written to the
// socket, exactly the lifetime a Handler's response needs.
func (rb *RespBuf) Bytes() []byte { return rb.b }

// Append appends raw bytes to the payload.
func (rb *RespBuf) Append(p []byte) { rb.b = append(rb.b, p...) }

// AppendUint32 appends a big-endian uint32 to the payload.
func (rb *RespBuf) AppendUint32(v uint32) {
	rb.b = binary.BigEndian.AppendUint32(rb.b, v)
}

// AppendUint64 appends a big-endian uint64 to the payload.
func (rb *RespBuf) AppendUint64(v uint64) {
	rb.b = binary.BigEndian.AppendUint64(rb.b, v)
}

// PatchUint32 backfills a big-endian uint32 at a previously appended
// offset (count slots reserved before streaming, à la beginRecords).
func (rb *RespBuf) PatchUint32(at int, v uint32) {
	binary.BigEndian.PutUint32(rb.b[at:at+4], v)
}

// beginRecords reserves a 4-byte record-count slot in rb and returns its
// offset; endRecords backfills it once the records have been streamed in.
// Between the two, appendRecord scatter-appends each borrowed record
// directly into the frame — EncodeRecords without the intermediate slice.
func (rb *RespBuf) beginRecords() int {
	at := len(rb.b)
	rb.b = append(rb.b, 0, 0, 0, 0)
	return at
}

func (rb *RespBuf) appendRecord(r *record.Record) error {
	rb.b = r.AppendBinary(rb.b)
	return nil
}

func (rb *RespBuf) endRecords(at, count int) {
	binary.BigEndian.PutUint32(rb.b[at:at+4], uint32(count))
}

// maxInFlight bounds the requests one connection may have executing at
// once; further frames queue in the kernel's socket buffer. The providers
// serve reads under RWMutexes, so the bound only caps goroutines, not
// correctness.
const maxInFlight = 32

// Server is the shared TCP accept/serve loop behind every party's
// endpoint. Use Serve to run a custom Handler on it (the router tier
// does); the SP/TE/TOM servers below wrap it with their protocol
// handlers.
type Server struct {
	ln     net.Listener
	handle Handler
	logf   func(string, ...any)

	// shardInfo is this server's place in a sharded deployment; unset
	// means "shard 0 of the single-shard plan" so stand-alone servers
	// answer shard-map requests uniformly.
	shardInfo atomic.Pointer[ShardInfo]

	// burstSrv is set by the built-in party servers (SP/TE/TOM) to enable
	// burst-mode serving; custom Serve handlers (the router tier, whose
	// requests block on upstream round trips) keep the concurrent
	// goroutine-per-frame path. lanes is non-nil iff burst mode is active.
	burstSrv  burstServer
	burstMode *bool // WithBurstServing override; nil = SAE_BURST env
	lanes     *laneSet

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup
}

// ServerOption configures a server before it starts accepting
// connections.
type ServerOption func(*Server)

// WithShardInfo declares the server's shard index and partition plan at
// construction, before the listener accepts its first connection — a
// client that dials the moment the port opens already sees the right
// attestation.
func WithShardInfo(si ShardInfo) ServerOption {
	return func(s *Server) { s.shardInfo.Store(&si) }
}

// WithBurstServing forces burst-mode serving on or off for this server,
// overriding the SAE_BURST environment gate — the parity tests run every
// topology in both modes regardless of the environment. It only applies
// to the built-in party servers; custom Serve handlers always use the
// concurrent per-frame path.
func WithBurstServing(on bool) ServerOption {
	return func(s *Server) { s.burstMode = &on }
}

// SetShardInfo declares this server's shard index and partition plan,
// served in response to MsgShardMapReq. Safe to call while serving, but
// deployments should prefer WithShardInfo so no early client can observe
// the default single-shard attestation.
func (s *Server) SetShardInfo(si ShardInfo) {
	s.shardInfo.Store(&si)
}

// shardMapFrame answers a shard-map request.
func (s *Server) shardMapFrame() Frame {
	si := s.shardInfo.Load()
	if si == nil {
		si = &ShardInfo{}
	}
	return Frame{Type: MsgShardMap, Payload: EncodeShardInfo(*si)}
}

func newServer(addr string, handle Handler, logf func(string, ...any), opts []ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listening on %s: %w", addr, err)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		ln:     ln,
		handle: handle,
		logf:   logf,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// start spins up the serve lanes (when burst mode applies) and the accept
// loop. Constructors call it only after the server is fully wired — the
// built-in party servers set burstSrv first, so no connection can be
// accepted into a half-configured server.
func (s *Server) start() *Server {
	if s.burstSrv != nil && s.burstActive() {
		s.lanes = newLaneSet(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// burstActive resolves the burst-serving gate: an explicit
// WithBurstServing option wins; otherwise burst mode is ON unless the
// environment opts out with SAE_BURST=0.
func (s *Server) burstActive() bool {
	if s.burstMode != nil {
		return *s.burstMode
	}
	return os.Getenv("SAE_BURST") != "0"
}

// Serve starts a TCP server running a custom Handler — the hook the
// router tier builds its client-facing endpoint on (and tests build fake
// upstreams with). The handler runs once per request frame, concurrently
// across the requests in flight on a connection; the RespBuf it receives
// is pooled and recycled after its response frame hits the socket.
func Serve(addr string, handle Handler, logf func(string, ...any), opts ...ServerOption) (*Server, error) {
	s, err := newServer(addr, handle, logf, opts)
	if err != nil {
		return nil, err
	}
	return s.start(), nil
}

// ErrFrame builds the error response for a request a Handler cannot
// serve, mirroring what the built-in party servers send.
func ErrFrame(err error) Frame { return errFrame(err) }

// Addr returns the server's bound address (useful with ":0" listeners).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes live connections and waits for the serving
// goroutines to drain. It is idempotent: deployment teardown paths often
// race an explicit shutdown against a deferred one.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		s.closeErr = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		if s.lanes != nil {
			s.lanes.close()
		}
	})
	return s.closeErr
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				s.logf("wire: accept: %v", err)
				return
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		if s.lanes != nil {
			go s.serveConnBurst(conn, s.lanes.pick())
		} else {
			go s.serveConn(conn)
		}
	}
}

// serveConn reads frames and dispatches each to its own goroutine, so one
// connection can have up to maxInFlight requests executing concurrently
// (the request-id tagging lets responses return out of order). A write
// mutex keeps response frames from interleaving.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var (
		writeMu  sync.Mutex
		handlers sync.WaitGroup
	)
	sem := make(chan struct{}, maxInFlight)
	defer func() {
		handlers.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("wire: reading request: %v", err)
			}
			return
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func(req Frame) {
			defer handlers.Done()
			defer func() { <-sem }()
			rb := getRespBuf()
			resp := s.handle(req, rb)
			if len(resp.Payload) > MaxPayload {
				// The peer's ReadFrame would reject the oversize frame and
				// tear down the whole pipelined connection; degrade to a
				// per-request error instead.
				resp = errFrame(fmt.Errorf("%w: response of %d bytes exceeds frame limit; narrow the query or split the batch",
					ErrProtocol, len(resp.Payload)))
			}
			resp.ID = req.ID
			writeMu.Lock()
			err := WriteFrame(conn, resp)
			writeMu.Unlock()
			// The frame is on the wire (or the connection is dead); either
			// way the pooled buffer's flight is over and it may be reused
			// by the next request.
			putRespBuf(rb)
			if err != nil {
				s.logf("wire: writing response: %v", err)
				// Unblock the read loop so the connection tears down.
				conn.Close()
			}
		}(req)
	}
}

func errFrame(err error) Frame {
	return Frame{Type: MsgErr, Payload: []byte(err.Error())}
}

// SPServer exposes an SAE service provider over TCP: queries, inserts and
// deletes.
type SPServer struct {
	*Server
	sp *core.ServiceProvider
}

// ServeSP starts an SP server on addr (use "127.0.0.1:0" for tests).
func ServeSP(addr string, sp *core.ServiceProvider, logf func(string, ...any), opts ...ServerOption) (*SPServer, error) {
	srv := &SPServer{sp: sp}
	s, err := newServer(addr, srv.handle, logf, opts)
	if err != nil {
		return nil, err
	}
	s.burstSrv = srv
	srv.Server = s
	s.start()
	return srv, nil
}

func (s *SPServer) handle(req Frame, rb *RespBuf) Frame {
	// Read-only requests run through the shared serve helpers — the same
	// code path a composite primary or replica server uses, so every
	// topology answers reads byte-for-byte identically.
	if resp, ok := serveSPRead(s.sp, req, rb); ok {
		return resp
	}
	switch req.Type {
	case MsgInsert:
		r, err := record.Unmarshal(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.sp.ApplyInsert(r); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgDelete:
		id, key, err := DecodeDelete(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.sp.ApplyDelete(id, key); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgBatchInsert:
		ops, err := decodeInsertOps(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		// The whole wire batch is one commit group: one lock acquisition,
		// one structure pass.
		if err := s.sp.ApplyBatchCtx(exec.NewContext(), ops); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgBatchDelete:
		ops, err := decodeDeleteOps(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.sp.ApplyBatchCtx(exec.NewContext(), ops); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgShardMapReq:
		return s.shardMapFrame()
	default:
		return errFrame(fmt.Errorf("%w: SP cannot handle message type %d", ErrProtocol, req.Type))
	}
}

// decodeInsertOps turns a MsgBatchInsert payload into one group's ops.
func decodeInsertOps(payload []byte) ([]wal.Op, error) {
	recs, rest, err := DecodeRecords(payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after insert batch", ErrProtocol, len(rest))
	}
	ops := make([]wal.Op, len(recs))
	for i := range recs {
		ops[i] = wal.InsertOp(recs[i])
	}
	return ops, nil
}

// decodeDeleteOps turns a MsgBatchDelete payload into one group's ops.
func decodeDeleteOps(payload []byte) ([]wal.Op, error) {
	ids, keys, err := DecodeDeletes(payload)
	if err != nil {
		return nil, err
	}
	ops := make([]wal.Op, len(ids))
	for i := range ids {
		ops[i] = wal.DeleteOp(ids[i], keys[i])
	}
	return ops, nil
}

// TEServer exposes a trusted entity over TCP: token requests and owner
// updates.
type TEServer struct {
	*Server
	te *core.TrustedEntity
}

// ServeTE starts a TE server on addr.
func ServeTE(addr string, te *core.TrustedEntity, logf func(string, ...any), opts ...ServerOption) (*TEServer, error) {
	srv := &TEServer{te: te}
	s, err := newServer(addr, srv.handle, logf, opts)
	if err != nil {
		return nil, err
	}
	s.burstSrv = srv
	srv.Server = s
	s.start()
	return srv, nil
}

func (s *TEServer) handle(req Frame, rb *RespBuf) Frame {
	// Read-only requests run through the shared serve helper (see
	// SPServer.handle).
	if resp, ok := serveTERead(s.te, req, rb); ok {
		return resp
	}
	switch req.Type {
	case MsgInsert:
		r, err := record.Unmarshal(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.te.ApplyInsert(r); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgDelete:
		id, key, err := DecodeDelete(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.te.ApplyDelete(id, key); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgBatchInsert:
		ops, err := decodeInsertOps(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		// One group: one lock, one digest dispatch for the whole batch.
		if err := s.te.ApplyBatchCtx(exec.NewContext(), ops); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgBatchDelete:
		ops, err := decodeDeleteOps(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.te.ApplyBatchCtx(exec.NewContext(), ops); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgShardMapReq:
		return s.shardMapFrame()
	default:
		return errFrame(fmt.Errorf("%w: TE cannot handle message type %d", ErrProtocol, req.Type))
	}
}

// TOMServer exposes a TOM provider over TCP: queries answered with records
// plus a serialized VO.
type TOMServer struct {
	*Server
	provider *tom.Provider
	owner    *tom.Owner
}

// ServeTOM starts a TOM provider server on addr.
func ServeTOM(addr string, provider *tom.Provider, owner *tom.Owner, logf func(string, ...any), opts ...ServerOption) (*TOMServer, error) {
	srv := &TOMServer{provider: provider, owner: owner}
	s, err := newServer(addr, srv.handle, logf, opts)
	if err != nil {
		return nil, err
	}
	s.burstSrv = srv
	srv.Server = s
	s.start()
	return srv, nil
}

func (s *TOMServer) handle(req Frame, rb *RespBuf) Frame {
	switch req.Type {
	case MsgTOMQuery:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		// Records stream from pinned pages into the pooled frame, then
		// the VO (built in a pooled shell) scatter-appends behind them.
		at := rb.beginRecords()
		vo, n, _, err := s.provider.ServeQueryCtx(exec.NewContext(), q, rb.appendRecord)
		if err != nil {
			return errFrame(err)
		}
		rb.endRecords(at, n)
		rb.b = vo.AppendTo(rb.b)
		mbtree.PutVO(vo)
		return Frame{Type: MsgTOMResult, Payload: rb.b}
	case MsgTOMAggQuery:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		// Under TOM the aggregate VO IS the answer: the client's replay
		// against the owner-signed root produces the verified scalar.
		vo, _, err := s.provider.ServeAggregateCtx(exec.NewContext(), q)
		if err != nil {
			return errFrame(err)
		}
		rb.b = vo.AppendTo(rb.b)
		mbtree.PutVO(vo)
		return Frame{Type: MsgTOMAggResult, Payload: rb.b}
	case MsgInsert:
		r, err := record.Unmarshal(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.provider.ApplyInsert(r, s.owner); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgDelete:
		id, key, err := DecodeDelete(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.provider.ApplyDelete(id, key, s.owner); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgBatchInsert:
		ops, err := decodeInsertOps(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		// One group: one lock pass and ONE owner re-sign for the batch.
		if err := s.provider.ApplyBatchCtx(exec.NewContext(), ops, s.owner); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgBatchDelete:
		ops, err := decodeDeleteOps(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.provider.ApplyBatchCtx(exec.NewContext(), ops, s.owner); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgShardMapReq:
		return s.shardMapFrame()
	default:
		return errFrame(fmt.Errorf("%w: TOM provider cannot handle message type %d", ErrProtocol, req.Type))
	}
}

// Logf is a convenience logger adapter for the servers.
func Logf(prefix string) func(string, ...any) {
	return func(format string, args ...any) {
		log.Printf(prefix+": "+format, args...)
	}
}
