package wire

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/exec"
	"sae/internal/record"
	"sae/internal/tom"
)

// handler maps one request frame to one response frame.
type handler func(Frame) Frame

// maxInFlight bounds the requests one connection may have executing at
// once; further frames queue in the kernel's socket buffer. The providers
// serve reads under RWMutexes, so the bound only caps goroutines, not
// correctness.
const maxInFlight = 32

// server is the shared TCP accept/serve loop.
type server struct {
	ln     net.Listener
	handle handler
	logf   func(string, ...any)

	// shardInfo is this server's place in a sharded deployment; unset
	// means "shard 0 of the single-shard plan" so stand-alone servers
	// answer shard-map requests uniformly.
	shardInfo atomic.Pointer[ShardInfo]

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

// ServerOption configures a server before it starts accepting
// connections.
type ServerOption func(*server)

// WithShardInfo declares the server's shard index and partition plan at
// construction, before the listener accepts its first connection — a
// client that dials the moment the port opens already sees the right
// attestation.
func WithShardInfo(si ShardInfo) ServerOption {
	return func(s *server) { s.shardInfo.Store(&si) }
}

// SetShardInfo declares this server's shard index and partition plan,
// served in response to MsgShardMapReq. Safe to call while serving, but
// deployments should prefer WithShardInfo so no early client can observe
// the default single-shard attestation.
func (s *server) SetShardInfo(si ShardInfo) {
	s.shardInfo.Store(&si)
}

// shardMapFrame answers a shard-map request.
func (s *server) shardMapFrame() Frame {
	si := s.shardInfo.Load()
	if si == nil {
		si = &ShardInfo{}
	}
	return Frame{Type: MsgShardMap, Payload: EncodeShardInfo(*si)}
}

func newServer(addr string, handle handler, logf func(string, ...any), opts []ServerOption) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listening on %s: %w", addr, err)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &server{
		ln:     ln,
		handle: handle,
		logf:   logf,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address (useful with ":0" listeners).
func (s *server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes live connections and waits for the serving
// goroutines to drain.
func (s *server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				s.logf("wire: accept: %v", err)
				return
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn reads frames and dispatches each to its own goroutine, so one
// connection can have up to maxInFlight requests executing concurrently
// (the request-id tagging lets responses return out of order). A write
// mutex keeps response frames from interleaving.
func (s *server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var (
		writeMu  sync.Mutex
		handlers sync.WaitGroup
	)
	sem := make(chan struct{}, maxInFlight)
	defer func() {
		handlers.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("wire: reading request: %v", err)
			}
			return
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func(req Frame) {
			defer handlers.Done()
			defer func() { <-sem }()
			resp := s.handle(req)
			if len(resp.Payload) > MaxPayload {
				// The peer's ReadFrame would reject the oversize frame and
				// tear down the whole pipelined connection; degrade to a
				// per-request error instead.
				resp = errFrame(fmt.Errorf("%w: response of %d bytes exceeds frame limit; narrow the query or split the batch",
					ErrProtocol, len(resp.Payload)))
			}
			resp.ID = req.ID
			writeMu.Lock()
			err := WriteFrame(conn, resp)
			writeMu.Unlock()
			if err != nil {
				s.logf("wire: writing response: %v", err)
				// Unblock the read loop so the connection tears down.
				conn.Close()
			}
		}(req)
	}
}

func errFrame(err error) Frame {
	return Frame{Type: MsgErr, Payload: []byte(err.Error())}
}

// SPServer exposes an SAE service provider over TCP: queries, inserts and
// deletes.
type SPServer struct {
	*server
	sp *core.ServiceProvider
}

// ServeSP starts an SP server on addr (use "127.0.0.1:0" for tests).
func ServeSP(addr string, sp *core.ServiceProvider, logf func(string, ...any), opts ...ServerOption) (*SPServer, error) {
	srv := &SPServer{sp: sp}
	s, err := newServer(addr, srv.handle, logf, opts)
	if err != nil {
		return nil, err
	}
	srv.server = s
	return srv, nil
}

func (s *SPServer) handle(req Frame) Frame {
	switch req.Type {
	case MsgQuery:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		// One execution context per network request: concurrent requests
		// on this (or any other) connection account their accesses
		// independently.
		recs, _, err := s.sp.QueryCtx(exec.NewContext(), q)
		if err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgResult, Payload: EncodeRecords(recs)}
	case MsgBatchQuery:
		qs, err := DecodeRanges(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		batches := make([][]record.Record, len(qs))
		for i, q := range qs {
			recs, _, err := s.sp.QueryCtx(exec.NewContext(), q)
			if err != nil {
				return errFrame(err)
			}
			batches[i] = recs
		}
		return Frame{Type: MsgBatchResult, Payload: EncodeRecordBatches(batches)}
	case MsgInsert:
		r, err := record.Unmarshal(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.sp.ApplyInsert(r); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgDelete:
		id, key, err := DecodeDelete(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.sp.ApplyDelete(id, key); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgShardMapReq:
		return s.shardMapFrame()
	default:
		return errFrame(fmt.Errorf("%w: SP cannot handle message type %d", ErrProtocol, req.Type))
	}
}

// TEServer exposes a trusted entity over TCP: token requests and owner
// updates.
type TEServer struct {
	*server
	te *core.TrustedEntity
}

// ServeTE starts a TE server on addr.
func ServeTE(addr string, te *core.TrustedEntity, logf func(string, ...any), opts ...ServerOption) (*TEServer, error) {
	srv := &TEServer{te: te}
	s, err := newServer(addr, srv.handle, logf, opts)
	if err != nil {
		return nil, err
	}
	srv.server = s
	return srv, nil
}

func (s *TEServer) handle(req Frame) Frame {
	switch req.Type {
	case MsgVTRequest:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		vt, _, err := s.te.GenerateVTCtx(exec.NewContext(), q)
		if err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgVT, Payload: vt[:]}
	case MsgBatchVT:
		qs, err := DecodeRanges(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		vts := make([]digest.Digest, len(qs))
		for i, q := range qs {
			vt, _, err := s.te.GenerateVTCtx(exec.NewContext(), q)
			if err != nil {
				return errFrame(err)
			}
			vts[i] = vt
		}
		return Frame{Type: MsgBatchVTResult, Payload: EncodeDigests(vts)}
	case MsgInsert:
		r, err := record.Unmarshal(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.te.ApplyInsert(r); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgDelete:
		id, key, err := DecodeDelete(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.te.ApplyDelete(id, key); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgShardMapReq:
		return s.shardMapFrame()
	default:
		return errFrame(fmt.Errorf("%w: TE cannot handle message type %d", ErrProtocol, req.Type))
	}
}

// TOMServer exposes a TOM provider over TCP: queries answered with records
// plus a serialized VO.
type TOMServer struct {
	*server
	provider *tom.Provider
	owner    *tom.Owner
}

// ServeTOM starts a TOM provider server on addr.
func ServeTOM(addr string, provider *tom.Provider, owner *tom.Owner, logf func(string, ...any), opts ...ServerOption) (*TOMServer, error) {
	srv := &TOMServer{provider: provider, owner: owner}
	s, err := newServer(addr, srv.handle, logf, opts)
	if err != nil {
		return nil, err
	}
	srv.server = s
	return srv, nil
}

func (s *TOMServer) handle(req Frame) Frame {
	switch req.Type {
	case MsgTOMQuery:
		q, err := DecodeRange(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		recs, vo, _, err := s.provider.QueryCtx(exec.NewContext(), q)
		if err != nil {
			return errFrame(err)
		}
		payload := EncodeRecords(recs)
		payload = append(payload, vo.Marshal()...)
		return Frame{Type: MsgTOMResult, Payload: payload}
	case MsgInsert:
		r, err := record.Unmarshal(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.provider.ApplyInsert(r, s.owner); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgDelete:
		id, key, err := DecodeDelete(req.Payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.provider.ApplyDelete(id, key, s.owner); err != nil {
			return errFrame(err)
		}
		return Frame{Type: MsgAck}
	case MsgShardMapReq:
		return s.shardMapFrame()
	default:
		return errFrame(fmt.Errorf("%w: TOM provider cannot handle message type %d", ErrProtocol, req.Type))
	}
}

// Logf is a convenience logger adapter for the servers.
func Logf(prefix string) func(string, ...any) {
	return func(format string, args ...any) {
		log.Printf(prefix+": "+format, args...)
	}
}
