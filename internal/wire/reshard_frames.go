package wire

import (
	"encoding/binary"
	"fmt"
	"time"

	"sae/internal/shard"
)

// Reshard control-plane codecs: the payloads of MsgFreeze and
// MsgReshardCutover. (MsgPlanUpdate reuses the EncodeShardInfo payload,
// MsgThaw and MsgRetire carry no payload.)

// CutoverShard lists one shard's upstream endpoints under the new
// topology: the SP/primary addresses serving its span and the TE
// addresses attesting it.
type CutoverShard struct {
	SPs []string
	TEs []string
}

// Cutover is the MsgReshardCutover payload: the successor plan (whose
// epoch must be strictly higher than the router's current one) plus the
// per-shard endpoint lists to rebuild the router's upstream sets from.
type Cutover struct {
	Plan   shard.Plan
	Shards []CutoverShard
}

func appendAddrList(out []byte, addrs []string) []byte {
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(addrs)))
	out = append(out, n[:]...)
	for _, a := range addrs {
		binary.BigEndian.PutUint16(n[:], uint16(len(a)))
		out = append(out, n[:]...)
		out = append(out, a...)
	}
	return out
}

func decodeAddrList(b []byte) ([]string, []byte, error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("%w: truncated cutover address count", ErrProtocol)
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return nil, nil, fmt.Errorf("%w: truncated cutover address length", ErrProtocol)
		}
		l := int(binary.BigEndian.Uint16(b[0:2]))
		b = b[2:]
		if len(b) < l {
			return nil, nil, fmt.Errorf("%w: truncated cutover address", ErrProtocol)
		}
		addrs = append(addrs, string(b[:l]))
		b = b[l:]
	}
	return addrs, b, nil
}

// EncodeCutover serializes a cutover order. The shard list length must
// match the plan's shard count; the caller is the reshard coordinator,
// which builds both from the same successor topology.
func EncodeCutover(c Cutover) ([]byte, error) {
	if len(c.Shards) != c.Plan.Shards() {
		return nil, fmt.Errorf("%w: cutover lists %d shards under a %d-shard plan",
			ErrProtocol, len(c.Shards), c.Plan.Shards())
	}
	out := c.Plan.Marshal()
	for _, s := range c.Shards {
		if len(s.SPs) == 0 || len(s.TEs) == 0 {
			return nil, fmt.Errorf("%w: cutover shard with no SP or TE endpoints", ErrProtocol)
		}
		out = appendAddrList(out, s.SPs)
		out = appendAddrList(out, s.TEs)
	}
	return out, nil
}

// DecodeCutover parses a MsgReshardCutover payload.
func DecodeCutover(b []byte) (Cutover, error) {
	plan, rest, err := shard.UnmarshalPlan(b)
	if err != nil {
		return Cutover{}, fmt.Errorf("%w: cutover plan: %v", ErrProtocol, err)
	}
	c := Cutover{Plan: plan, Shards: make([]CutoverShard, plan.Shards())}
	for i := range c.Shards {
		if c.Shards[i].SPs, rest, err = decodeAddrList(rest); err != nil {
			return Cutover{}, err
		}
		if c.Shards[i].TEs, rest, err = decodeAddrList(rest); err != nil {
			return Cutover{}, err
		}
		if len(c.Shards[i].SPs) == 0 || len(c.Shards[i].TEs) == 0 {
			return Cutover{}, fmt.Errorf("%w: cutover shard %d has no SP or TE endpoints", ErrProtocol, i)
		}
	}
	if len(rest) != 0 {
		return Cutover{}, fmt.Errorf("%w: %d trailing bytes after cutover", ErrProtocol, len(rest))
	}
	return c, nil
}

// EncodeFreeze serializes a MsgFreeze payload: the freeze TTL in
// milliseconds. A frozen primary thaws itself when the TTL expires, so a
// coordinator that dies mid-cutover cannot leave writes blocked forever.
func EncodeFreeze(ttl time.Duration) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(ttl.Milliseconds()))
	return b[:]
}

// DecodeFreeze parses a MsgFreeze payload.
func DecodeFreeze(b []byte) (time.Duration, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: freeze payload of %d bytes", ErrProtocol, len(b))
	}
	return time.Duration(binary.BigEndian.Uint64(b)) * time.Millisecond, nil
}

// The reshard coordinator's control verbs, available on every client
// connection type (they share the underlying conn).

// PlanUpdate tells a primary to adopt a new shard attestation; the
// server accepts only a strictly higher plan epoch.
func (c *conn) PlanUpdate(si ShardInfo) error {
	return c.expectAck(Frame{Type: MsgPlanUpdate, Payload: EncodeShardInfo(si)})
}

// Freeze blocks the primary's write commits for at most ttl; the ack
// means every in-flight commit group has drained into the WAL stream.
func (c *conn) Freeze(ttl time.Duration) error {
	return c.expectAck(Frame{Type: MsgFreeze, Payload: EncodeFreeze(ttl)})
}

// Thaw releases a freeze.
func (c *conn) Thaw() error {
	return c.expectAck(Frame{Type: MsgThaw})
}

// Retire permanently fences a migrated-away shard off from clients.
func (c *conn) Retire() error {
	return c.expectAck(Frame{Type: MsgRetire})
}

// ReshardCutover orders a router to swap to the successor topology.
func (c *conn) ReshardCutover(cut Cutover) error {
	p, err := EncodeCutover(cut)
	if err != nil {
		return err
	}
	return c.expectAck(Frame{Type: MsgReshardCutover, Payload: p})
}
