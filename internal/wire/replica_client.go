package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/replica"
	"sae/internal/wal"
)

// GenStamp asks the server for its generation stamp: the sequence of the
// last commit group folded into its state. Routers probe it to bound
// replica staleness; paranoid clients compare it across reads.
func (c *conn) GenStamp() (uint64, error) {
	return c.GenStampCtx(context.Background())
}

// GenStampCtx is GenStamp bounded by a context (the router's probe
// guard).
func (c *conn) GenStampCtx(ctx context.Context) (uint64, error) {
	resp, err := c.roundTripCtx(ctx, Frame{Type: MsgGenStampReq})
	if err != nil {
		return 0, err
	}
	if resp.Type != MsgGenStamp || len(resp.Payload) != 8 {
		return 0, fmt.Errorf("%w: malformed generation stamp response", ErrProtocol)
	}
	return binary.BigEndian.Uint64(resp.Payload), nil
}

// ReplicationClient talks a primary's replication endpoints: bootstrap
// snapshots and commit-group tailing.
type ReplicationClient struct{ *conn }

// DialReplication connects to a primary server's replication endpoints.
func DialReplication(addr string) (*ReplicationClient, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return &ReplicationClient{conn: c}, nil
}

// Snapshot fetches a sequence-stamped bootstrap snapshot plus the
// primary's shard attestation.
func (c *ReplicationClient) Snapshot() (ShardInfo, []record.Record, uint64, error) {
	resp, err := c.roundTrip(Frame{Type: MsgReplicaSnapReq})
	if err != nil {
		return ShardInfo{}, nil, 0, err
	}
	if resp.Type != MsgReplicaSnap {
		return ShardInfo{}, nil, 0, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	return DecodeReplicaSnap(resp.Payload)
}

// Pull fetches up to max commit groups after the tailer's sequence.
// snapshotNeeded reports the sequence has fallen out of the primary's
// retention window.
func (c *ReplicationClient) Pull(after uint64, max int) ([]wal.Group, bool, error) {
	resp, err := c.roundTrip(Frame{Type: MsgReplicaPull, Payload: EncodeReplicaPull(after, max)})
	if err != nil {
		return nil, false, err
	}
	if resp.Type != MsgReplicaGroups {
		return nil, false, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	return DecodeReplicaGroups(resp.Payload)
}

// BootstrapReplica dials a primary, pulls one snapshot and builds a
// replica from it, returning the primary's shard attestation so the
// caller can serve it onward. The connection is not retained — start a
// ReplicaFeed to keep the replica current.
func BootstrapReplica(primaryAddr string) (*replica.Replica, ShardInfo, error) {
	c, err := DialReplication(primaryAddr)
	if err != nil {
		return nil, ShardInfo{}, err
	}
	defer c.Close()
	si, recs, seq, err := c.Snapshot()
	if err != nil {
		return nil, ShardInfo{}, fmt.Errorf("wire: bootstrapping replica from %s: %w", primaryAddr, err)
	}
	rep, err := replica.NewFromSnapshot(recs, seq)
	if err != nil {
		return nil, ShardInfo{}, err
	}
	return rep, si, nil
}

// feedIdleSleep is how long the feed dozes after draining the primary's
// groups; feedRedialMax caps the reconnect backoff after a lost primary.
const (
	feedIdleSleep = 2 * time.Millisecond
	feedRedialMax = 500 * time.Millisecond
)

// ReplicaFeed keeps one replica current against its primary: a pull loop
// that applies whole commit groups, re-bootstraps from a snapshot when it
// falls out of the retention window (or hits a gap), and redials with
// backoff when the primary goes away — the replica keeps serving its last
// generation throughout.
type ReplicaFeed struct {
	rep  *replica.Replica
	addr string
	logf func(string, ...any)
	stop chan struct{}
	done chan struct{}
}

// StartReplicaFeed spins up the feed loop for rep against the primary at
// addr.
func StartReplicaFeed(rep *replica.Replica, primaryAddr string, logf func(string, ...any)) *ReplicaFeed {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f := &ReplicaFeed{
		rep:  rep,
		addr: primaryAddr,
		logf: logf,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go f.run()
	return f
}

// Close stops the feed loop and waits for it to exit. The replica stays
// valid and keeps serving its last generation.
func (f *ReplicaFeed) Close() {
	close(f.stop)
	<-f.done
}

func (f *ReplicaFeed) sleep(d time.Duration) bool {
	select {
	case <-f.stop:
		return false
	case <-time.After(d):
		return true
	}
}

func (f *ReplicaFeed) run() {
	defer close(f.done)
	backoff := 10 * time.Millisecond
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		c, err := DialReplication(f.addr)
		if err != nil {
			f.logf("replica feed: dialing %s: %v (retrying in %v)", f.addr, err, backoff)
			if !f.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > feedRedialMax {
				backoff = feedRedialMax
			}
			continue
		}
		backoff = 10 * time.Millisecond
		f.tail(c)
		c.Close()
	}
}

// tail runs the pull loop over one connection until it breaks or the
// feed stops.
func (f *ReplicaFeed) tail(c *ReplicationClient) {
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		gs, snapshotNeeded, err := c.Pull(f.rep.Seq(), 64)
		if err != nil {
			f.logf("replica feed: pulling from %s: %v", f.addr, err)
			return
		}
		if snapshotNeeded {
			_, recs, seq, err := c.Snapshot()
			if err != nil {
				f.logf("replica feed: re-snapshot from %s: %v", f.addr, err)
				return
			}
			if err := f.rep.Reset(recs, seq); err != nil {
				f.logf("replica feed: resetting from snapshot: %v", err)
				return
			}
			continue
		}
		if len(gs) == 0 {
			if !f.sleep(feedIdleSleep) {
				return
			}
			continue
		}
		if err := f.rep.ApplyGroups(gs); err != nil {
			// A gap (retention raced our pull) heals through the snapshot
			// path on the next iteration; anything else may have left the
			// replica torn mid-group, and only a snapshot reset makes it
			// whole again — either way, force the re-bootstrap.
			f.logf("replica feed: applying groups: %v (re-bootstrapping)", err)
			_, recs, seq, serr := c.Snapshot()
			if serr != nil {
				f.logf("replica feed: re-snapshot from %s: %v", f.addr, serr)
				return
			}
			if rerr := f.rep.Reset(recs, seq); rerr != nil {
				f.logf("replica feed: resetting from snapshot: %v", rerr)
				return
			}
		}
	}
}

// ErrStaleRead reports a verified answer whose generation stamp fell
// below the caller's required floor, or whose plan epoch regressed below
// one the client has already observed.
var ErrStaleRead = errors.New("wire: verified answer is staler than required")

// VerifiedClient issues stamped verified queries: one frame returns
// records, the TE token, the plan epoch and the generation stamp as an
// atomic quadruple, verified locally before being returned. It remembers
// the newest (epoch, gen) it has seen, ordered lexicographically —
// sequence numbers restart in a new topology's shards, so a fresh read
// after a reshard may legitimately carry a smaller gen under a larger
// epoch, but an answer whose epoch is BELOW the observed floor is a
// replay of the pre-reshard deployment and is rejected however large its
// gen.
type VerifiedClient struct {
	*conn
	vp        core.VerifyPool
	lastEpoch uint64 // guarded by conn.mu
	lastGen   uint64 // guarded by conn.mu
}

// DialVerified connects to any server speaking MsgVerifiedQuery — a
// primary, a replica, or a router fronting either.
func DialVerified(addr string) (*VerifiedClient, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return &VerifiedClient{conn: c, vp: core.NewVerifyPool(0)}, nil
}

// Gen returns the newest generation stamp observed on this client
// (within the newest observed epoch).
func (c *VerifiedClient) Gen() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastGen
}

// Epoch returns the newest plan epoch observed on this client.
func (c *VerifiedClient) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastEpoch
}

// observe advances the lexicographic (epoch, gen) floor and reports
// whether the answer passed it: an epoch regression is a stale-topology
// replay; within one epoch the gen floor is only recorded here and
// enforced by QueryAtLeast.
func (c *VerifiedClient) observe(epoch, gen uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case epoch > c.lastEpoch:
		c.lastEpoch, c.lastGen = epoch, gen
	case epoch == c.lastEpoch:
		if gen > c.lastGen {
			c.lastGen = gen
		}
	default:
		return false
	}
	return true
}

// Query runs one verified query: the records are checked against the
// returned token (the unchanged XOR check) before being returned with
// their generation stamp.
func (c *VerifiedClient) Query(q record.Range) ([]record.Record, uint64, error) {
	return c.QueryCtx(context.Background(), q)
}

// QueryCtx is Query bounded by a context.
func (c *VerifiedClient) QueryCtx(ctx context.Context, q record.Range) ([]record.Record, uint64, error) {
	raw, err := c.QueryRawVerifiedCtx(ctx, q)
	if err != nil {
		return nil, 0, err
	}
	epoch, gen, vt, recsRaw, err := DecodeVerifiedResult(raw)
	if err != nil {
		return nil, 0, err
	}
	// Hash the encoded records in place (VerifyEncoded wants the packed
	// records without their count prefix), then materialize.
	if len(recsRaw) < 4 {
		return nil, gen, fmt.Errorf("%w: truncated record section", ErrProtocol)
	}
	if _, err := c.vp.VerifyEncoded(q, recsRaw[4:], vt); err != nil {
		return nil, gen, err
	}
	recs, rest, err := DecodeRecords(recsRaw)
	if err != nil {
		return nil, gen, err
	}
	if len(rest) != 0 {
		return nil, gen, fmt.Errorf("%w: %d trailing bytes in verified result", ErrProtocol, len(rest))
	}
	if !c.observe(epoch, gen) {
		return nil, gen, fmt.Errorf("%w: answer from plan epoch %d after epoch %d was observed",
			ErrStaleRead, epoch, c.Epoch())
	}
	return recs, gen, nil
}

// QueryAtLeast is Query plus a freshness floor: an answer stamped below
// minGen fails with ErrStaleRead even though it verified — the defense
// against a router (or any relay) replaying an old replica's answer
// after the client has already seen a newer generation. The floor is
// epoch-scoped: generation sequences restart when a reshard publishes a
// new topology, so an answer under a STRICTLY NEWER epoch satisfies any
// gen floor (its state includes everything the old epoch committed),
// while an old-epoch answer is already rejected inside Query.
func (c *VerifiedClient) QueryAtLeast(q record.Range, minGen uint64) ([]record.Record, uint64, error) {
	epochBefore := c.Epoch()
	recs, gen, err := c.Query(q)
	if err != nil {
		return nil, gen, err
	}
	if c.Epoch() == epochBefore && gen < minGen {
		return nil, gen, fmt.Errorf("%w: stamped %d, required >= %d", ErrStaleRead, gen, minGen)
	}
	return recs, gen, nil
}

// QueryRawVerifiedCtx fetches one verified result still in wire form
// (epoch + gen + VT + encoded records) without verifying — the router's
// relay path; end clients should use QueryCtx.
func (c *VerifiedClient) QueryRawVerifiedCtx(ctx context.Context, q record.Range) ([]byte, error) {
	resp, err := c.roundTripCtx(ctx, Frame{Type: MsgVerifiedQuery, Payload: EncodeRange(q)})
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgVerifiedResult {
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	return resp.Payload, nil
}
