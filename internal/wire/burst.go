package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"sae/internal/agg"
	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/exec"
	"sae/internal/mbtree"
	"sae/internal/record"
	"sae/internal/tom"
)

// Burst-mode serving: instead of one goroutine per request frame, the
// server drains every frame the kernel has already buffered in one read
// wakeup into a burst, hands the burst to one of N serve LANES (one per
// GOMAXPROCS slot), and the lane pushes the whole burst through the
// provider as a unit — one lock acquisition, grouped index descents, one
// bufpool pin epoch, one digest dispatch — then writes every response in
// a single vectored write. Connections are assigned to a lane for life
// (round-robin at accept), each lane runs on one goroutine with its own
// response arena, request contexts and plan scratch, and a lane is the
// only writer to its connections, so the hot path takes zero cross-core
// locks: the only synchronization per burst is one channel handoff.
//
// Frames a lane cannot group (inserts, deletes, shard-map requests,
// legacy batch frames) are served individually on the lane, in arrival
// order, through the same Handler as the per-request path; if anything
// about a burst fails to group (a malformed range, an oversize result),
// the burst falls back to per-request serving so error semantics match
// the non-burst path exactly. SAE_BURST=0 (or WithBurstServing(false))
// disables all of this and restores the goroutine-per-frame server.

// maxBurst caps the frames one burst may carry; further buffered frames
// form the next burst. 64 is past the point where per-burst overheads
// are amortized away, and keeps a lane's arena and pin epoch bounded.
const maxBurst = 64

// burstReadBuf is the connection read-buffer size frames are drained
// from; frames larger than this still work (they read through the buffer
// as their own burst).
const burstReadBuf = 64 << 10

// laneArenaRetain caps the capacity a lane's response arena (and a
// connection's burst arena) may keep between bursts, so one huge burst
// does not pin its high-water mark forever.
const laneArenaRetain = 4 << 20

// burstCounters tracks serve-loop activity across every lane of every
// server in the process, for the -pprof/expvar observability endpoint.
// They sit off the per-frame hot path: one atomic add per burst (or per
// rejected group), never per frame.
var burstCounters struct {
	jobs          atomic.Int64
	groupedFrames atomic.Int64
	soloFrames    atomic.Int64
	fallbacks     atomic.Int64
}

// BurstCounters is a snapshot of process-wide burst-serving activity.
type BurstCounters struct {
	// Jobs is the number of drained bursts handed to serve lanes.
	Jobs int64
	// GroupedFrames counts frames served through a grouped provider pass
	// (range or aggregate), SoloFrames those served individually on a
	// lane (ungroupable types, singletons, fallbacks).
	GroupedFrames int64
	SoloFrames    int64
	// Fallbacks counts rejected groups (malformed frame, provider error)
	// that re-served per-request.
	Fallbacks int64
}

// ReadBurstCounters snapshots the process-wide burst serve counters.
func ReadBurstCounters() BurstCounters {
	return BurstCounters{
		Jobs:          burstCounters.jobs.Load(),
		GroupedFrames: burstCounters.groupedFrames.Load(),
		SoloFrames:    burstCounters.soloFrames.Load(),
		Fallbacks:     burstCounters.fallbacks.Load(),
	}
}

// burstServer is implemented by the built-in party servers: it names the
// one frame type the lane may group and serves a group of them as a
// burst. serveBurst returns false to reject the group (malformed frame,
// provider error), in which case the lane re-serves every frame of the
// group individually through the ordinary Handler.
type burstServer interface {
	burstType() MsgType
	serveBurst(l *lane, reqs []Frame) bool
}

// aggBurstServer is the optional second grouping a party server may
// support: aggregate frames (MsgAggQuery / MsgAggTokenReq / MsgTOMAggQuery)
// ride the same lane arenas and pooled contexts as the primary burst type,
// so a mixed burst of range queries and aggregate queries costs two
// grouped provider passes instead of one handler goroutine per frame. All
// built-in party servers implement it.
type aggBurstServer interface {
	aggBurstType() MsgType
	serveAggBurst(l *lane, reqs []Frame) bool
}

// frameRef is one request frame within a connBurst; the payload lives at
// arena[off:off+n], so draining a burst performs one arena append per
// frame instead of one allocation per frame.
type frameRef struct {
	typ MsgType
	id  uint32
	off int
	n   int
}

// connBurst is one drained burst of request frames. Each connection owns
// two (double buffering): the read goroutine fills one while the lane
// serves the other, and the free-buffer channel is the backpressure —
// a connection can have at most two bursts in the pipeline.
type connBurst struct {
	frames []frameRef
	arena  []byte
}

func (cb *connBurst) reset() {
	cb.frames = cb.frames[:0]
	if cap(cb.arena) > laneArenaRetain {
		cb.arena = nil
	}
	cb.arena = cb.arena[:0]
}

func (cb *connBurst) frame(i int) Frame {
	fr := cb.frames[i]
	return Frame{Type: fr.typ, ID: fr.id, Payload: cb.arena[fr.off : fr.off+fr.n]}
}

// burstJob hands one drained burst to a lane.
type burstJob struct {
	conn *burstConn
	cb   *connBurst
}

// burstConn couples a connection with its free-burst-buffer channel.
type burstConn struct {
	nc   net.Conn
	bufs chan *connBurst
}

// laneSet is the server's fixed pool of serve lanes.
type laneSet struct {
	lanes []*lane
	next  uint32
	mu    sync.Mutex
	wg    sync.WaitGroup
}

func newLaneSet(s *Server) *laneSet {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	ls := &laneSet{lanes: make([]*lane, n)}
	for i := range ls.lanes {
		l := &lane{
			id:   i,
			jobs: make(chan burstJob, 8),
			exec: exec.NewLane(i),
		}
		ls.lanes[i] = l
		ls.wg.Add(1)
		go l.run(s, ls)
	}
	return ls
}

// pick assigns a new connection to a lane round-robin. Assignment is by
// connection, so every frame of a connection is served (and written) by
// one lane.
func (ls *laneSet) pick() *lane {
	ls.mu.Lock()
	l := ls.lanes[ls.next%uint32(len(ls.lanes))]
	ls.next++
	ls.mu.Unlock()
	return l
}

// close drains the lanes. Callers must guarantee no producer is left
// (Server.Close waits for every connection goroutine first).
func (ls *laneSet) close() {
	for _, l := range ls.lanes {
		close(l.jobs)
	}
	ls.wg.Wait()
}

// respPiece is one span of a response payload inside the lane's arena.
type respPiece struct{ off, end int }

// laneResp is one assembled response awaiting the flush. Payload bytes
// are either arena spans (the burst path — pieces) or a direct slice
// with its pooled buffer (the individual path).
type laneResp struct {
	typ     MsgType
	id      uint32
	pieces  [2]respPiece
	npieces int
	direct  []byte
	rb      *RespBuf
}

func (r *laneResp) payloadLen(arena []byte) int {
	if r.npieces == 0 {
		return len(r.direct)
	}
	n := 0
	for _, p := range r.pieces[:r.npieces] {
		n += p.end - p.off
	}
	return n
}

// lane is one serve lane: a single goroutine owning all the scratch one
// burst needs, so steady-state bursts touch no shared allocator or pool.
type lane struct {
	id   int
	jobs chan burstJob
	exec *exec.Lane

	// response assembly
	resp  []byte // payload arena
	hdrs  []byte // one 9-byte header per response
	iov   net.Buffers
	resps []laneResp

	// burst grouping scratch
	idxs     []int
	reqs     []Frame
	qs       []record.Range
	vts      []digest.Digest
	aggs     []agg.Agg
	toks     []agg.Token
	vos      []*mbtree.VO
	secStart []int
	counts   []int

	// provider-side scratch
	spSc  core.BurstScratch
	tomSc tom.BurstScratch
}

func (l *lane) run(s *Server, ls *laneSet) {
	defer ls.wg.Done()
	for job := range l.jobs {
		l.serveJob(s, job)
	}
}

func (l *lane) reset() {
	if cap(l.resp) > laneArenaRetain {
		l.resp = nil
	}
	l.resp = l.resp[:0]
	l.hdrs = l.hdrs[:0]
	l.iov = l.iov[:0]
	l.resps = l.resps[:0]
	l.idxs = l.idxs[:0]
	l.reqs = l.reqs[:0]
	l.qs = l.qs[:0]
}

// appendBurstResp registers a burst response whose payload is the given
// arena spans; an oversize payload degrades to a per-request error frame
// exactly like the non-burst path.
func (l *lane) appendBurstResp(typ MsgType, id uint32, pieces ...respPiece) {
	r := laneResp{typ: typ, id: id}
	n := 0
	for _, p := range pieces {
		r.pieces[r.npieces] = p
		r.npieces++
		n += p.end - p.off
	}
	if n > MaxPayload {
		e := errFrame(fmt.Errorf("%w: response of %d bytes exceeds frame limit; narrow the query or split the batch",
			ErrProtocol, n))
		r = laneResp{typ: e.Type, id: id, direct: e.Payload}
	}
	l.resps = append(l.resps, r)
}

// serveOne routes a frame through the ordinary Handler on the lane — the
// path for non-burstable types and for burst groups that fell back.
func (l *lane) serveOne(s *Server, f Frame) {
	rb := getRespBuf()
	resp := s.handle(f, rb)
	if len(resp.Payload) > MaxPayload {
		resp = errFrame(fmt.Errorf("%w: response of %d bytes exceeds frame limit; narrow the query or split the batch",
			ErrProtocol, len(resp.Payload)))
	}
	l.resps = append(l.resps, laneResp{typ: resp.Type, id: f.ID, direct: resp.Payload, rb: rb})
}

func (l *lane) serveJob(s *Server, job burstJob) {
	cb := job.cb
	l.reset()
	bt := s.burstSrv.burstType()
	grouped := l.serveGroup(cb, bt, s.burstSrv.serveBurst)
	// Aggregate frames form their own group on the same lane: a second
	// grouped provider pass after the primary one, sharing the arena.
	aggGrouped := false
	var at MsgType
	if abs, ok := s.burstSrv.(aggBurstServer); ok {
		at = abs.aggBurstType()
		aggGrouped = l.serveGroup(cb, at, abs.serveAggBurst)
	}
	solo := 0
	for i := range cb.frames {
		t := cb.frames[i].typ
		if (grouped && t == bt) || (aggGrouped && t == at) {
			continue
		}
		l.serveOne(s, cb.frame(i))
		solo++
	}
	burstCounters.jobs.Add(1)
	burstCounters.groupedFrames.Add(int64(len(cb.frames) - solo))
	burstCounters.soloFrames.Add(int64(solo))
	err := l.flush(job.conn.nc)
	// The burst buffer's frames and arena are dead the moment the flush
	// returns; hand the buffer back so the read goroutine can refill it.
	job.conn.bufs <- cb
	if err != nil {
		s.logf("wire: writing burst responses: %v", err)
		job.conn.nc.Close()
	}
}

// serveGroup collects the burst's frames of one type and serves them as a
// group. A rejected group (malformed frame, provider error) may have
// partially filled the arena and the response list; it rolls both back to
// their pre-group marks and reports false, so those frames re-serve
// individually with error semantics matching the non-burst path.
func (l *lane) serveGroup(cb *connBurst, typ MsgType, serve func(*lane, []Frame) bool) bool {
	l.idxs = l.idxs[:0]
	for i := range cb.frames {
		if cb.frames[i].typ == typ {
			l.idxs = append(l.idxs, i)
		}
	}
	if len(l.idxs) < 2 {
		return false
	}
	l.reqs = l.reqs[:0]
	l.qs = l.qs[:0]
	for _, i := range l.idxs {
		l.reqs = append(l.reqs, cb.frame(i))
	}
	respMark, respsMark := len(l.resp), len(l.resps)
	if !serve(l, l.reqs) {
		l.resp = l.resp[:respMark]
		l.resps = l.resps[:respsMark]
		burstCounters.fallbacks.Add(1)
		return false
	}
	return true
}

// flush writes every assembled response in one vectored write: headers
// and payload spans gathered into a net.Buffers, so a burst of B
// responses costs one writev instead of 2B write syscalls.
func (l *lane) flush(nc net.Conn) error {
	if len(l.resps) == 0 {
		return nil
	}
	need := len(l.resps) * HeaderSize
	if cap(l.hdrs) < need {
		l.hdrs = make([]byte, 0, need)
	}
	l.hdrs = l.hdrs[:need]
	for i := range l.resps {
		r := &l.resps[i]
		hdr := l.hdrs[i*HeaderSize : (i+1)*HeaderSize]
		hdr[0] = byte(r.typ)
		binary.BigEndian.PutUint32(hdr[1:5], r.id)
		binary.BigEndian.PutUint32(hdr[5:9], uint32(r.payloadLen(l.resp)))
		l.iov = append(l.iov, hdr)
		if r.npieces == 0 {
			if len(r.direct) > 0 {
				l.iov = append(l.iov, r.direct)
			}
			continue
		}
		for _, p := range r.pieces[:r.npieces] {
			if p.end > p.off {
				l.iov = append(l.iov, l.resp[p.off:p.end])
			}
		}
	}
	bufs := l.iov
	_, err := bufs.WriteTo(nc)
	for i := range l.resps {
		if rb := l.resps[i].rb; rb != nil {
			putRespBuf(rb)
		}
	}
	return err
}

// beginSections starts the per-query record-section assembly for a burst
// of n queries: each section is a 4-byte count slot followed by that
// query's packed records, laid out back to back in the arena. Sections
// open lazily as emits arrive (sequentially, query by query) so empty
// results still get their count slot.
func (l *lane) beginSections(n int) {
	l.secStart = l.secStart[:0]
	if cap(l.counts) < n {
		l.counts = make([]int, n)
	}
	l.counts = l.counts[:n]
	for i := range l.counts {
		l.counts[i] = 0
	}
}

// openTo ensures sections 0..qi exist.
func (l *lane) openTo(qi int) {
	for len(l.secStart) <= qi {
		l.secStart = append(l.secStart, len(l.resp))
		l.resp = append(l.resp, 0, 0, 0, 0)
	}
}

// endSections closes the assembly: every remaining section is opened
// (empty results), counts are patched, and the per-query spans returned
// via section(qi).
func (l *lane) endSections(n int) {
	l.openTo(n - 1)
	for qi := 0; qi < n; qi++ {
		binary.BigEndian.PutUint32(l.resp[l.secStart[qi]:l.secStart[qi]+4], uint32(l.counts[qi]))
	}
}

// section returns query qi's [count|records] span. Valid only after
// endSections and before the next reset; sections are contiguous, so a
// section ends where the next begins (the last ends at the high-water
// mark recorded by its caller).
func (l *lane) section(qi, nsections, hi int) respPiece {
	end := hi
	if qi+1 < nsections {
		end = l.secStart[qi+1]
	}
	return respPiece{off: l.secStart[qi], end: end}
}

// --- SPServer burst ---

func (s *SPServer) burstType() MsgType { return MsgQuery }

// serveBurst pushes a group of MsgQuery frames through the SP as one
// unit: ranges decoded into lane scratch, one pooled context per query,
// and core.ServiceProvider.ServeBurstCtx doing one read-lock, grouped
// B+-tree descents and a single heap pin epoch. Each query's records
// stream straight into the lane's response arena.
func (s *SPServer) serveBurst(l *lane, reqs []Frame) bool {
	for _, r := range reqs {
		q, err := DecodeRange(r.Payload)
		if err != nil {
			return false
		}
		l.qs = append(l.qs, q)
	}
	ctxs := l.exec.Contexts(len(reqs))
	l.beginSections(len(reqs))
	err := s.sp.ServeBurstCtx(ctxs, l.qs, &l.spSc, func(qi int, r *record.Record) error {
		l.openTo(qi)
		l.resp = r.AppendBinary(l.resp)
		l.counts[qi]++
		return nil
	})
	if err != nil {
		return false
	}
	l.endSections(len(reqs))
	hi := len(l.resp) // after endSections: trailing empty sections live before hi
	for qi := range reqs {
		l.appendBurstResp(MsgResult, reqs[qi].ID, l.section(qi, len(reqs), hi))
	}
	return true
}

func (s *SPServer) aggBurstType() MsgType { return MsgAggQuery }

// serveAggBurst answers a group of MsgAggQuery frames with ONE read-lock
// pass over the annotated B+-tree (core.ServiceProvider.AggregateBurst);
// each 24-byte scalar lands in the lane's response arena.
func (s *SPServer) serveAggBurst(l *lane, reqs []Frame) bool {
	for _, r := range reqs {
		q, err := DecodeRange(r.Payload)
		if err != nil {
			return false
		}
		l.qs = append(l.qs, q)
	}
	if cap(l.aggs) < len(reqs) {
		l.aggs = make([]agg.Agg, len(reqs))
	}
	l.aggs = l.aggs[:len(reqs)]
	ctxs := l.exec.Contexts(len(reqs))
	if err := s.sp.AggregateBurst(ctxs, l.qs, l.aggs); err != nil {
		return false
	}
	for qi := range reqs {
		off := len(l.resp)
		l.resp = l.aggs[qi].AppendTo(l.resp)
		l.appendBurstResp(MsgAggResult, reqs[qi].ID, respPiece{off: off, end: len(l.resp)})
	}
	return true
}

// --- TEServer burst ---

func (s *TEServer) burstType() MsgType { return MsgVTRequest }

// serveBurst answers a group of MsgVTRequest frames with one read-lock
// acquisition over the XB-Tree (core.TrustedEntity.GenerateVTBurst),
// every descent charged to its own pooled context.
func (s *TEServer) serveBurst(l *lane, reqs []Frame) bool {
	for _, r := range reqs {
		q, err := DecodeRange(r.Payload)
		if err != nil {
			return false
		}
		l.qs = append(l.qs, q)
	}
	if cap(l.vts) < len(reqs) {
		l.vts = make([]digest.Digest, len(reqs))
	}
	l.vts = l.vts[:len(reqs)]
	ctxs := l.exec.Contexts(len(reqs))
	if err := s.te.GenerateVTBurst(ctxs, l.qs, l.vts); err != nil {
		return false
	}
	for qi := range reqs {
		off := len(l.resp)
		l.resp = append(l.resp, l.vts[qi][:]...)
		l.appendBurstResp(MsgVT, reqs[qi].ID, respPiece{off: off, end: len(l.resp)})
	}
	return true
}

func (s *TEServer) aggBurstType() MsgType { return MsgAggTokenReq }

// serveAggBurst answers a group of MsgAggTokenReq frames with one
// read-lock pass over the annotated XB-Tree; each 44-byte range-bound
// token lands in the lane's response arena.
func (s *TEServer) serveAggBurst(l *lane, reqs []Frame) bool {
	for _, r := range reqs {
		q, err := DecodeRange(r.Payload)
		if err != nil {
			return false
		}
		l.qs = append(l.qs, q)
	}
	if cap(l.toks) < len(reqs) {
		l.toks = make([]agg.Token, len(reqs))
	}
	l.toks = l.toks[:len(reqs)]
	ctxs := l.exec.Contexts(len(reqs))
	if err := s.te.AggTokenBurst(ctxs, l.qs, l.toks); err != nil {
		return false
	}
	for qi := range reqs {
		off := len(l.resp)
		l.resp = l.toks[qi].AppendTo(l.resp)
		l.appendBurstResp(MsgAggToken, reqs[qi].ID, respPiece{off: off, end: len(l.resp)})
	}
	return true
}

// --- TOMServer burst ---

func (s *TOMServer) burstType() MsgType { return MsgTOMQuery }

// serveBurst pushes a group of MsgTOMQuery frames through the TOM
// provider as one unit: all VOs built and all heap runs served under one
// read-lock and one pin epoch (tom.Provider.ServeBurstCtx). Each
// response is its record section followed by its VO, appended to the
// arena after the serve so record spans never move.
func (s *TOMServer) serveBurst(l *lane, reqs []Frame) bool {
	for _, r := range reqs {
		q, err := DecodeRange(r.Payload)
		if err != nil {
			return false
		}
		l.qs = append(l.qs, q)
	}
	ctxs := l.exec.Contexts(len(reqs))
	l.beginSections(len(reqs))
	vos, err := s.provider.ServeBurstCtx(ctxs, l.qs, &l.tomSc, func(qi int, r *record.Record) error {
		l.openTo(qi)
		l.resp = r.AppendBinary(l.resp)
		l.counts[qi]++
		return nil
	})
	if err != nil {
		return false
	}
	l.endSections(len(reqs))
	hi := len(l.resp) // after endSections: trailing empty sections live before hi
	for qi := range reqs {
		voOff := len(l.resp)
		l.resp = vos[qi].AppendTo(l.resp)
		mbtree.PutVO(vos[qi])
		l.appendBurstResp(MsgTOMResult, reqs[qi].ID,
			l.section(qi, len(reqs), hi), respPiece{off: voOff, end: len(l.resp)})
	}
	return true
}

func (s *TOMServer) aggBurstType() MsgType { return MsgTOMAggQuery }

// serveAggBurst answers a group of MsgTOMAggQuery frames with one
// read-lock pass over the MB-Tree (tom.Provider.ServeAggBurstCtx): every
// aggregate VO built into a pooled shell, serialized into the arena and
// handed straight back to the pool.
func (s *TOMServer) serveAggBurst(l *lane, reqs []Frame) bool {
	for _, r := range reqs {
		q, err := DecodeRange(r.Payload)
		if err != nil {
			return false
		}
		l.qs = append(l.qs, q)
	}
	ctxs := l.exec.Contexts(len(reqs))
	vos, err := s.provider.ServeAggBurstCtx(ctxs, l.qs, l.vos[:0])
	l.vos = vos[:0]
	if err != nil {
		return false
	}
	for qi := range reqs {
		off := len(l.resp)
		l.resp = vos[qi].AppendTo(l.resp)
		mbtree.PutVO(vos[qi])
		l.appendBurstResp(MsgTOMAggResult, reqs[qi].ID, respPiece{off: off, end: len(l.resp)})
	}
	return true
}

// --- burst-mode connection read loop ---

// serveConnBurst drains bursts off the connection and hands them to the
// connection's lane. The first frame of a burst is read blocking; then
// every frame the read buffer ALREADY holds completely is drained after
// it without further syscalls, up to maxBurst. The kernel's socket
// buffer coalesces pipelined client writes, so a busy connection
// naturally produces multi-frame bursts and an idle one degrades to
// per-frame reads with one extra Buffered() check.
func (s *Server) serveConnBurst(conn net.Conn, l *lane) {
	defer s.wg.Done()
	bc := &burstConn{nc: conn, bufs: make(chan *connBurst, 2)}
	bc.bufs <- &connBurst{}
	bc.bufs <- &connBurst{}
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, burstReadBuf)
	for {
		cb := <-bc.bufs
		cb.reset()
		if err := readFrameInto(br, cb); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("wire: reading request: %v", err)
			}
			return
		}
		for len(cb.frames) < maxBurst && br.Buffered() >= HeaderSize {
			hdr, _ := br.Peek(HeaderSize)
			n := int(binary.BigEndian.Uint32(hdr[5:9]))
			if n > MaxPayload {
				s.logf("wire: reading request: %v", fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, n))
				return
			}
			if br.Buffered() < HeaderSize+n {
				break // partially buffered: it opens the next burst, blocking
			}
			if err := readFrameInto(br, cb); err != nil {
				s.logf("wire: reading request: %v", err)
				return
			}
		}
		l.jobs <- burstJob{conn: bc, cb: cb}
	}
}

// readFrameInto reads one frame into the burst's arena — the burst-mode
// replacement for ReadFrame's per-frame payload allocation.
func readFrameInto(br *bufio.Reader, cb *connBurst) error {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err // io.EOF passes through for clean shutdown
	}
	n := int(binary.BigEndian.Uint32(hdr[5:9]))
	if n > MaxPayload {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, n)
	}
	off := len(cb.arena)
	for cap(cb.arena) < off+n {
		cb.arena = append(cb.arena[:cap(cb.arena)], 0)
	}
	cb.arena = cb.arena[:off+n]
	if _, err := io.ReadFull(br, cb.arena[off:off+n]); err != nil {
		return fmt.Errorf("%w: truncated payload: %v", ErrProtocol, err)
	}
	cb.frames = append(cb.frames, frameRef{
		typ: MsgType(hdr[0]),
		id:  binary.BigEndian.Uint32(hdr[1:5]),
		off: off,
		n:   n,
	})
	return nil
}
