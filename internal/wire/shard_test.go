package wire

import (
	"sync"
	"testing"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/shard"
	"sae/internal/workload"
)

// shardedDeployment starts one SP and one TE server per shard of an
// in-process sharded system and returns their address lists.
func shardedDeployment(t *testing.T, n, shards int) (*core.ShardedSystem, []string, []string) {
	t.Helper()
	ds, err := workload.Generate(workload.UNF, n, 21)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewShardedSystem(ds.Records, shards)
	if err != nil {
		t.Fatal(err)
	}
	spAddrs := make([]string, shards)
	teAddrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		spSrv, err := ServeSP("127.0.0.1:0", sys.SPs[i], nil, WithShardInfo(ShardInfo{Index: i, Plan: sys.Plan}))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { spSrv.Close() })
		teSrv, err := ServeTE("127.0.0.1:0", sys.TEs[i], nil, WithShardInfo(ShardInfo{Index: i, Plan: sys.Plan}))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { teSrv.Close() })
		spAddrs[i], teAddrs[i] = spSrv.Addr(), teSrv.Addr()
	}
	return sys, spAddrs, teAddrs
}

// TestShardMapRoundTrip: servers answer shard-map requests, stand-alone
// servers default to shard 0 of 1.
func TestShardMapRoundTrip(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 1_000, 22)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeSP("127.0.0.1:0", sys.SP, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialSP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	si, err := c.ShardMap()
	if err != nil {
		t.Fatalf("ShardMap: %v", err)
	}
	if si.Index != 0 || si.Plan.Shards() != 1 {
		t.Fatalf("stand-alone server reported shard %d of %d", si.Index, si.Plan.Shards())
	}
	plan, _ := shard.NewPlan([]record.Key{5_000_000})
	srv.SetShardInfo(ShardInfo{Index: 1, Plan: plan})
	si, err = c.ShardMap()
	if err != nil {
		t.Fatal(err)
	}
	if si.Index != 1 || si.Plan.Shards() != 2 {
		t.Fatalf("got shard %d of %d after SetShardInfo", si.Index, si.Plan.Shards())
	}
}

// TestShardedVerifyingClient: scatter-gather over real TCP with XOR token
// combination, against the in-process sharded system as the oracle.
func TestShardedVerifyingClient(t *testing.T) {
	sys, spAddrs, teAddrs := shardedDeployment(t, 10_000, 3)
	client, err := DialShardedVerifying(spAddrs, teAddrs)
	if err != nil {
		t.Fatalf("DialShardedVerifying: %v", err)
	}
	defer client.Close()
	if !client.Plan.Equal(sys.Plan) {
		t.Fatal("client plan differs from deployment plan")
	}
	qs := append(workload.Queries(5, workload.DefaultExtent, 23),
		record.Range{Lo: 0, Hi: record.KeyDomain}, // all shards
		sys.Plan.Span(1), // boundary-exact
	)
	for _, q := range qs {
		want, err := sys.Query(q)
		if err != nil || want.VerifyErr != nil {
			t.Fatalf("oracle %v: %v / %v", q, err, want.VerifyErr)
		}
		got, err := client.Query(q)
		if err != nil {
			t.Fatalf("wire query %v: %v", q, err)
		}
		if len(got) != len(want.Result) {
			t.Fatalf("%v: %d records over wire, %d in-process", q, len(got), len(want.Result))
		}
		for i := range got {
			if got[i].ID != want.Result[i].ID {
				t.Fatalf("%v: diverges at %d", q, i)
			}
		}
	}
	// Tamper one shard: the combined token must reject.
	sys.SPs[1].SetTamper(core.DropTamper(0))
	q := record.Range{Lo: sys.Plan.Span(1).Lo, Hi: sys.Plan.Span(1).Lo + 200_000}
	if _, err := client.Query(q); err == nil {
		t.Fatal("tampered shard passed wire verification")
	}
	sys.SPs[1].SetTamper(nil)
}

// TestShardedQueryBatch: many queries, one batch frame per shard, all
// verified.
func TestShardedQueryBatch(t *testing.T) {
	sys, spAddrs, teAddrs := shardedDeployment(t, 10_000, 3)
	client, err := DialShardedVerifying(spAddrs, teAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	qs := append(workload.Queries(16, workload.DefaultExtent, 24),
		record.Range{Lo: 0, Hi: record.KeyDomain},
		record.Range{Lo: 9, Hi: 3}, // empty mixed into the batch
	)
	results, err := client.QueryBatch(qs)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	if len(results) != len(qs) {
		t.Fatalf("%d results for %d queries", len(results), len(qs))
	}
	for qi, q := range qs {
		want, err := sys.Query(q)
		if err != nil || want.VerifyErr != nil {
			t.Fatalf("oracle %v: %v / %v", q, err, want.VerifyErr)
		}
		if len(results[qi]) != len(want.Result) {
			t.Fatalf("query %d %v: %d records, want %d", qi, q, len(results[qi]), len(want.Result))
		}
		for i := range results[qi] {
			if results[qi][i].ID != want.Result[i].ID {
				t.Fatalf("query %d %v diverges at %d", qi, q, i)
			}
		}
	}
}

// TestShardedQueryBatchConcurrent: batches pipeline from many goroutines
// over the shared shard connections (race detector food).
func TestShardedQueryBatchConcurrent(t *testing.T) {
	_, spAddrs, teAddrs := shardedDeployment(t, 6_000, 3)
	client, err := DialShardedVerifying(spAddrs, teAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qs := workload.Queries(6, workload.DefaultExtent, int64(100+w))
			if _, err := client.QueryBatch(qs); err != nil {
				errs[w] = err
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("concurrent batch: %v", err)
		}
	}
}

// TestDialShardedRejectsMisassembly: wrong shard order and inconsistent
// plans are caught at dial time.
func TestDialShardedRejectsMisassembly(t *testing.T) {
	_, spAddrs, teAddrs := shardedDeployment(t, 4_000, 3)
	// Swap two shards' addresses: TE index attestation must catch it.
	swappedSP := []string{spAddrs[1], spAddrs[0], spAddrs[2]}
	swappedTE := []string{teAddrs[1], teAddrs[0], teAddrs[2]}
	if c, err := DialShardedVerifying(swappedSP, swappedTE); err == nil {
		c.Close()
		t.Fatal("swapped shard order accepted")
	}
	// Too few shards dialed: plan count mismatch.
	if c, err := DialShardedVerifying(spAddrs[:2], teAddrs[:2]); err == nil {
		c.Close()
		t.Fatal("partial deployment accepted")
	}
}
