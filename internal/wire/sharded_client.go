package wire

import (
	"fmt"
	"sync"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/record"
	"sae/internal/shard"
)

// ShardedVerifyingClient performs the SAE protocol against a horizontally
// sharded deployment: it holds pipelined connections to every shard's SP
// and TE, scatters each range query to the overlapping shards, gathers the
// sub-results in key order, XOR-combines the per-shard tokens and verifies
// the merged result against the combined token. (For deployments that want
// the scatter on the server side instead, see internal/router: a plain
// VerifyingClient pointed at a router obtains bit-identical results.)
//
// The partition plan is fetched from the trusted entities themselves at
// dial time, not from any router: every TE must report the same plan and
// its own position in it. Since the TEs are the protocol's trusted
// parties, a malicious router or SP cannot shrink a shard's span to
// suppress records at a partition seam — the client computes every
// sub-range itself from the TE-attested plan, and the XOR fold makes the
// combined token exactly the token a single TE over the whole dataset
// would have issued.
type ShardedVerifyingClient struct {
	Plan   shard.Plan
	Shards []*VerifyingClient
}

// DialShardedVerifying connects to every shard's SP/TE pair (spAddrs[i]
// and teAddrs[i] form shard i) and cross-checks the deployment's shard
// maps with VerifyShardAttestations.
func DialShardedVerifying(spAddrs, teAddrs []string) (*ShardedVerifyingClient, error) {
	if len(spAddrs) == 0 || len(spAddrs) != len(teAddrs) {
		return nil, fmt.Errorf("wire: %d SP addresses for %d TE addresses", len(spAddrs), len(teAddrs))
	}
	c := &ShardedVerifyingClient{Shards: make([]*VerifyingClient, len(spAddrs))}
	for i := range spAddrs {
		vc, err := DialVerifying(spAddrs[i], teAddrs[i])
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("wire: dialing shard %d: %w", i, err)
		}
		c.Shards[i] = vc
	}
	sps := make([]*SPClient, len(c.Shards))
	tes := make([]*TEClient, len(c.Shards))
	for i, vc := range c.Shards {
		sps[i], tes[i] = vc.SP, vc.TE
	}
	plan, err := VerifyShardAttestations(sps, tes)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Plan = plan
	return c, nil
}

// VerifyShardAttestations cross-checks a dialed deployment's shard maps:
// each TE must attest the same plan, claim the index it is dialed as, and
// the plan's shard count must match the address lists. The SPs' maps are
// checked too — an SP mismatch is a deployment wiring error even though
// SPs are untrusted. It returns the TE-attested plan. Shared by the
// shard-aware client and the router tier, which performs the same
// cross-check against its upstreams at startup.
func VerifyShardAttestations(sps []*SPClient, tes []*TEClient) (shard.Plan, error) {
	var plan shard.Plan
	for i, te := range tes {
		si, err := te.ShardMap()
		if err != nil {
			return shard.Plan{}, fmt.Errorf("wire: shard %d TE map: %w", i, err)
		}
		if si.Index != i {
			return shard.Plan{}, fmt.Errorf("wire: TE dialed as shard %d claims index %d", i, si.Index)
		}
		if si.Plan.Shards() != len(tes) {
			return shard.Plan{}, fmt.Errorf("wire: TE %d attests a %d-shard plan, dialed %d shards",
				i, si.Plan.Shards(), len(tes))
		}
		if i == 0 {
			plan = si.Plan
		} else if !si.Plan.Equal(plan) {
			return shard.Plan{}, fmt.Errorf("wire: TE %d attests a different plan than TE 0", i)
		}
		// Routing sanity only: the SP map is untrusted but a mismatch
		// means the deployment is mis-wired.
		if spsi, err := sps[i].ShardMap(); err != nil {
			return shard.Plan{}, fmt.Errorf("wire: shard %d SP map: %w", i, err)
		} else if spsi.Index != i || !spsi.Plan.Equal(plan) {
			return shard.Plan{}, fmt.Errorf("wire: SP dialed as shard %d reports shard %d of %v",
				i, spsi.Index, spsi.Plan)
		}
	}
	return plan, nil
}

// Close closes every shard connection.
func (c *ShardedVerifyingClient) Close() error {
	var first error
	for _, vc := range c.Shards {
		if vc == nil {
			continue
		}
		if err := vc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// BytesReceived sums the bytes received from all shards, split into the
// SP (result) and TE (authentication) streams.
func (c *ShardedVerifyingClient) BytesReceived() (sp, te int64) {
	for _, vc := range c.Shards {
		sp += vc.SP.BytesReceived()
		te += vc.TE.BytesReceived()
	}
	return sp, te
}

// Query scatters a verified range query. It returns the merged records
// only if they passed verification against the XOR-combined token.
func (c *ShardedVerifyingClient) Query(q record.Range) ([]record.Record, error) {
	subs := c.Plan.Scatter(q)
	if len(subs) == 0 {
		return nil, nil
	}
	parts := make([]shard.SAEPart, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx, sub := subs[i].Shard, subs[i].Sub
			vc := c.Shards[idx]
			// SP and TE sub-requests pipeline on the shard's two
			// connections exactly like the single-shard client.
			var inner sync.WaitGroup
			inner.Add(1)
			var vt digest.Digest
			var vtErr error
			go func() {
				defer inner.Done()
				vt, vtErr = vc.TE.GenerateVT(sub)
			}()
			recs, spErr := vc.SP.Query(sub)
			inner.Wait()
			if spErr != nil {
				errs[i] = fmt.Errorf("wire: shard %d SP: %w", idx, spErr)
				return
			}
			if vtErr != nil {
				errs[i] = fmt.Errorf("wire: shard %d TE: %w", idx, vtErr)
				return
			}
			parts[i] = shard.SAEPart{Recs: recs, VT: vt}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged, vt := shard.MergeSAE(parts)
	// The merged result verifies through the parallel pool: record
	// hashing dominates, and the XOR fold is order-independent, so the
	// fan-out returns exactly what the serial Figure 7 check would.
	vp := core.NewVerifyPool(0)
	if _, err := vp.Verify(q, merged, vt); err != nil {
		return nil, err
	}
	return merged, nil
}

// QueryBatch runs many verified range queries with at most one batch
// frame to each shard's SP and TE: every query's sub-ranges are grouped
// per shard, each shard executes its group as one QueryBatch /
// GenerateVTBatch, and the per-query results are reassembled and verified
// against their XOR-combined tokens. Results align with qs.
func (c *ShardedVerifyingClient) QueryBatch(qs []record.Range) ([][]record.Record, error) {
	// Group the clamped sub-queries by shard, remembering which query each
	// one belongs to.
	subs := make([][]record.Range, len(c.Shards))
	owners := make([][]int, len(c.Shards))
	for qi, q := range qs {
		for _, sq := range c.Plan.Scatter(q) {
			subs[sq.Shard] = append(subs[sq.Shard], sq.Sub)
			owners[sq.Shard] = append(owners[sq.Shard], qi)
		}
	}
	type shardOut struct {
		batches [][]record.Record
		vts     []digest.Digest
		err     error
	}
	outs := make([]shardOut, len(c.Shards))
	var wg sync.WaitGroup
	for idx := range c.Shards {
		if len(subs[idx]) == 0 {
			continue
		}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			vc := c.Shards[idx]
			var inner sync.WaitGroup
			inner.Add(1)
			var vts []digest.Digest
			var vtErr error
			go func() {
				defer inner.Done()
				vts, vtErr = vc.TE.GenerateVTBatch(subs[idx])
			}()
			batches, spErr := vc.SP.QueryBatch(subs[idx])
			inner.Wait()
			if spErr != nil {
				outs[idx].err = fmt.Errorf("wire: shard %d SP batch: %w", idx, spErr)
				return
			}
			if vtErr != nil {
				outs[idx].err = fmt.Errorf("wire: shard %d TE batch: %w", idx, vtErr)
				return
			}
			outs[idx].batches, outs[idx].vts = batches, vts
		}(idx)
	}
	wg.Wait()
	for idx := range outs {
		if outs[idx].err != nil {
			return nil, outs[idx].err
		}
	}
	// Reassemble per query. Shards are visited in index order and each
	// shard's group preserves query order, so collecting every query's
	// parts in visit order hands MergeSAE the Scatter order it expects.
	parts := make([][]shard.SAEPart, len(qs))
	for idx := range c.Shards {
		for j, qi := range owners[idx] {
			parts[qi] = append(parts[qi], shard.SAEPart{Recs: outs[idx].batches[j], VT: outs[idx].vts[j]})
		}
	}
	vp := core.NewVerifyPool(0)
	results := make([][]record.Record, len(qs))
	for qi, q := range qs {
		merged, vt := shard.MergeSAE(parts[qi])
		if _, err := vp.Verify(q, merged, vt); err != nil {
			return nil, fmt.Errorf("query %d %v: %w", qi, q, err)
		}
		results[qi] = merged
	}
	return results, nil
}
