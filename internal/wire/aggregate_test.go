package wire

import (
	"errors"
	"testing"

	"sae/internal/agg"
	"sae/internal/core"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/tom"
	"sae/internal/workload"
)

// foldAgg folds the reference aggregate by linear scan over the dataset.
func foldAgg(recs []record.Record, q record.Range) agg.Agg {
	var a agg.Agg
	for i := range recs {
		if q.Contains(recs[i].Key) {
			a = a.Add(recs[i].Key)
		}
	}
	return a
}

// TestAggregateOverWire runs the verified aggregation fast path through
// real TCP in both serve modes: every scalar must verify and equal the
// linear-scan fold, and the per-request and burst forms must agree
// bit-identically across SAE_BURST modes.
func TestAggregateOverWire(t *testing.T) {
	qs := burstParityQueries(20)
	var modes [2][]agg.Agg
	for mi, burst := range []bool{true, false} {
		spSrv, teSrv, ds := launchSAEMode(t, 4000, burst)
		client, err := DialVerifying(spSrv.Addr(), teSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			a, err := client.Aggregate(q)
			if err != nil {
				t.Fatalf("burst=%v Aggregate(%v): %v", burst, q, err)
			}
			if want := foldAgg(ds.Records, q).Normalize(); a != want {
				t.Fatalf("burst=%v Aggregate(%v) = %v, want %v", burst, q, a, want)
			}
		}
		// The grouped burst path must produce the same scalars.
		as, err := client.AggregateBurst(qs)
		if err != nil {
			t.Fatalf("burst=%v AggregateBurst: %v", burst, err)
		}
		for i, q := range qs {
			if want := foldAgg(ds.Records, q).Normalize(); as[i] != want {
				t.Fatalf("burst=%v AggregateBurst[%d] (%v) = %v, want %v", burst, i, q, as[i], want)
			}
		}
		modes[mi] = as
		client.Close()
	}
	for i := range qs {
		if modes[0][i] != modes[1][i] {
			t.Fatalf("query %d: burst-mode scalar %v != per-request scalar %v", i, modes[0][i], modes[1][i])
		}
	}
}

// TestAggregateWireTampered: a forged SP scalar crossing the wire must be
// rejected by the client's token comparison, in both serve modes.
func TestAggregateWireTampered(t *testing.T) {
	for _, burst := range []bool{true, false} {
		spSrv, teSrv, _ := launchSAEMode(t, 2000, burst)
		spSrv.sp.SetAggTamper(core.InflateAggTamper(1, 0))
		client, err := DialVerifying(spSrv.Addr(), teSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		q := record.Range{Lo: 0, Hi: record.KeyDomain}
		if _, err := client.Aggregate(q); !errors.Is(err, core.ErrVerificationFailed) {
			t.Fatalf("burst=%v tampered Aggregate error = %v, want ErrVerificationFailed", burst, err)
		}
		if _, err := client.AggregateBurst(burstParityQueries(4)); !errors.Is(err, core.ErrVerificationFailed) {
			t.Fatalf("burst=%v tampered AggregateBurst error = %v, want ErrVerificationFailed", burst, err)
		}
		client.Close()
	}
}

// TestTOMAggregateOverWire runs the TOM aggregation fast path through real
// TCP in both serve modes: the replayed VO must produce the fold scalar.
func TestTOMAggregateOverWire(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 3000, 61)
	if err != nil {
		t.Fatal(err)
	}
	owner, err := tom.NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	for _, burst := range []bool{true, false} {
		provider := tom.NewProvider(pagestore.NewMem())
		if err := provider.Load(ds.Records, owner); err != nil {
			t.Fatal(err)
		}
		srv, err := ServeTOM("127.0.0.1:0", provider, owner, nil, WithBurstServing(burst))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		tc, err := DialTOM(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		client := &VerifyingTOMClient{Provider: tc, Verifier: owner.Verifier()}
		for _, q := range burstParityQueries(12) {
			a, err := client.Aggregate(q)
			if err != nil {
				t.Fatalf("burst=%v TOM Aggregate(%v): %v", burst, q, err)
			}
			if want := foldAgg(ds.Records, q).Normalize(); a != want {
				t.Fatalf("burst=%v TOM Aggregate(%v) = %v, want %v", burst, q, a, want)
			}
		}
		tc.Close()
	}
}

// TestShardedAggregateOverWire scatters verified aggregate queries across
// a real sharded TCP deployment, with the in-process sharded system as
// the oracle.
func TestShardedAggregateOverWire(t *testing.T) {
	sys, spAddrs, teAddrs := shardedDeployment(t, 8000, 3)
	client, err := DialShardedVerifying(spAddrs, teAddrs)
	if err != nil {
		t.Fatalf("DialShardedVerifying: %v", err)
	}
	defer client.Close()
	for _, q := range burstParityQueries(15) {
		a, err := client.Aggregate(q)
		if err != nil {
			t.Fatalf("sharded Aggregate(%v): %v", q, err)
		}
		oracle, err := sys.Aggregate(q)
		if err != nil {
			t.Fatalf("in-process sharded Aggregate(%v): %v", q, err)
		}
		if oracle.VerifyErr != nil {
			t.Fatalf("in-process sharded aggregate rejected for %v: %v", q, oracle.VerifyErr)
		}
		if a != oracle.Agg {
			t.Fatalf("sharded Aggregate(%v) = %v, in-process oracle %v", q, a, oracle.Agg)
		}
	}
}

// TestShardedAggregateWireTampered: one shard SP forging its partial must
// fail that shard's token comparison at the scatter client.
func TestShardedAggregateWireTampered(t *testing.T) {
	sys, spAddrs, teAddrs := shardedDeployment(t, 6000, 3)
	sys.SPs[1].SetAggTamper(core.InflateAggTamper(3, 0))
	client, err := DialShardedVerifying(spAddrs, teAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	q := record.Range{Lo: 0, Hi: record.KeyDomain}
	if _, err := client.Aggregate(q); !errors.Is(err, core.ErrVerificationFailed) {
		t.Fatalf("tampered sharded Aggregate error = %v, want ErrVerificationFailed", err)
	}
}
