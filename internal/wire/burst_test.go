package wire

import (
	"bytes"
	"strings"
	"testing"

	"sae/internal/core"
	"sae/internal/mbtree"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/tom"
	"sae/internal/workload"
)

// launchSAEMode boots an SP and a TE over loopback with burst serving
// explicitly forced on or off, so parity tests can hold everything else
// constant across the two serve paths.
func launchSAEMode(t *testing.T, n int, burst bool) (*SPServer, *TEServer, *workload.Dataset) {
	t.Helper()
	ds, err := workload.Generate(workload.UNF, n, 55)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sp := core.NewServiceProvider(pagestore.NewMem())
	te := core.NewTrustedEntity(pagestore.NewMem())
	if err := sp.Load(ds.Records); err != nil {
		t.Fatalf("sp.Load: %v", err)
	}
	if err := te.Load(ds.Records); err != nil {
		t.Fatalf("te.Load: %v", err)
	}
	spSrv, err := ServeSP("127.0.0.1:0", sp, nil, WithBurstServing(burst))
	if err != nil {
		t.Fatalf("ServeSP: %v", err)
	}
	t.Cleanup(func() { spSrv.Close() })
	teSrv, err := ServeTE("127.0.0.1:0", te, nil, WithBurstServing(burst))
	if err != nil {
		t.Fatalf("ServeTE: %v", err)
	}
	t.Cleanup(func() { teSrv.Close() })
	return spSrv, teSrv, ds
}

// burstParityQueries builds a query mix that exercises every burst
// code path: ordinary ranges, empty results (so lazily opened sections
// must still emit their count slots), point ranges and the full keyspace
// tail.
func burstParityQueries(n int) []record.Range {
	qs := workload.Queries(n, workload.DefaultExtent, 91)
	qs = append(qs, record.Range{Lo: record.KeyDomain + 1, Hi: record.KeyDomain + 10}) // empty
	qs = append(qs, record.Range{Lo: 0, Hi: 0})                                        // point, likely empty
	qs = append(qs, record.Range{Lo: record.KeyDomain / 2, Hi: record.KeyDomain / 2})
	return qs
}

// TestBurstParitySAE pins the tentpole's core promise at the wire level:
// the payload bytes and token bytes a burst-mode server produces are
// bit-identical to the per-request server's, for the same dataset and
// queries — including empty results and bursts larger than maxBurst.
func TestBurstParitySAE(t *testing.T) {
	spB, teB, _ := launchSAEMode(t, 5000, true)
	spP, teP, _ := launchSAEMode(t, 5000, false)

	// 100 queries > maxBurst, so the burst server must split the group
	// across bursts without dropping or reordering responses.
	qs := burstParityQueries(97)

	cb, err := DialSP(spB.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	cp, err := DialSP(spP.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()

	burstRaws, err := cb.QueryRawMany(qs)
	if err != nil {
		t.Fatalf("burst QueryRawMany: %v", err)
	}
	for i, q := range qs {
		perReq, err := cp.QueryRaw(q)
		if err != nil {
			t.Fatalf("per-request QueryRaw(%v): %v", q, err)
		}
		if !bytes.Equal(burstRaws[i], perReq) {
			t.Fatalf("query %d (%v): burst payload (%d bytes) != per-request payload (%d bytes)",
				i, q, len(burstRaws[i]), len(perReq))
		}
	}

	tb, err := DialTE(teB.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tp, err := DialTE(teP.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()

	burstVTs, err := tb.GenerateVTMany(qs)
	if err != nil {
		t.Fatalf("burst GenerateVTMany: %v", err)
	}
	for i, q := range qs {
		vt, err := tp.GenerateVT(q)
		if err != nil {
			t.Fatalf("per-request GenerateVT(%v): %v", q, err)
		}
		if burstVTs[i] != vt {
			t.Fatalf("query %d (%v): burst token != per-request token", i, q)
		}
	}
}

// TestBurstVerifiedQuery runs the full verified protocol through
// QueryBurst against servers in BOTH modes: every result must verify,
// and the records must match a per-request verified query.
func TestBurstVerifiedQuery(t *testing.T) {
	for _, burst := range []bool{true, false} {
		spSrv, teSrv, ds := launchSAEMode(t, 4000, burst)
		client, err := DialVerifying(spSrv.Addr(), teSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		qs := burstParityQueries(20)
		results, err := client.QueryBurst(qs)
		if err != nil {
			t.Fatalf("burst=%v QueryBurst: %v", burst, err)
		}
		for i, q := range qs {
			want := 0
			for j := range ds.Records {
				if q.Contains(ds.Records[j].Key) {
					want++
				}
			}
			if len(results[i]) != want {
				t.Fatalf("burst=%v query %v: %d records, want %d", burst, q, len(results[i]), want)
			}
		}
		client.Close()
	}
}

// TestBurstParityTOM pins records+VO byte parity for the TOM provider
// between burst and per-request serving, and checks the burst result
// verifies end to end.
func TestBurstParityTOM(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 3000, 60)
	if err != nil {
		t.Fatal(err)
	}
	owner, err := tom.NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	newSrv := func(burst bool) *TOMServer {
		provider := tom.NewProvider(pagestore.NewMem())
		if err := provider.Load(ds.Records, owner); err != nil {
			t.Fatal(err)
		}
		srv, err := ServeTOM("127.0.0.1:0", provider, owner, nil, WithBurstServing(burst))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	srvB, srvP := newSrv(true), newSrv(false)

	cb, err := DialTOM(srvB.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	cp, err := DialTOM(srvP.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()

	qs := burstParityQueries(20)
	burstRaws, err := cb.QueryRawMany(qs)
	if err != nil {
		t.Fatalf("burst TOM QueryRawMany: %v", err)
	}
	for i, q := range qs {
		perReq, err := cp.QueryRawCtx(t.Context(), q)
		if err != nil {
			t.Fatalf("per-request TOM query(%v): %v", q, err)
		}
		if !bytes.Equal(burstRaws[i], perReq) {
			t.Fatalf("TOM query %d (%v): burst payload != per-request payload", i, q)
		}
		// The burst payload must decode and verify like any other.
		recs, vo, err := decodeTOMResult(burstRaws[i])
		if err != nil {
			t.Fatalf("decoding burst TOM result %d: %v", i, err)
		}
		if err := mbtree.VerifyVO(vo, recs, q.Lo, q.Hi, owner.Verifier()); err != nil {
			t.Fatalf("burst TOM result %d failed verification: %v", i, err)
		}
	}
}

// TestBurstMixedFrames pipelines burstable queries interleaved with
// non-burstable frames (shard-map requests) in one gather write: the
// lane must group the queries, serve the rest individually, and answer
// every id correctly.
func TestBurstMixedFrames(t *testing.T) {
	spSrv, _, ds := launchSAEMode(t, 3000, true)
	c, err := dial(spSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	qs := workload.Queries(6, workload.DefaultExtent, 92)
	reqs := make([]Frame, 0, len(qs)+3)
	for i, q := range qs {
		if i%2 == 0 {
			reqs = append(reqs, Frame{Type: MsgShardMapReq})
		}
		reqs = append(reqs, Frame{Type: MsgQuery, Payload: EncodeRange(q)})
	}
	resps, err := c.roundTripMany(reqs)
	if err != nil {
		t.Fatalf("mixed roundTripMany: %v", err)
	}
	qi := 0
	for i, r := range resps {
		switch reqs[i].Type {
		case MsgShardMapReq:
			if r.Type != MsgShardMap {
				t.Fatalf("frame %d: got type %d, want shard map", i, r.Type)
			}
		case MsgQuery:
			if r.Type != MsgResult {
				t.Fatalf("frame %d: got type %d, want result", i, r.Type)
			}
			recs, rest, err := DecodeRecords(r.Payload)
			if err != nil || len(rest) != 0 {
				t.Fatalf("frame %d: bad result payload: %v", i, err)
			}
			want := 0
			for j := range ds.Records {
				if qs[qi].Contains(ds.Records[j].Key) {
					want++
				}
			}
			if len(recs) != want {
				t.Fatalf("query %v: %d records, want %d", qs[qi], len(recs), want)
			}
			qi++
		}
	}
}

// TestBurstFallbackOnMalformed sends a burst containing one malformed
// query: the group must fall back to per-request serving, the bad frame
// must get an error response, the good frames real results — and the
// connection must stay healthy for the next burst.
func TestBurstFallbackOnMalformed(t *testing.T) {
	spSrv, _, _ := launchSAEMode(t, 2000, true)
	c, err := dial(spSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	qs := workload.Queries(3, workload.DefaultExtent, 93)
	reqs := []Frame{
		{Type: MsgQuery, Payload: EncodeRange(qs[0])},
		{Type: MsgQuery, Payload: []byte{1, 2, 3}}, // malformed range
		{Type: MsgQuery, Payload: EncodeRange(qs[1])},
	}
	if _, err := c.roundTripMany(reqs); err == nil ||
		!strings.Contains(err.Error(), "server error") {
		t.Fatalf("malformed burst error = %v, want server error", err)
	}

	// The connection survives: the next burst serves normally.
	raws, err := c.roundTripMany([]Frame{
		{Type: MsgQuery, Payload: EncodeRange(qs[2])},
		{Type: MsgQuery, Payload: EncodeRange(qs[0])},
	})
	if err != nil {
		t.Fatalf("burst after malformed burst: %v", err)
	}
	for i, r := range raws {
		if r.Type != MsgResult {
			t.Fatalf("follow-up frame %d: got type %d, want result", i, r.Type)
		}
	}
}

// TestBurstEnvGate checks SAE_BURST=0 actually disables lane serving
// (and that the default enables it) via the server's own gate resolver.
func TestBurstEnvGate(t *testing.T) {
	t.Setenv("SAE_BURST", "0")
	spSrv, _, _ := launchSAE(t, 500)
	if spSrv.lanes != nil {
		t.Fatal("SAE_BURST=0 server still built serve lanes")
	}
	// The per-request path must serve as before.
	c, err := DialSP(spSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.QueryRawMany(workload.Queries(4, workload.DefaultExtent, 94)); err != nil {
		t.Fatalf("pipelined queries with burst disabled: %v", err)
	}

	t.Setenv("SAE_BURST", "1")
	spSrv2, _, _ := launchSAE(t, 500)
	if spSrv2.lanes == nil {
		t.Fatal("default server did not build serve lanes")
	}
}
