package wire

import (
	"bytes"
	"testing"

	"sae/internal/mbtree"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/tom"
	"sae/internal/workload"
)

// frameBytes serializes a frame exactly as a peer would put it on the
// wire, for use as a fuzz seed.
func frameBytes(t testing.TB, f Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame throws arbitrary byte streams at the frame reader and
// the payload decoders behind it. The framing layer fronts every open
// port, so the property under test is total robustness: no panic, no
// over-allocation past MaxPayload, and a clean round-trip for every frame
// that parses. Seeds are real frames from the live protocol.
func FuzzDecodeFrame(f *testing.F) {
	ds, err := workload.Generate(workload.UNF, 50, 17)
	if err != nil {
		f.Fatal(err)
	}
	q := record.Range{Lo: 0, Hi: record.KeyDomain}
	f.Add(frameBytes(f, Frame{Type: MsgQuery, ID: 1, Payload: EncodeRange(q)}))
	f.Add(frameBytes(f, Frame{Type: MsgResult, ID: 2, Payload: EncodeRecords(ds.Records)}))
	f.Add(frameBytes(f, Frame{Type: MsgBatchQuery, ID: 3, Payload: EncodeRanges(workload.Queries(4, workload.DefaultExtent, 18))}))
	f.Add(frameBytes(f, Frame{Type: MsgAggQuery, ID: 4, Payload: EncodeRange(q)}))
	f.Add(frameBytes(f, Frame{Type: MsgShardMapReq, ID: 5}))
	f.Add(frameBytes(f, ErrFrame(ErrProtocol)))
	// A truncated header and a length prefix past MaxPayload.
	f.Add([]byte{byte(MsgQuery), 0, 0})
	f.Add([]byte{byte(MsgQuery), 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must re-encode to a stream that reads back
		// identically — the server trusts this when relaying frames.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-encoding a parsed frame: %v", err)
		}
		back, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-reading a re-encoded frame: %v", err)
		}
		if back.Type != fr.Type || back.ID != fr.ID || !bytes.Equal(back.Payload, fr.Payload) {
			t.Fatal("frame round-trip changed the frame")
		}
		// The payload decoders sit directly behind the dispatch switch on
		// every server; none may panic on attacker-controlled bytes.
		p := fr.Payload
		_, _ = DecodeRange(p)
		_, _, _ = DecodeRecords(p)
		_, _ = DecodeRanges(p)
		_, _ = DecodeRecordBatches(p)
		_, _ = DecodeDigests(p)
		_, _ = DecodeShardInfo(p)
		_, _, _ = DecodeTOMSharded(p)
		_, _, _ = DecodeDelete(p)
		_, _, _ = DecodeDeletes(p)
	})
}

// FuzzUnmarshalVO fuzzes the verification-object decoder with mutations
// of real VOs — both range VOs and the new aggregate VOs — plus raw
// garbage. UnmarshalVO parses bytes a malicious provider or router fully
// controls, so it must never panic and anything it accepts must survive
// a marshal round-trip.
func FuzzUnmarshalVO(f *testing.F) {
	ds, err := workload.Generate(workload.UNF, 400, 19)
	if err != nil {
		f.Fatal(err)
	}
	owner, err := tom.NewOwner()
	if err != nil {
		f.Fatal(err)
	}
	p := tom.NewProvider(pagestore.NewMem())
	if err := p.Load(ds.Records, owner); err != nil {
		f.Fatal(err)
	}
	for _, q := range workload.Queries(3, workload.DefaultExtent, 20) {
		_, vo, _, err := p.Query(q)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(vo.Marshal())
		avo, _, err := p.Aggregate(q)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(avo.Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		vo, err := mbtree.UnmarshalVO(data)
		if err != nil {
			return
		}
		enc := vo.Marshal()
		back, err := mbtree.UnmarshalVO(enc)
		if err != nil {
			t.Fatalf("re-unmarshal of a marshaled VO: %v", err)
		}
		if !bytes.Equal(back.Marshal(), enc) {
			t.Fatal("VO marshal round-trip is not a fixed point")
		}
	})
}
