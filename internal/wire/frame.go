// Package wire puts the outsourcing protocols on the network: framing and
// codecs for every message the parties exchange, TCP servers wrapping the
// SAE service provider, trusted entity and TOM provider, and client stubs
// that measure real bytes on the wire — the deployment the paper describes,
// where "the client sends the query to both the TE and the SP
// simultaneously".
//
// The protocol is deliberately simple: a 1-byte message type, a 4-byte
// big-endian request id, a 4-byte big-endian payload length, then the
// payload. Connections are persistent and may carry many requests in
// flight at once: the server handles each request concurrently and tags
// its response with the request's id, so responses may arrive out of
// order and the client demultiplexes by id (see client.go). Batch frames
// (MsgBatchQuery, MsgBatchVT) amortize even the per-request framing over
// many queries.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sae/internal/digest"
	"sae/internal/record"
	"sae/internal/shard"
)

// HeaderSize is the fixed frame header: type (1) + request id (4) +
// payload length (4).
const HeaderSize = 9

// MsgType discriminates protocol messages.
type MsgType byte

// Protocol message types.
const (
	// Client -> SP.
	MsgQuery MsgType = 1
	// SP -> client: record count + records.
	MsgResult MsgType = 2
	// Client -> TE.
	MsgVTRequest MsgType = 3
	// TE -> client: a 20-byte token.
	MsgVT MsgType = 4
	// Owner -> SP/TE: one record.
	MsgInsert MsgType = 5
	// Owner -> SP/TE: id + key.
	MsgDelete MsgType = 6
	// Generic success.
	MsgAck MsgType = 7
	// Error with a message string.
	MsgErr MsgType = 8
	// Client -> TOM provider.
	MsgTOMQuery MsgType = 9
	// TOM provider -> client: records + serialized VO.
	MsgTOMResult MsgType = 10
	// Client -> SP: many ranges in one frame.
	MsgBatchQuery MsgType = 11
	// SP -> client: one record list per queried range.
	MsgBatchResult MsgType = 12
	// Client -> TE: many ranges in one frame.
	MsgBatchVT MsgType = 13
	// TE -> client: one 20-byte token per queried range.
	MsgBatchVTResult MsgType = 14
	// Client -> any server: which shard are you, under which plan?
	MsgShardMapReq MsgType = 15
	// Server -> client: shard index + partition plan.
	MsgShardMap MsgType = 16
	// Router -> client: a TOM query answered by a sharded deployment —
	// the partition plan plus one (records + VO) blob per overlapping
	// shard. The plan is untrusted relay data: each shard's VO signature
	// binds the owner-signed plan, so a forged relay fails verification.
	MsgTOMShardedResult MsgType = 17
	// Owner -> SP/TE/TOM: a batch of freshly-synthesized records to
	// commit as one group (EncodeRecords payload).
	MsgBatchInsert MsgType = 18
	// Owner -> SP/TE/TOM: a batch of deletions to commit as one group.
	MsgBatchDelete MsgType = 19
	// Client -> SP (or router): authenticated COUNT/SUM/MIN/MAX over a
	// range — the aggregation fast path's untrusted half.
	MsgAggQuery MsgType = 20
	// SP -> client: the 24-byte aggregate scalar (agg.Agg wire form).
	MsgAggResult MsgType = 21
	// Client -> TE (or router): aggregate-token request for a range.
	MsgAggTokenReq MsgType = 22
	// TE -> client: the 44-byte range-bound aggregate token (agg.Token
	// wire form) the scalar is checked against.
	MsgAggToken MsgType = 23
	// Client -> TOM provider (or router): aggregate query under TOM.
	MsgTOMAggQuery MsgType = 24
	// TOM provider -> client: the serialized aggregate VO; replaying it
	// against the owner-signed root PRODUCES the verified scalar.
	MsgTOMAggResult MsgType = 25
	// Router -> client: a TOM aggregate query answered by a sharded
	// deployment — the partition plan plus one aggregate-VO blob per
	// overlapping shard, in the MsgTOMShardedResult envelope. The plan is
	// untrusted relay data exactly as for range queries.
	MsgTOMAggShardedResult MsgType = 26
	// Client/router -> primary or replica: what is your generation stamp
	// (the sequence of the last commit group folded into your state)?
	MsgGenStampReq MsgType = 27
	// Server -> client: an 8-byte big-endian generation stamp.
	MsgGenStamp MsgType = 28
	// Replica -> primary: send me a bootstrap snapshot.
	MsgReplicaSnapReq MsgType = 29
	// Primary -> replica: shard attestation + a sequence-stamped record
	// dump cut at a commit boundary (the checkpoint's own byte format).
	MsgReplicaSnap MsgType = 30
	// Replica -> primary: commit groups after my sequence, please.
	MsgReplicaPull MsgType = 31
	// Primary -> replica: a flags byte (bit 0: the retention window no
	// longer reaches your sequence — re-bootstrap from a snapshot) plus
	// zero or more whole commit groups in wal wire form.
	MsgReplicaGroups MsgType = 32
	// Client (or router) -> primary/replica: one range query whose
	// records, verification token and generation stamp must be served
	// atomically at a single commit boundary — the frame that makes
	// replica reads safe under concurrent group application.
	MsgVerifiedQuery MsgType = 33
	// Server -> client: plan epoch + generation stamp + 20-byte VT +
	// records. The whole quadruple belongs to one generation under one
	// topology, so the XOR check can never tear across a commit and a
	// merged answer can never silently mix epochs.
	MsgVerifiedResult MsgType = 34
	// Reshard coordinator -> server: adopt this shard attestation (index
	// + epoched plan, EncodeShardInfo payload). Servers accept only a
	// strictly higher epoch, so a replayed update cannot roll a server
	// back to a stale topology.
	MsgPlanUpdate MsgType = 35
	// Reshard coordinator -> primary: block new write commits (8-byte TTL
	// in milliseconds; the server auto-thaws when it expires so a dead
	// coordinator cannot freeze writes forever). Acked only after every
	// in-flight group is committed and visible in the WAL stream.
	MsgFreeze MsgType = 36
	// Reshard coordinator -> primary: release a freeze.
	MsgThaw MsgType = 37
	// Reshard coordinator -> primary: the shard has been migrated away —
	// permanently refuse writes and client reads (replication pulls keep
	// working so stragglers can still drain).
	MsgRetire MsgType = 38
	// Reshard coordinator -> router: cut over to a new topology (epoched
	// plan + per-shard SP/TE address lists, EncodeCutover payload). The
	// router re-runs attestation against the new upstreams and accepts
	// only a strictly higher epoch.
	MsgReshardCutover MsgType = 39
)

// MaxPayload bounds a frame payload (64 MiB — far above any legal
// response) to stop a corrupt or malicious length prefix from driving an
// allocation.
const MaxPayload = 64 << 20

// ErrProtocol is wrapped by all framing and decoding failures.
var ErrProtocol = errors.New("wire: protocol error")

// Frame is one protocol message. ID correlates a response with its
// request: servers echo the request's id, clients pick any id unique
// among their in-flight requests (0 is fine for strictly sequential use).
type Frame struct {
	Type    MsgType
	ID      uint32
	Payload []byte
}

// WriteFrame writes a frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	var hdr [HeaderSize]byte
	hdr[0] = byte(f.Type)
	binary.BigEndian.PutUint32(hdr[1:5], f.ID)
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(f.Payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[5:9])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, n)
	}
	f := Frame{
		Type:    MsgType(hdr[0]),
		ID:      binary.BigEndian.Uint32(hdr[1:5]),
		Payload: make([]byte, n),
	}
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, fmt.Errorf("%w: truncated payload: %v", ErrProtocol, err)
	}
	return f, nil
}

// EncodeRange serializes a query range.
func EncodeRange(q record.Range) []byte {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(q.Lo))
	binary.BigEndian.PutUint32(b[4:8], uint32(q.Hi))
	return b[:]
}

// DecodeRange parses a query range.
func DecodeRange(b []byte) (record.Range, error) {
	if len(b) != 8 {
		return record.Range{}, fmt.Errorf("%w: range payload of %d bytes", ErrProtocol, len(b))
	}
	return record.Range{
		Lo: record.Key(binary.BigEndian.Uint32(b[0:4])),
		Hi: record.Key(binary.BigEndian.Uint32(b[4:8])),
	}, nil
}

// EncodeRecords serializes a record list: count then fixed-size records.
func EncodeRecords(recs []record.Record) []byte {
	out := make([]byte, 4, 4+len(recs)*record.Size)
	binary.BigEndian.PutUint32(out[0:4], uint32(len(recs)))
	for i := range recs {
		out = recs[i].AppendBinary(out)
	}
	return out
}

// DecodeRecords parses a record list, returning any trailing bytes (used
// by the TOM result codec, which appends the VO).
func DecodeRecords(b []byte) ([]record.Record, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated record count", ErrProtocol)
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	b = b[4:]
	// Every record occupies record.Size bytes, so a count the remaining
	// payload cannot hold is rejected before the count-sized allocation.
	if n > len(b)/record.Size {
		return nil, nil, fmt.Errorf("%w: implausible record count %d for %d payload bytes", ErrProtocol, n, len(b))
	}
	recs := make([]record.Record, 0, n)
	for i := 0; i < n; i++ {
		r, err := record.Unmarshal(b)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: truncated record %d", ErrProtocol, i)
		}
		recs = append(recs, r)
		b = b[record.Size:]
	}
	return recs, b, nil
}

// RecordsView validates the EncodeRecords framing of b without decoding:
// it returns the n*record.Size bytes of raw encoded records as a subslice
// (zero-copy — callers hash or decode in place) plus any trailing bytes.
func RecordsView(b []byte) (enc, rest []byte, n int, err error) {
	if len(b) < 4 {
		return nil, nil, 0, fmt.Errorf("%w: truncated record count", ErrProtocol)
	}
	n = int(binary.BigEndian.Uint32(b[0:4]))
	b = b[4:]
	if n > len(b)/record.Size {
		return nil, nil, 0, fmt.Errorf("%w: implausible record count %d for %d payload bytes", ErrProtocol, n, len(b))
	}
	return b[:n*record.Size], b[n*record.Size:], n, nil
}

// EncodeRanges serializes a batch of query ranges: count, then 8 bytes
// per range.
func EncodeRanges(qs []record.Range) []byte {
	out := make([]byte, 4, 4+8*len(qs))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(qs)))
	for _, q := range qs {
		out = append(out, EncodeRange(q)...)
	}
	return out
}

// DecodeRanges parses a batch of query ranges.
func DecodeRanges(b []byte) ([]record.Range, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: truncated range count", ErrProtocol)
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	b = b[4:]
	if len(b) != 8*n {
		return nil, fmt.Errorf("%w: %d ranges in %d payload bytes", ErrProtocol, n, len(b))
	}
	qs := make([]record.Range, n)
	for i := 0; i < n; i++ {
		q, err := DecodeRange(b[8*i : 8*i+8])
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}
	return qs, nil
}

// EncodeRecordBatches serializes one record list per queried range: the
// batch count, then each list in EncodeRecords form (self-delimiting).
func EncodeRecordBatches(batches [][]record.Record) []byte {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out[0:4], uint32(len(batches)))
	for _, recs := range batches {
		out = append(out, EncodeRecords(recs)...)
	}
	return out
}

// DecodeRecordBatches parses a batched query result.
func DecodeRecordBatches(b []byte) ([][]record.Record, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: truncated batch count", ErrProtocol)
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	b = b[4:]
	// Each batch entry carries at least its own 4-byte record count, so a
	// count the remaining payload cannot hold is rejected before the
	// count-sized allocation.
	if n > len(b)/4 {
		return nil, fmt.Errorf("%w: implausible batch count %d for %d payload bytes", ErrProtocol, n, len(b))
	}
	out := make([][]record.Record, 0, n)
	for i := 0; i < n; i++ {
		recs, rest, err := DecodeRecords(b)
		if err != nil {
			return nil, fmt.Errorf("%w: batch entry %d: %v", ErrProtocol, i, err)
		}
		out = append(out, recs)
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrProtocol, len(b))
	}
	return out, nil
}

// EncodeDigests serializes a batch of verification tokens: count, then 20
// bytes per token.
func EncodeDigests(ds []digest.Digest) []byte {
	out := make([]byte, 4, 4+digest.Size*len(ds))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(ds)))
	for i := range ds {
		out = append(out, ds[i][:]...)
	}
	return out
}

// DecodeDigests parses a batch of verification tokens.
func DecodeDigests(b []byte) ([]digest.Digest, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: truncated token count", ErrProtocol)
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	b = b[4:]
	if len(b) != digest.Size*n {
		return nil, fmt.Errorf("%w: %d tokens in %d payload bytes", ErrProtocol, n, len(b))
	}
	out := make([]digest.Digest, n)
	for i := 0; i < n; i++ {
		out[i] = digest.FromBytes(b[digest.Size*i : digest.Size*(i+1)])
	}
	return out, nil
}

// ShardInfo identifies one server's place in a sharded deployment: its
// shard index and the key-range partition plan every shard was loaded
// under. A stand-alone server is shard 0 of the single-shard plan.
type ShardInfo struct {
	Index int
	Plan  shard.Plan
}

// EncodeShardInfo serializes a shard map response: index, then the plan.
func EncodeShardInfo(si ShardInfo) []byte {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out[0:4], uint32(si.Index))
	return append(out, si.Plan.Marshal()...)
}

// DecodeShardInfo parses a shard map response, validating the plan and
// that the index falls inside it.
func DecodeShardInfo(b []byte) (ShardInfo, error) {
	if len(b) < 4 {
		return ShardInfo{}, fmt.Errorf("%w: truncated shard map", ErrProtocol)
	}
	idx := int(binary.BigEndian.Uint32(b[0:4]))
	plan, rest, err := shard.UnmarshalPlan(b[4:])
	if err != nil {
		return ShardInfo{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if len(rest) != 0 {
		return ShardInfo{}, fmt.Errorf("%w: %d trailing bytes in shard map", ErrProtocol, len(rest))
	}
	if idx < 0 || idx >= plan.Shards() {
		return ShardInfo{}, fmt.Errorf("%w: shard index %d outside %d-shard plan", ErrProtocol, idx, plan.Shards())
	}
	return ShardInfo{Index: idx, Plan: plan}, nil
}

// TOMShardPart is one shard's contribution to a routed TOM query: the
// shard index, the clamped sub-range it answered, and its MsgTOMResult
// payload (records + serialized VO) relayed verbatim.
type TOMShardPart struct {
	Shard int
	Sub   record.Range
	Blob  []byte
}

// AppendTOMShardedHeader and AppendTOMShardedPart stream a routed TOM
// result — the partition plan, the part count, then each part as shard
// index, sub-range and a length-prefixed relay blob — into a pooled
// response buffer (the router's gather path builds the frame with these
// two; DecodeTOMSharded parses it).
func AppendTOMShardedHeader(rb *RespBuf, plan shard.Plan, parts int) {
	rb.Append(plan.Marshal())
	rb.AppendUint32(uint32(parts))
}

func AppendTOMShardedPart(rb *RespBuf, shardIdx int, sub record.Range, blob []byte) {
	rb.AppendUint32(uint32(shardIdx))
	rb.Append(EncodeRange(sub))
	rb.AppendUint32(uint32(len(blob)))
	rb.Append(blob)
}

// DecodeTOMSharded parses a routed TOM result. Part blobs alias b.
func DecodeTOMSharded(b []byte) (shard.Plan, []TOMShardPart, error) {
	plan, rest, err := shard.UnmarshalPlan(b)
	if err != nil {
		return shard.Plan{}, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	b = rest
	if len(b) < 4 {
		return shard.Plan{}, nil, fmt.Errorf("%w: truncated part count", ErrProtocol)
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	b = b[4:]
	// Every part carries at least its 16-byte fixed header, bounding a
	// hostile count before the count-sized allocation.
	if n > len(b)/16 {
		return shard.Plan{}, nil, fmt.Errorf("%w: implausible part count %d for %d payload bytes", ErrProtocol, n, len(b))
	}
	parts := make([]TOMShardPart, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 16 {
			return shard.Plan{}, nil, fmt.Errorf("%w: truncated part %d header", ErrProtocol, i)
		}
		idx := int(binary.BigEndian.Uint32(b[0:4]))
		sub, err := DecodeRange(b[4:12])
		if err != nil {
			return shard.Plan{}, nil, err
		}
		bl := int(binary.BigEndian.Uint32(b[12:16]))
		b = b[16:]
		if bl > len(b) {
			return shard.Plan{}, nil, fmt.Errorf("%w: part %d blob of %d bytes exceeds payload", ErrProtocol, i, bl)
		}
		parts = append(parts, TOMShardPart{Shard: idx, Sub: sub, Blob: b[:bl]})
		b = b[bl:]
	}
	if len(b) != 0 {
		return shard.Plan{}, nil, fmt.Errorf("%w: %d trailing bytes after sharded TOM result", ErrProtocol, len(b))
	}
	return plan, parts, nil
}

// EncodeDelete serializes an owner deletion.
func EncodeDelete(id record.ID, key record.Key) []byte {
	var b [12]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(id))
	binary.BigEndian.PutUint32(b[8:12], uint32(key))
	return b[:]
}

// DecodeDelete parses an owner deletion.
func DecodeDelete(b []byte) (record.ID, record.Key, error) {
	if len(b) != 12 {
		return 0, 0, fmt.Errorf("%w: delete payload of %d bytes", ErrProtocol, len(b))
	}
	return record.ID(binary.BigEndian.Uint64(b[0:8])),
		record.Key(binary.BigEndian.Uint32(b[8:12])), nil
}

// EncodeDeletes serializes a deletion batch: count, then 12 bytes per
// deletion (id + key) in EncodeDelete's layout.
func EncodeDeletes(ids []record.ID, keys []record.Key) []byte {
	out := make([]byte, 4, 4+len(ids)*12)
	binary.BigEndian.PutUint32(out[0:4], uint32(len(ids)))
	for i := range ids {
		var b [12]byte
		binary.BigEndian.PutUint64(b[0:8], uint64(ids[i]))
		binary.BigEndian.PutUint32(b[8:12], uint32(keys[i]))
		out = append(out, b[:]...)
	}
	return out
}

// DecodeDeletes parses a deletion batch.
func DecodeDeletes(b []byte) ([]record.ID, []record.Key, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated delete count", ErrProtocol)
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	b = b[4:]
	if n > len(b)/12 {
		return nil, nil, fmt.Errorf("%w: implausible delete count %d for %d payload bytes", ErrProtocol, n, len(b))
	}
	ids := make([]record.ID, n)
	keys := make([]record.Key, n)
	for i := 0; i < n; i++ {
		ids[i] = record.ID(binary.BigEndian.Uint64(b[0:8]))
		keys[i] = record.Key(binary.BigEndian.Uint32(b[8:12]))
		b = b[12:]
	}
	return ids, keys, nil
}
