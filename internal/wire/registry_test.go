package wire

import (
	"strings"
	"testing"
)

// TestFrameRegistryDense pins the protocol's frame map: every message
// type from 1 through the highest assigned number is registered exactly
// once, with a unique name. This is the guard against the ad-hoc frame
// numbering that produced collisions-in-waiting before the registry
// existed — adding a frame without registering it, or reusing a number,
// fails here.
func TestFrameRegistryDense(t *testing.T) {
	if len(frameRegistry) == 0 {
		t.Fatal("empty frame registry")
	}
	byType := map[MsgType]string{}
	byName := map[string]MsgType{}
	var max MsgType
	for _, e := range frameRegistry {
		if prev, dup := byType[e.Type]; dup {
			t.Errorf("frame number %d registered twice: %s and %s", e.Type, prev, e.Name)
		}
		if prev, dup := byName[e.Name]; dup {
			t.Errorf("frame name %q registered twice: %d and %d", e.Name, prev, e.Type)
		}
		if e.Name == "" {
			t.Errorf("frame %d registered with an empty name", e.Type)
		}
		byType[e.Type] = e.Name
		byName[e.Name] = e.Type
		if e.Type > max {
			max = e.Type
		}
	}
	// Dense: no gaps between 1 and the highest assigned frame.
	for n := MsgType(1); n <= max; n++ {
		if _, ok := byType[n]; !ok {
			t.Errorf("frame number %d unassigned — the registry has a gap", n)
		}
	}
	if want := MsgType(39); max != want {
		t.Errorf("highest registered frame = %d, want %d (update this test when adding frames)", max, want)
	}
}

// TestFrameRegistryMatchesConstants spot-checks that registry entries
// point at the constants they name, so a renumbering in frame.go cannot
// silently detach the table from the protocol.
func TestFrameRegistryMatchesConstants(t *testing.T) {
	checks := []struct {
		typ  MsgType
		name string
	}{
		{MsgQuery, "Query"},
		{MsgVerifiedResult, "VerifiedResult"},
		{MsgPlanUpdate, "PlanUpdate"},
		{MsgFreeze, "Freeze"},
		{MsgThaw, "Thaw"},
		{MsgRetire, "Retire"},
		{MsgReshardCutover, "ReshardCutover"},
	}
	for _, c := range checks {
		if got := FrameName(c.typ); got != c.name {
			t.Errorf("FrameName(%d) = %q, want %q", c.typ, got, c.name)
		}
	}
	if got := FrameName(MsgType(250)); !strings.Contains(got, "250") {
		t.Errorf("FrameName for an unknown type = %q, want it to carry the number", got)
	}
}
