package wire

import (
	"context"
	"fmt"
	"sync"

	"sae/internal/agg"
	"sae/internal/core"
	"sae/internal/mbtree"
	"sae/internal/record"
	"sae/internal/shard"
	"sae/internal/tom"
)

// The aggregation fast path on the wire. The frames mirror the range
// protocol's shape — the client sends the query to both parties
// simultaneously — but the responses are constant-size: a 24-byte scalar
// from the SP, a 44-byte range-bound token from the TE, and under TOM an
// O(log n) aggregate VO instead of the result set. That constant response
// is the protocol's response-bytes win over scan-and-fold, which ships
// every covered record.

// Aggregate fetches the COUNT/SUM/MIN/MAX scalar for a range. The answer
// is untrusted until checked against a TE aggregate token.
func (c *SPClient) Aggregate(q record.Range) (agg.Agg, error) {
	return c.AggregateWithCtx(context.Background(), q)
}

// AggregateWithCtx is Aggregate bounded by a context (the router's
// slow-shard guard).
func (c *SPClient) AggregateWithCtx(ctx context.Context, q record.Range) (agg.Agg, error) {
	resp, err := c.roundTripCtx(ctx, Frame{Type: MsgAggQuery, Payload: EncodeRange(q)})
	if err != nil {
		return agg.Agg{}, err
	}
	return decodeAggResult(resp)
}

func decodeAggResult(resp Frame) (agg.Agg, error) {
	if resp.Type != MsgAggResult || len(resp.Payload) != agg.Size {
		return agg.Agg{}, fmt.Errorf("%w: malformed aggregate response", ErrProtocol)
	}
	return agg.FromBytes(resp.Payload), nil
}

// AggregateMany fetches the scalars for a group of ranges as one
// pipelined burst (single vectored write; a burst-mode server serves the
// group through one lane pass). Scalars align with qs.
func (c *SPClient) AggregateMany(qs []record.Range) ([]agg.Agg, error) {
	reqs := make([]Frame, len(qs))
	for i, q := range qs {
		reqs[i] = Frame{Type: MsgAggQuery, Payload: EncodeRange(q)}
	}
	resps, err := c.roundTripMany(reqs)
	if err != nil {
		return nil, err
	}
	out := make([]agg.Agg, len(qs))
	for i := range resps {
		if out[i], err = decodeAggResult(resps[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AggToken fetches the aggregate verification token for a range.
func (c *TEClient) AggToken(q record.Range) (agg.Token, error) {
	return c.AggTokenWithCtx(context.Background(), q)
}

// AggTokenWithCtx is AggToken bounded by a context.
func (c *TEClient) AggTokenWithCtx(ctx context.Context, q record.Range) (agg.Token, error) {
	resp, err := c.roundTripCtx(ctx, Frame{Type: MsgAggTokenReq, Payload: EncodeRange(q)})
	if err != nil {
		return agg.Token{}, err
	}
	return decodeAggToken(resp)
}

func decodeAggToken(resp Frame) (agg.Token, error) {
	if resp.Type != MsgAggToken || len(resp.Payload) != agg.TokenSize {
		return agg.Token{}, fmt.Errorf("%w: malformed aggregate token response", ErrProtocol)
	}
	return agg.TokenFromBytes(resp.Payload), nil
}

// AggTokenMany fetches the tokens for a group of ranges as one pipelined
// burst; tokens align with qs.
func (c *TEClient) AggTokenMany(qs []record.Range) ([]agg.Token, error) {
	reqs := make([]Frame, len(qs))
	for i, q := range qs {
		reqs[i] = Frame{Type: MsgAggTokenReq, Payload: EncodeRange(q)}
	}
	resps, err := c.roundTripMany(reqs)
	if err != nil {
		return nil, err
	}
	out := make([]agg.Token, len(qs))
	for i := range resps {
		if out[i], err = decodeAggToken(resps[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Aggregate runs the verified aggregation fast path over the network: the
// SP folds its B+-tree annotations while the TE issues the range-bound
// token, in parallel, and the scalar is returned only if it matches the
// token bit for bit. Both requests and both responses are constant-size,
// so the round trip costs O(log n) at the parties and O(1) bytes and
// client work regardless of how many records the range covers.
func (v *VerifyingClient) Aggregate(q record.Range) (agg.Agg, error) {
	type spOut struct {
		a   agg.Agg
		err error
	}
	type teOut struct {
		tok agg.Token
		err error
	}
	spCh := make(chan spOut, 1)
	teCh := make(chan teOut, 1)
	go func() {
		a, err := v.SP.Aggregate(q)
		spCh <- spOut{a, err}
	}()
	go func() {
		tok, err := v.TE.AggToken(q)
		teCh <- teOut{tok, err}
	}()
	sp := <-spCh
	te := <-teCh
	if sp.err != nil {
		return agg.Agg{}, fmt.Errorf("wire: SP aggregate failed: %w", sp.err)
	}
	if te.err != nil {
		return agg.Agg{}, fmt.Errorf("wire: TE aggregate token failed: %w", te.err)
	}
	if err := te.tok.Verify(q, sp.a); err != nil {
		return agg.Agg{}, fmt.Errorf("%w: %v", core.ErrVerificationFailed, err)
	}
	return sp.a, nil
}

// AggregateBurst runs a group of verified aggregate queries as one burst:
// each party receives the whole group in a single vectored write (served
// as one grouped lane pass by a burst-mode server) and every scalar is
// checked against its own token. Results align with qs; the first
// verification failure rejects the burst.
func (v *VerifyingClient) AggregateBurst(qs []record.Range) ([]agg.Agg, error) {
	type spOut struct {
		as  []agg.Agg
		err error
	}
	type teOut struct {
		toks []agg.Token
		err  error
	}
	spCh := make(chan spOut, 1)
	teCh := make(chan teOut, 1)
	go func() {
		as, err := v.SP.AggregateMany(qs)
		spCh <- spOut{as, err}
	}()
	go func() {
		toks, err := v.TE.AggTokenMany(qs)
		teCh <- teOut{toks, err}
	}()
	sp := <-spCh
	te := <-teCh
	if sp.err != nil {
		return nil, fmt.Errorf("wire: SP aggregate burst failed: %w", sp.err)
	}
	if te.err != nil {
		return nil, fmt.Errorf("wire: TE aggregate token burst failed: %w", te.err)
	}
	for i, q := range qs {
		if err := te.toks[i].Verify(q, sp.as[i]); err != nil {
			return nil, fmt.Errorf("%w: query %d %v: %v", core.ErrVerificationFailed, i, q, err)
		}
	}
	return sp.as, nil
}

// AggregateRawCtx fetches the MsgTOMAggResult payload (the serialized
// aggregate VO) still in wire form — the router's upstream relay path.
func (c *TOMClient) AggregateRawCtx(ctx context.Context, q record.Range) ([]byte, error) {
	resp, err := c.roundTripCtx(ctx, Frame{Type: MsgTOMAggQuery, Payload: EncodeRange(q)})
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgTOMAggResult {
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	return resp.Payload, nil
}

// Aggregate runs the verified TOM aggregation fast path. Under TOM the
// aggregate VO IS the answer: replaying it against the owner's signature
// produces the verified scalar, so there is no separate claimed value to
// compare. Both answer forms are accepted — a single provider's VO and a
// router's stitched per-shard evidence (MsgTOMAggShardedResult), the
// latter verified with the same stitched logic as the in-process sharded
// system: the relayed plan is untrusted, but every shard's VO signature
// binds the owner-signed plan.
func (v *VerifyingTOMClient) Aggregate(q record.Range) (agg.Agg, error) {
	resp, err := v.Provider.roundTrip(Frame{Type: MsgTOMAggQuery, Payload: EncodeRange(q)})
	if err != nil {
		return agg.Agg{}, err
	}
	switch resp.Type {
	case MsgTOMAggResult:
		vo, err := mbtree.UnmarshalVO(resp.Payload)
		if err != nil {
			return agg.Agg{}, err
		}
		return mbtreeVerifyAgg(vo, q, v)
	case MsgTOMAggShardedResult:
		return v.verifyShardedAgg(q, resp.Payload)
	default:
		return agg.Agg{}, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
}

func mbtreeVerifyAgg(vo *mbtree.VO, q record.Range, v *VerifyingTOMClient) (agg.Agg, error) {
	a, err := mbtree.VerifyAggVO(vo, q.Lo, q.Hi, v.Verifier)
	if err != nil {
		return agg.Agg{}, err
	}
	return a, nil
}

// verifyShardedAgg checks a router's stitched TOM aggregate evidence:
// decode the plan and per-shard aggregate VOs, rebuild the tom.ShardAggVO
// list and run the sharded verification (every VO replays to its shard's
// bound signed root for the plan's own clamp, then the partials
// seam-check and merge). A nil error proves the scalar for all of q with
// no trust in the router.
func (v *VerifyingTOMClient) verifyShardedAgg(q record.Range, payload []byte) (agg.Agg, error) {
	plan, parts, err := DecodeTOMSharded(payload)
	if err != nil {
		return agg.Agg{}, err
	}
	perShard := make([]tom.ShardAggVO, len(parts))
	for i, p := range parts {
		vo, err := mbtree.UnmarshalVO(p.Blob)
		if err != nil {
			return agg.Agg{}, fmt.Errorf("%w: shard %d aggregate evidence: %v", ErrProtocol, p.Shard, err)
		}
		perShard[i] = tom.ShardAggVO{Shard: p.Shard, Sub: p.Sub, VO: vo}
	}
	sc := tom.ShardedClient{Verifier: v.Verifier, Plan: plan}
	_, a, err := sc.VerifyAggregate(q, perShard)
	return a, err
}

// Aggregate scatters a verified aggregate query across the shards: every
// overlapping shard answers the clamp the client computed itself from the
// TE-attested plan (scalar and token in parallel on the shard's two
// connections), each scalar verifies against its own shard's range-bound
// token, and the partials must seam-check back into q (shard.MergeAgg)
// before merging — so a suppressed, duplicated or re-clamped partial
// fails loudly, exactly as in the in-process sharded system.
func (c *ShardedVerifyingClient) Aggregate(q record.Range) (agg.Agg, error) {
	subs := c.Plan.Scatter(q)
	if len(subs) == 0 {
		return agg.Agg{}, nil
	}
	parts := make([]shard.AggPart, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx, sub := subs[i].Shard, subs[i].Sub
			vc := c.Shards[idx]
			var inner sync.WaitGroup
			inner.Add(1)
			var tok agg.Token
			var tokErr error
			go func() {
				defer inner.Done()
				tok, tokErr = vc.TE.AggToken(sub)
			}()
			a, spErr := vc.SP.Aggregate(sub)
			inner.Wait()
			if spErr != nil {
				errs[i] = fmt.Errorf("wire: shard %d SP aggregate: %w", idx, spErr)
				return
			}
			if tokErr != nil {
				errs[i] = fmt.Errorf("wire: shard %d TE aggregate token: %w", idx, tokErr)
				return
			}
			if err := tok.Verify(sub, a); err != nil {
				errs[i] = fmt.Errorf("%w: shard %d: %v", core.ErrVerificationFailed, idx, err)
				return
			}
			parts[i] = shard.AggPart{Sub: sub, Agg: a}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return agg.Agg{}, err
		}
	}
	merged, err := shard.MergeAgg(q, parts)
	if err != nil {
		return agg.Agg{}, fmt.Errorf("%w: %v", core.ErrVerificationFailed, err)
	}
	return merged, nil
}
