package wire

import (
	"strings"
	"testing"
	"time"

	"sae/internal/record"
	"sae/internal/shard"
)

func cutoverPlan(t *testing.T, shards int, epoch uint64) shard.Plan {
	t.Helper()
	recs := make([]record.Record, 600)
	for i := range recs {
		recs[i] = record.Synthesize(record.ID(i+1), record.Key(i*1000))
	}
	return shard.PlanFor(recs, shards).WithEpoch(epoch)
}

func TestCutoverCodecRoundTrip(t *testing.T) {
	in := Cutover{
		Plan: cutoverPlan(t, 3, 7),
		Shards: []CutoverShard{
			{SPs: []string{"10.0.0.1:9000"}, TEs: []string{"10.0.0.1:9000"}},
			{SPs: []string{"10.0.0.2:9000", "10.0.0.3:9000"}, TEs: []string{"10.0.0.2:9001"}},
			{SPs: []string{"h:1"}, TEs: []string{"h:2", "h:3", "h:4"}},
		},
	}
	b, err := EncodeCutover(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeCutover(b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Plan.Equal(in.Plan) {
		t.Fatalf("plan: got %v, want %v", out.Plan, in.Plan)
	}
	if len(out.Shards) != len(in.Shards) {
		t.Fatalf("shards: got %d, want %d", len(out.Shards), len(in.Shards))
	}
	for i := range in.Shards {
		if strings.Join(out.Shards[i].SPs, ",") != strings.Join(in.Shards[i].SPs, ",") ||
			strings.Join(out.Shards[i].TEs, ",") != strings.Join(in.Shards[i].TEs, ",") {
			t.Fatalf("shard %d endpoints: got %+v, want %+v", i, out.Shards[i], in.Shards[i])
		}
	}
}

func TestCutoverCodecRejects(t *testing.T) {
	plan := cutoverPlan(t, 2, 1)
	one := []CutoverShard{{SPs: []string{"a:1"}, TEs: []string{"a:1"}}}
	two := append(one, CutoverShard{SPs: []string{"b:1"}, TEs: []string{"b:1"}})

	if _, err := EncodeCutover(Cutover{Plan: plan, Shards: one}); err == nil {
		t.Fatal("encoded a cutover with fewer shards than the plan")
	}
	if _, err := EncodeCutover(Cutover{Plan: plan, Shards: []CutoverShard{
		{SPs: nil, TEs: []string{"a:1"}}, two[1]}}); err == nil {
		t.Fatal("encoded a cutover shard with no SPs")
	}

	good, err := EncodeCutover(Cutover{Plan: plan, Shards: two})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCutover(append(good, 0)); err == nil {
		t.Fatal("decoded a cutover with trailing bytes")
	}
	for cut := 1; cut < len(good); cut += 7 {
		if _, err := DecodeCutover(good[:cut]); err == nil {
			t.Fatalf("decoded a cutover truncated to %d bytes", cut)
		}
	}
}

func TestFreezeCodecRoundTrip(t *testing.T) {
	for _, ttl := range []time.Duration{0, time.Millisecond, 250 * time.Millisecond, 5 * time.Second} {
		got, err := DecodeFreeze(EncodeFreeze(ttl))
		if err != nil {
			t.Fatal(err)
		}
		if got != ttl {
			t.Fatalf("ttl %v round-tripped to %v", ttl, got)
		}
	}
	if _, err := DecodeFreeze([]byte{1, 2, 3}); err == nil {
		t.Fatal("decoded a short freeze payload")
	}
}
