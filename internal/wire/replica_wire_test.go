package wire

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/replica"
	"sae/internal/shard"
	"sae/internal/workload"
)

// startPrimary boots a durable shard with a hub and serves it.
func startPrimary(t *testing.T, n int) (*core.DurableSystem, *replica.Hub, *PrimaryServer) {
	t.Helper()
	ds, err := workload.Generate(workload.UNF, n, 11)
	if err != nil {
		t.Fatalf("generating dataset: %v", err)
	}
	sys, err := core.OpenDurableSystem(t.TempDir(), ds.Records, 16)
	if err != nil {
		t.Fatalf("opening durable system: %v", err)
	}
	t.Cleanup(func() { sys.Close() })
	hub := replica.Attach(sys, 0)
	plan := shard.PlanFor(ds.Records, 1)
	srv, err := ServePrimary("127.0.0.1:0", sys, hub, nil, WithShardInfo(ShardInfo{Index: 0, Plan: plan}))
	if err != nil {
		t.Fatalf("serving primary: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return sys, hub, srv
}

func waitForGen(t *testing.T, addr string, gen uint64) {
	t.Helper()
	c, err := DialReplication(addr)
	if err != nil {
		t.Fatalf("dialing %s: %v", addr, err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := c.GenStamp()
		if err != nil {
			t.Fatalf("gen stamp from %s: %v", addr, err)
		}
		if got >= gen {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at generation %d, want >= %d", addr, got, gen)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPrimaryReplicaWire runs the full replication protocol over real
// sockets: bootstrap, tailing under writes, and bit-identical verified
// answers from primary and replica at the same generation stamp.
func TestPrimaryReplicaWire(t *testing.T) {
	sys, _, psrv := startPrimary(t, 1200)

	rep, si, err := BootstrapReplica(psrv.Addr())
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if si.Plan.Shards() != 1 || si.Index != 0 {
		t.Fatalf("unexpected attestation: shard %d of %d", si.Index, si.Plan.Shards())
	}
	rsrv, err := ServeReplica("127.0.0.1:0", rep, nil, WithShardInfo(si))
	if err != nil {
		t.Fatalf("serving replica: %v", err)
	}
	defer rsrv.Close()
	feed := StartReplicaFeed(rep, psrv.Addr(), nil)
	defer feed.Close()

	// Write through the primary's wire interface: the owner synthesizes
	// records client-side, the primary commits them as one group.
	wc, err := DialSP(psrv.Addr())
	if err != nil {
		t.Fatalf("dialing primary for writes: %v", err)
	}
	defer wc.Close()
	var recs []record.Record
	for i := 0; i < 40; i++ {
		recs = append(recs, record.Synthesize(record.ID(1<<40+i), record.Key(i*200_000)))
	}
	if err := wc.InsertBatch(recs); err != nil {
		t.Fatalf("insert batch: %v", err)
	}
	if err := wc.DeleteBatch([]record.ID{recs[0].ID, recs[1].ID}, []record.Key{recs[0].Key, recs[1].Key}); err != nil {
		t.Fatalf("delete batch: %v", err)
	}

	waitForGen(t, rsrv.Addr(), sys.Seq())

	// Verified answers from primary and replica must be bit-identical.
	pq, err := DialVerified(psrv.Addr())
	if err != nil {
		t.Fatalf("dialing primary verified: %v", err)
	}
	defer pq.Close()
	rq, err := DialVerified(rsrv.Addr())
	if err != nil {
		t.Fatalf("dialing replica verified: %v", err)
	}
	defer rq.Close()
	for _, q := range []record.Range{
		{Lo: 0, Hi: record.KeyDomain},
		{Lo: 1_000_000, Hi: 6_500_000},
	} {
		praw, err := pq.QueryRawVerifiedCtx(t.Context(), q)
		if err != nil {
			t.Fatalf("primary verified query %v: %v", q, err)
		}
		rraw, err := rq.QueryRawVerifiedCtx(t.Context(), q)
		if err != nil {
			t.Fatalf("replica verified query %v: %v", q, err)
		}
		if !bytes.Equal(praw, rraw) {
			t.Fatalf("verified payloads differ over %v (%d vs %d bytes)", q, len(praw), len(rraw))
		}
		// And the verifying decode path accepts them.
		if _, gen, err := rq.Query(q); err != nil {
			t.Fatalf("verifying replica answer over %v: %v", q, err)
		} else if gen != sys.Seq() {
			t.Fatalf("replica stamped %d, primary at %d", gen, sys.Seq())
		}
	}

	// The replica rejects writes.
	rc, err := DialSP(rsrv.Addr())
	if err != nil {
		t.Fatalf("dialing replica for writes: %v", err)
	}
	defer rc.Close()
	err = rc.InsertBatch(recs[:1])
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("replica write: got %v, want a ServerError", err)
	}
}

// TestVerifiedClientFreshnessFloor exercises QueryAtLeast: a client that
// has seen generation G must be able to reject an answer stamped below
// it.
func TestVerifiedClientFreshnessFloor(t *testing.T) {
	sys, _, psrv := startPrimary(t, 400)

	// A replica WITHOUT a feed: it stays at the bootstrap generation.
	rep, si, err := BootstrapReplica(psrv.Addr())
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	rsrv, err := ServeReplica("127.0.0.1:0", rep, nil, WithShardInfo(si))
	if err != nil {
		t.Fatalf("serving replica: %v", err)
	}
	defer rsrv.Close()
	stale := rep.Seq()

	// Advance the primary past the replica.
	if _, err := sys.InsertBatch([]record.Key{42, 43, 44}); err != nil {
		t.Fatalf("insert: %v", err)
	}

	rq, err := DialVerified(rsrv.Addr())
	if err != nil {
		t.Fatalf("dialing replica verified: %v", err)
	}
	defer rq.Close()
	q := record.Range{Lo: 0, Hi: 1_000_000}
	// The stale answer still VERIFIES (it is a correct answer for an
	// older generation)...
	if _, gen, err := rq.Query(q); err != nil || gen != stale {
		t.Fatalf("stale replica query: gen %d, err %v", gen, err)
	}
	// ...but a client holding the primary's stamp rejects it.
	if _, _, err := rq.QueryAtLeast(q, sys.Seq()); !errors.Is(err, ErrStaleRead) {
		t.Fatalf("QueryAtLeast on stale replica: got %v, want ErrStaleRead", err)
	}
}
