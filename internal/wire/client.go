package wire

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/mbtree"
	"sae/internal/record"
	"sae/internal/sigs"
	"sae/internal/tom"
)

// conn is a persistent pipelined connection with byte accounting. All
// client stubs embed it; it is safe for concurrent use, and concurrent
// calls PIPELINE instead of serializing: each request gets a fresh id, a
// background loop demultiplexes responses by id, so N goroutines sharing
// one connection keep N requests in flight at the server.
type conn struct {
	c net.Conn

	// wmu serializes frame writes so concurrent requests do not
	// interleave bytes on the socket.
	wmu sync.Mutex

	mu      sync.Mutex // guards everything below
	pending map[uint32]chan Frame
	nextID  uint32
	sent    int64
	receivd int64
	err     error // terminal receive-loop error; set once
}

func dial(addr string) (*conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	c := &conn{c: nc, pending: make(map[uint32]chan Frame)}
	go c.readLoop()
	return c, nil
}

// readLoop receives response frames and hands each to the waiter
// registered under its request id. On a receive error every waiter is
// failed and the connection becomes unusable.
func (c *conn) readLoop() {
	for {
		resp, err := ReadFrame(c.c)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		c.receivd += int64(HeaderSize + len(resp.Payload))
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks
		}
	}
}

// fail marks the connection broken and wakes every in-flight request.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
}

// roundTrip sends one frame and waits for its tagged response,
// translating MsgErr. Concurrent calls pipeline on the connection.
func (c *conn) roundTrip(req Frame) (Frame, error) {
	return c.roundTripCtx(context.Background(), req)
}

// roundTripCtx is roundTrip bounded by a context: if ctx expires before
// the tagged response arrives, the request is abandoned (its pending
// entry removed, so a late response is discarded by the demux loop) and
// ctx's error returned. The connection itself stays healthy — a slow
// response poisons one request, not the pipeline.
func (c *conn) roundTripCtx(ctx context.Context, req Frame) (Frame, error) {
	ch := make(chan Frame, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return Frame{}, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := WriteFrame(c.c, req)
	c.wmu.Unlock()
	if err != nil {
		// A failed write may have left a partial frame on the shared
		// stream; nothing sent after it can be framed correctly, so the
		// whole connection is broken, not just this request.
		c.fail(err)
		return Frame{}, err
	}
	c.mu.Lock()
	c.sent += int64(HeaderSize + len(req.Payload))
	c.mu.Unlock()

	var resp Frame
	var ok bool
	select {
	case resp, ok = <-ch:
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return Frame{}, fmt.Errorf("wire: request abandoned: %w", ctx.Err())
	}
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("wire: connection closed")
		}
		return Frame{}, err
	}
	if resp.Type == MsgErr {
		return Frame{}, &ServerError{Msg: string(resp.Payload)}
	}
	return resp, nil
}

// ServerError is an application-level failure the server reported in a
// well-formed MsgErr frame. The distinction matters to the router's
// failover logic: a ServerError came over a healthy connection and would
// recur on any correct upstream (bad range, unknown message), so it is
// returned to the client as-is; every other round-trip error implicates
// the connection and triggers eviction + retry.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "wire: server error: " + e.Msg }

// Err reports the connection's terminal receive-loop error, nil while the
// connection is healthy. Endpoint pools poll it to evict broken
// connections before handing them to the next request.
func (c *conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// BytesSent returns the bytes written to this connection so far.
func (c *conn) BytesSent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// BytesReceived returns the bytes read from this connection so far.
func (c *conn) BytesReceived() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.receivd
}

// Close closes the connection; in-flight requests fail.
func (c *conn) Close() error { return c.c.Close() }

// SPClient talks to an SAE service provider.
type SPClient struct{ *conn }

// DialSP connects to an SP server.
func DialSP(addr string) (*SPClient, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return &SPClient{conn: c}, nil
}

// Query fetches the result records for a range.
func (c *SPClient) Query(q record.Range) ([]record.Record, error) {
	recs, _, err := c.queryDecoded(q)
	return recs, err
}

// queryDecoded fetches and decodes a result, also returning the raw
// payload so verifying callers can hash the encoded records in place.
func (c *SPClient) queryDecoded(q record.Range) ([]record.Record, []byte, error) {
	raw, err := c.QueryRaw(q)
	if err != nil {
		return nil, nil, err
	}
	recs, rest, err := DecodeRecords(raw)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes in result", ErrProtocol, len(rest))
	}
	return recs, raw, nil
}

// QueryRaw fetches the result for a range still in wire form — the
// EncodeRecords payload (count + packed canonical records). The verifying
// client hashes these bytes in place (digest.OfWire) before ever
// materializing a record.
func (c *SPClient) QueryRaw(q record.Range) ([]byte, error) {
	return c.QueryRawCtx(context.Background(), q)
}

// QueryRawCtx is QueryRaw bounded by a context (the router's slow-shard
// guard).
func (c *SPClient) QueryRawCtx(ctx context.Context, q record.Range) ([]byte, error) {
	resp, err := c.roundTripCtx(ctx, Frame{Type: MsgQuery, Payload: EncodeRange(q)})
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgResult {
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	return resp.Payload, nil
}

// QueryBatch fetches the results of many ranges in one frame, amortizing
// framing and round-trip latency. Results align with qs.
func (c *SPClient) QueryBatch(qs []record.Range) ([][]record.Record, error) {
	raw, err := c.QueryBatchRaw(qs)
	if err != nil {
		return nil, err
	}
	batches, err := DecodeRecordBatches(raw)
	if err != nil {
		return nil, err
	}
	if len(batches) != len(qs) {
		return nil, fmt.Errorf("%w: %d batch results for %d queries", ErrProtocol, len(batches), len(qs))
	}
	return batches, nil
}

// QueryBatchRaw fetches a batched result still in wire form (the
// EncodeRecordBatches payload); see QueryRaw.
func (c *SPClient) QueryBatchRaw(qs []record.Range) ([]byte, error) {
	return c.QueryBatchRawCtx(context.Background(), qs)
}

// QueryBatchRawCtx is QueryBatchRaw bounded by a context.
func (c *SPClient) QueryBatchRawCtx(ctx context.Context, qs []record.Range) ([]byte, error) {
	resp, err := c.roundTripCtx(ctx, Frame{Type: MsgBatchQuery, Payload: EncodeRanges(qs)})
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgBatchResult {
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	return resp.Payload, nil
}

// Insert pushes an owner insertion.
func (c *SPClient) Insert(r record.Record) error {
	return c.expectAck(Frame{Type: MsgInsert, Payload: r.Marshal()})
}

// Delete pushes an owner deletion.
func (c *SPClient) Delete(id record.ID, key record.Key) error {
	return c.expectAck(Frame{Type: MsgDelete, Payload: EncodeDelete(id, key)})
}

// InsertBatch pushes a whole insertion batch in one frame; the server
// applies it as one commit group.
func (c *SPClient) InsertBatch(recs []record.Record) error {
	return c.expectAck(Frame{Type: MsgBatchInsert, Payload: EncodeRecords(recs)})
}

// DeleteBatch pushes a whole deletion batch in one frame; the server
// applies it as one commit group.
func (c *SPClient) DeleteBatch(ids []record.ID, keys []record.Key) error {
	return c.expectAck(Frame{Type: MsgBatchDelete, Payload: EncodeDeletes(ids, keys)})
}

// ShardMap asks the server which shard it is and under which partition
// plan it was loaded. Stand-alone servers answer "shard 0 of 1".
func (c *conn) ShardMap() (ShardInfo, error) {
	return c.ShardMapCtx(context.Background())
}

// ShardMapCtx is ShardMap bounded by a context (the router's health
// prober re-checks attestations on reconnect and must not hang on a sick
// upstream).
func (c *conn) ShardMapCtx(ctx context.Context) (ShardInfo, error) {
	resp, err := c.roundTripCtx(ctx, Frame{Type: MsgShardMapReq})
	if err != nil {
		return ShardInfo{}, err
	}
	if resp.Type != MsgShardMap {
		return ShardInfo{}, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	return DecodeShardInfo(resp.Payload)
}

func (c *conn) expectAck(req Frame) error {
	resp, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	if resp.Type != MsgAck {
		return fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	return nil
}

// TEClient talks to a trusted entity.
type TEClient struct{ *conn }

// DialTE connects to a TE server.
func DialTE(addr string) (*TEClient, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return &TEClient{conn: c}, nil
}

// GenerateVT fetches the verification token for a range.
func (c *TEClient) GenerateVT(q record.Range) (digest.Digest, error) {
	return c.GenerateVTWithCtx(context.Background(), q)
}

// GenerateVTWithCtx is GenerateVT bounded by a context.
func (c *TEClient) GenerateVTWithCtx(ctx context.Context, q record.Range) (digest.Digest, error) {
	resp, err := c.roundTripCtx(ctx, Frame{Type: MsgVTRequest, Payload: EncodeRange(q)})
	if err != nil {
		return digest.Zero, err
	}
	if resp.Type != MsgVT || len(resp.Payload) != digest.Size {
		return digest.Zero, fmt.Errorf("%w: malformed token response", ErrProtocol)
	}
	return digest.FromBytes(resp.Payload), nil
}

// GenerateVTBatch fetches the tokens for many ranges in one frame.
// Tokens align with qs.
func (c *TEClient) GenerateVTBatch(qs []record.Range) ([]digest.Digest, error) {
	return c.GenerateVTBatchCtx(context.Background(), qs)
}

// GenerateVTBatchCtx is GenerateVTBatch bounded by a context.
func (c *TEClient) GenerateVTBatchCtx(ctx context.Context, qs []record.Range) ([]digest.Digest, error) {
	resp, err := c.roundTripCtx(ctx, Frame{Type: MsgBatchVT, Payload: EncodeRanges(qs)})
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgBatchVTResult {
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	vts, err := DecodeDigests(resp.Payload)
	if err != nil {
		return nil, err
	}
	if len(vts) != len(qs) {
		return nil, fmt.Errorf("%w: %d tokens for %d queries", ErrProtocol, len(vts), len(qs))
	}
	return vts, nil
}

// Insert pushes an owner insertion.
func (c *TEClient) Insert(r record.Record) error {
	return c.expectAck(Frame{Type: MsgInsert, Payload: r.Marshal()})
}

// Delete pushes an owner deletion.
func (c *TEClient) Delete(id record.ID, key record.Key) error {
	return c.expectAck(Frame{Type: MsgDelete, Payload: EncodeDelete(id, key)})
}

// InsertBatch pushes a whole insertion batch in one frame; the server
// applies it as one commit group (one lock, one digest dispatch).
func (c *TEClient) InsertBatch(recs []record.Record) error {
	return c.expectAck(Frame{Type: MsgBatchInsert, Payload: EncodeRecords(recs)})
}

// DeleteBatch pushes a whole deletion batch in one frame.
func (c *TEClient) DeleteBatch(ids []record.ID, keys []record.Key) error {
	return c.expectAck(Frame{Type: MsgBatchDelete, Payload: EncodeDeletes(ids, keys)})
}

// TOMClient talks to a TOM provider.
type TOMClient struct{ *conn }

// DialTOM connects to a TOM provider server.
func DialTOM(addr string) (*TOMClient, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return &TOMClient{conn: c}, nil
}

// Query fetches result records plus their verification object from a
// single (unsharded) TOM provider.
func (c *TOMClient) Query(q record.Range) ([]record.Record, *mbtree.VO, error) {
	resp, err := c.queryFrame(q)
	if err != nil {
		return nil, nil, err
	}
	if resp.Type != MsgTOMResult {
		return nil, nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	return decodeTOMResult(resp.Payload)
}

// queryFrame sends a TOM query and returns the raw response frame, which
// may be a single-provider MsgTOMResult or a router's MsgTOMShardedResult.
func (c *TOMClient) queryFrame(q record.Range) (Frame, error) {
	return c.roundTrip(Frame{Type: MsgTOMQuery, Payload: EncodeRange(q)})
}

// QueryRawCtx fetches the MsgTOMResult payload (records + VO) still in
// wire form — the router's upstream relay path.
func (c *TOMClient) QueryRawCtx(ctx context.Context, q record.Range) ([]byte, error) {
	resp, err := c.roundTripCtx(ctx, Frame{Type: MsgTOMQuery, Payload: EncodeRange(q)})
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgTOMResult {
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	return resp.Payload, nil
}

// decodeTOMResult splits a MsgTOMResult payload into records and VO.
func decodeTOMResult(payload []byte) ([]record.Record, *mbtree.VO, error) {
	recs, rest, err := DecodeRecords(payload)
	if err != nil {
		return nil, nil, err
	}
	vo, err := mbtree.UnmarshalVO(rest)
	if err != nil {
		return nil, nil, err
	}
	return recs, vo, nil
}

// VerifyingClient performs the full SAE protocol over the network: it
// queries the SP and the TE concurrently (the paper's latency optimization)
// and verifies the result before returning it.
//
// Verification takes the zero-copy fast path: the SP's payload is hashed
// record-by-record where it sits in the received frame (no intermediate
// record materialization, SHA-NI digests, fanned out across
// VerifyWorkers goroutines) and only then decoded for the caller.
type VerifyingClient struct {
	SP *SPClient
	TE *TEClient
	// VerifyWorkers bounds the verification fan-out; 0 selects the
	// default crypto pool size (digest.DefaultWorkers).
	VerifyWorkers int
}

// DialVerifying connects to both SAE parties.
func DialVerifying(spAddr, teAddr string) (*VerifyingClient, error) {
	sp, err := DialSP(spAddr)
	if err != nil {
		return nil, err
	}
	te, err := DialTE(teAddr)
	if err != nil {
		sp.Close()
		return nil, err
	}
	return &VerifyingClient{SP: sp, TE: te}, nil
}

// Close closes both connections.
func (v *VerifyingClient) Close() error {
	err1 := v.SP.Close()
	err2 := v.TE.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Query runs the verified range query. It returns the records only if they
// passed verification against the TE's token.
func (v *VerifyingClient) Query(q record.Range) ([]record.Record, error) {
	type spOut struct {
		raw []byte
		err error
	}
	type teOut struct {
		vt  digest.Digest
		err error
	}
	spCh := make(chan spOut, 1)
	teCh := make(chan teOut, 1)
	go func() {
		raw, err := v.SP.QueryRaw(q)
		spCh <- spOut{raw, err}
	}()
	go func() {
		vt, err := v.TE.GenerateVT(q)
		teCh <- teOut{vt, err}
	}()
	sp := <-spCh
	te := <-teCh
	if sp.err != nil {
		return nil, fmt.Errorf("wire: SP query failed: %w", sp.err)
	}
	if te.err != nil {
		return nil, fmt.Errorf("wire: TE token failed: %w", te.err)
	}
	enc, rest, _, err := RecordsView(sp.raw)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in result", ErrProtocol, len(rest))
	}
	// Verify straight off the wire bytes; decode only a proven result.
	vp := core.NewVerifyPool(v.VerifyWorkers)
	if _, err := vp.VerifyEncoded(q, enc, te.vt); err != nil {
		return nil, err
	}
	recs, _, err := DecodeRecords(sp.raw)
	if err != nil {
		return nil, err
	}
	return recs, nil
}

// QueryBatch runs many verified range queries with one frame to each
// party: the SP executes the batch while the TE generates all tokens, and
// every result is verified against its token — in place, off the wire
// bytes — before any record is decoded.
func (v *VerifyingClient) QueryBatch(qs []record.Range) ([][]record.Record, error) {
	type spOut struct {
		raw []byte
		err error
	}
	type teOut struct {
		vts []digest.Digest
		err error
	}
	spCh := make(chan spOut, 1)
	teCh := make(chan teOut, 1)
	go func() {
		raw, err := v.SP.QueryBatchRaw(qs)
		spCh <- spOut{raw, err}
	}()
	go func() {
		vts, err := v.TE.GenerateVTBatch(qs)
		teCh <- teOut{vts, err}
	}()
	sp := <-spCh
	te := <-teCh
	if sp.err != nil {
		return nil, fmt.Errorf("wire: SP batch query failed: %w", sp.err)
	}
	if te.err != nil {
		return nil, fmt.Errorf("wire: TE batch token failed: %w", te.err)
	}
	if len(te.vts) != len(qs) {
		return nil, fmt.Errorf("%w: %d tokens for %d queries", ErrProtocol, len(te.vts), len(qs))
	}
	b := sp.raw
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: truncated batch count", ErrProtocol)
	}
	if n := int(binary.BigEndian.Uint32(b[0:4])); n != len(qs) {
		return nil, fmt.Errorf("%w: %d batch results for %d queries", ErrProtocol, n, len(qs))
	}
	b = b[4:]
	vp := core.NewVerifyPool(v.VerifyWorkers)
	batches := make([][]record.Record, len(qs))
	for i, q := range qs {
		enc, rest, _, err := RecordsView(b)
		if err != nil {
			return nil, fmt.Errorf("%w: batch entry %d: %v", ErrProtocol, i, err)
		}
		if _, err := vp.VerifyEncoded(q, enc, te.vts[i]); err != nil {
			return nil, err
		}
		recs, _, err := DecodeRecords(b)
		if err != nil {
			return nil, fmt.Errorf("%w: batch entry %d: %v", ErrProtocol, i, err)
		}
		batches[i] = recs
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrProtocol, len(b))
	}
	return batches, nil
}

// VerifyingTOMClient performs the full TOM protocol over the network. It
// accepts both answer forms: a single provider's records + VO, and a
// router's stitched per-shard evidence (MsgTOMShardedResult), which it
// verifies with the same stitched-VO logic as the in-process sharded
// system — the relayed plan is untrusted, but every shard's VO signature
// binds the owner-signed plan, so a router cannot forge the topology.
type VerifyingTOMClient struct {
	Provider *TOMClient
	Verifier *sigs.Verifier
	// VerifyWorkers bounds the VO re-hashing fan-out; 0 selects the
	// default crypto pool size.
	VerifyWorkers int
}

// Query runs the verified TOM range query.
func (v *VerifyingTOMClient) Query(q record.Range) ([]record.Record, error) {
	resp, err := v.Provider.queryFrame(q)
	if err != nil {
		return nil, err
	}
	switch resp.Type {
	case MsgTOMResult:
		recs, vo, err := decodeTOMResult(resp.Payload)
		if err != nil {
			return nil, err
		}
		if err := mbtree.VerifyVOWorkers(vo, recs, q.Lo, q.Hi, v.Verifier, v.VerifyWorkers); err != nil {
			return nil, err
		}
		return recs, nil
	case MsgTOMShardedResult:
		return v.verifySharded(q, resp.Payload)
	default:
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
}

// verifySharded checks a router's stitched TOM evidence: decode the plan
// and per-shard parts, rebuild the tom.ShardVO list and run the sharded
// client verification (boundary continuity from the plan's own clamps,
// shard-identity-bound signatures per VO). A nil error proves the merged
// result sound and complete for all of q, with no trust in the router.
func (v *VerifyingTOMClient) verifySharded(q record.Range, payload []byte) ([]record.Record, error) {
	plan, parts, err := DecodeTOMSharded(payload)
	if err != nil {
		return nil, err
	}
	perShard := make([]tom.ShardVO, len(parts))
	var merged []record.Record
	for i, p := range parts {
		recs, vo, err := decodeTOMResult(p.Blob)
		if err != nil {
			return nil, fmt.Errorf("%w: shard %d evidence: %v", ErrProtocol, p.Shard, err)
		}
		perShard[i] = tom.ShardVO{Shard: p.Shard, Sub: p.Sub, Result: recs, VO: vo}
		merged = append(merged, recs...)
	}
	sc := tom.ShardedClient{Verifier: v.Verifier, Plan: plan}
	if _, err := sc.Verify(q, perShard); err != nil {
		return nil, err
	}
	return merged, nil
}

// roundTripMany pipelines a group of requests as one unit: every frame's
// id is assigned under one registration, the whole group goes to the
// socket in a single vectored write (one syscall instead of 2 per
// frame), and the responses — demultiplexed by id as usual — are
// collected in request order. This is the client half of burst serving:
// a group sent this way lands in the server's read buffer together, so a
// burst-mode server drains it in one read wakeup and serves it as one
// unit. Responses align with reqs; the first MsgErr response aborts with
// its query index (later responses drain harmlessly through the demux
// loop).
func (c *conn) roundTripMany(reqs []Frame) ([]Frame, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	chs := make([]chan Frame, len(reqs))
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	for i := range reqs {
		c.nextID++
		reqs[i].ID = c.nextID
		chs[i] = make(chan Frame, 1)
		c.pending[reqs[i].ID] = chs[i]
	}
	c.mu.Unlock()

	hdrs := make([]byte, len(reqs)*HeaderSize)
	iov := make(net.Buffers, 0, 2*len(reqs))
	total := 0
	for i := range reqs {
		h := hdrs[i*HeaderSize : (i+1)*HeaderSize]
		h[0] = byte(reqs[i].Type)
		binary.BigEndian.PutUint32(h[1:5], reqs[i].ID)
		binary.BigEndian.PutUint32(h[5:9], uint32(len(reqs[i].Payload)))
		iov = append(iov, h)
		if len(reqs[i].Payload) > 0 {
			iov = append(iov, reqs[i].Payload)
		}
		total += HeaderSize + len(reqs[i].Payload)
	}
	c.wmu.Lock()
	_, err := iov.WriteTo(c.c)
	c.wmu.Unlock()
	if err != nil {
		// A partial gather write breaks the framing for everything after
		// it, exactly like a failed WriteFrame.
		c.fail(err)
		return nil, err
	}
	c.mu.Lock()
	c.sent += int64(total)
	c.mu.Unlock()

	resps := make([]Frame, len(reqs))
	for i, ch := range chs {
		resp, ok := <-ch
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("wire: connection closed")
			}
			return nil, err
		}
		if resp.Type == MsgErr {
			return nil, fmt.Errorf("wire: server error (query %d): %s", i, resp.Payload)
		}
		resps[i] = resp
	}
	return resps, nil
}

// QueryRawMany fetches the results for a group of ranges as one
// pipelined burst — one request frame per query (so a burst-mode server
// groups them through the multicore serve lanes), all sent in a single
// vectored write. Payloads align with qs, each in EncodeRecords wire
// form.
func (c *SPClient) QueryRawMany(qs []record.Range) ([][]byte, error) {
	reqs := make([]Frame, len(qs))
	for i, q := range qs {
		reqs[i] = Frame{Type: MsgQuery, Payload: EncodeRange(q)}
	}
	resps, err := c.roundTripMany(reqs)
	if err != nil {
		return nil, err
	}
	raws := make([][]byte, len(qs))
	for i := range resps {
		if resps[i].Type != MsgResult {
			return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resps[i].Type)
		}
		raws[i] = resps[i].Payload
	}
	return raws, nil
}

// GenerateVTMany fetches the tokens for a group of ranges as one
// pipelined burst; tokens align with qs.
func (c *TEClient) GenerateVTMany(qs []record.Range) ([]digest.Digest, error) {
	reqs := make([]Frame, len(qs))
	for i, q := range qs {
		reqs[i] = Frame{Type: MsgVTRequest, Payload: EncodeRange(q)}
	}
	resps, err := c.roundTripMany(reqs)
	if err != nil {
		return nil, err
	}
	vts := make([]digest.Digest, len(qs))
	for i := range resps {
		if resps[i].Type != MsgVT || len(resps[i].Payload) != digest.Size {
			return nil, fmt.Errorf("%w: malformed token response", ErrProtocol)
		}
		vts[i] = digest.FromBytes(resps[i].Payload)
	}
	return vts, nil
}

// QueryRawMany fetches the records+VO payloads for a group of ranges as
// one pipelined burst; payloads align with qs.
func (c *TOMClient) QueryRawMany(qs []record.Range) ([][]byte, error) {
	reqs := make([]Frame, len(qs))
	for i, q := range qs {
		reqs[i] = Frame{Type: MsgTOMQuery, Payload: EncodeRange(q)}
	}
	resps, err := c.roundTripMany(reqs)
	if err != nil {
		return nil, err
	}
	raws := make([][]byte, len(qs))
	for i := range resps {
		if resps[i].Type != MsgTOMResult {
			return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resps[i].Type)
		}
		raws[i] = resps[i].Payload
	}
	return raws, nil
}

// QueryBurst runs a group of verified range queries as one burst: the SP
// and TE each receive the whole group in a single vectored write (served
// as one unit by a burst-mode server), and the results are verified with
// ONE digest-worker dispatch over every payload in the group
// (VerifyEncodedBurst) instead of one fan-out per query. Results align
// with qs; any verification failure rejects the whole burst.
func (v *VerifyingClient) QueryBurst(qs []record.Range) ([][]record.Record, error) {
	type spOut struct {
		raws [][]byte
		err  error
	}
	type teOut struct {
		vts []digest.Digest
		err error
	}
	spCh := make(chan spOut, 1)
	teCh := make(chan teOut, 1)
	go func() {
		raws, err := v.SP.QueryRawMany(qs)
		spCh <- spOut{raws, err}
	}()
	go func() {
		vts, err := v.TE.GenerateVTMany(qs)
		teCh <- teOut{vts, err}
	}()
	sp := <-spCh
	te := <-teCh
	if sp.err != nil {
		return nil, fmt.Errorf("wire: SP burst query failed: %w", sp.err)
	}
	if te.err != nil {
		return nil, fmt.Errorf("wire: TE burst token failed: %w", te.err)
	}
	encs := make([][]byte, len(qs))
	for i, raw := range sp.raws {
		enc, rest, _, err := RecordsView(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: burst entry %d: %v", ErrProtocol, i, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes in result %d", ErrProtocol, len(rest), i)
		}
		encs[i] = enc
	}
	vp := core.NewVerifyPool(v.VerifyWorkers)
	if _, err := vp.VerifyEncodedBurst(qs, encs, te.vts, nil); err != nil {
		return nil, err
	}
	results := make([][]record.Record, len(qs))
	for i, raw := range sp.raws {
		recs, _, err := DecodeRecords(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: burst entry %d: %v", ErrProtocol, i, err)
		}
		results[i] = recs
	}
	return results, nil
}

// InsertBatch pushes a whole insertion batch in one frame; the provider
// applies it as one group with a single owner re-sign.
func (c *TOMClient) InsertBatch(recs []record.Record) error {
	return c.expectAck(Frame{Type: MsgBatchInsert, Payload: EncodeRecords(recs)})
}

// DeleteBatch pushes a whole deletion batch in one frame.
func (c *TOMClient) DeleteBatch(ids []record.ID, keys []record.Key) error {
	return c.expectAck(Frame{Type: MsgBatchDelete, Payload: EncodeDeletes(ids, keys)})
}

// OwnerClient is a remote data owner: it keeps the authoritative id→key
// catalog on the client side (the owner maintains no authentication
// structures — the point of SAE) and pushes update batches to the SP and
// TE so each wire batch commits as ONE group at each party instead of a
// round trip per record.
type OwnerClient struct {
	sp *SPClient
	te *TEClient

	mu     sync.Mutex
	keys   map[record.ID]record.Key
	nextID record.ID
}

// NewOwnerClient wraps connected SP/TE clients as a remote owner. seed
// registers the already-outsourced dataset so deletions can be routed
// and fresh ids never collide.
func NewOwnerClient(sp *SPClient, te *TEClient, seed []record.Record) *OwnerClient {
	oc := &OwnerClient{sp: sp, te: te, keys: make(map[record.ID]record.Key, len(seed)), nextID: 1}
	for i := range seed {
		oc.keys[seed[i].ID] = seed[i].Key
		if seed[i].ID >= oc.nextID {
			oc.nextID = seed[i].ID + 1
		}
	}
	return oc
}

// DialOwner connects a remote owner to its SP and TE endpoints.
func DialOwner(spAddr, teAddr string, seed []record.Record) (*OwnerClient, error) {
	sp, err := DialSP(spAddr)
	if err != nil {
		return nil, err
	}
	te, err := DialTE(teAddr)
	if err != nil {
		sp.Close()
		return nil, err
	}
	return NewOwnerClient(sp, te, seed), nil
}

// Count returns the owner's live record count.
func (oc *OwnerClient) Count() int {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	return len(oc.keys)
}

// InsertBatch synthesizes one fresh-id record per key and pushes the
// whole batch to the SP and the TE in one frame each.
func (oc *OwnerClient) InsertBatch(keys []record.Key) ([]record.Record, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	oc.mu.Lock()
	recs := make([]record.Record, len(keys))
	for i, k := range keys {
		recs[i] = record.Synthesize(oc.nextID, k)
		oc.nextID++
	}
	oc.mu.Unlock()
	if err := oc.sp.InsertBatch(recs); err != nil {
		return nil, fmt.Errorf("wire: owner pushing insert batch to SP: %w", err)
	}
	if err := oc.te.InsertBatch(recs); err != nil {
		return nil, fmt.Errorf("wire: owner pushing insert batch to TE: %w", err)
	}
	oc.mu.Lock()
	for i := range recs {
		oc.keys[recs[i].ID] = recs[i].Key
	}
	oc.mu.Unlock()
	return recs, nil
}

// DeleteBatch pushes a whole deletion batch to the SP and the TE in one
// frame each. Unknown ids fail the call before anything is sent.
func (oc *OwnerClient) DeleteBatch(ids []record.ID) error {
	if len(ids) == 0 {
		return nil
	}
	oc.mu.Lock()
	keys := make([]record.Key, len(ids))
	for i, id := range ids {
		k, ok := oc.keys[id]
		if !ok {
			oc.mu.Unlock()
			return fmt.Errorf("wire: owner has no record with id %d", id)
		}
		keys[i] = k
	}
	oc.mu.Unlock()
	if err := oc.sp.DeleteBatch(ids, keys); err != nil {
		return fmt.Errorf("wire: owner pushing delete batch to SP: %w", err)
	}
	if err := oc.te.DeleteBatch(ids, keys); err != nil {
		return fmt.Errorf("wire: owner pushing delete batch to TE: %w", err)
	}
	oc.mu.Lock()
	for _, id := range ids {
		delete(oc.keys, id)
	}
	oc.mu.Unlock()
	return nil
}

// Close closes both party connections.
func (oc *OwnerClient) Close() error {
	err1 := oc.sp.Close()
	err2 := oc.te.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
