package wire

import (
	"fmt"
	"net"
	"sync"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/mbtree"
	"sae/internal/record"
	"sae/internal/sigs"
)

// conn is a persistent request/response connection with byte accounting.
// All client stubs embed it; it is safe for concurrent use (requests are
// serialized).
type conn struct {
	mu      sync.Mutex
	c       net.Conn
	sent    int64
	receivd int64
}

func dial(addr string) (*conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	return &conn{c: c}, nil
}

// roundTrip sends one frame and reads the response, translating MsgErr.
func (c *conn) roundTrip(req Frame) (Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.c, req); err != nil {
		return Frame{}, err
	}
	c.sent += int64(5 + len(req.Payload))
	resp, err := ReadFrame(c.c)
	if err != nil {
		return Frame{}, err
	}
	c.receivd += int64(5 + len(resp.Payload))
	if resp.Type == MsgErr {
		return Frame{}, fmt.Errorf("wire: server error: %s", resp.Payload)
	}
	return resp, nil
}

// BytesSent returns the bytes written to this connection so far.
func (c *conn) BytesSent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// BytesReceived returns the bytes read from this connection so far.
func (c *conn) BytesReceived() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.receivd
}

// Close closes the connection.
func (c *conn) Close() error { return c.c.Close() }

// SPClient talks to an SAE service provider.
type SPClient struct{ *conn }

// DialSP connects to an SP server.
func DialSP(addr string) (*SPClient, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return &SPClient{conn: c}, nil
}

// Query fetches the result records for a range.
func (c *SPClient) Query(q record.Range) ([]record.Record, error) {
	resp, err := c.roundTrip(Frame{Type: MsgQuery, Payload: EncodeRange(q)})
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgResult {
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	recs, rest, err := DecodeRecords(resp.Payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in result", ErrProtocol, len(rest))
	}
	return recs, nil
}

// Insert pushes an owner insertion.
func (c *SPClient) Insert(r record.Record) error {
	return c.expectAck(Frame{Type: MsgInsert, Payload: r.Marshal()})
}

// Delete pushes an owner deletion.
func (c *SPClient) Delete(id record.ID, key record.Key) error {
	return c.expectAck(Frame{Type: MsgDelete, Payload: EncodeDelete(id, key)})
}

func (c *conn) expectAck(req Frame) error {
	resp, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	if resp.Type != MsgAck {
		return fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	return nil
}

// TEClient talks to a trusted entity.
type TEClient struct{ *conn }

// DialTE connects to a TE server.
func DialTE(addr string) (*TEClient, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return &TEClient{conn: c}, nil
}

// GenerateVT fetches the verification token for a range.
func (c *TEClient) GenerateVT(q record.Range) (digest.Digest, error) {
	resp, err := c.roundTrip(Frame{Type: MsgVTRequest, Payload: EncodeRange(q)})
	if err != nil {
		return digest.Zero, err
	}
	if resp.Type != MsgVT || len(resp.Payload) != digest.Size {
		return digest.Zero, fmt.Errorf("%w: malformed token response", ErrProtocol)
	}
	return digest.FromBytes(resp.Payload), nil
}

// Insert pushes an owner insertion.
func (c *TEClient) Insert(r record.Record) error {
	return c.expectAck(Frame{Type: MsgInsert, Payload: r.Marshal()})
}

// Delete pushes an owner deletion.
func (c *TEClient) Delete(id record.ID, key record.Key) error {
	return c.expectAck(Frame{Type: MsgDelete, Payload: EncodeDelete(id, key)})
}

// TOMClient talks to a TOM provider.
type TOMClient struct{ *conn }

// DialTOM connects to a TOM provider server.
func DialTOM(addr string) (*TOMClient, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return &TOMClient{conn: c}, nil
}

// Query fetches result records plus their verification object.
func (c *TOMClient) Query(q record.Range) ([]record.Record, *mbtree.VO, error) {
	resp, err := c.roundTrip(Frame{Type: MsgTOMQuery, Payload: EncodeRange(q)})
	if err != nil {
		return nil, nil, err
	}
	if resp.Type != MsgTOMResult {
		return nil, nil, fmt.Errorf("%w: unexpected response type %d", ErrProtocol, resp.Type)
	}
	recs, rest, err := DecodeRecords(resp.Payload)
	if err != nil {
		return nil, nil, err
	}
	vo, err := mbtree.UnmarshalVO(rest)
	if err != nil {
		return nil, nil, err
	}
	return recs, vo, nil
}

// VerifyingClient performs the full SAE protocol over the network: it
// queries the SP and the TE concurrently (the paper's latency optimization)
// and verifies the result before returning it.
type VerifyingClient struct {
	SP *SPClient
	TE *TEClient
}

// DialVerifying connects to both SAE parties.
func DialVerifying(spAddr, teAddr string) (*VerifyingClient, error) {
	sp, err := DialSP(spAddr)
	if err != nil {
		return nil, err
	}
	te, err := DialTE(teAddr)
	if err != nil {
		sp.Close()
		return nil, err
	}
	return &VerifyingClient{SP: sp, TE: te}, nil
}

// Close closes both connections.
func (v *VerifyingClient) Close() error {
	err1 := v.SP.Close()
	err2 := v.TE.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Query runs the verified range query. It returns the records only if they
// passed verification against the TE's token.
func (v *VerifyingClient) Query(q record.Range) ([]record.Record, error) {
	type spOut struct {
		recs []record.Record
		err  error
	}
	type teOut struct {
		vt  digest.Digest
		err error
	}
	spCh := make(chan spOut, 1)
	teCh := make(chan teOut, 1)
	go func() {
		recs, err := v.SP.Query(q)
		spCh <- spOut{recs, err}
	}()
	go func() {
		vt, err := v.TE.GenerateVT(q)
		teCh <- teOut{vt, err}
	}()
	sp := <-spCh
	te := <-teCh
	if sp.err != nil {
		return nil, fmt.Errorf("wire: SP query failed: %w", sp.err)
	}
	if te.err != nil {
		return nil, fmt.Errorf("wire: TE token failed: %w", te.err)
	}
	var client core.Client
	if _, err := client.Verify(q, sp.recs, te.vt); err != nil {
		return nil, err
	}
	return sp.recs, nil
}

// VerifyingTOMClient performs the full TOM protocol over the network.
type VerifyingTOMClient struct {
	Provider *TOMClient
	Verifier *sigs.Verifier
}

// Query runs the verified TOM range query.
func (v *VerifyingTOMClient) Query(q record.Range) ([]record.Record, error) {
	recs, vo, err := v.Provider.Query(q)
	if err != nil {
		return nil, err
	}
	if err := mbtree.VerifyVO(vo, recs, q.Lo, q.Hi, v.Verifier); err != nil {
		return nil, err
	}
	return recs, nil
}
