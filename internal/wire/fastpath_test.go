package wire

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"sae/internal/core"
	"sae/internal/pagestore"
	"sae/internal/record"
)

func fastpathDataset(n int) []record.Record {
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Synthesize(record.ID(i+1), record.Key((i*4801)%record.KeyDomain))
	}
	sort.Slice(recs, func(i, j int) bool { return record.SortByKey(recs[i], recs[j]) < 0 })
	return recs
}

// TestResponseBufferReuseAfterFlight hammers one SP server with many
// concurrent pipelined queries of different sizes from several
// connections, so pooled response buffers are constantly recycled across
// in-flight requests. Every response must carry exactly its own query's
// records — a buffer reused before its frame finished writing would
// corrupt interleaved responses. Run under -race in CI.
func TestResponseBufferReuseAfterFlight(t *testing.T) {
	recs := fastpathDataset(4000)
	sp := core.NewServiceProvider(pagestore.NewMem())
	if err := sp.Load(recs); err != nil {
		t.Fatalf("SP load: %v", err)
	}
	srv, err := ServeSP("127.0.0.1:0", sp, nil)
	if err != nil {
		t.Fatalf("ServeSP: %v", err)
	}
	defer srv.Close()

	// Reference results computed locally.
	refFor := func(q record.Range) []record.Record {
		var out []record.Record
		for i := range recs {
			if q.Contains(recs[i].Key) {
				out = append(out, recs[i])
			}
		}
		return out
	}
	queries := make([]record.Range, 16)
	refs := make([][]record.Record, len(queries))
	for i := range queries {
		lo := recs[(i*211)%3800].Key
		hi := recs[(i*211)%3800+17*(i%12)].Key
		if hi < lo {
			lo, hi = hi, lo
		}
		queries[i] = record.Range{Lo: lo, Hi: hi}
		refs[i] = refFor(queries[i])
	}

	const conns = 4
	const perConn = 6
	var wg sync.WaitGroup
	errs := make(chan error, conns*perConn)
	for c := 0; c < conns; c++ {
		client, err := DialSP(srv.Addr())
		if err != nil {
			t.Fatalf("DialSP: %v", err)
		}
		defer client.Close()
		for g := 0; g < perConn; g++ {
			wg.Add(1)
			go func(client *SPClient, seed int) {
				defer wg.Done()
				for i := 0; i < 30; i++ {
					qi := (seed*13 + i) % len(queries)
					got, err := client.Query(queries[qi])
					if err != nil {
						errs <- fmt.Errorf("query %d: %w", qi, err)
						return
					}
					want := refs[qi]
					if len(got) != len(want) {
						errs <- fmt.Errorf("query %d: %d records, want %d", qi, len(got), len(want))
						return
					}
					for j := range want {
						if !got[j].Equal(&want[j]) {
							errs <- fmt.Errorf("query %d: record %d corrupted (buffer reuse?)", qi, j)
							return
						}
					}
				}
			}(client, c*perConn+g)
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestVerifyingClientFastPath runs the full verified protocol over TCP —
// zero-copy wire verification against real TE tokens — including a
// tampering SP that must be caught.
func TestVerifyingClientFastPath(t *testing.T) {
	recs := fastpathDataset(3000)
	sp := core.NewServiceProvider(pagestore.NewMem())
	te := core.NewTrustedEntity(pagestore.NewMem())
	if err := sp.Load(recs); err != nil {
		t.Fatalf("SP load: %v", err)
	}
	if err := te.Load(recs); err != nil {
		t.Fatalf("TE load: %v", err)
	}
	spSrv, err := ServeSP("127.0.0.1:0", sp, nil)
	if err != nil {
		t.Fatalf("ServeSP: %v", err)
	}
	defer spSrv.Close()
	teSrv, err := ServeTE("127.0.0.1:0", te, nil)
	if err != nil {
		t.Fatalf("ServeTE: %v", err)
	}
	defer teSrv.Close()

	client, err := DialVerifying(spSrv.Addr(), teSrv.Addr())
	if err != nil {
		t.Fatalf("DialVerifying: %v", err)
	}
	defer client.Close()

	q := record.Range{Lo: recs[100].Key, Hi: recs[900].Key}
	got, err := client.Query(q)
	if err != nil {
		t.Fatalf("verified query: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("empty verified result for a populated range")
	}
	for i := range got {
		if !q.Contains(got[i].Key) {
			t.Fatalf("record %d outside range", i)
		}
	}

	// Batch path too.
	qs := []record.Range{q, {Lo: 1, Hi: 2}, {Lo: recs[2000].Key, Hi: recs[2500].Key}}
	batches, err := client.QueryBatch(qs)
	if err != nil {
		t.Fatalf("verified batch: %v", err)
	}
	if len(batches) != len(qs) {
		t.Fatalf("%d batches for %d queries", len(batches), len(qs))
	}
	if len(batches[0]) != len(got) {
		t.Fatalf("batch result %d records, single result %d", len(batches[0]), len(got))
	}

	// A tampering SP must fail verification through the zero-copy path.
	sp.SetTamper(core.DropTamper(0))
	if _, err := client.Query(q); err == nil {
		t.Fatal("zero-copy verification accepted a tampered result")
	}
	sp.SetTamper(nil)
	if _, err := client.Query(q); err != nil {
		t.Fatalf("verification after clearing tamper: %v", err)
	}
}
