package wire

import (
	"sync"
	"testing"

	"sae/internal/record"
	"sae/internal/workload"
)

// expectCount tallies how many dataset records a range should return.
func expectCount(ds *workload.Dataset, q record.Range) int {
	want := 0
	for i := range ds.Records {
		if q.Contains(ds.Records[i].Key) {
			want++
		}
	}
	return want
}

// TestPipelinedSharedConnection drives one SP connection from many
// goroutines at once. Each request is tagged with its own id and the
// responses — possibly out of order — must land at the right caller, so
// every result's cardinality must match its own query.
func TestPipelinedSharedConnection(t *testing.T) {
	spSrv, _, ds := launchSAE(t, 5000)
	client, err := DialSP(spSrv.Addr())
	if err != nil {
		t.Fatalf("DialSP: %v", err)
	}
	defer client.Close()

	queries := workload.Queries(16, workload.DefaultExtent, 70)
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				q := queries[(w*3+rep)%len(queries)]
				recs, err := client.Query(q)
				if err != nil {
					errCh <- err
					return
				}
				if len(recs) != expectCount(ds, q) {
					errCh <- &mismatchErr{q: q, got: len(recs), want: expectCount(ds, q)}
					return
				}
				for i := range recs {
					if !q.Contains(recs[i].Key) {
						errCh <- &mismatchErr{q: q, got: -1, want: -1}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("pipelined query: %v", err)
	}
}

type mismatchErr struct {
	q         record.Range
	got, want int
}

func (e *mismatchErr) Error() string {
	return "result does not match its own query (response routed to wrong request?)"
}

// TestBatchQuery exercises the batched-query frames end to end, verified
// against the TE's batched tokens.
func TestBatchQuery(t *testing.T) {
	spSrv, teSrv, ds := launchSAE(t, 5000)
	client, err := DialVerifying(spSrv.Addr(), teSrv.Addr())
	if err != nil {
		t.Fatalf("DialVerifying: %v", err)
	}
	defer client.Close()

	qs := workload.Queries(12, workload.DefaultExtent, 71)
	batches, err := client.QueryBatch(qs)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	if len(batches) != len(qs) {
		t.Fatalf("got %d batches for %d queries", len(batches), len(qs))
	}
	for i, q := range qs {
		if len(batches[i]) != expectCount(ds, q) {
			t.Fatalf("batch %d: %d records, want %d", i, len(batches[i]), expectCount(ds, q))
		}
	}

	// A batch rides in exactly one frame each way on the SP connection.
	sent := client.SP.BytesSent()
	wantSent := int64(HeaderSize + 4 + 8*len(qs))
	if sent != wantSent {
		t.Fatalf("SP bytes sent = %d, want %d (one batch frame)", sent, wantSent)
	}
}

// TestBatchEmptyAndCodecErrors covers the batch codecs' edges.
func TestBatchEmptyAndCodecErrors(t *testing.T) {
	qs, err := DecodeRanges(EncodeRanges(nil))
	if err != nil || len(qs) != 0 {
		t.Fatalf("empty ranges round trip: %v, %d", err, len(qs))
	}
	if _, err := DecodeRanges([]byte{0, 0, 0, 2, 1}); err == nil {
		t.Fatal("DecodeRanges accepted truncated payload")
	}
	if _, err := DecodeRecordBatches([]byte{0, 0, 0, 1}); err == nil {
		t.Fatal("DecodeRecordBatches accepted truncated payload")
	}
	if _, err := DecodeDigests([]byte{0, 0, 0, 1, 9}); err == nil {
		t.Fatal("DecodeDigests accepted truncated payload")
	}
	recs := [][]record.Record{nil, {record.Synthesize(1, 10)}}
	got, err := DecodeRecordBatches(EncodeRecordBatches(recs))
	if err != nil {
		t.Fatalf("DecodeRecordBatches: %v", err)
	}
	if len(got) != 2 || len(got[0]) != 0 || len(got[1]) != 1 {
		t.Fatalf("batch codec round trip mismatch: %v", got)
	}
}
