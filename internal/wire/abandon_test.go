package wire

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sae/internal/record"
)

// TestRoundTripAbandonCleansPending: a context-cancelled round trip (the
// hedged-request loser, a timed-out sub-request) removes its pending
// entry, leaves the connection healthy, and its late response — arriving
// after the abandonment — is discarded by the demux loop rather than
// delivered to a later request. Runs under -race in CI.
func TestRoundTripAbandonCleansPending(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	unstall := func() { releaseOnce.Do(func() { close(release) }) }
	srv, err := Serve("127.0.0.1:0", func(req Frame, rb *RespBuf) Frame {
		switch req.Type {
		case MsgQuery:
			<-release // stall until the test releases the response
			rb.AppendUint32(0)
			return Frame{Type: MsgResult, Payload: rb.Bytes()}
		default:
			return ErrFrame(ErrProtocol)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer unstall()

	c, err := DialSP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.QueryRawCtx(ctx, record.Range{Lo: 0, Hi: 100}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned round trip: got %v, want a deadline error", err)
	}

	// The abandoned request's pending entry is gone and the connection is
	// unpoisoned.
	c.mu.Lock()
	n := len(c.pending)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending entries survive an abandoned round trip", n)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("abandonment poisoned the connection: %v", err)
	}

	// Let the stalled handler finally answer: the late frame carries the
	// abandoned request's id, matches no pending entry and is discarded.
	// A fresh request on the same connection must get ITS response (ids
	// never collide), proving no double delivery.
	unstall()
	raw, err := c.QueryRaw(record.Range{Lo: 0, Hi: 100})
	if err != nil {
		t.Fatalf("fresh request after an abandoned one: %v", err)
	}
	if len(raw) != 4 {
		t.Fatalf("fresh response payload is %d bytes, want the 4-byte empty count", len(raw))
	}
	c.mu.Lock()
	n = len(c.pending)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending entries after the fresh round trip", n)
	}
}
