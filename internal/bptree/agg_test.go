package bptree

import (
	"math/rand"
	"testing"

	"sae/internal/agg"
	"sae/internal/exec"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// refAgg folds the reference entry list the way a client would fold a
// verified range scan.
func refAgg(entries []Entry, lo, hi record.Key) agg.Agg {
	var a agg.Agg
	for _, e := range entries {
		if e.Key >= lo && e.Key <= hi {
			a = a.Add(e.Key)
		}
	}
	return a
}

func TestAggregateParityBulkload(t *testing.T) {
	keys := make([]record.Key, 5000)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = record.Key(rng.Intn(50_000))
	}
	entries := sortedEntries(keys)
	tree, err := Bulkload(pagestore.NewMem(), entries)
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for trial := 0; trial < 200; trial++ {
		lo := record.Key(rng.Intn(50_000))
		hi := lo + record.Key(rng.Intn(10_000))
		got, err := tree.Aggregate(lo, hi)
		if err != nil {
			t.Fatalf("Aggregate(%d,%d): %v", lo, hi, err)
		}
		if want := refAgg(entries, lo, hi); got.Normalize() != want.Normalize() {
			t.Fatalf("Aggregate(%d,%d) = %v, want %v", lo, hi, got, want)
		}
	}
	// Whole domain and inverted/empty ranges.
	got, err := tree.Aggregate(0, record.KeyDomain)
	if err != nil {
		t.Fatalf("Aggregate full: %v", err)
	}
	if want := refAgg(entries, 0, record.KeyDomain); got.Normalize() != want.Normalize() {
		t.Fatalf("full-domain aggregate = %v, want %v", got, want)
	}
	if got, _ := tree.Aggregate(10, 5); !got.Empty() {
		t.Fatalf("inverted range aggregate = %v, want empty", got)
	}
}

func TestAggregateMaintenanceRandomized(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	live := map[Entry]bool{}
	next := 0
	for step := 0; step < 6000; step++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			e := Entry{Key: record.Key(rng.Intn(2_000)), RID: ridFor(next)}
			next++
			if err := tree.Insert(e); err != nil {
				t.Fatalf("Insert: %v", err)
			}
			live[e] = true
		} else {
			for e := range live {
				if err := tree.Delete(e); err != nil {
					t.Fatalf("Delete: %v", err)
				}
				delete(live, e)
				break
			}
		}
	}
	// Validate recomputes every annotation bottom-up.
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after workload: %v", err)
	}
	entries := make([]Entry, 0, len(live))
	for e := range live {
		entries = append(entries, e)
	}
	for trial := 0; trial < 100; trial++ {
		lo := record.Key(rng.Intn(2_000))
		hi := lo + record.Key(rng.Intn(500))
		got, err := tree.Aggregate(lo, hi)
		if err != nil {
			t.Fatalf("Aggregate(%d,%d): %v", lo, hi, err)
		}
		if want := refAgg(entries, lo, hi); got.Normalize() != want.Normalize() {
			t.Fatalf("Aggregate(%d,%d) = %v, want %v", lo, hi, got, want)
		}
	}
}

func TestAggregateTouchesLogNodes(t *testing.T) {
	// 100K keys, ~1000-key range: the canonical cover must read O(log n)
	// nodes, not the O(result/LeafCapacity) a leaf scan would.
	entries := make([]Entry, 100_000)
	for i := range entries {
		entries[i] = Entry{Key: record.Key(i), RID: ridFor(i)}
	}
	tree, err := Bulkload(pagestore.NewMem(), entries)
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	ctx := exec.NewContext()
	a, err := tree.AggregateCtx(ctx, 40_000, 41_000)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	// The canonical cover recurses along at most two root-to-leaf paths.
	if reads := ctx.Stats().Reads; reads > int64(2*tree.Height()) {
		t.Fatalf("aggregate read %d nodes, want <= %d (2*height)", reads, 2*tree.Height())
	}
	scanCtx := exec.NewContext()
	if _, err := tree.RangeCtx(scanCtx, 40_000, 41_000); err != nil {
		t.Fatalf("RangeCtx: %v", err)
	}
	if ctx.Stats().Reads >= scanCtx.Stats().Reads {
		t.Fatalf("aggregate reads (%d) not below scan reads (%d)", ctx.Stats().Reads, scanCtx.Stats().Reads)
	}
	if a.Count != 1001 || a.Min != 40_000 || a.Max != 41_000 {
		t.Fatalf("Aggregate = %v, want count=1001 min=40000 max=41000", a)
	}
	if a.Sum != 1001*40_500 {
		t.Fatalf("Sum = %d, want %d", a.Sum, 1001*40_500)
	}
}
