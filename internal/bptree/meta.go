package bptree

import (
	"fmt"

	"sae/internal/bufpool"
	"sae/internal/pagestore"
)

// Meta is the tree's out-of-page state: everything needed to reattach to a
// reopened page store. Persist it alongside the page file (package
// internal/snapshot does).
type Meta struct {
	Root   pagestore.PageID
	Height int
	Count  int
	Nodes  int
}

// Meta captures the tree's current metadata.
func (t *Tree) Meta() Meta {
	return Meta{Root: t.root, Height: t.height, Count: t.count, Nodes: t.nodes}
}

// Open reattaches a tree to a store that already contains its pages.
func Open(store pagestore.Store, m Meta) (*Tree, error) {
	if m.Height < 1 {
		return nil, fmt.Errorf("bptree: invalid meta height %d", m.Height)
	}
	t := &Tree{io: bufpool.NewIO(store, nil), root: m.Root, height: m.Height, count: m.Count, nodes: m.Nodes}
	// Sanity probe: walking the leftmost path must reach a leaf exactly at
	// level 1, so a stale or corrupt height is caught before first use.
	id := t.root
	for level := m.Height; ; level-- {
		n, err := t.readNode(nil, id)
		if err != nil {
			return nil, fmt.Errorf("bptree: opening level %d: %w", level, err)
		}
		if n.leaf != (level == 1) {
			return nil, fmt.Errorf("bptree: meta height %d inconsistent with node depth", m.Height)
		}
		if n.leaf {
			break
		}
		id = n.children[0]
	}
	return t, nil
}
