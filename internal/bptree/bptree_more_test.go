package bptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sae/internal/pagestore"
	"sae/internal/record"
)

func TestSequentialInserts(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	n := 3 * LeafCapacity
	for i := 0; i < n; i++ {
		if err := tree.Insert(Entry{Key: record.Key(i), RID: ridFor(i)}); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got, err := tree.Range(0, record.Key(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("Range returned %d, want %d", len(got), n)
	}
	for i, rid := range got {
		if rid != ridFor(i) {
			t.Fatalf("rid %d out of order", i)
		}
	}
}

func TestReverseInserts(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	n := 3 * LeafCapacity
	for i := n - 1; i >= 0; i-- {
		if err := tree.Insert(Entry{Key: record.Key(i), RID: ridFor(i)}); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got, err := tree.Range(0, record.Key(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("Range returned %d, want %d", len(got), n)
	}
}

func TestDeleteEverythingThenReinsert(t *testing.T) {
	entries := sortedEntries(make([]record.Key, 1000)) // all key 0, distinct rids
	for i := range entries {
		entries[i].Key = record.Key(i % 17)
	}
	sort.Slice(entries, func(i, j int) bool { return Compare(entries[i], entries[j]) < 0 })
	tree, err := Bulkload(pagestore.NewMem(), entries)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := tree.Delete(e); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if tree.Count() != 0 {
		t.Fatalf("Count after full delete = %d", tree.Count())
	}
	got, err := tree.Range(0, record.KeyDomain)
	if err != nil || len(got) != 0 {
		t.Fatalf("Range after full delete = %d rids, err %v", len(got), err)
	}
	// The emptied (lazy-deleted) tree must still accept inserts.
	for i := 0; i < 500; i++ {
		if err := tree.Insert(Entry{Key: record.Key(i), RID: ridFor(10_000 + i)}); err != nil {
			t.Fatalf("reinsert: %v", err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after reinsert: %v", err)
	}
	got, err = tree.Range(0, record.KeyDomain)
	if err != nil || len(got) != 500 {
		t.Fatalf("Range after reinsert = %d rids, err %v", len(got), err)
	}
}

// TestRangeQuickProperty drives Range with testing/quick against a linear
// scan over a randomly built tree.
func TestRangeQuickProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	keys := make([]record.Key, 4000)
	for i := range keys {
		keys[i] = record.Key(rng.Intn(30_000))
	}
	entries := sortedEntries(keys)
	tree, err := Bulkload(pagestore.NewMem(), entries)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint16) bool {
		lo, hi := record.Key(a), record.Key(a)+record.Key(b)
		got, err := tree.Range(lo, hi)
		if err != nil {
			return false
		}
		return sameRIDs(got, refRange(entries, lo, hi))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBulkloadExactCapacityBoundaries(t *testing.T) {
	// Cardinalities straddling leaf and two-level boundaries.
	for _, n := range []int{
		LeafCapacity - 1, LeafCapacity, LeafCapacity + 1,
		2 * LeafCapacity, LeafCapacity * (InnerCapacity + 1),
		LeafCapacity*(InnerCapacity+1) + 1,
	} {
		keys := make([]record.Key, n)
		for i := range keys {
			keys[i] = record.Key(i)
		}
		entries := sortedEntries(keys)
		tree, err := Bulkload(pagestore.NewMem(), entries)
		if err != nil {
			t.Fatalf("n=%d: Bulkload: %v", n, err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("n=%d: Validate: %v", n, err)
		}
		got, err := tree.Range(0, record.Key(n))
		if err != nil || len(got) != n {
			t.Fatalf("n=%d: Range = %d rids, err %v", n, len(got), err)
		}
	}
}

func TestMetaRoundTrip(t *testing.T) {
	entries := sortedEntries(make([]record.Key, 2000))
	for i := range entries {
		entries[i].Key = record.Key(i)
	}
	sort.Slice(entries, func(i, j int) bool { return Compare(entries[i], entries[j]) < 0 })
	store := pagestore.NewMem()
	tree, err := Bulkload(store, entries)
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(store, tree.Meta())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := reopened.Validate(); err != nil {
		t.Fatalf("Validate after Open: %v", err)
	}
	got, err := reopened.Range(100, 200)
	if err != nil || len(got) != 101 {
		t.Fatalf("Range after Open = %d rids, err %v", len(got), err)
	}
	// Bad meta is rejected.
	bad := tree.Meta()
	bad.Height = 9
	if _, err := Open(store, bad); err == nil {
		t.Fatal("Open accepted an inconsistent height")
	}
}
