// Package bptree implements the conventional disk-based B+-tree the service
// provider uses in SAE to execute range queries. It maps search keys to
// record identifiers (RIDs) in the heap file.
//
// Entries are composite (key, RID) pairs and internal separators store the
// full composite, so duplicate search keys are handled exactly (the same
// heap-pointer tiebreak production systems use). Node layouts are
// byte-accurate over 4096-byte pages, which is what gives the B+-tree its
// fanout advantage over the MB-Tree in the paper's Figure 6.
package bptree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sae/internal/agg"
	"sae/internal/bufpool"
	"sae/internal/exec"
	"sae/internal/heapfile"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// Entry is one indexed item: a search key plus the RID of its record.
type Entry struct {
	Key record.Key
	RID heapfile.RID
}

// Compare orders entries by key, then by RID (page, slot). The RID tiebreak
// makes every entry unique, so splits and range boundaries are exact even
// with duplicate keys.
func Compare(a, b Entry) int {
	switch {
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	case a.RID.Page < b.RID.Page:
		return -1
	case a.RID.Page > b.RID.Page:
		return 1
	case a.RID.Slot < b.RID.Slot:
		return -1
	case a.RID.Slot > b.RID.Slot:
		return 1
	}
	return 0
}

// Page layout constants. A leaf page is
//
//	[0] flags (1 = leaf) | [1:3] count | [3:7] next-leaf id | entries...
//
// with 10-byte entries (key 4, rid page 4, rid slot 2). An internal page is
//
//	[0] flags (0) | [1:3] count | [3:7] child0 | [7:31] agg0 |
//	{separator 10, child 4, agg 24}...
//
// Internal entries carry the (count, sum, min, max) aggregate annotation of
// the child subtree they point to, maintained incrementally on every
// insert/delete/split and during bulk load. The annotations are what let
// AggregateCtx answer COUNT/SUM/MIN/MAX over any key range from O(log n)
// nodes instead of an O(result) leaf scan.
const (
	headerSize      = 7
	leafEntry       = 10
	innerHeaderSize = headerSize + agg.Size // 31
	innerEntry      = 14 + agg.Size         // 38
	// LeafCapacity is the maximum number of entries per leaf page.
	LeafCapacity = (pagestore.PageSize - headerSize) / leafEntry // 408
	// InnerCapacity is the maximum number of separators per internal page
	// (children = separators + 1).
	InnerCapacity = (pagestore.PageSize - innerHeaderSize) / innerEntry // 106
)

// ErrNotFound is returned by Delete when the exact (key, rid) entry is not
// in the tree.
var ErrNotFound = errors.New("bptree: entry not found")

// Tree is a disk-based B+-tree.
type Tree struct {
	io     *bufpool.IO
	root   pagestore.PageID
	height int // 1 = root is a leaf
	count  int // live entries
	nodes  int // allocated nodes
}

// node is the decoded in-memory form of one page.
type node struct {
	leaf     bool
	next     pagestore.PageID // leaf-level sibling chain
	entries  []Entry          // leaf: data entries; internal: separators
	children []pagestore.PageID
	// aggs (internal nodes only) is aligned with children: aggs[i]
	// summarizes the keys in children[i]'s subtree.
	aggs []agg.Agg
}

// aggAll returns the aggregate of every key in the node's subtree: a leaf
// folds its own entries, an internal node folds the stored child
// annotations (pure arithmetic, no I/O).
func (n *node) aggAll() agg.Agg {
	var a agg.Agg
	if n.leaf {
		for i := range n.entries {
			a = a.Add(n.entries[i].Key)
		}
		return a
	}
	for i := range n.aggs {
		a = a.Merge(n.aggs[i])
	}
	return a
}

// UseCache attaches a decoded-node cache to the tree's read/write path
// (nil detaches). Typically called right after New/Bulkload/Open so the
// build itself runs uncached.
func (t *Tree) UseCache(c *bufpool.Cache) { t.io.SetCache(c) }

// New creates an empty tree whose root is an empty leaf.
func New(store pagestore.Store) (*Tree, error) {
	t := &Tree{io: bufpool.NewIO(store, nil), height: 1}
	root, err := t.allocNode(nil, &node{leaf: true, next: pagestore.InvalidPage})
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// Bulkload builds a tree from entries, which must be sorted by Compare. All
// leaves except possibly the last are packed full, mirroring how the data
// owner's initial transfer is indexed.
func Bulkload(store pagestore.Store, entries []Entry) (*Tree, error) {
	for i := 1; i < len(entries); i++ {
		if Compare(entries[i-1], entries[i]) > 0 {
			return nil, fmt.Errorf("bptree: bulkload input not sorted at %d", i)
		}
	}
	t := &Tree{io: bufpool.NewIO(store, nil)}
	if len(entries) == 0 {
		return New(store)
	}

	// Build the leaf level.
	type built struct {
		id  pagestore.PageID
		min Entry
		agg agg.Agg
	}
	var level []built
	var prevID pagestore.PageID = pagestore.InvalidPage
	var prev *node
	for start := 0; start < len(entries); start += LeafCapacity {
		end := start + LeafCapacity
		if end > len(entries) {
			end = len(entries)
		}
		n := &node{leaf: true, next: pagestore.InvalidPage}
		n.entries = append(n.entries, entries[start:end]...)
		id, err := t.allocNode(nil, n)
		if err != nil {
			return nil, err
		}
		if prev != nil {
			prev.next = id
			if err := t.writeNode(nil, prevID, prev); err != nil {
				return nil, err
			}
		}
		prevID, prev = id, n
		level = append(level, built{id: id, min: entries[start], agg: n.aggAll()})
	}

	// Build internal levels until a single root remains.
	t.height = 1
	for len(level) > 1 {
		var next []built
		for start := 0; start < len(level); start += InnerCapacity + 1 {
			end := start + InnerCapacity + 1
			if end > len(level) {
				end = len(level)
			}
			group := level[start:end]
			n := &node{leaf: false}
			n.children = append(n.children, group[0].id)
			n.aggs = append(n.aggs, group[0].agg)
			for _, b := range group[1:] {
				n.entries = append(n.entries, b.min)
				n.children = append(n.children, b.id)
				n.aggs = append(n.aggs, b.agg)
			}
			id, err := t.allocNode(nil, n)
			if err != nil {
				return nil, err
			}
			next = append(next, built{id: id, min: group[0].min, agg: n.aggAll()})
		}
		level = next
		t.height++
	}
	t.root = level[0].id
	t.count = len(entries)
	return t, nil
}

// allocNode allocates a page for n and writes it.
func (t *Tree) allocNode(ctx *exec.Context, n *node) (pagestore.PageID, error) {
	id, err := t.io.Allocate(ctx)
	if err != nil {
		return 0, fmt.Errorf("bptree: allocating node: %w", err)
	}
	t.nodes++
	if err := t.writeNode(ctx, id, n); err != nil {
		return 0, err
	}
	return id, nil
}

func (t *Tree) writeNode(ctx *exec.Context, id pagestore.PageID, n *node) error {
	if err := bufpool.WriteNode(t.io, ctx, id, n, encodeNode); err != nil {
		return fmt.Errorf("bptree: writing node %d: %w", id, err)
	}
	return nil
}

func (t *Tree) readNode(ctx *exec.Context, id pagestore.PageID) (*node, error) {
	n, err := bufpool.ReadNode(t.io, ctx, id, decodeNode)
	if err != nil {
		return nil, fmt.Errorf("bptree: reading node %d: %w", id, err)
	}
	return n, nil
}

func encodeNode(buf []byte, n *node) {
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = 1
		binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.entries)))
		binary.BigEndian.PutUint32(buf[3:7], uint32(n.next))
		off := headerSize
		for _, e := range n.entries {
			putEntry(buf[off:off+leafEntry], e)
			off += leafEntry
		}
		return
	}
	buf[0] = 0
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.entries)))
	binary.BigEndian.PutUint32(buf[3:7], uint32(n.children[0]))
	n.aggs[0].PutBytes(buf[headerSize:innerHeaderSize])
	off := innerHeaderSize
	for i, e := range n.entries {
		putEntry(buf[off:off+leafEntry], e)
		binary.BigEndian.PutUint32(buf[off+leafEntry:off+leafEntry+4], uint32(n.children[i+1]))
		n.aggs[i+1].PutBytes(buf[off+leafEntry+4 : off+innerEntry])
		off += innerEntry
	}
}

func decodeNode(buf []byte) *node {
	n := &node{leaf: buf[0] == 1}
	count := int(binary.BigEndian.Uint16(buf[1:3]))
	if n.leaf {
		n.next = pagestore.PageID(binary.BigEndian.Uint32(buf[3:7]))
		n.entries = make([]Entry, count)
		off := headerSize
		for i := 0; i < count; i++ {
			n.entries[i] = getEntry(buf[off : off+leafEntry])
			off += leafEntry
		}
		return n
	}
	n.entries = make([]Entry, count)
	n.children = make([]pagestore.PageID, 0, count+1)
	n.aggs = make([]agg.Agg, 0, count+1)
	n.children = append(n.children, pagestore.PageID(binary.BigEndian.Uint32(buf[3:7])))
	n.aggs = append(n.aggs, agg.FromBytes(buf[headerSize:innerHeaderSize]))
	off := innerHeaderSize
	for i := 0; i < count; i++ {
		n.entries[i] = getEntry(buf[off : off+leafEntry])
		n.children = append(n.children, pagestore.PageID(binary.BigEndian.Uint32(buf[off+leafEntry:off+leafEntry+4])))
		n.aggs = append(n.aggs, agg.FromBytes(buf[off+leafEntry+4:off+innerEntry]))
		off += innerEntry
	}
	return n
}

func putEntry(buf []byte, e Entry) {
	binary.BigEndian.PutUint32(buf[0:4], uint32(e.Key))
	binary.BigEndian.PutUint32(buf[4:8], uint32(e.RID.Page))
	binary.BigEndian.PutUint16(buf[8:10], e.RID.Slot)
}

func getEntry(buf []byte) Entry {
	return Entry{
		Key: record.Key(binary.BigEndian.Uint32(buf[0:4])),
		RID: heapfile.RID{
			Page: pagestore.PageID(binary.BigEndian.Uint32(buf[4:8])),
			Slot: binary.BigEndian.Uint16(buf[8:10]),
		},
	}
}

// upperBound returns the number of entries in s that are <= e.
func upperBound(s []Entry, e Entry) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(s[mid], e) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBoundKey returns the index of the first entry whose key is >= k.
func lowerBoundKey(s []Entry, k record.Key) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Range returns the RIDs of all entries with lo <= key <= hi with no
// request context; see RangeCtx.
func (t *Tree) Range(lo, hi record.Key) ([]heapfile.RID, error) {
	return t.RangeCtx(nil, lo, hi)
}

// RangeCtx returns the RIDs of all entries with lo <= key <= hi, in key
// order, charging every node access to ctx. A leaf-chain walk that crosses
// more than exec.ScanThreshold leaves declares itself a scan so its fills
// bypass LRU admission.
func (t *Tree) RangeCtx(ctx *exec.Context, lo, hi record.Key) ([]heapfile.RID, error) {
	return t.RangeAppendCtx(ctx, lo, hi, nil)
}

// RangeAppendCtx is RangeCtx appending into a caller-provided buffer
// (out[:0]-style reuse), so a serve loop recycling one RID buffer across
// queries performs the leaf scan without growing a fresh slice every
// time. Traversal, node accesses and scan hinting are identical to
// RangeCtx — it IS RangeCtx.
func (t *Tree) RangeAppendCtx(ctx *exec.Context, lo, hi record.Key, out []heapfile.RID) ([]heapfile.RID, error) {
	if lo > hi {
		return out, nil
	}
	id := t.root
	for level := t.height; level > 1; level-- {
		n, err := t.readNode(ctx, id)
		if err != nil {
			return out, err
		}
		id = n.children[lowerBoundKey(n.entries, lo)]
	}
	scan := exec.TrackScan(ctx)
	defer scan.End()
	for id != pagestore.InvalidPage {
		scan.NotePage()
		n, err := t.readNode(ctx, id)
		if err != nil {
			return out, err
		}
		i := lowerBoundKey(n.entries, lo)
		for ; i < len(n.entries); i++ {
			if n.entries[i].Key > hi {
				return out, nil
			}
			out = append(out, n.entries[i].RID)
		}
		id = n.next
	}
	return out, nil
}

// RangeBurstCtx plans a burst of range queries in one pass: query qi
// (bounds los[qi]..his[qi], charged to ctxs[qi]) appends its RIDs into a
// shared arena, and the returned offsets give query qi's run as
// arena[offs[qi]:offs[qi+1]]. Offsets — not sub-slices — are returned
// because the arena reallocates as it grows; callers materialize the
// per-query views only after the whole burst is planned.
//
// Each descent is exactly RangeAppendCtx (same node accesses, same scan
// hinting, charged to that query's own context), so per-query access
// counts match per-request planning bit for bit; the burst's win is the
// shared arena (one growing buffer instead of per-query slices) and the
// back-to-back descents hitting a warm decoded-node cache. arena and
// offs are reused via the usual out[:0] convention.
func (t *Tree) RangeBurstCtx(ctxs []*exec.Context, los, his []record.Key, arena []heapfile.RID, offs []int) ([]heapfile.RID, []int, error) {
	offs = append(offs[:0], len(arena))
	for qi := range los {
		var err error
		arena, err = t.RangeAppendCtx(ctxs[qi], los[qi], his[qi], arena)
		if err != nil {
			return arena, offs, err
		}
		offs = append(offs, len(arena))
	}
	return arena, offs, nil
}

// Insert adds an entry with no request context; see InsertCtx.
func (t *Tree) Insert(e Entry) error { return t.InsertCtx(nil, e) }

// InsertCtx adds an entry in O(height) node accesses, splitting on
// overflow. Every node on the path is rewritten so its parent's aggregate
// annotation stays exact.
func (t *Tree) InsertCtx(ctx *exec.Context, e Entry) error {
	sep, right, selfAgg, rightAgg, err := t.insertAt(ctx, t.root, t.height, e)
	if err != nil {
		return err
	}
	if right != pagestore.InvalidPage {
		// Root split: grow the tree by one level.
		n := &node{
			leaf:     false,
			entries:  []Entry{sep},
			children: []pagestore.PageID{t.root, right},
			aggs:     []agg.Agg{selfAgg, rightAgg},
		}
		id, err := t.allocNode(ctx, n)
		if err != nil {
			return err
		}
		t.root = id
		t.height++
	}
	t.count++
	return nil
}

// insertAt inserts e into the subtree rooted at id (at the given level,
// 1 = leaf). If the node split, it returns the separator to push up and the
// new right sibling's id; otherwise right is InvalidPage. selfAgg (and, on
// a split, rightAgg) report the subtree aggregates after the insert, so
// the parent can refresh its annotations without extra reads.
func (t *Tree) insertAt(ctx *exec.Context, id pagestore.PageID, level int, e Entry) (sep Entry, right pagestore.PageID, selfAgg, rightAgg agg.Agg, err error) {
	n, err := t.readNode(ctx, id)
	if err != nil {
		return Entry{}, pagestore.InvalidPage, agg.Agg{}, agg.Agg{}, err
	}
	if level == 1 {
		pos := upperBound(n.entries, e)
		n.entries = append(n.entries, Entry{})
		copy(n.entries[pos+1:], n.entries[pos:])
		n.entries[pos] = e
		if len(n.entries) <= LeafCapacity {
			return Entry{}, pagestore.InvalidPage, n.aggAll(), agg.Agg{}, t.writeNode(ctx, id, n)
		}
		return t.splitLeaf(ctx, id, n)
	}
	ci := upperBound(n.entries, e)
	childSep, childRight, childAgg, childRightAgg, err := t.insertAt(ctx, n.children[ci], level-1, e)
	if err != nil {
		return Entry{}, pagestore.InvalidPage, agg.Agg{}, agg.Agg{}, err
	}
	n.aggs[ci] = childAgg
	if childRight != pagestore.InvalidPage {
		n.entries = append(n.entries, Entry{})
		copy(n.entries[ci+1:], n.entries[ci:])
		n.entries[ci] = childSep
		n.children = append(n.children, pagestore.InvalidPage)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = childRight
		n.aggs = append(n.aggs, agg.Agg{})
		copy(n.aggs[ci+2:], n.aggs[ci+1:])
		n.aggs[ci+1] = childRightAgg
		if len(n.entries) > InnerCapacity {
			return t.splitInner(ctx, id, n)
		}
	}
	return Entry{}, pagestore.InvalidPage, n.aggAll(), agg.Agg{}, t.writeNode(ctx, id, n)
}

func (t *Tree) splitLeaf(ctx *exec.Context, id pagestore.PageID, n *node) (Entry, pagestore.PageID, agg.Agg, agg.Agg, error) {
	mid := len(n.entries) / 2
	rightNode := &node{leaf: true, next: n.next}
	rightNode.entries = append(rightNode.entries, n.entries[mid:]...)
	rightID, err := t.allocNode(ctx, rightNode)
	if err != nil {
		// n was mutated in memory but never persisted; drop the cached copy.
		t.io.Discard(id)
		return Entry{}, pagestore.InvalidPage, agg.Agg{}, agg.Agg{}, err
	}
	n.entries = n.entries[:mid]
	n.next = rightID
	if err := t.writeNode(ctx, id, n); err != nil {
		return Entry{}, pagestore.InvalidPage, agg.Agg{}, agg.Agg{}, err
	}
	return rightNode.entries[0], rightID, n.aggAll(), rightNode.aggAll(), nil
}

func (t *Tree) splitInner(ctx *exec.Context, id pagestore.PageID, n *node) (Entry, pagestore.PageID, agg.Agg, agg.Agg, error) {
	mid := len(n.entries) / 2
	sep := n.entries[mid]
	rightNode := &node{leaf: false}
	rightNode.entries = append(rightNode.entries, n.entries[mid+1:]...)
	rightNode.children = append(rightNode.children, n.children[mid+1:]...)
	rightNode.aggs = append(rightNode.aggs, n.aggs[mid+1:]...)
	rightID, err := t.allocNode(ctx, rightNode)
	if err != nil {
		t.io.Discard(id)
		return Entry{}, pagestore.InvalidPage, agg.Agg{}, agg.Agg{}, err
	}
	n.entries = n.entries[:mid]
	n.children = n.children[:mid+1]
	n.aggs = n.aggs[:mid+1]
	if err := t.writeNode(ctx, id, n); err != nil {
		return Entry{}, pagestore.InvalidPage, agg.Agg{}, agg.Agg{}, err
	}
	return sep, rightID, n.aggAll(), rightNode.aggAll(), nil
}

// Delete removes the exact (key, rid) entry with no request context; see
// DeleteCtx.
func (t *Tree) Delete(e Entry) error { return t.DeleteCtx(nil, e) }

// DeleteCtx removes the exact (key, rid) entry. Underfull nodes are left in
// place (the lazy-deletion policy common in production B+-trees); an empty
// leaf stays in the sibling chain and is skipped by scans. The descent is
// recursive so that every ancestor's aggregate annotation is refreshed on
// the way back up.
func (t *Tree) DeleteCtx(ctx *exec.Context, e Entry) error {
	if _, err := t.deleteAt(ctx, t.root, t.height, e); err != nil {
		return err
	}
	t.count--
	return nil
}

// deleteAt removes e from the subtree rooted at id, returning the subtree's
// aggregate after the removal so the parent can refresh its annotation.
func (t *Tree) deleteAt(ctx *exec.Context, id pagestore.PageID, level int, e Entry) (agg.Agg, error) {
	n, err := t.readNode(ctx, id)
	if err != nil {
		return agg.Agg{}, err
	}
	if level == 1 {
		for i, cur := range n.entries {
			if Compare(cur, e) == 0 {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return n.aggAll(), t.writeNode(ctx, id, n)
			}
		}
		return agg.Agg{}, fmt.Errorf("%w: key=%d rid=%v", ErrNotFound, e.Key, e.RID)
	}
	ci := upperBound(n.entries, e)
	childAgg, err := t.deleteAt(ctx, n.children[ci], level-1, e)
	if err != nil {
		return agg.Agg{}, err
	}
	n.aggs[ci] = childAgg
	return n.aggAll(), t.writeNode(ctx, id, n)
}

// Aggregate answers COUNT/SUM/MIN/MAX over lo <= key <= hi with no request
// context; see AggregateCtx.
func (t *Tree) Aggregate(lo, hi record.Key) (agg.Agg, error) {
	return t.AggregateCtx(nil, lo, hi)
}

// AggregateCtx answers COUNT/SUM/MIN/MAX over lo <= key <= hi by the
// canonical-cover descent: at each internal node the children strictly
// between the two boundary children are provably fully inside the range
// (their keys are bracketed by separators already known to be in [lo, hi]),
// so their stored annotations are folded in without descending. Only the
// two edge paths recurse and only their partial leaves are scanned, so the
// whole query touches O(log n) nodes.
func (t *Tree) AggregateCtx(ctx *exec.Context, lo, hi record.Key) (agg.Agg, error) {
	if lo > hi {
		return agg.Agg{}, nil
	}
	return t.aggregateAt(ctx, t.root, t.height, lo, hi, nil, nil)
}

// aggregateAt descends the canonical cover. lb/ub are the subtree's key
// bounds inherited from ancestor separators (nil = unknown): they let a
// node's outermost children — which have only one local separator — still
// be proven fully covered, keeping the cover to at most two frontier paths.
func (t *Tree) aggregateAt(ctx *exec.Context, id pagestore.PageID, level int, lo, hi record.Key, lb, ub *record.Key) (agg.Agg, error) {
	n, err := t.readNode(ctx, id)
	if err != nil {
		return agg.Agg{}, err
	}
	if level == 1 {
		var a agg.Agg
		for i := lowerBoundKey(n.entries, lo); i < len(n.entries) && n.entries[i].Key <= hi; i++ {
			a = a.Add(n.entries[i].Key)
		}
		return a, nil
	}
	// Child i holds keys in [sep[i-1].Key, sep[i].Key] (separators are
	// composite, so a child may share its boundary key with a neighbor —
	// the closed interval is the sound reading). lsel is the first child
	// that can hold keys >= lo, rsel the last that can hold keys <= hi.
	lsel := lowerBoundKey(n.entries, lo)
	rsel := len(n.children) - 1
	for rsel > 0 && n.entries[rsel-1].Key > hi {
		rsel--
	}
	if lsel > rsel {
		// Possible only with duplicate boundary keys straddling a
		// separator; the singleton child lsel-1..lsel region is empty.
		return agg.Agg{}, nil
	}
	var a agg.Agg
	for i := lsel; i <= rsel; i++ {
		// Fully covered iff the child's key span [sep[i-1], sep[i]] sits
		// inside [lo, hi]; then its stored annotation is exact.
		if i > lsel && i < rsel {
			a = a.Merge(n.aggs[i])
			continue
		}
		// An outermost child has no separator on one side in this node;
		// its bound on that side is the one inherited from an ancestor.
		clb, cub := lb, ub
		if i > 0 {
			clb = &n.entries[i-1].Key
		}
		if i < len(n.entries) {
			cub = &n.entries[i].Key
		}
		if clb != nil && *clb >= lo && cub != nil && *cub <= hi {
			a = a.Merge(n.aggs[i])
			continue
		}
		sub, err := t.aggregateAt(ctx, n.children[i], level-1, lo, hi, clb, cub)
		if err != nil {
			return agg.Agg{}, err
		}
		a = a.Merge(sub)
	}
	return a, nil
}

// Count returns the number of live entries.
func (t *Tree) Count() int { return t.count }

// Height returns the number of levels (1 = the root is a leaf).
func (t *Tree) Height() int { return t.height }

// NodeCount returns the number of allocated tree nodes.
func (t *Tree) NodeCount() int { return t.nodes }

// Bytes returns the tree's storage footprint.
func (t *Tree) Bytes() int64 { return int64(t.nodes) * pagestore.PageSize }

// Validate walks the whole tree checking structural invariants: entry
// ordering, separator bounds, leaf chain order, entry count and the
// per-subtree aggregate annotations. Tests call it after randomized
// workloads.
func (t *Tree) Validate() error {
	seen := 0
	var last *Entry
	var walk func(id pagestore.PageID, level int, lo, hi *Entry) (agg.Agg, error)
	walk = func(id pagestore.PageID, level int, lo, hi *Entry) (agg.Agg, error) {
		n, err := t.readNode(nil, id)
		if err != nil {
			return agg.Agg{}, err
		}
		if (level == 1) != n.leaf {
			return agg.Agg{}, fmt.Errorf("bptree: node %d leaf flag inconsistent with level %d", id, level)
		}
		for i := 1; i < len(n.entries); i++ {
			if Compare(n.entries[i-1], n.entries[i]) >= 0 {
				return agg.Agg{}, fmt.Errorf("bptree: node %d entries out of order at %d", id, i)
			}
		}
		for _, e := range n.entries {
			if lo != nil && Compare(e, *lo) < 0 {
				return agg.Agg{}, fmt.Errorf("bptree: node %d entry below lower bound", id)
			}
			if hi != nil && Compare(e, *hi) >= 0 {
				return agg.Agg{}, fmt.Errorf("bptree: node %d entry above upper bound", id)
			}
		}
		if n.leaf {
			for i := range n.entries {
				if last != nil && Compare(*last, n.entries[i]) >= 0 {
					return agg.Agg{}, fmt.Errorf("bptree: leaf chain out of order at node %d", id)
				}
				e := n.entries[i]
				last = &e
				seen++
			}
			return n.aggAll(), nil
		}
		if len(n.children) != len(n.entries)+1 {
			return agg.Agg{}, fmt.Errorf("bptree: node %d has %d children for %d separators", id, len(n.children), len(n.entries))
		}
		if len(n.aggs) != len(n.children) {
			return agg.Agg{}, fmt.Errorf("bptree: node %d has %d aggregate annotations for %d children", id, len(n.aggs), len(n.children))
		}
		for i, c := range n.children {
			var clo, chi *Entry
			if i == 0 {
				clo = lo
			} else {
				clo = &n.entries[i-1]
			}
			if i == len(n.entries) {
				chi = hi
			} else {
				chi = &n.entries[i]
			}
			sub, err := walk(c, level-1, clo, chi)
			if err != nil {
				return agg.Agg{}, err
			}
			if sub.Normalize() != n.aggs[i].Normalize() {
				return agg.Agg{}, fmt.Errorf("bptree: node %d child %d annotation %v, subtree is %v", id, i, n.aggs[i], sub)
			}
		}
		return n.aggAll(), nil
	}
	if _, err := walk(t.root, t.height, nil, nil); err != nil {
		return err
	}
	if seen != t.count {
		return fmt.Errorf("bptree: walked %d entries, tree says %d", seen, t.count)
	}
	return nil
}
