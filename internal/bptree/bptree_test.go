package bptree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"sae/internal/heapfile"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// ridFor fabricates a unique RID per ordinal so entries are distinguishable.
func ridFor(i int) heapfile.RID {
	return heapfile.RID{Page: pagestore.PageID(i / 8), Slot: uint16(i % 8)}
}

func sortedEntries(keys []record.Key) []Entry {
	entries := make([]Entry, len(keys))
	for i, k := range keys {
		entries[i] = Entry{Key: k, RID: ridFor(i)}
	}
	sort.Slice(entries, func(i, j int) bool { return Compare(entries[i], entries[j]) < 0 })
	return entries
}

// refRange computes the expected RIDs with a linear scan.
func refRange(entries []Entry, lo, hi record.Key) []heapfile.RID {
	var out []heapfile.RID
	for _, e := range entries {
		if e.Key >= lo && e.Key <= hi {
			out = append(out, e.RID)
		}
	}
	return out
}

func sameRIDs(a, b []heapfile.RID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBulkloadAndRange(t *testing.T) {
	keys := make([]record.Key, 5000)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = record.Key(rng.Intn(100_000))
	}
	entries := sortedEntries(keys)
	tree, err := Bulkload(pagestore.NewMem(), entries)
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.Count() != len(entries) {
		t.Fatalf("Count = %d, want %d", tree.Count(), len(entries))
	}
	for trial := 0; trial < 50; trial++ {
		lo := record.Key(rng.Intn(100_000))
		hi := lo + record.Key(rng.Intn(5_000))
		got, err := tree.Range(lo, hi)
		if err != nil {
			t.Fatalf("Range(%d,%d): %v", lo, hi, err)
		}
		if want := refRange(entries, lo, hi); !sameRIDs(got, want) {
			t.Fatalf("Range(%d,%d) = %d rids, want %d", lo, hi, len(got), len(want))
		}
	}
}

func TestBulkloadRejectsUnsorted(t *testing.T) {
	entries := []Entry{{Key: 5, RID: ridFor(0)}, {Key: 1, RID: ridFor(1)}}
	if _, err := Bulkload(pagestore.NewMem(), entries); err == nil {
		t.Fatal("Bulkload accepted unsorted input")
	}
}

func TestBulkloadEmpty(t *testing.T) {
	tree, err := Bulkload(pagestore.NewMem(), nil)
	if err != nil {
		t.Fatalf("Bulkload(nil): %v", err)
	}
	got, err := tree.Range(0, record.KeyDomain)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty tree returned %d rids", len(got))
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestInsertIncremental(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	var entries []Entry
	for i := 0; i < 3000; i++ {
		e := Entry{Key: record.Key(rng.Intn(10_000)), RID: ridFor(i)}
		entries = append(entries, e)
		if err := tree.Insert(e); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after inserts: %v", err)
	}
	sort.Slice(entries, func(i, j int) bool { return Compare(entries[i], entries[j]) < 0 })
	for trial := 0; trial < 30; trial++ {
		lo := record.Key(rng.Intn(10_000))
		hi := lo + record.Key(rng.Intn(1_000))
		got, err := tree.Range(lo, hi)
		if err != nil {
			t.Fatalf("Range: %v", err)
		}
		if want := refRange(entries, lo, hi); !sameRIDs(got, want) {
			t.Fatalf("Range(%d,%d) mismatch after inserts", lo, hi)
		}
	}
	if tree.Height() < 2 {
		t.Fatalf("tree with 3000 entries should have split; height = %d", tree.Height())
	}
}

func TestInsertDuplicateKeys(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Enough duplicates of one key to force splits within the run.
	const dups = 2 * LeafCapacity
	for i := 0; i < dups; i++ {
		if err := tree.Insert(Entry{Key: 42, RID: ridFor(i)}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := tree.Insert(Entry{Key: 41, RID: ridFor(dups)}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := tree.Insert(Entry{Key: 43, RID: ridFor(dups + 1)}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got, err := tree.Range(42, 42)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(got) != dups {
		t.Fatalf("Range(42,42) = %d rids, want %d", len(got), dups)
	}
}

func TestDelete(t *testing.T) {
	keys := make([]record.Key, 2000)
	rng := rand.New(rand.NewSource(3))
	for i := range keys {
		keys[i] = record.Key(rng.Intn(50_000))
	}
	entries := sortedEntries(keys)
	tree, err := Bulkload(pagestore.NewMem(), entries)
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	// Delete every third entry.
	var remaining []Entry
	for i, e := range entries {
		if i%3 == 0 {
			if err := tree.Delete(e); err != nil {
				t.Fatalf("Delete(%v): %v", e, err)
			}
		} else {
			remaining = append(remaining, e)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after deletes: %v", err)
	}
	got, err := tree.Range(0, record.KeyDomain)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if want := refRange(remaining, 0, record.KeyDomain); !sameRIDs(got, want) {
		t.Fatalf("after deletes: got %d rids, want %d", len(got), len(want))
	}
}

func TestDeleteNotFound(t *testing.T) {
	tree, err := Bulkload(pagestore.NewMem(), sortedEntries([]record.Key{1, 2, 3}))
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	err = tree.Delete(Entry{Key: 99, RID: ridFor(0)})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(absent) error = %v, want ErrNotFound", err)
	}
	// Same key, different RID must also miss.
	err = tree.Delete(Entry{Key: 2, RID: ridFor(77)})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(wrong rid) error = %v, want ErrNotFound", err)
	}
}

func TestRangeEmptyAndInverted(t *testing.T) {
	tree, err := Bulkload(pagestore.NewMem(), sortedEntries([]record.Key{10, 20, 30}))
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	got, err := tree.Range(21, 29)
	if err != nil || len(got) != 0 {
		t.Fatalf("Range gap = %d rids, err %v; want 0, nil", len(got), err)
	}
	got, err = tree.Range(30, 10)
	if err != nil || len(got) != 0 {
		t.Fatalf("inverted Range = %d rids, err %v; want 0, nil", len(got), err)
	}
	got, err = tree.Range(10, 10)
	if err != nil || len(got) != 1 {
		t.Fatalf("point Range = %d rids, err %v; want 1, nil", len(got), err)
	}
}

func TestMixedInsertDeleteRandomized(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	live := map[Entry]bool{}
	for op := 0; op < 8000; op++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			e := Entry{Key: record.Key(rng.Intn(2_000)), RID: ridFor(op)}
			if live[e] {
				continue
			}
			if err := tree.Insert(e); err != nil {
				t.Fatalf("Insert: %v", err)
			}
			live[e] = true
		} else {
			// Delete an arbitrary live entry.
			for e := range live {
				if err := tree.Delete(e); err != nil {
					t.Fatalf("Delete: %v", err)
				}
				delete(live, e)
				break
			}
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var entries []Entry
	for e := range live {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return Compare(entries[i], entries[j]) < 0 })
	got, err := tree.Range(0, record.KeyDomain)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if want := refRange(entries, 0, record.KeyDomain); !sameRIDs(got, want) {
		t.Fatalf("randomized workload: got %d rids, want %d", len(got), len(want))
	}
}

func TestFanoutConstants(t *testing.T) {
	// The paper's Fig. 6 argument rests on the B+-tree's fanout exceeding
	// the MB-Tree's. Pin the layout-derived constants so a layout change
	// that silently destroys the experiment is caught here.
	if LeafCapacity != 408 {
		t.Fatalf("LeafCapacity = %d, want 408", LeafCapacity)
	}
	// Aggregate annotations (24 bytes per child) cost internal fanout:
	// 292 -> 106. Still comfortably above the MB-Tree's 69.
	if InnerCapacity != 106 {
		t.Fatalf("InnerCapacity = %d, want 106", InnerCapacity)
	}
}

func TestNodeCountAndBytes(t *testing.T) {
	entries := sortedEntries(make([]record.Key, 1000))
	tree, err := Bulkload(pagestore.NewMem(), entries)
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	if tree.NodeCount() < 3 {
		t.Fatalf("NodeCount = %d, want >= 3 (leaves + root)", tree.NodeCount())
	}
	if tree.Bytes() != int64(tree.NodeCount())*pagestore.PageSize {
		t.Fatal("Bytes must equal NodeCount * PageSize")
	}
}
