package tom

import (
	"bytes"
	"errors"
	"testing"

	"sae/internal/bufpool"
	"sae/internal/exec"
	"sae/internal/mbtree"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/workload"
)

// newBurstPair builds two identical TOM systems sharing one owner key,
// so byte-level VO comparison between the per-request and burst paths is
// meaningful (signatures differ by key, not by serve path).
func newBurstPair(t *testing.T, n int) (*System, *System, *workload.Dataset) {
	t.Helper()
	ds, err := workload.Generate(workload.UNF, n, 210)
	if err != nil {
		t.Fatal(err)
	}
	sysA, err := NewSystem(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	pB := NewProvider(pagestore.NewMem())
	pB.ConfigureCache(bufpool.CapacityFor(len(ds.Records)), bufpool.ChargeAllAccesses)
	if err := pB.Load(ds.Records, sysA.Owner); err != nil {
		t.Fatal(err)
	}
	sysB := &System{Owner: sysA.Owner, Provider: pB}
	return sysA, sysB, ds
}

func tomBurstQueries(n int) []record.Range {
	qs := workload.Queries(n, workload.DefaultExtent, 211)
	qs = append(qs, record.Range{Lo: record.KeyDomain + 1, Hi: record.KeyDomain + 5}) // empty
	qs = append(qs, record.Range{Lo: 0, Hi: 0})
	return qs
}

// TestProviderServeBurstParity pins the TOM burst serve to the
// per-request path: identical record bytes, identical serialized VOs and
// identical per-query access counts — the burst changes how many times
// the lock and the pin epoch are taken, never what a query reads.
func TestProviderServeBurstParity(t *testing.T) {
	sysA, sysB, _ := newBurstPair(t, 4000)
	qs := tomBurstQueries(15)

	wantRecs := make([][]byte, len(qs))
	wantVOs := make([][]byte, len(qs))
	wantStats := make([]pagestore.Stats, len(qs))
	for i, q := range qs {
		ctx := exec.NewContext()
		vo, _, _, err := sysA.Provider.ServeQueryCtx(ctx, q, func(r *record.Record) error {
			wantRecs[i] = r.AppendBinary(wantRecs[i])
			return nil
		})
		if err != nil {
			t.Fatalf("ServeQueryCtx(%v): %v", q, err)
		}
		wantVOs[i] = vo.AppendTo(nil)
		mbtree.PutVO(vo)
		wantStats[i] = ctx.Stats()
	}

	lane := exec.NewLane(0)
	ctxs := lane.Contexts(len(qs))
	gotRecs := make([][]byte, len(qs))
	var sc BurstScratch
	vos, err := sysB.Provider.ServeBurstCtx(ctxs, qs, &sc, func(qi int, r *record.Record) error {
		gotRecs[qi] = r.AppendBinary(gotRecs[qi])
		return nil
	})
	if err != nil {
		t.Fatalf("ServeBurstCtx: %v", err)
	}
	if len(vos) != len(qs) {
		t.Fatalf("burst returned %d VOs for %d queries", len(vos), len(qs))
	}
	for i := range qs {
		if !bytes.Equal(gotRecs[i], wantRecs[i]) {
			t.Errorf("query %d (%v): burst records != per-request records", i, qs[i])
		}
		if got := vos[i].AppendTo(nil); !bytes.Equal(got, wantVOs[i]) {
			t.Errorf("query %d (%v): burst VO != per-request VO", i, qs[i])
		}
		if got := ctxs[i].Stats(); got != wantStats[i] {
			t.Errorf("query %d (%v): burst accesses %+v != per-request accesses %+v",
				i, qs[i], got, wantStats[i])
		}
		mbtree.PutVO(vos[i])
	}
}

// TestProviderServeBurstPinHygiene aborts a cached burst mid-flight and
// checks every bufpool pin is returned.
func TestProviderServeBurstPinHygiene(t *testing.T) {
	sys, _, _ := newBurstPair(t, 4000)
	qs := tomBurstQueries(10)
	boom := errors.New("abort mid-burst")
	lane := exec.NewLane(0)
	var sc BurstScratch
	emitted := 0
	_, err := sys.Provider.ServeBurstCtx(lane.Contexts(len(qs)), qs, &sc, func(int, *record.Record) error {
		emitted++
		if emitted == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("ServeBurstCtx error = %v, want %v", err, boom)
	}
	if n := sys.Provider.cache.PinnedCount(); n != 0 {
		t.Fatalf("PinnedCount after aborted TOM burst = %d, want 0", n)
	}
}

// TestProviderServeBurstTampered checks a tampering provider still
// tampers under burst serving and its VOs fail client verification.
func TestProviderServeBurstTampered(t *testing.T) {
	sys, _, ds := newBurstPair(t, 3000)
	q := busyQuery(t, ds)
	sys.Provider.SetTamper(func(rs []record.Record) []record.Record { return rs[1:] })
	defer sys.Provider.SetTamper(nil)

	qs := []record.Range{q, q}
	lane := exec.NewLane(0)
	var sc BurstScratch
	recs := make([][]record.Record, len(qs))
	vos, err := sys.Provider.ServeBurstCtx(lane.Contexts(len(qs)), qs, &sc, func(qi int, r *record.Record) error {
		recs[qi] = append(recs[qi], *r)
		return nil
	})
	if err != nil {
		t.Fatalf("tampered ServeBurstCtx: %v", err)
	}
	for i := range qs {
		if err := mbtree.VerifyVO(vos[i], recs[i], q.Lo, q.Hi, sys.Owner.Verifier()); err == nil {
			t.Fatalf("tampered burst VO %d passed verification", i)
		}
		mbtree.PutVO(vos[i])
	}
}
