package tom

import (
	"testing"

	"sae/internal/record"
	"sae/internal/workload"
)

func buildShardedTOM(t *testing.T, n, shards int) (*System, *ShardedSystem) {
	t.Helper()
	ds, err := workload.Generate(workload.UNF, n, 55)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewSystem(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedSystem(ds.Records, shards)
	if err != nil {
		t.Fatal(err)
	}
	return single, sharded
}

// TestShardedTOMParity: the merged scatter-gather result equals a
// single-provider run and the stitched VOs verify, including ranges
// spanning >= 3 shard boundaries and boundary-exact endpoints.
func TestShardedTOMParity(t *testing.T) {
	single, sharded := buildShardedTOM(t, 12_000, 5)
	spans := make([]record.Range, sharded.Plan.Shards())
	for i := range spans {
		spans[i] = sharded.Plan.Span(i)
	}
	qs := append(workload.Queries(6, workload.DefaultExtent, 56),
		record.Range{Lo: spans[0].Hi - 100, Hi: spans[4].Lo + 100}, // 4 boundaries
		spans[2], // boundary-exact endpoints
		record.Range{Lo: spans[1].Lo, Hi: spans[3].Lo},
		record.Range{Lo: 0, Hi: record.KeyDomain},
	)
	// An empty range (the single provider rejects it outright) scatters to
	// no shard and verifies as an empty, gapless answer.
	empty, err := sharded.Query(record.Range{Lo: 9, Hi: 2})
	if err != nil || empty.VerifyErr != nil || len(empty.Result) != 0 || len(empty.PerShard) != 0 {
		t.Fatalf("empty-range outcome: %+v (err %v)", empty, err)
	}
	for _, q := range qs {
		want, err := single.Query(q)
		if err != nil {
			t.Fatalf("single TOM %v: %v", q, err)
		}
		if want.VerifyErr != nil {
			t.Fatalf("single TOM %v failed verification: %v", q, want.VerifyErr)
		}
		got, err := sharded.Query(q)
		if err != nil {
			t.Fatalf("sharded TOM %v: %v", q, err)
		}
		if got.VerifyErr != nil {
			t.Fatalf("sharded TOM %v failed stitched verification: %v", q, got.VerifyErr)
		}
		if len(got.Result) != len(want.Result) {
			t.Fatalf("%v: %d records sharded, %d single", q, len(got.Result), len(want.Result))
		}
		for i := range got.Result {
			if got.Result[i].ID != want.Result[i].ID {
				t.Fatalf("%v: result diverges at %d", q, i)
			}
		}
	}
}

// TestShardedTOMSeamSuppression: a record suppressed exactly at a
// partition seam (the last record of one shard's sub-result) is caught by
// the stitched verification — the per-shard VO's completeness grammar
// covers the clamped sub-range up to the seam.
func TestShardedTOMSeamSuppression(t *testing.T) {
	_, sharded := buildShardedTOM(t, 12_000, 4)
	seam := sharded.Plan.Span(1).Hi
	q := record.Range{Lo: seam - 3000, Hi: seam + 3000} // straddles the shard 1/2 seam
	honest, err := sharded.Query(q)
	if err != nil || honest.VerifyErr != nil {
		t.Fatalf("honest run: %v / %v", err, honest.VerifyErr)
	}
	if len(honest.PerShard) != 2 {
		t.Fatalf("query %v touched %d shards, want 2", q, len(honest.PerShard))
	}
	if len(honest.PerShard[0].Result) == 0 || len(honest.PerShard[1].Result) == 0 {
		t.Fatal("seam query returned an empty side; pick a denser range")
	}

	// Drop shard 1's LAST result record — the record adjacent to the seam.
	sharded.Providers[1].SetTamper(func(rs []record.Record) []record.Record {
		if len(rs) == 0 {
			return rs
		}
		return rs[:len(rs)-1]
	})
	out, err := sharded.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.VerifyErr == nil {
		t.Fatal("seam-suppressed record passed stitched verification")
	}
	sharded.Providers[1].SetTamper(nil)

	// Drop shard 2's FIRST record — the other side of the seam.
	sharded.Providers[2].SetTamper(func(rs []record.Record) []record.Record {
		if len(rs) == 0 {
			return rs
		}
		return rs[1:]
	})
	out, err = sharded.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.VerifyErr == nil {
		t.Fatal("seam-suppressed record (right side) passed stitched verification")
	}
	sharded.Providers[2].SetTamper(nil)
}

// TestShardedTOMShardSwapRejected: a provider cannot answer one shard's
// sub-range with another shard's (legitimately empty there) tree — the
// shard identity is bound into the owner's signature.
func TestShardedTOMShardSwapRejected(t *testing.T) {
	_, sharded := buildShardedTOM(t, 8_000, 4)
	seam := sharded.Plan.Span(1).Hi
	q := record.Range{Lo: seam - 2000, Hi: seam + 2000}
	out, err := sharded.Query(q)
	if err != nil || out.VerifyErr != nil {
		t.Fatalf("honest run: %v / %v", err, out.VerifyErr)
	}
	// Simulate the router substituting shard 2's answer for shard 1's
	// sub-range: ask shard 2 directly for shard 1's clamp. Shard 2's tree
	// holds no keys there, so it produces a VO proving emptiness — valid
	// under shard 2's signature, but it must NOT verify as shard 1.
	sub1 := sharded.Plan.Clamp(1, q)
	recs, vo, _, err := sharded.Providers[2].Query(sub1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("shard 2 unexpectedly holds %d records in shard 1's span", len(recs))
	}
	forged := []ShardVO{
		{Shard: 1, Sub: sub1, Result: recs, VO: vo, SPCost: out.PerShard[0].SPCost},
		out.PerShard[1],
	}
	if _, err := sharded.Client.Verify(q, forged); err == nil {
		t.Fatal("swapped-shard VO passed verification: shard identity not bound")
	}
}

// TestShardedTOMGapRejected: evidence whose sub-ranges leave a seam gap
// (or answer the wrong clamp) is rejected before any VO math.
func TestShardedTOMGapRejected(t *testing.T) {
	_, sharded := buildShardedTOM(t, 8_000, 4)
	seam := sharded.Plan.Span(1).Hi
	q := record.Range{Lo: seam - 2000, Hi: seam + 2000}
	out, err := sharded.Query(q)
	if err != nil || out.VerifyErr != nil {
		t.Fatalf("honest run: %v / %v", err, out.VerifyErr)
	}
	// Shrink shard 1's claimed sub-range by one key at the seam: even with
	// a consistent VO for the shrunken range, the tiling check fails.
	shrunk := out.PerShard[0].Sub
	shrunk.Hi--
	recs, vo, _, err := sharded.Providers[1].Query(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	forged := append([]ShardVO(nil), out.PerShard...)
	forged[0] = ShardVO{Shard: 1, Sub: shrunk, Result: recs, VO: vo}
	if _, err := sharded.Client.Verify(q, forged); err == nil {
		t.Fatal("gapped sub-ranges passed verification")
	}
	// Dropping a whole shard's answer must fail too.
	if _, err := sharded.Client.Verify(q, out.PerShard[:1]); err == nil {
		t.Fatal("missing shard answer passed verification")
	}
}

// TestShardedTOMUpdates: updates re-sign the owning shard's bound root and
// queries keep verifying.
func TestShardedTOMUpdates(t *testing.T) {
	_, sharded := buildShardedTOM(t, 6_000, 3)
	key := sharded.Plan.Span(1).Lo + 11
	r, err := sharded.Insert(key, 900_001)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	q := record.Range{Lo: key - 50, Hi: key + 50}
	out, err := sharded.Query(q)
	if err != nil || out.VerifyErr != nil {
		t.Fatalf("post-insert query: %v / %v", err, out.VerifyErr)
	}
	found := false
	for i := range out.Result {
		if out.Result[i].ID == r.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted record missing from sharded TOM result")
	}
	if err := sharded.Delete(r.ID, r.Key); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	out, err = sharded.Query(q)
	if err != nil || out.VerifyErr != nil {
		t.Fatalf("post-delete query: %v / %v", err, out.VerifyErr)
	}
}
