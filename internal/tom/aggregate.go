package tom

import (
	"fmt"
	"sync"
	"time"

	"sae/internal/agg"
	"sae/internal/costmodel"
	"sae/internal/exec"
	"sae/internal/mbtree"
	"sae/internal/record"
	"sae/internal/shard"
)

// TOM's aggregation fast path. Under TOM the provider cannot just assert
// a scalar — there is no trusted party to token it — so the answer IS the
// evidence: an aggregate VO over the MB-Tree's annotated internal nodes
// (mbtree.AggVO). The client replays the VO against the owner-signed
// root; the aggregate falls out of the replay, so a correct signature
// check *produces* the verified scalar rather than confirming a claimed
// one. The VO covers the canonical frontier (O(log n) tokens), not the
// result set, which is where the fast path's response-bytes win over
// scan-plus-VO comes from.

// Aggregate answers an aggregate query with a fresh request context; see
// AggregateCtx.
func (p *Provider) Aggregate(q record.Range) (*mbtree.VO, costmodel.Breakdown, error) {
	return p.AggregateCtx(exec.NewContext(), q)
}

// AggregateCtx builds the aggregate VO for q from the MB-Tree's
// annotations: a canonical-cover descent touching O(log n) nodes and no
// heap pages. The returned VO is freshly allocated (not pooled).
func (p *Provider) AggregateCtx(ctx *exec.Context, q record.Range) (*mbtree.VO, costmodel.Breakdown, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	before := ctx.Stats()
	start := time.Now()
	vo, err := p.tree.AggVOCtx(ctx, q.Lo, q.Hi, p.sig)
	if err != nil {
		return nil, costmodel.Breakdown{}, fmt.Errorf("tom: provider aggregate VO build: %w", err)
	}
	cost := costmodel.Default.Measure(ctx.Stats().Sub(before), time.Since(start))
	return vo, cost, nil
}

// ServeAggregateCtx is the serve-loop variant: the VO comes from the
// mbtree shell pool and the caller must hand it back with mbtree.PutVO
// once encoded.
func (p *Provider) ServeAggregateCtx(ctx *exec.Context, q record.Range) (*mbtree.VO, costmodel.Breakdown, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	before := ctx.Stats()
	start := time.Now()
	shell := mbtree.GetVO()
	vo, err := p.tree.AggVOCtxInto(ctx, q.Lo, q.Hi, p.sig, shell)
	if err != nil {
		mbtree.PutVO(shell)
		return nil, costmodel.Breakdown{}, fmt.Errorf("tom: provider aggregate VO build: %w", err)
	}
	cost := costmodel.Default.Measure(ctx.Stats().Sub(before), time.Since(start))
	return vo, cost, nil
}

// ServeAggBurstCtx builds a burst of aggregate VOs under one read-lock
// acquisition, each canonical-cover descent charged to its own context.
// The VOs come from the mbtree shell pool and are appended to vos (pass a
// [:0] scratch slice); the caller must PutVO each once encoded. An error
// hands every shell built by this call back to the pool and aborts the
// burst — the wire server then falls back to per-request serving.
func (p *Provider) ServeAggBurstCtx(ctxs []*exec.Context, qs []record.Range, vos []*mbtree.VO) ([]*mbtree.VO, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	built := len(vos)
	for i, q := range qs {
		shell := mbtree.GetVO()
		vo, err := p.tree.AggVOCtxInto(ctxs[i], q.Lo, q.Hi, p.sig, shell)
		if err != nil {
			mbtree.PutVO(shell)
			for _, v := range vos[built:] {
				mbtree.PutVO(v)
			}
			return vos[:built], fmt.Errorf("tom: provider burst aggregate VO build: %w", err)
		}
		vos = append(vos, vo)
	}
	return vos, nil
}

// VerifyAggregate replays an aggregate VO against the owner's signature
// and returns the verified scalar. The error is non-nil iff the VO fails
// to prove the aggregate for exactly q.
func (c Client) VerifyAggregate(q record.Range, vo *mbtree.VO) (agg.Agg, costmodel.Breakdown, error) {
	start := time.Now()
	a, err := mbtree.VerifyAggVO(vo, q.Lo, q.Hi, c.Verifier)
	return a, costmodel.Breakdown{CPU: time.Since(start)}, err
}

// AggOutcome captures one verified TOM aggregate round-trip.
type AggOutcome struct {
	Agg        agg.Agg
	VO         *mbtree.VO
	SPCost     costmodel.Breakdown
	ClientCost costmodel.Breakdown
	VerifyErr  error
}

// ResponseTime is provider execution plus client verification (no
// parallel party under TOM).
func (o *AggOutcome) ResponseTime() costmodel.Breakdown {
	return o.SPCost.Add(o.ClientCost)
}

// Aggregate runs the full TOM aggregation protocol for one range.
func (s *System) Aggregate(q record.Range) (*AggOutcome, error) {
	vo, spCost, err := s.Provider.Aggregate(q)
	if err != nil {
		return nil, err
	}
	a, clientCost, verifyErr := s.Client.VerifyAggregate(q, vo)
	return &AggOutcome{
		Agg:        a,
		VO:         vo,
		SPCost:     spCost,
		ClientCost: clientCost,
		VerifyErr:  verifyErr,
	}, nil
}

// ShardAggVO is one shard's contribution to a scattered TOM aggregate
// query: the clamped sub-range and the aggregate VO proving its partial.
type ShardAggVO struct {
	Shard  int
	Sub    record.Range
	VO     *mbtree.VO
	SPCost costmodel.Breakdown
}

// ShardedAggOutcome captures one scattered, verified TOM aggregate
// round-trip.
type ShardedAggOutcome struct {
	Agg        agg.Agg
	PerShard   []ShardAggVO
	ClientCost costmodel.Breakdown
	VerifyErr  error
}

// VOBytes returns the total serialized size of the per-shard aggregate
// VOs.
func (o *ShardedAggOutcome) VOBytes() int {
	n := 0
	for i := range o.PerShard {
		n += o.PerShard[i].VO.Size()
	}
	return n
}

// Aggregate scatters an aggregate query to the overlapping shards and
// verifies the stitched evidence: every shard's VO must replay to that
// shard's bound signed root for exactly the clamp the client computed
// from the plan, and the verified partials must seam-check back into q
// (shard.MergeAgg) before merging.
func (s *ShardedSystem) Aggregate(q record.Range) (*ShardedAggOutcome, error) {
	subs := s.Plan.Scatter(q)
	out := &ShardedAggOutcome{}
	if len(subs) == 0 {
		return out, nil
	}
	replies := make([]ShardAggVO, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx, sub := subs[i].Shard, subs[i].Sub
			vo, cost, err := s.Providers[idx].AggregateCtx(exec.NewContext(), sub)
			if err != nil {
				errs[i] = fmt.Errorf("tom: shard %d: %w", idx, err)
				return
			}
			replies[i] = ShardAggVO{Shard: idx, Sub: sub, VO: vo, SPCost: cost}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out.PerShard = replies
	out.ClientCost, out.Agg, out.VerifyErr = s.Client.VerifyAggregate(q, replies)
	return out, nil
}

// VerifyAggregate checks scattered TOM aggregate evidence for q and
// returns the merged scalar. Each shard's VO verifies under that shard's
// bound signature for the plan's clamp (never the relay's claim), then
// the partials seam-check and merge.
func (c ShardedClient) VerifyAggregate(q record.Range, perShard []ShardAggVO) (costmodel.Breakdown, agg.Agg, error) {
	start := time.Now()
	fail := func(err error) (costmodel.Breakdown, agg.Agg, error) {
		return costmodel.Breakdown{CPU: time.Since(start)}, agg.Agg{}, err
	}
	subs := c.Plan.Scatter(q)
	if len(subs) == 0 {
		if len(perShard) != 0 {
			return fail(fmt.Errorf("%w: evidence for an empty range", mbtree.ErrBadVO))
		}
		return costmodel.Breakdown{CPU: time.Since(start)}, agg.Agg{}, nil
	}
	if len(perShard) != len(subs) {
		return fail(fmt.Errorf("%w: %d shard answers for %d overlapping shards",
			mbtree.ErrBadVO, len(perShard), len(subs)))
	}
	parts := make([]shard.AggPart, len(subs))
	for i := range perShard {
		sv := &perShard[i]
		idx := subs[i].Shard
		if sv.Shard != idx {
			return fail(fmt.Errorf("%w: answer %d is from shard %d, want %d", mbtree.ErrBadVO, i, sv.Shard, idx))
		}
		if sv.Sub != subs[i].Sub {
			return fail(fmt.Errorf("%w: shard %d answered sub-range %v, want %v", mbtree.ErrBadVO, idx, sv.Sub, subs[i].Sub))
		}
		a, err := mbtree.VerifyAggVOBound(sv.VO, sv.Sub.Lo, sv.Sub.Hi, c.Verifier, ShardBinding(c.Plan, idx))
		if err != nil {
			return fail(fmt.Errorf("shard %d: %w", idx, err))
		}
		parts[i] = shard.AggPart{Sub: sv.Sub, Agg: a}
	}
	merged, err := shard.MergeAgg(q, parts)
	if err != nil {
		return fail(fmt.Errorf("%w: %v", mbtree.ErrBadVO, err))
	}
	return costmodel.Breakdown{CPU: time.Since(start)}, merged, nil
}
