package tom

import (
	"testing"

	"sae/internal/exec"
	"sae/internal/record"
	"sae/internal/wal"
	"sae/internal/workload"
)

// TestApplyBatchParity applies the same updates one at a time (a root
// re-sign each) and as one batch (a single re-sign at the end); queries
// and VO verification must come out identical, because the tree only
// depends on the final entry set and the signature only on the final
// root.
func TestApplyBatchParity(t *testing.T) {
	serial, ds := newTestSystem(t, 2000, workload.UNF)
	batched, err := NewSystem(ds.Records)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}

	var ops []wal.Op
	nextID := record.ID(1000000)
	for i := 0; i < 60; i++ {
		r := record.Synthesize(nextID, record.Key((i*6151)%record.KeyDomain))
		nextID++
		ops = append(ops, wal.InsertOp(r))
	}
	for i := 0; i < 20; i++ {
		r := ds.Records[i*29]
		ops = append(ops, wal.DeleteOp(r.ID, r.Key))
	}

	for _, op := range ops {
		switch op.Kind {
		case wal.OpInsert:
			if err := serial.Provider.ApplyInsert(op.Rec, serial.Owner); err != nil {
				t.Fatalf("serial insert: %v", err)
			}
		case wal.OpDelete:
			if err := serial.Provider.ApplyDelete(op.ID, op.Key, serial.Owner); err != nil {
				t.Fatalf("serial delete: %v", err)
			}
		}
	}
	if err := batched.Provider.ApplyBatchCtx(exec.NewContext(), ops, batched.Owner); err != nil {
		t.Fatalf("ApplyBatchCtx: %v", err)
	}

	for _, q := range workload.Queries(15, workload.DefaultExtent, 888) {
		so, err := serial.Query(q)
		if err != nil {
			t.Fatalf("serial query: %v", err)
		}
		bo, err := batched.Query(q)
		if err != nil {
			t.Fatalf("batched query: %v", err)
		}
		if so.VerifyErr != nil || bo.VerifyErr != nil {
			t.Fatalf("verification failed: serial %v, batched %v", so.VerifyErr, bo.VerifyErr)
		}
		if len(so.Result) != len(bo.Result) {
			t.Fatalf("result sizes diverged for %v: %d vs %d", q, len(so.Result), len(bo.Result))
		}
		for i := range so.Result {
			if !so.Result[i].Equal(&bo.Result[i]) {
				t.Fatalf("result %d diverged for %v", i, q)
			}
		}
	}
}

// TestApplyBatchUnknownDeleteFails ensures a bad op surfaces an error
// instead of corrupting the provider.
func TestApplyBatchUnknownDeleteFails(t *testing.T) {
	sys, _ := newTestSystem(t, 200, workload.UNF)
	ops := []wal.Op{wal.DeleteOp(987654321, 1)}
	if err := sys.Provider.ApplyBatchCtx(exec.NewContext(), ops, sys.Owner); err == nil {
		t.Fatalf("deleting an unknown id in a batch succeeded")
	}
}
