package tom

import (
	"testing"

	"sae/internal/agg"
	"sae/internal/record"
	"sae/internal/workload"
)

func tomRefAgg(recs []record.Record, q record.Range) agg.Agg {
	var a agg.Agg
	for i := range recs {
		if q.Contains(recs[i].Key) {
			a = a.Add(recs[i].Key)
		}
	}
	return a.Normalize()
}

// TestTOMAggregateParity: the VO-verified scalar equals folding the
// records of a verified range scan.
func TestTOMAggregateParity(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 3000, 100)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sys, err := NewSystem(ds.Records)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	for _, q := range workload.Queries(20, workload.DefaultExtent, 121) {
		out, err := sys.Aggregate(q)
		if err != nil {
			t.Fatalf("Aggregate(%v): %v", q, err)
		}
		if out.VerifyErr != nil {
			t.Fatalf("honest aggregate VO rejected for %v: %v", q, out.VerifyErr)
		}
		scan, err := sys.Query(q)
		if err != nil {
			t.Fatalf("Query(%v): %v", q, err)
		}
		if scan.VerifyErr != nil {
			t.Fatalf("range scan rejected: %v", scan.VerifyErr)
		}
		var folded agg.Agg
		for i := range scan.Result {
			folded = folded.Add(scan.Result[i].Key)
		}
		if out.Agg != folded.Normalize() {
			t.Fatalf("aggregate %v, scan-and-fold %v for %v", out.Agg, folded, q)
		}
	}
}

// TestTOMAggregateAfterUpdates: the annotated MB-Tree keeps producing
// correct, verifiable aggregate VOs through insert/delete maintenance
// with root re-signing.
func TestTOMAggregateAfterUpdates(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 1000, 100)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sys, err := NewSystem(ds.Records)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	live := append([]record.Record(nil), ds.Records...)
	nextID := record.ID(1_000_000)
	for step := 0; step < 120; step++ {
		if step%3 != 0 {
			k := record.Key((step * 7919) % int(record.KeyDomain))
			r, err := sys.Insert(k, nextID)
			if err != nil {
				t.Fatalf("Insert: %v", err)
			}
			nextID++
			live = append(live, r)
		} else {
			victim := live[len(live)-1]
			if err := sys.Delete(victim.ID, victim.Key); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			live = live[:len(live)-1]
		}
	}
	for _, q := range workload.Queries(12, workload.DefaultExtent, 122) {
		out, err := sys.Aggregate(q)
		if err != nil {
			t.Fatalf("Aggregate: %v", err)
		}
		if out.VerifyErr != nil {
			t.Fatalf("aggregate VO rejected after updates: %v", out.VerifyErr)
		}
		if want := tomRefAgg(live, q); out.Agg != want {
			t.Fatalf("aggregate %v, reference %v after updates", out.Agg, want)
		}
	}
}

// TestTOMShardedAggregateParity: stitched per-shard aggregate VOs merge
// to the single-provider answer.
func TestTOMShardedAggregateParity(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 3000, 100)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, shards := range []int{1, 3, 5} {
		sys, err := NewShardedSystem(ds.Records, shards)
		if err != nil {
			t.Fatalf("NewShardedSystem(%d): %v", shards, err)
		}
		for _, q := range workload.Queries(12, workload.DefaultExtent, 123) {
			out, err := sys.Aggregate(q)
			if err != nil {
				t.Fatalf("shards=%d Aggregate: %v", shards, err)
			}
			if out.VerifyErr != nil {
				t.Fatalf("shards=%d honest evidence rejected: %v", shards, out.VerifyErr)
			}
			if want := tomRefAgg(ds.Records, q); out.Agg != want {
				t.Fatalf("shards=%d aggregate %v, want %v", shards, out.Agg, want)
			}
		}
	}
}

// TestTOMShardedAggregateSeamAttacks: a relay suppressing, reordering or
// re-clamping per-shard aggregate evidence is rejected.
func TestTOMShardedAggregateSeamAttacks(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 2500, 100)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sys, err := NewShardedSystem(ds.Records, 4)
	if err != nil {
		t.Fatalf("NewShardedSystem: %v", err)
	}
	q := record.Range{Lo: 0, Hi: record.KeyDomain}
	out, err := sys.Aggregate(q)
	if err != nil || out.VerifyErr != nil {
		t.Fatalf("honest run: err=%v verify=%v", err, out.VerifyErr)
	}
	honest := out.PerShard

	check := func(name string, perShard []ShardAggVO) {
		t.Helper()
		if _, _, err := sys.Client.VerifyAggregate(q, perShard); err == nil {
			t.Fatalf("%s: tampered evidence verified", name)
		}
	}
	check("suppress-shard", append(append([]ShardAggVO{}, honest[:1]...), honest[2:]...))
	check("empty", nil)

	swapped := append([]ShardAggVO{}, honest...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	check("reorder", swapped)

	// Substitute one shard's VO with another shard's (frontier/tree
	// substitution): the bound signature pins each VO to its shard.
	subst := append([]ShardAggVO{}, honest...)
	subst[1].VO = honest[2].VO
	check("vo-substitution", subst)

	// Re-clamp a shard's claimed sub-range to shrink coverage.
	reclamped := append([]ShardAggVO{}, honest...)
	reclamped[1].Sub.Hi = reclamped[1].Sub.Lo
	check("re-clamp", reclamped)
}

// TestTOMAggregateVOFrontierBytes: the aggregate VO is asymptotically
// smaller than the range VO + result for wide ranges.
func TestTOMAggregateVOFrontierBytes(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 5000, 100)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sys, err := NewSystem(ds.Records)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	q := record.Range{Lo: 0, Hi: record.KeyDomain}
	aggOut, err := sys.Aggregate(q)
	if err != nil || aggOut.VerifyErr != nil {
		t.Fatalf("Aggregate: err=%v verify=%v", err, aggOut.VerifyErr)
	}
	scan, err := sys.Query(q)
	if err != nil || scan.VerifyErr != nil {
		t.Fatalf("Query: err=%v verify=%v", err, scan.VerifyErr)
	}
	scanBytes := scan.VO.Size() + len(scan.Result)*record.Size
	if aggOut.VO.Size()*100 > scanBytes {
		t.Fatalf("aggregate response %dB not 100x under scan response %dB",
			aggOut.VO.Size(), scanBytes)
	}
}
