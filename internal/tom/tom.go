// Package tom implements the Traditional Outsourcing Model the paper
// compares against: the data owner builds an authenticated data structure
// (the MB-Tree), signs its root digest, and the service provider answers
// every query with both the result and a verification object (VO) from
// which the client reconstructs the signed root.
//
// Contrast with package core (SAE): here the owner must maintain an ADS,
// the provider needs a modified DBMS that builds VOs, and each query ships
// kilobytes of authentication data instead of a 20-byte token.
package tom

import (
	"fmt"
	"sync"
	"time"

	"sae/internal/bufpool"
	"sae/internal/core"
	"sae/internal/costmodel"
	"sae/internal/digest"
	"sae/internal/exec"
	"sae/internal/heapfile"
	"sae/internal/mbtree"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/sigs"
	"sae/internal/wal"
)

// Owner holds the data owner's signing key. Under TOM the owner also keeps
// a full copy of the ADS; for the experiments only its signing duty matters
// (storage is measured at the SP), so the owner is modeled as the signer.
type Owner struct {
	signer *sigs.Signer
}

// NewOwner generates the owner's key pair.
func NewOwner() (*Owner, error) {
	s, err := sigs.NewSigner()
	if err != nil {
		return nil, err
	}
	return &Owner{signer: s}, nil
}

// Sign signs a root digest (done at initial outsourcing and after every
// update batch).
func (o *Owner) Sign(root digest.Digest) ([]byte, error) {
	return o.signer.Sign(root)
}

// Verifier returns the public verifier clients use.
func (o *Owner) Verifier() *sigs.Verifier { return o.signer.Verifier() }

// Tamper mirrors core.Tamper for the TOM provider.
type Tamper func([]record.Record) []record.Record

// Provider is the TOM service provider: heap file + MB-Tree + the owner's
// root signature.
type Provider struct {
	mu     sync.RWMutex
	store  *pagestore.Counting
	cache  *bufpool.Cache // decoded-node cache shared by heap + MB-Tree
	heap   *heapfile.File
	tree   *mbtree.Tree
	sig    []byte
	byID   map[record.ID]heapfile.RID
	tamper Tamper
	// binding transforms the root digest before the owner signs it; a
	// sharded deployment folds the shard's identity and span in (see
	// ShardBinding), so one shard's signature cannot vouch for another
	// shard's tree. Nil is the identity (the single-provider protocol).
	binding func(digest.Digest) digest.Digest
}

// SetRootBinding installs the root binding applied before every owner
// signature; call it before Load. Clients must verify with the same
// binding (mbtree.VerifyVOBound).
func (p *Provider) SetRootBinding(bind func(digest.Digest) digest.Digest) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.binding = bind
}

// boundRoot returns the digest the owner signs for the current tree root.
// Caller holds p.mu.
func (p *Provider) boundRoot() digest.Digest {
	root := p.tree.RootDigest()
	if p.binding != nil {
		return p.binding(root)
	}
	return root
}

// NewProvider returns a provider backed by the given page store, with the
// default charge-every-access decoded-node cache (see ConfigureCache).
func NewProvider(store pagestore.Store) *Provider {
	return &Provider{
		store: pagestore.NewCounting(store),
		cache: bufpool.New(bufpool.DefaultCapacity, bufpool.ChargeAllAccesses),
		byID:  make(map[record.ID]heapfile.RID),
	}
}

// ConfigureCache replaces the provider's decoded-node cache; pages <= 0
// disables caching.
func (p *Provider) ConfigureCache(pages int, policy bufpool.ChargePolicy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pages <= 0 {
		p.cache = nil
	} else {
		p.cache = bufpool.New(pages, policy)
	}
	if p.heap != nil {
		p.heap.UseCache(p.cache)
	}
	if p.tree != nil {
		p.tree.UseCache(p.cache)
	}
}

// CacheStats returns the decoded-node cache counters (zero when disabled).
func (p *Provider) CacheStats() bufpool.Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.cache == nil {
		return bufpool.Stats{}
	}
	return p.cache.Stats()
}

// Load builds the heap file and the MB-Tree from the owner's dataset
// (sorted by key) and obtains the owner's signature over the root digest.
func (p *Provider) Load(records []record.Record, owner *Owner) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	heap, rids, err := heapfile.Build(p.store, records)
	if err != nil {
		return fmt.Errorf("tom: provider loading heap: %w", err)
	}
	// Digesting the dataset is the load's SHA-1 bill; fan it out across
	// the crypto worker pool before the single-threaded tree build.
	digests := make([]digest.Digest, len(records))
	digest.RecordDigests(digests, records, 0)
	entries := make([]mbtree.Entry, len(records))
	for i := range records {
		entries[i] = mbtree.Entry{
			Key:    records[i].Key,
			RID:    rids[i],
			Digest: digests[i],
		}
		p.byID[records[i].ID] = rids[i]
	}
	tree, err := mbtree.Bulkload(p.store, entries)
	if err != nil {
		return fmt.Errorf("tom: provider loading MB-Tree: %w", err)
	}
	heap.UseCache(p.cache)
	tree.UseCache(p.cache)
	p.heap = heap
	p.tree = tree
	sig, err := owner.Sign(p.boundRoot())
	if err != nil {
		return fmt.Errorf("tom: owner signing root: %w", err)
	}
	p.sig = sig
	return nil
}

// Query answers a range query with a fresh request context; see QueryCtx.
func (p *Provider) Query(q record.Range) ([]record.Record, *mbtree.VO, core.QueryCost, error) {
	return p.QueryCtx(exec.NewContext(), q)
}

// QueryCtx answers a range query with the result and its VO. The VO embeds
// the boundary records and the owner's signature; its serialized size is
// the communication overhead of Figure 5. The cost's Index component covers
// the MB-Tree traversal plus VO assembly (including the boundary-record
// reads); Fetch covers the dataset-file scan for the result. Costs come
// from the request context's counters, so concurrent queries measure
// exactly their own accesses; phase CPU is anchored per phase.
func (p *Provider) QueryCtx(ctx *exec.Context, q record.Range) ([]record.Record, *mbtree.VO, core.QueryCost, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var qc core.QueryCost
	before := ctx.Stats()
	start := time.Now()
	rids, vo, err := p.tree.RangeVOCtx(ctx, q.Lo, q.Hi, p.heap, p.sig)
	if err != nil {
		return nil, nil, qc, fmt.Errorf("tom: provider VO build: %w", err)
	}
	mid := ctx.Stats()
	fetchStart := time.Now()
	qc.Index = costmodel.Default.Measure(mid.Sub(before), fetchStart.Sub(start))
	recs, err := p.heap.GetManyCtx(ctx, rids)
	if err != nil {
		return nil, nil, qc, fmt.Errorf("tom: provider record fetch: %w", err)
	}
	qc.Fetch = costmodel.Default.Measure(ctx.Stats().Sub(mid), time.Since(fetchStart))
	if p.tamper != nil {
		recs = p.tamper(recs)
	}
	return recs, vo, qc, nil
}

// ServeQueryCtx is the zero-copy serve path: it runs the same MB-Tree VO
// build as QueryCtx, then streams each result record to emit as a pointer
// borrowed from the pinned decoded heap page instead of materializing the
// result slice. The returned VO comes from the mbtree shell pool — the
// caller must hand it back with mbtree.PutVO once encoded. Node accesses,
// phase split and VO bytes are identical to QueryCtx. A tampering
// provider (SetTamper) falls back to the materializing path so attack
// experiments behave identically on both entry points.
func (p *Provider) ServeQueryCtx(ctx *exec.Context, q record.Range, emit func(*record.Record) error) (*mbtree.VO, int, core.QueryCost, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var qc core.QueryCost
	if p.tamper != nil {
		return p.serveTampered(ctx, q, emit)
	}
	before := ctx.Stats()
	start := time.Now()
	shell := mbtree.GetVO()
	rids, vo, err := p.tree.RangeVOCtxInto(ctx, q.Lo, q.Hi, p.heap, p.sig, shell)
	if err != nil {
		mbtree.PutVO(shell)
		return nil, 0, qc, fmt.Errorf("tom: provider VO build: %w", err)
	}
	mid := ctx.Stats()
	fetchStart := time.Now()
	qc.Index = costmodel.Default.Measure(mid.Sub(before), fetchStart.Sub(start))
	n := 0
	err = p.heap.ServeManyCtx(ctx, rids, func(r *record.Record) error {
		n++
		return emit(r)
	})
	if err != nil {
		mbtree.PutVO(vo)
		return nil, n, qc, fmt.Errorf("tom: provider record serve: %w", err)
	}
	qc.Fetch = costmodel.Default.Measure(ctx.Stats().Sub(mid), time.Since(fetchStart))
	return vo, n, qc, nil
}

// BurstScratch holds the reusable per-lane buffers for TOM burst serving;
// one burst at a time per scratch, no locking (see core.BurstScratch).
type BurstScratch struct {
	runs [][]heapfile.RID
	vos  []*mbtree.VO
}

// ServeBurstCtx serves a burst of TOM queries under ONE read-lock
// acquisition: every query's MB-Tree VO is built first (charged to its
// own context), then all heap runs are served through one bufpool pin
// epoch via heapfile.ServeBurstCtx. emit(qi, r) receives query qi's
// records under the usual no-retain borrow rule. The returned VOs align
// with qs and come from the mbtree shell pool — on success the CALLER
// returns each with mbtree.PutVO once encoded (the slice itself is lane
// scratch, valid until the next burst on sc); on error every shell built
// so far is put back here and nil is returned. VO bytes, node accesses
// and results are bit-identical to per-request ServeQueryCtx calls. A
// tampering provider falls back to the materializing per-query path.
func (p *Provider) ServeBurstCtx(ctxs []*exec.Context, qs []record.Range, sc *BurstScratch, emit func(int, *record.Record) error) ([]*mbtree.VO, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	sc.runs = sc.runs[:0]
	sc.vos = sc.vos[:0]
	ok := false
	defer func() {
		if !ok {
			for _, vo := range sc.vos {
				mbtree.PutVO(vo)
			}
			sc.vos = sc.vos[:0]
		}
	}()
	if p.tamper != nil {
		for qi := range qs {
			qi := qi
			vo, _, _, err := p.serveTampered(ctxs[qi], qs[qi], func(r *record.Record) error {
				return emit(qi, r)
			})
			if err != nil {
				return nil, err
			}
			sc.vos = append(sc.vos, vo)
		}
		ok = true
		return sc.vos, nil
	}
	for qi, q := range qs {
		shell := mbtree.GetVO()
		rids, vo, err := p.tree.RangeVOCtxInto(ctxs[qi], q.Lo, q.Hi, p.heap, p.sig, shell)
		if err != nil {
			mbtree.PutVO(shell)
			return nil, fmt.Errorf("tom: provider burst VO build: %w", err)
		}
		sc.vos = append(sc.vos, vo)
		sc.runs = append(sc.runs, rids)
	}
	if err := p.heap.ServeBurstCtx(ctxs, sc.runs, emit); err != nil {
		return nil, fmt.Errorf("tom: provider burst record serve: %w", err)
	}
	ok = true
	return sc.vos, nil
}

// serveTampered routes a ServeQueryCtx call through the materializing
// query path so the tamper hook sees the full result slice. Caller holds
// the read lock. The VO still comes from the shell pool so the caller's
// PutVO contract is uniform.
func (p *Provider) serveTampered(ctx *exec.Context, q record.Range, emit func(*record.Record) error) (*mbtree.VO, int, core.QueryCost, error) {
	var qc core.QueryCost
	before := ctx.Stats()
	start := time.Now()
	shell := mbtree.GetVO()
	rids, vo, err := p.tree.RangeVOCtxInto(ctx, q.Lo, q.Hi, p.heap, p.sig, shell)
	if err != nil {
		mbtree.PutVO(shell)
		return nil, 0, qc, fmt.Errorf("tom: provider VO build: %w", err)
	}
	mid := ctx.Stats()
	fetchStart := time.Now()
	qc.Index = costmodel.Default.Measure(mid.Sub(before), fetchStart.Sub(start))
	recs, err := p.heap.GetManyCtx(ctx, rids)
	if err != nil {
		mbtree.PutVO(vo)
		return nil, 0, qc, fmt.Errorf("tom: provider record fetch: %w", err)
	}
	qc.Fetch = costmodel.Default.Measure(ctx.Stats().Sub(mid), time.Since(fetchStart))
	recs = p.tamper(recs)
	for i := range recs {
		if err := emit(&recs[i]); err != nil {
			mbtree.PutVO(vo)
			return nil, i, qc, err
		}
	}
	return vo, len(recs), qc, nil
}

// ApplyInsert stores a new record with a fresh request context; see
// ApplyInsertCtx.
func (p *Provider) ApplyInsert(r record.Record, owner *Owner) error {
	return p.ApplyInsertCtx(exec.NewContext(), r, owner)
}

// ApplyInsertCtx stores a new record, updates the MB-Tree and gets the
// root re-signed by the owner, charging page accesses to ctx.
func (p *Provider) ApplyInsertCtx(ctx *exec.Context, r record.Record, owner *Owner) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rid, err := p.heap.AppendCtx(ctx, r)
	if err != nil {
		return fmt.Errorf("tom: provider inserting record: %w", err)
	}
	e := mbtree.Entry{Key: r.Key, RID: rid, Digest: digest.OfRecord(&r)}
	if err := p.tree.InsertCtx(ctx, e); err != nil {
		return fmt.Errorf("tom: provider indexing record: %w", err)
	}
	p.byID[r.ID] = rid
	sig, err := owner.Sign(p.boundRoot())
	if err != nil {
		return fmt.Errorf("tom: owner re-signing root: %w", err)
	}
	p.sig = sig
	return nil
}

// ApplyDelete removes a record with a fresh request context; see
// ApplyDeleteCtx.
func (p *Provider) ApplyDelete(id record.ID, key record.Key, owner *Owner) error {
	return p.ApplyDeleteCtx(exec.NewContext(), id, key, owner)
}

// ApplyDeleteCtx removes a record and gets the root re-signed, charging
// page accesses to ctx.
func (p *Provider) ApplyDeleteCtx(ctx *exec.Context, id record.ID, key record.Key, owner *Owner) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rid, ok := p.byID[id]
	if !ok {
		return fmt.Errorf("tom: provider has no record with id %d", id)
	}
	if err := p.tree.DeleteCtx(ctx, mbtree.Entry{Key: key, RID: rid}); err != nil {
		return fmt.Errorf("tom: provider unindexing record: %w", err)
	}
	if err := p.heap.DeleteCtx(ctx, rid); err != nil {
		return fmt.Errorf("tom: provider deleting record: %w", err)
	}
	delete(p.byID, id)
	sig, err := owner.Sign(p.boundRoot())
	if err != nil {
		return fmt.Errorf("tom: owner re-signing root: %w", err)
	}
	p.sig = sig
	return nil
}

// ApplyBatchCtx applies a whole commit group under one lock with ONE
// owner signature at the end — TOM's analogue of the SAE group commit.
// The per-update RSA re-sign is TOM's dominant write cost; batching
// amortizes it to sig/group, which is exactly the comparison the write
// benchmark draws. Digests fan out across the crypto pool in one
// dispatch, like the load path.
func (p *Provider) ApplyBatchCtx(ctx *exec.Context, ops []wal.Op, owner *Owner) error {
	var inserts []record.Record
	for i := range ops {
		if ops[i].Kind == wal.OpInsert {
			inserts = append(inserts, ops[i].Rec)
		}
	}
	var digests []digest.Digest
	if len(inserts) > 0 {
		digests = make([]digest.Digest, len(inserts))
		digest.RecordDigests(digests, inserts, 0)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	di := 0
	for i := range ops {
		switch ops[i].Kind {
		case wal.OpInsert:
			r := &ops[i].Rec
			rid, err := p.heap.AppendCtx(ctx, *r)
			if err != nil {
				return fmt.Errorf("tom: provider inserting record: %w", err)
			}
			e := mbtree.Entry{Key: r.Key, RID: rid, Digest: digests[di]}
			di++
			if err := p.tree.InsertCtx(ctx, e); err != nil {
				return fmt.Errorf("tom: provider indexing record: %w", err)
			}
			p.byID[r.ID] = rid
		case wal.OpDelete:
			rid, ok := p.byID[ops[i].ID]
			if !ok {
				return fmt.Errorf("tom: provider has no record with id %d", ops[i].ID)
			}
			if err := p.tree.DeleteCtx(ctx, mbtree.Entry{Key: ops[i].Key, RID: rid}); err != nil {
				return fmt.Errorf("tom: provider unindexing record: %w", err)
			}
			if err := p.heap.DeleteCtx(ctx, rid); err != nil {
				return fmt.Errorf("tom: provider deleting record: %w", err)
			}
			delete(p.byID, ops[i].ID)
		default:
			return fmt.Errorf("tom: provider cannot apply op kind %d", ops[i].Kind)
		}
	}
	sig, err := owner.Sign(p.boundRoot())
	if err != nil {
		return fmt.Errorf("tom: owner re-signing root: %w", err)
	}
	p.sig = sig
	return nil
}

// SetTamper installs (or clears) result tampering for attack experiments.
func (p *Provider) SetTamper(t Tamper) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tamper = t
}

// Stats exposes the provider's page-access counters.
func (p *Provider) Stats() pagestore.Stats { return p.store.Stats() }

// StorageBytes returns the provider's footprint (dataset + MB-Tree).
func (p *Provider) StorageBytes() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.heap.Bytes() + p.tree.Bytes()
}

// IndexHeight returns the MB-Tree height.
func (p *Provider) IndexHeight() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.tree.Height()
}

// Client verifies TOM results: it reconstructs the MB-Tree root from the VO
// and the received records and checks the owner's signature.
type Client struct {
	Verifier *sigs.Verifier
}

// Verify returns nil iff the result is provably sound and complete. The
// breakdown is client CPU (hashing every record, rebuilding the Merkle
// path, one RSA verification) — Figure 7's TOM series.
func (c Client) Verify(q record.Range, result []record.Record, vo *mbtree.VO) (costmodel.Breakdown, error) {
	start := time.Now()
	err := mbtree.VerifyVO(vo, result, q.Lo, q.Hi, c.Verifier)
	return costmodel.Breakdown{CPU: time.Since(start)}, err
}

// System wires owner, provider and client for examples and experiments.
type System struct {
	Owner    *Owner
	Provider *Provider
	Client   Client
}

// NewSystem outsources a dataset (sorted by key) under TOM, with a
// charge-every-access decoded-node cache sized to the dataset's working
// set (bufpool.CapacityFor) at the provider.
func NewSystem(sorted []record.Record) (*System, error) {
	return NewSystemCache(sorted, bufpool.CapacityFor(len(sorted)), bufpool.ChargeAllAccesses)
}

// NewSystemCache is NewSystem with an explicit provider cache
// configuration; pages <= 0 disables caching.
func NewSystemCache(sorted []record.Record, pages int, policy bufpool.ChargePolicy) (*System, error) {
	owner, err := NewOwner()
	if err != nil {
		return nil, err
	}
	p := NewProvider(pagestore.NewMem())
	p.ConfigureCache(pages, policy)
	if err := p.Load(sorted, owner); err != nil {
		return nil, err
	}
	return &System{Owner: owner, Provider: p, Client: Client{Verifier: owner.Verifier()}}, nil
}

// QueryOutcome captures one verified TOM query round-trip.
type QueryOutcome struct {
	Result     []record.Record
	VO         *mbtree.VO
	SPCost     core.QueryCost
	ClientCost costmodel.Breakdown
	VerifyErr  error
}

// ResponseTime is SP execution plus client verification (no parallel party
// under TOM).
func (o *QueryOutcome) ResponseTime() costmodel.Breakdown {
	return o.SPCost.Total().Add(o.ClientCost)
}

// Query runs the full TOM protocol for one range query.
func (s *System) Query(q record.Range) (*QueryOutcome, error) {
	result, vo, spCost, err := s.Provider.Query(q)
	if err != nil {
		return nil, err
	}
	clientCost, verifyErr := s.Client.Verify(q, result, vo)
	return &QueryOutcome{
		Result:     result,
		VO:         vo,
		SPCost:     spCost,
		ClientCost: clientCost,
		VerifyErr:  verifyErr,
	}, nil
}

// Insert routes an owner-side insertion through the provider with
// re-signing.
func (s *System) Insert(key record.Key, id record.ID) (record.Record, error) {
	r := record.Synthesize(id, key)
	return r, s.Provider.ApplyInsert(r, s.Owner)
}

// Delete routes an owner-side deletion through the provider.
func (s *System) Delete(id record.ID, key record.Key) error {
	return s.Provider.ApplyDelete(id, key, s.Owner)
}
