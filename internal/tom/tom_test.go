package tom

import (
	"testing"

	"sae/internal/record"
	"sae/internal/sigs"
	"sae/internal/workload"
)

func newTestSystem(t *testing.T, n int, dist workload.Distribution) (*System, *workload.Dataset) {
	t.Helper()
	ds, err := workload.Generate(dist, n, 200)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sys, err := NewSystem(ds.Records)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys, ds
}

func refResult(ds *workload.Dataset, q record.Range) []record.Record {
	var out []record.Record
	for i := range ds.Records {
		if q.Contains(ds.Records[i].Key) {
			out = append(out, ds.Records[i])
		}
	}
	return out
}

func TestHonestQueryVerifies(t *testing.T) {
	sys, ds := newTestSystem(t, 3000, workload.UNF)
	for _, q := range workload.Queries(15, workload.DefaultExtent, 201) {
		out, err := sys.Query(q)
		if err != nil {
			t.Fatalf("Query(%v): %v", q, err)
		}
		if out.VerifyErr != nil {
			t.Fatalf("honest result rejected for %v: %v", q, out.VerifyErr)
		}
		if want := refResult(ds, q); len(out.Result) != len(want) {
			t.Fatalf("result size %d, want %d", len(out.Result), len(want))
		}
	}
}

func busyQuery(t *testing.T, ds *workload.Dataset) record.Range {
	t.Helper()
	for _, q := range workload.Queries(50, workload.DefaultExtent, 202) {
		if len(refResult(ds, q)) >= 3 {
			return q
		}
	}
	t.Fatal("no query with enough results")
	return record.Range{}
}

func TestTamperedResultsDetected(t *testing.T) {
	sys, ds := newTestSystem(t, 3000, workload.UNF)
	q := busyQuery(t, ds)
	attacks := map[string]Tamper{
		"drop": func(rs []record.Record) []record.Record { return rs[1:] },
		"modify": func(rs []record.Record) []record.Record {
			out := append([]record.Record(nil), rs...)
			out[0].Payload[3] ^= 0x55
			return out
		},
		"inject": func(rs []record.Record) []record.Record {
			fake := record.Synthesize(10_000_000, (q.Lo+q.Hi)/2)
			return append(append([]record.Record(nil), rs...), fake)
		},
	}
	for name, tamper := range attacks {
		t.Run(name, func(t *testing.T) {
			sys.Provider.SetTamper(tamper)
			defer sys.Provider.SetTamper(nil)
			out, err := sys.Query(q)
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			if out.VerifyErr == nil {
				t.Fatalf("%s attack not detected", name)
			}
		})
	}
}

func TestUpdatesResignRoot(t *testing.T) {
	sys, _ := newTestSystem(t, 1000, workload.UNF)
	var recs []record.Record
	for i := 0; i < 10; i++ {
		r, err := sys.Insert(record.Key(4000+i*10), record.ID(50_000+i))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		recs = append(recs, r)
	}
	q := record.Range{Lo: 4000, Hi: 4100}
	out, err := sys.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if out.VerifyErr != nil {
		t.Fatalf("verification failed after inserts: %v", out.VerifyErr)
	}
	for _, r := range recs[:5] {
		if err := sys.Delete(r.ID, r.Key); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	out, err = sys.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if out.VerifyErr != nil {
		t.Fatalf("verification failed after deletes: %v", out.VerifyErr)
	}
}

func TestVOSizeVersusVT(t *testing.T) {
	// The headline Figure 5 contrast: TOM's per-query authentication data
	// is orders of magnitude larger than SAE's 20-byte token.
	sys, ds := newTestSystem(t, 3000, workload.UNF)
	q := busyQuery(t, ds)
	out, err := sys.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if out.VO.Size() < 50*20 {
		t.Fatalf("VO size %d suspiciously small", out.VO.Size())
	}
}

func TestWrongVerifierRejects(t *testing.T) {
	sys, ds := newTestSystem(t, 1000, workload.UNF)
	q := busyQuery(t, ds)
	out, err := sys.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	stranger, err := sigs.NewSigner()
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	c := Client{Verifier: stranger.Verifier()}
	if _, err := c.Verify(q, out.Result, out.VO); err == nil {
		t.Fatal("client accepted a VO under a stranger's key")
	}
}

func TestDeleteUnknownID(t *testing.T) {
	sys, _ := newTestSystem(t, 100, workload.UNF)
	if err := sys.Delete(record.ID(777_777), 5); err == nil {
		t.Fatal("Delete of unknown id succeeded")
	}
}

func TestStorageIncludesTree(t *testing.T) {
	sys, _ := newTestSystem(t, 2000, workload.UNF)
	total := sys.Provider.StorageBytes()
	if total <= 0 {
		t.Fatal("no storage accounted")
	}
	if sys.Provider.IndexHeight() < 2 {
		t.Fatalf("MB-Tree height = %d, want >= 2 at n=2000", sys.Provider.IndexHeight())
	}
}
