package tom

import (
	"bytes"
	"sort"
	"testing"

	"sae/internal/exec"
	"sae/internal/mbtree"
	"sae/internal/record"
)

func serveFixture(t *testing.T, n int) *System {
	t.Helper()
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Synthesize(record.ID(i+1), record.Key((i*6151)%record.KeyDomain))
	}
	sort.Slice(recs, func(i, j int) bool { return record.SortByKey(recs[i], recs[j]) < 0 })
	sys, err := NewSystem(recs)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

// TestServeQueryParity proves the TOM zero-copy serve path emits the same
// records, the same VO bytes and the same access counts as QueryCtx, and
// that the verified protocol accepts the streamed result.
func TestServeQueryParity(t *testing.T) {
	sys := serveFixture(t, 2500)
	p := sys.Provider
	ranges := []record.Range{
		{Lo: 0, Hi: record.KeyDomain - 1},
		{Lo: 1, Hi: 2},               // empty result
		{Lo: 500_000, Hi: 2_000_000}, // mid-size
	}
	for _, q := range ranges {
		qctx := exec.NewContext()
		wantRecs, wantVO, _, err := p.QueryCtx(qctx, q)
		if err != nil {
			t.Fatalf("QueryCtx(%v): %v", q, err)
		}
		sctx := exec.NewContext()
		var got []record.Record
		vo, n, _, err := p.ServeQueryCtx(sctx, q, func(r *record.Record) error {
			got = append(got, *r)
			return nil
		})
		if err != nil {
			t.Fatalf("ServeQueryCtx(%v): %v", q, err)
		}
		if n != len(wantRecs) || len(got) != len(wantRecs) {
			t.Fatalf("%v: served %d/%d records, want %d", q, n, len(got), len(wantRecs))
		}
		for i := range wantRecs {
			if !got[i].Equal(&wantRecs[i]) {
				t.Fatalf("%v: record %d mismatch", q, i)
			}
		}
		if !bytes.Equal(vo.Marshal(), wantVO.Marshal()) {
			t.Fatalf("%v: VO bytes differ between serve and query paths", q)
		}
		if g, w := sctx.Stats(), qctx.Stats(); g != w {
			t.Fatalf("%v: serve accesses %+v != query accesses %+v", q, g, w)
		}
		// The streamed result must verify exactly like the queried one.
		if err := mbtree.VerifyVO(vo, got, q.Lo, q.Hi, sys.Owner.Verifier()); err != nil {
			t.Fatalf("%v: streamed result failed verification: %v", q, err)
		}
		mbtree.PutVO(vo)
	}
}

// TestServeQueryTamperedDetected proves the tampering fallback streams the
// tampered result and that verification rejects it — the attack
// experiments behave identically through the serve path.
func TestServeQueryTamperedDetected(t *testing.T) {
	sys := serveFixture(t, 600)
	p := sys.Provider
	p.SetTamper(func(rs []record.Record) []record.Record {
		if len(rs) > 1 {
			return rs[:len(rs)-1] // drop the last record
		}
		return rs
	})
	q := record.Range{Lo: 0, Hi: record.KeyDomain - 1}
	var got []record.Record
	vo, _, _, err := p.ServeQueryCtx(exec.NewContext(), q, func(r *record.Record) error {
		got = append(got, *r)
		return nil
	})
	if err != nil {
		t.Fatalf("ServeQueryCtx: %v", err)
	}
	defer mbtree.PutVO(vo)
	if err := mbtree.VerifyVO(vo, got, q.Lo, q.Hi, sys.Owner.Verifier()); err == nil {
		t.Fatal("verification accepted a tampered streamed result")
	}
}
