package tom

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"sae/internal/bufpool"
	"sae/internal/core"
	"sae/internal/costmodel"
	"sae/internal/digest"
	"sae/internal/exec"
	"sae/internal/mbtree"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/shard"
	"sae/internal/sigs"
)

// Sharded TOM: one MB-Tree provider per key partition, VOs stitched at
// partition boundaries. Completeness across a seam holds because (a) each
// per-shard VO proves completeness for the query clamped to that shard's
// span, (b) the clamped sub-ranges of adjacent shards tile the query with
// no gap (spans are contiguous by the Plan invariant), and (c) the owner's
// signature over each shard's root folds the shard index, shard count and
// span in — so a provider cannot answer sub-range i with another shard's
// (legitimately empty there) tree and silently suppress shard i's records.

// ShardBinding returns the root-digest binding for one shard of a plan:
// sha1 over (index, shards, span, root). Owners sign bound digests,
// clients verify each shard's VO under the same binding.
func ShardBinding(plan shard.Plan, index int) func(digest.Digest) digest.Digest {
	span := plan.Span(index)
	shards := plan.Shards()
	return func(root digest.Digest) digest.Digest {
		var b [16 + digest.Size]byte
		binary.BigEndian.PutUint32(b[0:4], uint32(index))
		binary.BigEndian.PutUint32(b[4:8], uint32(shards))
		binary.BigEndian.PutUint32(b[8:12], uint32(span.Lo))
		binary.BigEndian.PutUint32(b[12:16], uint32(span.Hi))
		copy(b[16:], root[:])
		return digest.OfBytes(b[:])
	}
}

// ShardedSystem runs the TOM protocol over a horizontally partitioned
// dataset: one provider per contiguous key partition, a single owner
// signing every shard's (bound) root.
type ShardedSystem struct {
	Owner     *Owner
	Plan      shard.Plan
	Providers []*Provider
	Client    ShardedClient
}

// NewShardedSystem outsources a dataset (sorted by key) under TOM across
// `shards` key-range partitions over in-memory stores, sizing each
// provider's cache from its partition's cardinality.
func NewShardedSystem(sorted []record.Record, shards int) (*ShardedSystem, error) {
	owner, err := NewOwner()
	if err != nil {
		return nil, err
	}
	plan := shard.PlanFor(sorted, shards)
	parts := plan.Partition(sorted)
	s := &ShardedSystem{
		Owner:     owner,
		Plan:      plan,
		Providers: make([]*Provider, plan.Shards()),
		Client:    ShardedClient{Verifier: owner.Verifier(), Plan: plan},
	}
	errs := make([]error, plan.Shards())
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := NewProvider(pagestore.NewMem())
			p.ConfigureCache(bufpool.CapacityFor(len(parts[i])), bufpool.ChargeAllAccesses)
			p.SetRootBinding(ShardBinding(plan, i))
			if err := p.Load(parts[i], owner); err != nil {
				errs[i] = fmt.Errorf("tom: shard %d: %w", i, err)
				return
			}
			s.Providers[i] = p
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ShardVO is one shard's contribution to a scattered TOM query: the
// sub-result, its VO, and the shard's costs.
type ShardVO struct {
	Shard  int
	Sub    record.Range
	Result []record.Record
	VO     *mbtree.VO
	SPCost core.QueryCost
}

// ShardedQueryOutcome captures one scattered, verified TOM round-trip.
type ShardedQueryOutcome struct {
	// Result is the key-order merge of the per-shard sub-results.
	Result []record.Record
	// PerShard holds the stitched evidence: one entry per overlapping
	// shard, in shard order.
	PerShard   []ShardVO
	ClientCost costmodel.Breakdown
	VerifyErr  error
}

// QueryCost returns the total provider work across shards.
func (o *ShardedQueryOutcome) QueryCost() core.QueryCost {
	var qc core.QueryCost
	for i := range o.PerShard {
		qc.Index = qc.Index.Add(o.PerShard[i].SPCost.Index)
		qc.Fetch = qc.Fetch.Add(o.PerShard[i].SPCost.Fetch)
	}
	return qc
}

// ResponseTime models client-perceived latency: shards answer in parallel
// (max-over-shards), then the client verifies every VO.
func (o *ShardedQueryOutcome) ResponseTime() costmodel.Breakdown {
	var slowest costmodel.Breakdown
	for i := range o.PerShard {
		if c := o.PerShard[i].SPCost.Total(); c.Total() > slowest.Total() {
			slowest = c
		}
	}
	return slowest.Add(o.ClientCost)
}

// VOBytes returns the total serialized size of the stitched VOs — the
// communication overhead a sharded TOM deployment pays where SAE still
// ships a single 20-byte token.
func (o *ShardedQueryOutcome) VOBytes() int {
	n := 0
	for i := range o.PerShard {
		n += o.PerShard[i].VO.Size()
	}
	return n
}

// Query scatters a range query to the overlapping shards, gathers the
// sub-results and VOs, and verifies the stitched evidence.
func (s *ShardedSystem) Query(q record.Range) (*ShardedQueryOutcome, error) {
	subs := s.Plan.Scatter(q)
	if len(subs) == 0 {
		out := &ShardedQueryOutcome{}
		out.ClientCost, out.VerifyErr = s.Client.Verify(q, nil)
		return out, nil
	}
	replies := make([]ShardVO, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx, sub := subs[i].Shard, subs[i].Sub
			recs, vo, qc, err := s.Providers[idx].QueryCtx(exec.NewContext(), sub)
			if err != nil {
				errs[i] = fmt.Errorf("tom: shard %d: %w", idx, err)
				return
			}
			replies[i] = ShardVO{Shard: idx, Sub: sub, Result: recs, VO: vo, SPCost: qc}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &ShardedQueryOutcome{PerShard: replies}
	for i := range replies {
		out.Result = append(out.Result, replies[i].Result...)
	}
	out.ClientCost, out.VerifyErr = s.Client.Verify(q, replies)
	return out, nil
}

// Insert routes an owner-side insertion to the shard owning the key.
func (s *ShardedSystem) Insert(key record.Key, id record.ID) (record.Record, error) {
	r := record.Synthesize(id, key)
	return r, s.Providers[s.Plan.ShardFor(key)].ApplyInsert(r, s.Owner)
}

// Delete routes an owner-side deletion to the shard owning the key.
func (s *ShardedSystem) Delete(id record.ID, key record.Key) error {
	return s.Providers[s.Plan.ShardFor(key)].ApplyDelete(id, key, s.Owner)
}

// ShardedClient verifies stitched TOM evidence. The plan must come from
// the owner (it is bound into every shard signature, so a forged plan
// makes every signature check fail — the client cannot be routed around).
type ShardedClient struct {
	Verifier *sigs.Verifier
	Plan     shard.Plan
}

// Verify checks the stitched evidence for q: the sub-ranges must be
// exactly the plan's clamps of q over the overlapping shards, in order
// with no seam gaps (boundary continuity), and every shard's VO must
// verify — under that shard's bound signature — as sound and complete for
// its sub-range. A nil return proves the concatenated result sound and
// complete for all of q.
func (c ShardedClient) Verify(q record.Range, perShard []ShardVO) (costmodel.Breakdown, error) {
	start := time.Now()
	fail := func(err error) (costmodel.Breakdown, error) {
		return costmodel.Breakdown{CPU: time.Since(start)}, err
	}
	subs := c.Plan.Scatter(q)
	if len(subs) == 0 {
		if len(perShard) != 0 {
			return fail(fmt.Errorf("%w: evidence for an empty range", mbtree.ErrBadVO))
		}
		return costmodel.Breakdown{CPU: time.Since(start)}, nil
	}
	if len(perShard) != len(subs) {
		return fail(fmt.Errorf("%w: %d shard answers for %d overlapping shards",
			mbtree.ErrBadVO, len(perShard), len(subs)))
	}
	for i := range perShard {
		sv := &perShard[i]
		idx := subs[i].Shard
		if sv.Shard != idx {
			return fail(fmt.Errorf("%w: answer %d is from shard %d, want %d", mbtree.ErrBadVO, i, sv.Shard, idx))
		}
		// Boundary continuity: the sub-range must be exactly the plan's
		// clamp, so adjacent sub-ranges meet with no gap a record could
		// vanish into.
		if sv.Sub != subs[i].Sub {
			return fail(fmt.Errorf("%w: shard %d answered sub-range %v, want %v", mbtree.ErrBadVO, idx, sv.Sub, subs[i].Sub))
		}
		if err := mbtree.VerifyVOBound(sv.VO, sv.Result, sv.Sub.Lo, sv.Sub.Hi, c.Verifier,
			ShardBinding(c.Plan, idx)); err != nil {
			return fail(fmt.Errorf("shard %d: %w", idx, err))
		}
	}
	return costmodel.Breakdown{CPU: time.Since(start)}, nil
}
