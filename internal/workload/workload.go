// Package workload generates the datasets and query loads of the paper's
// evaluation: search keys are 4-byte integers in [0, 10^7], records are 500
// bytes, and two key distributions are used — UNF (uniform) and SKW (Zipf
// with skew parameter 0.8, concentrating ~77% of the keys in 20% of the
// domain). Queries are uniformly placed ranges with a fixed extent of 0.5%
// of the domain.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sae/internal/record"
)

// Distribution names a key distribution.
type Distribution string

// The paper's two datasets.
const (
	UNF Distribution = "UNF"
	SKW Distribution = "SKW"
)

// DefaultExtent is the paper's query extent: 0.5% of the key domain.
const DefaultExtent = 0.005

// ZipfTheta is the paper's skew parameter for SKW.
const ZipfTheta = 0.8

// zipfBuckets controls the granularity of the bucketed Zipf sampler.
const zipfBuckets = 1024

// Dataset is a generated relation plus its provenance.
type Dataset struct {
	Dist    Distribution
	Seed    int64
	Records []record.Record // sorted by (key, id)
}

// Generate produces n records with keys drawn from dist, deterministically
// from seed. Records are returned sorted by key, ready for clustered bulk
// loading; ids are 1..n (assigned before sorting, so id order is insertion
// order, not key order).
func Generate(dist Distribution, n int, seed int64) (*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	var keyFn func() record.Key
	switch dist {
	case UNF:
		keyFn = func() record.Key { return record.Key(rng.Intn(record.KeyDomain)) }
	case SKW:
		z := newZipfSampler(rng, calibratedTheta(), zipfBuckets, record.KeyDomain)
		keyFn = z.next
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q", dist)
	}
	records := make([]record.Record, n)
	for i := range records {
		records[i] = record.Synthesize(record.ID(i+1), keyFn())
	}
	sort.Slice(records, func(i, j int) bool { return record.SortByKey(records[i], records[j]) < 0 })
	return &Dataset{Dist: dist, Seed: seed, Records: records}, nil
}

// SkewConcentration is the paper's observable characterization of SKW:
// "77% of the search keys are concentrated in 20% of the domain".
const (
	SkewConcentration = 0.77
	SkewHotFraction   = 0.2
)

// calibratedTheta returns the power-law exponent under which the bucketed
// sampler reproduces the paper's 77%/20% concentration exactly. The nominal
// θ = 0.8 under the standard i^-θ bucket weighting yields only ~65%
// concentration, so we treat the paper's quoted concentration — which is
// what determines SKW result cardinalities in Figures 5-8 — as the ground
// truth and solve for the exponent (≈0.85) by bisection.
func calibratedTheta() float64 {
	frac := SkewHotFraction
	hot := int(frac * zipfBuckets)
	mass := func(theta float64) float64 {
		hotSum, total := 0.0, 0.0
		for i := 1; i <= zipfBuckets; i++ {
			w := math.Pow(float64(i), -theta)
			total += w
			if i <= hot {
				hotSum += w
			}
		}
		return hotSum / total
	}
	lo, hi := 0.1, 3.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if mass(mid) < SkewConcentration {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// zipfSampler draws keys from a bucketed power-law: the domain is divided
// into equal buckets, bucket i (1-based) has weight i^-θ, and keys are
// uniform within a bucket. The standard library's rand.Zipf requires θ > 1,
// so the paper's θ = 0.8 needs this hand-rolled inverse-CDF sampler.
type zipfSampler struct {
	rng        *rand.Rand
	cum        []float64 // cumulative bucket weights, normalized to [0,1]
	bucketSize int
	domain     int
}

func newZipfSampler(rng *rand.Rand, theta float64, buckets, domain int) *zipfSampler {
	cum := make([]float64, buckets)
	total := 0.0
	for i := 0; i < buckets; i++ {
		total += math.Pow(float64(i+1), -theta)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipfSampler{
		rng:        rng,
		cum:        cum,
		bucketSize: domain / buckets,
		domain:     domain,
	}
}

func (z *zipfSampler) next() record.Key {
	u := z.rng.Float64()
	b := sort.SearchFloat64s(z.cum, u)
	if b >= len(z.cum) {
		b = len(z.cum) - 1
	}
	lo := b * z.bucketSize
	k := lo + z.rng.Intn(z.bucketSize)
	if k >= z.domain {
		k = z.domain - 1
	}
	return record.Key(k)
}

// Concentration reports the fraction of keys that fall in the densest
// contiguous prefix covering `fraction` of the domain. For SKW with θ=0.8
// the paper quotes ~0.77 at fraction 0.2 (the hot region is the domain
// prefix, because bucket weights decrease with the index).
func Concentration(records []record.Record, fraction float64) float64 {
	if len(records) == 0 {
		return 0
	}
	cut := record.Key(fraction * float64(record.KeyDomain))
	in := 0
	for i := range records {
		if records[i].Key < cut {
			in++
		}
	}
	return float64(in) / float64(len(records))
}

// Queries generates count uniformly placed range queries whose extent is
// the given fraction of the key domain.
func Queries(count int, extent float64, seed int64) []record.Range {
	rng := rand.New(rand.NewSource(seed))
	width := record.Key(extent * float64(record.KeyDomain))
	if width < 1 {
		width = 1
	}
	qs := make([]record.Range, count)
	for i := range qs {
		lo := record.Key(rng.Intn(record.KeyDomain - int(width)))
		qs[i] = record.Range{Lo: lo, Hi: lo + width}
	}
	return qs
}
