package workload

import (
	"sort"
	"testing"

	"sae/internal/record"
)

func TestGenerateUniform(t *testing.T) {
	ds, err := Generate(UNF, 10_000, 1)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ds.Records) != 10_000 {
		t.Fatalf("got %d records", len(ds.Records))
	}
	if !sort.SliceIsSorted(ds.Records, func(i, j int) bool {
		return record.SortByKey(ds.Records[i], ds.Records[j]) < 0
	}) {
		t.Fatal("records not sorted by key")
	}
	// A uniform dataset should show ~20% of keys in 20% of the domain.
	c := Concentration(ds.Records, 0.2)
	if c < 0.17 || c > 0.23 {
		t.Fatalf("UNF concentration at 20%% = %.3f, want ~0.20", c)
	}
}

func TestGenerateSkewed(t *testing.T) {
	ds, err := Generate(SKW, 50_000, 2)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// The paper: ~77% of the keys in 20% of the domain for θ=0.8. The
	// bucketed sampler lands within a few points of that.
	c := Concentration(ds.Records, 0.2)
	if c < 0.74 || c > 0.80 {
		t.Fatalf("SKW concentration at 20%% = %.3f, want ~0.77", c)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(SKW, 1000, 42)
	b, _ := Generate(SKW, 1000, 42)
	for i := range a.Records {
		if !a.Records[i].Equal(&b.Records[i]) {
			t.Fatalf("records diverge at %d for identical seeds", i)
		}
	}
	c, _ := Generate(SKW, 1000, 43)
	same := true
	for i := range a.Records {
		if !a.Records[i].Equal(&c.Records[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestGenerateUnknownDistribution(t *testing.T) {
	if _, err := Generate("GAUSS", 10, 1); err == nil {
		t.Fatal("Generate accepted an unknown distribution")
	}
}

func TestGenerateIDsUnique(t *testing.T) {
	ds, _ := Generate(UNF, 5000, 3)
	seen := make(map[record.ID]bool, len(ds.Records))
	for i := range ds.Records {
		id := ds.Records[i].ID
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestQueries(t *testing.T) {
	qs := Queries(100, DefaultExtent, 4)
	if len(qs) != 100 {
		t.Fatalf("got %d queries", len(qs))
	}
	wantWidth := record.Key(DefaultExtent * float64(record.KeyDomain))
	for i, q := range qs {
		if q.Empty() {
			t.Fatalf("query %d is empty", i)
		}
		if q.Hi-q.Lo != wantWidth {
			t.Fatalf("query %d extent = %d, want %d", i, q.Hi-q.Lo, wantWidth)
		}
		if int(q.Hi) >= record.KeyDomain+int(wantWidth) {
			t.Fatalf("query %d exceeds domain", i)
		}
	}
}

func TestQueriesDeterministic(t *testing.T) {
	a := Queries(50, DefaultExtent, 7)
	b := Queries(50, DefaultExtent, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("queries diverge for identical seeds")
		}
	}
}

func TestRangeHelpers(t *testing.T) {
	q := record.Range{Lo: 10, Hi: 20}
	if !q.Contains(10) || !q.Contains(20) || q.Contains(9) || q.Contains(21) {
		t.Fatal("Contains misbehaves at boundaries")
	}
	if q.Width() != 11 {
		t.Fatalf("Width = %d, want 11", q.Width())
	}
	empty := record.Range{Lo: 5, Hi: 4}
	if !empty.Empty() || empty.Width() != 0 {
		t.Fatal("empty range misdetected")
	}
}
