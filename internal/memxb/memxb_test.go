package memxb

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sae/internal/digest"
	"sae/internal/record"
)

func tupleFor(id record.ID) Tuple {
	return Tuple{ID: id, Digest: digest.OfBytes([]byte(fmt.Sprintf("m-%d", id)))}
}

// mirror tracks expected content for brute-force checks.
type mirror map[record.Key][]Tuple

func (m mirror) vt(lo, hi record.Key) digest.Digest {
	var acc digest.Accumulator
	for k, ts := range m {
		if k >= lo && k <= hi {
			for _, t := range ts {
				acc.Add(t.Digest)
			}
		}
	}
	return acc.Sum()
}

func (m mirror) insert(k record.Key, t Tuple) { m[k] = append(m[k], t) }

func (m mirror) remove(k record.Key, id record.ID) {
	ts := m[k]
	for i := range ts {
		if ts[i].ID == id {
			m[k] = append(ts[:i], ts[i+1:]...)
			return
		}
	}
}

func (m mirror) count() int {
	n := 0
	for _, ts := range m {
		n += len(ts)
	}
	return n
}

func buildRandom(n, domain int, seed int64) (mirror, *Index) {
	rng := rand.New(rand.NewSource(seed))
	m := mirror{}
	for i := 0; i < n; i++ {
		m.insert(record.Key(rng.Intn(domain)), tupleFor(record.ID(i+1)))
	}
	items := map[record.Key][]Tuple{}
	for k, ts := range m {
		items[k] = ts
	}
	return m, New(items)
}

func checkVTs(t *testing.T, idx *Index, m mirror, domain, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		lo := record.Key(rng.Intn(domain))
		hi := lo + record.Key(rng.Intn(domain/3+1))
		if got, want := idx.GenerateVT(lo, hi), m.vt(lo, hi); got != want {
			t.Fatalf("VT(%d,%d) = %s, want %s", lo, hi, got, want)
		}
	}
}

func TestBuildAndQuery(t *testing.T) {
	m, idx := buildRandom(5000, 10_000, 1)
	if idx.Count() != m.count() {
		t.Fatalf("Count = %d, want %d", idx.Count(), m.count())
	}
	checkVTs(t, idx, m, 10_000, 100, 2)
}

func TestEmptyIndex(t *testing.T) {
	idx := New(nil)
	if !idx.GenerateVT(0, record.KeyDomain).IsZero() {
		t.Fatal("empty index must return the zero token")
	}
	if idx.Count() != 0 {
		t.Fatal("empty index has nonzero count")
	}
}

func TestInsertExistingAndNewKeys(t *testing.T) {
	m, idx := buildRandom(2000, 5000, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		k := record.Key(rng.Intn(5000))
		tup := tupleFor(record.ID(100_000 + i))
		idx.Insert(k, tup)
		m.insert(k, tup)
	}
	if idx.Count() != m.count() {
		t.Fatalf("Count = %d, want %d", idx.Count(), m.count())
	}
	checkVTs(t, idx, m, 5000, 100, 5)
}

func TestDeltaMerge(t *testing.T) {
	m, idx := buildRandom(100, 1_000_000, 6)
	// Insert enough brand-new keys to force at least one merge.
	for i := 0; i < rebuildThreshold+100; i++ {
		k := record.Key(2_000_000 + i) // outside the original key range
		tup := tupleFor(record.ID(500_000 + i))
		idx.Insert(k, tup)
		m.insert(k, tup)
	}
	if len(idx.delta) >= rebuildThreshold {
		t.Fatalf("delta buffer not merged: %d entries", len(idx.delta))
	}
	checkVTs(t, idx, m, 3_000_000, 100, 7)
}

func TestDelete(t *testing.T) {
	m, idx := buildRandom(3000, 8000, 8)
	rng := rand.New(rand.NewSource(9))
	// Collect every (key, id) pair; delete half.
	type pair struct {
		k  record.Key
		id record.ID
	}
	var pairs []pair
	for k, ts := range m {
		for _, tup := range ts {
			pairs = append(pairs, pair{k, tup.ID})
		}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	for _, p := range pairs[:len(pairs)/2] {
		if err := idx.Delete(p.k, p.id); err != nil {
			t.Fatalf("Delete(%d,%d): %v", p.k, p.id, err)
		}
		m.remove(p.k, p.id)
	}
	if idx.Count() != m.count() {
		t.Fatalf("Count = %d, want %d", idx.Count(), m.count())
	}
	checkVTs(t, idx, m, 8000, 100, 10)
}

func TestDeleteFromDelta(t *testing.T) {
	m, idx := buildRandom(50, 1000, 11)
	tup := tupleFor(777)
	idx.Insert(5000, tup) // new key -> delta buffer
	m.insert(5000, tup)
	if err := idx.Delete(5000, 777); err != nil {
		t.Fatalf("Delete from delta: %v", err)
	}
	m.remove(5000, 777)
	checkVTs(t, idx, m, 10_000, 50, 12)
}

func TestDeleteNotFound(t *testing.T) {
	_, idx := buildRandom(100, 1000, 13)
	if err := idx.Delete(99_999, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(absent) = %v, want ErrNotFound", err)
	}
}

func TestInvertedRange(t *testing.T) {
	_, idx := buildRandom(100, 1000, 14)
	if !idx.GenerateVT(500, 100).IsZero() {
		t.Fatal("inverted range must return zero")
	}
}

func TestMatchesDiskXBTreeSemantics(t *testing.T) {
	// memxb and xbtree must agree: both compute the XOR of digests over
	// the range. This pins the two implementations to one another.
	m, idx := buildRandom(1000, 2000, 15)
	for lo := record.Key(0); lo < 2000; lo += 97 {
		hi := lo + 333
		if got, want := idx.GenerateVT(lo, hi), m.vt(lo, hi); got != want {
			t.Fatalf("VT(%d,%d) mismatch", lo, hi)
		}
	}
}

func TestBytesEstimate(t *testing.T) {
	_, idx := buildRandom(1000, 5000, 16)
	if idx.Bytes() <= 0 {
		t.Fatal("Bytes must be positive")
	}
	// A 1000-tuple index should sit in the tens of KB, far below the
	// disk-based layout's page granularity.
	if idx.Bytes() > 1<<20 {
		t.Fatalf("Bytes = %d, implausibly large", idx.Bytes())
	}
}
