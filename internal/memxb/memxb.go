// Package memxb is the main-memory alternative to the disk-based XB-Tree
// that the paper's §IV suggests for the trusted entity: "its storage
// requirements are minor compared to that of the SP, implying that the TE
// can maintain a main memory index".
//
// Instead of a pointer-based B-tree, the index is a Fenwick (binary
// indexed) tree over XOR — XOR is an abelian group operation, so prefix
// aggregates compose exactly like sums. Token generation is two prefix
// lookups: VT[lo, hi] = prefix(hi) ⊕ prefix(lo-1), O(log n) word operations
// with no page I/O at all. Keys inserted after the bulk load live in a
// sorted delta buffer that is merged into the Fenwick core when it grows
// past a threshold (the classic static-core-plus-delta design).
package memxb

import (
	"errors"
	"fmt"
	"sort"

	"sae/internal/digest"
	"sae/internal/record"
)

// ErrNotFound is returned by Delete for an absent (key, id) pair.
var ErrNotFound = errors.New("memxb: tuple not found")

// Tuple mirrors xbtree.Tuple: a record's id and digest.
type Tuple struct {
	ID     record.ID
	Digest digest.Digest
}

// rebuildThreshold is the delta-buffer size that triggers a merge into the
// Fenwick core.
const rebuildThreshold = 4096

// Index is a main-memory XOR index over (key, id, digest) tuples.
type Index struct {
	// Static core: distinct keys sorted ascending, parallel Fenwick array
	// of XOR aggregates, and per-key tuple lists for deletions.
	keys    []record.Key
	fenwick []digest.Digest
	lists   map[record.Key][]Tuple
	// Delta: tuples inserted since the last rebuild, sorted by key.
	delta []deltaEntry
	count int
}

type deltaEntry struct {
	key record.Key
	tup Tuple
}

// New builds an index from key/tuple pairs (any order).
func New(items map[record.Key][]Tuple) *Index {
	idx := &Index{lists: make(map[record.Key][]Tuple, len(items))}
	for k, ts := range items {
		if len(ts) == 0 {
			continue
		}
		idx.keys = append(idx.keys, k)
		idx.lists[k] = append([]Tuple(nil), ts...)
		idx.count += len(ts)
	}
	sort.Slice(idx.keys, func(i, j int) bool { return idx.keys[i] < idx.keys[j] })
	idx.rebuildFenwick()
	return idx
}

// rebuildFenwick recomputes the Fenwick array from the per-key lists.
func (x *Index) rebuildFenwick() {
	x.fenwick = make([]digest.Digest, len(x.keys)+1)
	for pos, k := range x.keys {
		var acc digest.Accumulator
		for _, t := range x.lists[k] {
			acc.Add(t.Digest)
		}
		x.fenwickAdd(pos+1, acc.Sum())
	}
}

// fenwickAdd folds d into position i (1-based) of the Fenwick array.
func (x *Index) fenwickAdd(i int, d digest.Digest) {
	for ; i < len(x.fenwick); i += i & (-i) {
		x.fenwick[i] = x.fenwick[i].XOR(d)
	}
}

// fenwickPrefix returns the XOR over positions 1..i.
func (x *Index) fenwickPrefix(i int) digest.Digest {
	var acc digest.Accumulator
	for ; i > 0; i -= i & (-i) {
		acc.Add(x.fenwick[i])
	}
	return acc.Sum()
}

// keyPos returns the number of core keys strictly below k.
func (x *Index) keyPos(k record.Key) int {
	return sort.Search(len(x.keys), func(i int) bool { return x.keys[i] >= k })
}

// GenerateVT returns the XOR of the digests of every tuple with key in
// [lo, hi].
func (x *Index) GenerateVT(lo, hi record.Key) digest.Digest {
	if lo > hi {
		return digest.Zero
	}
	// Core: prefix(<=hi) ⊕ prefix(<lo).
	upTo := x.keyPos(hi + 1) // number of keys <= hi; hi+1 may wrap only past the domain
	if hi == ^record.Key(0) {
		upTo = len(x.keys)
	}
	below := x.keyPos(lo)
	vt := x.fenwickPrefix(upTo).XOR(x.fenwickPrefix(below))
	// Delta: binary search the sorted buffer, fold matches.
	from := sort.Search(len(x.delta), func(i int) bool { return x.delta[i].key >= lo })
	for i := from; i < len(x.delta) && x.delta[i].key <= hi; i++ {
		vt = vt.XOR(x.delta[i].tup.Digest)
	}
	return vt
}

// Insert adds a tuple. Existing core keys update the Fenwick array in
// O(log n); new keys go to the delta buffer, which is merged when full.
func (x *Index) Insert(key record.Key, tup Tuple) {
	if pos := x.keyPos(key); pos < len(x.keys) && x.keys[pos] == key {
		x.lists[key] = append(x.lists[key], tup)
		x.fenwickAdd(pos+1, tup.Digest)
		x.count++
		return
	}
	at := sort.Search(len(x.delta), func(i int) bool { return x.delta[i].key >= key })
	x.delta = append(x.delta, deltaEntry{})
	copy(x.delta[at+1:], x.delta[at:])
	x.delta[at] = deltaEntry{key: key, tup: tup}
	x.count++
	if len(x.delta) >= rebuildThreshold {
		x.mergeDelta()
	}
}

// mergeDelta folds the delta buffer into the core and rebuilds the Fenwick
// array (O(n log n), amortized across rebuildThreshold inserts).
func (x *Index) mergeDelta() {
	for _, de := range x.delta {
		if _, ok := x.lists[de.key]; !ok {
			x.keys = append(x.keys, de.key)
		}
		x.lists[de.key] = append(x.lists[de.key], de.tup)
	}
	x.delta = nil
	sort.Slice(x.keys, func(i, j int) bool { return x.keys[i] < x.keys[j] })
	x.rebuildFenwick()
}

// Delete removes the tuple with the given key and id.
func (x *Index) Delete(key record.Key, id record.ID) error {
	// Core list first.
	if pos := x.keyPos(key); pos < len(x.keys) && x.keys[pos] == key {
		ts := x.lists[key]
		for i := range ts {
			if ts[i].ID == id {
				d := ts[i].Digest
				x.lists[key] = append(ts[:i], ts[i+1:]...)
				x.fenwickAdd(pos+1, d) // XOR removes
				x.count--
				return nil
			}
		}
	}
	// Then the delta buffer.
	for i := range x.delta {
		if x.delta[i].key == key && x.delta[i].tup.ID == id {
			x.delta = append(x.delta[:i], x.delta[i+1:]...)
			x.count--
			return nil
		}
	}
	return fmt.Errorf("%w: key=%d id=%d", ErrNotFound, key, id)
}

// Count returns the number of live tuples.
func (x *Index) Count() int { return x.count }

// Bytes estimates the index's memory footprint: keys, Fenwick digests and
// tuple storage. The paper's point is that this fits comfortably in RAM.
func (x *Index) Bytes() int64 {
	perTuple := int64(8 + digest.Size)
	return int64(len(x.keys))*4 +
		int64(len(x.fenwick))*digest.Size +
		int64(x.count)*perTuple +
		int64(len(x.delta))*(4+8+digest.Size)
}
