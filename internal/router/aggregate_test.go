package router

import (
	"errors"
	"testing"

	"sae/internal/agg"
	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/shard"
	"sae/internal/wire"
	"sae/internal/workload"
)

// TestRoutedAggregateParity: a plain VerifyingClient's verified aggregate
// through the router equals the in-process sharded oracle and the direct
// client-side scatter, for every merge shape.
func TestRoutedAggregateParity(t *testing.T) {
	d := newDeployment(t, 12_000, 3, false, Config{})
	routed := d.plainClient(t)
	direct := d.directClient(t)
	for _, q := range testQueries(d, 8, 83) {
		oracle, err := d.sys.Aggregate(q)
		if err != nil {
			t.Fatalf("oracle %v: %v", q, err)
		}
		if oracle.VerifyErr != nil {
			t.Fatalf("oracle rejected honest aggregate for %v: %v", q, oracle.VerifyErr)
		}
		gotRouted, err := routed.Aggregate(q)
		if err != nil {
			t.Fatalf("routed aggregate %v: %v", q, err)
		}
		gotDirect, err := direct.Aggregate(q)
		if err != nil {
			t.Fatalf("direct aggregate %v: %v", q, err)
		}
		if gotRouted != oracle.Agg || gotDirect != oracle.Agg {
			t.Fatalf("%v: routed %v, direct %v, oracle %v", q, gotRouted, gotDirect, oracle.Agg)
		}
	}
}

// TestRoutedAggregateSingleShard: a router over one shard relays the
// aggregate protocol transparently.
func TestRoutedAggregateSingleShard(t *testing.T) {
	d := newDeployment(t, 4_000, 1, false, Config{})
	routed := d.plainClient(t)
	for _, q := range workload.Queries(5, workload.DefaultExtent, 84) {
		if _, err := routed.Aggregate(q); err != nil {
			t.Fatalf("routed single-shard aggregate %v: %v", q, err)
		}
	}
}

// TestRoutedTOMAggregateParity: TOM aggregates through the router — the
// stitched per-shard aggregate VOs — verify and match the in-process
// sharded TOM oracle; a 1-shard router relays the plain aggregate VO.
func TestRoutedTOMAggregateParity(t *testing.T) {
	d := newDeployment(t, 9_000, 3, true, Config{})
	client := d.tomClient(t)
	for _, q := range testQueries(d, 6, 85) {
		oracle, err := d.tomSys.Aggregate(q)
		if err != nil {
			t.Fatalf("oracle %v: %v", q, err)
		}
		if oracle.VerifyErr != nil {
			t.Fatalf("oracle rejected honest TOM aggregate for %v: %v", q, oracle.VerifyErr)
		}
		got, err := client.Aggregate(q)
		if err != nil {
			t.Fatalf("routed TOM aggregate %v: %v", q, err)
		}
		if got != oracle.Agg {
			t.Fatalf("%v: routed TOM aggregate %v, oracle %v", q, got, oracle.Agg)
		}
	}

	single := newDeployment(t, 3_000, 1, true, Config{})
	sc := single.tomClient(t)
	for _, q := range workload.Queries(4, workload.DefaultExtent, 86) {
		if _, err := sc.Aggregate(q); err != nil {
			t.Fatalf("routed single-shard TOM aggregate %v: %v", q, err)
		}
	}
}

// TestRouterForgedAggregateRejected: the router asserts a flat-out wrong
// scalar on the untrusted result path. The client's comparison against
// the TE-side aggregate token must reject it.
func TestRouterForgedAggregateRejected(t *testing.T) {
	d := newDeployment(t, 10_000, 3, false, Config{})
	q := spanningQuery(t, d)
	client := d.plainClient(t)
	if _, err := client.Aggregate(q); err != nil {
		t.Fatalf("honest routed aggregate: %v", err)
	}
	d.router.setTamper(&tamper{forgeAgg: func(a agg.Agg) agg.Agg {
		a.Sum += 1
		return a
	}})
	defer d.router.setTamper(nil)
	if _, err := client.Aggregate(q); !errors.Is(err, core.ErrVerificationFailed) {
		t.Fatalf("forged routed scalar error = %v, want ErrVerificationFailed", err)
	}
}

// TestRouterAggregateSeamAttacksRejected: scatter-shape attacks on the
// aggregate path — a shaved clamp or a dropped shard changes the merged
// scalar, which the range-bound token no longer matches.
func TestRouterAggregateSeamAttacksRejected(t *testing.T) {
	d := newDeployment(t, 10_000, 3, false, Config{})
	q := spanningQuery(t, d)
	client := d.plainClient(t)

	d.router.setTamper(&tamper{reshapeSubs: func(subs []shard.SubQuery) []shard.SubQuery {
		out := append([]shard.SubQuery(nil), subs...)
		if len(out) > 0 && out[0].Sub.Hi > out[0].Sub.Lo+100_000 {
			out[0].Sub.Hi -= 100_000
		}
		return out
	}})
	if _, err := client.Aggregate(q); !errors.Is(err, core.ErrVerificationFailed) {
		t.Fatalf("seam-narrowed routed aggregate error = %v, want ErrVerificationFailed", err)
	}

	d.router.setTamper(&tamper{reshapeSubs: func(subs []shard.SubQuery) []shard.SubQuery {
		if len(subs) > 1 {
			return subs[1:]
		}
		return subs
	}})
	if _, err := client.Aggregate(q); !errors.Is(err, core.ErrVerificationFailed) {
		t.Fatalf("shard-suppressed routed aggregate error = %v, want ErrVerificationFailed", err)
	}
	d.router.setTamper(nil)
}

// TestUpstreamAggTamperThroughRouterRejected: a malicious upstream SP
// inflating its partial stays detected when the partial arrives merged
// through an honest router.
func TestUpstreamAggTamperThroughRouterRejected(t *testing.T) {
	d := newDeployment(t, 10_000, 3, false, Config{})
	q := spanningQuery(t, d)
	client := d.plainClient(t)
	d.sys.SPs[1].SetAggTamper(core.InflateAggTamper(2, 0))
	defer d.sys.SPs[1].SetAggTamper(nil)
	if _, err := client.Aggregate(q); !errors.Is(err, core.ErrVerificationFailed) {
		t.Fatalf("upstream agg tamper error = %v, want ErrVerificationFailed", err)
	}
}

// TestRouterTOMAggSuppressionRejected: dropping one shard's aggregate VO
// from the stitched relay fails the stitched verification; swapping two
// shards' evidence fails the shard-identity binding.
func TestRouterTOMAggTamperRejected(t *testing.T) {
	d := newDeployment(t, 9_000, 3, true, Config{})
	q := spanningQuery(t, d)
	client := d.tomClient(t)
	if _, err := client.Aggregate(q); err != nil {
		t.Fatalf("honest routed TOM aggregate: %v", err)
	}

	d.router.setTamper(&tamper{reshapeTOM: func(p shard.Plan, parts []wire.TOMShardPart) (shard.Plan, []wire.TOMShardPart) {
		if len(parts) > 1 {
			return p, parts[1:]
		}
		return p, parts
	}})
	if _, err := client.Aggregate(q); err == nil {
		t.Fatal("TOM aggregate shard suppression accepted")
	}

	d.router.setTamper(&tamper{reshapeTOM: func(p shard.Plan, parts []wire.TOMShardPart) (shard.Plan, []wire.TOMShardPart) {
		if len(parts) > 1 {
			parts[0].Blob, parts[1].Blob = parts[1].Blob, parts[0].Blob
		}
		return p, parts
	}})
	if _, err := client.Aggregate(q); err == nil {
		t.Fatal("TOM aggregate shard swap accepted")
	}
	d.router.setTamper(nil)
}

// TestRoutedAggregateEmptyRange: an empty range through the router yields
// the zero scalar and still verifies (the merged token must cover the
// empty fold).
func TestRoutedAggregateEmptyRange(t *testing.T) {
	d := newDeployment(t, 4_000, 3, false, Config{})
	client := d.plainClient(t)
	a, err := client.Aggregate(record.Range{Lo: 9, Hi: 3})
	if err != nil {
		t.Fatalf("empty-range routed aggregate: %v", err)
	}
	if !a.Empty() {
		t.Fatalf("empty-range routed aggregate = %v, want zero scalar", a)
	}
}
