package router

import "sync/atomic"

// counters are the router's failure-handling tallies, shared by every
// endpoint set and bumped lock-free on the request path. They exist for
// operators, not for correctness: verification never depends on them.
type counters struct {
	failovers    atomic.Uint64 // attempts abandoned for a different endpoint
	hedges       atomic.Uint64 // hedge legs launched
	hedgesWon    atomic.Uint64 // hedge legs that answered first
	hedgesLost   atomic.Uint64 // hedge legs cancelled by the primary leg
	staleRejects atomic.Uint64 // answers rejected for exceeding the staleness bound
	evictions    atomic.Uint64 // connections dropped as broken
	reconnects   atomic.Uint64 // fresh dials after a breakage
	cutovers     atomic.Uint64 // reshard topology swaps applied
}

// Counters is a point-in-time snapshot of the router's failure-handling
// tallies (see the Observability section of the README).
type Counters struct {
	Failovers    uint64
	Hedges       uint64
	HedgesWon    uint64
	HedgesLost   uint64
	StaleRejects uint64
	Evictions    uint64
	Reconnects   uint64
	Cutovers     uint64
}

// Counters snapshots the router's failure-handling tallies.
func (r *Router) Counters() Counters {
	return Counters{
		Failovers:    r.ctrs.failovers.Load(),
		Hedges:       r.ctrs.hedges.Load(),
		HedgesWon:    r.ctrs.hedgesWon.Load(),
		HedgesLost:   r.ctrs.hedgesLost.Load(),
		StaleRejects: r.ctrs.staleRejects.Load(),
		Evictions:    r.ctrs.evictions.Load(),
		Reconnects:   r.ctrs.reconnects.Load(),
		Cutovers:     r.ctrs.cutovers.Load(),
	}
}

// UpstreamHealth describes one upstream endpoint's current state.
type UpstreamHealth struct {
	Shard int
	Role  string
	Addr  string
	Down  bool   // inside its reconnect-backoff window
	Gen   uint64 // newest generation stamp observed (0 if unstamped)
}

func healthOf[T upstream](s *endpointSet[T], out []UpstreamHealth) []UpstreamHealth {
	for _, ep := range s.eps {
		out = append(out, UpstreamHealth{
			Shard: ep.shard,
			Role:  ep.role,
			Addr:  ep.addr,
			Down:  ep.isDown(),
			Gen:   ep.gen.Load(),
		})
	}
	return out
}

// Health reports every upstream endpoint's state in the currently
// serving topology, shard by shard.
func (r *Router) Health() []UpstreamHealth {
	t := r.topo.Load()
	var out []UpstreamHealth
	for i := range t.sps {
		out = healthOf(t.sps[i], out)
		out = healthOf(t.tes[i], out)
		if i < len(t.vqs) {
			out = healthOf(t.vqs[i], out)
		}
		if i < len(t.toms) {
			out = healthOf(t.toms[i], out)
		}
	}
	return out
}
