// Package router implements the deployment tier the ROADMAP calls the
// missing piece of the horizontal story: a stateless, untrusted router
// process with ONE client-facing address. It speaks the single-system
// wire protocol to clients (MsgQuery / MsgBatchQuery / MsgVTRequest /
// MsgBatchVT / MsgTOMQuery / MsgShardMapReq), scatters every request to
// the overlapping shards over pooled pipelined upstream connections,
// gathers in shard order and streams the merged response back — so an
// unmodified wire.VerifyingClient can query a sharded deployment exactly
// as if it were a single SP/TE pair, with bit-identical results and
// tokens to a client-side scatter (wire.ShardedVerifyingClient).
//
// # Trust argument
//
// The router is NOT a trusted party. On the result path it is exactly as
// untrusted as the SP: anything it could do to the record stream —
// suppress a shard's sub-result, narrow a sub-range at a partition seam,
// merge shards out of order, scatter under a forged plan — yields a
// record stream whose digest XOR no longer matches the token (or, for
// reordering, violates the key-order contract the client checks), so the
// client rejects. That holds because the token side is pure aggregation:
// every shard TE holds only its own partition, so the XOR of the
// per-shard tokens for the clamped sub-ranges IS the token a single TE
// over the whole dataset would have issued, and the router contributes
// no input to it beyond relaying the client's range. As everywhere in
// this wire layer (single-system deployments included), the client↔TE
// byte stream itself is assumed authenticated end-to-end — a relay that
// can rewrite TE token bytes is the paper's compromised-TE-channel case,
// out of model here and solved by transport authentication (TLS to the
// TE tier) in a hardened deployment, not by the protocol.
//
// For TOM the router is untrusted without even that channel assumption:
// each shard's VO carries an owner signature binding the shard's index,
// count and span, so the client verifies the stitched evidence — and the
// relayed plan itself — against the owner's key alone.
package router

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"sae/internal/shard"
	"sae/internal/wire"
)

// Config parameterizes a router.
type Config struct {
	// SPs and TEs list the upstream shard servers, one address per shard
	// in shard order (exactly the lists a ShardedVerifyingClient dials).
	SPs, TEs []string
	// TOMs optionally lists one TOM provider per shard; empty disables
	// TOM routing.
	TOMs []string
	// Conns is the number of pooled pipelined connections the router
	// keeps to every upstream (default 2). Requests round-robin across
	// the pool; each connection additionally pipelines many requests.
	Conns int
	// UpstreamTimeout bounds every upstream sub-request (default 30s;
	// negative disables). A shard that exceeds it fails the client
	// request with an error — never a silently truncated result.
	UpstreamTimeout time.Duration
	// Logf receives serving diagnostics (nil = silent).
	Logf func(string, ...any)
}

// DefaultUpstreamTimeout bounds upstream sub-requests when the Config
// does not say otherwise.
const DefaultUpstreamTimeout = 30 * time.Second

// Router is the client-facing scatter-gather endpoint. It keeps no
// per-request state beyond in-flight gathers and holds no data: closing
// and restarting one (or running several behind a TCP load balancer) is
// always safe.
type Router struct {
	cfg  Config
	plan shard.Plan
	sps  []*pool[*wire.SPClient]
	tes  []*pool[*wire.TEClient]
	toms []*pool[*wire.TOMClient]
	srv  *wire.Server

	// tamper carries the adversarial-test hooks; nil in production. See
	// tamper.go.
	tamper *tamper
}

// pool is a fixed set of pipelined connections to one upstream with
// round-robin pick.
type pool[T any] struct {
	conns []T
	next  atomic.Uint32
}

func (p *pool[T]) pick() T {
	return p.conns[p.next.Add(1)%uint32(len(p.conns))]
}

// New dials every upstream and cross-checks the deployment's shard
// attestations exactly like a shard-aware client would: all TEs must
// agree on one plan and their dialed indices, and the plan must match
// the address lists. The TE-attested plan drives all scattering.
func New(cfg Config) (*Router, error) {
	if len(cfg.SPs) == 0 || len(cfg.SPs) != len(cfg.TEs) {
		return nil, fmt.Errorf("router: %d SP addresses for %d TE addresses", len(cfg.SPs), len(cfg.TEs))
	}
	if len(cfg.TOMs) != 0 && len(cfg.TOMs) != len(cfg.SPs) {
		return nil, fmt.Errorf("router: %d TOM addresses for %d shards", len(cfg.TOMs), len(cfg.SPs))
	}
	if cfg.Conns < 1 {
		cfg.Conns = 2
	}
	if cfg.UpstreamTimeout == 0 {
		cfg.UpstreamTimeout = DefaultUpstreamTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := &Router{cfg: cfg}
	ok := false
	defer func() {
		if !ok {
			r.Close()
		}
	}()
	for i := range cfg.SPs {
		sp, err := dialPool(cfg.SPs[i], cfg.Conns, wire.DialSP)
		if err != nil {
			return nil, fmt.Errorf("router: shard %d SP: %w", i, err)
		}
		r.sps = append(r.sps, sp)
		te, err := dialPool(cfg.TEs[i], cfg.Conns, wire.DialTE)
		if err != nil {
			return nil, fmt.Errorf("router: shard %d TE: %w", i, err)
		}
		r.tes = append(r.tes, te)
	}
	firstSPs := make([]*wire.SPClient, len(r.sps))
	firstTEs := make([]*wire.TEClient, len(r.tes))
	for i := range r.sps {
		firstSPs[i], firstTEs[i] = r.sps[i].conns[0], r.tes[i].conns[0]
	}
	plan, err := wire.VerifyShardAttestations(firstSPs, firstTEs)
	if err != nil {
		return nil, fmt.Errorf("router: upstream attestation: %w", err)
	}
	r.plan = plan
	for i := range cfg.TOMs {
		tc, err := dialPool(cfg.TOMs[i], cfg.Conns, wire.DialTOM)
		if err != nil {
			return nil, fmt.Errorf("router: shard %d TOM: %w", i, err)
		}
		// Wiring sanity (the provider is untrusted regardless): the TOM
		// server must sit at the index it is dialed as, under the same
		// plan the TEs attest.
		si, err := tc.conns[0].ShardMap()
		if err != nil {
			return nil, fmt.Errorf("router: shard %d TOM map: %w", i, err)
		}
		if si.Index != i || !si.Plan.Equal(plan) {
			return nil, fmt.Errorf("router: TOM dialed as shard %d reports shard %d of %v", i, si.Index, si.Plan)
		}
		r.toms = append(r.toms, tc)
	}
	ok = true
	return r, nil
}

func dialPool[T interface{ Close() error }](addr string, n int, dial func(string) (T, error)) (*pool[T], error) {
	p := &pool[T]{}
	for i := 0; i < n; i++ {
		c, err := dial(addr)
		if err != nil {
			for _, prev := range p.conns {
				prev.Close()
			}
			return nil, err
		}
		p.conns = append(p.conns, c)
	}
	return p, nil
}

// Serve starts the client-facing endpoint on addr (":0" picks a port).
func (r *Router) Serve(addr string) error {
	if r.srv != nil {
		return fmt.Errorf("router: already serving on %s", r.srv.Addr())
	}
	srv, err := wire.Serve(addr, r.handle, r.cfg.Logf)
	if err != nil {
		return err
	}
	r.srv = srv
	return nil
}

// Addr returns the client-facing address once Serve has been called.
func (r *Router) Addr() string { return r.srv.Addr() }

// Plan returns the TE-attested partition plan the router scatters under.
func (r *Router) Plan() shard.Plan { return r.plan }

// Shards returns the upstream shard count.
func (r *Router) Shards() int { return len(r.sps) }

// Close stops serving and closes every upstream connection.
func (r *Router) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if r.srv != nil {
		keep(r.srv.Close())
	}
	for _, p := range r.sps {
		for _, c := range p.conns {
			keep(c.Close())
		}
	}
	for _, p := range r.tes {
		for _, c := range p.conns {
			keep(c.Close())
		}
	}
	for _, p := range r.toms {
		for _, c := range p.conns {
			keep(c.Close())
		}
	}
	return first
}

// reqCtx builds the context bounding one client request's upstream
// fan-out.
func (r *Router) reqCtx() (context.Context, context.CancelFunc) {
	if r.cfg.UpstreamTimeout > 0 {
		return context.WithTimeout(context.Background(), r.cfg.UpstreamTimeout)
	}
	return context.WithCancel(context.Background())
}
