// Package router implements the deployment tier the ROADMAP calls the
// missing piece of the horizontal story: a stateless, untrusted router
// process with ONE client-facing address. It speaks the single-system
// wire protocol to clients (MsgQuery / MsgBatchQuery / MsgVTRequest /
// MsgBatchVT / MsgTOMQuery / MsgVerifiedQuery / MsgShardMapReq),
// scatters every request to the overlapping shards over pooled
// pipelined upstream connections, gathers in shard order and streams
// the merged response back — so an unmodified wire.VerifyingClient can
// query a sharded deployment exactly as if it were a single SP/TE pair,
// with bit-identical results and tokens to a client-side scatter
// (wire.ShardedVerifyingClient).
//
// Each shard may additionally run read replicas (Config.Replicas). The
// router treats the primary and its replicas as one endpoint set per
// shard: requests round-robin across healthy endpoints, a failed
// endpoint is evicted and retried with exponential backoff plus jitter,
// an in-flight failure fails over to a sibling (bounded attempts), and
// — when Config.HedgeAfter is set — a slow endpoint is raced against a
// sibling, the loser cancelled. A health prober redials downed
// endpoints and tracks every stamped endpoint's generation so answers
// lagging the set's newest observed generation by more than
// Config.MaxLag are rejected and retried elsewhere.
//
// The whole upstream fabric — the attested plan and every endpoint set —
// lives in ONE immutable topology value behind an atomic pointer. Every
// request snapshots the pointer once and runs entirely against that
// snapshot, which is what makes online resharding seam-safe: a cutover
// (Cutover / MsgReshardCutover) builds and attests the successor
// topology on the side, swaps the pointer, and in-flight requests finish
// against the epoch they started under while every new pick lands on the
// new one. The displaced topology's connections are closed after a grace
// period sized to the upstream timeout.
//
// # Trust argument
//
// The router is NOT a trusted party, and neither are the replicas it
// fails over to. On the result path they are exactly as untrusted as
// the SP: anything router or replica could do to the record stream —
// suppress a shard's sub-result, narrow a sub-range at a partition
// seam, merge shards out of order, scatter under a forged plan, or
// serve from a torn or doctored copy of the dataset — yields a record
// stream whose digest XOR no longer matches the token (or violates the
// key-order contract), so the client rejects. That holds because the
// token side is pure aggregation: every shard TE holds only its own
// partition, so the XOR of the per-shard tokens for the clamped
// sub-ranges IS the token a single TE over the whole dataset would have
// issued. The ONLY property a replica could silently bend that the XOR
// check cannot catch is freshness — serving a correct answer for an old
// generation — which is why every verified answer carries its plan epoch
// and generation stamp: the router bounds staleness against the newest
// stamp it has observed, and a paranoid client enforces its own
// monotonic lexicographic (epoch, gen) floor
// (wire.VerifiedClient.QueryAtLeast), so even a rogue router replaying
// pre-reshard answers is caught. As everywhere in this wire layer, the
// client↔TE byte stream itself is assumed authenticated end-to-end — a
// relay that can rewrite TE token bytes is the paper's
// compromised-TE-channel case, out of model here and solved by
// transport authentication in a hardened deployment, not by the
// protocol.
//
// For TOM the router is untrusted without even that channel assumption:
// each shard's VO carries an owner signature binding the shard's index,
// count and span, so the client verifies the stitched evidence — and
// the relayed plan itself — against the owner's key alone.
package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sae/internal/shard"
	"sae/internal/wire"
)

// Config parameterizes a router.
type Config struct {
	// SPs and TEs list the upstream shard servers, one address per shard
	// in shard order (exactly the lists a ShardedVerifyingClient dials).
	// A combined primary (one process serving both halves) simply lists
	// the same address in both slots.
	SPs, TEs []string
	// Replicas optionally lists each shard's read replicas: Replicas[i]
	// are addresses of replica servers for shard i (wire.ServeReplica).
	// Replicas join the shard's SP-read, TE-token and verified-query
	// endpoint sets; a replica that is down at startup is adopted later
	// by the health prober.
	Replicas [][]string
	// TOMs optionally lists one TOM provider per shard; empty disables
	// TOM routing.
	TOMs []string
	// Conns is the number of pooled pipelined connections the router
	// keeps to every upstream (default 2). Requests round-robin across
	// the pool; each connection additionally pipelines many requests.
	Conns int
	// UpstreamTimeout bounds every upstream sub-request (default 30s;
	// negative disables). A shard that exceeds it fails the client
	// request with an error — never a silently truncated result. It also
	// sizes the grace period before a reshard cutover closes the
	// displaced topology's connections.
	UpstreamTimeout time.Duration
	// HedgeAfter, when positive, races a second endpoint of the same
	// shard after this delay if the first has not answered; the first
	// response wins and the loser is cancelled. Zero disables hedging.
	HedgeAfter time.Duration
	// MaxLag bounds replica staleness in commit groups: a verified
	// answer stamped more than MaxLag generations behind the newest
	// stamp the router has observed for that shard is rejected and the
	// request retried on a fresher endpoint (default 128).
	MaxLag uint64
	// ProbeInterval is the health prober's cadence: redialing downed
	// endpoints and refreshing generation stamps (default 100ms;
	// negative disables probing).
	ProbeInterval time.Duration
	// Logf receives serving diagnostics (nil = silent).
	Logf func(string, ...any)
}

// DefaultUpstreamTimeout bounds upstream sub-requests when the Config
// does not say otherwise.
const DefaultUpstreamTimeout = 30 * time.Second

// DefaultMaxLag is the staleness bound (in commit groups) applied when
// the Config does not set one.
const DefaultMaxLag = 128

// DefaultProbeInterval is the health prober's cadence when the Config
// does not set one.
const DefaultProbeInterval = 100 * time.Millisecond

// topology is one immutable generation of the router's upstream fabric:
// the attested plan plus every endpoint set, all built together and
// swapped together. Requests snapshot one topology and never observe a
// cutover mid-flight.
type topology struct {
	plan shard.Plan
	sps  []*endpointSet[*wire.SPClient]
	tes  []*endpointSet[*wire.TEClient]
	toms []*endpointSet[*wire.TOMClient]
	// vqs are the verified-query sets: each shard's replicas plus its
	// primary when the primary serves both halves (SPs[i] == TEs[i] —
	// only a process holding SP and TE together can stamp one atomic
	// (epoch, gen, VT, records) quadruple).
	vqs []*endpointSet[*wire.VerifiedClient]
}

// closeAll closes every upstream connection of every set.
func (t *topology) closeAll() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	for _, s := range t.sps {
		keep(s.closeAll())
	}
	for _, s := range t.tes {
		keep(s.closeAll())
	}
	for _, s := range t.vqs {
		keep(s.closeAll())
	}
	for _, s := range t.toms {
		keep(s.closeAll())
	}
	return first
}

// Router is the client-facing scatter-gather endpoint. It keeps no
// per-request state beyond in-flight gathers and holds no data: closing
// and restarting one (or running several behind a TCP load balancer) is
// always safe.
type Router struct {
	cfg  Config
	topo atomic.Pointer[topology]
	srv  *wire.Server
	ctrs counters

	// cutoverMu serializes cutovers; retiring holds displaced topologies
	// until their grace timers (or Close) release their connections.
	cutoverMu sync.Mutex
	retiring  []*topology

	proberStop chan struct{}
	proberDone chan struct{}

	// tamper carries the adversarial-test hooks; nil in production. See
	// tamper.go.
	tamper *tamper
}

// newSet builds one shard's empty endpoint set for one role.
func newSet[T upstream](role string, shardIdx int, cfg *Config, ctrs *counters) *endpointSet[T] {
	return &endpointSet[T]{
		role:       role,
		shard:      shardIdx,
		conns:      cfg.Conns,
		hedgeAfter: cfg.HedgeAfter,
		maxLag:     cfg.MaxLag,
		ctrs:       ctrs,
	}
}

// addEndpoint registers one upstream address with a set.
func addEndpoint[T upstream](s *endpointSet[T], addr string, dial func(string) (T, error), stamped bool) *endpoint[T] {
	ep := &endpoint[T]{
		addr:    addr,
		shard:   s.shard,
		role:    s.role,
		dial:    dial,
		stamped: stamped,
		ctrs:    s.ctrs,
	}
	s.add(ep)
	return ep
}

// buildTopology dials every primary upstream and cross-checks the
// deployment's shard attestations exactly like a shard-aware client
// would: all TEs must agree on one plan and their dialed indices, and
// the plan must match the address lists. The TE-attested plan drives all
// scattering and is pinned on every endpoint, so a process that restarts
// with the wrong dataset is rejected on redial. Replicas are dialed
// best-effort (a dead replica is adopted later by the prober), but a
// replica that answers with a mismatched attestation fails construction
// — that is a wiring error, not an outage. On error the half-built
// topology's connections are closed before returning.
func (r *Router) buildTopology(spAddrs, teAddrs []string, replicas [][]string, tomAddrs []string) (*topology, error) {
	cfg := &r.cfg
	t := &topology{}
	ok := false
	defer func() {
		if !ok {
			t.closeAll()
		}
	}()

	// Primaries first: their attestations establish the plan.
	for i := range spAddrs {
		combined := spAddrs[i] == teAddrs[i]
		spSet := newSet[*wire.SPClient]("SP", i, cfg, &r.ctrs)
		addEndpoint(spSet, spAddrs[i], wire.DialSP, combined)
		t.sps = append(t.sps, spSet)
		teSet := newSet[*wire.TEClient]("TE", i, cfg, &r.ctrs)
		addEndpoint(teSet, teAddrs[i], wire.DialTE, combined)
		t.tes = append(t.tes, teSet)
		vqSet := newSet[*wire.VerifiedClient]("verified", i, cfg, &r.ctrs)
		if combined {
			addEndpoint(vqSet, spAddrs[i], wire.DialVerified, true)
		}
		t.vqs = append(t.vqs, vqSet)
	}
	firstSPs := make([]*wire.SPClient, len(t.sps))
	firstTEs := make([]*wire.TEClient, len(t.tes))
	for i := range t.sps {
		sp, err := t.sps[i].eps[0].acquire(cfg.Conns)
		if err != nil {
			return nil, fmt.Errorf("router: shard %d SP: %w", i, err)
		}
		firstSPs[i] = sp
		te, err := t.tes[i].eps[0].acquire(cfg.Conns)
		if err != nil {
			return nil, fmt.Errorf("router: shard %d TE: %w", i, err)
		}
		firstTEs[i] = te
	}
	plan, err := wire.VerifyShardAttestations(firstSPs, firstTEs)
	if err != nil {
		return nil, fmt.Errorf("router: upstream attestation: %w", err)
	}
	t.plan = plan

	// Replicas join the read sets under the now-known plan.
	for i := range replicas {
		for _, addr := range replicas[i] {
			addEndpoint(t.sps[i], addr, wire.DialSP, true)
			addEndpoint(t.tes[i], addr, wire.DialTE, true)
			addEndpoint(t.vqs[i], addr, wire.DialVerified, true)
		}
	}
	// Pin the attested plan on every endpoint: from here on, every fresh
	// dial (including prober re-adoption after a crash) re-verifies the
	// upstream's shard index and plan before trusting it with traffic.
	for i := range t.sps {
		for _, ep := range t.sps[i].eps {
			ep.attest = &t.plan
		}
		for _, ep := range t.tes[i].eps {
			ep.attest = &t.plan
		}
		for _, ep := range t.vqs[i].eps {
			ep.attest = &t.plan
		}
	}
	// Best-effort eager replica dial: a dead replica only logs (the
	// prober adopts it when it comes up), a misattested one is fatal.
	for i := range replicas {
		for _, ep := range t.vqs[i].eps {
			if ep.addr == spAddrs[i] {
				continue // the primary, already verified
			}
			if _, err := ep.acquire(1); err != nil {
				if errors.Is(err, errAttestMismatch) {
					return nil, err
				}
				cfg.Logf("router: shard %d replica %s not yet reachable: %v", i, ep.addr, err)
			}
		}
	}

	for i := range tomAddrs {
		tomSet := newSet[*wire.TOMClient]("TOM", i, cfg, &r.ctrs)
		ep := addEndpoint(tomSet, tomAddrs[i], wire.DialTOM, false)
		tc, err := ep.acquire(cfg.Conns)
		if err != nil {
			return nil, fmt.Errorf("router: shard %d TOM: %w", i, err)
		}
		// Wiring sanity (the provider is untrusted regardless): the TOM
		// server must sit at the index it is dialed as, under the same
		// plan the TEs attest.
		si, err := tc.ShardMap()
		if err != nil {
			return nil, fmt.Errorf("router: shard %d TOM map: %w", i, err)
		}
		if si.Index != i || !si.Plan.Equal(plan) {
			return nil, fmt.Errorf("router: TOM dialed as shard %d reports shard %d of %v", i, si.Index, si.Plan)
		}
		ep.attest = &t.plan
		t.toms = append(t.toms, tomSet)
	}
	ok = true
	return t, nil
}

// New builds a router over the configured upstreams, verifying their
// shard attestations before serving a single request.
func New(cfg Config) (*Router, error) {
	if len(cfg.SPs) == 0 || len(cfg.SPs) != len(cfg.TEs) {
		return nil, fmt.Errorf("router: %d SP addresses for %d TE addresses", len(cfg.SPs), len(cfg.TEs))
	}
	if len(cfg.TOMs) != 0 && len(cfg.TOMs) != len(cfg.SPs) {
		return nil, fmt.Errorf("router: %d TOM addresses for %d shards", len(cfg.TOMs), len(cfg.SPs))
	}
	if len(cfg.Replicas) != 0 && len(cfg.Replicas) != len(cfg.SPs) {
		return nil, fmt.Errorf("router: replica lists for %d shards, have %d shards", len(cfg.Replicas), len(cfg.SPs))
	}
	if cfg.Conns < 1 {
		cfg.Conns = 2
	}
	if cfg.UpstreamTimeout == 0 {
		cfg.UpstreamTimeout = DefaultUpstreamTimeout
	}
	if cfg.MaxLag == 0 {
		cfg.MaxLag = DefaultMaxLag
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := &Router{cfg: cfg}
	t, err := r.buildTopology(cfg.SPs, cfg.TEs, cfg.Replicas, cfg.TOMs)
	if err != nil {
		return nil, err
	}
	r.topo.Store(t)

	if cfg.ProbeInterval > 0 {
		r.proberStop = make(chan struct{})
		r.proberDone = make(chan struct{})
		go r.prober()
	}
	return r, nil
}

// Cutover atomically swaps the router onto a successor topology: the
// new upstreams are dialed and their shard attestations verified BEFORE
// the swap, the attested plan must Equal the ordered one (geometry AND
// epoch — wire.VerifyShardAttestations runs under the epoch-aware
// comparison, so upstreams still attesting the old topology fail here),
// and the ordered epoch must be strictly higher than the serving one, so
// a replayed cutover carrying a stale attested plan is rejected outright.
// In-flight requests finish against the topology they snapshotted; its
// connections close after a grace period sized to the upstream timeout.
func (r *Router) Cutover(cut wire.Cutover) error {
	if cut.Plan.Shards() != len(cut.Shards) {
		return fmt.Errorf("router: cutover lists %d shards under a %d-shard plan", len(cut.Shards), cut.Plan.Shards())
	}
	r.cutoverMu.Lock()
	defer r.cutoverMu.Unlock()
	old := r.topo.Load()
	if cut.Plan.Epoch() <= old.plan.Epoch() {
		return fmt.Errorf("router: cutover to epoch %d rejected; already serving epoch %d (stale plan replay?)",
			cut.Plan.Epoch(), old.plan.Epoch())
	}
	spAddrs := make([]string, len(cut.Shards))
	teAddrs := make([]string, len(cut.Shards))
	replicas := make([][]string, len(cut.Shards))
	for i, s := range cut.Shards {
		if len(s.SPs) == 0 || len(s.TEs) == 0 {
			return fmt.Errorf("router: cutover shard %d has no SP or TE endpoints", i)
		}
		spAddrs[i] = s.SPs[0]
		teAddrs[i] = s.TEs[0]
		replicas[i] = s.SPs[1:]
	}
	next, err := r.buildTopology(spAddrs, teAddrs, replicas, nil)
	if err != nil {
		return fmt.Errorf("router: cutover to epoch %d: %w", cut.Plan.Epoch(), err)
	}
	if !next.plan.Equal(cut.Plan) {
		next.closeAll()
		return fmt.Errorf("router: cutover upstreams attest %v, ordered %v", next.plan, cut.Plan)
	}
	r.topo.Store(next)
	r.ctrs.cutovers.Add(1)
	r.retiring = append(r.retiring, old)
	grace := r.cfg.UpstreamTimeout
	if grace <= 0 {
		grace = DefaultUpstreamTimeout
	}
	time.AfterFunc(grace, func() {
		r.cutoverMu.Lock()
		for i, t := range r.retiring {
			if t == old {
				r.retiring = append(r.retiring[:i], r.retiring[i+1:]...)
				break
			}
		}
		r.cutoverMu.Unlock()
		old.closeAll()
	})
	r.cfg.Logf("router: cut over to %v (displaced epoch %d drains for %v)", next.plan, old.plan.Epoch(), grace)
	return nil
}

// prober periodically redials downed endpoints (re-verifying their
// attestation) and refreshes stamped endpoints' generations, so
// failover targets are warm and the staleness bar is current even
// across idle periods. Each pass runs over the then-current topology.
func (r *Router) prober() {
	defer close(r.proberDone)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	probeTimeout := r.cfg.ProbeInterval * 5
	if probeTimeout < time.Second {
		probeTimeout = time.Second
	}
	for {
		select {
		case <-r.proberStop:
			return
		case <-t.C:
			topo := r.topo.Load()
			for i := range topo.sps {
				topo.sps[i].probe(probeTimeout)
				topo.tes[i].probe(probeTimeout)
				topo.vqs[i].probe(probeTimeout)
			}
			for i := range topo.toms {
				topo.toms[i].probe(probeTimeout)
			}
		}
	}
}

// Serve starts the client-facing endpoint on addr (":0" picks a port).
func (r *Router) Serve(addr string) error {
	if r.srv != nil {
		return fmt.Errorf("router: already serving on %s", r.srv.Addr())
	}
	srv, err := wire.Serve(addr, r.handle, r.cfg.Logf)
	if err != nil {
		return err
	}
	r.srv = srv
	return nil
}

// Addr returns the client-facing address once Serve has been called.
func (r *Router) Addr() string { return r.srv.Addr() }

// Plan returns the TE-attested partition plan the router currently
// scatters under.
func (r *Router) Plan() shard.Plan { return r.topo.Load().plan }

// Shards returns the current upstream shard count.
func (r *Router) Shards() int { return len(r.topo.Load().sps) }

// Close stops the prober and the client-facing server, then closes
// every upstream connection — the serving topology's and any displaced
// ones still inside their cutover grace window.
func (r *Router) Close() error {
	if r.proberStop != nil {
		close(r.proberStop)
		<-r.proberDone
		r.proberStop = nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if r.srv != nil {
		keep(r.srv.Close())
	}
	r.cutoverMu.Lock()
	retiring := r.retiring
	r.retiring = nil
	r.cutoverMu.Unlock()
	for _, t := range retiring {
		keep(t.closeAll())
	}
	if t := r.topo.Load(); t != nil {
		keep(t.closeAll())
	}
	return first
}

// reqCtx builds the context bounding one client request's upstream
// fan-out.
func (r *Router) reqCtx() (context.Context, context.CancelFunc) {
	if r.cfg.UpstreamTimeout > 0 {
		return context.WithTimeout(context.Background(), r.cfg.UpstreamTimeout)
	}
	return context.WithCancel(context.Background())
}
