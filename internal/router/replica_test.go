package router

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/replica"
	"sae/internal/shard"
	"sae/internal/wire"
	"sae/internal/workload"
)

// replicaNode is one live read replica: its state, server and feed.
type replicaNode struct {
	addr   string
	rep    *replica.Replica
	srv    *wire.ReplicaServer
	feed   *wire.ReplicaFeed
	killed bool
}

// repDeployment is a replicated deployment: per shard one durable
// primary (combined SP+TE on one address) plus read replicas, fronted by
// one router.
type repDeployment struct {
	plan      shard.Plan
	syss      []*core.DurableSystem
	primSrvs  []*wire.PrimaryServer
	primAddrs []string
	reps      [][]*replicaNode
	router    *Router
}

// newReplicaDeployment builds a replicated deployment over n records
// split across the given shard count, with replicasPer read replicas
// tailing each primary. cfg's failover knobs are honored; addresses are
// filled in.
func newReplicaDeployment(t *testing.T, n, shards, replicasPer int, cfg Config) *repDeployment {
	t.Helper()
	ds, err := workload.Generate(workload.UNF, n, 42)
	if err != nil {
		t.Fatalf("generating dataset: %v", err)
	}
	plan := shard.PlanFor(ds.Records, shards)
	parts := plan.Partition(ds.Records)
	d := &repDeployment{plan: plan}
	for i := 0; i < plan.Shards(); i++ {
		sys, err := core.OpenDurableSystem(t.TempDir(), parts[i], 32)
		if err != nil {
			t.Fatalf("opening shard %d: %v", i, err)
		}
		t.Cleanup(func() { sys.Close() })
		hub := replica.Attach(sys, 0)
		psrv, err := wire.ServePrimary("127.0.0.1:0", sys, hub, nil,
			wire.WithShardInfo(wire.ShardInfo{Index: i, Plan: plan}))
		if err != nil {
			t.Fatalf("serving shard %d primary: %v", i, err)
		}
		t.Cleanup(func() { psrv.Close() })
		d.syss = append(d.syss, sys)
		d.primSrvs = append(d.primSrvs, psrv)
		d.primAddrs = append(d.primAddrs, psrv.Addr())

		var nodes []*replicaNode
		for j := 0; j < replicasPer; j++ {
			node, err := startReplicaNode(d.primAddrs[i], "127.0.0.1:0")
			if err != nil {
				t.Fatalf("shard %d replica %d: %v", i, j, err)
			}
			t.Cleanup(func() {
				if !node.killed {
					node.feed.Close()
					node.srv.Close()
				}
			})
			nodes = append(nodes, node)
		}
		d.reps = append(d.reps, nodes)
	}
	cfg.SPs = d.primAddrs
	cfg.TEs = d.primAddrs
	cfg.Replicas = make([][]string, len(d.reps))
	for i, nodes := range d.reps {
		for _, node := range nodes {
			cfg.Replicas[i] = append(cfg.Replicas[i], node.addr)
		}
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	if err := r.Serve("127.0.0.1:0"); err != nil {
		t.Fatalf("router serve: %v", err)
	}
	d.router = r
	return d
}

// startReplicaNode bootstraps a replica from the primary, serves it on
// addr and starts its feed.
func startReplicaNode(primaryAddr, addr string) (*replicaNode, error) {
	rep, si, err := wire.BootstrapReplica(primaryAddr)
	if err != nil {
		return nil, err
	}
	srv, err := wire.ServeReplica(addr, rep, nil, wire.WithShardInfo(si))
	if err != nil {
		return nil, err
	}
	return &replicaNode{
		addr: srv.Addr(),
		rep:  rep,
		srv:  srv,
		feed: wire.StartReplicaFeed(rep, primaryAddr, nil),
	}, nil
}

// kill tears the node down like a SIGKILL: server and feed die, the
// replica state is discarded.
func (n *replicaNode) kill() {
	n.killed = true
	n.feed.Close()
	n.srv.Close()
}

// restart re-bootstraps from the primary and serves at the SAME address
// (a supervisor restarting the process).
func (n *replicaNode) restart(primaryAddr string) error {
	rep, si, err := wire.BootstrapReplica(primaryAddr)
	if err != nil {
		return err
	}
	var srv *wire.ReplicaServer
	for attempt := 0; ; attempt++ {
		srv, err = wire.ServeReplica(n.addr, rep, nil, wire.WithShardInfo(si))
		if err == nil {
			break
		}
		if attempt >= 50 {
			return fmt.Errorf("rebinding %s: %w", n.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	n.rep, n.srv = rep, srv
	n.feed = wire.StartReplicaFeed(rep, primaryAddr, nil)
	n.killed = false
	return nil
}

// write commits count fresh records through the primaries' wire write
// path, routing each to its owning shard.
func (d *repDeployment) write(base, count int) error {
	perShard := make([][]record.Record, d.plan.Shards())
	for i := 0; i < count; i++ {
		key := record.Key(uint64(base+i) * 7919 % uint64(record.KeyDomain))
		s := d.plan.ShardFor(key)
		perShard[s] = append(perShard[s], record.Synthesize(record.ID(1<<40+base+i), key))
	}
	for s := range perShard {
		if len(perShard[s]) == 0 {
			continue
		}
		wc, err := wire.DialSP(d.primAddrs[s])
		if err != nil {
			return err
		}
		err = wc.InsertBatch(perShard[s])
		wc.Close()
		if err != nil {
			return fmt.Errorf("shard %d insert: %w", s, err)
		}
	}
	return nil
}

// waitCaughtUp blocks until every live replica's generation reaches its
// primary's committed sequence.
func (d *repDeployment) waitCaughtUp(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for i, nodes := range d.reps {
		want := d.syss[i].Seq()
		for _, node := range nodes {
			if node.killed {
				continue
			}
			for node.rep.Seq() < want {
				if time.Now().After(deadline) {
					t.Fatalf("shard %d replica %s stuck at %d, want %d", i, node.addr, node.rep.Seq(), want)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
}

// minPrimaryGen is the freshest generation a spanning verified answer
// can carry: the minimum committed sequence across shards.
func (d *repDeployment) minPrimaryGen() uint64 {
	min := d.syss[0].Seq()
	for _, sys := range d.syss[1:] {
		if s := sys.Seq(); s < min {
			min = s
		}
	}
	return min
}

// TestRoutedVerifiedWithReplicas: stamped verified queries flow through
// the router across a replicated deployment, verify under the unchanged
// single-system check, and keep flowing — with zero client-visible
// errors — after a whole shard's primary dies, served by its replicas.
func TestRoutedVerifiedWithReplicas(t *testing.T) {
	d := newReplicaDeployment(t, 6_000, 2, 2, Config{ProbeInterval: 20 * time.Millisecond})
	if err := d.write(0, 64); err != nil {
		t.Fatal(err)
	}
	d.waitCaughtUp(t)

	vc, err := wire.DialVerified(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	qs := append(workload.Queries(6, workload.DefaultExtent, 91),
		record.Range{Lo: 0, Hi: record.KeyDomain})
	for _, q := range qs {
		_, gen, err := vc.Query(q)
		if err != nil {
			t.Fatalf("verified query %v: %v", q, err)
		}
		if want := d.minPrimaryGen(); gen < want {
			t.Fatalf("query %v stamped %d, primaries at %d", q, gen, want)
		}
	}

	// Kill shard 0's primary outright. Replicas already hold its last
	// generation; the router must fail over with no client-visible error.
	d.primSrvs[0].Close()
	for i, q := range qs {
		if _, _, err := vc.Query(q); err != nil {
			t.Fatalf("verified query %d after primary death: %v", i, err)
		}
	}
	ctrs := d.router.Counters()
	if ctrs.Failovers == 0 && ctrs.Evictions == 0 {
		t.Fatalf("primary died but no failover or eviction recorded: %+v", ctrs)
	}

	// The plain two-leg verifying path survives too: SP reads and TE
	// tokens both fail over to the replicas.
	pv, err := wire.DialVerifying(d.router.Addr(), d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pv.Close()
	for _, q := range qs {
		if _, err := pv.Query(q); err != nil {
			t.Fatalf("plain verifying query %v after primary death: %v", q, err)
		}
	}
}

// TestRouterStaleReplicaRejected: a replica frozen at an old generation
// (its feed never ran) is excluded by the staleness bound — clients only
// ever see fresh answers while a fresh endpoint lives, and a loud error
// (never a silently stale answer) once none does.
func TestRouterStaleReplicaRejected(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 1_500, 13)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.OpenDurableSystem(t.TempDir(), ds.Records, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	hub := replica.Attach(sys, 0)
	plan := shard.PlanFor(ds.Records, 1)
	psrv, err := wire.ServePrimary("127.0.0.1:0", sys, hub, nil,
		wire.WithShardInfo(wire.ShardInfo{Index: 0, Plan: plan}))
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()

	// A replica WITHOUT a feed: frozen at the bootstrap generation.
	rep, si, err := wire.BootstrapReplica(psrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	rsrv, err := wire.ServeReplica("127.0.0.1:0", rep, nil, wire.WithShardInfo(si))
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()

	// Advance the primary well past the staleness bound.
	for i := 0; i < 4; i++ {
		if _, err := sys.InsertBatch([]record.Key{record.Key(100_000 * (i + 1))}); err != nil {
			t.Fatal(err)
		}
	}

	r, err := New(Config{
		SPs:           []string{psrv.Addr()},
		TEs:           []string{psrv.Addr()},
		Replicas:      [][]string{{rsrv.Addr()}},
		MaxLag:        2,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	// Wait for the prober to observe the primary's generation — the bar
	// the frozen replica is measured against.
	vc, err := wire.DialVerified(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g, err := vc.GenStamp()
		if err != nil {
			t.Fatal(err)
		}
		if g >= sys.Seq() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never observed the primary's generation %d", sys.Seq())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Every routed answer must be fresh: round-robin would hit the stale
	// replica half the time, but the staleness bound keeps it out.
	q := record.Range{Lo: 0, Hi: record.KeyDomain}
	for i := 0; i < 20; i++ {
		_, gen, err := vc.Query(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if gen != sys.Seq() {
			t.Fatalf("query %d served stale generation %d, primary at %d", i, gen, sys.Seq())
		}
	}

	// With the only fresh endpoint dead, the router must fail loudly
	// rather than quietly serve the frozen replica.
	psrv.Close()
	if _, _, err := vc.Query(q); err == nil {
		t.Fatal("router served a beyond-bound stale answer after the primary died")
	}
	if ctrs := r.Counters(); ctrs.StaleRejects == 0 {
		t.Fatalf("stale replica was never rejected: %+v", ctrs)
	}
}

// TestRouterReplayOldAnswerRejected: a malicious router replaying a
// cached verified answer from an older generation passes the XOR check
// (the old answer was correct for its generation) but fails the client's
// monotonic freshness floor — the defense the generation stamp exists
// for.
func TestRouterReplayOldAnswerRejected(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 1_200, 17)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.OpenDurableSystem(t.TempDir(), ds.Records, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	hub := replica.Attach(sys, 0)
	plan := shard.PlanFor(ds.Records, 1)
	psrv, err := wire.ServePrimary("127.0.0.1:0", sys, hub, nil,
		wire.WithShardInfo(wire.ShardInfo{Index: 0, Plan: plan}))
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()
	r, err := New(Config{SPs: []string{psrv.Addr()}, TEs: []string{psrv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	vc, err := wire.DialVerified(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	q := record.Range{Lo: 0, Hi: record.KeyDomain}

	// Capture the per-shard payloads of an honest answer at generation G1.
	var cached [][]byte
	r.setTamper(&tamper{replayVerified: func(raws [][]byte) [][]byte {
		if cached == nil {
			cached = make([][]byte, len(raws))
			for i := range raws {
				cached[i] = append([]byte(nil), raws[i]...)
			}
		}
		return raws
	}})
	_, g1, err := vc.Query(q)
	if err != nil {
		t.Fatalf("honest query: %v", err)
	}

	// Advance the dataset, let the client observe the new generation.
	if _, err := sys.InsertBatch([]record.Key{1_000, 2_000, 3_000}); err != nil {
		t.Fatal(err)
	}
	_, g2, err := vc.Query(q)
	if err != nil {
		t.Fatalf("post-write query: %v", err)
	}
	if g2 <= g1 {
		t.Fatalf("generation did not advance: %d -> %d", g1, g2)
	}

	// Turn the router malicious: replay the cached G1 answer.
	r.setTamper(&tamper{replayVerified: func([][]byte) [][]byte { return cached }})

	// The replay VERIFIES under the plain XOR check — it is a correct
	// answer, just an old one. This is exactly what the stamp is for.
	if _, gen, err := vc.Query(q); err != nil {
		t.Fatalf("replayed answer failed the XOR check (it should verify): %v", err)
	} else if gen != g1 {
		t.Fatalf("replayed answer stamped %d, want the old generation %d", gen, g1)
	}

	// A client enforcing its monotonic floor rejects it.
	if _, _, err := vc.QueryAtLeast(q, vc.Gen()); !errors.Is(err, wire.ErrStaleRead) {
		t.Fatalf("replayed answer passed the freshness floor: %v", err)
	}
}

// TestRouterChaosReplicaChurn is the in-process chaos harness: verified
// clients and a writer run concurrently while replicas are repeatedly
// SIGKILL-equivalently torn down and re-bootstrapped at the same
// address. The primary (also verified-capable) always survives, so the
// invariant is strict: ZERO failed verifications and ZERO client-visible
// errors.
func TestRouterChaosReplicaChurn(t *testing.T) {
	d := newReplicaDeployment(t, 8_000, 2, 2, Config{
		ProbeInterval: 20 * time.Millisecond,
		MaxLag:        1 << 20, // churn bounds lag via re-bootstrap, not rejection
		HedgeAfter:    50 * time.Millisecond,
	})
	if err := d.write(0, 32); err != nil {
		t.Fatal(err)
	}
	d.waitCaughtUp(t)

	stop := make(chan struct{})
	var bg sync.WaitGroup

	// Writer: a steady trickle of inserts straight to the primaries.
	var writerErr error
	bg.Add(1)
	go func() {
		defer bg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := d.write(1_000+i*4, 4); err != nil {
				writerErr = err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Verified readers through the router.
	const workers = 3
	workerErrs := make([]error, workers)
	var queries [workers]int
	for w := 0; w < workers; w++ {
		bg.Add(1)
		go func(w int) {
			defer bg.Done()
			vc, err := wire.DialVerified(d.router.Addr())
			if err != nil {
				workerErrs[w] = err
				return
			}
			defer vc.Close()
			qs := workload.Queries(40, workload.DefaultExtent, int64(500+w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := vc.Query(qs[i%len(qs)]); err != nil {
					workerErrs[w] = fmt.Errorf("query %d: %w", i, err)
					return
				}
				queries[w]++
			}
		}(w)
	}

	// Chaos: kill one replica at a time (≥1 replica plus the primary per
	// shard always up), restart it at the same address mid-workload —
	// including while it is still catching up from its bootstrap.
	for round := 0; round < 6; round++ {
		node := d.reps[round%2][(round/2)%2]
		node.kill()
		time.Sleep(100 * time.Millisecond)
		if err := node.restart(d.primAddrs[round%2]); err != nil {
			close(stop)
			bg.Wait()
			t.Fatalf("chaos round %d restart: %v", round, err)
		}
		time.Sleep(60 * time.Millisecond)
	}
	close(stop)
	bg.Wait()

	if writerErr != nil {
		t.Fatalf("writer saw an error during chaos: %v", writerErr)
	}
	total := 0
	for w := 0; w < workers; w++ {
		if workerErrs[w] != nil {
			t.Fatalf("worker %d saw an error during chaos: %v", w, workerErrs[w])
		}
		total += queries[w]
	}
	if total == 0 {
		t.Fatal("no verified queries completed during chaos")
	}
	ctrs := d.router.Counters()
	if ctrs.Evictions == 0 {
		t.Fatalf("chaos ran but no connection was ever evicted: %+v", ctrs)
	}

	// Quiesce: every replica catches back up and the routed answer is
	// fresh and verified.
	d.waitCaughtUp(t)
	vc, err := wire.DialVerified(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	_, gen, err := vc.Query(record.Range{Lo: 0, Hi: record.KeyDomain})
	if err != nil {
		t.Fatalf("post-chaos verified query: %v", err)
	}
	if want := d.minPrimaryGen(); gen < want {
		t.Fatalf("post-chaos answer stamped %d, primaries at %d", gen, want)
	}
	t.Logf("chaos survived: %d verified queries, counters %+v", total, ctrs)
}
