package router

import (
	"bytes"
	"sync"
	"testing"

	"sae/internal/mbtree"
	"sae/internal/record"
	"sae/internal/wire"
	"sae/internal/workload"
)

// runMixedBurst drives a router deployment (single-shard SAE + TOM tier)
// with concurrent SAE and TOM bursts on pipelined connections and
// returns the verified SAE results plus the raw TOM payloads.
func runMixedBurst(t *testing.T, d *deployment, qs []record.Range) ([][]record.Record, [][]byte) {
	t.Helper()
	vc := d.plainClient(t)
	tc, err := wire.DialTOM(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tc.Close() })

	var (
		wg      sync.WaitGroup
		saeRes  [][]record.Record
		saeErr  error
		tomRaws [][]byte
		tomErr  error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		saeRes, saeErr = vc.QueryBurst(qs)
	}()
	go func() {
		defer wg.Done()
		tomRaws, tomErr = tc.QueryRawMany(qs)
	}()
	wg.Wait()
	if saeErr != nil {
		t.Fatalf("SAE burst through router: %v", saeErr)
	}
	if tomErr != nil {
		t.Fatalf("TOM burst through router: %v", tomErr)
	}
	return saeRes, tomRaws
}

// TestRouterMixedBurstParity runs mixed SAE/TOM bursts through the
// router with the upstream party servers in burst mode and in
// per-request mode (SAE_BURST=0): the verified SAE results and the raw
// TOM payloads must be identical — burst serving at the upstreams is
// invisible to the router tier and its clients.
func TestRouterMixedBurstParity(t *testing.T) {
	qs := workload.Queries(10, workload.DefaultExtent, 88)
	qs = append(qs, record.Range{Lo: record.KeyDomain + 1, Hi: record.KeyDomain + 5}) // empty

	type outcome struct {
		sae [][]record.Record
		tom [][]byte // re-serialized records only: VO signatures differ by owner key
	}
	results := map[string]outcome{}
	for _, mode := range []string{"1", "0"} {
		t.Setenv("SAE_BURST", mode)
		d := newDeployment(t, 4_000, 1, true, Config{})
		sae, tomRaws := runMixedBurst(t, d, qs)
		out := outcome{sae: sae, tom: make([][]byte, len(tomRaws))}

		// Every TOM payload must verify against its deployment's owner key
		// regardless of upstream serve mode. Each deployment generates a
		// fresh key, so cross-mode comparison uses the record bytes only.
		for i, raw := range tomRaws {
			recs, rest, err := wire.DecodeRecords(raw)
			if err != nil {
				t.Fatalf("SAE_BURST=%s: decoding TOM payload %d: %v", mode, i, err)
			}
			vo, err := mbtree.UnmarshalVO(rest)
			if err != nil {
				t.Fatalf("SAE_BURST=%s: decoding TOM VO %d: %v", mode, i, err)
			}
			if err := mbtree.VerifyVO(vo, recs, qs[i].Lo, qs[i].Hi, d.tomOwner.Verifier()); err != nil {
				t.Fatalf("SAE_BURST=%s: TOM payload %d failed verification: %v", mode, i, err)
			}
			for j := range recs {
				out.tom[i] = recs[j].AppendBinary(out.tom[i])
			}
		}
		results[mode] = out
	}
	on, off := results["1"], results["0"]
	for i := range qs {
		if len(on.sae[i]) != len(off.sae[i]) {
			t.Fatalf("query %d: burst-mode upstreams returned %d SAE records, per-request %d",
				i, len(on.sae[i]), len(off.sae[i]))
		}
		for j := range on.sae[i] {
			if !on.sae[i][j].Equal(&off.sae[i][j]) {
				t.Fatalf("query %d record %d: SAE result differs across upstream serve modes", i, j)
			}
		}
		if !bytes.Equal(on.tom[i], off.tom[i]) {
			t.Fatalf("query %d: TOM records differ across upstream serve modes", i)
		}
	}
}

// TestRouterShardedBurst runs a client burst through a 3-shard router
// deployment in both upstream serve modes: scatter-gather over
// burst-serving shards must return the same verified results as over
// per-request shards.
func TestRouterShardedBurst(t *testing.T) {
	qs := workload.Queries(8, workload.DefaultExtent, 89)
	var ref [][]record.Record
	for _, mode := range []string{"1", "0"} {
		t.Setenv("SAE_BURST", mode)
		d := newDeployment(t, 12_000, 3, false, Config{})
		vc := d.plainClient(t)
		res, err := vc.QueryBurst(qs)
		if err != nil {
			t.Fatalf("SAE_BURST=%s: QueryBurst through 3-shard router: %v", mode, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range qs {
			if len(res[i]) != len(ref[i]) {
				t.Fatalf("query %d: %d records with per-request upstreams, %d with burst", i, len(res[i]), len(ref[i]))
			}
			for j := range res[i] {
				if !res[i][j].Equal(&ref[i][j]) {
					t.Fatalf("query %d record %d differs across upstream serve modes", i, j)
				}
			}
		}
	}
}
