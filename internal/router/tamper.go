package router

import (
	"sae/internal/agg"
	"sae/internal/shard"
	"sae/internal/wire"
)

// tamper makes a router malicious for the adversarial tests. The hooks
// interpose only on what a real rogue router controls — the untrusted
// result path (SP-side scatter shapes, gathered record payloads, TOM
// evidence and plan relay). The token path is deliberately out of reach,
// modeling the end-to-end-authenticated client↔TE aggregate the trust
// argument rests on: a router that can also rewrite token bytes is the
// paper's compromised-TE-channel case, which no VO-less scheme survives.
type tamper struct {
	// scatterPlan substitutes a forged partition plan for the SP-side
	// scatter (seam shifting: records between the true and forged splits
	// silently vanish from the gather).
	scatterPlan *shard.Plan
	// reshapeSubs rewrites the SP-side sub-queries (narrowing a clamp at
	// a seam, dropping a shard from the scatter).
	reshapeSubs func([]shard.SubQuery) []shard.SubQuery
	// reshapeParts rewrites the gathered raw record payloads before the
	// merge (suppressing or swapping whole shards' sub-results).
	reshapeParts func([][]byte) [][]byte
	// reshapeTOM rewrites the stitched TOM evidence and/or the relayed
	// plan before encoding.
	reshapeTOM func(shard.Plan, []wire.TOMShardPart) (shard.Plan, []wire.TOMShardPart)
	// forgeAgg rewrites the merged aggregate scalar before it is encoded
	// (a rogue router asserting a flat-out wrong COUNT/SUM/MIN/MAX).
	forgeAgg func(agg.Agg) agg.Agg
	// replayVerified rewrites the gathered per-shard verified payloads
	// (gen + VT + records) before the merge — a rogue router replaying a
	// cached answer from an older generation, which the client's
	// freshness floor must catch even though the XOR check passes.
	replayVerified func([][]byte) [][]byte
}

// setTamper installs (or clears) the malicious hooks; test-only.
func (r *Router) setTamper(t *tamper) { r.tamper = t }
