package router

import (
	"errors"
	"strings"
	"testing"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/shard"
	"sae/internal/wire"
)

// These tests turn the ROUTER itself malicious — not an upstream — and
// assert that a plain, router-oblivious VerifyingClient rejects every
// attack. The tamper hooks cover exactly the surface a rogue router
// controls: the scatter shapes and gathered payloads on the untrusted
// result path, and the TOM evidence + plan relay. The token path stays
// honest, modeling the end-to-end-authenticated client↔TE aggregate the
// trust argument rests on (see the package comment).

// spanningQuery returns a query crossing the seam between shards 0 and
// 1 with records on both sides.
func spanningQuery(t *testing.T, d *deployment) record.Range {
	t.Helper()
	seam := d.sys.Plan.Span(0).Hi
	q := record.Range{Lo: seam - 400_000, Hi: seam + 400_000}
	out, err := d.sys.Query(q)
	if err != nil || out.VerifyErr != nil {
		t.Fatalf("oracle: %v / %v", err, out.VerifyErr)
	}
	onLeft, onRight := 0, 0
	for _, r := range out.Result {
		if r.Key <= seam {
			onLeft++
		} else {
			onRight++
		}
	}
	if onLeft == 0 || onRight == 0 {
		t.Fatalf("query %v has %d/%d records around the seam; widen it", q, onLeft, onRight)
	}
	return q
}

func expectRejected(t *testing.T, err error, attack string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: routed client accepted a tampered result", attack)
	}
	if !errors.Is(err, core.ErrVerificationFailed) && !strings.Contains(err.Error(), "verification") {
		// Any loud failure is acceptable (never a silent wrong answer),
		// but these attacks should specifically trip verification.
		t.Logf("%s rejected with non-verification error: %v", attack, err)
	}
}

// TestRouterSuppressionRejected: the router drops one shard's sub-result
// from the merge. The combined token still covers the suppressed
// records, so the XOR check fails.
func TestRouterSuppressionRejected(t *testing.T) {
	d := newDeployment(t, 10_000, 3, false, Config{})
	q := spanningQuery(t, d)
	client := d.plainClient(t)
	if _, err := client.Query(q); err != nil {
		t.Fatalf("honest routed query: %v", err)
	}
	d.router.setTamper(&tamper{reshapeParts: func(parts [][]byte) [][]byte {
		if len(parts) > 1 {
			return parts[1:]
		}
		return parts
	}})
	defer d.router.setTamper(nil)
	_, err := client.Query(q)
	expectRejected(t, err, "shard suppression")
}

// TestRouterSeamNarrowingRejected: the router narrows one shard's
// sub-range at a partition seam, vanishing the boundary records from
// the result stream while the token still covers them.
func TestRouterSeamNarrowingRejected(t *testing.T) {
	d := newDeployment(t, 10_000, 3, false, Config{})
	q := spanningQuery(t, d)
	client := d.plainClient(t)
	d.router.setTamper(&tamper{reshapeSubs: func(subs []shard.SubQuery) []shard.SubQuery {
		out := append([]shard.SubQuery(nil), subs...)
		// Shave the tail of the first sub-range: the records between the
		// narrowed Hi and the true seam disappear.
		if len(out) > 0 && out[0].Sub.Hi > out[0].Sub.Lo+100_000 {
			out[0].Sub.Hi -= 100_000
		}
		return out
	}})
	defer d.router.setTamper(nil)
	_, err := client.Query(q)
	expectRejected(t, err, "seam narrowing")
}

// TestRouterShardSwapRejected: the router merges two shards' sub-results
// in swapped order. The XOR fold is order-independent — the set is
// right — but the client's key-order contract catches the permutation.
func TestRouterShardSwapRejected(t *testing.T) {
	d := newDeployment(t, 10_000, 3, false, Config{})
	q := spanningQuery(t, d)
	client := d.plainClient(t)
	d.router.setTamper(&tamper{reshapeParts: func(parts [][]byte) [][]byte {
		if len(parts) > 1 && len(parts[0]) > 0 && len(parts[1]) > 0 {
			parts[0], parts[1] = parts[1], parts[0]
		}
		return parts
	}})
	defer d.router.setTamper(nil)
	_, err := client.Query(q)
	expectRejected(t, err, "shard swap")
}

// TestRouterPlanForgeryRejected: the router scatters under a forged plan
// whose split sits away from the attested one, so the sub-queries sent
// to the shard SPs miss the records between the true and forged seams.
func TestRouterPlanForgeryRejected(t *testing.T) {
	d := newDeployment(t, 10_000, 3, false, Config{})
	q := spanningQuery(t, d)
	client := d.plainClient(t)
	splits := d.sys.Plan.Splits()
	splits[0] -= 300_000 // shift the first seam left
	forged, err := shard.NewPlan(splits)
	if err != nil {
		t.Fatal(err)
	}
	d.router.setTamper(&tamper{scatterPlan: &forged})
	defer d.router.setTamper(nil)
	_, err = client.Query(q)
	expectRejected(t, err, "plan forgery")
}

// TestRouterRecordTamperRejected: byte-level tampering inside a relayed
// record payload (the router rewrites a record's payload bytes in
// place) breaks that record's digest and the XOR check.
func TestRouterRecordTamperRejected(t *testing.T) {
	d := newDeployment(t, 10_000, 3, false, Config{})
	q := spanningQuery(t, d)
	client := d.plainClient(t)
	d.router.setTamper(&tamper{reshapeParts: func(parts [][]byte) [][]byte {
		for _, enc := range parts {
			if len(enc) >= record.Size {
				// Flip a payload byte past the key prefix so the record
				// stays in range but hashes differently.
				enc[record.Size-1] ^= 0xFF
				break
			}
		}
		return parts
	}})
	defer d.router.setTamper(nil)
	_, err := client.Query(q)
	expectRejected(t, err, "record tamper")
}

// TestUpstreamTamperThroughRouterRejected: a malicious upstream SP
// (classic DropTamper) stays detected when its result arrives via the
// router.
func TestUpstreamTamperThroughRouterRejected(t *testing.T) {
	d := newDeployment(t, 10_000, 3, false, Config{})
	q := spanningQuery(t, d)
	client := d.plainClient(t)
	d.sys.SPs[1].SetTamper(core.DropTamper(0))
	defer d.sys.SPs[1].SetTamper(nil)
	_, err := client.Query(q)
	expectRejected(t, err, "upstream SP tamper")
}

// TestRouterTOMSuppressionRejected: dropping one shard's TOM evidence
// from the stitched relay leaves fewer answers than the plan's
// overlapping shards — the stitched verification rejects.
func TestRouterTOMSuppressionRejected(t *testing.T) {
	d := newDeployment(t, 9_000, 3, true, Config{})
	q := spanningQuery(t, d)
	client := d.tomClient(t)
	if _, err := client.Query(q); err != nil {
		t.Fatalf("honest routed TOM query: %v", err)
	}
	d.router.setTamper(&tamper{reshapeTOM: func(p shard.Plan, parts []wire.TOMShardPart) (shard.Plan, []wire.TOMShardPart) {
		if len(parts) > 1 {
			return p, parts[1:]
		}
		return p, parts
	}})
	defer d.router.setTamper(nil)
	if _, err := client.Query(q); err == nil {
		t.Fatal("TOM shard suppression accepted")
	}
}

// TestRouterTOMPlanForgeryRejected: relaying a forged plan alongside
// otherwise-honest evidence fails every shard's bound signature — the
// plan cannot be forged by the relay because the owner signed it into
// each root binding.
func TestRouterTOMPlanForgeryRejected(t *testing.T) {
	d := newDeployment(t, 9_000, 3, true, Config{})
	q := spanningQuery(t, d)
	client := d.tomClient(t)
	splits := d.sys.Plan.Splits()
	splits[0] += 100_000
	forged, err := shard.NewPlan(splits)
	if err != nil {
		t.Fatal(err)
	}
	d.router.setTamper(&tamper{reshapeTOM: func(p shard.Plan, parts []wire.TOMShardPart) (shard.Plan, []wire.TOMShardPart) {
		// Reclamp the parts' sub-ranges to the forged plan so the
		// boundary-continuity check alone cannot save the client — the
		// signatures must.
		out := append([]wire.TOMShardPart(nil), parts...)
		for i := range out {
			out[i].Sub = forged.Clamp(out[i].Shard, q)
		}
		return forged, out
	}})
	defer d.router.setTamper(nil)
	if _, err := client.Query(q); err == nil {
		t.Fatal("TOM plan forgery accepted")
	}
}

// TestRouterTOMShardSwapRejected: swapping which shard label carries
// which evidence fails the shard-identity binding.
func TestRouterTOMShardSwapRejected(t *testing.T) {
	d := newDeployment(t, 9_000, 3, true, Config{})
	q := spanningQuery(t, d)
	client := d.tomClient(t)
	d.router.setTamper(&tamper{reshapeTOM: func(p shard.Plan, parts []wire.TOMShardPart) (shard.Plan, []wire.TOMShardPart) {
		if len(parts) > 1 {
			parts[0].Blob, parts[1].Blob = parts[1].Blob, parts[0].Blob
		}
		return p, parts
	}})
	defer d.router.setTamper(nil)
	if _, err := client.Query(q); err == nil {
		t.Fatal("TOM shard swap accepted")
	}
}

// tomClient dials a verifying TOM client through the router.
func (d *deployment) tomClient(t *testing.T) *wire.VerifyingTOMClient {
	t.Helper()
	tc, err := wire.DialTOM(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tc.Close() })
	return &wire.VerifyingTOMClient{Provider: tc, Verifier: d.tomOwner.Verifier()}
}
