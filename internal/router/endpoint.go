package router

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sae/internal/shard"
	"sae/internal/wire"
)

// upstream is what the router needs from any wire client: lifecycle,
// liveness, and the attestation/stamp probes the health loop runs.
type upstream interface {
	Close() error
	Err() error
	ShardMapCtx(context.Context) (wire.ShardInfo, error)
	GenStampCtx(context.Context) (uint64, error)
}

// Reconnect backoff: a failed upstream is retried after backoffMin,
// doubling (plus jitter) up to backoffMax. The cap stays well under a
// chaos harness's restart cadence so a revived process is re-adopted
// within a probe interval or two.
const (
	backoffMin = 25 * time.Millisecond
	backoffMax = 500 * time.Millisecond
)

// maxAttempts bounds how many distinct endpoints one request may fail
// over across before the error goes back to the client.
const maxAttempts = 3

// errStale marks an answer whose generation stamp lags the set's newest
// observed stamp by more than the configured bound. It triggers failover
// to a fresher endpoint WITHOUT evicting the connection — the replica is
// healthy, just behind.
var errStale = errors.New("router: answer exceeds the staleness bound")

// errAttestMismatch marks an upstream that dialed fine but attests a
// different shard or plan than it was configured as. Unlike a dead
// process (which may come back) this is a wiring error: New fails fast
// on it rather than quietly running degraded forever.
var errAttestMismatch = errors.New("router: upstream attestation mismatch")

// endpoint is one upstream address with its pooled pipelined connections
// and health state. Connections are (re)dialed lazily: a dead endpoint
// costs nothing until its backoff expires, and a revived one is adopted
// on the next pick or probe.
type endpoint[T upstream] struct {
	addr    string
	shard   int
	role    string
	dial    func(string) (T, error)
	stamped bool // speaks MsgGenStampReq (a primary or replica server)
	ctrs    *counters

	// attest, when non-nil, is re-checked on every fresh dial: the
	// upstream must report this plan and the endpoint's shard index, so
	// a process restarted with the wrong dataset (or a port reused by a
	// stranger) is rejected instead of adopted.
	attest *shard.Plan

	mu      sync.Mutex
	conns   []T
	next    int
	down    bool
	broken  bool // saw an eviction or markDown since the last clean dial
	retryAt time.Time
	backoff time.Duration

	gen atomic.Uint64 // newest generation stamp observed from this upstream
}

// acquire returns a live connection, evicting dead ones and redialing up
// to want connections. While the endpoint is inside its backoff window
// with no live connections it fails fast.
func (e *endpoint[T]) acquire(want int) (T, error) {
	var zero T
	e.mu.Lock()
	defer e.mu.Unlock()
	// Evict connections whose receive loop has died (the passive half of
	// failure detection: a mid-flight breakage poisons the conn, and it
	// must never be round-robined back into service).
	live := e.conns[:0]
	for _, c := range e.conns {
		if c.Err() != nil {
			c.Close()
			e.ctrs.evictions.Add(1)
			e.broken = true
		} else {
			live = append(live, c)
		}
	}
	for i := len(live); i < len(e.conns); i++ {
		e.conns[i] = zero
	}
	e.conns = live
	if len(e.conns) == 0 && e.down && time.Now().Before(e.retryAt) {
		return zero, fmt.Errorf("router: %s %s (shard %d) is down, retrying after backoff", e.role, e.addr, e.shard)
	}
	for len(e.conns) < want {
		c, err := e.dialChecked()
		if err != nil {
			if len(e.conns) > 0 {
				break // serve on what we have
			}
			e.markDownLocked()
			return zero, err
		}
		if e.broken {
			e.ctrs.reconnects.Add(1)
		}
		e.conns = append(e.conns, c)
	}
	e.down = false
	e.next++
	return e.conns[e.next%len(e.conns)], nil
}

// dialChecked dials one connection and, when an attestation is pinned,
// verifies the upstream still reports the expected shard and plan.
func (e *endpoint[T]) dialChecked() (T, error) {
	var zero T
	c, err := e.dial(e.addr)
	if err != nil {
		return zero, err
	}
	if e.attest != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		si, err := c.ShardMapCtx(ctx)
		cancel()
		if err != nil {
			c.Close()
			return zero, fmt.Errorf("router: attesting %s %s: %w", e.role, e.addr, err)
		}
		if si.Index != e.shard || !si.Plan.Equal(*e.attest) {
			c.Close()
			return zero, fmt.Errorf("%w: %s %s attests shard %d of %d, dialed as shard %d",
				errAttestMismatch, e.role, e.addr, si.Index, si.Plan.Shards(), e.shard)
		}
	}
	return c, nil
}

// evict drops a connection that failed mid-flight and, if it was the
// last one, marks the endpoint down with backoff.
func (e *endpoint[T]) evict(bad T) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var zero T
	for i, c := range e.conns {
		if any(c) == any(bad) {
			c.Close()
			e.ctrs.evictions.Add(1)
			e.broken = true
			e.conns[i] = e.conns[len(e.conns)-1]
			e.conns[len(e.conns)-1] = zero
			e.conns = e.conns[:len(e.conns)-1]
			break
		}
	}
	if len(e.conns) == 0 {
		e.markDownLocked()
	}
}

// markDownLocked starts (or extends) the backoff window: exponential
// with jitter so a fleet of routers does not stampede a restarting
// upstream in lockstep.
func (e *endpoint[T]) markDownLocked() {
	e.down = true
	e.broken = true
	if e.backoff < backoffMin {
		e.backoff = backoffMin
	} else if e.backoff *= 2; e.backoff > backoffMax {
		e.backoff = backoffMax
	}
	jitter := time.Duration(rand.Int63n(int64(e.backoff)/2 + 1))
	e.retryAt = time.Now().Add(e.backoff + jitter)
}

// markUp records a successful round trip: the endpoint is healthy and
// its backoff resets.
func (e *endpoint[T]) markUp() {
	e.mu.Lock()
	e.down = false
	e.backoff = 0
	e.mu.Unlock()
}

func (e *endpoint[T]) isDown() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.down && time.Now().Before(e.retryAt)
}

// closeAll closes every pooled connection (router shutdown).
func (e *endpoint[T]) closeAll() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	for _, c := range e.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.conns = nil
	return first
}

// endpointSet is one shard's replica set for one role (SP reads, TE
// tokens, verified queries, TOM): the primary plus any replicas, with
// pick/failover/hedging across them.
type endpointSet[T upstream] struct {
	role  string
	shard int
	eps   []*endpoint[T]
	next  atomic.Uint32

	conns      int
	hedgeAfter time.Duration
	maxLag     uint64
	ctrs       *counters

	// maxGen is the newest generation stamp observed from ANY endpoint
	// of this set — the freshness bar replicas are measured against.
	maxGen atomic.Uint64
}

func (s *endpointSet[T]) add(ep *endpoint[T]) { s.eps = append(s.eps, ep) }

// noteGen records a stamp observed from ep and reports whether ep now
// exceeds the staleness bound.
func (s *endpointSet[T]) noteGen(ep *endpoint[T], gen uint64) (stale bool) {
	ep.gen.Store(gen)
	for {
		cur := s.maxGen.Load()
		if gen <= cur || s.maxGen.CompareAndSwap(cur, gen) {
			break
		}
	}
	return s.isStaleGen(gen)
}

func (s *endpointSet[T]) isStaleGen(gen uint64) bool {
	max := s.maxGen.Load()
	return max > gen && max-gen > s.maxLag
}

func (s *endpointSet[T]) isStale(ep *endpoint[T]) bool {
	return ep.stamped && s.isStaleGen(ep.gen.Load())
}

// pick chooses the next endpoint to try, round-robin with two quality
// passes: first the healthy-and-fresh, then anything not in backoff.
// Endpoints in skip (already tried this request) are never returned.
func (s *endpointSet[T]) pick(skip map[*endpoint[T]]bool) *endpoint[T] {
	n := len(s.eps)
	if n == 0 {
		return nil
	}
	start := int(s.next.Add(1))
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			ep := s.eps[(start+i)%n]
			if skip[ep] {
				continue
			}
			if pass == 0 && (ep.isDown() || s.isStale(ep)) {
				continue
			}
			if pass == 1 && ep.isDown() {
				continue
			}
			return ep
		}
	}
	// Everything usable is down or tried; hand back the first untried
	// endpoint anyway — its acquire fails fast inside backoff, and a
	// just-revived process gets adopted without waiting for the prober.
	for i := 0; i < n; i++ {
		ep := s.eps[(start+i)%n]
		if !skip[ep] {
			return ep
		}
	}
	return nil
}

// opFunc is one request attempt against one upstream connection. ep is
// supplied so verified ops can record the generation stamps they parse.
type opFunc[T upstream] func(ctx context.Context, c T, ep *endpoint[T]) (any, error)

// do runs op with bounded failover: up to maxAttempts distinct endpoints
// are tried. A typed ServerError never fails over (it came over a
// healthy connection and would recur anywhere); a parent-context expiry
// never retries (the client's budget is spent); a stale answer retries
// without eviction; everything else evicts the implicated connection and
// moves on. With hedging configured, each attempt may race two
// endpoints.
func (s *endpointSet[T]) do(parent context.Context, op opFunc[T]) (any, error) {
	tried := make(map[*endpoint[T]]bool, maxAttempts)
	var lastErr error
	for try := 0; try < maxAttempts; try++ {
		ep := s.pick(tried)
		if ep == nil {
			break
		}
		tried[ep] = true
		var v any
		var err error
		if s.hedgeAfter > 0 && len(s.eps) > 1 {
			v, err = s.attemptHedged(parent, ep, tried, op)
		} else {
			v, err = s.attempt(parent, ep, op)
		}
		if err == nil {
			return v, nil
		}
		var se *wire.ServerError
		if errors.As(err, &se) {
			return nil, err
		}
		if parent.Err() != nil {
			return nil, err
		}
		lastErr = err
		s.ctrs.failovers.Add(1)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("router: shard %d has no usable %s upstream", s.shard, s.role)
	}
	return nil, lastErr
}

// attempt runs op once against ep under a per-attempt context.
func (s *endpointSet[T]) attempt(parent context.Context, ep *endpoint[T], op opFunc[T]) (any, error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	return s.attemptOn(ctx, ep, op)
}

// attemptOn is attempt with caller-owned context (the hedged race keeps
// both legs' contexts alive until a winner is chosen).
func (s *endpointSet[T]) attemptOn(ctx context.Context, ep *endpoint[T], op opFunc[T]) (any, error) {
	c, err := ep.acquire(s.conns)
	if err != nil {
		return nil, err
	}
	v, err := op(ctx, c, ep)
	if err == nil {
		ep.markUp()
		return v, nil
	}
	if errors.Is(err, errStale) {
		s.ctrs.staleRejects.Add(1)
		return nil, err
	}
	var se *wire.ServerError
	if errors.As(err, &se) {
		return nil, err
	}
	if ctx.Err() == nil {
		// Not our cancellation and not a server-reported failure: the
		// connection itself is implicated.
		ep.evict(c)
	}
	return nil, err
}

// attemptHedged races ep against a second endpoint started hedgeAfter
// later: the first success wins and the loser's context is cancelled,
// which abandons its in-flight request (the wire layer drops the pending
// entry, so the late response frame is discarded, never double-
// delivered). The hedge endpoint is added to tried.
func (s *endpointSet[T]) attemptHedged(parent context.Context, ep1 *endpoint[T], tried map[*endpoint[T]]bool, op opFunc[T]) (any, error) {
	type legResult struct {
		v     any
		err   error
		hedge bool
	}
	ch := make(chan legResult, 2)
	ctx1, cancel1 := context.WithCancel(parent)
	defer cancel1()
	go func() {
		v, err := s.attemptOn(ctx1, ep1, op)
		ch <- legResult{v, err, false}
	}()
	timer := time.NewTimer(s.hedgeAfter)
	defer timer.Stop()
	var cancel2 context.CancelFunc
	hedged := false
	outstanding := 1
	var firstErr error
	for outstanding > 0 {
		select {
		case <-timer.C:
			if hedged {
				continue
			}
			ep2 := s.pick(tried)
			if ep2 == nil {
				continue
			}
			tried[ep2] = true
			hedged = true
			s.ctrs.hedges.Add(1)
			var ctx2 context.Context
			ctx2, cancel2 = context.WithCancel(parent)
			defer cancel2()
			outstanding++
			go func() {
				v, err := s.attemptOn(ctx2, ep2, op)
				ch <- legResult{v, err, true}
			}()
		case res := <-ch:
			outstanding--
			if res.err == nil {
				if res.hedge {
					s.ctrs.hedgesWon.Add(1)
					cancel1()
				} else if hedged {
					s.ctrs.hedgesLost.Add(1)
					cancel2()
				}
				// A still-outstanding loser finishes into the buffered
				// channel and is garbage collected; nothing blocks.
				return res.v, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
		}
	}
	return nil, firstErr
}

// probe runs one health pass over the set: endpoints past their backoff
// window are redialed (with attestation), and stamped endpoints are asked
// for their generation stamp so the set's freshness bar stays current even
// when no client traffic is flowing.
func (s *endpointSet[T]) probe(timeout time.Duration) {
	for _, ep := range s.eps {
		if ep.isDown() {
			continue // still inside the backoff window
		}
		c, err := ep.acquire(1)
		if err != nil || !ep.stamped {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		gen, err := c.GenStampCtx(ctx)
		timedOut := ctx.Err() != nil
		cancel()
		if err != nil {
			// A typed server error (endpoint does not speak the stamp) and a
			// probe timeout (slow, not provably dead) leave the connection
			// alone; a transport failure evicts it.
			var se *wire.ServerError
			if !errors.As(err, &se) && !timedOut {
				ep.evict(c)
			}
			continue
		}
		s.noteGen(ep, gen)
		ep.markUp()
	}
}

func (s *endpointSet[T]) closeAll() error {
	var first error
	for _, ep := range s.eps {
		if err := ep.closeAll(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
