package router

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"sae/internal/agg"
	"sae/internal/digest"
	"sae/internal/record"
	"sae/internal/shard"
	"sae/internal/wire"
)

// handle maps one client request to one response frame. Every branch
// either returns the complete merged answer or an error frame — a
// failed or timed-out shard can never surface as a truncated result.
// The topology is snapshotted ONCE per request: a reshard cutover
// landing mid-request never mixes two topologies inside one answer.
func (r *Router) handle(req wire.Frame, rb *wire.RespBuf) wire.Frame {
	t := r.topo.Load()
	switch req.Type {
	case wire.MsgQuery:
		return r.handleQuery(t, req, rb)
	case wire.MsgBatchQuery:
		return r.handleBatchQuery(t, req, rb)
	case wire.MsgVTRequest:
		return r.handleVT(t, req, rb)
	case wire.MsgBatchVT:
		return r.handleBatchVT(t, req, rb)
	case wire.MsgTOMQuery:
		return r.handleTOM(t, req, rb)
	case wire.MsgAggQuery:
		return r.handleAggQuery(t, req, rb)
	case wire.MsgAggTokenReq:
		return r.handleAggToken(t, req, rb)
	case wire.MsgTOMAggQuery:
		return r.handleTOMAgg(t, req, rb)
	case wire.MsgVerifiedQuery:
		return r.handleVerifiedQuery(t, req, rb)
	case wire.MsgGenStampReq:
		return r.handleGenStamp(t, rb)
	case wire.MsgReshardCutover:
		cut, err := wire.DecodeCutover(req.Payload)
		if err != nil {
			return wire.ErrFrame(err)
		}
		if err := r.Cutover(cut); err != nil {
			return wire.ErrFrame(err)
		}
		return wire.Frame{Type: wire.MsgAck}
	case wire.MsgShardMapReq:
		// Relay the TE-attested partition plan for observability and
		// tooling. The index slot is meaningless for a router; by
		// convention it reports 0. Clients never need this answer — the
		// whole point of the tier is that they treat the router as a
		// stand-alone system — and must not trust it: verification never
		// depends on it.
		return wire.Frame{Type: wire.MsgShardMap, Payload: wire.EncodeShardInfo(wire.ShardInfo{Index: 0, Plan: t.plan})}
	default:
		return wire.ErrFrame(fmt.Errorf("%w: router cannot handle message type %d (the router serves queries; owners update the shards directly)",
			wire.ErrProtocol, req.Type))
	}
}

// scatterSubs computes the SP-side sub-queries for q. The adversarial
// test hooks interpose here (forged plans, narrowed seams) — the token
// side never goes through them, mirroring an attacker who can bend the
// untrusted result path but not the TE aggregation.
func (r *Router) scatterSubs(t *topology, q record.Range) []shard.SubQuery {
	if r.tamper != nil && r.tamper.scatterPlan != nil {
		return r.tamper.scatterPlan.Scatter(q)
	}
	subs := t.plan.Scatter(q)
	if r.tamper != nil && r.tamper.reshapeSubs != nil {
		subs = r.tamper.reshapeSubs(subs)
	}
	return subs
}

// gatherRecords fans a range out to the overlapping shards' SP endpoint
// sets (primary plus replicas, with failover and hedging) and appends
// the merged EncodeRecords payload (count + packed records) to rb,
// without decoding a single record: each shard's sub-result is validated
// for framing and spliced into the response in shard order. It returns
// the merged record count.
func (r *Router) gatherRecords(t *topology, q record.Range, rb *wire.RespBuf) (int, error) {
	subs := r.scatterSubs(t, q)
	raws := make([][]byte, len(subs))
	errs := make([]error, len(subs))
	ctx, cancel := r.reqCtx()
	defer cancel()
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := t.sps[subs[i].Shard].do(ctx, func(ctx context.Context, c *wire.SPClient, _ *endpoint[*wire.SPClient]) (any, error) {
				return c.QueryRawCtx(ctx, subs[i].Sub)
			})
			if err != nil {
				errs[i] = fmt.Errorf("router: shard %d SP: %w", subs[i].Shard, err)
				return
			}
			raws[i] = v.([]byte)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	encs := make([][]byte, len(subs))
	for i, raw := range raws {
		enc, rest, _, err := wire.RecordsView(raw)
		if err != nil {
			return 0, fmt.Errorf("router: shard %d result: %w", subs[i].Shard, err)
		}
		if len(rest) != 0 {
			return 0, fmt.Errorf("%w: shard %d result carries %d trailing bytes", wire.ErrProtocol, subs[i].Shard, len(rest))
		}
		encs[i] = enc
	}
	if r.tamper != nil && r.tamper.reshapeParts != nil {
		encs = r.tamper.reshapeParts(encs)
	}
	// Contiguous partitions: splicing the shard payloads in shard order
	// is the key-order merge, byte-for-byte what a single SP serving the
	// whole dataset would have encoded.
	at := rb.Len()
	rb.AppendUint32(0)
	total := 0
	for _, enc := range encs {
		total += len(enc) / record.Size
		rb.Append(enc)
	}
	rb.PatchUint32(at, uint32(total))
	return total, nil
}

func (r *Router) handleQuery(t *topology, req wire.Frame, rb *wire.RespBuf) wire.Frame {
	q, err := wire.DecodeRange(req.Payload)
	if err != nil {
		return wire.ErrFrame(err)
	}
	if _, err := r.gatherRecords(t, q, rb); err != nil {
		return wire.ErrFrame(err)
	}
	return wire.Frame{Type: wire.MsgResult, Payload: rb.Bytes()}
}

func (r *Router) handleBatchQuery(t *topology, req wire.Frame, rb *wire.RespBuf) wire.Frame {
	qs, err := wire.DecodeRanges(req.Payload)
	if err != nil {
		return wire.ErrFrame(err)
	}
	// Group every query's sub-ranges by shard so each shard SP sees at
	// most one batch frame, exactly like the shard-aware client.
	subs := make([][]record.Range, len(t.sps))
	owners := make([][]int, len(t.sps))
	for qi, q := range qs {
		for _, sq := range r.scatterSubs(t, q) {
			subs[sq.Shard] = append(subs[sq.Shard], sq.Sub)
			owners[sq.Shard] = append(owners[sq.Shard], qi)
		}
	}
	ctx, cancel := r.reqCtx()
	defer cancel()
	raws := make([][]byte, len(t.sps))
	errs := make([]error, len(t.sps))
	var wg sync.WaitGroup
	for idx := range t.sps {
		if len(subs[idx]) == 0 {
			continue
		}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			v, err := t.sps[idx].do(ctx, func(ctx context.Context, c *wire.SPClient, _ *endpoint[*wire.SPClient]) (any, error) {
				return c.QueryBatchRawCtx(ctx, subs[idx])
			})
			if err != nil {
				errs[idx] = fmt.Errorf("router: shard %d SP batch: %w", idx, err)
				return
			}
			raws[idx] = v.([]byte)
		}(idx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return wire.ErrFrame(err)
		}
	}
	// Split each shard's batch payload into per-entry record views and
	// hand every query its parts in shard order.
	parts := make([][][]byte, len(qs))
	for idx := range t.sps {
		if len(subs[idx]) == 0 {
			continue
		}
		entries, err := splitBatchPayload(raws[idx], len(subs[idx]))
		if err != nil {
			return wire.ErrFrame(fmt.Errorf("router: shard %d batch result: %w", idx, err))
		}
		for j, qi := range owners[idx] {
			parts[qi] = append(parts[qi], entries[j])
		}
	}
	rb.AppendUint32(uint32(len(qs)))
	for qi := range qs {
		at := rb.Len()
		rb.AppendUint32(0)
		total := 0
		for _, enc := range parts[qi] {
			total += len(enc) / record.Size
			rb.Append(enc)
		}
		rb.PatchUint32(at, uint32(total))
	}
	return wire.Frame{Type: wire.MsgBatchResult, Payload: rb.Bytes()}
}

// splitBatchPayload validates an EncodeRecordBatches payload of exactly
// n entries and returns each entry's raw record bytes (count stripped).
func splitBatchPayload(raw []byte, n int) ([][]byte, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("%w: truncated batch count", wire.ErrProtocol)
	}
	if got := int(binary.BigEndian.Uint32(raw[0:4])); got != n {
		return nil, fmt.Errorf("%w: %d batch entries, want %d", wire.ErrProtocol, got, n)
	}
	b := raw[4:]
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		enc, rest, _, err := wire.RecordsView(b)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		out = append(out, enc)
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", wire.ErrProtocol, len(b))
	}
	return out, nil
}

// gatherVT XOR-combines the overlapping shard TEs' tokens for q. The
// scatter uses the attested plan directly (never the tamper hooks): the
// token path models the authenticated client↔TE aggregate.
func (r *Router) gatherVT(t *topology, q record.Range) (digest.Digest, error) {
	subs := t.plan.Scatter(q)
	vts := make([]digest.Digest, len(subs))
	errs := make([]error, len(subs))
	ctx, cancel := r.reqCtx()
	defer cancel()
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := t.tes[subs[i].Shard].do(ctx, func(ctx context.Context, c *wire.TEClient, _ *endpoint[*wire.TEClient]) (any, error) {
				return c.GenerateVTWithCtx(ctx, subs[i].Sub)
			})
			if err != nil {
				errs[i] = fmt.Errorf("router: shard %d TE: %w", subs[i].Shard, err)
				return
			}
			vts[i] = v.(digest.Digest)
		}(i)
	}
	wg.Wait()
	var acc digest.Accumulator
	for i := range subs {
		if errs[i] != nil {
			return digest.Zero, errs[i]
		}
		acc.Add(vts[i])
	}
	return acc.Sum(), nil
}

func (r *Router) handleVT(t *topology, req wire.Frame, rb *wire.RespBuf) wire.Frame {
	q, err := wire.DecodeRange(req.Payload)
	if err != nil {
		return wire.ErrFrame(err)
	}
	vt, err := r.gatherVT(t, q)
	if err != nil {
		return wire.ErrFrame(err)
	}
	rb.Append(vt[:])
	return wire.Frame{Type: wire.MsgVT, Payload: rb.Bytes()}
}

func (r *Router) handleBatchVT(t *topology, req wire.Frame, rb *wire.RespBuf) wire.Frame {
	qs, err := wire.DecodeRanges(req.Payload)
	if err != nil {
		return wire.ErrFrame(err)
	}
	subs := make([][]record.Range, len(t.tes))
	owners := make([][]int, len(t.tes))
	for qi, q := range qs {
		for _, sq := range t.plan.Scatter(q) {
			subs[sq.Shard] = append(subs[sq.Shard], sq.Sub)
			owners[sq.Shard] = append(owners[sq.Shard], qi)
		}
	}
	ctx, cancel := r.reqCtx()
	defer cancel()
	shardVTs := make([][]digest.Digest, len(t.tes))
	errs := make([]error, len(t.tes))
	var wg sync.WaitGroup
	for idx := range t.tes {
		if len(subs[idx]) == 0 {
			continue
		}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			v, err := t.tes[idx].do(ctx, func(ctx context.Context, c *wire.TEClient, _ *endpoint[*wire.TEClient]) (any, error) {
				return c.GenerateVTBatchCtx(ctx, subs[idx])
			})
			if err != nil {
				errs[idx] = fmt.Errorf("router: shard %d TE batch: %w", idx, err)
				return
			}
			shardVTs[idx] = v.([]digest.Digest)
		}(idx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return wire.ErrFrame(err)
		}
	}
	accs := make([]digest.Accumulator, len(qs))
	for idx := range t.tes {
		for j, qi := range owners[idx] {
			accs[qi].Add(shardVTs[idx][j])
		}
	}
	rb.AppendUint32(uint32(len(qs)))
	for qi := range qs {
		sum := accs[qi].Sum()
		rb.Append(sum[:])
	}
	return wire.Frame{Type: wire.MsgBatchVTResult, Payload: rb.Bytes()}
}

// handleTOM routes a TOM query. A single-shard deployment relays the
// provider's answer verbatim (bit-identical to dialing it directly); a
// sharded one gathers each overlapping provider's (records + VO) blob
// and stitches them into a MsgTOMShardedResult the verifying client
// checks against the owner-signed shard bindings.
func (r *Router) handleTOM(t *topology, req wire.Frame, rb *wire.RespBuf) wire.Frame {
	if len(t.toms) == 0 {
		return wire.ErrFrame(fmt.Errorf("%w: router has no TOM upstreams", wire.ErrProtocol))
	}
	q, err := wire.DecodeRange(req.Payload)
	if err != nil {
		return wire.ErrFrame(err)
	}
	ctx, cancel := r.reqCtx()
	defer cancel()
	if t.plan.Shards() == 1 {
		v, err := t.toms[0].do(ctx, func(ctx context.Context, c *wire.TOMClient, _ *endpoint[*wire.TOMClient]) (any, error) {
			return c.QueryRawCtx(ctx, q)
		})
		if err != nil {
			return wire.ErrFrame(fmt.Errorf("router: TOM: %w", err))
		}
		rb.Append(v.([]byte))
		return wire.Frame{Type: wire.MsgTOMResult, Payload: rb.Bytes()}
	}
	subs := t.plan.Scatter(q)
	parts := make([]wire.TOMShardPart, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := t.toms[subs[i].Shard].do(ctx, func(ctx context.Context, c *wire.TOMClient, _ *endpoint[*wire.TOMClient]) (any, error) {
				return c.QueryRawCtx(ctx, subs[i].Sub)
			})
			if err != nil {
				errs[i] = fmt.Errorf("router: shard %d TOM: %w", subs[i].Shard, err)
				return
			}
			parts[i] = wire.TOMShardPart{Shard: subs[i].Shard, Sub: subs[i].Sub, Blob: v.([]byte)}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return wire.ErrFrame(err)
		}
	}
	plan := t.plan
	if r.tamper != nil && r.tamper.reshapeTOM != nil {
		plan, parts = r.tamper.reshapeTOM(plan, parts)
	}
	wire.AppendTOMShardedHeader(rb, plan, len(parts))
	for _, p := range parts {
		wire.AppendTOMShardedPart(rb, p.Shard, p.Sub, p.Blob)
	}
	return wire.Frame{Type: wire.MsgTOMShardedResult, Payload: rb.Bytes()}
}

// handleAggQuery scatters an aggregate query to the overlapping shard SPs
// and merges the partial scalars. This is the untrusted result path: the
// scatter goes through the tamper hooks and the merged scalar through
// forgeAgg, and the client's token comparison must catch anything a rogue
// router bends here.
func (r *Router) handleAggQuery(t *topology, req wire.Frame, rb *wire.RespBuf) wire.Frame {
	q, err := wire.DecodeRange(req.Payload)
	if err != nil {
		return wire.ErrFrame(err)
	}
	subs := r.scatterSubs(t, q)
	partials := make([]agg.Agg, len(subs))
	errs := make([]error, len(subs))
	ctx, cancel := r.reqCtx()
	defer cancel()
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := t.sps[subs[i].Shard].do(ctx, func(ctx context.Context, c *wire.SPClient, _ *endpoint[*wire.SPClient]) (any, error) {
				return c.AggregateWithCtx(ctx, subs[i].Sub)
			})
			if err != nil {
				errs[i] = fmt.Errorf("router: shard %d SP aggregate: %w", subs[i].Shard, err)
				return
			}
			partials[i] = v.(agg.Agg)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return wire.ErrFrame(err)
		}
	}
	// Contiguous non-overlapping clamps: the monoid fold over the partials
	// in any order is the whole range's scalar.
	var merged agg.Agg
	for _, a := range partials {
		merged = merged.Merge(a)
	}
	if r.tamper != nil && r.tamper.forgeAgg != nil {
		merged = r.tamper.forgeAgg(merged)
	}
	var buf [agg.Size]byte
	rb.Append(merged.Normalize().AppendTo(buf[:0]))
	return wire.Frame{Type: wire.MsgAggResult, Payload: rb.Bytes()}
}

// handleAggToken gathers the overlapping shard TEs' aggregate tokens and
// deterministically re-derives the whole-range token. Like gatherVT this
// models the authenticated client↔TE aggregate: the scatter uses the
// attested plan directly, every upstream token's tag is checked before its
// scalar is trusted, and the partials must seam-check back into q before
// the merged token is tagged. The tamper hooks never reach this path — a
// router that could rewrite token bytes is the compromised-TE-channel
// case, out of the model.
func (r *Router) handleAggToken(t *topology, req wire.Frame, rb *wire.RespBuf) wire.Frame {
	q, err := wire.DecodeRange(req.Payload)
	if err != nil {
		return wire.ErrFrame(err)
	}
	subs := t.plan.Scatter(q)
	toks := make([]agg.Token, len(subs))
	errs := make([]error, len(subs))
	ctx, cancel := r.reqCtx()
	defer cancel()
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := t.tes[subs[i].Shard].do(ctx, func(ctx context.Context, c *wire.TEClient, _ *endpoint[*wire.TEClient]) (any, error) {
				return c.AggTokenWithCtx(ctx, subs[i].Sub)
			})
			if err != nil {
				errs[i] = fmt.Errorf("router: shard %d TE aggregate token: %w", subs[i].Shard, err)
				return
			}
			toks[i] = v.(agg.Token)
		}(i)
	}
	wg.Wait()
	parts := make([]shard.AggPart, len(subs))
	for i := range subs {
		if errs[i] != nil {
			return wire.ErrFrame(errs[i])
		}
		if err := toks[i].Verify(subs[i].Sub, toks[i].Agg); err != nil {
			return wire.ErrFrame(fmt.Errorf("router: shard %d TE aggregate token: %w", subs[i].Shard, err))
		}
		parts[i] = shard.AggPart{Sub: subs[i].Sub, Agg: toks[i].Agg}
	}
	merged, err := shard.MergeAgg(q, parts)
	if err != nil {
		return wire.ErrFrame(fmt.Errorf("router: merging shard aggregate tokens: %w", err))
	}
	tok := agg.TokenFor(q, merged)
	var buf [agg.TokenSize]byte
	rb.Append(tok.AppendTo(buf[:0]))
	return wire.Frame{Type: wire.MsgAggToken, Payload: rb.Bytes()}
}

// handleTOMAgg routes a TOM aggregate query, mirroring handleTOM: a
// single-shard deployment relays the provider's aggregate VO verbatim; a
// sharded one stitches the per-shard aggregate VOs into a
// MsgTOMAggShardedResult the client verifies against the owner-signed
// shard bindings.
func (r *Router) handleTOMAgg(t *topology, req wire.Frame, rb *wire.RespBuf) wire.Frame {
	if len(t.toms) == 0 {
		return wire.ErrFrame(fmt.Errorf("%w: router has no TOM upstreams", wire.ErrProtocol))
	}
	q, err := wire.DecodeRange(req.Payload)
	if err != nil {
		return wire.ErrFrame(err)
	}
	ctx, cancel := r.reqCtx()
	defer cancel()
	if t.plan.Shards() == 1 {
		v, err := t.toms[0].do(ctx, func(ctx context.Context, c *wire.TOMClient, _ *endpoint[*wire.TOMClient]) (any, error) {
			return c.AggregateRawCtx(ctx, q)
		})
		if err != nil {
			return wire.ErrFrame(fmt.Errorf("router: TOM aggregate: %w", err))
		}
		rb.Append(v.([]byte))
		return wire.Frame{Type: wire.MsgTOMAggResult, Payload: rb.Bytes()}
	}
	subs := t.plan.Scatter(q)
	parts := make([]wire.TOMShardPart, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := t.toms[subs[i].Shard].do(ctx, func(ctx context.Context, c *wire.TOMClient, _ *endpoint[*wire.TOMClient]) (any, error) {
				return c.AggregateRawCtx(ctx, subs[i].Sub)
			})
			if err != nil {
				errs[i] = fmt.Errorf("router: shard %d TOM aggregate: %w", subs[i].Shard, err)
				return
			}
			parts[i] = wire.TOMShardPart{Shard: subs[i].Shard, Sub: subs[i].Sub, Blob: v.([]byte)}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return wire.ErrFrame(err)
		}
	}
	plan := t.plan
	if r.tamper != nil && r.tamper.reshapeTOM != nil {
		plan, parts = r.tamper.reshapeTOM(plan, parts)
	}
	wire.AppendTOMShardedHeader(rb, plan, len(parts))
	for _, p := range parts {
		wire.AppendTOMShardedPart(rb, p.Shard, p.Sub, p.Blob)
	}
	return wire.Frame{Type: wire.MsgTOMAggShardedResult, Payload: rb.Bytes()}
}

// handleVerifiedQuery routes a stamped verified query across the
// verified-capable endpoint sets (each shard's replicas plus a combined
// primary). Each shard returns one atomic (epoch, gen, VT, records)
// quadruple; the merge stamps the spanning answer with the MINIMUM
// epoch and MINIMUM generation (the freshest bounds that hold for every
// part), XORs the per-shard tokens and splices the record payloads in
// shard order — so the client's single-system verification (XOR match,
// key order, containment) and its lexicographic (epoch, gen) freshness
// floor both apply unchanged. During a reshard transition a surviving
// primary may already attest the successor epoch while the rest of the
// answer is served under the old one; stamping min keeps the merged
// claim honest (the answer is only as new as its oldest part). The
// scatter goes through the tamper hooks: an adversarial router that
// scatters under a forged plan produces seam sub-queries that escape
// the shards' spans, and the span-clamped servers refuse them.
func (r *Router) handleVerifiedQuery(t *topology, req wire.Frame, rb *wire.RespBuf) wire.Frame {
	q, err := wire.DecodeRange(req.Payload)
	if err != nil {
		return wire.ErrFrame(err)
	}
	subs := r.scatterSubs(t, q)
	raws := make([][]byte, len(subs))
	errs := make([]error, len(subs))
	ctx, cancel := r.reqCtx()
	defer cancel()
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			set := t.vqs[subs[i].Shard]
			v, err := set.do(ctx, func(ctx context.Context, c *wire.VerifiedClient, ep *endpoint[*wire.VerifiedClient]) (any, error) {
				raw, err := c.QueryRawVerifiedCtx(ctx, subs[i].Sub)
				if err != nil {
					return nil, err
				}
				_, gen, _, _, err := wire.DecodeVerifiedResult(raw)
				if err != nil {
					return nil, err
				}
				if set.noteGen(ep, gen) {
					return nil, fmt.Errorf("%w: shard %d endpoint stamped %d, newest observed %d",
						errStale, subs[i].Shard, gen, set.maxGen.Load())
				}
				return raw, nil
			})
			if err != nil {
				errs[i] = fmt.Errorf("router: shard %d verified: %w", subs[i].Shard, err)
				return
			}
			raws[i] = v.([]byte)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return wire.ErrFrame(err)
		}
	}
	if r.tamper != nil && r.tamper.replayVerified != nil {
		raws = r.tamper.replayVerified(raws)
	}
	var acc digest.Accumulator
	var minEpoch, minGen uint64
	encs := make([][]byte, len(raws))
	total := 0
	for i, raw := range raws {
		epoch, gen, vt, recsRaw, err := wire.DecodeVerifiedResult(raw)
		if err != nil {
			return wire.ErrFrame(fmt.Errorf("router: shard %d verified result: %w", subs[i].Shard, err))
		}
		enc, rest, _, err := wire.RecordsView(recsRaw)
		if err != nil {
			return wire.ErrFrame(fmt.Errorf("router: shard %d verified result: %w", subs[i].Shard, err))
		}
		if len(rest) != 0 {
			return wire.ErrFrame(fmt.Errorf("%w: shard %d verified result carries %d trailing bytes",
				wire.ErrProtocol, subs[i].Shard, len(rest)))
		}
		acc.Add(vt)
		if i == 0 || gen < minGen {
			minGen = gen
		}
		if i == 0 || epoch < minEpoch {
			minEpoch = epoch
		}
		encs[i] = enc
		total += len(enc) / record.Size
	}
	// Clamp the stamped epoch to the topology this answer was assembled
	// under. Mid-reshard a surviving primary already attests epoch v+1
	// while the router still scatters by the epoch-v plan; stamping v+1
	// here would make a later (equally honest) epoch-v answer look like a
	// regression to the client's floor. The clamp is honest — geometry,
	// clamping and merge all followed the epoch-v plan — and clamping is
	// all a rogue router could do anyway: under-stamping only trips the
	// client's per-epoch generation floor once the real cutover lands.
	if e := t.plan.Epoch(); minEpoch > e {
		minEpoch = e
	}
	rb.AppendUint64(minEpoch)
	rb.AppendUint64(minGen)
	vt := acc.Sum()
	rb.Append(vt[:])
	rb.AppendUint32(uint32(total))
	for _, enc := range encs {
		rb.Append(enc)
	}
	return wire.Frame{Type: wire.MsgVerifiedResult, Payload: rb.Bytes()}
}

// handleGenStamp reports the freshest generation at which a spanning
// verified answer could currently be served: the minimum over shards of
// the newest stamp observed from any of the shard's verified-capable
// endpoints. Clients use it to seed a freshness floor (QueryAtLeast);
// they never need to trust it — a floor built on a lying stamp only ever
// REJECTS more.
func (r *Router) handleGenStamp(t *topology, rb *wire.RespBuf) wire.Frame {
	var min uint64
	for i, s := range t.vqs {
		g := s.maxGen.Load()
		if i == 0 || g < min {
			min = g
		}
	}
	rb.AppendUint64(min)
	return wire.Frame{Type: wire.MsgGenStamp, Payload: rb.Bytes()}
}
