package router

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/replica"
	"sae/internal/shard"
	"sae/internal/wire"
	"sae/internal/workload"
)

// TestRouterUpstreamDropMidGather: a shard SP that dies under the router
// fails the client's request loudly. The client must see an error (or a
// verification failure) — never a silently truncated verified result.
func TestRouterUpstreamDropMidGather(t *testing.T) {
	d := newDeployment(t, 8_000, 2, false, Config{UpstreamTimeout: 5 * time.Second})
	client := d.plainClient(t)
	q := spanningQuery(t, d)
	if _, err := client.Query(q); err != nil {
		t.Fatalf("honest routed query: %v", err)
	}
	// Kill shard 1's SP out from under the router's pooled connections:
	// closing the server drops every live upstream conn mid-stream.
	d.spSrvs[1].Close()
	recs, err := client.Query(q)
	if err == nil {
		t.Fatalf("query spanning a dead shard returned %d records with no error", len(recs))
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Logf("dead-shard error does not name the shard: %v", err)
	}
	// Queries entirely inside the surviving shard keep working: the
	// router degrades per-request, not wholesale.
	q0 := record.Range{Lo: d.sys.Plan.Span(0).Lo, Hi: d.sys.Plan.Span(0).Lo + 200_000}
	if _, err := client.Query(q0); err != nil {
		t.Fatalf("query on the surviving shard failed: %v", err)
	}
}

// TestRouterSlowShardTimeout: a shard that stalls past UpstreamTimeout
// fails the request within the bound instead of hanging the client, and
// the router's pipelined upstream connection survives for later
// requests.
func TestRouterSlowShardTimeout(t *testing.T) {
	d := newDeployment(t, 6_000, 2, false, Config{})
	// A fake slow SP for shard 1: attests correctly so the router dials
	// it, then stalls every query.
	release := make(chan struct{})
	plan := d.sys.Plan
	slow, err := wire.Serve("127.0.0.1:0", func(req wire.Frame, rb *wire.RespBuf) wire.Frame {
		switch req.Type {
		case wire.MsgShardMapReq:
			return wire.Frame{Type: wire.MsgShardMap, Payload: wire.EncodeShardInfo(wire.ShardInfo{Index: 1, Plan: plan})}
		case wire.MsgQuery:
			<-release // stall until the test ends
			rb.AppendUint32(0)
			return wire.Frame{Type: wire.MsgResult, Payload: rb.Bytes()}
		default:
			return wire.ErrFrame(wire.ErrProtocol)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	defer close(release)

	r, err := New(Config{
		SPs:             []string{d.spAddrs[0], slow.Addr()},
		TEs:             d.teAddrs,
		UpstreamTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("router over slow shard: %v", err)
	}
	defer r.Close()
	if err := r.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	vc, err := wire.DialVerifying(r.Addr(), r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	q := spanningQuery(t, d)
	start := time.Now()
	_, qErr := vc.Query(q)
	elapsed := time.Since(start)
	if qErr == nil {
		t.Fatal("query against a stalled shard succeeded")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("slow-shard failure took %v; the timeout bound did not apply", elapsed)
	}
	// The stalled request was abandoned, not the connection: queries that
	// avoid the slow shard still flow.
	q0 := record.Range{Lo: d.sys.Plan.Span(0).Lo, Hi: d.sys.Plan.Span(0).Lo + 100_000}
	if _, err := vc.Query(q0); err != nil {
		t.Fatalf("query avoiding the slow shard failed: %v", err)
	}
}

// TestRouterHedgedCancellation: with HedgeAfter set, a stalled endpoint
// is raced against a healthy sibling, the fast leg's answer wins and
// verifies, and the loser's in-flight request is cancelled — its
// connection survives (no eviction for a cancellation) and no response
// is ever double-delivered. Runs under -race in CI: the two legs share
// the endpoint set's counters and generation tracking.
func TestRouterHedgedCancellation(t *testing.T) {
	ds, err := workload.Generate(workload.UNF, 3_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.OpenDurableSystem(t.TempDir(), ds.Records, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	hub := replica.Attach(sys, 0)
	plan := shard.PlanFor(ds.Records, 1)
	psrv, err := wire.ServePrimary("127.0.0.1:0", sys, hub, nil,
		wire.WithShardInfo(wire.ShardInfo{Index: 0, Plan: plan}))
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()

	// A fake "replica" that attests and stamps correctly but stalls every
	// verified query until the test ends — the pathological slow sibling.
	release := make(chan struct{})
	fake, err := wire.Serve("127.0.0.1:0", func(req wire.Frame, rb *wire.RespBuf) wire.Frame {
		switch req.Type {
		case wire.MsgShardMapReq:
			return wire.Frame{Type: wire.MsgShardMap, Payload: wire.EncodeShardInfo(wire.ShardInfo{Index: 0, Plan: plan})}
		case wire.MsgGenStampReq:
			rb.AppendUint64(sys.Seq())
			return wire.Frame{Type: wire.MsgGenStamp, Payload: rb.Bytes()}
		case wire.MsgVerifiedQuery:
			<-release
			return wire.ErrFrame(wire.ErrProtocol)
		default:
			return wire.ErrFrame(wire.ErrProtocol)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()
	defer close(release) // runs before fake.Close: stalled handlers drain

	r, err := New(Config{
		SPs:           []string{psrv.Addr()},
		TEs:           []string{psrv.Addr()},
		Replicas:      [][]string{{fake.Addr()}},
		HedgeAfter:    15 * time.Millisecond,
		MaxLag:        1 << 30, // the fake never answers, so its gen stays 0
		ProbeInterval: -1,      // deterministic: no background stamping
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	vc, err := wire.DialVerified(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	// Round-robin sends roughly half the queries to the stalled endpoint
	// first; every one of them must still answer — via the hedge — and
	// verify.
	q := record.Range{Lo: 0, Hi: record.KeyDomain}
	for i := 0; i < 8; i++ {
		recs, _, err := vc.Query(q)
		if err != nil {
			t.Fatalf("hedged query %d: %v", i, err)
		}
		if len(recs) == 0 {
			t.Fatalf("hedged query %d returned no records", i)
		}
	}
	ctrs := r.Counters()
	if ctrs.Hedges == 0 {
		t.Fatalf("no hedge was ever launched: %+v", ctrs)
	}
	if ctrs.HedgesWon == 0 {
		t.Fatalf("hedges launched but none won (the stalled endpoint cannot win): %+v", ctrs)
	}
	// Cancelled legs must not have evicted the stalled endpoint's healthy
	// connection: a cancellation implicates the request, not the conn.
	if ctrs.Evictions != 0 {
		t.Fatalf("hedge cancellations evicted connections: %+v", ctrs)
	}
}

// TestRoutedConcurrentClients: many goroutines hammer one router over
// shared pooled upstream connections — the race detector's view of the
// whole request path (run under -race in CI).
func TestRoutedConcurrentClients(t *testing.T) {
	d := newDeployment(t, 10_000, 3, false, Config{})
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vc, err := wire.DialVerifying(d.router.Addr(), d.router.Addr())
			if err != nil {
				errs[w] = err
				return
			}
			defer vc.Close()
			qs := workload.Queries(6, workload.DefaultExtent, int64(300+w))
			for _, q := range qs {
				if _, err := vc.Query(q); err != nil {
					errs[w] = err
					return
				}
			}
			if _, err := vc.QueryBatch(qs); err != nil {
				errs[w] = err
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestRouterBadUpstreamFraming: an upstream SP that returns malformed
// record payloads must fail the request at the router, not smuggle
// garbage into a merged frame.
func TestRouterBadUpstreamFraming(t *testing.T) {
	d := newDeployment(t, 4_000, 2, false, Config{})
	plan := d.sys.Plan
	bad, err := wire.Serve("127.0.0.1:0", func(req wire.Frame, rb *wire.RespBuf) wire.Frame {
		switch req.Type {
		case wire.MsgShardMapReq:
			return wire.Frame{Type: wire.MsgShardMap, Payload: wire.EncodeShardInfo(wire.ShardInfo{Index: 1, Plan: plan})}
		case wire.MsgQuery:
			// Claims 100 records, ships none.
			rb.AppendUint32(100)
			return wire.Frame{Type: wire.MsgResult, Payload: rb.Bytes()}
		default:
			return wire.ErrFrame(wire.ErrProtocol)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	r, err := New(Config{SPs: []string{d.spAddrs[0], bad.Addr()}, TEs: d.teAddrs})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	vc, err := wire.DialVerifying(r.Addr(), r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	if _, err := vc.Query(spanningQuery(t, d)); err == nil {
		t.Fatal("malformed upstream framing passed through the router")
	}
}
