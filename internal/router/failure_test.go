package router

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sae/internal/record"
	"sae/internal/wire"
	"sae/internal/workload"
)

// TestRouterUpstreamDropMidGather: a shard SP that dies under the router
// fails the client's request loudly. The client must see an error (or a
// verification failure) — never a silently truncated verified result.
func TestRouterUpstreamDropMidGather(t *testing.T) {
	d := newDeployment(t, 8_000, 2, false, Config{UpstreamTimeout: 5 * time.Second})
	client := d.plainClient(t)
	q := spanningQuery(t, d)
	if _, err := client.Query(q); err != nil {
		t.Fatalf("honest routed query: %v", err)
	}
	// Kill shard 1's SP out from under the router's pooled connections:
	// closing the server drops every live upstream conn mid-stream.
	d.spSrvs[1].Close()
	recs, err := client.Query(q)
	if err == nil {
		t.Fatalf("query spanning a dead shard returned %d records with no error", len(recs))
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Logf("dead-shard error does not name the shard: %v", err)
	}
	// Queries entirely inside the surviving shard keep working: the
	// router degrades per-request, not wholesale.
	q0 := record.Range{Lo: d.sys.Plan.Span(0).Lo, Hi: d.sys.Plan.Span(0).Lo + 200_000}
	if _, err := client.Query(q0); err != nil {
		t.Fatalf("query on the surviving shard failed: %v", err)
	}
}

// TestRouterSlowShardTimeout: a shard that stalls past UpstreamTimeout
// fails the request within the bound instead of hanging the client, and
// the router's pipelined upstream connection survives for later
// requests.
func TestRouterSlowShardTimeout(t *testing.T) {
	d := newDeployment(t, 6_000, 2, false, Config{})
	// A fake slow SP for shard 1: attests correctly so the router dials
	// it, then stalls every query.
	release := make(chan struct{})
	plan := d.sys.Plan
	slow, err := wire.Serve("127.0.0.1:0", func(req wire.Frame, rb *wire.RespBuf) wire.Frame {
		switch req.Type {
		case wire.MsgShardMapReq:
			return wire.Frame{Type: wire.MsgShardMap, Payload: wire.EncodeShardInfo(wire.ShardInfo{Index: 1, Plan: plan})}
		case wire.MsgQuery:
			<-release // stall until the test ends
			rb.AppendUint32(0)
			return wire.Frame{Type: wire.MsgResult, Payload: rb.Bytes()}
		default:
			return wire.ErrFrame(wire.ErrProtocol)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	defer close(release)

	r, err := New(Config{
		SPs:             []string{d.spAddrs[0], slow.Addr()},
		TEs:             d.teAddrs,
		UpstreamTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("router over slow shard: %v", err)
	}
	defer r.Close()
	if err := r.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	vc, err := wire.DialVerifying(r.Addr(), r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	q := spanningQuery(t, d)
	start := time.Now()
	_, qErr := vc.Query(q)
	elapsed := time.Since(start)
	if qErr == nil {
		t.Fatal("query against a stalled shard succeeded")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("slow-shard failure took %v; the timeout bound did not apply", elapsed)
	}
	// The stalled request was abandoned, not the connection: queries that
	// avoid the slow shard still flow.
	q0 := record.Range{Lo: d.sys.Plan.Span(0).Lo, Hi: d.sys.Plan.Span(0).Lo + 100_000}
	if _, err := vc.Query(q0); err != nil {
		t.Fatalf("query avoiding the slow shard failed: %v", err)
	}
}

// TestRoutedConcurrentClients: many goroutines hammer one router over
// shared pooled upstream connections — the race detector's view of the
// whole request path (run under -race in CI).
func TestRoutedConcurrentClients(t *testing.T) {
	d := newDeployment(t, 10_000, 3, false, Config{})
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vc, err := wire.DialVerifying(d.router.Addr(), d.router.Addr())
			if err != nil {
				errs[w] = err
				return
			}
			defer vc.Close()
			qs := workload.Queries(6, workload.DefaultExtent, int64(300+w))
			for _, q := range qs {
				if _, err := vc.Query(q); err != nil {
					errs[w] = err
					return
				}
			}
			if _, err := vc.QueryBatch(qs); err != nil {
				errs[w] = err
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestRouterBadUpstreamFraming: an upstream SP that returns malformed
// record payloads must fail the request at the router, not smuggle
// garbage into a merged frame.
func TestRouterBadUpstreamFraming(t *testing.T) {
	d := newDeployment(t, 4_000, 2, false, Config{})
	plan := d.sys.Plan
	bad, err := wire.Serve("127.0.0.1:0", func(req wire.Frame, rb *wire.RespBuf) wire.Frame {
		switch req.Type {
		case wire.MsgShardMapReq:
			return wire.Frame{Type: wire.MsgShardMap, Payload: wire.EncodeShardInfo(wire.ShardInfo{Index: 1, Plan: plan})}
		case wire.MsgQuery:
			// Claims 100 records, ships none.
			rb.AppendUint32(100)
			return wire.Frame{Type: wire.MsgResult, Payload: rb.Bytes()}
		default:
			return wire.ErrFrame(wire.ErrProtocol)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	r, err := New(Config{SPs: []string{d.spAddrs[0], bad.Addr()}, TEs: d.teAddrs})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	vc, err := wire.DialVerifying(r.Addr(), r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	if _, err := vc.Query(spanningQuery(t, d)); err == nil {
		t.Fatal("malformed upstream framing passed through the router")
	}
}
