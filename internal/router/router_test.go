package router

import (
	"testing"

	"sae/internal/core"
	"sae/internal/digest"
	"sae/internal/pagestore"
	"sae/internal/record"
	"sae/internal/tom"
	"sae/internal/wire"
	"sae/internal/workload"
)

// deployment is a full in-process sharded deployment served over
// loopback TCP with a router in front: the unit every test drives.
type deployment struct {
	sys *core.ShardedSystem
	// tomSys is set for multi-shard TOM tiers; a 1-shard tier serves a
	// plain (unbound) provider, as a real stand-alone deployment would.
	tomSys   *tom.ShardedSystem
	tomOwner *tom.Owner
	spAddrs  []string
	teAddrs  []string
	spSrvs   []*wire.SPServer
	teSrvs   []*wire.TEServer
	router   *Router
}

// newDeployment builds an n-record, `shards`-shard SAE deployment (plus
// a TOM tier when withTOM is set), serves every party on loopback and
// starts a router over it.
func newDeployment(t *testing.T, n, shards int, withTOM bool, cfg Config) *deployment {
	t.Helper()
	ds, err := workload.Generate(workload.UNF, n, 77)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewShardedSystem(ds.Records, shards)
	if err != nil {
		t.Fatal(err)
	}
	d := &deployment{sys: sys}
	for i := 0; i < sys.Plan.Shards(); i++ {
		si := wire.ShardInfo{Index: i, Plan: sys.Plan}
		spSrv, err := wire.ServeSP("127.0.0.1:0", sys.SPs[i], nil, wire.WithShardInfo(si))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { spSrv.Close() })
		teSrv, err := wire.ServeTE("127.0.0.1:0", sys.TEs[i], nil, wire.WithShardInfo(si))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { teSrv.Close() })
		d.spSrvs = append(d.spSrvs, spSrv)
		d.teSrvs = append(d.teSrvs, teSrv)
		d.spAddrs = append(d.spAddrs, spSrv.Addr())
		d.teAddrs = append(d.teAddrs, teSrv.Addr())
	}
	cfg.SPs, cfg.TEs = d.spAddrs, d.teAddrs
	if withTOM && shards == 1 {
		owner, err := tom.NewOwner()
		if err != nil {
			t.Fatal(err)
		}
		p := tom.NewProvider(pagestore.NewMem())
		if err := p.Load(ds.Records, owner); err != nil {
			t.Fatal(err)
		}
		d.tomOwner = owner
		srv, err := wire.ServeTOM("127.0.0.1:0", p, owner, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		cfg.TOMs = append(cfg.TOMs, srv.Addr())
	} else if withTOM {
		tomSys, err := tom.NewShardedSystem(ds.Records, shards)
		if err != nil {
			t.Fatal(err)
		}
		if !tomSys.Plan.Equal(sys.Plan) {
			t.Fatal("TOM plan differs from SAE plan over the same dataset")
		}
		d.tomSys, d.tomOwner = tomSys, tomSys.Owner
		for i := 0; i < tomSys.Plan.Shards(); i++ {
			srv, err := wire.ServeTOM("127.0.0.1:0", tomSys.Providers[i], tomSys.Owner, nil,
				wire.WithShardInfo(wire.ShardInfo{Index: i, Plan: tomSys.Plan}))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			cfg.TOMs = append(cfg.TOMs, srv.Addr())
		}
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	if err := r.Serve("127.0.0.1:0"); err != nil {
		t.Fatalf("router.Serve: %v", err)
	}
	d.router = r
	return d
}

// plainClient dials the router's one address as both SAE parties — the
// unmodified single-system client the tier exists for.
func (d *deployment) plainClient(t *testing.T) *wire.VerifyingClient {
	t.Helper()
	vc, err := wire.DialVerifying(d.router.Addr(), d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vc.Close() })
	return vc
}

func (d *deployment) directClient(t *testing.T) *wire.ShardedVerifyingClient {
	t.Helper()
	c, err := wire.DialShardedVerifying(d.spAddrs, d.teAddrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// testQueries returns a workload that exercises every merge shape:
// narrow single-shard ranges, multi-shard spans, the full domain, a
// boundary-exact shard span and an empty range.
func testQueries(d *deployment, n int, seed int64) []record.Range {
	qs := workload.Queries(n, workload.DefaultExtent, seed)
	qs = append(qs,
		record.Range{Lo: 0, Hi: record.KeyDomain}, // every shard
		d.sys.Plan.Span(1),                        // boundary-exact
		record.Range{Lo: 9, Hi: 3},                // empty
	)
	return qs
}

// TestRoutedQueryParity: a plain VerifyingClient through the router
// returns exactly what a direct client-side scatter returns — records
// bit-identical, and the router's aggregated token bit-identical to the
// XOR of the shard TEs' tokens — against the in-process sharded system
// as the ground-truth oracle (whose outcome also carries the
// sum-of-shards cost roll-up the deployment reports).
func TestRoutedQueryParity(t *testing.T) {
	d := newDeployment(t, 12_000, 3, false, Config{})
	routed := d.plainClient(t)
	direct := d.directClient(t)
	routerTE, err := wire.DialTE(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer routerTE.Close()

	for _, q := range testQueries(d, 6, 78) {
		oracle, err := d.sys.Query(q)
		if err != nil || oracle.VerifyErr != nil {
			t.Fatalf("oracle %v: %v / %v", q, err, oracle.VerifyErr)
		}
		// The oracle's roll-up is the sum over the overlapping shards —
		// the aggregate work the routed deployment spent on this query.
		var shardAccesses int64
		for _, pc := range oracle.PerShard {
			shardAccesses += pc.SPCost.Total().Accesses
		}
		if got := oracle.QueryCost().Total().Accesses; got != shardAccesses {
			t.Fatalf("%v: cost roll-up %d != sum of shards %d", q, got, shardAccesses)
		}

		gotRouted, err := routed.Query(q)
		if err != nil {
			t.Fatalf("routed %v: %v", q, err)
		}
		gotDirect, err := direct.Query(q)
		if err != nil {
			t.Fatalf("direct %v: %v", q, err)
		}
		if len(gotRouted) != len(gotDirect) || len(gotRouted) != len(oracle.Result) {
			t.Fatalf("%v: routed %d, direct %d, oracle %d records",
				q, len(gotRouted), len(gotDirect), len(oracle.Result))
		}
		for i := range gotRouted {
			if gotRouted[i] != gotDirect[i] || gotRouted[i] != oracle.Result[i] {
				t.Fatalf("%v: record %d differs between paths", q, i)
			}
		}

		// Token parity: the router's TE endpoint must hand out exactly
		// the XOR of the shard TEs' tokens — the oracle's combined VT.
		vt, err := routerTE.GenerateVT(q)
		if err != nil {
			t.Fatalf("router VT %v: %v", q, err)
		}
		if vt != oracle.VT {
			t.Fatalf("%v: routed token differs from oracle's combined token", q)
		}
	}
}

// TestRoutedBatchParity: MsgBatchQuery/MsgBatchVT through the router
// match the direct sharded batch path for every query in the batch.
func TestRoutedBatchParity(t *testing.T) {
	d := newDeployment(t, 12_000, 3, false, Config{})
	routed := d.plainClient(t)
	direct := d.directClient(t)
	qs := testQueries(d, 12, 79)
	gotRouted, err := routed.QueryBatch(qs)
	if err != nil {
		t.Fatalf("routed batch: %v", err)
	}
	gotDirect, err := direct.QueryBatch(qs)
	if err != nil {
		t.Fatalf("direct batch: %v", err)
	}
	if len(gotRouted) != len(qs) || len(gotDirect) != len(qs) {
		t.Fatalf("%d routed / %d direct results for %d queries", len(gotRouted), len(gotDirect), len(qs))
	}
	for qi := range qs {
		if len(gotRouted[qi]) != len(gotDirect[qi]) {
			t.Fatalf("query %d: routed %d records, direct %d", qi, len(gotRouted[qi]), len(gotDirect[qi]))
		}
		for i := range gotRouted[qi] {
			if gotRouted[qi][i] != gotDirect[qi][i] {
				t.Fatalf("query %d: record %d differs", qi, i)
			}
		}
	}
}

// TestRoutedSingleShard: a router over a 1-shard deployment is a pure
// relay — the plain client behaves exactly as against the shard itself.
func TestRoutedSingleShard(t *testing.T) {
	d := newDeployment(t, 4_000, 1, false, Config{})
	routed := d.plainClient(t)
	directVC, err := wire.DialVerifying(d.spAddrs[0], d.teAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer directVC.Close()
	for _, q := range workload.Queries(4, workload.DefaultExtent, 80) {
		a, err := routed.Query(q)
		if err != nil {
			t.Fatalf("routed: %v", err)
		}
		b, err := directVC.Query(q)
		if err != nil {
			t.Fatalf("direct: %v", err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v: %d routed vs %d direct records", q, len(a), len(b))
		}
	}
}

// TestRoutedTOMParity: TOM queries through the router verify and match
// the in-process sharded TOM oracle; a single-shard TOM relay matches
// the plain provider protocol bit-for-bit.
func TestRoutedTOMParity(t *testing.T) {
	d := newDeployment(t, 9_000, 3, true, Config{})
	tc, err := wire.DialTOM(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	client := &wire.VerifyingTOMClient{Provider: tc, Verifier: d.tomSys.Owner.Verifier()}
	for _, q := range testQueries(d, 5, 81) {
		oracle, err := d.tomSys.Query(q)
		if err != nil || oracle.VerifyErr != nil {
			t.Fatalf("oracle %v: %v / %v", q, err, oracle.VerifyErr)
		}
		got, err := client.Query(q)
		if err != nil {
			t.Fatalf("routed TOM %v: %v", q, err)
		}
		if len(got) != len(oracle.Result) {
			t.Fatalf("%v: %d routed records, oracle %d", q, len(got), len(oracle.Result))
		}
		for i := range got {
			if got[i] != oracle.Result[i] {
				t.Fatalf("%v: record %d differs", q, i)
			}
		}
	}
	// A tampering provider must be caught through the router too.
	d.tomSys.Providers[1].SetTamper(func(rs []record.Record) []record.Record {
		if len(rs) == 0 {
			return rs
		}
		return rs[1:]
	})
	defer d.tomSys.Providers[1].SetTamper(nil)
	q := record.Range{Lo: d.tomSys.Plan.Span(1).Lo, Hi: d.tomSys.Plan.Span(1).Lo + 300_000}
	if _, err := client.Query(q); err == nil {
		t.Fatal("tampered TOM provider passed routed verification")
	}
}

// TestRoutedTOMSingleShardRelay: with one shard the router relays the
// provider's MsgTOMResult verbatim and the plain unbound verification
// applies.
func TestRoutedTOMSingleShardRelay(t *testing.T) {
	d := newDeployment(t, 3_000, 1, true, Config{})
	tc, err := wire.DialTOM(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	client := &wire.VerifyingTOMClient{Provider: tc, Verifier: d.tomOwner.Verifier()}
	for _, q := range workload.Queries(4, workload.DefaultExtent, 82) {
		if _, err := client.Query(q); err != nil {
			t.Fatalf("routed single-shard TOM %v: %v", q, err)
		}
	}
}

// TestRouterShardMapRelay: the router relays the TE-attested plan for
// observability.
func TestRouterShardMapRelay(t *testing.T) {
	d := newDeployment(t, 6_000, 3, false, Config{})
	c, err := wire.DialSP(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	si, err := c.ShardMap()
	if err != nil {
		t.Fatal(err)
	}
	if !si.Plan.Equal(d.sys.Plan) {
		t.Fatalf("router relays plan %v, upstream TEs attest %v", si.Plan, d.sys.Plan)
	}
}

// TestRouterRejectsUpdates: the router is a read tier; owner updates
// must be refused, not half-applied to one side of a shard.
func TestRouterRejectsUpdates(t *testing.T) {
	d := newDeployment(t, 2_000, 2, false, Config{})
	c, err := wire.DialSP(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Insert(record.Synthesize(999_999, 1234)); err == nil {
		t.Fatal("router accepted an owner insert")
	}
}

// TestRouterRejectsMiswiredUpstreams: swapped upstream shard order must
// fail the attestation cross-check at startup.
func TestRouterRejectsMiswiredUpstreams(t *testing.T) {
	d := newDeployment(t, 4_000, 3, false, Config{})
	swappedSP := []string{d.spAddrs[1], d.spAddrs[0], d.spAddrs[2]}
	swappedTE := []string{d.teAddrs[1], d.teAddrs[0], d.teAddrs[2]}
	if r, err := New(Config{SPs: swappedSP, TEs: swappedTE}); err == nil {
		r.Close()
		t.Fatal("router accepted swapped upstream shard order")
	}
	if r, err := New(Config{SPs: d.spAddrs[:2], TEs: d.teAddrs[:2]}); err == nil {
		r.Close()
		t.Fatal("router accepted a partial deployment")
	}
}

// TestRoutedVTMatchesDigestFold: belt-and-braces token parity on the
// whole domain — the routed token equals the XOR fold of every record
// digest, i.e. the token a single TE over the full dataset would issue.
func TestRoutedVTMatchesDigestFold(t *testing.T) {
	d := newDeployment(t, 5_000, 4, false, Config{})
	routerTE, err := wire.DialTE(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer routerTE.Close()
	q := record.Range{Lo: 0, Hi: record.KeyDomain}
	vt, err := routerTE.GenerateVT(q)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := d.sys.Query(q)
	if err != nil || oracle.VerifyErr != nil {
		t.Fatalf("oracle: %v / %v", err, oracle.VerifyErr)
	}
	var acc digest.Accumulator
	for i := range oracle.Result {
		acc.Add(digest.OfRecord(&oracle.Result[i]))
	}
	if vt != acc.Sum() {
		t.Fatal("routed whole-domain token differs from the dataset's digest fold")
	}
}
