package router

import (
	"errors"
	"strings"
	"testing"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/replica"
	"sae/internal/shard"
	"sae/internal/wire"
)

// epochSuccessor serves the same records as sys under the successor
// plan (same geometry, epoch+1) from a fresh durable system — the
// stand-in for a reshard target that has fully caught up.
func epochSuccessor(t *testing.T, sys *core.DurableSystem, idx int, next shard.Plan) *wire.PrimaryServer {
	t.Helper()
	clone, err := core.OpenDurableSystem(t.TempDir(), sys.Owner.Records(), 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clone.Close() })
	hub := replica.Attach(clone, 0)
	srv, err := wire.ServePrimary("127.0.0.1:0", clone, hub, nil,
		wire.WithShardInfo(wire.ShardInfo{Index: idx, Plan: next}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestRouterStalePlanReplayRejected: a cutover carrying a plan whose
// epoch does not strictly exceed the serving one is refused — before a
// real cutover (replaying the current plan), and after (replaying either
// the displaced plan or the cutover order itself). The epoch in the
// attested plan is what makes the swap replay-proof.
func TestRouterStalePlanReplayRejected(t *testing.T) {
	d := newReplicaDeployment(t, 2_000, 1, 0, Config{})
	next := d.plan.WithEpoch(1)
	succ := epochSuccessor(t, d.syss[0], 0, next)

	replaySame := wire.Cutover{Plan: d.plan, Shards: []wire.CutoverShard{
		{SPs: []string{d.primAddrs[0]}, TEs: []string{d.primAddrs[0]}}}}
	if err := d.router.Cutover(replaySame); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("same-epoch cutover accepted: %v", err)
	}

	// The genuine cutover, through the wire like the coordinator sends it.
	cut := wire.Cutover{Plan: next, Shards: []wire.CutoverShard{
		{SPs: []string{succ.Addr()}, TEs: []string{succ.Addr()}}}}
	cc, err := wire.DialSP(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.ReshardCutover(cut); err != nil {
		t.Fatalf("genuine cutover refused: %v", err)
	}
	if got := d.router.Counters().Cutovers; got != 1 {
		t.Fatalf("cutovers = %d, want 1", got)
	}
	if !d.router.Plan().Equal(next) {
		t.Fatalf("router serves %v, want %v", d.router.Plan(), next)
	}

	// Replaying the displaced plan or the applied order changes nothing.
	if err := cc.ReshardCutover(replaySame); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("displaced-plan replay accepted: %v", err)
	}
	if err := cc.ReshardCutover(cut); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("applied-order replay accepted: %v", err)
	}
	if got := d.router.Counters().Cutovers; got != 1 {
		t.Fatalf("cutovers = %d after replays, want 1", got)
	}
}

// TestRouterReshardSeamForgeryRejected: a rogue router scattering a
// verified query by a plan from NEITHER epoch (a seam belonging to no
// attested topology) cannot assemble an answer — the span-clamped
// primaries refuse sub-queries that escape their attested spans, so the
// client sees a loud error, never a silently re-seamed answer.
func TestRouterReshardSeamForgeryRejected(t *testing.T) {
	d := newReplicaDeployment(t, 4_000, 2, 0, Config{})
	vc, err := wire.DialVerified(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	q := record.Range{Lo: 0, Hi: record.KeyDomain}
	honest, _, err := vc.Query(q)
	if err != nil {
		t.Fatalf("honest spanning query: %v", err)
	}

	// A plausible-looking two-shard plan with the seam halfway into the
	// true shard 0 — derived by merge+resplit, so it is well-formed, just
	// never attested by anyone.
	merged, err := d.plan.MergeShards(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := merged.SplitShard(0, []record.Key{d.plan.Span(1).Lo / 2})
	if err != nil {
		t.Fatal(err)
	}
	d.router.setTamper(&tamper{scatterPlan: &forged})
	if _, _, err := vc.Query(q); err == nil {
		t.Fatal("seam from neither plan produced a verifiable answer")
	} else if !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("want a span-escape refusal, got: %v", err)
	}

	// Honesty restored, service restored.
	d.router.setTamper(nil)
	again, _, err := vc.Query(q)
	if err != nil {
		t.Fatalf("post-tamper honest query: %v", err)
	}
	if len(again) != len(honest) {
		t.Fatalf("honest answer changed size: %d vs %d", len(again), len(honest))
	}
}

// TestRouterCrossEpochReplayRejected: after a cutover, a rogue router
// replaying a cached pre-reshard answer produces a perfectly
// XOR-verifiable result — for the OLD epoch. The client's epoch floor
// (epoch regression is never acceptable, whatever the generation says)
// rejects it at the verify path.
func TestRouterCrossEpochReplayRejected(t *testing.T) {
	d := newReplicaDeployment(t, 2_000, 1, 0, Config{})
	vc, err := wire.DialVerified(d.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	q := record.Range{Lo: 0, Hi: record.KeyDomain}

	// Capture the epoch-0 per-shard payloads of an honest answer.
	var cached [][]byte
	d.router.setTamper(&tamper{replayVerified: func(raws [][]byte) [][]byte {
		if cached == nil {
			cached = make([][]byte, len(raws))
			for i := range raws {
				cached[i] = append([]byte(nil), raws[i]...)
			}
		}
		return raws
	}})
	if _, _, err := vc.Query(q); err != nil {
		t.Fatalf("pre-cutover query: %v", err)
	}
	if vc.Epoch() != 0 {
		t.Fatalf("pre-cutover epoch = %d, want 0", vc.Epoch())
	}
	d.router.setTamper(nil)

	// Cut over to the successor epoch; the client observes it.
	next := d.plan.WithEpoch(1)
	succ := epochSuccessor(t, d.syss[0], 0, next)
	if err := d.router.Cutover(wire.Cutover{Plan: next, Shards: []wire.CutoverShard{
		{SPs: []string{succ.Addr()}, TEs: []string{succ.Addr()}}}}); err != nil {
		t.Fatalf("cutover: %v", err)
	}
	if _, _, err := vc.Query(q); err != nil {
		t.Fatalf("post-cutover query: %v", err)
	}
	if vc.Epoch() != 1 {
		t.Fatalf("post-cutover epoch = %d, want 1", vc.Epoch())
	}

	// Replay the epoch-0 answer. Same records, same VT — the XOR check
	// passes; the epoch floor must not.
	d.router.setTamper(&tamper{replayVerified: func([][]byte) [][]byte { return cached }})
	if _, _, err := vc.Query(q); !errors.Is(err, wire.ErrStaleRead) {
		t.Fatalf("cross-epoch replay not rejected as stale: %v", err)
	}
}
