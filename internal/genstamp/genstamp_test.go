package genstamp

import "testing"

func TestTableProtocol(t *testing.T) {
	tb := New[uint32]()
	if g := tb.Current(7); g != 0 {
		t.Fatalf("fresh key at generation %d, want 0", g)
	}
	// A fill recorded before any bump is installable.
	g := tb.Current(7)
	if tb.Stale(7, g) {
		t.Fatal("un-bumped key reported stale")
	}
	// A write overtaking the fill makes it stale.
	tb.Bump(7)
	if !tb.Stale(7, g) {
		t.Fatal("bumped key not reported stale")
	}
	// A fill recorded after the bump is fine again.
	g = tb.Current(7)
	if tb.Stale(7, g) {
		t.Fatal("refreshed generation reported stale")
	}
	// Stamps are never deleted: distinct keys accumulate.
	tb.Bump(1)
	tb.Bump(2)
	if tb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tb.Len())
	}
}

func TestTableKeysIndependent(t *testing.T) {
	tb := New[int]()
	gA := tb.Current(1)
	tb.Bump(2)
	if tb.Stale(1, gA) {
		t.Fatal("bumping one key invalidated another")
	}
}
