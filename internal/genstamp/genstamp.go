// Package genstamp implements the generation-stamp protocol that keeps a
// cache safe for fills performed outside the cache's lock.
//
// The protocol: a reader that misses records the key's current generation,
// performs the slow read (and decode) without holding any lock, and installs
// the result only if the generation has not moved in the meantime. Every
// write, free, or allocation of the key bumps its generation, so a stale
// in-flight fill is dropped instead of resurrecting overwritten data.
//
// The invariant that makes this correct is that stamps are NEVER deleted:
// dropping a key's stamp while a miss is in flight would reset it to zero
// and let the stale fill through. A Table therefore grows by one small map
// entry per key ever stamped — for page caches this is ~8 bytes per page
// ever written, strictly below the page data itself.
//
// Table performs no locking; the owner calls it under whatever mutex guards
// the cache structure it protects. Both pagestore.Cache and the bufpool
// shards share this one implementation.
package genstamp

// Table tracks a generation counter per key. The zero value is not ready;
// use New.
type Table[K comparable] struct {
	gen map[K]uint64
}

// New returns an empty stamp table.
func New[K comparable]() Table[K] {
	return Table[K]{gen: make(map[K]uint64)}
}

// Current returns the key's generation. Keys never stamped are at
// generation zero.
func (t Table[K]) Current(k K) uint64 {
	return t.gen[k]
}

// Bump advances the key's generation, invalidating every fill in flight
// for it. Call on write, free, and (re)allocation.
func (t Table[K]) Bump(k K) {
	t.gen[k]++
}

// Stale reports whether a fill recorded at generation g must be dropped
// because the key moved on since.
func (t Table[K]) Stale(k K, g uint64) bool {
	return t.gen[k] != g
}

// Len returns the number of keys ever stamped (stamps are never deleted).
func (t Table[K]) Len() int { return len(t.gen) }
