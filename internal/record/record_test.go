package record

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMarshalSize(t *testing.T) {
	r := Synthesize(42, 1234)
	b := r.Marshal()
	if len(b) != Size {
		t.Fatalf("Marshal length = %d, want %d", len(b), Size)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := Synthesize(7, 9999999)
	got, err := Unmarshal(r.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.Equal(&r) {
		t.Fatalf("round trip mismatch: got %v want %v", got, r)
	}
}

func TestUnmarshalShortBuffer(t *testing.T) {
	if _, err := Unmarshal(make([]byte, Size-1)); err != ErrShortBuffer {
		t.Fatalf("Unmarshal(short) error = %v, want ErrShortBuffer", err)
	}
}

func TestUnmarshalIgnoresTrailingBytes(t *testing.T) {
	r := Synthesize(1, 2)
	buf := append(r.Marshal(), 0xAB, 0xCD)
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.Equal(&r) {
		t.Fatal("trailing bytes changed decoded record")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(id uint64, key uint32, seed int64) bool {
		r := Synthesize(ID(id), Key(key%KeyDomain))
		got, err := Unmarshal(r.Marshal())
		return err == nil && got.Equal(&r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(99, 5)
	b := Synthesize(99, 5)
	if !a.Equal(&b) {
		t.Fatal("Synthesize is not deterministic for identical inputs")
	}
	c := Synthesize(100, 5)
	if a.Payload == c.Payload {
		t.Fatal("Synthesize produced identical payloads for distinct ids")
	}
}

func TestAppendBinaryAppends(t *testing.T) {
	r := Synthesize(3, 4)
	prefix := []byte{1, 2, 3}
	out := r.AppendBinary(append([]byte(nil), prefix...))
	if !bytes.Equal(out[:3], prefix) {
		t.Fatal("AppendBinary clobbered existing prefix")
	}
	if len(out) != 3+Size {
		t.Fatalf("AppendBinary length = %d, want %d", len(out), 3+Size)
	}
}

func TestSortByKeyOrdering(t *testing.T) {
	a := Record{ID: 1, Key: 10}
	b := Record{ID: 2, Key: 10}
	c := Record{ID: 1, Key: 20}
	if SortByKey(a, b) >= 0 {
		t.Fatal("tie on key must be broken by id ascending")
	}
	if SortByKey(b, a) <= 0 {
		t.Fatal("tie-break ordering must be antisymmetric")
	}
	if SortByKey(a, c) >= 0 || SortByKey(c, a) <= 0 {
		t.Fatal("key ordering must dominate id ordering")
	}
	if SortByKey(a, a) != 0 {
		t.Fatal("identical records must compare equal")
	}
}
