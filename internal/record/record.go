// Package record defines the canonical record model used by every party in
// the outsourcing framework: the data owner ships records, the service
// provider stores and serves them, the trusted entity keeps a digest of each,
// and the client hashes them during verification.
//
// Following the paper's experimental setup, a record is exactly 500 bytes:
// an 8-byte identifier, a 4-byte search key drawn from [0, 10^7], and an
// opaque 488-byte payload standing in for the remaining attributes
// (manufacturer, model, ... in the paper's camera example).
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the total encoded size of a record in bytes, as fixed by the
// paper's evaluation section.
const Size = 500

// PayloadSize is the number of opaque attribute bytes in a record.
const PayloadSize = Size - 8 - 4 // 488

// KeyDomain is the exclusive upper bound of the search-key domain [0, 10^7].
const KeyDomain = 10_000_000

// ID uniquely identifies a record. Identifiers are assigned by the data
// owner and never reused.
type ID uint64

// Key is the value of the (single) range-query attribute.
type Key uint32

// Record is one row of the outsourced relation R.
type Record struct {
	ID      ID
	Key     Key
	Payload [PayloadSize]byte
}

// ErrShortBuffer is returned by Unmarshal when fewer than Size bytes are
// available.
var ErrShortBuffer = errors.New("record: buffer shorter than encoded record")

// AppendBinary appends the canonical 500-byte encoding of r to b and returns
// the extended slice. The encoding is what both the TE and the client hash;
// it must be deterministic and identical everywhere.
func (r *Record) AppendBinary(b []byte) []byte {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(r.ID))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(r.Key))
	b = append(b, hdr[:]...)
	return append(b, r.Payload[:]...)
}

// Marshal returns the canonical 500-byte encoding of r.
func (r *Record) Marshal() []byte {
	return r.AppendBinary(make([]byte, 0, Size))
}

// Unmarshal decodes a record from the first Size bytes of b.
func Unmarshal(b []byte) (Record, error) {
	var r Record
	if len(b) < Size {
		return r, ErrShortBuffer
	}
	r.ID = ID(binary.BigEndian.Uint64(b[0:8]))
	r.Key = Key(binary.BigEndian.Uint32(b[8:12]))
	copy(r.Payload[:], b[12:Size])
	return r, nil
}

// WireID reads the identifier out of a canonical record encoding without
// decoding the record — the zero-copy path peeks at borrowed wire bytes
// in place. b must hold at least Size bytes of one encoded record.
func WireID(b []byte) ID {
	return ID(binary.BigEndian.Uint64(b[0:8]))
}

// WireKey reads the search key out of a canonical record encoding without
// decoding the record; see WireID.
func WireKey(b []byte) Key {
	return Key(binary.BigEndian.Uint32(b[8:12]))
}

// Synthesize builds a record with a deterministic payload derived from its
// id. Workload generators use it so that datasets are reproducible from a
// seed without storing 500 bytes per record in the generator itself.
func Synthesize(id ID, key Key) Record {
	r := Record{ID: id, Key: key}
	// Cheap xorshift64* stream keyed by the id; this is filler data, not
	// cryptographic material (digests over it come from crypto/sha1).
	x := uint64(id)*0x9E3779B97F4A7C15 + 1
	for i := 0; i < PayloadSize; i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], x*0x2545F4914F6CDD1D)
		copy(r.Payload[i:], w[:])
	}
	return r
}

// String summarizes the record for logs and debugging tools.
func (r *Record) String() string {
	return fmt.Sprintf("record{id=%d key=%d}", r.ID, r.Key)
}

// Equal reports whether two records are byte-for-byte identical.
func (r *Record) Equal(o *Record) bool {
	return r.ID == o.ID && r.Key == o.Key && r.Payload == o.Payload
}

// SortByKey is a comparison helper: records are ordered by key, ties broken
// by id so that sorts are total and deterministic.
func SortByKey(a, b Record) int {
	switch {
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}
