package record

import "fmt"

// Range is a closed interval [Lo, Hi] on the search-key attribute — the 1D
// range queries both outsourcing models answer and authenticate.
type Range struct {
	Lo, Hi Key
}

// Contains reports whether k falls inside the range.
func (q Range) Contains(k Key) bool { return k >= q.Lo && k <= q.Hi }

// Empty reports whether the range covers no keys.
func (q Range) Empty() bool { return q.Lo > q.Hi }

// Width returns the number of key values covered (0 for empty ranges).
func (q Range) Width() int {
	if q.Empty() {
		return 0
	}
	return int(q.Hi-q.Lo) + 1
}

// String renders the range for logs.
func (q Range) String() string { return fmt.Sprintf("[%d, %d]", q.Lo, q.Hi) }
