package record

import "testing"

// FuzzUnmarshal checks that the record decoder never panics and that any
// successfully decoded record re-encodes to its own input prefix.
func FuzzUnmarshal(f *testing.F) {
	r := Synthesize(7, 1234)
	f.Add(r.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, Size-1))
	f.Add(make([]byte, Size+3))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Unmarshal(data)
		if err != nil {
			if len(data) >= Size {
				t.Fatalf("Unmarshal rejected a full-size buffer: %v", err)
			}
			return
		}
		out := rec.Marshal()
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("re-encode differs from input at byte %d", i)
			}
		}
	})
}
