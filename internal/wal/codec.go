package wal

import (
	"encoding/binary"
	"fmt"

	"sae/internal/record"
)

// Wire form for shipping commit groups between processes (the replica
// feed). It reuses the log's own op kinds but drops the per-frame CRC and
// torn-tail machinery: the transport (TCP framing plus the replica's
// sequence check) already delivers whole groups or nothing.
//
//	op    = kind(1) ++ payload          insert: 500-byte record
//	                                    delete: id(8) ++ key(4)
//	group = seq(8) ++ count(4) ++ op*

const deletePayloadSize = 12

// AppendOp appends one op in wire form to buf.
func AppendOp(buf []byte, op Op) ([]byte, error) {
	switch op.Kind {
	case OpInsert:
		buf = append(buf, byte(OpInsert))
		return op.Rec.AppendBinary(buf), nil
	case OpDelete:
		buf = append(buf, byte(OpDelete))
		var p [deletePayloadSize]byte
		binary.BigEndian.PutUint64(p[0:8], uint64(op.ID))
		binary.BigEndian.PutUint32(p[8:12], uint32(op.Key))
		return append(buf, p[:]...), nil
	default:
		return nil, fmt.Errorf("wal: encoding unknown op kind %d", op.Kind)
	}
}

// DecodeOp parses one wire-form op and returns the remaining bytes.
func DecodeOp(b []byte) (Op, []byte, error) {
	if len(b) < 1 {
		return Op{}, nil, fmt.Errorf("wal: truncated op")
	}
	switch OpKind(b[0]) {
	case OpInsert:
		if len(b) < 1+record.Size {
			return Op{}, nil, fmt.Errorf("wal: truncated insert op (%d bytes)", len(b))
		}
		r, err := record.Unmarshal(b[1 : 1+record.Size])
		if err != nil {
			return Op{}, nil, fmt.Errorf("wal: decoding insert op: %w", err)
		}
		return InsertOp(r), b[1+record.Size:], nil
	case OpDelete:
		if len(b) < 1+deletePayloadSize {
			return Op{}, nil, fmt.Errorf("wal: truncated delete op (%d bytes)", len(b))
		}
		id := record.ID(binary.BigEndian.Uint64(b[1:9]))
		key := record.Key(binary.BigEndian.Uint32(b[9:13]))
		return DeleteOp(id, key), b[1+deletePayloadSize:], nil
	default:
		return Op{}, nil, fmt.Errorf("wal: decoding unknown op kind %d", b[0])
	}
}

// AppendGroupWire appends one whole commit group in wire form to buf.
func AppendGroupWire(buf []byte, g Group) ([]byte, error) {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:8], g.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(g.Ops)))
	buf = append(buf, hdr[:]...)
	var err error
	for i := range g.Ops {
		if buf, err = AppendOp(buf, g.Ops[i]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeGroupWire parses one wire-form group and returns the remaining
// bytes.
func DecodeGroupWire(b []byte) (Group, []byte, error) {
	if len(b) < 12 {
		return Group{}, nil, fmt.Errorf("wal: truncated group header (%d bytes)", len(b))
	}
	g := Group{Seq: binary.BigEndian.Uint64(b[0:8])}
	n := binary.BigEndian.Uint32(b[8:12])
	b = b[12:]
	// Every op costs at least one kind byte plus a delete payload; an
	// implausible count is rejected before it can drive an allocation.
	if int(n) > len(b) {
		return Group{}, nil, fmt.Errorf("wal: implausible op count %d for %d payload bytes", n, len(b))
	}
	g.Ops = make([]Op, 0, n)
	for i := uint32(0); i < n; i++ {
		op, rest, err := DecodeOp(b)
		if err != nil {
			return Group{}, nil, fmt.Errorf("wal: group %d op %d: %w", g.Seq, i, err)
		}
		g.Ops = append(g.Ops, op)
		b = rest
	}
	return g, b, nil
}
