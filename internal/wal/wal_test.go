package wal

import (
	"os"
	"path/filepath"
	"testing"

	"sae/internal/record"
)

func sampleOps(n int, base record.ID) []Op {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		id := base + record.ID(i)
		if i%4 == 3 {
			ops = append(ops, DeleteOp(id, record.Key(i*17)))
		} else {
			ops = append(ops, InsertOp(record.Synthesize(id, record.Key(i*31))))
		}
	}
	return ops
}

func opsEqual(t *testing.T, got, want []Op) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind {
			t.Fatalf("op %d kind %d, want %d", i, got[i].Kind, want[i].Kind)
		}
		switch want[i].Kind {
		case OpInsert:
			if !got[i].Rec.Equal(&want[i].Rec) {
				t.Fatalf("op %d record mismatch", i)
			}
		case OpDelete:
			if got[i].ID != want[i].ID || got[i].Key != want[i].Key {
				t.Fatalf("op %d delete %d/%d, want %d/%d", i, got[i].ID, got[i].Key, want[i].ID, want[i].Key)
			}
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []Group
	for g := 0; g < 5; g++ {
		ops := sampleOps(1+g*3, record.ID(1000*g+1))
		if err := l.AppendGroup(uint64(g+1), ops); err != nil {
			t.Fatalf("AppendGroup: %v", err)
		}
		want = append(want, Group{Seq: uint64(g + 1), Ops: ops})
	}
	if got := l.Syncs(); got != 5 {
		t.Fatalf("Syncs = %d, want 5 (one per group)", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, groups, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if len(groups) != len(want) {
		t.Fatalf("replayed %d groups, want %d", len(groups), len(want))
	}
	for i := range want {
		if groups[i].Seq != want[i].Seq {
			t.Fatalf("group %d seq %d, want %d", i, groups[i].Seq, want[i].Seq)
		}
		opsEqual(t, groups[i].Ops, want[i].Ops)
	}
}

// TestTornTailDiscarded truncates the log at every byte boundary inside
// the final group and checks that replay yields exactly the fully
// committed prefix — never a partial group — and that the reopened log
// appends cleanly after the torn tail is stripped.
func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	g1 := sampleOps(4, 1)
	g2 := sampleOps(6, 100)
	if err := l.AppendGroup(1, g1); err != nil {
		t.Fatal(err)
	}
	sizeAfterG1 := l.Size()
	if err := l.AppendGroup(2, g2); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	for cut := sizeAfterG1; cut < int64(len(full)); cut += 97 {
		tp := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(tp, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tl, groups, err := Open(tp)
		if err != nil {
			t.Fatalf("Open torn@%d: %v", cut, err)
		}
		if len(groups) != 1 {
			t.Fatalf("torn@%d: replayed %d groups, want 1", cut, len(groups))
		}
		opsEqual(t, groups[0].Ops, g1)
		if tl.Size() != sizeAfterG1 {
			t.Fatalf("torn@%d: size %d after truncate, want %d", cut, tl.Size(), sizeAfterG1)
		}
		// The log must keep working after recovery.
		if err := tl.AppendGroup(2, g2); err != nil {
			t.Fatalf("torn@%d: append after recovery: %v", cut, err)
		}
		tl.Close()
		_, groups, err = Open(tp)
		if err != nil || len(groups) != 2 {
			t.Fatalf("torn@%d: reopen after repair: %d groups, err=%v", cut, len(groups), err)
		}
	}
}

// TestCorruptFrameStopsReplay flips a byte inside the first group and
// checks that replay surfaces nothing from the damaged point on.
func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendGroup(1, sampleOps(4, 1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xFF // inside the first op's payload: CRC must catch it
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, groups, err := Open(path)
	if err != nil {
		t.Fatalf("Open corrupt: %v", err)
	}
	defer l2.Close()
	if len(groups) != 0 {
		t.Fatalf("replayed %d groups from a corrupt log, want 0", len(groups))
	}
	if l2.Size() != 0 {
		t.Fatalf("corrupt log retained %d bytes after recovery", l2.Size())
	}
}

func TestResetTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendGroup(1, sampleOps(8, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.Size() != 0 {
		t.Fatalf("size %d after Reset", l.Size())
	}
	if err := l.AppendGroup(9, sampleOps(2, 50)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, groups, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Seq != 9 {
		t.Fatalf("after Reset replay: %d groups (first seq %v), want just seq 9", len(groups), groups)
	}
}

func TestEmptyAndMissingLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing.log")
	l, groups, err := Open(path)
	if err != nil {
		t.Fatalf("Open missing: %v", err)
	}
	if len(groups) != 0 || l.Size() != 0 {
		t.Fatalf("missing log replayed %d groups, size %d", len(groups), l.Size())
	}
	l.Close()
}
