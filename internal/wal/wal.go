// Package wal implements the per-shard write-ahead log behind the
// group-commit write pipeline. Updates are appended as framed op records
// followed by a group commit marker, with one fsync per group — the
// durability point every waiter in the group is acked against. Replay
// after a crash yields exactly the fully committed groups, in order; a
// torn tail (ops without their commit marker, or a half-written frame) is
// discarded and truncated, so an unacked group is never partially
// visible.
//
// On-disk format, one frame per op:
//
//	[kind 1][len 4][payload len][crc32 4]
//
// where crc32 covers kind plus payload (IEEE). An insert's payload is the
// canonical 500-byte record encoding; a delete's is id (8) + key (4). A
// group ends with a commit frame whose payload is seq (8) + op count (4);
// the count must match the ops buffered since the previous commit, or the
// tail is treated as torn. The format is append-only and self-delimiting:
// no in-place mutation, so a crash can only ever damage the tail.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"sae/internal/record"
)

// OpKind discriminates logged operations.
type OpKind byte

// Logged operation kinds. kindCommit is internal framing, not an op.
const (
	OpInsert OpKind = 1
	OpDelete OpKind = 2

	kindCommit OpKind = 0xC0
)

// Op is one logged update. Inserts carry the full record (the canonical
// encoding is what both the SP and TE apply); deletes carry id + key.
type Op struct {
	Kind OpKind
	Rec  record.Record // OpInsert
	ID   record.ID     // OpDelete
	Key  record.Key    // OpDelete
}

// InsertOp builds an insert op for r.
func InsertOp(r record.Record) Op { return Op{Kind: OpInsert, Rec: r} }

// DeleteOp builds a delete op for id/key.
func DeleteOp(id record.ID, key record.Key) Op {
	return Op{Kind: OpDelete, ID: id, Key: key}
}

// Group is one committed group as recovered by Open.
type Group struct {
	Seq uint64
	Ops []Op
}

// frameHeaderSize is kind (1) + payload length (4).
const frameHeaderSize = 5

// commitPayloadSize is seq (8) + count (4).
const commitPayloadSize = 12

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Log is an append-only write-ahead log. It is safe for concurrent use,
// though the committer design funnels all appends through one goroutine.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	size   int64
	closed bool
	syncs  int64 // fsyncs issued (the quantity group commit amortizes)
	groups int64 // groups appended since open
}

// Create creates (truncating) a fresh log at path.
func Create(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", path, err)
	}
	return &Log{f: f}, nil
}

// Open opens an existing log (creating an empty one if absent), replays
// it, and returns the fully committed groups in append order. Any torn
// tail — a half-written frame, a CRC mismatch, or ops not followed by
// their commit marker — is discarded and truncated away, so subsequent
// appends extend a clean log.
func Open(path string) (*Log, []Group, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	groups, good, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
	}
	return &Log{f: f, size: good}, groups, nil
}

// replay scans the log from the start, returning the committed groups and
// the byte offset of the last commit marker's end (everything after it is
// torn). Frame-level damage simply ends the scan: the format is
// append-only, so damage can only be at the tail.
func replay(f *os.File) (groups []Group, good int64, err error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("wal: stat: %w", err)
	}
	data := make([]byte, info.Size())
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, info.Size()), data); err != nil {
		return nil, 0, fmt.Errorf("wal: reading log: %w", err)
	}
	var pending []Op
	off := int64(0)
	for int64(len(data))-off >= frameHeaderSize {
		kind := OpKind(data[off])
		plen := int64(binary.BigEndian.Uint32(data[off+1 : off+5]))
		frameEnd := off + frameHeaderSize + plen + 4
		if plen > maxPayload || frameEnd > int64(len(data)) {
			break // torn or corrupt tail
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+plen]
		want := binary.BigEndian.Uint32(data[frameEnd-4 : frameEnd])
		if frameCRC(kind, payload) != want {
			break
		}
		switch kind {
		case OpInsert:
			r, err := record.Unmarshal(payload)
			if err != nil || int64(len(payload)) != record.Size {
				return groups, good, nil // treat as torn
			}
			pending = append(pending, InsertOp(r))
		case OpDelete:
			if len(payload) != 12 {
				return groups, good, nil
			}
			pending = append(pending, DeleteOp(
				record.ID(binary.BigEndian.Uint64(payload[0:8])),
				record.Key(binary.BigEndian.Uint32(payload[8:12]))))
		case kindCommit:
			if len(payload) != commitPayloadSize {
				return groups, good, nil
			}
			seq := binary.BigEndian.Uint64(payload[0:8])
			count := int(binary.BigEndian.Uint32(payload[8:12]))
			if count != len(pending) {
				return groups, good, nil // marker disagrees with its ops: torn
			}
			groups = append(groups, Group{Seq: seq, Ops: pending})
			pending = nil
			good = frameEnd
		default:
			return groups, good, nil
		}
		off = frameEnd
	}
	return groups, good, nil
}

// maxPayload bounds a single frame payload; an op is at most one record.
const maxPayload = record.Size

func frameCRC(kind OpKind, payload []byte) uint32 {
	c := crc32.NewIEEE()
	c.Write([]byte{byte(kind)})
	c.Write(payload)
	return c.Sum32()
}

func appendFrame(buf []byte, kind OpKind, payload []byte) []byte {
	buf = append(buf, byte(kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint32(buf, frameCRC(kind, payload))
}

// AppendGroup appends a whole commit group — every op frame, then the
// commit marker — as one write, and fsyncs once. When it returns nil, the
// group is durable: a crash at any later point replays it in full.
func (l *Log) AppendGroup(seq uint64, ops []Op) error {
	buf := make([]byte, 0, len(ops)*(frameHeaderSize+record.Size+4)+frameHeaderSize+commitPayloadSize+4)
	var scratch [record.Size]byte
	for i := range ops {
		switch ops[i].Kind {
		case OpInsert:
			buf = appendFrame(buf, OpInsert, ops[i].Rec.AppendBinary(scratch[:0]))
		case OpDelete:
			binary.BigEndian.PutUint64(scratch[0:8], uint64(ops[i].ID))
			binary.BigEndian.PutUint32(scratch[8:12], uint32(ops[i].Key))
			buf = appendFrame(buf, OpDelete, scratch[:12])
		default:
			return fmt.Errorf("wal: unknown op kind %d", ops[i].Kind)
		}
	}
	binary.BigEndian.PutUint64(scratch[0:8], seq)
	binary.BigEndian.PutUint32(scratch[8:12], uint32(len(ops)))
	buf = appendFrame(buf, kindCommit, scratch[:commitPayloadSize])

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return fmt.Errorf("wal: appending group %d: %w", seq, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing group %d: %w", seq, err)
	}
	l.size += int64(len(buf))
	l.syncs++
	l.groups++
	return nil
}

// Reset truncates the log to empty — the checkpoint barrier: every
// committed group is assumed captured by a durable checkpoint before the
// call.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: resetting log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size = 0
	return nil
}

// Size returns the log's current byte size.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Syncs returns the number of fsyncs issued since open — the cost group
// commit amortizes (one per group, regardless of group size).
func (l *Log) Syncs() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// Groups returns the number of groups appended since open.
func (l *Log) Groups() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.groups
}

// Close closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
