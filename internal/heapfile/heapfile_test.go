package heapfile

import (
	"errors"
	"sort"
	"testing"

	"sae/internal/pagestore"
	"sae/internal/record"
)

func buildRecords(n int) []record.Record {
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Synthesize(record.ID(i+1), record.Key(i*13%record.KeyDomain))
	}
	sort.Slice(recs, func(i, j int) bool { return record.SortByKey(recs[i], recs[j]) < 0 })
	return recs
}

func TestBuildAndGet(t *testing.T) {
	recs := buildRecords(25)
	f, rids, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(rids) != len(recs) {
		t.Fatalf("got %d rids, want %d", len(rids), len(recs))
	}
	if f.NumRecords() != 25 {
		t.Fatalf("NumRecords = %d, want 25", f.NumRecords())
	}
	wantPages := (25 + RecordsPerPage - 1) / RecordsPerPage
	if f.NumPages() != wantPages {
		t.Fatalf("NumPages = %d, want %d", f.NumPages(), wantPages)
	}
	for i, rid := range rids {
		got, err := f.Get(rid)
		if err != nil {
			t.Fatalf("Get(%v): %v", rid, err)
		}
		if !got.Equal(&recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestGetManyClusteredAccessCount(t *testing.T) {
	recs := buildRecords(64) // exactly 8 pages
	counting := pagestore.NewCounting(pagestore.NewMem())
	f, rids, err := Build(counting, recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	counting.Reset()
	got, err := f.GetMany(rids[8:40]) // records 8..39 → pages 1..4
	if err != nil {
		t.Fatalf("GetMany: %v", err)
	}
	if len(got) != 32 {
		t.Fatalf("got %d records, want 32", len(got))
	}
	if reads := counting.Stats().Reads; reads != 4 {
		t.Fatalf("clustered GetMany read %d pages, want 4", reads)
	}
	for i, r := range got {
		if !r.Equal(&recs[8+i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestAppendExtendsTail(t *testing.T) {
	recs := buildRecords(10) // page 0 full (8), page 1 holds 2
	f, _, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	r := record.Synthesize(999, 5)
	rid, err := f.Append(r)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if f.NumPages() != 2 {
		t.Fatalf("Append should fill the tail page, NumPages = %d", f.NumPages())
	}
	if rid.Slot != 2 {
		t.Fatalf("appended slot = %d, want 2", rid.Slot)
	}
	got, err := f.Get(rid)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !got.Equal(&r) {
		t.Fatal("appended record mismatch")
	}
}

func TestAppendAllocatesWhenFull(t *testing.T) {
	recs := buildRecords(8) // exactly one full page
	f, _, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rid, err := f.Append(record.Synthesize(100, 1))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if f.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", f.NumPages())
	}
	if rid.Slot != 0 {
		t.Fatalf("slot on fresh page = %d, want 0", rid.Slot)
	}
}

func TestAppendToEmptyFile(t *testing.T) {
	f := New(pagestore.NewMem())
	rid, err := f.Append(record.Synthesize(1, 1))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if f.NumRecords() != 1 || f.NumPages() != 1 {
		t.Fatalf("counts = %d recs / %d pages, want 1/1", f.NumRecords(), f.NumPages())
	}
	if _, err := f.Get(rid); err != nil {
		t.Fatalf("Get: %v", err)
	}
}

func TestDelete(t *testing.T) {
	recs := buildRecords(5)
	f, rids, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := f.Delete(rids[2]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if f.NumRecords() != 4 {
		t.Fatalf("NumRecords = %d, want 4", f.NumRecords())
	}
	if _, err := f.Get(rids[2]); !errors.Is(err, ErrDeleted) {
		t.Fatalf("Get(deleted) error = %v, want ErrDeleted", err)
	}
	if err := f.Delete(rids[2]); !errors.Is(err, ErrDeleted) {
		t.Fatalf("double Delete error = %v, want ErrDeleted", err)
	}
	// Neighbours untouched.
	if _, err := f.Get(rids[1]); err != nil {
		t.Fatalf("Get(neighbour): %v", err)
	}
}

func TestGetErrors(t *testing.T) {
	recs := buildRecords(3)
	f, rids, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := f.Get(RID{Page: rids[0].Page, Slot: 7}); !errors.Is(err, ErrBadRID) {
		t.Fatalf("Get(bad slot) error = %v, want ErrBadRID", err)
	}
	if _, err := f.Get(RID{Page: 999, Slot: 0}); err == nil {
		t.Fatal("Get on unknown page succeeded")
	}
}

func TestBytes(t *testing.T) {
	recs := buildRecords(9) // two pages
	f, _, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := f.Bytes(); got != 2*pagestore.PageSize {
		t.Fatalf("Bytes = %d, want %d", got, 2*pagestore.PageSize)
	}
}

func TestBuildEmpty(t *testing.T) {
	f, rids, err := Build(pagestore.NewMem(), nil)
	if err != nil {
		t.Fatalf("Build(nil): %v", err)
	}
	if len(rids) != 0 || f.NumRecords() != 0 || f.NumPages() != 0 {
		t.Fatal("empty build must produce an empty file")
	}
}

func TestWalkVisitsLiveRecordsInOrder(t *testing.T) {
	recs := buildRecords(30)
	f, rids, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Tombstone a few; Walk must skip exactly those.
	deleted := map[int]bool{3: true, 8: true, 20: true}
	for i := range deleted {
		if err := f.Delete(rids[i]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	var seen []record.Record
	err = f.Walk(func(rid RID, r record.Record) error {
		seen = append(seen, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if len(seen) != 27 {
		t.Fatalf("Walk visited %d records, want 27", len(seen))
	}
	j := 0
	for i := range recs {
		if deleted[i] {
			continue
		}
		if !seen[j].Equal(&recs[i]) {
			t.Fatalf("Walk order mismatch at %d", j)
		}
		j++
	}
}

func TestWalkPropagatesCallbackError(t *testing.T) {
	recs := buildRecords(5)
	f, _, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sentinel := errors.New("stop")
	calls := 0
	err = f.Walk(func(RID, record.Record) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Walk error = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("Walk continued after error: %d calls", calls)
	}
}

func TestMetaOpenRoundTrip(t *testing.T) {
	recs := buildRecords(20)
	store := pagestore.NewMem()
	f, rids, err := Build(store, recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	reopened := Open(store, f.Meta())
	if reopened.NumRecords() != 20 || reopened.NumPages() != f.NumPages() {
		t.Fatal("Meta/Open lost counts")
	}
	got, err := reopened.Get(rids[7])
	if err != nil {
		t.Fatalf("Get after Open: %v", err)
	}
	if !got.Equal(&recs[7]) {
		t.Fatal("record mismatch after Open")
	}
	// Appends continue at the right tail.
	rid, err := reopened.Append(record.Synthesize(777, 1))
	if err != nil {
		t.Fatalf("Append after Open: %v", err)
	}
	if _, err := reopened.Get(rid); err != nil {
		t.Fatalf("Get appended: %v", err)
	}
}
