package heapfile

import (
	"fmt"

	"sae/internal/pagestore"
	"sae/internal/record"
)

// Meta is the heap file's out-of-page state: its page list (in file order)
// and live-record count.
type Meta struct {
	Pages []pagestore.PageID
	Live  int
}

// Meta captures the file's current metadata. The returned page slice is a
// copy.
func (f *File) Meta() Meta {
	return Meta{Pages: append([]pagestore.PageID(nil), f.pages...), Live: f.live}
}

// Open reattaches a heap file to a store that already contains its pages.
func Open(store pagestore.Store, m Meta) *File {
	return &File{
		store: store,
		pages: append([]pagestore.PageID(nil), m.Pages...),
		live:  m.Live,
	}
}

// Walk visits every live record in file order. Restores use it to rebuild
// in-memory catalogs (e.g. the SP's id → RID map).
func (f *File) Walk(fn func(RID, record.Record) error) error {
	buf := make([]byte, pagestore.PageSize)
	for _, page := range f.pages {
		if err := f.store.Read(page, buf); err != nil {
			return fmt.Errorf("heapfile: %w", err)
		}
		count := pageCount(buf)
		for s := uint16(0); int(s) < count; s++ {
			if !slotLive(buf, s) {
				continue
			}
			rid := RID{Page: page, Slot: s}
			r, err := decodeSlot(buf, rid)
			if err != nil {
				return err
			}
			if err := fn(rid, r); err != nil {
				return err
			}
		}
	}
	return nil
}
