package heapfile

import (
	"sae/internal/bufpool"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// Meta is the heap file's out-of-page state: its page list (in file order)
// and live-record count.
type Meta struct {
	Pages []pagestore.PageID
	Live  int
}

// Meta captures the file's current metadata. The returned page slice is a
// copy.
func (f *File) Meta() Meta {
	return Meta{Pages: append([]pagestore.PageID(nil), f.pages...), Live: f.live}
}

// Open reattaches a heap file to a store that already contains its pages.
func Open(store pagestore.Store, m Meta) *File {
	return &File{
		io:    bufpool.NewIO(store, nil),
		pages: append([]pagestore.PageID(nil), m.Pages...),
		live:  m.Live,
	}
}

// Walk visits every live record in file order. Restores use it to rebuild
// in-memory catalogs (e.g. the SP's id → RID map).
func (f *File) Walk(fn func(RID, record.Record) error) error {
	for _, id := range f.pages {
		p, err := f.readPage(nil, id)
		if err != nil {
			return err
		}
		for s := uint16(0); int(s) < len(p.recs); s++ {
			if !p.live(s) {
				continue
			}
			if err := fn(RID{Page: id, Slot: s}, p.recs[s]); err != nil {
				return err
			}
		}
	}
	return nil
}
