// Package heapfile stores the outsourced relation R as 500-byte records in
// 4096-byte pages — the "dataset file" both outsourcing models scan when
// retrieving query results.
//
// Build lays records out in key order (a clustered file), so a range query's
// result occupies a contiguous run of pages; later insertions append at the
// tail, as in a conventional heap. Deletions tombstone their slot.
package heapfile

import (
	"errors"
	"fmt"

	"sae/internal/pagestore"
	"sae/internal/record"
)

// RecordsPerPage is how many 500-byte records fit in a 4096-byte page after
// the 3-byte page header (2-byte slot count + 1-byte occupancy bitmap).
const RecordsPerPage = 8

const headerSize = 3

// RID locates a record: page id plus slot index within the page.
type RID struct {
	Page pagestore.PageID
	Slot uint16
}

// InvalidRID is the zero-ish sentinel for "no record".
var InvalidRID = RID{Page: pagestore.InvalidPage}

// Errors returned by File operations.
var (
	ErrBadRID     = errors.New("heapfile: rid out of range")
	ErrDeleted    = errors.New("heapfile: record was deleted")
	ErrEmptySlot  = errors.New("heapfile: slot is empty")
	ErrPageFormat = errors.New("heapfile: malformed page")
)

// File is a record file over a page store.
type File struct {
	store pagestore.Store
	pages []pagestore.PageID // in allocation (and key, after Build) order
	live  int                // live (non-deleted) record count
}

// New returns an empty heap file on store.
func New(store pagestore.Store) *File {
	return &File{store: store}
}

// Build creates a clustered file holding records in the given order (callers
// sort by key first) and returns the RID of each record, aligned with the
// input slice. It is the data owner's initial bulk transfer to the SP.
func Build(store pagestore.Store, records []record.Record) (*File, []RID, error) {
	f := New(store)
	rids := make([]RID, 0, len(records))
	buf := make([]byte, pagestore.PageSize)
	for start := 0; start < len(records); start += RecordsPerPage {
		end := start + RecordsPerPage
		if end > len(records) {
			end = len(records)
		}
		id, err := store.Allocate()
		if err != nil {
			return nil, nil, fmt.Errorf("heapfile: allocating page: %w", err)
		}
		n := end - start
		encodePage(buf, records[start:end])
		if err := store.Write(id, buf); err != nil {
			return nil, nil, fmt.Errorf("heapfile: writing page %d: %w", id, err)
		}
		f.pages = append(f.pages, id)
		for s := 0; s < n; s++ {
			rids = append(rids, RID{Page: id, Slot: uint16(s)})
		}
	}
	f.live = len(records)
	return f, rids, nil
}

// encodePage serializes up to RecordsPerPage records into buf with all slots
// occupied.
func encodePage(buf []byte, recs []record.Record) {
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = byte(len(recs))
	buf[1] = 0
	var occ byte
	for s := range recs {
		occ |= 1 << uint(s)
		off := headerSize + s*record.Size
		recs[s].AppendBinary(buf[off : off : off+record.Size])
	}
	buf[2] = occ
}

func pageCount(buf []byte) int { return int(buf[0]) }
func pageOcc(buf []byte) byte  { return buf[2] }
func slotLive(buf []byte, s uint16) bool {
	return s < RecordsPerPage && pageOcc(buf)&(1<<uint(s)) != 0
}

// Get fetches a single record, costing one page access.
func (f *File) Get(rid RID) (record.Record, error) {
	buf := make([]byte, pagestore.PageSize)
	return f.getInto(rid, buf)
}

func (f *File) getInto(rid RID, buf []byte) (record.Record, error) {
	if err := f.store.Read(rid.Page, buf); err != nil {
		return record.Record{}, fmt.Errorf("heapfile: %w", err)
	}
	return decodeSlot(buf, rid)
}

func decodeSlot(buf []byte, rid RID) (record.Record, error) {
	if int(rid.Slot) >= pageCount(buf) {
		return record.Record{}, fmt.Errorf("%w: %v", ErrBadRID, rid)
	}
	if !slotLive(buf, rid.Slot) {
		return record.Record{}, fmt.Errorf("%w: %v", ErrDeleted, rid)
	}
	off := headerSize + int(rid.Slot)*record.Size
	return record.Unmarshal(buf[off : off+record.Size])
}

// GetMany fetches records for a list of RIDs, reading each distinct page at
// most once per contiguous run. For a clustered file and key-ordered RIDs
// (the range-query case) this touches ceil(|RS| / RecordsPerPage) pages,
// which is exactly the paper's "scan the dataset file" cost.
func (f *File) GetMany(rids []RID) ([]record.Record, error) {
	out := make([]record.Record, 0, len(rids))
	buf := make([]byte, pagestore.PageSize)
	curPage := pagestore.InvalidPage
	for _, rid := range rids {
		if rid.Page != curPage {
			if err := f.store.Read(rid.Page, buf); err != nil {
				return nil, fmt.Errorf("heapfile: %w", err)
			}
			curPage = rid.Page
		}
		r, err := decodeSlot(buf, rid)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Append adds a record at the file's tail, extending the last page or
// allocating a new one, and returns its RID. Used for post-build updates.
func (f *File) Append(r record.Record) (RID, error) {
	buf := make([]byte, pagestore.PageSize)
	if n := len(f.pages); n > 0 {
		last := f.pages[n-1]
		if err := f.store.Read(last, buf); err != nil {
			return InvalidRID, fmt.Errorf("heapfile: %w", err)
		}
		if cnt := pageCount(buf); cnt < RecordsPerPage {
			slot := uint16(cnt)
			off := headerSize + cnt*record.Size
			r.AppendBinary(buf[off : off : off+record.Size])
			buf[0] = byte(cnt + 1)
			buf[2] = pageOcc(buf) | 1<<uint(slot)
			if err := f.store.Write(last, buf); err != nil {
				return InvalidRID, fmt.Errorf("heapfile: %w", err)
			}
			f.live++
			return RID{Page: last, Slot: slot}, nil
		}
	}
	id, err := f.store.Allocate()
	if err != nil {
		return InvalidRID, fmt.Errorf("heapfile: allocating page: %w", err)
	}
	encodePage(buf, []record.Record{r})
	if err := f.store.Write(id, buf); err != nil {
		return InvalidRID, fmt.Errorf("heapfile: %w", err)
	}
	f.pages = append(f.pages, id)
	f.live++
	return RID{Page: id, Slot: 0}, nil
}

// Delete tombstones a record. The slot is not reused; range scans skip it.
func (f *File) Delete(rid RID) error {
	buf := make([]byte, pagestore.PageSize)
	if err := f.store.Read(rid.Page, buf); err != nil {
		return fmt.Errorf("heapfile: %w", err)
	}
	if int(rid.Slot) >= pageCount(buf) {
		return fmt.Errorf("%w: %v", ErrBadRID, rid)
	}
	if !slotLive(buf, rid.Slot) {
		return fmt.Errorf("%w: %v", ErrDeleted, rid)
	}
	buf[2] = pageOcc(buf) &^ (1 << uint(rid.Slot))
	if err := f.store.Write(rid.Page, buf); err != nil {
		return fmt.Errorf("heapfile: %w", err)
	}
	f.live--
	return nil
}

// NumRecords returns the number of live records.
func (f *File) NumRecords() int { return f.live }

// NumPages returns the number of data pages in the file.
func (f *File) NumPages() int { return len(f.pages) }

// Bytes returns the storage footprint of the file in bytes.
func (f *File) Bytes() int64 { return int64(len(f.pages)) * pagestore.PageSize }
