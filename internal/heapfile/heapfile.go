// Package heapfile stores the outsourced relation R as 500-byte records in
// 4096-byte pages — the "dataset file" both outsourcing models scan when
// retrieving query results.
//
// Build lays records out in key order (a clustered file), so a range query's
// result occupies a contiguous run of pages; later insertions append at the
// tail, as in a conventional heap. Deletions tombstone their slot.
//
// All page access goes through internal/bufpool: pages are decoded once
// into a slice of records and, when a cache is attached with UseCache,
// served from the decoded form on repeated reads.
package heapfile

import (
	"errors"
	"fmt"

	"sae/internal/bufpool"
	"sae/internal/exec"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// RecordsPerPage is how many 500-byte records fit in a 4096-byte page after
// the 3-byte page header (2-byte slot count + 1-byte occupancy bitmap).
const RecordsPerPage = 8

const headerSize = 3

// RID locates a record: page id plus slot index within the page.
type RID struct {
	Page pagestore.PageID
	Slot uint16
}

// InvalidRID is the zero-ish sentinel for "no record".
var InvalidRID = RID{Page: pagestore.InvalidPage}

// Errors returned by File operations.
var (
	ErrBadRID     = errors.New("heapfile: rid out of range")
	ErrDeleted    = errors.New("heapfile: record was deleted")
	ErrEmptySlot  = errors.New("heapfile: slot is empty")
	ErrPageFormat = errors.New("heapfile: malformed page")
)

// File is a record file over a page store.
type File struct {
	io    *bufpool.IO
	pages []pagestore.PageID // in allocation (and key, after Build) order
	live  int                // live (non-deleted) record count
}

// page is the decoded in-memory form of one heap page: the occupancy
// bitmap plus every written slot's record.
type page struct {
	occ  byte
	recs []record.Record
}

// live reports whether slot s holds a non-tombstoned record.
func (p *page) live(s uint16) bool {
	return s < RecordsPerPage && p.occ&(1<<uint(s)) != 0
}

// slotRef returns a pointer to the record at rid, enforcing bounds and
// tombstones. The pointer aliases the (possibly cached) decoded page —
// callers copy, never mutate.
func (p *page) slotRef(rid RID) (*record.Record, error) {
	if int(rid.Slot) >= len(p.recs) {
		return nil, fmt.Errorf("%w: %v", ErrBadRID, rid)
	}
	if !p.live(rid.Slot) {
		return nil, fmt.Errorf("%w: %v", ErrDeleted, rid)
	}
	return &p.recs[rid.Slot], nil
}

// slot fetches the record at rid by value.
func (p *page) slot(rid RID) (record.Record, error) {
	r, err := p.slotRef(rid)
	if err != nil {
		return record.Record{}, err
	}
	return *r, nil
}

// New returns an empty heap file on store.
func New(store pagestore.Store) *File {
	return &File{io: bufpool.NewIO(store, nil)}
}

// UseCache attaches a decoded-page cache to the file's read/write path
// (nil detaches).
func (f *File) UseCache(c *bufpool.Cache) { f.io.SetCache(c) }

// Build creates a clustered file holding records in the given order (callers
// sort by key first) and returns the RID of each record, aligned with the
// input slice. It is the data owner's initial bulk transfer to the SP.
// The build itself runs uncached; attach a cache afterwards with UseCache.
func Build(store pagestore.Store, records []record.Record) (*File, []RID, error) {
	f := New(store)
	rids := make([]RID, 0, len(records))
	for start := 0; start < len(records); start += RecordsPerPage {
		end := start + RecordsPerPage
		if end > len(records) {
			end = len(records)
		}
		id, err := f.io.Allocate(nil)
		if err != nil {
			return nil, nil, fmt.Errorf("heapfile: allocating page: %w", err)
		}
		n := end - start
		p := &page{occ: byte(1<<uint(n)) - 1, recs: records[start:end]}
		if err := f.writePage(nil, id, p); err != nil {
			return nil, nil, err
		}
		f.pages = append(f.pages, id)
		for s := 0; s < n; s++ {
			rids = append(rids, RID{Page: id, Slot: uint16(s)})
		}
	}
	f.live = len(records)
	return f, rids, nil
}

// encodePage serializes a decoded page: count, occupancy bitmap, records.
func encodePage(buf []byte, p *page) {
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = byte(len(p.recs))
	buf[1] = 0
	buf[2] = p.occ
	for s := range p.recs {
		off := headerSize + s*record.Size
		p.recs[s].AppendBinary(buf[off : off : off+record.Size])
	}
}

// decodeSlot unmarshals a single slot from a raw page — the fast path for
// uncached reads, which have no reason to materialize all eight records.
func decodeSlot(buf []byte, rid RID) (record.Record, error) {
	if int(rid.Slot) >= int(buf[0]) {
		return record.Record{}, fmt.Errorf("%w: %v", ErrBadRID, rid)
	}
	if rid.Slot >= RecordsPerPage || buf[2]&(1<<uint(rid.Slot)) == 0 {
		return record.Record{}, fmt.Errorf("%w: %v", ErrDeleted, rid)
	}
	off := headerSize + int(rid.Slot)*record.Size
	return record.Unmarshal(buf[off : off+record.Size])
}

// decodePage parses a raw page into its record slice. Tombstoned slots are
// decoded too (their bytes remain valid); liveness is the occ bitmap's job.
func decodePage(buf []byte) *page {
	count := int(buf[0])
	if count > RecordsPerPage {
		count = RecordsPerPage
	}
	p := &page{occ: buf[2], recs: make([]record.Record, count)}
	off := headerSize
	for i := 0; i < count; i++ {
		p.recs[i], _ = record.Unmarshal(buf[off : off+record.Size])
		off += record.Size
	}
	return p
}

func (f *File) readPage(ctx *exec.Context, id pagestore.PageID) (*page, error) {
	p, err := bufpool.ReadNode(f.io, ctx, id, decodePage)
	if err != nil {
		return nil, fmt.Errorf("heapfile: %w", err)
	}
	return p, nil
}

func (f *File) writePage(ctx *exec.Context, id pagestore.PageID, p *page) error {
	if err := bufpool.WriteNode(f.io, ctx, id, p, encodePage); err != nil {
		return fmt.Errorf("heapfile: writing page %d: %w", id, err)
	}
	return nil
}

// Get fetches a single record with no request context; see GetCtx.
func (f *File) Get(rid RID) (record.Record, error) { return f.GetCtx(nil, rid) }

// GetCtx fetches a single record, costing one page access charged to ctx.
// Without a cache only the requested slot is unmarshalled, matching the
// pre-bufpool cost exactly (the uncached mode is the before/after
// benchmarks' baseline).
func (f *File) GetCtx(ctx *exec.Context, rid RID) (record.Record, error) {
	if f.io.Cache() == nil {
		buf := bufpool.GetPage()
		defer bufpool.PutPage(buf)
		if err := f.io.ReadRaw(ctx, rid.Page, buf[:]); err != nil {
			return record.Record{}, fmt.Errorf("heapfile: %w", err)
		}
		return decodeSlot(buf[:], rid)
	}
	p, err := f.readPage(ctx, rid.Page)
	if err != nil {
		return record.Record{}, err
	}
	return p.slot(rid)
}

// GetMany fetches records for a list of RIDs with no request context; see
// GetManyCtx.
func (f *File) GetMany(rids []RID) ([]record.Record, error) {
	return f.GetManyCtx(nil, rids)
}

// GetManyCtx fetches records for a list of RIDs, reading each distinct page
// at most once per contiguous run. For a clustered file and key-ordered
// RIDs (the range-query case) this touches ceil(|RS| / RecordsPerPage)
// pages, which is exactly the paper's "scan the dataset file" cost.
//
// A run that advances past more than exec.ScanThreshold distinct pages
// turns on the context's scan hint for the remainder, so a long scan's
// fills bypass LRU admission in the decoded-node cache. Distinct pages are
// counted as strictly increasing page ids — exact for the clustered,
// key-ordered access pattern range queries produce; revisits and
// back-and-forth patterns never count, so they cannot falsely trip the
// hint.
func (f *File) GetManyCtx(ctx *exec.Context, rids []RID) ([]record.Record, error) {
	if f.io.Cache() == nil {
		return f.getManyUncached(ctx, rids)
	}
	out := make([]record.Record, 0, len(rids))
	var cur *page
	curPage := pagestore.InvalidPage
	scan := exec.TrackScan(ctx)
	defer scan.End()
	maxPage := pagestore.PageID(0)
	for _, rid := range rids {
		if rid.Page != curPage {
			if rid.Page >= maxPage {
				maxPage = rid.Page + 1
				scan.NotePage()
			}
			p, err := f.readPage(ctx, rid.Page)
			if err != nil {
				return nil, err
			}
			cur, curPage = p, rid.Page
		}
		r, err := cur.slotRef(rid)
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}

// ServeManyCtx streams the records for rids to emit without materializing
// a result slice: records borrowed from cached decoded pages are passed
// by pointer, with the page pinned in the buffer pool for exactly the
// span of its run so concurrent readers' LRU pressure cannot evict it
// mid-serve. The borrow rule is strict: emit must not retain the pointer
// past its return — the encode into the wire frame happens inside the
// callback, under the structure's read lock, which is what keeps writers
// (who mutate decoded pages in place under the write lock) out of the
// borrow window.
//
// Page access order, counts and the scan-hint behavior are identical to
// GetManyCtx (enforced by TestServeManyParity), so the paper's
// node-access figures are unchanged — only the per-record copy and the
// result-slice allocation disappear. Once a run declares itself a scan,
// pages past the admission cutoff are served straight from a pooled raw
// page buffer — the same single page read the decoded path would issue,
// but with the per-page decode allocation skipped too, so a full-table
// serve stays allocation-free end to end.
func (f *File) ServeManyCtx(ctx *exec.Context, rids []RID, emit func(*record.Record) error) error {
	if f.io.Cache() == nil {
		return f.serveManyUncached(ctx, rids, emit)
	}
	var (
		cur     *page
		curPage = pagestore.InvalidPage
		pinned  bool
		raw     *[pagestore.PageSize]byte // non-nil once the scan tail begins
		onRaw   bool                      // current page lives in raw, not cur
		rec     record.Record             // reused decode target for raw slots
	)
	defer func() {
		if pinned {
			f.io.Cache().Unpin(curPage)
		}
		if raw != nil {
			bufpool.PutPage(raw)
		}
	}()
	scan := exec.TrackScan(ctx)
	defer scan.End()
	maxPage := pagestore.PageID(0)
	for _, rid := range rids {
		if rid.Page != curPage {
			if rid.Page >= maxPage {
				maxPage = rid.Page + 1
				scan.NotePage()
			}
			if pinned {
				f.io.Cache().Unpin(curPage)
				pinned = false
			}
			if ctx.Scanning() {
				// Past the admission cutoff: a resident page is still a
				// normal (charged, pinned) cache hit — identical to what
				// GetManyCtx sees under either charge policy — and only a
				// true miss reads raw, which charges the same single
				// access as the decoded path's unfilled miss while
				// skipping the decode allocation.
				p, hit, err := bufpool.TryPinned[*page](f.io, ctx, rid.Page)
				if err != nil {
					return fmt.Errorf("heapfile: %w", err)
				}
				if hit {
					cur, curPage, pinned, onRaw = p, rid.Page, true, false
				} else {
					if raw == nil {
						raw = bufpool.GetPage()
					}
					if err := f.io.ReadRaw(ctx, rid.Page, raw[:]); err != nil {
						return fmt.Errorf("heapfile: %w", err)
					}
					curPage, onRaw = rid.Page, true
				}
			} else {
				p, pin, err := bufpool.ReadNodePinned(f.io, ctx, rid.Page, decodePage)
				if err != nil {
					return fmt.Errorf("heapfile: %w", err)
				}
				cur, curPage, pinned, onRaw = p, rid.Page, pin, false
			}
		}
		if onRaw {
			r, err := decodeSlot(raw[:], rid)
			if err != nil {
				return err
			}
			rec = r
			if err := emit(&rec); err != nil {
				return err
			}
			continue
		}
		r, err := cur.slotRef(rid)
		if err != nil {
			return err
		}
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

// ServeBurstCtx serves a burst of queries — runs[qi] is query qi's
// key-ordered RID list, ctxs[qi] its request context — through ONE
// pin/unpin epoch: every page any query borrows stays pinned until the
// whole burst has been emitted, and all pins are released together in a
// single deferred epoch, so an error or a context cancellation from emit
// mid-burst still returns bufpool.Cache.PinnedCount to zero.
//
// Each run is served with exactly the access pattern of ServeManyCtx —
// same page lookups, same charges to its own ctx, same scan-hint cutoff —
// so per-query access counts are bit-identical to serving the queries one
// at a time (the burst parity tests enforce this). What the burst saves
// is the pin churn on pages shared between adjacent queries and the
// per-query pooled scan buffer: one raw page buffer serves every scan
// tail in the burst.
//
// emit(qi, r) receives query index and a borrowed record pointer under
// the same strict no-retain rule as ServeManyCtx.
func (f *File) ServeBurstCtx(ctxs []*exec.Context, runs [][]RID, emit func(int, *record.Record) error) error {
	if f.io.Cache() == nil {
		buf := bufpool.GetPage()
		defer bufpool.PutPage(buf)
		var rec record.Record
		for qi, rids := range runs {
			ctx := ctxs[qi]
			curPage := pagestore.InvalidPage
			for _, rid := range rids {
				if rid.Page != curPage {
					if err := f.io.ReadRaw(ctx, rid.Page, buf[:]); err != nil {
						return fmt.Errorf("heapfile: %w", err)
					}
					curPage = rid.Page
				}
				r, err := decodeSlot(buf[:], rid)
				if err != nil {
					return err
				}
				rec = r
				if err := emit(qi, &rec); err != nil {
					return err
				}
			}
		}
		return nil
	}
	epoch := bufpool.NewPinEpoch(f.io.Cache())
	defer epoch.Release()
	var raw *[pagestore.PageSize]byte // shared scan-tail buffer for the burst
	defer func() {
		if raw != nil {
			bufpool.PutPage(raw)
		}
	}()
	for qi, rids := range runs {
		ctx := ctxs[qi]
		var (
			cur     *page
			curPage = pagestore.InvalidPage
			onRaw   bool
			rec     record.Record
		)
		scan := exec.TrackScan(ctx)
		maxPage := pagestore.PageID(0)
		serveRun := func() error {
			for _, rid := range rids {
				if rid.Page != curPage {
					if rid.Page >= maxPage {
						maxPage = rid.Page + 1
						scan.NotePage()
					}
					if ctx.Scanning() {
						p, hit, err := bufpool.TryPinned[*page](f.io, ctx, rid.Page)
						if err != nil {
							return fmt.Errorf("heapfile: %w", err)
						}
						if hit {
							epoch.Note(rid.Page)
							cur, curPage, onRaw = p, rid.Page, false
						} else {
							if raw == nil {
								raw = bufpool.GetPage()
							}
							if err := f.io.ReadRaw(ctx, rid.Page, raw[:]); err != nil {
								return fmt.Errorf("heapfile: %w", err)
							}
							curPage, onRaw = rid.Page, true
						}
					} else {
						p, pin, err := bufpool.ReadNodePinned(f.io, ctx, rid.Page, decodePage)
						if err != nil {
							return fmt.Errorf("heapfile: %w", err)
						}
						if pin {
							epoch.Note(rid.Page)
						}
						cur, curPage, onRaw = p, rid.Page, false
					}
				}
				if onRaw {
					r, err := decodeSlot(raw[:], rid)
					if err != nil {
						return err
					}
					rec = r
					if err := emit(qi, &rec); err != nil {
						return err
					}
					continue
				}
				r, err := cur.slotRef(rid)
				if err != nil {
					return err
				}
				if err := emit(qi, r); err != nil {
					return err
				}
			}
			return nil
		}
		err := serveRun()
		scan.End()
		if err != nil {
			return err
		}
	}
	return nil
}

// serveManyUncached mirrors getManyUncached: one pooled page buffer per
// run, only the requested slots decoded — into a single reused stack
// record handed to emit, so the uncached serve is also allocation-free.
func (f *File) serveManyUncached(ctx *exec.Context, rids []RID, emit func(*record.Record) error) error {
	buf := bufpool.GetPage()
	defer bufpool.PutPage(buf)
	var rec record.Record
	curPage := pagestore.InvalidPage
	for _, rid := range rids {
		if rid.Page != curPage {
			if err := f.io.ReadRaw(ctx, rid.Page, buf[:]); err != nil {
				return fmt.Errorf("heapfile: %w", err)
			}
			curPage = rid.Page
		}
		r, err := decodeSlot(buf[:], rid)
		if err != nil {
			return err
		}
		rec = r
		if err := emit(&rec); err != nil {
			return err
		}
	}
	return nil
}

// getManyUncached reads into one pooled buffer per page run and decodes
// only the requested slots, like the pre-bufpool implementation.
func (f *File) getManyUncached(ctx *exec.Context, rids []RID) ([]record.Record, error) {
	out := make([]record.Record, 0, len(rids))
	buf := bufpool.GetPage()
	defer bufpool.PutPage(buf)
	curPage := pagestore.InvalidPage
	for _, rid := range rids {
		if rid.Page != curPage {
			if err := f.io.ReadRaw(ctx, rid.Page, buf[:]); err != nil {
				return nil, fmt.Errorf("heapfile: %w", err)
			}
			curPage = rid.Page
		}
		r, err := decodeSlot(buf[:], rid)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Append adds a record with no request context; see AppendCtx.
func (f *File) Append(r record.Record) (RID, error) { return f.AppendCtx(nil, r) }

// AppendCtx adds a record at the file's tail, extending the last page or
// allocating a new one, and returns its RID. Used for post-build updates.
func (f *File) AppendCtx(ctx *exec.Context, r record.Record) (RID, error) {
	if n := len(f.pages); n > 0 {
		last := f.pages[n-1]
		p, err := f.readPage(ctx, last)
		if err != nil {
			return InvalidRID, err
		}
		if cnt := len(p.recs); cnt < RecordsPerPage {
			slot := uint16(cnt)
			p.recs = append(p.recs, r)
			p.occ |= 1 << uint(slot)
			if err := f.writePage(ctx, last, p); err != nil {
				return InvalidRID, err
			}
			f.live++
			return RID{Page: last, Slot: slot}, nil
		}
	}
	id, err := f.io.Allocate(ctx)
	if err != nil {
		return InvalidRID, fmt.Errorf("heapfile: allocating page: %w", err)
	}
	if err := f.writePage(ctx, id, &page{occ: 1, recs: []record.Record{r}}); err != nil {
		return InvalidRID, err
	}
	f.pages = append(f.pages, id)
	f.live++
	return RID{Page: id, Slot: 0}, nil
}

// Delete tombstones a record with no request context; see DeleteCtx.
func (f *File) Delete(rid RID) error { return f.DeleteCtx(nil, rid) }

// DeleteCtx tombstones a record. The slot is not reused; range scans skip
// it.
func (f *File) DeleteCtx(ctx *exec.Context, rid RID) error {
	p, err := f.readPage(ctx, rid.Page)
	if err != nil {
		return err
	}
	if int(rid.Slot) >= len(p.recs) {
		return fmt.Errorf("%w: %v", ErrBadRID, rid)
	}
	if !p.live(rid.Slot) {
		return fmt.Errorf("%w: %v", ErrDeleted, rid)
	}
	p.occ &^= 1 << uint(rid.Slot)
	if err := f.writePage(ctx, rid.Page, p); err != nil {
		return err
	}
	f.live--
	return nil
}

// NumRecords returns the number of live records.
func (f *File) NumRecords() int { return f.live }

// NumPages returns the number of data pages in the file.
func (f *File) NumPages() int { return len(f.pages) }

// Bytes returns the storage footprint of the file in bytes.
func (f *File) Bytes() int64 { return int64(len(f.pages)) * pagestore.PageSize }
