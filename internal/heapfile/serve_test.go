package heapfile

import (
	"errors"
	"testing"

	"sae/internal/bufpool"
	"sae/internal/exec"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// TestServeManyParity proves the zero-copy serve path emits exactly the
// records GetManyCtx returns, in order, with identical page-access
// accounting — cached and uncached — and that every pin it takes is
// released.
func TestServeManyParity(t *testing.T) {
	// 1000 records = 125 pages: a full sweep crosses exec.ScanThreshold,
	// so the parity run covers the pinned-page head AND the raw-page
	// scan tail — under both charge policies, because the tail must
	// serve resident pages as ordinary (charged-per-policy) cache hits.
	recs := buildRecords(1000)
	modes := []struct {
		name   string
		policy bufpool.ChargePolicy
		cached bool
	}{
		{"uncached", 0, false},
		{"charge-all", bufpool.ChargeAllAccesses, true},
		{"charge-misses", bufpool.ChargeMissesOnly, true},
	}
	for _, mode := range modes {
		cached := mode.cached
		t.Run(mode.name, func(t *testing.T) {
			counting := pagestore.NewCounting(pagestore.NewMem())
			f, rids, err := Build(counting, recs)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			// A mixed access pattern: one long clustered run spanning the
			// scan threshold, a revisit, and a single straggler.
			pattern := append(append([]RID{}, rids[8:960]...), rids[16], rids[999])

			// Charged accesses under ChargeMissesOnly depend on what is
			// resident, so each measured pass starts from an identical
			// cache state: a fresh cache warmed by one GetManyCtx sweep.
			var cache *bufpool.Cache
			freshWarmCache := func() {
				if !cached {
					return
				}
				cache = bufpool.New(64, mode.policy)
				f.UseCache(cache)
				if _, err := f.GetManyCtx(exec.NewContext(), pattern); err != nil {
					t.Fatalf("warmup GetManyCtx: %v", err)
				}
			}

			freshWarmCache()
			getCtx := exec.NewContext()
			want, err := f.GetManyCtx(getCtx, pattern)
			if err != nil {
				t.Fatalf("GetManyCtx: %v", err)
			}

			freshWarmCache()
			serveCtx := exec.NewContext()
			var got []record.Record
			err = f.ServeManyCtx(serveCtx, pattern, func(r *record.Record) error {
				got = append(got, *r) // copy: the borrow ends at return
				return nil
			})
			if err != nil {
				t.Fatalf("ServeManyCtx: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("served %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !got[i].Equal(&want[i]) {
					t.Fatalf("record %d mismatch", i)
				}
			}
			if g, w := serveCtx.Stats(), getCtx.Stats(); g != w {
				t.Fatalf("serve accesses %+v != get accesses %+v", g, w)
			}
			if cache != nil {
				if pinned := cache.PinnedCount(); pinned != 0 {
					t.Fatalf("%d pages still pinned after serve", pinned)
				}
			}
		})
	}
}

// TestServeManyEmitError proves an emit error stops the serve, propagates,
// and leaves no pin behind.
func TestServeManyEmitError(t *testing.T) {
	recs := buildRecords(40)
	f, rids, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cache := bufpool.New(16, bufpool.ChargeAllAccesses)
	f.UseCache(cache)
	boom := errors.New("boom")
	n := 0
	err = f.ServeManyCtx(nil, rids, func(*record.Record) error {
		n++
		if n == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 17 {
		t.Fatalf("emitted %d records before stopping, want 17", n)
	}
	if pinned := cache.PinnedCount(); pinned != 0 {
		t.Fatalf("%d pages still pinned after emit error", pinned)
	}
}

// TestServeManyTombstone proves serving a deleted slot fails like GetMany
// does and releases its pins.
func TestServeManyTombstone(t *testing.T) {
	recs := buildRecords(24)
	f, rids, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cache := bufpool.New(16, bufpool.ChargeAllAccesses)
	f.UseCache(cache)
	if err := f.Delete(rids[10]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	err = f.ServeManyCtx(nil, rids, func(*record.Record) error { return nil })
	if !errors.Is(err, ErrDeleted) {
		t.Fatalf("err = %v, want ErrDeleted", err)
	}
	if pinned := cache.PinnedCount(); pinned != 0 {
		t.Fatalf("%d pages still pinned after tombstone error", pinned)
	}
}
