package heapfile

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"sae/internal/bufpool"
	"sae/internal/exec"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// buildBurstHeap builds a cached heap file plus the run set the burst
// tests serve: one run per "query", including an empty run and runs long
// enough to cross the scan threshold.
func buildBurstHeap(t *testing.T, n, cachePages int) (*File, [][]RID) {
	t.Helper()
	recs := buildRecords(n)
	f, rids, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	f.UseCache(bufpool.New(cachePages, bufpool.ChargeAllAccesses))
	runs := [][]RID{
		rids[:len(rids)/3],
		{},                                // empty run still gets its context charged nothing
		rids[len(rids)/2:],                // long tail run
		rids[len(rids)/4 : 1+len(rids)/4], // single record
		rids,                              // whole file: crosses the scan threshold
	}
	return f, runs
}

// TestServeBurstCtxParity pins the multi-run burst serve to per-run
// ServeManyCtx: identical record bytes and identical per-run access
// counts, on identically built files.
func TestServeBurstCtxParity(t *testing.T) {
	fA, runs := buildBurstHeap(t, 2000, 8)
	fB, _ := buildBurstHeap(t, 2000, 8)

	wantBytes := make([][]byte, len(runs))
	wantStats := make([]pagestore.Stats, len(runs))
	for i, run := range runs {
		ctx := exec.NewContext()
		err := fA.ServeManyCtx(ctx, run, func(r *record.Record) error {
			wantBytes[i] = r.AppendBinary(wantBytes[i])
			return nil
		})
		if err != nil {
			t.Fatalf("ServeManyCtx(run %d): %v", i, err)
		}
		wantStats[i] = ctx.Stats()
	}

	lane := exec.NewLane(0)
	ctxs := lane.Contexts(len(runs))
	gotBytes := make([][]byte, len(runs))
	err := fB.ServeBurstCtx(ctxs, runs, func(qi int, r *record.Record) error {
		gotBytes[qi] = r.AppendBinary(gotBytes[qi])
		return nil
	})
	if err != nil {
		t.Fatalf("ServeBurstCtx: %v", err)
	}
	for i := range runs {
		if !bytes.Equal(gotBytes[i], wantBytes[i]) {
			t.Errorf("run %d: burst records != per-run records", i)
		}
		if got := ctxs[i].Stats(); got != wantStats[i] {
			t.Errorf("run %d: burst accesses %+v != per-run accesses %+v", i, got, wantStats[i])
		}
	}
	if n := fB.io.Cache().PinnedCount(); n != 0 {
		t.Fatalf("PinnedCount after burst = %d, want 0", n)
	}
}

// TestServeBurstCtxPinHygieneOnError is the satellite's pin-hygiene
// guarantee: a burst aborted by an emit error mid-run (mid-epoch, with
// pages pinned across several runs) must still return every pin —
// bufpool.PinnedCount goes back to zero.
func TestServeBurstCtxPinHygieneOnError(t *testing.T) {
	f, runs := buildBurstHeap(t, 2000, 8)
	boom := errors.New("cancelled mid-burst")
	lane := exec.NewLane(0)
	emitted := 0
	err := f.ServeBurstCtx(lane.Contexts(len(runs)), runs, func(int, *record.Record) error {
		emitted++
		if emitted == 700 { // inside the third run, pins from earlier runs live
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("ServeBurstCtx error = %v, want %v", err, boom)
	}
	if n := f.io.Cache().PinnedCount(); n != 0 {
		t.Fatalf("PinnedCount after aborted burst = %d, want 0", n)
	}

	// And an abort on the very first emit (no run completed).
	err = f.ServeBurstCtx(lane.Contexts(len(runs)), runs, func(int, *record.Record) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("ServeBurstCtx error = %v, want %v", err, boom)
	}
	if n := f.io.Cache().PinnedCount(); n != 0 {
		t.Fatalf("PinnedCount after first-emit abort = %d, want 0", n)
	}
}

// TestServeBurstCtxConcurrent hammers one cached file with concurrent
// bursts, some of which abort mid-flight — run with -race, this is the
// satellite's "burst serves that error or are cancelled mid-burst"
// regression net. After the storm every pin must be back.
func TestServeBurstCtxConcurrent(t *testing.T) {
	f, runs := buildBurstHeap(t, 3000, 8)
	boom := errors.New("abort")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lane := exec.NewLane(g)
			for iter := 0; iter < 20; iter++ {
				abortAt := -1
				if (g+iter)%3 == 0 {
					abortAt = 100 + 37*iter
				}
				emitted := 0
				err := f.ServeBurstCtx(lane.Contexts(len(runs)), runs, func(int, *record.Record) error {
					emitted++
					if emitted == abortAt {
						return boom
					}
					return nil
				})
				if err != nil && !errors.Is(err, boom) {
					t.Errorf("goroutine %d iter %d: %v", g, iter, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := f.io.Cache().PinnedCount(); n != 0 {
		t.Fatalf("PinnedCount after concurrent bursts = %d, want 0", n)
	}
}

// TestServeBurstCtxUncached checks the uncached branch serves burst runs
// identically to per-run serving.
func TestServeBurstCtxUncached(t *testing.T) {
	recs := buildRecords(500)
	f, rids, err := Build(pagestore.NewMem(), recs)
	if err != nil {
		t.Fatal(err)
	}
	runs := [][]RID{rids[:100], {}, rids[200:]}
	var want, got []byte
	for _, run := range runs {
		if err := f.ServeManyCtx(nil, run, func(r *record.Record) error {
			want = r.AppendBinary(want)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	lane := exec.NewLane(0)
	if err := f.ServeBurstCtx(lane.Contexts(len(runs)), runs, func(_ int, r *record.Record) error {
		got = r.AppendBinary(got)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("uncached burst records != per-run records")
	}
}
