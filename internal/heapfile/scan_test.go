package heapfile

import (
	"testing"

	"sae/internal/bufpool"
	"sae/internal/exec"
	"sae/internal/pagestore"
	"sae/internal/record"
)

func buildScanFile(t *testing.T, n, cachePages int) (*File, []RID, *bufpool.Cache) {
	t.Helper()
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Synthesize(record.ID(i+1), record.Key(i*10))
	}
	f, rids, err := Build(pagestore.NewCounting(pagestore.NewMem()), recs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cache := bufpool.New(cachePages, bufpool.ChargeAllAccesses)
	f.UseCache(cache)
	return f, rids, cache
}

// TestScanResistantAdmission: a GetMany run longer than exec.ScanThreshold
// pages must stop admitting pages into the decoded-node cache, so a big
// range scan cannot flush the hot set — while the node-access accounting
// stays exactly what an uncached run would charge.
func TestScanResistantAdmission(t *testing.T) {
	const records = 2000 // 250 pages, ~4x the threshold
	f, rids, cache := buildScanFile(t, records, bufpool.DefaultCapacity)
	pages := (records + RecordsPerPage - 1) / RecordsPerPage

	ctx := exec.NewContext()
	recs, err := f.GetManyCtx(ctx, rids)
	if err != nil {
		t.Fatalf("GetManyCtx: %v", err)
	}
	if len(recs) != records {
		t.Fatalf("got %d records, want %d", len(recs), records)
	}
	// Exactly one read per distinct page, scan hint or not.
	if got := ctx.Stats().Reads; got != int64(pages) {
		t.Fatalf("ctx charged %d reads, want %d", got, pages)
	}
	// Only the pre-threshold prefix was admitted.
	if got := cache.Len(); got != exec.ScanThreshold {
		t.Fatalf("cache holds %d nodes after scan, want %d (admission not bypassed)", got, exec.ScanThreshold)
	}
	if ctx.Scanning() {
		t.Fatal("scan hint leaked past GetManyCtx")
	}

	// The same scan again: the admitted prefix hits, the tail misses
	// again, and the charged accesses are unchanged (ChargeAllAccesses).
	before := cache.Stats()
	ctx2 := exec.NewContext()
	if _, err := f.GetManyCtx(ctx2, rids); err != nil {
		t.Fatalf("second GetManyCtx: %v", err)
	}
	if got := ctx2.Stats().Reads; got != int64(pages) {
		t.Fatalf("second scan charged %d reads, want %d", got, pages)
	}
	delta := cache.Stats()
	if hits := delta.Hits - before.Hits; hits != exec.ScanThreshold {
		t.Fatalf("second scan hit %d cached pages, want %d", hits, exec.ScanThreshold)
	}
}

// TestScanAdmissionKeepsHotSet: entries cached by short (non-scan) reads
// survive a long scan because the scan's tail is never admitted.
func TestScanAdmissionKeepsHotSet(t *testing.T) {
	const records = 2000
	// A cache big enough for the hot set plus the scan's admitted prefix,
	// but far smaller than the 250-page scan: unrestricted admission would
	// cycle the whole file through it.
	f, rids, cache := buildScanFile(t, records, 80)

	// Warm a "hot" record past the scan threshold, the way point queries
	// would. (A hot page inside the first exec.ScanThreshold scan pages
	// would be re-admitted by the scan itself; one beyond it survives only
	// because the scan's tail is never admitted.)
	hot := rids[len(rids)/2]
	if _, err := f.GetCtx(exec.NewContext(), hot); err != nil {
		t.Fatalf("warm Get: %v", err)
	}

	// Scan everything. Past the threshold the scan stops filling, so the
	// hot page is hit (and refreshed) but the ~185 tail pages behind it
	// never enter the cache to push it out.
	if _, err := f.GetManyCtx(exec.NewContext(), rids); err != nil {
		t.Fatalf("GetManyCtx: %v", err)
	}

	before := cache.Stats()
	if _, err := f.GetCtx(exec.NewContext(), hot); err != nil {
		t.Fatalf("hot Get after scan: %v", err)
	}
	after := cache.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("hot page was evicted by the scan (hits %d -> %d)", before.Hits, after.Hits)
	}
}

// TestShortGetManyStillAdmits: runs at or below the threshold keep the old
// behavior — every page is admitted.
func TestShortGetManyStillAdmits(t *testing.T) {
	const records = 24 * RecordsPerPage // 24 pages, under the threshold
	f, rids, cache := buildScanFile(t, records, bufpool.DefaultCapacity)
	if _, err := f.GetManyCtx(exec.NewContext(), rids); err != nil {
		t.Fatalf("GetManyCtx: %v", err)
	}
	if got := cache.Len(); got != 24 {
		t.Fatalf("cache holds %d nodes, want 24 (short runs must admit)", got)
	}
}
