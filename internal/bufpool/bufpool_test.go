package bufpool

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sae/internal/pagestore"
)

// val is the decoded-node type used throughout the tests: each page
// stores a uint64 in its first eight bytes.
type val struct{ n uint64 }

func decodeVal(buf []byte) *val {
	return &val{n: binary.BigEndian.Uint64(buf[:8])}
}

func encodeVal(buf []byte, v *val) {
	for i := range buf {
		buf[i] = 0
	}
	binary.BigEndian.PutUint64(buf[:8], v.n)
}

func newTestIO(t *testing.T, capacity int, policy ChargePolicy, pages int) (*IO, *pagestore.Counting, []pagestore.PageID) {
	t.Helper()
	counting := pagestore.NewCounting(pagestore.NewMem())
	io := NewIO(counting, New(capacity, policy))
	ids := make([]pagestore.PageID, pages)
	for i := range ids {
		id, err := io.Allocate(nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := WriteNode(io, nil, id, &val{n: uint64(i)}, encodeVal); err != nil {
			t.Fatal(err)
		}
	}
	return io, counting, ids
}

func TestReadWriteThroughCache(t *testing.T) {
	io, counting, ids := newTestIO(t, 64, ChargeAllAccesses, 8)
	for i, id := range ids {
		v, err := ReadNode(io, nil, id, decodeVal)
		if err != nil {
			t.Fatal(err)
		}
		if v.n != uint64(i) {
			t.Fatalf("page %d decoded %d, want %d", id, v.n, i)
		}
	}
	// Second pass must be served from the cache but still charged.
	readsBefore := counting.Stats().Reads
	hitsBefore := io.Cache().Stats().Hits
	for range ids {
		if _, err := ReadNode(io, nil, ids[0], decodeVal); err != nil {
			t.Fatal(err)
		}
	}
	if got := io.Cache().Stats().Hits - hitsBefore; got != int64(len(ids)) {
		t.Fatalf("expected %d hits, got %d", len(ids), got)
	}
	if got := counting.Stats().Reads - readsBefore; got != int64(len(ids)) {
		t.Fatalf("charge-all hits must charge reads: charged %d, want %d", got, len(ids))
	}
}

func TestChargeMissesOnlyLeavesHitsFree(t *testing.T) {
	io, counting, ids := newTestIO(t, 64, ChargeMissesOnly, 4)
	for _, id := range ids {
		if _, err := ReadNode(io, nil, id, decodeVal); err != nil {
			t.Fatal(err)
		}
	}
	readsBefore := counting.Stats().Reads
	for i := 0; i < 100; i++ {
		if _, err := ReadNode(io, nil, ids[i%len(ids)], decodeVal); err != nil {
			t.Fatal(err)
		}
	}
	if got := counting.Stats().Reads - readsBefore; got != 0 {
		t.Fatalf("charge-misses hits must be free, charged %d reads", got)
	}
}

func TestInvalidationAfterWrite(t *testing.T) {
	io, _, ids := newTestIO(t, 64, ChargeAllAccesses, 1)
	id := ids[0]
	if _, err := ReadNode(io, nil, id, decodeVal); err != nil {
		t.Fatal(err)
	}
	if err := WriteNode(io, nil, id, &val{n: 42}, encodeVal); err != nil {
		t.Fatal(err)
	}
	v, err := ReadNode(io, nil, id, decodeVal)
	if err != nil {
		t.Fatal(err)
	}
	if v.n != 42 {
		t.Fatalf("read %d after write, want 42", v.n)
	}
	// The store must agree (write-through, not write-back).
	var buf [pagestore.PageSize]byte
	if err := io.Store().Read(id, buf[:]); err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(buf[:8]); got != 42 {
		t.Fatalf("store holds %d, want 42", got)
	}
	// Invalidate drops the node: the next read must decode from disk.
	missesBefore := io.Cache().Stats().Misses
	io.Cache().Invalidate(id)
	if _, err := ReadNode(io, nil, id, decodeVal); err != nil {
		t.Fatal(err)
	}
	if io.Cache().Stats().Misses != missesBefore+1 {
		t.Fatal("read after Invalidate should miss")
	}
}

func TestFreeInvalidates(t *testing.T) {
	io, _, ids := newTestIO(t, 64, ChargeAllAccesses, 2)
	if _, err := ReadNode(io, nil, ids[0], decodeVal); err != nil {
		t.Fatal(err)
	}
	if err := io.Free(nil, ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadNode(io, nil, ids[0], decodeVal); err == nil {
		t.Fatal("reading a freed page should fail, not hit the cache")
	}
}

func TestEviction(t *testing.T) {
	// Capacity numShards means one node per shard: filling two pages per
	// shard must evict.
	io, _, ids := newTestIO(t, numShards, ChargeAllAccesses, 4*numShards)
	for _, id := range ids {
		if _, err := ReadNode(io, nil, id, decodeVal); err != nil {
			t.Fatal(err)
		}
	}
	if got := io.Cache().Len(); got > numShards {
		t.Fatalf("cache holds %d nodes, capacity is %d", got, numShards)
	}
	if io.Cache().Stats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
}

func TestStatsInvariantHitsPlusMissesEqualsReads(t *testing.T) {
	io, _, ids := newTestIO(t, 8, ChargeAllAccesses, 32)
	const reads = 1000
	for i := 0; i < reads; i++ {
		if _, err := ReadNode(io, nil, ids[(i*7)%len(ids)], decodeVal); err != nil {
			t.Fatal(err)
		}
	}
	s := io.Cache().Stats()
	if s.Hits+s.Misses != reads {
		t.Fatalf("hits(%d) + misses(%d) != reads(%d)", s.Hits, s.Misses, reads)
	}
}

// TestConcurrentReadersAndWriters hammers one IO from parallel readers,
// writers and invalidators, then checks that (a) the run is race-free
// (run with -race), (b) the stats invariant holds, and (c) after all
// writers finish, every page reads back its final written value — i.e.
// no stale decoded node survives an overlapping write.
func TestConcurrentReadersAndWriters(t *testing.T) {
	const (
		pages   = 64
		writers = 4
		readers = 4
		rounds  = 500
	)
	counting := pagestore.NewCounting(pagestore.NewMem())
	io := NewIO(counting, New(32, ChargeAllAccesses))
	ids := make([]pagestore.PageID, pages)
	final := make([]atomic.Uint64, pages)
	for i := range ids {
		id, err := io.Allocate(nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := WriteNode(io, nil, id, &val{n: 0}, encodeVal); err != nil {
			t.Fatal(err)
		}
	}

	var readsIssued atomic.Int64
	var wg sync.WaitGroup
	// Writers own disjoint page ranges so each page's last write is
	// well-defined; readers roam over everything.
	perWriter := pages / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				p := w*perWriter + r%perWriter
				v := uint64(w)<<32 | uint64(r)
				if err := WriteNode(io, nil, ids[p], &val{n: v}, encodeVal); err != nil {
					t.Error(err)
					return
				}
				final[p].Store(v)
				if r%16 == 0 {
					io.Cache().Invalidate(ids[p])
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for r := 0; r < rounds*4; r++ {
				p := (rd*31 + r*7) % pages
				if _, err := ReadNode(io, nil, ids[p], decodeVal); err != nil {
					t.Error(err)
					return
				}
				readsIssued.Add(1)
			}
		}(rd)
	}
	wg.Wait()

	s := io.Cache().Stats()
	if s.Hits+s.Misses != readsIssued.Load() {
		t.Fatalf("hits(%d) + misses(%d) != reads issued (%d)", s.Hits, s.Misses, readsIssued.Load())
	}
	// Convergence: cached nodes must match the store's final content.
	for p, id := range ids {
		v, err := ReadNode(io, nil, id, decodeVal)
		if err != nil {
			t.Fatal(err)
		}
		if want := final[p].Load(); v.n != want {
			t.Fatalf("page %d converged to %d, want %d (stale cache?)", id, v.n, want)
		}
	}
}

// TestGenerationDropsStaleFill drives the exact race the generation
// stamps exist for: a miss decodes old bytes, a write lands in between,
// and the stale fill must be discarded.
func TestGenerationDropsStaleFill(t *testing.T) {
	c := New(16, ChargeAllAccesses)
	id := pagestore.PageID(7)
	_, gen, ok := c.get(id)
	if ok {
		t.Fatal("empty cache cannot hit")
	}
	c.Update(id, &val{n: 2}) // writer overtakes the in-flight miss
	c.fill(id, gen, &val{n: 1})
	v, _, ok := c.get(id)
	if !ok {
		t.Fatal("expected the written node to be cached")
	}
	if v.(*val).n != 2 {
		t.Fatalf("stale fill overwrote a newer node: got %d, want 2", v.(*val).n)
	}
}

func TestPagePoolRoundTrip(t *testing.T) {
	p := GetPage()
	p[0] = 0xAB
	PutPage(p)
	q := GetPage()
	defer PutPage(q)
	// Nothing to assert about contents (pool gives no guarantees); this
	// exercises the path under -race.
	_ = q
}

func TestCacheCapacityRounding(t *testing.T) {
	for _, capacity := range []int{0, 1, numShards - 1, numShards + 1} {
		c := New(capacity, ChargeAllAccesses)
		for i := 0; i < numShards; i++ {
			c.Update(pagestore.PageID(i), &val{n: uint64(i)})
		}
		if c.Len() == 0 {
			t.Fatalf("capacity %d: cache retained nothing", capacity)
		}
	}
}

func TestStatsString(t *testing.T) {
	// Keep Stats printable for benchmark reporting.
	s := Stats{Hits: 1, Misses: 2, Evictions: 3, Invalidations: 4}
	if got := fmt.Sprintf("%+v", s); got == "" {
		t.Fatal("unprintable stats")
	}
}

// TestCapacityForCoversPaperGrid: the derived capacity covers the page
// working set at every cardinality of the paper's experiment grid — in
// particular the 1M-record point, whose ~125K heap pages dwarf
// DefaultCapacity (the thrash the ROADMAP flagged).
func TestCapacityForCoversPaperGrid(t *testing.T) {
	for _, n := range []int{100_000, 250_000, 500_000, 1_000_000} {
		// Working set mirrors of the storage constants: 8 records per heap
		// page, >=136 entries per index leaf.
		heapPages := (n + 7) / 8
		leafPages := n/136 + 1
		got := CapacityFor(n)
		if got < heapPages+leafPages {
			t.Fatalf("CapacityFor(%d) = %d, below the %d-page working set", n, got, heapPages+leafPages)
		}
		// Sanity: sized, not unbounded (within 2x of the working set).
		if got > 2*(heapPages+leafPages)+DefaultCapacity {
			t.Fatalf("CapacityFor(%d) = %d, absurdly above the working set", n, got)
		}
	}
	if CapacityFor(1_000_000) <= DefaultCapacity {
		t.Fatal("CapacityFor(1M) does not exceed DefaultCapacity: the 1M grid would still thrash")
	}
	// Tiny partitions keep a usable floor.
	if got := CapacityFor(10); got < 1024 {
		t.Fatalf("CapacityFor(10) = %d, below the floor", got)
	}
}
