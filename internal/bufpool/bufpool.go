// Package bufpool is the shared buffer-management layer between the page
// stores and the four page-backed structures built on them (B+-tree,
// MB-Tree, XB-Tree, heap file).
//
// It provides two things:
//
//   - a process-wide sync.Pool of 4096-byte page buffers (GetPage/PutPage)
//     that removes the per-access buffer churn from every read and write
//     path, and
//   - Cache, a sharded, generation-stamped LRU of *decoded* nodes keyed by
//     PageID. A hit skips both the Store.Read copy and the node decode —
//     the two costs that dominate wall-clock time on top of the paper's
//     simulated 10 ms/node-access charge.
//
// Because the paper's experiments charge every node access, the cache
// supports two charge policies. ChargeAllAccesses keeps the node-access
// counters exactly as if no cache existed — a hit is still charged to the
// accounting store (via pagestore.ReadAccountant when available, or by
// performing the raw page read otherwise) — so the figures' shapes are
// preserved while wall-clock time drops. ChargeMissesOnly models a real
// buffer pool where hits are free, for the ablation experiments.
//
// Generation stamps make the cache safe for concurrent readers racing
// writers without holding any lock across a store read: a reader that
// misses records the page's generation, reads and decodes outside the
// lock, and only installs the decoded node if no write or invalidation
// bumped the generation in the meantime.
package bufpool

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sae/internal/genstamp"
	"sae/internal/pagestore"
)

// numShards spreads the cache across independently locked shards so
// concurrent traversals do not serialize on a single mutex. Must be a
// power of two.
const numShards = 16

// DefaultCapacity is the default total number of decoded nodes retained
// across all shards. It is sized to hold the full page working set of a
// 100K-record deployment (~12.8K heap pages plus index nodes, roughly
// 70 MB decoded); an LRU whose capacity trails the working set thrashes —
// every miss pays decode + insert + evict — so callers indexing much
// larger datasets should size the cache to their hot set explicitly.
const DefaultCapacity = 16384

// CapacityFor returns a decoded-node cache capacity sized to the page
// working set of a deployment holding `records` records, so callers can
// size a party's cache from its dataset (or, under sharding, from its
// partition's cardinality) instead of the flat DefaultCapacity.
//
// The working set is dominated by the clustered heap file (500-byte
// records, 8 per 4096-byte page) plus the leaf level of the densest index
// built here (the XB-Tree at ~120 entries per leaf; the B+-tree packs
// ~3x more). Inner nodes are a rounding error at those fanouts. A 25%
// headroom absorbs post-load insertions and the tuple-list pages the
// XB-Tree keeps beside its nodes. The floor keeps tiny partitions from
// degenerating to per-shard caches that cannot hold even one query's
// working set.
func CapacityFor(records int) int {
	const (
		recordsPerHeapPage = 8   // 500-byte records in 4096-byte pages (heapfile.RecordsPerPage)
		minLeafFanout      = 120 // densest leaf layout (xbtree LeafCapacity; mbtree packs 136)
		floor              = 1024
	)
	heap := (records + recordsPerHeapPage - 1) / recordsPerHeapPage
	leaves := records/minLeafFanout + 1
	inner := leaves/minLeafFanout + 1
	c := heap + leaves + inner
	c += c / 4
	if c < floor {
		c = floor
	}
	return c
}

// ChargePolicy controls how decoded-cache hits interact with the paper's
// node-access accounting.
type ChargePolicy uint8

const (
	// ChargeAllAccesses charges a hit as if the page had been read: the
	// node-access counters (and therefore every simulated-time figure)
	// are identical to an uncached run. Only the CPU work is saved.
	ChargeAllAccesses ChargePolicy = iota
	// ChargeMissesOnly leaves hits unaccounted, modeling a conventional
	// buffer pool where only faults reach the disk.
	ChargeMissesOnly
)

// Stats is a snapshot of the cache's counters. Every lookup increments
// exactly one of Hits or Misses, so Hits+Misses equals the number of
// ReadNode calls served through the cache.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
}

// Cache is a sharded LRU of decoded nodes keyed by PageID. All methods
// are safe for concurrent use.
type Cache struct {
	policy ChargePolicy
	shards [numShards]shard

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

type shard struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are *cnode
	byID     map[pagestore.PageID]*list.Element
	// gen stamps each page id with a counter bumped by every write and
	// invalidation; a miss-fill racing a writer is dropped when its
	// recorded generation is stale (see package genstamp for the protocol
	// and why stamps are never deleted).
	gen genstamp.Table[pagestore.PageID]
}

type cnode struct {
	id pagestore.PageID
	v  any
	// pins counts borrowers currently slicing the decoded node (the
	// zero-copy serve path); a pinned node is never evicted, so a borrowed
	// record cannot have its backing page recycled out from under the
	// borrow window. Guarded by the shard mutex.
	pins int
}

// New returns a cache holding up to capacity decoded nodes under the
// given charge policy. capacity values below one node per shard are
// rounded up.
func New(capacity int, policy ChargePolicy) *Cache {
	perShard := (capacity + numShards - 1) / numShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{policy: policy}
	for i := range c.shards {
		c.shards[i] = shard{
			capacity: perShard,
			lru:      list.New(),
			byID:     make(map[pagestore.PageID]*list.Element, perShard),
			gen:      genstamp.New[pagestore.PageID](),
		}
	}
	return c
}

// Policy returns the cache's charge policy.
func (c *Cache) Policy() ChargePolicy { return c.policy }

func (c *Cache) shardFor(id pagestore.PageID) *shard {
	return &c.shards[uint32(id)&(numShards-1)]
}

// get returns the cached node for id. On a miss it returns the page's
// current generation, which the caller must pass back to fill; on a hit
// gen is not looked up (the hot path skips the extra map access).
func (c *Cache) get(id pagestore.PageID) (v any, gen uint64, ok bool) {
	s := c.shardFor(id)
	s.mu.Lock()
	if el, hit := s.byID[id]; hit {
		s.lru.MoveToFront(el)
		v = el.Value.(*cnode).v
		s.mu.Unlock()
		c.hits.Add(1)
		return v, 0, true
	}
	gen = s.gen.Current(id)
	s.mu.Unlock()
	c.misses.Add(1)
	return nil, gen, false
}

// getPin is get plus a pin taken under the same lock on a hit, so the
// entry cannot be evicted between lookup and borrow.
func (c *Cache) getPin(id pagestore.PageID) (v any, gen uint64, ok bool) {
	s := c.shardFor(id)
	s.mu.Lock()
	if el, hit := s.byID[id]; hit {
		s.lru.MoveToFront(el)
		cn := el.Value.(*cnode)
		cn.pins++
		v = cn.v
		s.mu.Unlock()
		c.hits.Add(1)
		return v, 0, true
	}
	gen = s.gen.Current(id)
	s.mu.Unlock()
	c.misses.Add(1)
	return nil, gen, false
}

// fillPinned is fill plus a pin on whatever entry ends up holding v. It
// reports whether a pin was taken: a fill dropped for staleness leaves
// nothing to pin (the caller keeps using its private decoded node, which
// needs no protection).
func (c *Cache) fillPinned(id pagestore.PageID, gen uint64, v any) bool {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen.Stale(id, gen) {
		return false
	}
	if el, ok := s.byID[id]; ok {
		cn := el.Value.(*cnode)
		cn.v = v
		cn.pins++
		s.lru.MoveToFront(el)
		return true
	}
	s.insert(c, id, v).pins++
	return true
}

// Unpin releases one pin on id. Unpinning a page that was invalidated (or
// evicted by an Invalidate) while borrowed is a no-op: the borrower's
// decoded node stays alive through its own reference.
func (c *Cache) Unpin(id pagestore.PageID) {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byID[id]; ok {
		if cn := el.Value.(*cnode); cn.pins > 0 {
			cn.pins--
		}
	}
}

// PinnedCount returns the number of currently pinned nodes (tests and
// leak diagnostics: every serve must return it to zero).
func (c *Cache) PinnedCount() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			if el.Value.(*cnode).pins > 0 {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// genOf returns the page's current generation (the cold fallback for a
// hit whose cached value had an unexpected type).
func (c *Cache) genOf(id pagestore.PageID) uint64 {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen.Current(id)
}

// fill installs a node decoded outside the lock, unless a write or
// invalidation raced the read (the generation moved on).
func (c *Cache) fill(id pagestore.PageID, gen uint64, v any) {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen.Stale(id, gen) {
		return
	}
	if el, ok := s.byID[id]; ok {
		el.Value.(*cnode).v = v
		s.lru.MoveToFront(el)
		return
	}
	s.insert(c, id, v)
}

// Update refreshes the cached node after a successful page write
// (write-through) and bumps the generation so stale in-flight fills are
// dropped.
func (c *Cache) Update(id pagestore.PageID, v any) {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen.Bump(id)
	if el, ok := s.byID[id]; ok {
		el.Value.(*cnode).v = v
		s.lru.MoveToFront(el)
		return
	}
	s.insert(c, id, v)
}

// Invalidate drops the cached node for id (freed or failed-write pages)
// and bumps the generation.
func (c *Cache) Invalidate(id pagestore.PageID) {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen.Bump(id)
	if el, ok := s.byID[id]; ok {
		s.lru.Remove(el)
		delete(s.byID, id)
		c.invalidations.Add(1)
	}
}

// insert adds a fresh entry, evicting the least-recently-used unpinned
// entries from the shard's LRU tail on overflow. If every resident entry
// is pinned the shard temporarily overflows its capacity instead — a
// borrow window is short (one serve call) and never spans more than a
// handful of pages per request, so the overshoot is bounded by the number
// of in-flight requests. Caller holds s.mu.
func (s *shard) insert(c *Cache, id pagestore.PageID, v any) *cnode {
	cn := &cnode{id: id, v: v}
	s.byID[id] = s.lru.PushFront(cn)
	for el := s.lru.Back(); el != nil && s.lru.Len() > s.capacity; {
		prev := el.Prev()
		// Never evict the entry being inserted: under all-pinned pressure
		// it is the only unpinned one, and evicting it would orphan the
		// pin fillPinned is about to take (a later Unpin could then
		// release a different borrower's pin on a refilled entry).
		if old := el.Value.(*cnode); old != cn && old.pins == 0 {
			s.lru.Remove(el)
			delete(s.byID, old.id)
			c.evictions.Add(1)
		}
		el = prev
	}
	return cn
}

// Len returns the number of decoded nodes currently cached.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// pagePool recycles page-sized buffers across all stores and structures.
var pagePool = sync.Pool{
	New: func() any { return new([pagestore.PageSize]byte) },
}

// GetPage returns a page buffer from the pool. Contents are undefined;
// encoders must overwrite the full page (all node encoders here do).
func GetPage() *[pagestore.PageSize]byte {
	return pagePool.Get().(*[pagestore.PageSize]byte)
}

// PutPage returns a buffer to the pool. The caller must not retain it.
func PutPage(p *[pagestore.PageSize]byte) {
	pagePool.Put(p)
}
