package bufpool

import (
	"fmt"
	"sync"
	"testing"

	"sae/internal/exec"
	"sae/internal/pagestore"
)

// pinFixture builds an IO over n written pages whose decoded form is the
// page's first byte.
func pinFixture(t *testing.T, n, capacity int) (*IO, *Cache) {
	t.Helper()
	store := pagestore.NewMem()
	cache := New(capacity, ChargeMissesOnly)
	io := NewIO(store, cache)
	for i := 0; i < n; i++ {
		id, err := io.Allocate(nil)
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		if err := WriteNode(io, nil, id, byte(i), func(buf []byte, v byte) {
			buf[0] = v
		}); err != nil {
			t.Fatalf("WriteNode: %v", err)
		}
	}
	return io, cache
}

func decodeFirst(buf []byte) byte { return buf[0] }

// TestPinnedNodeSurvivesEviction floods a tiny cache while one node is
// pinned: every unpinned node may be evicted, the pinned one must not.
func TestPinnedNodeSurvivesEviction(t *testing.T) {
	io, cache := pinFixture(t, 64, numShards) // one node per shard
	v, pinned, err := ReadNodePinned(io, nil, 0, decodeFirst)
	if err != nil || !pinned {
		t.Fatalf("ReadNodePinned: v=%v pinned=%v err=%v", v, pinned, err)
	}
	if cache.PinnedCount() != 1 {
		t.Fatalf("PinnedCount = %d, want 1", cache.PinnedCount())
	}
	// Page ids share shards modulo numShards: flood page 0's shard.
	for round := 0; round < 3; round++ {
		for id := pagestore.PageID(numShards); id < 64; id += numShards {
			if _, err := ReadNode(io, nil, id, decodeFirst); err != nil {
				t.Fatalf("ReadNode(%d): %v", id, err)
			}
		}
	}
	// A read of page 0 must still hit: the pin kept it resident.
	before := cache.Stats().Hits
	if _, err := ReadNode(io, nil, 0, decodeFirst); err != nil {
		t.Fatalf("ReadNode(0): %v", err)
	}
	if cache.Stats().Hits != before+1 {
		t.Fatal("pinned node was evicted under LRU pressure")
	}
	cache.Unpin(0)
	if cache.PinnedCount() != 0 {
		t.Fatalf("PinnedCount = %d after Unpin, want 0", cache.PinnedCount())
	}
}

// TestUnpinnedNodeEvicts is the control: without the pin the same flood
// evicts page 0.
func TestUnpinnedNodeEvicts(t *testing.T) {
	io, cache := pinFixture(t, 64, numShards)
	if _, err := ReadNode(io, nil, 0, decodeFirst); err != nil {
		t.Fatalf("ReadNode(0): %v", err)
	}
	for id := pagestore.PageID(numShards); id < 64; id += numShards {
		if _, err := ReadNode(io, nil, id, decodeFirst); err != nil {
			t.Fatalf("ReadNode(%d): %v", id, err)
		}
	}
	before := cache.Stats().Misses
	if _, err := ReadNode(io, nil, 0, decodeFirst); err != nil {
		t.Fatalf("ReadNode(0): %v", err)
	}
	if cache.Stats().Misses != before+1 {
		t.Fatal("expected page 0 to have been evicted without a pin")
	}
}

// TestPinDuringScanSkipsFill: a scan-section read bypasses admission, so
// ReadNodePinned must report unpinned and leave nothing behind.
func TestPinDuringScanSkipsFill(t *testing.T) {
	io, cache := pinFixture(t, 4, 16)
	cache.Invalidate(1) // write-through cached it at build time; force a miss
	ctx := exec.NewContext()
	ctx.BeginScan()
	_, pinned, err := ReadNodePinned(io, ctx, 1, decodeFirst)
	ctx.EndScan()
	if err != nil {
		t.Fatalf("ReadNodePinned: %v", err)
	}
	if pinned {
		t.Fatal("a scan-section fill skip must not report a pin")
	}
	if cache.PinnedCount() != 0 {
		t.Fatalf("PinnedCount = %d, want 0", cache.PinnedCount())
	}
}

// TestPinnedInvalidateThenUnpin: invalidating a pinned page drops the
// entry; the later Unpin must be a harmless no-op and fresh pins must
// still work.
func TestPinnedInvalidateThenUnpin(t *testing.T) {
	io, cache := pinFixture(t, 4, 16)
	if _, pinned, err := ReadNodePinned(io, nil, 2, decodeFirst); err != nil || !pinned {
		t.Fatalf("ReadNodePinned: pinned=%v err=%v", pinned, err)
	}
	cache.Invalidate(2)
	cache.Unpin(2) // entry gone; must not panic or corrupt
	if _, pinned, err := ReadNodePinned(io, nil, 2, decodeFirst); err != nil || !pinned {
		t.Fatalf("re-pin after invalidate: pinned=%v err=%v", pinned, err)
	}
	cache.Unpin(2)
	if cache.PinnedCount() != 0 {
		t.Fatalf("PinnedCount = %d, want 0", cache.PinnedCount())
	}
}

// TestFillPinnedUnderAllPinnedPressure pins every resident node in a
// one-node-per-shard cache, then fills-and-pins new pages into the same
// shards: the insert must never evict the entry it is about to pin (the
// orphaned-pin bug), so every pin stays accounted and unpins drain to
// zero.
func TestFillPinnedUnderAllPinnedPressure(t *testing.T) {
	io, cache := pinFixture(t, 3*numShards, numShards)
	// Pin one resident node per shard (ids 0..numShards-1 were written
	// last... order unimportant: pin whatever is resident).
	var held []pagestore.PageID
	for id := pagestore.PageID(0); id < 3*numShards; id++ {
		if _, ok, err := TryPinned[byte](io, nil, id); err != nil {
			t.Fatalf("TryPinned(%d): %v", id, err)
		} else if ok {
			held = append(held, id)
		}
	}
	if len(held) == 0 {
		t.Fatal("fixture left nothing resident to pin")
	}
	// Now force fills into full shards whose entries are all pinned.
	for id := pagestore.PageID(0); id < 3*numShards; id++ {
		cache.Invalidate(id + 1000) // no-op spacing; keeps ids distinct
	}
	for _, id := range held {
		probe := (id + numShards) % (3 * numShards) // same shard, different page
		cache.Invalidate(probe)                     // force a real miss
		v, pinned, err := ReadNodePinned(io, nil, probe, decodeFirst)
		if err != nil {
			t.Fatalf("ReadNodePinned(%d): %v", probe, err)
		}
		if v != byte(probe) {
			t.Fatalf("page %d decoded to %d", probe, v)
		}
		if pinned {
			// The freshly pinned entry must actually be resident: a hit
			// right now must not miss.
			before := cache.Stats().Hits
			if _, err := ReadNode(io, nil, probe, decodeFirst); err != nil {
				t.Fatalf("ReadNode(%d): %v", probe, err)
			}
			if cache.Stats().Hits != before+1 {
				t.Fatalf("pinned fill of page %d was evicted by its own insert", probe)
			}
			cache.Unpin(probe)
		}
	}
	for _, id := range held {
		cache.Unpin(id)
	}
	if n := cache.PinnedCount(); n != 0 {
		t.Fatalf("PinnedCount = %d after draining all pins, want 0", n)
	}
}

// TestConcurrentPinUnpin hammers pin/read/unpin from many goroutines
// against a cache smaller than the working set (run under -race in CI).
func TestConcurrentPinUnpin(t *testing.T) {
	io, cache := pinFixture(t, 128, 32)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				id := pagestore.PageID((g*31 + i) % 128)
				v, pinned, err := ReadNodePinned(io, nil, id, decodeFirst)
				if err != nil {
					errs <- fmt.Errorf("ReadNodePinned(%d): %w", id, err)
					return
				}
				if v != byte(id) {
					errs <- fmt.Errorf("page %d decoded to %d", id, v)
					return
				}
				if pinned {
					cache.Unpin(id)
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if cache.PinnedCount() != 0 {
		t.Fatalf("PinnedCount = %d after drain, want 0", cache.PinnedCount())
	}
}
