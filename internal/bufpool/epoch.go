package bufpool

import "sae/internal/pagestore"

// PinEpoch batches pin lifetimes for a burst serve. The per-request serve
// path pins each heap page for exactly the window its records are being
// borrowed and unpins on the page transition; a burst instead pins every
// page any of its queries touches and releases them all in ONE epoch at
// the end of the burst, so a page shared by several queries in the burst
// is decoded once and its borrow windows merge.
//
// Pins are counters on the cached entry, so recording the same page twice
// is correct: Release undoes exactly the pins this epoch took, no matter
// how many queries shared the page. An epoch belongs to one goroutine
// (one serve lane); Release is idempotent and MUST be called (normally
// deferred) so that an error or a context cancellation mid-burst still
// returns Cache.PinnedCount to zero.
type PinEpoch struct {
	cache *Cache
	ids   []pagestore.PageID
}

// NewPinEpoch returns an epoch releasing into cache (nil cache is allowed
// and makes every method a no-op, matching uncached IO).
func NewPinEpoch(cache *Cache) PinEpoch {
	return PinEpoch{cache: cache}
}

// Note records one pin taken on id, to be released with the epoch.
func (e *PinEpoch) Note(id pagestore.PageID) {
	if e.cache != nil {
		e.ids = append(e.ids, id)
	}
}

// Len returns the number of pins the epoch currently holds.
func (e *PinEpoch) Len() int { return len(e.ids) }

// Release unpins every recorded page and resets the epoch for reuse.
// Safe to call more than once; the second call is a no-op.
func (e *PinEpoch) Release() {
	if e.cache == nil {
		return
	}
	for _, id := range e.ids {
		e.cache.Unpin(id)
	}
	e.ids = e.ids[:0]
}
