package bufpool

import (
	"sae/internal/exec"
	"sae/internal/pagestore"
)

// IO couples a page store with an optional decoded-node cache. It is the
// common read/write path shared by the B+-tree, MB-Tree, XB-Tree and heap
// file: each structure supplies its own decode/encode functions and gets
// pooled page buffers, write-through caching and charge-policy accounting
// for free.
//
// Every access method takes the request's *exec.Context (nil for load-time
// work) and charges it in lockstep with the global accounting: whenever the
// store stack underneath observes an access, the context observes the same
// access. Per-request counters therefore match what a serial store.Stats()
// delta would have measured, but stay exact when many requests run at once.
type IO struct {
	store pagestore.Store
	cache *Cache
	// acct charges a hit without performing the read; non-nil only under
	// ChargeAllAccesses when the store supports direct accounting.
	acct pagestore.ReadAccountant
}

// NewIO wraps store; cache may be nil for uncached access.
func NewIO(store pagestore.Store, cache *Cache) *IO {
	io := &IO{store: store}
	io.SetCache(cache)
	return io
}

// Store returns the underlying page store.
func (io *IO) Store() pagestore.Store { return io.store }

// Cache returns the attached decoded-node cache (nil when uncached).
func (io *IO) Cache() *Cache { return io.cache }

// SetCache attaches (or, with nil, detaches) a decoded-node cache.
func (io *IO) SetCache(c *Cache) {
	io.cache = c
	io.acct = nil
	if c != nil && c.policy == ChargeAllAccesses {
		if a, ok := io.store.(pagestore.ReadAccountant); ok {
			io.acct = a
		}
	}
}

// Allocate reserves a fresh page. The id is dropped from the cache in
// case the store recycled a previously freed (and cached) page.
func (io *IO) Allocate(ctx *exec.Context) (pagestore.PageID, error) {
	id, err := io.store.Allocate()
	if err == nil {
		ctx.AccountAlloc()
		if io.cache != nil {
			io.cache.Invalidate(id)
		}
	}
	return id, err
}

// Discard drops any cached node for id without touching the store. Call
// it when an in-memory node may have been mutated but a later step of
// the same operation failed before WriteNode could persist it — e.g. a
// node split whose sibling allocation failed. Without the discard, the
// cache would keep serving a state the store never saw.
func (io *IO) Discard(id pagestore.PageID) {
	if io.cache != nil {
		io.cache.Invalidate(id)
	}
}

// Free releases a page and invalidates its cached node.
func (io *IO) Free(ctx *exec.Context, id pagestore.PageID) error {
	if io.cache != nil {
		io.cache.Invalidate(id)
	}
	err := io.store.Free(id)
	if err == nil {
		ctx.AccountFree()
	}
	return err
}

// ReadRaw reads a page directly from the store, bypassing the decoded
// cache, and charges the request. Structures whose uncached fast path
// decodes only part of a page (the heap file's single-slot reads) use it.
func (io *IO) ReadRaw(ctx *exec.Context, id pagestore.PageID, buf []byte) error {
	if err := io.store.Read(id, buf); err != nil {
		return err
	}
	ctx.AccountRead()
	return nil
}

// ReadNode returns the decoded node for page id, consulting the cache
// first. On a miss the page is read into a pooled buffer, decoded, and
// the decoded node installed (generation-checked, so a concurrent write
// cannot leave a stale node behind) — unless the request is inside a
// declared scan section, in which case the fill is skipped so a long
// scan cannot evict the cache's hot set (scan-resistant admission).
//
// Callers that mutate the returned node must hold their structure's
// write lock and follow up with WriteNode, which refreshes the cache;
// read-only callers may share the node freely.
func ReadNode[N any](io *IO, ctx *exec.Context, id pagestore.PageID, decode func([]byte) N) (N, error) {
	c := io.cache
	if c == nil {
		return readNodeDirect(io, ctx, id, decode)
	}
	v, gen, ok := c.get(id)
	if ok {
		if n, typed := v.(N); typed {
			if err := io.chargeHit(ctx, id); err != nil {
				var zero N
				return zero, err
			}
			return n, nil
		}
		// A different consumer's node type under this id — treat as a
		// miss and overwrite below. Cannot happen while page ids are
		// disjoint per structure, but decoding is the safe fallback.
		gen = c.genOf(id)
	}
	buf := GetPage()
	defer PutPage(buf)
	if err := io.store.Read(id, buf[:]); err != nil {
		var zero N
		return zero, err
	}
	ctx.AccountRead()
	n := decode(buf[:])
	if !ctx.Scanning() {
		c.fill(id, gen, n)
	}
	return n, nil
}

// ReadNodePinned is ReadNode with a pin taken on the cached entry, for
// callers that borrow slices of the decoded node (the zero-copy serve
// path) instead of copying out of it. It reports whether a pin was taken;
// when pinned is true the caller must call io.Cache().Unpin(id) once the
// borrow ends. pinned is false when the node never entered the cache (no
// cache attached, a scan-section fill skip, or a fill dropped for
// staleness) — the caller then holds the only reference and needs no pin.
//
// The borrow discipline is unchanged from ReadNode: borrowed slices are
// only valid while the structure's read lock is held, because writers
// mutate decoded nodes in place under the write lock. The pin additionally
// guarantees the entry survives concurrent readers' LRU pressure, so a
// long encode cannot have its working set evicted and re-decoded
// mid-serve.
func ReadNodePinned[N any](io *IO, ctx *exec.Context, id pagestore.PageID, decode func([]byte) N) (n N, pinned bool, err error) {
	c := io.cache
	if c == nil {
		n, err = readNodeDirect(io, ctx, id, decode)
		return n, false, err
	}
	v, gen, ok := c.getPin(id)
	if ok {
		if typed, isN := v.(N); isN {
			if err := io.chargeHit(ctx, id); err != nil {
				c.Unpin(id)
				var zero N
				return zero, false, err
			}
			return typed, true, nil
		}
		c.Unpin(id)
		gen = c.genOf(id)
	}
	buf := GetPage()
	defer PutPage(buf)
	if err := io.store.Read(id, buf[:]); err != nil {
		var zero N
		return zero, false, err
	}
	ctx.AccountRead()
	n = decode(buf[:])
	if !ctx.Scanning() {
		pinned = c.fillPinned(id, gen, n)
	}
	return n, pinned, nil
}

// TryPinned returns the cached decoded node for id, pinned, WITHOUT
// touching the store on a miss. The long-scan serve tail uses it: a
// resident page is served (and charged) exactly like any cache hit, and
// only a true miss falls back to the caller's raw page read — so the
// scan tail neither re-reads resident pages nor charges accesses a
// cached GetMany would not have charged.
func TryPinned[N any](io *IO, ctx *exec.Context, id pagestore.PageID) (n N, ok bool, err error) {
	c := io.cache
	if c == nil {
		return n, false, nil
	}
	v, _, hit := c.getPin(id)
	if !hit {
		return n, false, nil
	}
	typed, isN := v.(N)
	if !isN {
		c.Unpin(id)
		return n, false, nil
	}
	if err := io.chargeHit(ctx, id); err != nil {
		c.Unpin(id)
		var zero N
		return zero, false, err
	}
	return typed, true, nil
}

func readNodeDirect[N any](io *IO, ctx *exec.Context, id pagestore.PageID, decode func([]byte) N) (N, error) {
	buf := GetPage()
	defer PutPage(buf)
	if err := io.store.Read(id, buf[:]); err != nil {
		var zero N
		return zero, err
	}
	ctx.AccountRead()
	return decode(buf[:]), nil
}

// chargeHit applies the cache's charge policy to a hit: account the read
// directly when the store supports it, otherwise — under
// ChargeAllAccesses — perform the raw page read so every wrapper in the
// store stack (Counting, Cache) observes exactly the accesses an
// uncached run would issue. The request context is charged whenever the
// store stack is.
func (io *IO) chargeHit(ctx *exec.Context, id pagestore.PageID) error {
	if io.acct != nil {
		io.acct.AccountRead(id)
		ctx.AccountRead()
		return nil
	}
	if io.cache.policy != ChargeAllAccesses {
		return nil
	}
	buf := GetPage()
	defer PutPage(buf)
	if err := io.store.Read(id, buf[:]); err != nil {
		return err
	}
	ctx.AccountRead()
	return nil
}

// WriteNode encodes the node into a pooled buffer, writes the page, and
// refreshes the cache write-through. A failed write invalidates instead,
// so the cache never serves a node the store rejected.
func WriteNode[N any](io *IO, ctx *exec.Context, id pagestore.PageID, n N, encode func([]byte, N)) error {
	buf := GetPage()
	defer PutPage(buf)
	encode(buf[:], n)
	if err := io.store.Write(id, buf[:]); err != nil {
		if io.cache != nil {
			io.cache.Invalidate(id)
		}
		return err
	}
	ctx.AccountWrite()
	if io.cache != nil {
		io.cache.Update(id, n)
	}
	return nil
}
