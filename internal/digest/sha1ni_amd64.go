//go:build amd64

package digest

import (
	"encoding/binary"
	"os"

	"sae/internal/record"
)

// sha1blockNI runs the SHA-NI compression over len(p)/64 blocks.
// len(p) must be a non-zero multiple of 64.
//
//go:noescape
func sha1blockNI(h *[5]uint32, p []byte)

// cpuidx executes CPUID with the given leaf/subleaf.
func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// hasSHANI reports whether the CPU implements the SHA new instructions
// (CPUID.(EAX=7,ECX=0):EBX bit 29) plus SSSE3 for the byte shuffle
// (CPUID.1:ECX bit 9). SAE_DISABLE_SHANI=1 forces the pure-Go fallback,
// used by CI to exercise both block implementations.
func detectSHANI() bool {
	if os.Getenv("SAE_DISABLE_SHANI") == "1" {
		return false
	}
	maxLeaf, _, _, _ := cpuidx(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidx(1, 0)
	if ecx1&(1<<9) == 0 { // SSSE3
		return false
	}
	_, ebx7, _, _ := cpuidx(7, 0)
	return ebx7&(1<<29) != 0 // SHA
}

// sha1block2NI runs the two-lane SHA-NI compression: h holds two states
// back to back, p1/p2 are equal-length multiples of 64 bytes.
//
//go:noescape
func sha1block2NI(h *[10]uint32, p1, p2 []byte)

func init() {
	Accelerated = detectSHANI()
	if Accelerated {
		hashPair = sumRecordPairNI
	}
}

// sumRecordPairNI hashes two canonical record encodings through the
// two-lane core: both bulk sections in one interleaved pass, then both
// padded tails in a second. Fixed record size means the padding layout is
// static. Allocation-free.
func sumRecordPairNI(a, b []byte) (da, db Digest) {
	const bulk = record.Size &^ 63 // 448
	const rem = record.Size - bulk // 52
	var h [10]uint32
	copy(h[0:5], sha1init[:])
	copy(h[5:10], sha1init[:])
	sha1block2NI(&h, a[:bulk], b[:bulk])
	var tails [128]byte
	copy(tails[0:rem], a[bulk:record.Size])
	tails[rem] = 0x80
	binary.BigEndian.PutUint64(tails[56:64], record.Size<<3)
	copy(tails[64:64+rem], b[bulk:record.Size])
	tails[64+rem] = 0x80
	binary.BigEndian.PutUint64(tails[120:128], record.Size<<3)
	sha1block2NI(&h, tails[:64], tails[64:])
	for i := 0; i < 5; i++ {
		binary.BigEndian.PutUint32(da[4*i:], h[i])
		binary.BigEndian.PutUint32(db[4*i:], h[5+i])
	}
	return da, db
}

// compress dispatches to the SHA-NI block when available. Both callees are
// direct calls (sha1blockNI is //go:noescape), so state and padding
// scratches stay on the caller's stack.
func compress(h *[5]uint32, p []byte) {
	if Accelerated {
		sha1blockNI(h, p)
	} else {
		sha1blockGeneric(h, p)
	}
}
