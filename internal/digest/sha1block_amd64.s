// SHA-1 block function using the x86 SHA New Instructions
// (SHA1RNDS4/SHA1NEXTE/SHA1MSG1/SHA1MSG2), which crypto/sha1 does not use.
// The record-digest path hashes millions of 500-byte records; on SHA-NI
// hardware this routine runs the compression ~3x faster than the stdlib's
// AVX2 schedule, which is what makes the client-verification fast path
// beat the paper's Figure 7 numbers on a single core.
//
// Register plan:
//
//	X0 = ABCD state (A in bits 127:96 .. D in bits 31:0)
//	X1 = E0, X2 = E1 (E lives in bits 127:96)
//	X3..X6 = MSG0..MSG3 (four message dwords each, W[t] in bits 127:96)
//	X7 = byte-shuffle mask, X8/X9 = per-block state saves
//
// The 20 four-round groups follow the canonical SHA-NI rotation: group g
// consumes MSG[g%4] and E[g%2], while SHA1MSG1/PXOR/SHA1MSG2 pipeline the
// message schedule for groups g+1..g+3.

#include "textflag.h"

DATA shufMask<>+0(SB)/8, $0x08090a0b0c0d0e0f
DATA shufMask<>+8(SB)/8, $0x0001020304050607
GLOBL shufMask<>(SB), RODATA|NOPTR, $16

// func sha1blockNI(h *[5]uint32, p []byte)
// len(p) must be a non-zero multiple of 64.
TEXT ·sha1blockNI(SB), NOSPLIT, $0-32
	MOVQ h+0(FP), DI
	MOVQ p_base+8(FP), SI
	MOVQ p_len+16(FP), DX
	SHRQ $6, DX
	JZ   done

	MOVOU shufMask<>(SB), X7

	// Load state: h[0..3] reversed into ABCD, h[4] into E0's top dword.
	MOVOU (DI), X0
	PSHUFD $0x1B, X0, X0
	MOVL   16(DI), AX
	MOVQ   AX, X1
	PSLLDQ $12, X1

loop:
	MOVO X0, X8
	MOVO X1, X9

	// Rounds 0-3.
	MOVOU    0(SI), X3
	PSHUFB    X7, X3
	PADDD     X3, X1
	MOVO    X0, X2
	SHA1RNDS4 $0, X1, X0

	// Rounds 4-7.
	MOVOU    16(SI), X4
	PSHUFB    X7, X4
	SHA1NEXTE X4, X2
	MOVO    X0, X1
	SHA1RNDS4 $0, X2, X0
	SHA1MSG1  X4, X3

	// Rounds 8-11.
	MOVOU    32(SI), X5
	PSHUFB    X7, X5
	SHA1NEXTE X5, X1
	MOVO    X0, X2
	SHA1RNDS4 $0, X1, X0
	SHA1MSG1  X5, X4
	PXOR      X5, X3

	// Rounds 12-15.
	MOVOU    48(SI), X6
	PSHUFB    X7, X6
	SHA1NEXTE X6, X2
	MOVO    X0, X1
	SHA1MSG2  X6, X3
	SHA1RNDS4 $0, X2, X0
	SHA1MSG1  X6, X5
	PXOR      X6, X4

	// Rounds 16-19.
	SHA1NEXTE X3, X1
	MOVO    X0, X2
	SHA1MSG2  X3, X4
	SHA1RNDS4 $0, X1, X0
	SHA1MSG1  X3, X6
	PXOR      X3, X5

	// Rounds 20-23.
	SHA1NEXTE X4, X2
	MOVO    X0, X1
	SHA1MSG2  X4, X5
	SHA1RNDS4 $1, X2, X0
	SHA1MSG1  X4, X3
	PXOR      X4, X6

	// Rounds 24-27.
	SHA1NEXTE X5, X1
	MOVO    X0, X2
	SHA1MSG2  X5, X6
	SHA1RNDS4 $1, X1, X0
	SHA1MSG1  X5, X4
	PXOR      X5, X3

	// Rounds 28-31.
	SHA1NEXTE X6, X2
	MOVO    X0, X1
	SHA1MSG2  X6, X3
	SHA1RNDS4 $1, X2, X0
	SHA1MSG1  X6, X5
	PXOR      X6, X4

	// Rounds 32-35.
	SHA1NEXTE X3, X1
	MOVO    X0, X2
	SHA1MSG2  X3, X4
	SHA1RNDS4 $1, X1, X0
	SHA1MSG1  X3, X6
	PXOR      X3, X5

	// Rounds 36-39.
	SHA1NEXTE X4, X2
	MOVO    X0, X1
	SHA1MSG2  X4, X5
	SHA1RNDS4 $1, X2, X0
	SHA1MSG1  X4, X3
	PXOR      X4, X6

	// Rounds 40-43.
	SHA1NEXTE X5, X1
	MOVO    X0, X2
	SHA1MSG2  X5, X6
	SHA1RNDS4 $2, X1, X0
	SHA1MSG1  X5, X4
	PXOR      X5, X3

	// Rounds 44-47.
	SHA1NEXTE X6, X2
	MOVO    X0, X1
	SHA1MSG2  X6, X3
	SHA1RNDS4 $2, X2, X0
	SHA1MSG1  X6, X5
	PXOR      X6, X4

	// Rounds 48-51.
	SHA1NEXTE X3, X1
	MOVO    X0, X2
	SHA1MSG2  X3, X4
	SHA1RNDS4 $2, X1, X0
	SHA1MSG1  X3, X6
	PXOR      X3, X5

	// Rounds 52-55.
	SHA1NEXTE X4, X2
	MOVO    X0, X1
	SHA1MSG2  X4, X5
	SHA1RNDS4 $2, X2, X0
	SHA1MSG1  X4, X3
	PXOR      X4, X6

	// Rounds 56-59.
	SHA1NEXTE X5, X1
	MOVO    X0, X2
	SHA1MSG2  X5, X6
	SHA1RNDS4 $2, X1, X0
	SHA1MSG1  X5, X4
	PXOR      X5, X3

	// Rounds 60-63.
	SHA1NEXTE X6, X2
	MOVO    X0, X1
	SHA1MSG2  X6, X3
	SHA1RNDS4 $3, X2, X0
	SHA1MSG1  X6, X5
	PXOR      X6, X4

	// Rounds 64-67.
	SHA1NEXTE X3, X1
	MOVO    X0, X2
	SHA1MSG2  X3, X4
	SHA1RNDS4 $3, X1, X0
	SHA1MSG1  X3, X6
	PXOR      X3, X5

	// Rounds 68-71.
	SHA1NEXTE X4, X2
	MOVO    X0, X1
	SHA1MSG2  X4, X5
	SHA1RNDS4 $3, X2, X0
	PXOR      X4, X6

	// Rounds 72-75.
	SHA1NEXTE X5, X1
	MOVO    X0, X2
	SHA1MSG2  X5, X6
	SHA1RNDS4 $3, X1, X0

	// Rounds 76-79.
	SHA1NEXTE X6, X2
	MOVO    X0, X1
	SHA1RNDS4 $3, X2, X0

	// Fold this block's output into the running state.
	SHA1NEXTE X9, X1
	PADDD     X8, X0

	ADDQ $64, SI
	DECQ DX
	JNZ  loop

	// Store state back: ABCD re-reversed, E extracted from the top dword.
	PSHUFD $0x1B, X0, X3
	MOVOU X3, (DI)
	PSRLDQ $12, X1
	MOVQ   X1, AX
	MOVL   AX, 16(DI)

done:
	RET

// Two-lane SHA-NI block function: hashes two independent, equal-length
// messages in one pass. A single SHA-1 stream is latency-bound on the
// SHA1RNDS4 dependency chain; interleaving a second independent chain
// lets the out-of-order core overlap them, which is the batch-digesting
// fast path's per-record win (every query result and TE load hashes many
// independent records).
//
// Lane A: ABCD=X0 E0=X1 E1=X2 MSG0..3=X3..X6
// Lane B: ABCD=X8 E0=X9 E1=X10 MSG0..3=X11..X14
// X7 = shuffle mask. Per-block state saves live on the stack.
//
// The 20 four-round groups alternate lane A / lane B at group
// granularity — well inside the OoO window, so the two sha1rnds4 chains
// overlap without hand-interleaving each instruction.

#define ROUND2(K, EA, EB, CA, CB, MA, MB, M2A, M2B, M1A, M1B, PXA, PXB) \
	SHA1NEXTE MA, EA                                                  \
	MOVO      X0, CA                                                  \
	SHA1MSG2  MA, M2A                                                 \
	SHA1RNDS4 $K, EA, X0                                              \
	SHA1MSG1  MA, M1A                                                 \
	PXOR      MA, PXA                                                 \
	SHA1NEXTE MB, EB                                                  \
	MOVO      X8, CB                                                  \
	SHA1MSG2  MB, M2B                                                 \
	SHA1RNDS4 $K, EB, X8                                              \
	SHA1MSG1  MB, M1B                                                 \
	PXOR      MB, PXB

// func sha1block2NI(h *[10]uint32, p1, p2 []byte)
// h holds two states back to back; len(p1) == len(p2), a non-zero
// multiple of 64.
TEXT ·sha1block2NI(SB), NOSPLIT, $64-56
	MOVQ h+0(FP), DI
	MOVQ p1_base+8(FP), SI
	MOVQ p2_base+32(FP), BX
	MOVQ p1_len+16(FP), DX
	SHRQ $6, DX
	JZ   done2

	MOVOU shufMask<>(SB), X7

	// Lane A state.
	MOVOU  (DI), X0
	PSHUFD $0x1B, X0, X0
	MOVL   16(DI), AX
	MOVQ   AX, X1
	PSLLDQ $12, X1

	// Lane B state.
	MOVOU  20(DI), X8
	PSHUFD $0x1B, X8, X8
	MOVL   36(DI), AX
	MOVQ   AX, X9
	PSLLDQ $12, X9

loop2:
	MOVOU X0, 0(SP)
	MOVOU X1, 16(SP)
	MOVOU X8, 32(SP)
	MOVOU X9, 48(SP)

	// Rounds 0-3.
	MOVOU     0(SI), X3
	PSHUFB    X7, X3
	PADDD     X3, X1
	MOVO      X0, X2
	SHA1RNDS4 $0, X1, X0
	MOVOU     0(BX), X11
	PSHUFB    X7, X11
	PADDD     X11, X9
	MOVO      X8, X10
	SHA1RNDS4 $0, X9, X8

	// Rounds 4-7.
	MOVOU     16(SI), X4
	PSHUFB    X7, X4
	SHA1NEXTE X4, X2
	MOVO      X0, X1
	SHA1RNDS4 $0, X2, X0
	SHA1MSG1  X4, X3
	MOVOU     16(BX), X12
	PSHUFB    X7, X12
	SHA1NEXTE X12, X10
	MOVO      X8, X9
	SHA1RNDS4 $0, X10, X8
	SHA1MSG1  X12, X11

	// Rounds 8-11.
	MOVOU     32(SI), X5
	PSHUFB    X7, X5
	SHA1NEXTE X5, X1
	MOVO      X0, X2
	SHA1RNDS4 $0, X1, X0
	SHA1MSG1  X5, X4
	PXOR      X5, X3
	MOVOU     32(BX), X13
	PSHUFB    X7, X13
	SHA1NEXTE X13, X9
	MOVO      X8, X10
	SHA1RNDS4 $0, X9, X8
	SHA1MSG1  X13, X12
	PXOR      X13, X11

	// Rounds 12-15.
	MOVOU     48(SI), X6
	PSHUFB    X7, X6
	SHA1NEXTE X6, X2
	MOVO      X0, X1
	SHA1MSG2  X6, X3
	SHA1RNDS4 $0, X2, X0
	SHA1MSG1  X6, X5
	PXOR      X6, X4
	MOVOU     48(BX), X14
	PSHUFB    X7, X14
	SHA1NEXTE X14, X10
	MOVO      X8, X9
	SHA1MSG2  X14, X11
	SHA1RNDS4 $0, X10, X8
	SHA1MSG1  X14, X13
	PXOR      X14, X12

	// Rounds 16-19: E0, M=MSG0.
	ROUND2(0, X1, X9, X2, X10, X3, X11, X4, X12, X6, X14, X5, X13)

	// Rounds 20-23: E1, M=MSG1.
	ROUND2(1, X2, X10, X1, X9, X4, X12, X5, X13, X3, X11, X6, X14)

	// Rounds 24-27: E0, M=MSG2.
	ROUND2(1, X1, X9, X2, X10, X5, X13, X6, X14, X4, X12, X3, X11)

	// Rounds 28-31: E1, M=MSG3.
	ROUND2(1, X2, X10, X1, X9, X6, X14, X3, X11, X5, X13, X4, X12)

	// Rounds 32-35: E0, M=MSG0.
	ROUND2(1, X1, X9, X2, X10, X3, X11, X4, X12, X6, X14, X5, X13)

	// Rounds 36-39: E1, M=MSG1.
	ROUND2(1, X2, X10, X1, X9, X4, X12, X5, X13, X3, X11, X6, X14)

	// Rounds 40-43: E0, M=MSG2.
	ROUND2(2, X1, X9, X2, X10, X5, X13, X6, X14, X4, X12, X3, X11)

	// Rounds 44-47: E1, M=MSG3.
	ROUND2(2, X2, X10, X1, X9, X6, X14, X3, X11, X5, X13, X4, X12)

	// Rounds 48-51: E0, M=MSG0.
	ROUND2(2, X1, X9, X2, X10, X3, X11, X4, X12, X6, X14, X5, X13)

	// Rounds 52-55: E1, M=MSG1.
	ROUND2(2, X2, X10, X1, X9, X4, X12, X5, X13, X3, X11, X6, X14)

	// Rounds 56-59: E0, M=MSG2.
	ROUND2(2, X1, X9, X2, X10, X5, X13, X6, X14, X4, X12, X3, X11)

	// Rounds 60-63: E1, M=MSG3.
	ROUND2(3, X2, X10, X1, X9, X6, X14, X3, X11, X5, X13, X4, X12)

	// Rounds 64-67: E0, M=MSG0.
	ROUND2(3, X1, X9, X2, X10, X3, X11, X4, X12, X6, X14, X5, X13)

	// Rounds 68-71: E1, M=MSG1 (schedule tail: no msg1).
	SHA1NEXTE X4, X2
	MOVO      X0, X1
	SHA1MSG2  X4, X5
	SHA1RNDS4 $3, X2, X0
	PXOR      X4, X6
	SHA1NEXTE X12, X10
	MOVO      X8, X9
	SHA1MSG2  X12, X13
	SHA1RNDS4 $3, X10, X8
	PXOR      X12, X14

	// Rounds 72-75: E0, M=MSG2.
	SHA1NEXTE X5, X1
	MOVO      X0, X2
	SHA1MSG2  X5, X6
	SHA1RNDS4 $3, X1, X0
	SHA1NEXTE X13, X9
	MOVO      X8, X10
	SHA1MSG2  X13, X14
	SHA1RNDS4 $3, X9, X8

	// Rounds 76-79: E1, M=MSG3.
	SHA1NEXTE X6, X2
	MOVO      X0, X1
	SHA1RNDS4 $3, X2, X0
	SHA1NEXTE X14, X10
	MOVO      X8, X9
	SHA1RNDS4 $3, X10, X8

	// Fold the block outputs into the running states. The saves reload
	// through X15: the SHA/PADDD memory forms are legacy-SSE encoded and
	// demand 16-byte alignment Go stack frames do not guarantee.
	MOVOU     16(SP), X15
	SHA1NEXTE X15, X1
	MOVOU     0(SP), X15
	PADDD     X15, X0
	MOVOU     48(SP), X15
	SHA1NEXTE X15, X9
	MOVOU     32(SP), X15
	PADDD     X15, X8

	ADDQ $64, SI
	ADDQ $64, BX
	DECQ DX
	JNZ  loop2

	// Store both states.
	PSHUFD $0x1B, X0, X3
	MOVOU  X3, (DI)
	PSRLDQ $12, X1
	MOVQ   X1, AX
	MOVL   AX, 16(DI)
	PSHUFD $0x1B, X8, X11
	MOVOU  X11, 20(DI)
	PSRLDQ $12, X9
	MOVQ   X9, AX
	MOVL   AX, 36(DI)

done2:
	RET

// func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidx(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET
