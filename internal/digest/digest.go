// Package digest implements the 20-byte record digests and the XOR
// aggregation that underpin both outsourcing models.
//
// In SAE the trusted entity stores one digest per record and answers a range
// query with the XOR of the digests of the qualifying records (the
// verification token, S⊕ in the paper). In TOM the same digests seed the
// MB-Tree's Merkle hierarchy, where an intermediate digest is the hash of
// the concatenation of the digests in the page it points to.
//
// Digests are SHA-1 (20 bytes), matching the paper's experimental setup.
package digest

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"

	"sae/internal/record"
)

// Size is the digest length in bytes (SHA-1).
const Size = sha1.Size // 20

// Digest is a 20-byte one-way, collision-resistant hash value.
type Digest [Size]byte

// Zero is the XOR identity: x.XOR(Zero) == x.
var Zero Digest

// OfBytes hashes an arbitrary byte string.
func OfBytes(b []byte) Digest {
	return sum20(b)
}

// OfRecord hashes the canonical binary representation of a record. This is
// the digest the TE stores, the MB-Tree's leaf digest, and what the client
// recomputes for every record it receives from the SP.
func OfRecord(r *record.Record) Digest {
	var buf [record.Size]byte
	h := r.AppendBinary(buf[:0])
	return sum20(h)
}

// OfRecordInto hashes r like OfRecord but serializes through the
// caller-provided scratch buffer instead of a fresh stack frame, returning
// the (possibly grown) scratch for reuse. Batch digesting — the TE's load
// path, the verifier's per-record recompute — holds one scratch per worker
// and pays zero allocations per record.
func OfRecordInto(scratch []byte, r *record.Record) (Digest, []byte) {
	scratch = r.AppendBinary(scratch[:0])
	return sum20(scratch), scratch
}

// OfWire hashes a canonical record encoding directly out of a wire frame
// or page buffer — the zero-copy path: no record materialization, no
// serialization, the borrowed bytes are hashed in place. It panics if b is
// not exactly record.Size bytes (the fixed encoding every party agrees
// on), because hashing a partial record would silently verify garbage.
func OfWire(b []byte) Digest {
	if len(b) != record.Size {
		panic("digest: OfWire requires exactly one encoded record")
	}
	return sum20(b)
}

// XOR returns d ⊕ o. The 20 bytes are folded as two uint64 words plus one
// uint32 — XOR is endian-agnostic, and the fixed-width loads compile to
// plain word ops. This path is hot in both VT generation (XB-Tree X
// maintenance) and client-side verification.
func (d Digest) XOR(o Digest) Digest {
	var out Digest
	binary.LittleEndian.PutUint64(out[0:8], binary.LittleEndian.Uint64(d[0:8])^binary.LittleEndian.Uint64(o[0:8]))
	binary.LittleEndian.PutUint64(out[8:16], binary.LittleEndian.Uint64(d[8:16])^binary.LittleEndian.Uint64(o[8:16]))
	binary.LittleEndian.PutUint32(out[16:20], binary.LittleEndian.Uint32(d[16:20])^binary.LittleEndian.Uint32(o[16:20]))
	return out
}

// IsZero reports whether d is the all-zero digest (the XOR identity).
func (d Digest) IsZero() bool {
	return d == Zero
}

// String renders the digest as lowercase hex.
func (d Digest) String() string {
	return hex.EncodeToString(d[:])
}

// XORAll folds a list of digests with XOR. An empty list yields Zero,
// mirroring the paper's convention that the XOR over an empty set is 0.
// The fold runs in three word-sized accumulators so the output digest is
// materialized once, not per element.
func XORAll(ds ...Digest) Digest {
	var x0, x1 uint64
	var x2 uint32
	for i := range ds {
		x0 ^= binary.LittleEndian.Uint64(ds[i][0:8])
		x1 ^= binary.LittleEndian.Uint64(ds[i][8:16])
		x2 ^= binary.LittleEndian.Uint32(ds[i][16:20])
	}
	var out Digest
	binary.LittleEndian.PutUint64(out[0:8], x0)
	binary.LittleEndian.PutUint64(out[8:16], x1)
	binary.LittleEndian.PutUint32(out[16:20], x2)
	return out
}

// Accumulator incrementally XOR-folds digests. Because XOR is its own
// inverse, Add doubles as Remove: adding a digest twice cancels it, which is
// exactly how the XB-Tree maintains its X values under insertions and
// deletions.
type Accumulator struct {
	acc Digest
}

// Add folds d into the accumulator, word-wise.
func (a *Accumulator) Add(d Digest) {
	xorInto(&a.acc, d[:])
}

// AddBytes folds a raw 20-byte slice into the accumulator. It panics if b is
// not exactly Size bytes; callers hand it slices of on-page digest storage.
func (a *Accumulator) AddBytes(b []byte) {
	if len(b) != Size {
		panic("digest: AddBytes requires exactly 20 bytes")
	}
	xorInto(&a.acc, b)
}

// xorInto folds exactly Size bytes of src into dst as machine words.
func xorInto(dst *Digest, src []byte) {
	binary.LittleEndian.PutUint64(dst[0:8], binary.LittleEndian.Uint64(dst[0:8])^binary.LittleEndian.Uint64(src[0:8]))
	binary.LittleEndian.PutUint64(dst[8:16], binary.LittleEndian.Uint64(dst[8:16])^binary.LittleEndian.Uint64(src[8:16]))
	binary.LittleEndian.PutUint32(dst[16:20], binary.LittleEndian.Uint32(dst[16:20])^binary.LittleEndian.Uint32(src[16:20]))
}

// Sum returns the current XOR fold.
func (a *Accumulator) Sum() Digest { return a.acc }

// Reset clears the accumulator to Zero.
func (a *Accumulator) Reset() { a.acc = Zero }

// Concat returns H(d1 || d2 || ... || dk), the Merkle combination used for
// MB-Tree intermediate entries.
func Concat(ds ...Digest) Digest {
	var w ConcatWriter
	w.Reset()
	for _, d := range ds {
		w.Add(d)
	}
	return w.Sum()
}

// ConcatWriter incrementally computes a Merkle node digest without
// materializing the child digest list. It runs on the package's own SHA-1
// core (SHA-NI accelerated where available), buffers in place and never
// allocates, so VO verification can re-hash an entire Merkle path with
// zero garbage. The zero value is NOT ready; call Reset (or use
// NewConcatWriter) first.
type ConcatWriter struct {
	h   [5]uint32
	buf [64]byte
	n   int
	len uint64
	// std carries the stdlib hasher when SHA-NI is off: crypto/sha1's AVX2
	// schedule beats our portable block, so the fallback defers to it.
	std interface {
		Write(p []byte) (int, error)
		Sum(b []byte) []byte
	}
}

// NewConcatWriter returns a streaming Merkle-node hasher.
func NewConcatWriter() *ConcatWriter {
	w := &ConcatWriter{}
	w.Reset()
	return w
}

// Reset restores the initial hash state so one writer can be reused
// across many Merkle nodes without reallocation.
func (w *ConcatWriter) Reset() {
	if !Accelerated {
		w.std = sha1.New()
		return
	}
	w.h = sha1init
	w.n = 0
	w.len = 0
}

// Add appends one child digest to the stream.
func (w *ConcatWriter) Add(d Digest) {
	if w.std != nil {
		w.std.Write(d[:])
		return
	}
	w.len += Size
	b := d[:]
	if w.n > 0 {
		c := copy(w.buf[w.n:], b)
		w.n += c
		if w.n < 64 {
			return
		}
		compress(&w.h, w.buf[:])
		w.n = 0
		b = b[c:]
	}
	// A 20-byte digest never fills a whole block on its own once the
	// buffer has drained.
	w.n += copy(w.buf[:], b)
}

// Write appends raw bytes of any length to the stream — the generic path
// for Merkle node formulas that interleave keys and aggregate annotations
// with child digests (see mbtree's node hashing).
func (w *ConcatWriter) Write(p []byte) {
	if w.std != nil {
		w.std.Write(p)
		return
	}
	w.len += uint64(len(p))
	if w.n > 0 {
		c := copy(w.buf[w.n:], p)
		w.n += c
		if w.n < 64 {
			return
		}
		compress(&w.h, w.buf[:])
		w.n = 0
		p = p[c:]
	}
	if full := len(p) &^ 63; full > 0 {
		compress(&w.h, p[:full])
		p = p[full:]
	}
	w.n += copy(w.buf[:], p)
}

// Sum finalizes the node digest. The writer remains usable (Sum does not
// disturb the running state), matching hash.Hash semantics.
func (w *ConcatWriter) Sum() Digest {
	if w.std != nil {
		var out Digest
		copy(out[:], w.std.Sum(nil))
		return out
	}
	h := w.h
	var tail [128]byte
	n := copy(tail[:], w.buf[:w.n])
	tail[n] = 0x80
	end := 64
	if n+9 > 64 {
		end = 128
	}
	binary.BigEndian.PutUint64(tail[end-8:end], w.len<<3)
	compress(&h, tail[:end])
	var out Digest
	binary.BigEndian.PutUint32(out[0:4], h[0])
	binary.BigEndian.PutUint32(out[4:8], h[1])
	binary.BigEndian.PutUint32(out[8:12], h[2])
	binary.BigEndian.PutUint32(out[12:16], h[3])
	binary.BigEndian.PutUint32(out[16:20], h[4])
	return out
}

// FromBytes copies a 20-byte slice into a Digest. It panics on length
// mismatch; it is used when decoding digests out of fixed page layouts.
func FromBytes(b []byte) Digest {
	if len(b) != Size {
		panic("digest: FromBytes requires exactly 20 bytes")
	}
	var d Digest
	copy(d[:], b)
	return d
}
