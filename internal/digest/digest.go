// Package digest implements the 20-byte record digests and the XOR
// aggregation that underpin both outsourcing models.
//
// In SAE the trusted entity stores one digest per record and answers a range
// query with the XOR of the digests of the qualifying records (the
// verification token, S⊕ in the paper). In TOM the same digests seed the
// MB-Tree's Merkle hierarchy, where an intermediate digest is the hash of
// the concatenation of the digests in the page it points to.
//
// Digests are SHA-1 (20 bytes), matching the paper's experimental setup.
package digest

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"

	"sae/internal/record"
)

// Size is the digest length in bytes (SHA-1).
const Size = sha1.Size // 20

// Digest is a 20-byte one-way, collision-resistant hash value.
type Digest [Size]byte

// Zero is the XOR identity: x.XOR(Zero) == x.
var Zero Digest

// OfBytes hashes an arbitrary byte string.
func OfBytes(b []byte) Digest {
	return sha1.Sum(b)
}

// OfRecord hashes the canonical binary representation of a record. This is
// the digest the TE stores, the MB-Tree's leaf digest, and what the client
// recomputes for every record it receives from the SP.
func OfRecord(r *record.Record) Digest {
	var buf [record.Size]byte
	h := r.AppendBinary(buf[:0])
	return sha1.Sum(h)
}

// XOR returns d ⊕ o. The 20 bytes are folded as two uint64 words plus one
// uint32 — XOR is endian-agnostic, and the fixed-width loads compile to
// plain word ops. This path is hot in both VT generation (XB-Tree X
// maintenance) and client-side verification.
func (d Digest) XOR(o Digest) Digest {
	var out Digest
	binary.LittleEndian.PutUint64(out[0:8], binary.LittleEndian.Uint64(d[0:8])^binary.LittleEndian.Uint64(o[0:8]))
	binary.LittleEndian.PutUint64(out[8:16], binary.LittleEndian.Uint64(d[8:16])^binary.LittleEndian.Uint64(o[8:16]))
	binary.LittleEndian.PutUint32(out[16:20], binary.LittleEndian.Uint32(d[16:20])^binary.LittleEndian.Uint32(o[16:20]))
	return out
}

// IsZero reports whether d is the all-zero digest (the XOR identity).
func (d Digest) IsZero() bool {
	return d == Zero
}

// String renders the digest as lowercase hex.
func (d Digest) String() string {
	return hex.EncodeToString(d[:])
}

// XORAll folds a list of digests with XOR. An empty list yields Zero,
// mirroring the paper's convention that the XOR over an empty set is 0.
// The fold runs in three word-sized accumulators so the output digest is
// materialized once, not per element.
func XORAll(ds ...Digest) Digest {
	var x0, x1 uint64
	var x2 uint32
	for i := range ds {
		x0 ^= binary.LittleEndian.Uint64(ds[i][0:8])
		x1 ^= binary.LittleEndian.Uint64(ds[i][8:16])
		x2 ^= binary.LittleEndian.Uint32(ds[i][16:20])
	}
	var out Digest
	binary.LittleEndian.PutUint64(out[0:8], x0)
	binary.LittleEndian.PutUint64(out[8:16], x1)
	binary.LittleEndian.PutUint32(out[16:20], x2)
	return out
}

// Accumulator incrementally XOR-folds digests. Because XOR is its own
// inverse, Add doubles as Remove: adding a digest twice cancels it, which is
// exactly how the XB-Tree maintains its X values under insertions and
// deletions.
type Accumulator struct {
	acc Digest
}

// Add folds d into the accumulator, word-wise.
func (a *Accumulator) Add(d Digest) {
	xorInto(&a.acc, d[:])
}

// AddBytes folds a raw 20-byte slice into the accumulator. It panics if b is
// not exactly Size bytes; callers hand it slices of on-page digest storage.
func (a *Accumulator) AddBytes(b []byte) {
	if len(b) != Size {
		panic("digest: AddBytes requires exactly 20 bytes")
	}
	xorInto(&a.acc, b)
}

// xorInto folds exactly Size bytes of src into dst as machine words.
func xorInto(dst *Digest, src []byte) {
	binary.LittleEndian.PutUint64(dst[0:8], binary.LittleEndian.Uint64(dst[0:8])^binary.LittleEndian.Uint64(src[0:8]))
	binary.LittleEndian.PutUint64(dst[8:16], binary.LittleEndian.Uint64(dst[8:16])^binary.LittleEndian.Uint64(src[8:16]))
	binary.LittleEndian.PutUint32(dst[16:20], binary.LittleEndian.Uint32(dst[16:20])^binary.LittleEndian.Uint32(src[16:20]))
}

// Sum returns the current XOR fold.
func (a *Accumulator) Sum() Digest { return a.acc }

// Reset clears the accumulator to Zero.
func (a *Accumulator) Reset() { a.acc = Zero }

// Concat returns H(d1 || d2 || ... || dk), the Merkle combination used for
// MB-Tree intermediate entries.
func Concat(ds ...Digest) Digest {
	h := sha1.New()
	for _, d := range ds {
		h.Write(d[:])
	}
	var out Digest
	copy(out[:], h.Sum(nil))
	return out
}

// ConcatWriter incrementally computes a Merkle node digest without
// materializing the child digest list.
type ConcatWriter struct {
	h interface {
		Write(p []byte) (int, error)
		Sum(b []byte) []byte
	}
}

// NewConcatWriter returns a streaming Merkle-node hasher.
func NewConcatWriter() *ConcatWriter {
	return &ConcatWriter{h: sha1.New()}
}

// Add appends one child digest to the stream.
func (w *ConcatWriter) Add(d Digest) {
	w.h.Write(d[:])
}

// Sum finalizes the node digest.
func (w *ConcatWriter) Sum() Digest {
	var out Digest
	copy(out[:], w.h.Sum(nil))
	return out
}

// FromBytes copies a 20-byte slice into a Digest. It panics on length
// mismatch; it is used when decoding digests out of fixed page layouts.
func FromBytes(b []byte) Digest {
	if len(b) != Size {
		panic("digest: FromBytes requires exactly 20 bytes")
	}
	var d Digest
	copy(d[:], b)
	return d
}
