package digest

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sae/internal/record"
)

// Parallel batch digesting. Record digests are independent, and the XOR
// fold that aggregates them is commutative and associative, so a batch
// can be chunked across a bounded worker pool — each worker hashing with
// its own serialization scratch and folding into its own Accumulator —
// and the per-worker sums merged in any order without changing a single
// output bit. This is the crypto fan-out behind the TE's bulk digesting
// and the client's Figure 7 verification fast path.

// parThreshold is the batch size below which fan-out costs more than it
// saves: spawning a goroutine costs on the order of a couple of record
// hashes, so small results stay inline.
const parThreshold = 128

// DefaultWorkers returns the default crypto fan-out: every schedulable
// CPU, straight from runtime.GOMAXPROCS(0). The old fixed cap of 8 made
// verify throughput flat past 8 cores (and pointlessly woke 8 goroutines
// on boxes with fewer); sizing from GOMAXPROCS tracks the actual
// schedulable parallelism, and clampWorkers still collapses to a fully
// inline, dispatch-free path when only one worker is useful.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}

// clampWorkers bounds the fan-out for n items under the requested worker
// count (0 or negative means DefaultWorkers).
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if n < parThreshold || workers < 2 {
		return 1
	}
	if workers > n {
		workers = n
	}
	return workers
}

// chunk returns the half-open item range worker w of n workers owns.
func chunk(items, workers, w int) (lo, hi int) {
	lo = items * w / workers
	hi = items * (w + 1) / workers
	return lo, hi
}

// RecordDigests fills dst[i] with OfRecord(&recs[i]) for every record,
// fanning the hashing out across up to `workers` goroutines (0 = default).
// dst must be at least as long as recs. Each worker reuses one
// serialization scratch, so the batch performs zero per-record
// allocations.
func RecordDigests(dst []Digest, recs []record.Record, workers int) {
	w := clampWorkers(workers, len(recs))
	if w == 1 {
		var scratch [2 * record.Size]byte
		digestRecordsInto(dst, recs, scratch[:0])
		return
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := chunk(len(recs), w, k)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var scratch [2 * record.Size]byte
			digestRecordsInto(dst[lo:hi], recs[lo:hi], scratch[:0])
		}(lo, hi)
	}
	wg.Wait()
}

// XORFoldRecords returns the XOR of OfRecord over recs — the client's
// recompute-and-fold step — fanned out across up to `workers` goroutines
// with per-worker scratch and accumulator. The result is bit-identical
// to a serial fold regardless of worker count.
func XORFoldRecords(recs []record.Record, workers int) Digest {
	w := clampWorkers(workers, len(recs))
	if w == 1 {
		var acc Accumulator
		var scratch [2 * record.Size]byte
		foldRecordsInto(&acc, recs, scratch[:0])
		return acc.Sum()
	}
	parts := make([]Digest, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := chunk(len(recs), w, k)
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			var acc Accumulator
			var scratch [2 * record.Size]byte
			foldRecordsInto(&acc, recs[lo:hi], scratch[:0])
			parts[k] = acc.Sum()
		}(k, lo, hi)
	}
	wg.Wait()
	return XORAll(parts...)
}

// XORFoldWireBurst folds each wire payload in encs independently and
// writes the per-payload fold into dst[i] — the burst analogue of calling
// XORFoldWire once per query, but with a SINGLE worker dispatch for the
// whole burst: instead of one goroutine fan-out (and join barrier) per
// query, the burst spawns min(workers, len(encs)) goroutines once and
// they pull whole payloads from a shared atomic cursor. Payload i with
// len(encs[i])%record.Size != 0 panics exactly as XORFoldWire would; an
// empty payload folds to the zero digest (the empty-result token). dst
// must be at least len(encs) long. The outputs are bit-identical to the
// per-query path for any worker count.
func XORFoldWireBurst(dst []Digest, encs [][]byte, workers int) {
	total := 0
	for _, enc := range encs {
		if len(enc)%record.Size != 0 {
			panic("digest: XORFoldWireBurst requires whole record encodings")
		}
		total += len(enc) / record.Size
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(encs) {
		workers = len(encs)
	}
	if total < parThreshold || workers < 2 {
		var acc Accumulator
		for i, enc := range encs {
			acc.Reset()
			foldWireInto(&acc, enc)
			dst[i] = acc.Sum()
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var acc Accumulator
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(encs) {
					return
				}
				acc.Reset()
				foldWireInto(&acc, encs[i])
				dst[i] = acc.Sum()
			}
		}()
	}
	wg.Wait()
}

// XORFoldWire folds the digests of n := len(enc)/record.Size canonical
// record encodings packed back-to-back in enc — a received wire payload —
// without materializing a single record: each worker hashes its chunk's
// 500-byte slices in place. It panics if enc is not whole records.
func XORFoldWire(enc []byte, workers int) Digest {
	if len(enc)%record.Size != 0 {
		panic("digest: XORFoldWire requires whole record encodings")
	}
	n := len(enc) / record.Size
	w := clampWorkers(workers, n)
	if w == 1 {
		var acc Accumulator
		foldWireInto(&acc, enc)
		return acc.Sum()
	}
	parts := make([]Digest, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := chunk(n, w, k)
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			var acc Accumulator
			foldWireInto(&acc, enc[lo*record.Size:hi*record.Size])
			parts[k] = acc.Sum()
		}(k, lo, hi)
	}
	wg.Wait()
	return XORAll(parts...)
}
