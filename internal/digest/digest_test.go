package digest

import (
	"crypto/sha1"
	"testing"
	"testing/quick"

	"sae/internal/record"
)

func TestOfRecordMatchesManualHash(t *testing.T) {
	r := record.Synthesize(5, 77)
	want := Digest(sha1.Sum(r.Marshal()))
	if got := OfRecord(&r); got != want {
		t.Fatalf("OfRecord = %s, want %s", got, want)
	}
}

func TestXORProperties(t *testing.T) {
	a := OfBytes([]byte("a"))
	b := OfBytes([]byte("b"))
	c := OfBytes([]byte("c"))

	if got := a.XOR(Zero); got != a {
		t.Fatal("XOR with Zero must be identity")
	}
	if got := a.XOR(a); !got.IsZero() {
		t.Fatal("XOR with self must cancel")
	}
	if a.XOR(b) != b.XOR(a) {
		t.Fatal("XOR must commute")
	}
	if a.XOR(b).XOR(c) != a.XOR(b.XOR(c)) {
		t.Fatal("XOR must associate")
	}
}

func TestXORAllEmptyIsZero(t *testing.T) {
	if got := XORAll(); !got.IsZero() {
		t.Fatalf("XORAll() = %s, want zero", got)
	}
}

func TestAccumulatorMatchesXORAll(t *testing.T) {
	ds := []Digest{
		OfBytes([]byte("x")),
		OfBytes([]byte("y")),
		OfBytes([]byte("z")),
	}
	var acc Accumulator
	for _, d := range ds {
		acc.Add(d)
	}
	if acc.Sum() != XORAll(ds...) {
		t.Fatal("Accumulator disagrees with XORAll")
	}
	acc.Reset()
	if !acc.Sum().IsZero() {
		t.Fatal("Reset must zero the accumulator")
	}
}

func TestAccumulatorAddRemoves(t *testing.T) {
	d := OfBytes([]byte("twice"))
	var acc Accumulator
	acc.Add(d)
	acc.Add(d)
	if !acc.Sum().IsZero() {
		t.Fatal("adding the same digest twice must cancel")
	}
}

func TestAddBytesPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddBytes with wrong length did not panic")
		}
	}()
	var acc Accumulator
	acc.AddBytes(make([]byte, 19))
}

func TestConcatOrderSensitive(t *testing.T) {
	a := OfBytes([]byte("a"))
	b := OfBytes([]byte("b"))
	if Concat(a, b) == Concat(b, a) {
		t.Fatal("Concat must be order sensitive (Merkle combination)")
	}
}

func TestConcatWriterMatchesConcat(t *testing.T) {
	ds := []Digest{OfBytes([]byte("1")), OfBytes([]byte("2")), OfBytes([]byte("3"))}
	w := NewConcatWriter()
	for _, d := range ds {
		w.Add(d)
	}
	if w.Sum() != Concat(ds...) {
		t.Fatal("ConcatWriter disagrees with Concat")
	}
}

func TestFromBytesRoundTrip(t *testing.T) {
	d := OfBytes([]byte("payload"))
	if FromBytes(d[:]) != d {
		t.Fatal("FromBytes(d[:]) != d")
	}
}

func TestXORSelfInverseProperty(t *testing.T) {
	f := func(a, b [Size]byte) bool {
		da, db := Digest(a), Digest(b)
		return da.XOR(db).XOR(db) == da
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctRecordsDistinctDigests(t *testing.T) {
	seen := make(map[Digest]record.ID)
	for id := record.ID(0); id < 200; id++ {
		r := record.Synthesize(id, record.Key(id%7))
		d := OfRecord(&r)
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest collision between record ids %d and %d", prev, id)
		}
		seen[d] = id
	}
}
