package digest

import (
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"math/rand"
	"testing"

	"sae/internal/record"
)

// refSum is the stdlib oracle every implementation must match.
func refSum(b []byte) Digest { return sha1.Sum(b) }

// TestSHA1MatchesStdlib drives sum20 (whichever block function init
// selected) across every buffer length that exercises a distinct padding
// shape, plus larger multi-block messages.
func TestSHA1MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0}
	for n := 1; n <= 300; n++ {
		lengths = append(lengths, n)
	}
	lengths = append(lengths, 448, 500, 512, 513, 1000, 4096, 10_000)
	for _, n := range lengths {
		b := make([]byte, n)
		rng.Read(b)
		if got, want := sum20(b), refSum(b); got != want {
			t.Fatalf("sum20 mismatch at len %d: got %s want %s", n, got, want)
		}
	}
}

// TestSHA1BlockImplsAgree runs the NI and generic block functions over the
// same multi-block states and requires identical results, independent of
// which one init picked.
func TestSHA1BlockImplsAgree(t *testing.T) {
	if !Accelerated {
		t.Skip("SHA-NI not active; generic block is already the oracle")
	}
	rng := rand.New(rand.NewSource(11))
	for blocks := 1; blocks <= 9; blocks++ {
		p := make([]byte, 64*blocks)
		rng.Read(p)
		h1 := sha1init
		h2 := sha1init
		sha1blockGenericForTest(&h1, p)
		compress(&h2, p)
		if h1 != h2 {
			t.Fatalf("block mismatch at %d blocks: generic %x, active %x", blocks, h1, h2)
		}
		// Incremental application must equal one-shot application.
		h3 := sha1init
		for off := 0; off < len(p); off += 64 {
			compress(&h3, p[off:off+64])
		}
		if h3 != h2 {
			t.Fatalf("incremental/block mismatch at %d blocks", blocks)
		}
	}
}

func TestGenericBlockMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 55, 56, 63, 64, 65, 119, 128, 500} {
		b := make([]byte, n)
		rng.Read(b)
		if got, want := genericSum(b), refSum(b); got != want {
			t.Fatalf("generic sum mismatch at len %d", n)
		}
	}
}

// genericSum runs the full pad+compress pipeline through the portable
// block only, so the fallback stays covered on SHA-NI hardware too.
func genericSum(b []byte) Digest {
	h := sha1init
	full := len(b) &^ 63
	if full > 0 {
		sha1blockGenericForTest(&h, b[:full])
	}
	var tail [128]byte
	n := copy(tail[:], b[full:])
	tail[n] = 0x80
	end := 64
	if n+9 > 64 {
		end = 128
	}
	binary.BigEndian.PutUint64(tail[end-8:end], uint64(len(b))<<3)
	sha1blockGenericForTest(&h, tail[:end])
	var out Digest
	binary.BigEndian.PutUint32(out[0:4], h[0])
	binary.BigEndian.PutUint32(out[4:8], h[1])
	binary.BigEndian.PutUint32(out[8:12], h[2])
	binary.BigEndian.PutUint32(out[12:16], h[3])
	binary.BigEndian.PutUint32(out[16:20], h[4])
	return out
}

func sha1blockGenericForTest(h *[5]uint32, p []byte) { sha1blockGeneric(h, p) }

func TestOfRecordVariantsAgree(t *testing.T) {
	var scratch []byte
	for i := 0; i < 64; i++ {
		r := record.Synthesize(record.ID(i+1), record.Key(i*37))
		want := refSum(r.Marshal())
		if got := OfRecord(&r); got != want {
			t.Fatalf("OfRecord mismatch for %v", &r)
		}
		var d Digest
		d, scratch = OfRecordInto(scratch, &r)
		if d != want {
			t.Fatalf("OfRecordInto mismatch for %v", &r)
		}
		if got := OfWire(r.Marshal()); got != want {
			t.Fatalf("OfWire mismatch for %v", &r)
		}
	}
}

func TestOfWirePanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OfWire accepted a short slice")
		}
	}()
	OfWire(make([]byte, record.Size-1))
}

func TestConcatWriterMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, k := range []int{0, 1, 2, 3, 4, 7, 16, 137} {
		ds := make([]Digest, k)
		ref := sha1.New()
		for i := range ds {
			rng.Read(ds[i][:])
			ref.Write(ds[i][:])
		}
		var want Digest
		copy(want[:], ref.Sum(nil))
		if got := Concat(ds...); got != want {
			t.Fatalf("Concat mismatch at %d digests: got %s want %s", k, got, want)
		}
		w := NewConcatWriter()
		for i := range ds {
			w.Add(ds[i])
		}
		if got := w.Sum(); got != want {
			t.Fatalf("ConcatWriter mismatch at %d digests", k)
		}
		// Sum must be repeatable and Reset must restore a fresh state.
		if got := w.Sum(); got != want {
			t.Fatalf("second Sum disturbed state at %d digests", k)
		}
		w.Reset()
		if k > 0 {
			w.Add(ds[0])
			var single Digest
			s := sha1.Sum(ds[0][:])
			copy(single[:], s[:])
			if got := w.Sum(); got != single {
				t.Fatalf("Reset did not clear writer state")
			}
		}
	}
}

func TestOfRecordIntoGrowsOnce(t *testing.T) {
	r := record.Synthesize(1, 2)
	_, scratch := OfRecordInto(nil, &r)
	if cap(scratch) < record.Size {
		t.Fatalf("scratch capacity %d after first use", cap(scratch))
	}
	before := &scratch[0]
	_, scratch2 := OfRecordInto(scratch, &r)
	if &scratch2[0] != before {
		t.Fatal("OfRecordInto reallocated a sufficient scratch")
	}
}

func BenchmarkOfRecord(b *testing.B) {
	r := record.Synthesize(1, 2)
	b.SetBytes(record.Size)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = OfRecord(&r)
	}
}

func BenchmarkOfRecordInto(b *testing.B) {
	r := record.Synthesize(1, 2)
	var scratch []byte
	b.SetBytes(record.Size)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink, scratch = OfRecordInto(scratch, &r)
	}
}

func BenchmarkOfWire(b *testing.B) {
	r := record.Synthesize(1, 2)
	enc := r.Marshal()
	b.SetBytes(record.Size)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = OfWire(enc)
	}
}

func BenchmarkStdlibSum500(b *testing.B) {
	buf := bytes.Repeat([]byte{0xAB}, record.Size)
	b.SetBytes(record.Size)
	for i := 0; i < b.N; i++ {
		sink = sha1.Sum(buf)
	}
}
