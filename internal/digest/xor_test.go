package digest

import (
	"math/rand"
	"testing"
)

// xorRef is the byte-at-a-time reference the word-wise implementations
// must match.
func xorRef(a, b Digest) Digest {
	var out Digest
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

func randDigest(rng *rand.Rand) Digest {
	var d Digest
	rng.Read(d[:])
	return d
}

func TestXORMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := randDigest(rng), randDigest(rng)
		if got, want := a.XOR(b), xorRef(a, b); got != want {
			t.Fatalf("XOR mismatch: %v ^ %v = %v, want %v", a, b, got, want)
		}
	}
}

func TestXORAllMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 33; n++ {
		ds := make([]Digest, n)
		var want Digest
		for i := range ds {
			ds[i] = randDigest(rng)
			want = xorRef(want, ds[i])
		}
		if got := XORAll(ds...); got != want {
			t.Fatalf("XORAll over %d digests = %v, want %v", n, got, want)
		}
	}
}

func TestAccumulatorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var acc Accumulator
	var want Digest
	for i := 0; i < 100; i++ {
		d := randDigest(rng)
		if i%2 == 0 {
			acc.Add(d)
		} else {
			acc.AddBytes(d[:])
		}
		want = xorRef(want, d)
		if acc.Sum() != want {
			t.Fatalf("accumulator diverged at step %d: %v, want %v", i, acc.Sum(), want)
		}
	}
}

func BenchmarkXOR(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d1, d2 := randDigest(rng), randDigest(rng)
	b.SetBytes(Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d1 = d1.XOR(d2)
	}
	sink = d1
}

func BenchmarkXORAll128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ds := make([]Digest, 128)
	for i := range ds {
		ds[i] = randDigest(rng)
	}
	b.SetBytes(int64(len(ds)) * Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = XORAll(ds...)
	}
}

func BenchmarkAccumulatorAddBytes(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	d := randDigest(rng)
	var acc Accumulator
	b.SetBytes(Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.AddBytes(d[:])
	}
	sink = acc.Sum()
}

// sink defeats dead-code elimination in the benchmarks.
var sink Digest
