//go:build !amd64

package digest

// compress runs the portable block function on architectures without a
// SHA-NI path. Accelerated stays false, so the one-shot sum20 defers to
// crypto/sha1 (which may have its own per-arch assembly).
func compress(h *[5]uint32, p []byte) {
	sha1blockGeneric(h, p)
}
