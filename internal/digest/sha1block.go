package digest

import (
	"crypto/sha1"
	"encoding/binary"

	"sae/internal/record"
)

// This file carries the package's own SHA-1 core: a portable block
// function, a SHA-NI accelerated one on amd64 (sha1block_amd64.s), and a
// small streaming state shared by the one-shot and Merkle-concat paths.
// Results are bit-identical to crypto/sha1 (enforced by TestSHA1MatchesStdlib);
// the point of owning the core is (a) dispatching to the SHA-NI compression
// the stdlib lacks and (b) hashing borrowed byte slices with zero
// allocation, which the fast serve/verify paths rely on.

// Accelerated reports whether the SHA-NI block function is in use. It is
// set during init on amd64 CPUs with the SHA extensions (and left false
// under SAE_DISABLE_SHANI=1).
//
// compress (defined per-arch) dispatches to the active block function with
// direct calls — a function variable here would defeat escape analysis and
// put every padding scratch on the heap.
var Accelerated bool

// sha1init is the SHA-1 initial state (FIPS 180-4).
var sha1init = [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}

// hashPair, when non-nil, hashes two canonical record.Size-byte encodings
// in one two-lane pass (amd64 SHA-NI sets it during init). Batch digest
// paths pair records through it to hide the single-stream compression's
// dependency-chain latency; one-at-a-time callers keep using sum20.
var hashPair func(a, b []byte) (Digest, Digest)

// foldWireInto XOR-folds the digests of the n = len(enc)/record.Size
// canonical record encodings packed in enc, pairing records through the
// two-lane core when available. Callers guarantee whole records.
func foldWireInto(acc *Accumulator, enc []byte) {
	n := len(enc) / record.Size
	i := 0
	if hashPair != nil {
		for ; i+1 < n; i += 2 {
			da, db := hashPair(enc[i*record.Size:(i+1)*record.Size], enc[(i+1)*record.Size:(i+2)*record.Size])
			acc.Add(da)
			acc.Add(db)
		}
	}
	for ; i < n; i++ {
		acc.Add(OfWire(enc[i*record.Size : (i+1)*record.Size]))
	}
}

// foldRecordsInto XOR-folds OfRecord over recs into acc, serializing
// through scratch (returned for reuse) and pairing when available.
func foldRecordsInto(acc *Accumulator, recs []record.Record, scratch []byte) []byte {
	i := 0
	if hashPair != nil {
		for ; i+1 < len(recs); i += 2 {
			scratch = recs[i].AppendBinary(scratch[:0])
			scratch = recs[i+1].AppendBinary(scratch)
			da, db := hashPair(scratch[:record.Size], scratch[record.Size:2*record.Size])
			acc.Add(da)
			acc.Add(db)
		}
	}
	var d Digest
	for ; i < len(recs); i++ {
		d, scratch = OfRecordInto(scratch, &recs[i])
		acc.Add(d)
	}
	return scratch
}

// digestRecordsInto fills dst[i] with OfRecord(&recs[i]), serializing
// through scratch (grown to 2*record.Size and returned for reuse) and
// pairing through the two-lane core when available.
func digestRecordsInto(dst []Digest, recs []record.Record, scratch []byte) []byte {
	i := 0
	if hashPair != nil {
		for ; i+1 < len(recs); i += 2 {
			scratch = recs[i].AppendBinary(scratch[:0])
			scratch = recs[i+1].AppendBinary(scratch)
			dst[i], dst[i+1] = hashPair(scratch[:record.Size], scratch[record.Size:2*record.Size])
		}
	}
	for ; i < len(recs); i++ {
		dst[i], scratch = OfRecordInto(scratch, &recs[i])
	}
	return scratch
}

// sha1blockGeneric is the textbook SHA-1 compression, processing
// len(p)/64 blocks. It mirrors crypto/sha1's blockGeneric (same schedule,
// plain Go) and is the fallback where SHA-NI is unavailable.
func sha1blockGeneric(h *[5]uint32, p []byte) {
	var w [16]uint32
	h0, h1, h2, h3, h4 := h[0], h[1], h[2], h[3], h[4]
	for len(p) >= 64 {
		for i := 0; i < 16; i++ {
			w[i] = binary.BigEndian.Uint32(p[4*i:])
		}
		a, b, c, d, e := h0, h1, h2, h3, h4
		for i := 0; i < 80; i++ {
			var f, k uint32
			switch {
			case i < 20:
				f = (b & c) | (^b & d)
				k = 0x5A827999
			case i < 40:
				f = b ^ c ^ d
				k = 0x6ED9EBA1
			case i < 60:
				f = (b & c) | (b & d) | (c & d)
				k = 0x8F1BBCDC
			default:
				f = b ^ c ^ d
				k = 0xCA62C1D6
			}
			var wi uint32
			if i < 16 {
				wi = w[i]
			} else {
				wi = w[(i-3)&15] ^ w[(i-8)&15] ^ w[(i-14)&15] ^ w[i&15]
				wi = wi<<1 | wi>>31
				w[i&15] = wi
			}
			t := (a<<5 | a>>27) + f + e + k + wi
			a, b, c, d, e = t, a, b<<30|b>>2, c, d
		}
		h0 += a
		h1 += b
		h2 += c
		h3 += d
		h4 += e
		p = p[64:]
	}
	h[0], h[1], h[2], h[3], h[4] = h0, h1, h2, h3, h4
}

// sum20 computes the SHA-1 digest of b with the active block function.
// The bulk of b is hashed in place (no copy); only the final partial
// block goes through a stack scratch for padding. Allocation-free.
func sum20(b []byte) Digest {
	if !Accelerated {
		// The stdlib's AVX2 schedule beats our portable loop; use it when
		// SHA-NI is off so the fallback is never slower than the seed.
		return sha1.Sum(b)
	}
	h := sha1init
	full := len(b) &^ 63
	if full > 0 {
		compress(&h, b[:full])
	}
	var tail [128]byte
	n := copy(tail[:], b[full:])
	tail[n] = 0x80
	end := 64
	if n+9 > 64 {
		end = 128
	}
	binary.BigEndian.PutUint64(tail[end-8:end], uint64(len(b))<<3)
	compress(&h, tail[:end])
	var out Digest
	binary.BigEndian.PutUint32(out[0:4], h[0])
	binary.BigEndian.PutUint32(out[4:8], h[1])
	binary.BigEndian.PutUint32(out[8:12], h[2])
	binary.BigEndian.PutUint32(out[12:16], h[3])
	binary.BigEndian.PutUint32(out[16:20], h[4])
	return out
}
