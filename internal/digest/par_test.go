package digest

import (
	"crypto/sha1"
	"math/rand"
	"testing"

	"sae/internal/record"
)

func parRecords(n int, seed int64) []record.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Synthesize(record.ID(rng.Int63()), record.Key(rng.Intn(record.KeyDomain)))
	}
	return recs
}

// TestHashPairMatchesStdlib drives the two-lane core (when active)
// against crypto/sha1 over random record pairs.
func TestHashPairMatchesStdlib(t *testing.T) {
	if hashPair == nil {
		t.Skip("two-lane SHA core not active on this CPU")
	}
	recs := parRecords(64, 31)
	for i := 0; i+1 < len(recs); i += 2 {
		a, b := recs[i].Marshal(), recs[i+1].Marshal()
		da, db := hashPair(a, b)
		if want := Digest(sha1.Sum(a)); da != want {
			t.Fatalf("pair %d lane A mismatch: got %s want %s", i, da, want)
		}
		if want := Digest(sha1.Sum(b)); db != want {
			t.Fatalf("pair %d lane B mismatch: got %s want %s", i, db, want)
		}
	}
}

// TestRecordDigestsParity checks every worker count and both parities of
// batch length against serial OfRecord.
func TestRecordDigestsParity(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 127, 128, 129, 500, 501} {
		recs := parRecords(n, int64(40+n))
		want := make([]Digest, n)
		for i := range recs {
			want[i] = OfRecord(&recs[i])
		}
		for _, workers := range []int{0, 1, 2, 3, 4} {
			got := make([]Digest, n)
			RecordDigests(got, recs, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: digest %d mismatch", n, workers, i)
				}
			}
		}
	}
}

// TestXORFoldParity checks the fold variants — records and wire form —
// against a serial reference at every worker count.
func TestXORFoldParity(t *testing.T) {
	for _, n := range []int{0, 1, 2, 127, 128, 129, 400, 1001} {
		recs := parRecords(n, int64(70+n))
		var ref Accumulator
		enc := make([]byte, 0, n*record.Size)
		for i := range recs {
			ref.Add(OfRecord(&recs[i]))
			enc = recs[i].AppendBinary(enc)
		}
		for _, workers := range []int{0, 1, 2, 3, 4} {
			if got := XORFoldRecords(recs, workers); got != ref.Sum() {
				t.Fatalf("n=%d workers=%d: XORFoldRecords mismatch", n, workers)
			}
			if got := XORFoldWire(enc, workers); got != ref.Sum() {
				t.Fatalf("n=%d workers=%d: XORFoldWire mismatch", n, workers)
			}
		}
	}
}

func TestXORFoldWirePanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XORFoldWire accepted a ragged payload")
		}
	}()
	XORFoldWire(make([]byte, record.Size+1), 1)
}

func BenchmarkXORFoldWire(b *testing.B) {
	recs := parRecords(1000, 99)
	enc := make([]byte, 0, len(recs)*record.Size)
	for i := range recs {
		enc = recs[i].AppendBinary(enc)
	}
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	var d Digest
	for i := 0; i < b.N; i++ {
		d = XORFoldWire(enc, 1)
	}
	sink = d
}
