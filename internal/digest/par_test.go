package digest

import (
	"crypto/sha1"
	"math/rand"
	"runtime"
	"testing"

	"sae/internal/record"
)

func parRecords(n int, seed int64) []record.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Synthesize(record.ID(rng.Int63()), record.Key(rng.Intn(record.KeyDomain)))
	}
	return recs
}

// TestHashPairMatchesStdlib drives the two-lane core (when active)
// against crypto/sha1 over random record pairs.
func TestHashPairMatchesStdlib(t *testing.T) {
	if hashPair == nil {
		t.Skip("two-lane SHA core not active on this CPU")
	}
	recs := parRecords(64, 31)
	for i := 0; i+1 < len(recs); i += 2 {
		a, b := recs[i].Marshal(), recs[i+1].Marshal()
		da, db := hashPair(a, b)
		if want := Digest(sha1.Sum(a)); da != want {
			t.Fatalf("pair %d lane A mismatch: got %s want %s", i, da, want)
		}
		if want := Digest(sha1.Sum(b)); db != want {
			t.Fatalf("pair %d lane B mismatch: got %s want %s", i, db, want)
		}
	}
}

// TestRecordDigestsParity checks every worker count and both parities of
// batch length against serial OfRecord.
func TestRecordDigestsParity(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 127, 128, 129, 500, 501} {
		recs := parRecords(n, int64(40+n))
		want := make([]Digest, n)
		for i := range recs {
			want[i] = OfRecord(&recs[i])
		}
		for _, workers := range []int{0, 1, 2, 3, 4} {
			got := make([]Digest, n)
			RecordDigests(got, recs, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: digest %d mismatch", n, workers, i)
				}
			}
		}
	}
}

// TestXORFoldParity checks the fold variants — records and wire form —
// against a serial reference at every worker count.
func TestXORFoldParity(t *testing.T) {
	for _, n := range []int{0, 1, 2, 127, 128, 129, 400, 1001} {
		recs := parRecords(n, int64(70+n))
		var ref Accumulator
		enc := make([]byte, 0, n*record.Size)
		for i := range recs {
			ref.Add(OfRecord(&recs[i]))
			enc = recs[i].AppendBinary(enc)
		}
		for _, workers := range []int{0, 1, 2, 3, 4} {
			if got := XORFoldRecords(recs, workers); got != ref.Sum() {
				t.Fatalf("n=%d workers=%d: XORFoldRecords mismatch", n, workers)
			}
			if got := XORFoldWire(enc, workers); got != ref.Sum() {
				t.Fatalf("n=%d workers=%d: XORFoldWire mismatch", n, workers)
			}
		}
	}
}

func TestXORFoldWirePanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XORFoldWire accepted a ragged payload")
		}
	}()
	XORFoldWire(make([]byte, record.Size+1), 1)
}

func BenchmarkXORFoldWire(b *testing.B) {
	recs := parRecords(1000, 99)
	enc := make([]byte, 0, len(recs)*record.Size)
	for i := range recs {
		enc = recs[i].AppendBinary(enc)
	}
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	var d Digest
	for i := 0; i < b.N; i++ {
		d = XORFoldWire(enc, 1)
	}
	sink = d
}

// TestXORFoldWireBurstParity checks the burst fold — many payloads, one
// worker dispatch — matches per-payload XORFoldWire at every worker
// count, over payload mixes including empty payloads and sizes straddling
// the parallel threshold.
func TestXORFoldWireBurstParity(t *testing.T) {
	shapes := [][]int{
		{},
		{0},
		{5},
		{0, 3, 0, 7},
		{40, 90, 1, 0, 128},
		{300, 2, 501, 64, 64, 17},
	}
	for si, shape := range shapes {
		encs := make([][]byte, len(shape))
		want := make([]Digest, len(shape))
		seed := int64(900 + si)
		for i, n := range shape {
			recs := parRecords(n, seed+int64(i))
			enc := make([]byte, 0, n*record.Size)
			for j := range recs {
				enc = recs[j].AppendBinary(enc)
			}
			encs[i] = enc
			want[i] = XORFoldWire(enc, 1)
		}
		for _, workers := range []int{0, 1, 2, 3, 4} {
			got := make([]Digest, len(shape))
			XORFoldWireBurst(got, encs, workers)
			for i := range shape {
				if got[i] != want[i] {
					t.Fatalf("shape %d workers %d payload %d: burst fold mismatch", si, workers, i)
				}
			}
		}
	}
}

func TestXORFoldWireBurstPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XORFoldWireBurst accepted a ragged payload")
		}
	}()
	XORFoldWireBurst(make([]Digest, 2), [][]byte{nil, make([]byte, record.Size+2)}, 2)
}

// TestDefaultWorkersTracksGOMAXPROCS pins the satellite change: the
// crypto pool sizes itself to the scheduler's parallelism, uncapped.
func TestDefaultWorkersTracksGOMAXPROCS(t *testing.T) {
	if got, want := DefaultWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("DefaultWorkers() = %d, want GOMAXPROCS %d", got, want)
	}
}
