// Package reshard implements online shard split and merge behind the
// router: a coordinator that migrates a live, contiguous run of shards
// to a successor topology with no client-visible downtime and no loss of
// verifiability at any instant.
//
// The protocol has three phases, mirroring how a replica joins a shard
// (bootstrap, tail, serve) plus an atomic publish:
//
//  1. Bootstrap. Each source primary is asked for a sequence-stamped
//     snapshot over its replication endpoint (the same MsgReplicaSnapReq
//     a replica uses). The coordinator partitions the snapshot records
//     by the successor plan's spans and opens one fresh DurableSystem
//     per new shard — each with its OWN WAL, checkpoint and sequence
//     domain — served immediately on its own address but marked WARMING:
//     the server refuses client reads, so a target can never attest
//     successor-epoch data it has not caught up to.
//
//  2. Catch-up. The coordinator tails each source's commit groups
//     (MsgReplicaPull, the replica protocol again), filters every
//     group's ops by key span, and feeds each target through its own
//     group-commit pipeline — so migrated writes are durable and
//     generation-stamped on the target exactly like native ones. The
//     loop runs until a full pass over every source returns no new
//     groups: lag is zero and everything left can only arrive during
//     the freeze window.
//
//  3. Cutover. The sources are frozen (writes block server-side; a TTL
//     auto-thaw bounds the damage of a dead coordinator) and the freeze
//     ack itself guarantees every in-flight group is committed and
//     visible in the WAL stream; one final drain empties the tail. The
//     coordinator then activates the targets, installs the successor
//     plan (epoch v+1) on the surviving primaries — servers accept only
//     strictly higher epochs, so this is replay-proof — and orders every
//     router to cut over (MsgReshardCutover). The router dials and
//     attests the new upstream set BEFORE swapping its topology pointer,
//     in-flight queries finish against epoch v, and new picks land on
//     v+1. Finally the sources are retired: permanently fenced from
//     clients while their replication endpoints stay up for stragglers.
//
// The client-visible pause is the freeze→router-ack window, which
// contains only the straggler drain and two control round trips —
// bounded by a commit-group interval, not by data volume, because ALL
// bulk data movement happens while the sources are still serving.
package reshard

import (
	"fmt"
	"time"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/replica"
	"sae/internal/shard"
	"sae/internal/wal"
	"sae/internal/wire"
)

// DefaultFreezeTTL bounds the source freeze when the Config does not:
// if the coordinator dies mid-cutover, sources thaw themselves after
// this long and the deployment continues on the old topology.
const DefaultFreezeTTL = 5 * time.Second

// Config parameterizes one reshard run.
type Config struct {
	// Current is the serving plan (epoch v); every source must attest
	// exactly it.
	Current shard.Plan
	// Next is the successor plan at epoch v+1, from Plan.SplitShard or
	// Plan.MergeShards: the contiguous run of Replaced shards starting
	// at FirstShard is replaced by len(TargetDirs) new shards, every
	// other span preserved.
	Next shard.Plan
	// FirstShard indexes the first replaced shard in Current.
	FirstShard int
	// Replaced is how many Current shards are being replaced (1 for a
	// split, >= 2 for a merge).
	Replaced int
	// Primaries is the current primary address of every Current shard.
	Primaries []string
	// TargetDirs holds one fresh durable directory per new shard.
	TargetDirs []string
	// TargetAddrs optionally fixes each target's listen address
	// (defaults to 127.0.0.1:0).
	TargetAddrs []string
	// Routers lists the router addresses to cut over; may be empty for
	// a router-less deployment (clients then learn the plan from the
	// primaries' attestations).
	Routers []string
	// FreezeTTL bounds the source write freeze (DefaultFreezeTTL if 0).
	FreezeTTL time.Duration
	// MaxGroup caps the targets' commit-group size (0 = default).
	MaxGroup int
	// Logf receives progress diagnostics (nil = silent).
	Logf func(string, ...any)
}

// Result reports what one reshard run did.
type Result struct {
	// Plan is the successor plan now being served.
	Plan shard.Plan
	// TargetAddrs are the new shards' serving addresses, in successor
	// shard order for the replaced run.
	TargetAddrs []string
	// CutoverPause is the freeze→cutover window: the only interval in
	// which a write could observe the reshard at all.
	CutoverPause time.Duration
	// GroupsStreamed counts source commit groups replayed into targets
	// during catch-up and drain.
	GroupsStreamed int
	// RecordsMigrated counts snapshot records bulk-loaded into targets.
	RecordsMigrated int
}

// target is one new shard hosted by the coordinator process.
type target struct {
	newIdx int
	span   record.Range
	ds     *core.DurableSystem
	srv    *wire.PrimaryServer
}

// source is one shard being migrated away.
type source struct {
	oldIdx int
	repl   *wire.ReplicationClient
	ctrl   *wire.SPClient
	seq    uint64 // watermark: last source commit group folded into targets
}

// Coordinator hosts the target shards of a completed (or failed) run.
// It must stay alive as long as the targets serve; Close shuts them
// down.
type Coordinator struct {
	targets []*target
	sources []*source
}

// TargetAddr returns the serving address of target i (successor-run
// order).
func (c *Coordinator) TargetAddr(i int) string { return c.targets[i].srv.Addr() }

// Close stops the target servers and their durable systems, and drops
// the source connections.
func (c *Coordinator) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	for _, t := range c.targets {
		if t.srv != nil {
			keep(t.srv.Close())
		}
		if t.ds != nil {
			keep(t.ds.Close())
		}
	}
	for _, s := range c.sources {
		if s.repl != nil {
			keep(s.repl.Close())
		}
		if s.ctrl != nil {
			keep(s.ctrl.Close())
		}
	}
	return first
}

// validate checks the successor plan against the run it claims to
// replace: epoch v+1, surviving spans preserved, and the replaced run's
// span tiled exactly by the new shards.
func validate(cfg *Config) (newCount int, err error) {
	cur, next := cfg.Current, cfg.Next
	if len(cfg.Primaries) != cur.Shards() {
		return 0, fmt.Errorf("reshard: %d primaries for a %d-shard plan", len(cfg.Primaries), cur.Shards())
	}
	if cfg.FirstShard < 0 || cfg.Replaced < 1 || cfg.FirstShard+cfg.Replaced > cur.Shards() {
		return 0, fmt.Errorf("reshard: replaced run [%d,%d) outside a %d-shard plan",
			cfg.FirstShard, cfg.FirstShard+cfg.Replaced, cur.Shards())
	}
	if next.Epoch() != cur.Epoch()+1 {
		return 0, fmt.Errorf("reshard: successor epoch %d does not succeed serving epoch %d", next.Epoch(), cur.Epoch())
	}
	newCount = next.Shards() - cur.Shards() + cfg.Replaced
	if newCount < 1 || newCount != len(cfg.TargetDirs) {
		return 0, fmt.Errorf("reshard: plan implies %d new shards, %d target dirs given", newCount, len(cfg.TargetDirs))
	}
	if len(cfg.TargetAddrs) != 0 && len(cfg.TargetAddrs) != newCount {
		return 0, fmt.Errorf("reshard: %d target addrs for %d new shards", len(cfg.TargetAddrs), newCount)
	}
	for s := 0; s < cfg.FirstShard; s++ {
		if next.Span(s) != cur.Span(s) {
			return 0, fmt.Errorf("reshard: successor plan moves uninvolved shard %d", s)
		}
	}
	for s := cfg.FirstShard + cfg.Replaced; s < cur.Shards(); s++ {
		if next.Span(s-cfg.Replaced+newCount) != cur.Span(s) {
			return 0, fmt.Errorf("reshard: successor plan moves uninvolved shard %d", s)
		}
	}
	runSpan := record.Range{Lo: cur.Span(cfg.FirstShard).Lo, Hi: cur.Span(cfg.FirstShard + cfg.Replaced - 1).Hi}
	tiled := record.Range{Lo: next.Span(cfg.FirstShard).Lo, Hi: next.Span(cfg.FirstShard + newCount - 1).Hi}
	if runSpan != tiled {
		return 0, fmt.Errorf("reshard: new shards tile %v, replaced run spans %v", tiled, runSpan)
	}
	return newCount, nil
}

// opKey returns the search key an op routes by.
func opKey(op *wal.Op) record.Key {
	if op.Kind == wal.OpInsert {
		return op.Rec.Key
	}
	return op.Key
}

// applyGroups filters a batch of source commit groups by span and feeds
// each target its slice as ONE submission — one target commit (one
// fsync) per pull batch, not per source group, so catch-up always
// outruns a hot writer that pays a commit per group. Targets commit in
// parallel: the freeze-window drain costs one commit latency total, not
// one per target, which is what keeps the cutover pause inside a single
// commit-group interval. Op order within and across groups is preserved
// per target (each target sees a disjoint key span, so there is no
// cross-target ordering to preserve).
func (c *Coordinator) applyGroups(gs []wal.Group) error {
	errs := make(chan error, len(c.targets))
	for _, t := range c.targets {
		var ops []wal.Op
		for _, g := range gs {
			for i := range g.Ops {
				if k := opKey(&g.Ops[i]); k >= t.span.Lo && k <= t.span.Hi {
					ops = append(ops, g.Ops[i])
				}
			}
		}
		if len(ops) == 0 {
			errs <- nil
			continue
		}
		go func(t *target, ops []wal.Op) {
			if err := t.ds.Committer().SubmitOps(ops); err != nil {
				errs <- fmt.Errorf("reshard: committing source groups %d..%d into target shard %d: %w",
					gs[0].Seq, gs[len(gs)-1].Seq, t.newIdx, err)
				return
			}
			for i := range ops {
				switch ops[i].Kind {
				case wal.OpInsert:
					t.ds.Owner.Restore([]record.Record{ops[i].Rec})
				case wal.OpDelete:
					t.ds.Owner.Forget([]record.ID{ops[i].ID})
				}
			}
			errs <- nil
		}(t, ops)
	}
	var first error
	for range c.targets {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pullPass drains every source once: pulls commit groups after each
// watermark and replays them into the targets. It returns the number of
// groups replayed (0 = every source is fully caught up).
func (c *Coordinator) pullPass() (int, error) {
	streamed := 0
	for _, s := range c.sources {
		for {
			gs, snapshotNeeded, err := s.repl.Pull(s.seq, 64)
			if err != nil {
				return streamed, fmt.Errorf("reshard: tailing shard %d: %w", s.oldIdx, err)
			}
			if snapshotNeeded {
				return streamed, fmt.Errorf("reshard: shard %d's retention window passed watermark %d; raise the hub retention or re-run",
					s.oldIdx, s.seq)
			}
			if len(gs) == 0 {
				break
			}
			if err := c.applyGroups(gs); err != nil {
				return streamed, err
			}
			s.seq = gs[len(gs)-1].Seq
			streamed += len(gs)
		}
	}
	return streamed, nil
}

// Run executes one online reshard and returns the hosting Coordinator
// (which must outlive the new topology's serving life) plus a Result.
// On error the half-built coordinator is closed and the deployment is
// left on the current topology — the atomic publish in phase 3 is the
// only step with external effects, and it is ordered so every
// irreversible action happens after the successor set is fully able to
// serve.
func Run(cfg Config) (*Coordinator, *Result, error) {
	newCount, err := validate(&cfg)
	if err != nil {
		return nil, nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	freezeTTL := cfg.FreezeTTL
	if freezeTTL <= 0 {
		freezeTTL = DefaultFreezeTTL
	}
	c := &Coordinator{}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()

	// Phase 1: bootstrap. Snapshot every source, verify its attestation,
	// and bring up one warming target per new shard.
	res := &Result{Plan: cfg.Next}
	var snapRecs [][]record.Record
	for i := 0; i < cfg.Replaced; i++ {
		oldIdx := cfg.FirstShard + i
		repl, err := wire.DialReplication(cfg.Primaries[oldIdx])
		if err != nil {
			return nil, nil, fmt.Errorf("reshard: dialing source shard %d: %w", oldIdx, err)
		}
		ctrl, err := wire.DialSP(cfg.Primaries[oldIdx])
		if err != nil {
			repl.Close()
			return nil, nil, fmt.Errorf("reshard: dialing source shard %d control: %w", oldIdx, err)
		}
		c.sources = append(c.sources, &source{oldIdx: oldIdx, repl: repl, ctrl: ctrl})
		si, recs, seq, err := repl.Snapshot()
		if err != nil {
			return nil, nil, fmt.Errorf("reshard: snapshotting source shard %d: %w", oldIdx, err)
		}
		if si.Index != oldIdx || !si.Plan.Equal(cfg.Current) {
			return nil, nil, fmt.Errorf("reshard: source %s attests shard %d of %v, want shard %d of %v",
				cfg.Primaries[oldIdx], si.Index, si.Plan, oldIdx, cfg.Current)
		}
		c.sources[i].seq = seq
		snapRecs = append(snapRecs, recs)
		logf("reshard: source shard %d snapshot: %d records at seq %d", oldIdx, len(recs), seq)
	}
	for j := 0; j < newCount; j++ {
		newIdx := cfg.FirstShard + j
		span := cfg.Next.Span(newIdx)
		var part []record.Record
		for _, recs := range snapRecs {
			for _, r := range recs {
				if r.Key >= span.Lo && r.Key <= span.Hi {
					part = append(part, r)
				}
			}
		}
		ds, err := core.OpenDurableSystem(cfg.TargetDirs[j], part, cfg.MaxGroup)
		if err != nil {
			return nil, nil, fmt.Errorf("reshard: opening target shard %d: %w", newIdx, err)
		}
		hub := replica.Attach(ds, 0)
		addr := "127.0.0.1:0"
		if len(cfg.TargetAddrs) > 0 {
			addr = cfg.TargetAddrs[j]
		}
		srv, err := wire.ServePrimary(addr, ds, hub, logf,
			wire.WithShardInfo(wire.ShardInfo{Index: newIdx, Plan: cfg.Next}))
		if err != nil {
			ds.Close()
			return nil, nil, fmt.Errorf("reshard: serving target shard %d: %w", newIdx, err)
		}
		srv.SetWarming(true)
		c.targets = append(c.targets, &target{newIdx: newIdx, span: span, ds: ds, srv: srv})
		res.RecordsMigrated += len(part)
		res.TargetAddrs = append(res.TargetAddrs, srv.Addr())
		logf("reshard: target shard %d warming on %s with %d records", newIdx, srv.Addr(), len(part))
	}

	// Phase 2: catch-up until one full pass over every source streams
	// nothing — lag zero, every remaining byte can only appear inside the
	// freeze window.
	for {
		n, err := c.pullPass()
		if err != nil {
			return nil, nil, err
		}
		res.GroupsStreamed += n
		if n == 0 {
			break
		}
	}
	logf("reshard: caught up (%d groups streamed); freezing sources", res.GroupsStreamed)

	// Phase 3: freeze, drain, publish. The pause clock runs from the
	// first freeze to the last router ack.
	t0 := time.Now()
	for _, s := range c.sources {
		if err := s.ctrl.Freeze(freezeTTL); err != nil {
			return nil, nil, fmt.Errorf("reshard: freezing shard %d: %w", s.oldIdx, err)
		}
	}
	n, err := c.pullPass()
	if err != nil {
		return nil, nil, err
	}
	res.GroupsStreamed += n

	// Targets are now byte-complete; let them take client traffic.
	for _, t := range c.targets {
		t.srv.SetWarming(false)
	}
	// Surviving primaries adopt the successor plan (their spans are
	// unchanged; their indices may shift past the replaced run).
	for s := 0; s < cfg.Current.Shards(); s++ {
		if s >= cfg.FirstShard && s < cfg.FirstShard+cfg.Replaced {
			continue
		}
		newIdx := s
		if s >= cfg.FirstShard+cfg.Replaced {
			newIdx = s - cfg.Replaced + newCount
		}
		ctrl, err := wire.DialSP(cfg.Primaries[s])
		if err != nil {
			return nil, nil, fmt.Errorf("reshard: dialing surviving shard %d: %w", s, err)
		}
		uerr := ctrl.PlanUpdate(wire.ShardInfo{Index: newIdx, Plan: cfg.Next})
		ctrl.Close()
		if uerr != nil {
			return nil, nil, fmt.Errorf("reshard: updating surviving shard %d: %w", s, uerr)
		}
	}
	// Routers swap to the successor topology; their builds re-attest the
	// full upstream set before the pointer swap.
	cut := wire.Cutover{Plan: cfg.Next, Shards: make([]wire.CutoverShard, cfg.Next.Shards())}
	for idx := 0; idx < cfg.Next.Shards(); idx++ {
		var addr string
		switch {
		case idx < cfg.FirstShard:
			addr = cfg.Primaries[idx]
		case idx < cfg.FirstShard+newCount:
			addr = c.targets[idx-cfg.FirstShard].srv.Addr()
		default:
			addr = cfg.Primaries[idx-newCount+cfg.Replaced]
		}
		cut.Shards[idx] = wire.CutoverShard{SPs: []string{addr}, TEs: []string{addr}}
	}
	for _, raddr := range cfg.Routers {
		rc, err := wire.DialSP(raddr)
		if err != nil {
			return nil, nil, fmt.Errorf("reshard: dialing router %s: %w", raddr, err)
		}
		cerr := rc.ReshardCutover(cut)
		rc.Close()
		if cerr != nil {
			return nil, nil, fmt.Errorf("reshard: cutting over router %s: %w", raddr, cerr)
		}
	}
	res.CutoverPause = time.Since(t0)
	// Retire the sources: thaw-and-fence. Any writer blocked on the
	// freeze fails out with a retirement error and must re-route to the
	// successor topology.
	for _, s := range c.sources {
		if err := s.ctrl.Retire(); err != nil {
			return nil, nil, fmt.Errorf("reshard: retiring shard %d: %w", s.oldIdx, err)
		}
	}
	ok = true
	logf("reshard: cut over to %v in %v (%d groups streamed, %d records migrated)",
		cfg.Next, res.CutoverPause, res.GroupsStreamed, res.RecordsMigrated)
	return c, res, nil
}
