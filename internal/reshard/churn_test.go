package reshard

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sae/internal/record"
	"sae/internal/router"
	"sae/internal/shard"
	"sae/internal/wire"
	"sae/internal/workload"
)

// TestSplitUnderRouterChurn is the resharding chaos harness: verified
// readers stream through the router for the whole life of an online
// split — before, during the bulk copy, across the freeze and the
// cutover, and after — while a writer hammers the very shard being
// split. The invariant is strict: ZERO reader-visible errors and zero
// failed verifications. The writer is allowed exactly one visible
// artifact, the retirement fence, after which it must re-route to the
// successor topology and keep writing.
func TestSplitUnderRouterChurn(t *testing.T) {
	c := newCluster(t, 8_000, 2)
	r, err := router.New(router.Config{
		SPs:           c.addrs,
		TEs:           c.addrs,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	// Split at the midpoint of the populated key range (the raw span runs
	// to the top of the key space, far above any data).
	span1 := c.plan.Span(1)
	at := (span1.Lo + record.KeyDomain) / 2
	next, err := c.plan.SplitShard(1, []record.Key{at})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var bg sync.WaitGroup

	// Verified readers through the router: random spans plus the full
	// domain, zero tolerance for errors.
	const readers = 3
	readerErrs := make([]error, readers)
	var reads [readers]int
	for w := 0; w < readers; w++ {
		bg.Add(1)
		go func(w int) {
			defer bg.Done()
			vc, err := wire.DialVerified(r.Addr())
			if err != nil {
				readerErrs[w] = err
				return
			}
			defer vc.Close()
			qs := append(workload.Queries(40, workload.DefaultExtent, int64(700+w)),
				record.Range{Lo: 0, Hi: record.KeyDomain})
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := vc.Query(qs[i%len(qs)]); err != nil {
					readerErrs[w] = fmt.Errorf("read %d: %w", i, err)
					return
				}
				reads[w]++
			}
		}(w)
	}

	// Writer into the splitting shard. Pre-cutover it writes to the
	// source primary; when the retirement fence trips it waits for the
	// successor topology and re-routes each key by the new plan.
	var (
		newTopo   atomic.Pointer[Result]
		writerErr error
		rerouted  atomic.Bool
		acked     int
	)
	bg.Add(1)
	go func() {
		defer bg.Done()
		wc, err := wire.DialSP(c.addrs[1])
		if err != nil {
			writerErr = err
			return
		}
		defer func() { wc.Close() }()
		targets := make(map[int]*wire.SPClient)
		defer func() {
			for _, tc := range targets {
				tc.Close()
			}
		}()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := span1.Lo + record.Key(uint64(i)*6151%uint64(record.KeyDomain-span1.Lo))
			rec := record.Synthesize(record.ID(1<<41+i), key)
			if !rerouted.Load() {
				err := wc.InsertBatch([]record.Record{rec})
				if err == nil {
					acked++
					continue
				}
				if !strings.Contains(err.Error(), "retired") {
					writerErr = err
					return
				}
				// The fence: wait for the successor topology, then fall
				// through and re-submit the same record to it.
				for newTopo.Load() == nil {
					select {
					case <-stop:
						return
					case <-time.After(time.Millisecond):
					}
				}
				rerouted.Store(true)
			}
			res := newTopo.Load()
			idx := res.Plan.ShardFor(key)
			tc, ok := targets[idx]
			if !ok {
				tc, err = wire.DialSP(res.TargetAddrs[idx-1])
				if err != nil {
					writerErr = err
					return
				}
				targets[idx] = tc
			}
			if err := tc.InsertBatch([]record.Record{rec}); err != nil {
				writerErr = err
				return
			}
			acked++
		}
	}()

	// Let the workload warm up, then split the hot shard live.
	time.Sleep(50 * time.Millisecond)
	co, res, err := Run(Config{
		Current:    c.plan,
		Next:       next,
		FirstShard: 1,
		Replaced:   1,
		Primaries:  c.addrs,
		TargetDirs: []string{t.TempDir(), t.TempDir()},
		Routers:    []string{r.Addr()},
		Logf:       t.Logf,
	})
	if err != nil {
		close(stop)
		bg.Wait()
		t.Fatalf("split under churn: %v", err)
	}
	defer co.Close()
	newTopo.Store(res)

	// Keep the workload running on the successor topology for a while.
	time.Sleep(200 * time.Millisecond)
	close(stop)
	bg.Wait()

	for w, err := range readerErrs {
		if err != nil {
			t.Errorf("reader %d failed: %v", w, err)
		}
	}
	if writerErr != nil {
		t.Errorf("writer failed: %v", writerErr)
	}
	if t.Failed() {
		t.FailNow()
	}
	total := 0
	for _, n := range reads {
		total += n
	}
	t.Logf("churn: %d verified reads, %d acked writes (rerouted=%v), pause %v",
		total, acked, rerouted.Load(), res.CutoverPause)
	if total == 0 {
		t.Fatal("no verified reads completed")
	}
	if !rerouted.Load() {
		t.Error("writer never hit the retirement fence (split finished before any write?)")
	}

	// The router serves the successor plan and counted exactly one swap.
	if !r.Plan().Equal(next) {
		t.Fatalf("router serves %v, want %v", r.Plan(), next)
	}
	if ctrs := r.Counters(); ctrs.Cutovers != 1 {
		t.Fatalf("router counted %d cutovers, want 1", ctrs.Cutovers)
	}

	// Post-cutover readers observe the successor epoch on a spanning
	// query, and the full-domain count through the router matches what
	// the primaries durably own.
	vc, err := wire.DialVerified(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	recs, _, err := vc.Query(record.Range{Lo: 0, Hi: record.KeyDomain})
	if err != nil {
		t.Fatalf("post-cutover spanning query: %v", err)
	}
	if vc.Epoch() != next.Epoch() {
		t.Fatalf("post-cutover answer stamped epoch %d, want %d", vc.Epoch(), next.Epoch())
	}
	want := c.syss[0].Owner.Count() + countOwned(t, res, next)
	if len(recs) != want {
		t.Fatalf("spanning query returned %d records, primaries own %d", len(recs), want)
	}
}

// countOwned sums the records the successor targets serve for their
// spans (asked directly, verified).
func countOwned(t *testing.T, res *Result, next shard.Plan) int {
	t.Helper()
	total := 0
	for i, addr := range res.TargetAddrs {
		total += countIn(t, addr, next.Span(1+i))
	}
	return total
}
