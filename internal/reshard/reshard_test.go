package reshard

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sae/internal/core"
	"sae/internal/record"
	"sae/internal/replica"
	"sae/internal/shard"
	"sae/internal/wire"
	"sae/internal/workload"
)

// cluster is a live pre-reshard deployment: one durable primary per
// shard.
type cluster struct {
	plan  shard.Plan
	syss  []*core.DurableSystem
	srvs  []*wire.PrimaryServer
	addrs []string
}

// newCluster generates n records, splits them across shards and serves
// each part from a durable primary.
func newCluster(t *testing.T, n, shards int) *cluster {
	t.Helper()
	ds, err := workload.Generate(workload.UNF, n, 42)
	if err != nil {
		t.Fatalf("generating dataset: %v", err)
	}
	c := &cluster{plan: shard.PlanFor(ds.Records, shards)}
	parts := c.plan.Partition(ds.Records)
	for i := 0; i < shards; i++ {
		sys, err := core.OpenDurableSystem(t.TempDir(), parts[i], 16)
		if err != nil {
			t.Fatalf("opening shard %d: %v", i, err)
		}
		t.Cleanup(func() { sys.Close() })
		hub := replica.Attach(sys, 0)
		srv, err := wire.ServePrimary("127.0.0.1:0", sys, hub, nil,
			wire.WithShardInfo(wire.ShardInfo{Index: i, Plan: c.plan}))
		if err != nil {
			t.Fatalf("serving shard %d: %v", i, err)
		}
		t.Cleanup(func() { srv.Close() })
		c.syss = append(c.syss, sys)
		c.srvs = append(c.srvs, srv)
		c.addrs = append(c.addrs, srv.Addr())
	}
	return c
}

// countIn asks addr (directly, verified) how many records live in span.
func countIn(t *testing.T, addr string, span record.Range) int {
	t.Helper()
	vc, err := wire.DialVerified(addr)
	if err != nil {
		t.Fatalf("dialing %s: %v", addr, err)
	}
	defer vc.Close()
	recs, _, err := vc.Query(span)
	if err != nil {
		t.Fatalf("verified query %v on %s: %v", span, addr, err)
	}
	for _, r := range recs {
		if r.Key < span.Lo || r.Key > span.Hi {
			t.Fatalf("record key %d escapes span %v", r.Key, span)
		}
	}
	return len(recs)
}

// TestRunValidation: malformed configs are rejected before any network
// traffic.
func TestRunValidation(t *testing.T) {
	base := shard.PlanFor([]record.Record{record.Synthesize(1, 10), record.Synthesize(2, record.KeyDomain - 10)}, 2)
	split, err := base.SplitShard(0, []record.Key{base.Span(0).Hi / 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"primaries count", Config{Current: base, Next: split, FirstShard: 0, Replaced: 1,
			Primaries: []string{"x"}, TargetDirs: []string{"a", "b"}}, "primaries"},
		{"epoch not successor", Config{Current: base, Next: base, FirstShard: 0, Replaced: 1,
			Primaries: []string{"x", "y"}, TargetDirs: []string{"a", "b"}}, "epoch"},
		{"target dirs count", Config{Current: base, Next: split, FirstShard: 0, Replaced: 1,
			Primaries: []string{"x", "y"}, TargetDirs: []string{"a"}}, "target dirs"},
		{"moved survivor", Config{Current: base, Next: split, FirstShard: 1, Replaced: 1,
			Primaries: []string{"x", "y"}, TargetDirs: []string{"a", "b"}}, "uninvolved"},
		{"run out of range", Config{Current: base, Next: split, FirstShard: 1, Replaced: 2,
			Primaries: []string{"x", "y"}, TargetDirs: []string{"a", "b"}}, "outside"},
	}
	for _, tc := range cases {
		_, _, err := Run(tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestLiveSplit: split a hot shard in two while a writer hammers it.
// Every record — bulk snapshot, catch-up stream and freeze-window
// stragglers alike — must land on exactly one target, the survivors must
// adopt the successor plan, and the sources must be fenced.
func TestLiveSplit(t *testing.T) {
	c := newCluster(t, 4_000, 2)
	// Split at the midpoint of the populated key range (the raw span runs
	// to the top of the key space, far above any data).
	span1 := c.plan.Span(1)
	at := (span1.Lo + record.KeyDomain) / 2
	next, err := c.plan.SplitShard(1, []record.Key{at})
	if err != nil {
		t.Fatal(err)
	}

	// Writer: single-record commits into the splitting shard until the
	// retirement fence cuts it off. acked counts writes the source
	// durably owned and therefore must surface on a target.
	var (
		wg     sync.WaitGroup
		acked  int
		wrErr  error
		stop   = make(chan struct{})
		closed sync.Once
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		wc, err := wire.DialSP(c.addrs[1])
		if err != nil {
			wrErr = err
			return
		}
		defer wc.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := span1.Lo + record.Key(uint64(i)*6151%uint64(record.KeyDomain-span1.Lo))
			rec := record.Synthesize(record.ID(1<<41+i), key)
			if err := wc.InsertBatch([]record.Record{rec}); err != nil {
				if strings.Contains(err.Error(), "retired") {
					return // the expected end: the shard was migrated away
				}
				wrErr = err
				return
			}
			acked++
		}
	}()

	co, res, err := Run(Config{
		Current:    c.plan,
		Next:       next,
		FirstShard: 1,
		Replaced:   1,
		Primaries:  c.addrs,
		TargetDirs: []string{t.TempDir(), t.TempDir()},
		FreezeTTL:  2 * time.Second,
		Logf:       t.Logf,
	})
	if err != nil {
		closed.Do(func() { close(stop) })
		wg.Wait()
		t.Fatalf("split: %v", err)
	}
	defer co.Close()
	closed.Do(func() { close(stop) })
	wg.Wait()
	if wrErr != nil {
		t.Fatalf("writer: %v", wrErr)
	}
	t.Logf("split: %d acked writes, %d groups streamed, %d migrated, pause %v",
		acked, res.GroupsStreamed, res.RecordsMigrated, res.CutoverPause)

	// Byte-completeness: the targets hold exactly what the source owned.
	want := c.syss[1].Owner.Count()
	got := countIn(t, res.TargetAddrs[0], next.Span(1)) + countIn(t, res.TargetAddrs[1], next.Span(2))
	if got != want {
		t.Fatalf("targets hold %d records, source owned %d", got, want)
	}
	if res.CutoverPause <= 0 {
		t.Fatalf("cutover pause not measured: %v", res.CutoverPause)
	}

	// The survivor attests the successor plan at epoch v+1, same index.
	sp, err := wire.DialSP(c.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	si, err := sp.ShardMap()
	sp.Close()
	if err != nil {
		t.Fatal(err)
	}
	if si.Index != 0 || !si.Plan.Equal(next) {
		t.Fatalf("survivor attests shard %d of %v, want shard 0 of %v", si.Index, si.Plan, next)
	}

	// The source is fenced: verified reads and writes both refuse.
	vc, err := wire.DialVerified(c.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	if _, _, err := vc.Query(span1); err == nil || !strings.Contains(err.Error(), "retired") {
		t.Fatalf("retired source still serves verified reads: %v", err)
	}

	// Targets attest the successor plan and stamp its epoch.
	tvc, err := wire.DialVerified(res.TargetAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer tvc.Close()
	if _, _, err := tvc.Query(next.Span(1)); err != nil {
		t.Fatalf("target verified query: %v", err)
	}
	if tvc.Epoch() != next.Epoch() {
		t.Fatalf("target stamped epoch %d, want %d", tvc.Epoch(), next.Epoch())
	}
}

// TestLiveMerge: merge two shards into one; the target holds the union
// and the surviving shard's index shifts down under the successor plan.
func TestLiveMerge(t *testing.T) {
	c := newCluster(t, 3_000, 3)
	next, err := c.plan.MergeShards(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	co, res, err := Run(Config{
		Current:    c.plan,
		Next:       next,
		FirstShard: 0,
		Replaced:   2,
		Primaries:  c.addrs,
		TargetDirs: []string{t.TempDir()},
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	defer co.Close()

	want := c.syss[0].Owner.Count() + c.syss[1].Owner.Count()
	if got := countIn(t, res.TargetAddrs[0], next.Span(0)); got != want {
		t.Fatalf("merged target holds %d records, sources owned %d", got, want)
	}
	if res.RecordsMigrated != want {
		t.Fatalf("RecordsMigrated = %d, want %d", res.RecordsMigrated, want)
	}

	// The survivor (old shard 2) now attests index 1 of the 2-shard plan.
	sp, err := wire.DialSP(c.addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	si, err := sp.ShardMap()
	sp.Close()
	if err != nil {
		t.Fatal(err)
	}
	if si.Index != 1 || !si.Plan.Equal(next) {
		t.Fatalf("survivor attests shard %d of %v, want shard 1 of %v", si.Index, si.Plan, next)
	}

	// Both sources are fenced.
	for i := 0; i < 2; i++ {
		wc, err := wire.DialSP(c.addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		err = wc.InsertBatch([]record.Record{record.Synthesize(1 << 42, c.plan.Span(i).Lo)})
		wc.Close()
		if err == nil || !strings.Contains(err.Error(), "retired") {
			t.Fatalf("retired source %d still accepts writes: %v", i, err)
		}
	}
}
