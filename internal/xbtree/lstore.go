package xbtree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sae/internal/digest"
	"sae/internal/exec"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// The paper's XB-Tree entry field e.L points to "a disk page containing the
// ids and digests of the tuples in T with a values equal to e.sk". With
// mostly-unique keys a literal page per key would waste almost 4 KB per
// record, so lists share slotted pages; a list that outgrows a slot moves to
// a dedicated chain of pages. Either way, reading a short list costs one
// page access, matching the paper's cost model.

// Tuple is the TE-side projection of a record: its id and digest (the search
// key lives in the tree entry the list hangs off).
type Tuple struct {
	ID     record.ID
	Digest digest.Digest
}

// TupleSize is the on-page footprint of one tuple.
const TupleSize = 8 + digest.Size // 28

// listRef locates a tuple list: a slot in a shared page, or — when slot is
// chainSlot — the head of a dedicated chain.
type listRef struct {
	page pagestore.PageID
	slot uint16
}

const chainSlot = 0xFFFF

var invalidRef = listRef{page: pagestore.InvalidPage}

// Shared slotted page layout:
//
//	[0:2] nslots | [2:4] dataStart | slot dir {off uint16, len uint16}... | free | data
//
// Data grows down from the page end; the directory grows up. A slot with
// off == 0 is dead. Chain page layout:
//
//	[0:4] next page id | [4:6] tuple count | tuples...
const (
	slotHeader = 4
	slotDirEnt = 4
	// maxInlineTuples is the largest list kept in a shared slot. One more
	// tuple converts the list to a chain.
	maxInlineTuples = (pagestore.PageSize - slotHeader - slotDirEnt) / TupleSize // 146
	chainHeader     = 6
	// chainCapacity is the number of tuples per chain page.
	chainCapacity = (pagestore.PageSize - chainHeader) / TupleSize // 146
)

// errTupleNotFound is returned when removing an id that is not in the list.
var errTupleNotFound = errors.New("xbtree: tuple id not in list")

// lstore manages tuple lists on a page store.
type lstore struct {
	store pagestore.Store
	// fillPage is the shared page new allocations try first; InvalidPage
	// when none is open. A simple bump allocator: when the current page
	// cannot fit a list, a fresh one is opened. Dead space from moved
	// lists is reclaimed by in-page compaction on demand.
	fillPage pagestore.PageID
	pages    int
}

func newLStore(store pagestore.Store) *lstore {
	return &lstore{store: store, fillPage: pagestore.InvalidPage}
}

// List pages are not served by the decoded-node cache (lists are read at
// most once per query boundary), so the lstore talks to the raw store and
// charges the request context at exactly the store-access points, keeping
// the per-request counters in lockstep with the global ones.

func (s *lstore) readPage(ctx *exec.Context, id pagestore.PageID, buf []byte) error {
	if err := s.store.Read(id, buf); err != nil {
		return err
	}
	ctx.AccountRead()
	return nil
}

func (s *lstore) writePage(ctx *exec.Context, id pagestore.PageID, buf []byte) error {
	if err := s.store.Write(id, buf); err != nil {
		return err
	}
	ctx.AccountWrite()
	return nil
}

func encodeTuples(buf []byte, ts []Tuple) {
	off := 0
	for _, t := range ts {
		binary.BigEndian.PutUint64(buf[off:off+8], uint64(t.ID))
		copy(buf[off+8:off+TupleSize], t.Digest[:])
		off += TupleSize
	}
}

func decodeTuples(buf []byte, n int) []Tuple {
	ts := make([]Tuple, n)
	off := 0
	for i := 0; i < n; i++ {
		ts[i].ID = record.ID(binary.BigEndian.Uint64(buf[off : off+8]))
		ts[i].Digest = digest.FromBytes(buf[off+8 : off+TupleSize])
		off += TupleSize
	}
	return ts
}

// alloc stores a fresh list and returns its reference.
func (s *lstore) alloc(ctx *exec.Context, ts []Tuple) (listRef, error) {
	if len(ts) > maxInlineTuples {
		return s.allocChain(ctx, ts)
	}
	need := len(ts) * TupleSize
	if s.fillPage != pagestore.InvalidPage {
		if ref, ok, err := s.tryPlace(ctx, s.fillPage, ts, need); err != nil || ok {
			return ref, err
		}
	}
	id, err := s.store.Allocate()
	if err != nil {
		return invalidRef, fmt.Errorf("xbtree: allocating list page: %w", err)
	}
	ctx.AccountAlloc()
	s.pages++
	var buf [pagestore.PageSize]byte
	binary.BigEndian.PutUint16(buf[0:2], 0)
	binary.BigEndian.PutUint16(buf[2:4], pagestore.PageSize)
	if err := s.writePage(ctx, id, buf[:]); err != nil {
		return invalidRef, fmt.Errorf("xbtree: initializing list page: %w", err)
	}
	s.fillPage = id
	ref, ok, err := s.tryPlace(ctx, id, ts, need)
	if err != nil {
		return invalidRef, err
	}
	if !ok {
		return invalidRef, fmt.Errorf("xbtree: list of %d tuples does not fit a fresh page", len(ts))
	}
	return ref, nil
}

// tryPlace attempts to add a list to a specific shared page, compacting it
// first if dead space would make it fit.
func (s *lstore) tryPlace(ctx *exec.Context, page pagestore.PageID, ts []Tuple, need int) (listRef, bool, error) {
	var buf [pagestore.PageSize]byte
	if err := s.readPage(ctx, page, buf[:]); err != nil {
		return invalidRef, false, fmt.Errorf("xbtree: reading list page %d: %w", page, err)
	}
	nslots := int(binary.BigEndian.Uint16(buf[0:2]))
	dataStart := int(binary.BigEndian.Uint16(buf[2:4]))
	if dataStart == 0 {
		dataStart = pagestore.PageSize // uint16 wraps at exactly 4096
	}

	// Reuse a dead slot if one exists, otherwise the directory grows.
	slot := -1
	for i := 0; i < nslots; i++ {
		if binary.BigEndian.Uint16(buf[slotHeader+i*slotDirEnt:]) == 0 {
			slot = i
			break
		}
	}
	dirEnd := slotHeader + nslots*slotDirEnt
	growDir := 0
	if slot == -1 {
		growDir = slotDirEnt
	}
	free := dataStart - dirEnd
	if free < need+growDir {
		if !compactPage(buf[:]) {
			return invalidRef, false, nil
		}
		dataStart = int(binary.BigEndian.Uint16(buf[2:4]))
		if dataStart == 0 {
			dataStart = pagestore.PageSize
		}
		free = dataStart - dirEnd
		if free < need+growDir {
			return invalidRef, false, nil
		}
	}
	if slot == -1 {
		slot = nslots
		nslots++
		binary.BigEndian.PutUint16(buf[0:2], uint16(nslots))
	}
	dataStart -= need
	encodeTuples(buf[dataStart:dataStart+need], ts)
	binary.BigEndian.PutUint16(buf[2:4], uint16(dataStart%pagestore.PageSize))
	binary.BigEndian.PutUint16(buf[slotHeader+slot*slotDirEnt:], uint16(dataStart))
	binary.BigEndian.PutUint16(buf[slotHeader+slot*slotDirEnt+2:], uint16(need))
	if err := s.writePage(ctx, page, buf[:]); err != nil {
		return invalidRef, false, fmt.Errorf("xbtree: writing list page %d: %w", page, err)
	}
	return listRef{page: page, slot: uint16(slot)}, true, nil
}

// compactPage rewrites live list data flush against the page end, reclaiming
// dead space left by moved or shrunk lists. Returns false if nothing was
// reclaimed.
func compactPage(buf []byte) bool {
	nslots := int(binary.BigEndian.Uint16(buf[0:2]))
	type liveSlot struct {
		idx, off, ln int
	}
	var live []liveSlot
	used := 0
	for i := 0; i < nslots; i++ {
		off := int(binary.BigEndian.Uint16(buf[slotHeader+i*slotDirEnt:]))
		ln := int(binary.BigEndian.Uint16(buf[slotHeader+i*slotDirEnt+2:]))
		if off != 0 {
			live = append(live, liveSlot{idx: i, off: off, ln: ln})
			used += ln
		}
	}
	dataStart := int(binary.BigEndian.Uint16(buf[2:4]))
	if dataStart == 0 {
		dataStart = pagestore.PageSize
	}
	if pagestore.PageSize-dataStart == used {
		return false // already compact
	}
	var scratch [pagestore.PageSize]byte
	writeAt := pagestore.PageSize
	for _, ls := range live {
		writeAt -= ls.ln
		copy(scratch[writeAt:], buf[ls.off:ls.off+ls.ln])
		binary.BigEndian.PutUint16(buf[slotHeader+ls.idx*slotDirEnt:], uint16(writeAt))
	}
	copy(buf[writeAt:], scratch[writeAt:])
	binary.BigEndian.PutUint16(buf[2:4], uint16(writeAt%pagestore.PageSize))
	return true
}

// read returns the tuples of a list.
func (s *lstore) read(ctx *exec.Context, ref listRef) ([]Tuple, error) {
	if ref.slot == chainSlot {
		return s.readChain(ctx, ref.page)
	}
	var buf [pagestore.PageSize]byte
	if err := s.readPage(ctx, ref.page, buf[:]); err != nil {
		return nil, fmt.Errorf("xbtree: reading list page %d: %w", ref.page, err)
	}
	off := int(binary.BigEndian.Uint16(buf[slotHeader+int(ref.slot)*slotDirEnt:]))
	ln := int(binary.BigEndian.Uint16(buf[slotHeader+int(ref.slot)*slotDirEnt+2:]))
	if off == 0 {
		return nil, fmt.Errorf("xbtree: dead list slot %d on page %d", ref.slot, ref.page)
	}
	return decodeTuples(buf[off:off+ln], ln/TupleSize), nil
}

// xorOf returns the XOR of the digests in a list (e.L⊕ in the paper).
func (s *lstore) xorOf(ctx *exec.Context, ref listRef) (digest.Digest, error) {
	ts, err := s.read(ctx, ref)
	if err != nil {
		return digest.Zero, err
	}
	var acc digest.Accumulator
	for _, t := range ts {
		acc.Add(t.Digest)
	}
	return acc.Sum(), nil
}

// appendTuple adds a tuple to a list, returning the (possibly relocated)
// reference.
func (s *lstore) appendTuple(ctx *exec.Context, ref listRef, t Tuple) (listRef, error) {
	if ref.slot == chainSlot {
		return s.appendChain(ctx, ref, t)
	}
	ts, err := s.read(ctx, ref)
	if err != nil {
		return invalidRef, err
	}
	ts = append(ts, t)
	if len(ts) > maxInlineTuples {
		if err := s.freeSlot(ctx, ref); err != nil {
			return invalidRef, err
		}
		return s.allocChain(ctx, ts)
	}
	// Try to grow in place: free the old slot, then place on the same page
	// (compaction makes the freed bytes reusable immediately).
	if err := s.freeSlot(ctx, ref); err != nil {
		return invalidRef, err
	}
	need := len(ts) * TupleSize
	if newRef, ok, err := s.tryPlace(ctx, ref.page, ts, need); err != nil || ok {
		return newRef, err
	}
	return s.alloc(ctx, ts)
}

// removeTuple deletes the tuple with the given id, returning its digest and
// the (possibly relocated) reference. Lists may become empty; an empty list
// remains allocated so its tree entry stays valid (tombstone semantics).
func (s *lstore) removeTuple(ctx *exec.Context, ref listRef, id record.ID) (digest.Digest, listRef, error) {
	ts, err := s.read(ctx, ref)
	if err != nil {
		return digest.Zero, invalidRef, err
	}
	at := -1
	for i, t := range ts {
		if t.ID == id {
			at = i
			break
		}
	}
	if at == -1 {
		return digest.Zero, invalidRef, fmt.Errorf("%w: id=%d", errTupleNotFound, id)
	}
	d := ts[at].Digest
	ts = append(ts[:at], ts[at+1:]...)
	if ref.slot == chainSlot && len(ts) <= maxInlineTuples {
		// Chain shrank enough to move back inline.
		if err := s.freeChain(ctx, ref.page); err != nil {
			return digest.Zero, invalidRef, err
		}
		newRef, err := s.alloc(ctx, ts)
		return d, newRef, err
	}
	if ref.slot == chainSlot {
		if err := s.freeChain(ctx, ref.page); err != nil {
			return digest.Zero, invalidRef, err
		}
		newRef, err := s.allocChain(ctx, ts)
		return d, newRef, err
	}
	// Shrink in place: shorten the slot, leaving dead bytes for compaction.
	var buf [pagestore.PageSize]byte
	if err := s.readPage(ctx, ref.page, buf[:]); err != nil {
		return digest.Zero, invalidRef, fmt.Errorf("xbtree: reading list page %d: %w", ref.page, err)
	}
	off := int(binary.BigEndian.Uint16(buf[slotHeader+int(ref.slot)*slotDirEnt:]))
	encodeTuples(buf[off:off+len(ts)*TupleSize], ts)
	binary.BigEndian.PutUint16(buf[slotHeader+int(ref.slot)*slotDirEnt+2:], uint16(len(ts)*TupleSize))
	if err := s.writePage(ctx, ref.page, buf[:]); err != nil {
		return digest.Zero, invalidRef, fmt.Errorf("xbtree: writing list page %d: %w", ref.page, err)
	}
	return d, ref, nil
}

// freeSlot marks a shared slot dead. The bytes are reclaimed by compaction.
func (s *lstore) freeSlot(ctx *exec.Context, ref listRef) error {
	var buf [pagestore.PageSize]byte
	if err := s.readPage(ctx, ref.page, buf[:]); err != nil {
		return fmt.Errorf("xbtree: reading list page %d: %w", ref.page, err)
	}
	binary.BigEndian.PutUint16(buf[slotHeader+int(ref.slot)*slotDirEnt:], 0)
	binary.BigEndian.PutUint16(buf[slotHeader+int(ref.slot)*slotDirEnt+2:], 0)
	if err := s.writePage(ctx, ref.page, buf[:]); err != nil {
		return fmt.Errorf("xbtree: writing list page %d: %w", ref.page, err)
	}
	return nil
}

// allocChain stores a large list across dedicated chain pages.
func (s *lstore) allocChain(ctx *exec.Context, ts []Tuple) (listRef, error) {
	next := pagestore.InvalidPage
	// Build back to front so each page links to the next.
	for end := len(ts); end > 0 || next == pagestore.InvalidPage; {
		start := end - chainCapacity
		if start < 0 {
			start = 0
		}
		id, err := s.store.Allocate()
		if err != nil {
			return invalidRef, fmt.Errorf("xbtree: allocating chain page: %w", err)
		}
		ctx.AccountAlloc()
		s.pages++
		var buf [pagestore.PageSize]byte
		binary.BigEndian.PutUint32(buf[0:4], uint32(next))
		binary.BigEndian.PutUint16(buf[4:6], uint16(end-start))
		encodeTuples(buf[chainHeader:], ts[start:end])
		if err := s.writePage(ctx, id, buf[:]); err != nil {
			return invalidRef, fmt.Errorf("xbtree: writing chain page %d: %w", id, err)
		}
		next = id
		end = start
		if end == 0 {
			break
		}
	}
	return listRef{page: next, slot: chainSlot}, nil
}

func (s *lstore) readChain(ctx *exec.Context, head pagestore.PageID) ([]Tuple, error) {
	var out []Tuple
	var buf [pagestore.PageSize]byte
	for id := head; id != pagestore.InvalidPage; {
		if err := s.readPage(ctx, id, buf[:]); err != nil {
			return nil, fmt.Errorf("xbtree: reading chain page %d: %w", id, err)
		}
		n := int(binary.BigEndian.Uint16(buf[4:6]))
		out = append(out, decodeTuples(buf[chainHeader:], n)...)
		id = pagestore.PageID(binary.BigEndian.Uint32(buf[0:4]))
	}
	return out, nil
}

// appendChain adds a tuple to a chained list, to the head page if it has
// room, otherwise via a new head.
func (s *lstore) appendChain(ctx *exec.Context, ref listRef, t Tuple) (listRef, error) {
	var buf [pagestore.PageSize]byte
	if err := s.readPage(ctx, ref.page, buf[:]); err != nil {
		return invalidRef, fmt.Errorf("xbtree: reading chain page %d: %w", ref.page, err)
	}
	n := int(binary.BigEndian.Uint16(buf[4:6]))
	if n < chainCapacity {
		off := chainHeader + n*TupleSize
		encodeTuples(buf[off:off+TupleSize], []Tuple{t})
		binary.BigEndian.PutUint16(buf[4:6], uint16(n+1))
		if err := s.writePage(ctx, ref.page, buf[:]); err != nil {
			return invalidRef, fmt.Errorf("xbtree: writing chain page %d: %w", ref.page, err)
		}
		return ref, nil
	}
	id, err := s.store.Allocate()
	if err != nil {
		return invalidRef, fmt.Errorf("xbtree: allocating chain page: %w", err)
	}
	ctx.AccountAlloc()
	s.pages++
	var head [pagestore.PageSize]byte
	binary.BigEndian.PutUint32(head[0:4], uint32(ref.page))
	binary.BigEndian.PutUint16(head[4:6], 1)
	encodeTuples(head[chainHeader:chainHeader+TupleSize], []Tuple{t})
	if err := s.writePage(ctx, id, head[:]); err != nil {
		return invalidRef, fmt.Errorf("xbtree: writing chain page %d: %w", id, err)
	}
	return listRef{page: id, slot: chainSlot}, nil
}

func (s *lstore) freeChain(ctx *exec.Context, head pagestore.PageID) error {
	var buf [pagestore.PageSize]byte
	for id := head; id != pagestore.InvalidPage; {
		if err := s.readPage(ctx, id, buf[:]); err != nil {
			return fmt.Errorf("xbtree: reading chain page %d: %w", id, err)
		}
		next := pagestore.PageID(binary.BigEndian.Uint32(buf[0:4]))
		if err := s.store.Free(id); err != nil {
			return fmt.Errorf("xbtree: freeing chain page %d: %w", id, err)
		}
		ctx.AccountFree()
		s.pages--
		id = next
	}
	return nil
}
