// Package xbtree implements the XOR B-Tree (XB-Tree), the paper's core
// contribution: the disk-based index the trusted entity (TE) uses to compute
// a verification token (VT) for any range query in O(log n) node accesses,
// independently of the result size.
//
// Each distinct search key appears exactly once in the whole tree (it is a
// B-tree, not a B+-tree). An entry e = <e.sk, e.L, e.X, e.c> carries the
// search key, a reference to the list of (id, digest) tuples whose records
// have that key, the XOR aggregate X, and a child pointer. The invariant is
//
//	e.X = e.L⊕ XOR (XOR over the entries of the node e.c points to of their X)
//
// so e.X equals the XOR of the digests of every tuple with search key in
// [e.sk, nextSk), where nextSk is the following entry's key. The first entry
// e0 of an internal node has only X and c; for leaves, e0 is implicit
// (X = 0, c = nil).
//
// Deletions are logical: a tuple is removed from its list and XORed out of
// the X values on its path, but an entry whose list becomes empty stays in
// the tree as a tombstone (its X contribution is zero). This keeps deletion
// O(log n) with no rebalancing, at the cost of space reclaimed only on
// rebuild — the trade production LSM/B-tree systems routinely make.
package xbtree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sae/internal/agg"
	"sae/internal/bufpool"
	"sae/internal/digest"
	"sae/internal/exec"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// Node layouts over 4096-byte pages.
//
// Internal: [0] flags=0 | [1:3] count | [3:7] e0.c | [7:27] e0.X |
// [27:51] e0.agg | entries { sk 4 | lref 6 | X 20 | c 4 | listCount 4 |
// childAgg 24 } ...
//
// Leaf: [0] flags=1 | [1:3] count | entries { sk 4 | lref 6 | X 20 |
// listCount 4 } ...
//
// listCount is the number of live tuples in the entry's list; together with
// sk it determines the entry's own aggregate contribution agg.OfKey(sk,
// listCount) without reading the list page. childAgg (internal) / e0.agg
// summarize the whole subtree under the child pointer, so AggregateCtx can
// answer COUNT/SUM/MIN/MAX with zero list-page reads.
const (
	innerHeader = 27 + agg.Size // 51
	leafHeader  = 3
	innerEntry  = 4 + 6 + digest.Size + 4 + 4 + agg.Size // 62
	leafEntry   = 4 + 6 + digest.Size + 4                // 34
	// InnerCapacity is the maximum number of keyed entries per internal
	// node (e0 not counted).
	InnerCapacity = (pagestore.PageSize - innerHeader) / innerEntry // 65
	// LeafCapacity is the maximum number of entries per leaf node.
	LeafCapacity = (pagestore.PageSize - leafHeader) / leafEntry // 120
)

// ErrNotFound is returned by Delete when no tuple with the given key and id
// exists.
var ErrNotFound = errors.New("xbtree: tuple not found")

// Tree is a disk-based XB-Tree.
type Tree struct {
	io     *bufpool.IO
	lists  *lstore
	root   pagestore.PageID
	height int // 1 = root is a leaf
	nodes  int
	tuples int
	keys   int // distinct (possibly tombstoned) keys
}

// UseCache attaches a decoded-node cache to the tree's read/write path
// (nil detaches). Tuple-list pages are not cached — only tree nodes.
func (t *Tree) UseCache(c *bufpool.Cache) { t.io.SetCache(c) }

// entry is the in-memory form of a keyed entry.
type entry struct {
	sk        record.Key
	lref      listRef
	x         digest.Digest
	child     pagestore.PageID // InvalidPage in leaves
	listCount uint32           // live tuples in the entry's list
	childAgg  agg.Agg          // internal only: aggregate of child's subtree
}

// ownAgg is the aggregate contribution of the entry's own tuple list.
func (e *entry) ownAgg() agg.Agg { return agg.OfKey(e.sk, uint64(e.listCount)) }

// xnode is the decoded form of one tree page.
type xnode struct {
	leaf    bool
	e0X     digest.Digest    // internal only
	e0C     pagestore.PageID // internal only
	e0Agg   agg.Agg          // internal only: aggregate of e0's subtree
	entries []entry
}

// agg returns the node's XOR aggregate: e0.X ⊕ XOR of all entries' X. For a
// node N this equals the XOR of the digests of every tuple in N's subtree,
// which is what the parent entry's X must incorporate.
func (n *xnode) agg() digest.Digest {
	var acc digest.Accumulator
	if !n.leaf {
		acc.Add(n.e0X)
	}
	for i := range n.entries {
		acc.Add(n.entries[i].x)
	}
	return acc.Sum()
}

// aggAll returns the (COUNT, SUM, MIN, MAX) aggregate of every tuple in the
// node's subtree: each entry contributes its own list (OfKey(sk, listCount))
// plus its child subtree's annotation. Pure arithmetic, no I/O.
func (n *xnode) aggAll() agg.Agg {
	var a agg.Agg
	if !n.leaf {
		a = n.e0Agg
	}
	for i := range n.entries {
		e := &n.entries[i]
		a = a.Merge(e.ownAgg())
		if !n.leaf {
			a = a.Merge(e.childAgg)
		}
	}
	return a
}

// New creates an empty XB-Tree. Tree nodes and tuple-list pages are both
// allocated from store.
func New(store pagestore.Store) (*Tree, error) {
	t := &Tree{io: bufpool.NewIO(store, nil), lists: newLStore(store), height: 1}
	id, err := t.allocNode(nil, &xnode{leaf: true})
	if err != nil {
		return nil, err
	}
	t.root = id
	return t, nil
}

func (t *Tree) allocNode(ctx *exec.Context, n *xnode) (pagestore.PageID, error) {
	id, err := t.io.Allocate(ctx)
	if err != nil {
		return 0, fmt.Errorf("xbtree: allocating node: %w", err)
	}
	t.nodes++
	if err := t.writeNode(ctx, id, n); err != nil {
		return 0, err
	}
	return id, nil
}

func (t *Tree) writeNode(ctx *exec.Context, id pagestore.PageID, n *xnode) error {
	if err := bufpool.WriteNode(t.io, ctx, id, n, encodeXNode); err != nil {
		return fmt.Errorf("xbtree: writing node %d: %w", id, err)
	}
	return nil
}

func (t *Tree) readNode(ctx *exec.Context, id pagestore.PageID) (*xnode, error) {
	n, err := bufpool.ReadNode(t.io, ctx, id, decodeXNode)
	if err != nil {
		return nil, fmt.Errorf("xbtree: reading node %d: %w", id, err)
	}
	return n, nil
}

func putRef(buf []byte, r listRef) {
	binary.BigEndian.PutUint32(buf[0:4], uint32(r.page))
	binary.BigEndian.PutUint16(buf[4:6], r.slot)
}

func getRef(buf []byte) listRef {
	return listRef{
		page: pagestore.PageID(binary.BigEndian.Uint32(buf[0:4])),
		slot: binary.BigEndian.Uint16(buf[4:6]),
	}
}

func encodeXNode(buf []byte, n *xnode) {
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = 1
		binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.entries)))
		off := leafHeader
		for i := range n.entries {
			e := &n.entries[i]
			binary.BigEndian.PutUint32(buf[off:off+4], uint32(e.sk))
			putRef(buf[off+4:off+10], e.lref)
			copy(buf[off+10:off+30], e.x[:])
			binary.BigEndian.PutUint32(buf[off+30:off+34], e.listCount)
			off += leafEntry
		}
		return
	}
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.entries)))
	binary.BigEndian.PutUint32(buf[3:7], uint32(n.e0C))
	copy(buf[7:27], n.e0X[:])
	n.e0Agg.PutBytes(buf[27:innerHeader])
	off := innerHeader
	for i := range n.entries {
		e := &n.entries[i]
		binary.BigEndian.PutUint32(buf[off:off+4], uint32(e.sk))
		putRef(buf[off+4:off+10], e.lref)
		copy(buf[off+10:off+30], e.x[:])
		binary.BigEndian.PutUint32(buf[off+30:off+34], uint32(e.child))
		binary.BigEndian.PutUint32(buf[off+34:off+38], e.listCount)
		e.childAgg.PutBytes(buf[off+38 : off+innerEntry])
		off += innerEntry
	}
}

func decodeXNode(buf []byte) *xnode {
	n := &xnode{leaf: buf[0] == 1}
	count := int(binary.BigEndian.Uint16(buf[1:3]))
	n.entries = make([]entry, count)
	if n.leaf {
		off := leafHeader
		for i := 0; i < count; i++ {
			e := &n.entries[i]
			e.sk = record.Key(binary.BigEndian.Uint32(buf[off : off+4]))
			e.lref = getRef(buf[off+4 : off+10])
			e.x = digest.FromBytes(buf[off+10 : off+30])
			e.child = pagestore.InvalidPage
			e.listCount = binary.BigEndian.Uint32(buf[off+30 : off+34])
			off += leafEntry
		}
		return n
	}
	n.e0C = pagestore.PageID(binary.BigEndian.Uint32(buf[3:7]))
	n.e0X = digest.FromBytes(buf[7:27])
	n.e0Agg = agg.FromBytes(buf[27:innerHeader])
	off := innerHeader
	for i := 0; i < count; i++ {
		e := &n.entries[i]
		e.sk = record.Key(binary.BigEndian.Uint32(buf[off : off+4]))
		e.lref = getRef(buf[off+4 : off+10])
		e.x = digest.FromBytes(buf[off+10 : off+30])
		e.child = pagestore.PageID(binary.BigEndian.Uint32(buf[off+30 : off+34]))
		e.listCount = binary.BigEndian.Uint32(buf[off+34 : off+38])
		e.childAgg = agg.FromBytes(buf[off+38 : off+innerEntry])
		off += innerEntry
	}
	return n
}

// searchEntries returns (index of entry with sk == k, true) or (index of the
// first entry with sk > k, false).
func searchEntries(entries []entry, k record.Key) (int, bool) {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].sk < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(entries) && entries[lo].sk == k {
		return lo, true
	}
	return lo, false
}

// Insert adds a tuple with the given search key. If the key already exists
// anywhere in the tree, the tuple joins its list; otherwise a new entry is
// created at the leaf level, splitting nodes B-tree-style on overflow.
// Either way every X value on the tuple's root-to-entry path absorbs the
// tuple's digest, which costs O(height) node accesses.
func (t *Tree) Insert(key record.Key, tup Tuple) error {
	return t.InsertCtx(nil, key, tup)
}

// InsertCtx is Insert charging node accesses to the request context.
func (t *Tree) InsertCtx(ctx *exec.Context, key record.Key, tup Tuple) error {
	promoted, rightID, _, _, err := t.insertRec(ctx, t.root, key, tup)
	if err != nil {
		return err
	}
	if promoted != nil {
		oldRoot, err := t.readNode(ctx, t.root)
		if err != nil {
			return err
		}
		newRoot := &xnode{
			leaf:    false,
			e0C:     t.root,
			e0X:     oldRoot.agg(),
			e0Agg:   oldRoot.aggAll(),
			entries: []entry{*promoted},
		}
		id, err := t.allocNode(ctx, newRoot)
		if err != nil {
			return err
		}
		t.root = id
		t.height++
		_ = rightID
	}
	t.tuples++
	return nil
}

// insertRec inserts into the subtree rooted at id. It returns a promoted
// entry and its right-sibling node id when the node split, plus the change
// (delta) in this node's XOR aggregate as observed by the parent after the
// promoted entry has been removed from it, plus this node's new subtree
// aggregate annotation (same post-promotion view) so the parent refreshes
// its childAgg without extra reads.
func (t *Tree) insertRec(ctx *exec.Context, id pagestore.PageID, key record.Key, tup Tuple) (*entry, pagestore.PageID, digest.Digest, agg.Agg, error) {
	n, err := t.readNode(ctx, id)
	if err != nil {
		return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
	}
	aggBefore := n.agg()

	if pos, ok := searchEntries(n.entries, key); ok {
		// Key exists here: extend its list and absorb the digest.
		newRef, err := t.lists.appendTuple(ctx, n.entries[pos].lref, tup)
		if err != nil {
			return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
		}
		n.entries[pos].lref = newRef
		n.entries[pos].x = n.entries[pos].x.XOR(tup.Digest)
		n.entries[pos].listCount++
		if err := t.writeNode(ctx, id, n); err != nil {
			return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
		}
		return nil, pagestore.InvalidPage, n.agg().XOR(aggBefore), n.aggAll(), nil
	} else if !n.leaf {
		// Descend: child pos-1 (or e0) covers keys below entries[pos].sk.
		childID := n.e0C
		applyTo := -1 // -1 means e0
		if pos > 0 {
			childID = n.entries[pos-1].child
			applyTo = pos - 1
		}
		promoted, rightID, childDelta, childAgg, err := t.insertRec(ctx, childID, key, tup)
		if err != nil {
			return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
		}
		if applyTo == -1 {
			n.e0X = n.e0X.XOR(childDelta)
			n.e0Agg = childAgg
		} else {
			n.entries[applyTo].x = n.entries[applyTo].x.XOR(childDelta)
			n.entries[applyTo].childAgg = childAgg
		}
		if promoted == nil {
			if err := t.writeNode(ctx, id, n); err != nil {
				return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
			}
			return nil, pagestore.InvalidPage, n.agg().XOR(aggBefore), n.aggAll(), nil
		}
		promoted.child = rightID
		n.entries = append(n.entries, entry{})
		copy(n.entries[pos+1:], n.entries[pos:])
		n.entries[pos] = *promoted
		if len(n.entries) <= InnerCapacity {
			if err := t.writeNode(ctx, id, n); err != nil {
				return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
			}
			return nil, pagestore.InvalidPage, n.agg().XOR(aggBefore), n.aggAll(), nil
		}
		return t.splitInner(ctx, id, n, aggBefore)
	} else {
		// New key at the leaf level.
		lref, err := t.lists.alloc(ctx, []Tuple{tup})
		if err != nil {
			return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
		}
		t.keys++
		e := entry{sk: key, lref: lref, x: tup.Digest, child: pagestore.InvalidPage, listCount: 1}
		n.entries = append(n.entries, entry{})
		copy(n.entries[pos+1:], n.entries[pos:])
		n.entries[pos] = e
		if len(n.entries) <= LeafCapacity {
			if err := t.writeNode(ctx, id, n); err != nil {
				return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
			}
			return nil, pagestore.InvalidPage, n.agg().XOR(aggBefore), n.aggAll(), nil
		}
		return t.splitLeaf(ctx, id, n, aggBefore)
	}
}

// splitLeaf splits an overflowing leaf, promoting the median entry. A leaf
// entry's X equals its L⊕, so the promoted entry's new X (which must also
// cover the right sibling it will point to) is its old X XOR the right
// entries' X values.
func (t *Tree) splitLeaf(ctx *exec.Context, id pagestore.PageID, n *xnode, aggBefore digest.Digest) (*entry, pagestore.PageID, digest.Digest, agg.Agg, error) {
	mid := len(n.entries) / 2
	promoted := n.entries[mid]

	right := &xnode{leaf: true}
	right.entries = append(right.entries, n.entries[mid+1:]...)
	rightID, err := t.allocNode(ctx, right)
	if err != nil {
		// n was mutated in memory but never persisted; drop the cached copy.
		t.io.Discard(id)
		return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
	}
	promoted.x = promoted.x.XOR(right.agg())
	promoted.child = rightID
	promoted.childAgg = right.aggAll()

	n.entries = n.entries[:mid]
	if err := t.writeNode(ctx, id, n); err != nil {
		return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
	}
	return &promoted, rightID, n.agg().XOR(aggBefore), n.aggAll(), nil
}

// splitInner splits an overflowing internal node. The promoted entry keeps
// its list but its subtree becomes the new right node, whose e0 must cover
// the promoted entry's former child; computing that e0.X requires the
// promoted entry's L⊕, read from its list page (one extra access per split).
func (t *Tree) splitInner(ctx *exec.Context, id pagestore.PageID, n *xnode, aggBefore digest.Digest) (*entry, pagestore.PageID, digest.Digest, agg.Agg, error) {
	mid := len(n.entries) / 2
	promoted := n.entries[mid]

	lxor, err := t.lists.xorOf(ctx, promoted.lref)
	if err != nil {
		t.io.Discard(id)
		return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
	}
	right := &xnode{
		leaf:  false,
		e0C:   promoted.child,
		e0X:   promoted.x.XOR(lxor), // agg of the subtree under the promoted entry
		e0Agg: promoted.childAgg,
	}
	right.entries = append(right.entries, n.entries[mid+1:]...)
	rightID, err := t.allocNode(ctx, right)
	if err != nil {
		t.io.Discard(id)
		return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
	}
	promoted.x = lxor.XOR(right.agg())
	promoted.child = rightID
	promoted.childAgg = right.aggAll()

	n.entries = n.entries[:mid]
	if err := t.writeNode(ctx, id, n); err != nil {
		return nil, pagestore.InvalidPage, digest.Zero, agg.Agg{}, err
	}
	return &promoted, rightID, n.agg().XOR(aggBefore), n.aggAll(), nil
}

// Delete removes the tuple with the given key and id. The entry's list
// shrinks and the digest is XORed out of the path; entries with empty lists
// remain as tombstones (their X contribution is zero), so the tree never
// restructures on delete.
func (t *Tree) Delete(key record.Key, id record.ID) error {
	return t.DeleteCtx(nil, key, id)
}

// DeleteCtx is Delete charging node accesses to the request context.
func (t *Tree) DeleteCtx(ctx *exec.Context, key record.Key, id record.ID) error {
	_, _, found, err := t.deleteRec(ctx, t.root, key, id)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: key=%d id=%d", ErrNotFound, key, id)
	}
	t.tuples--
	return nil
}

// deleteRec returns the removed tuple's digest (so ancestors can XOR it out
// of their X values), the subtree's new aggregate annotation, and whether
// the tuple was found. All list tuples share the entry's key, so the
// aggregate stays exact under listCount-- (an emptied list contributes the
// zero aggregate, matching the tombstone's zero X contribution).
func (t *Tree) deleteRec(ctx *exec.Context, nodeID pagestore.PageID, key record.Key, id record.ID) (digest.Digest, agg.Agg, bool, error) {
	n, err := t.readNode(ctx, nodeID)
	if err != nil {
		return digest.Zero, agg.Agg{}, false, err
	}
	pos, ok := searchEntries(n.entries, key)
	if ok {
		d, newRef, err := t.lists.removeTuple(ctx, n.entries[pos].lref, id)
		if err != nil {
			if errors.Is(err, errTupleNotFound) {
				return digest.Zero, agg.Agg{}, false, nil
			}
			return digest.Zero, agg.Agg{}, false, err
		}
		n.entries[pos].lref = newRef
		n.entries[pos].x = n.entries[pos].x.XOR(d)
		n.entries[pos].listCount--
		if err := t.writeNode(ctx, nodeID, n); err != nil {
			return digest.Zero, agg.Agg{}, false, err
		}
		return d, n.aggAll(), true, nil
	}
	if n.leaf {
		return digest.Zero, agg.Agg{}, false, nil
	}
	childID := n.e0C
	if pos > 0 {
		childID = n.entries[pos-1].child
	}
	d, childAgg, found, err := t.deleteRec(ctx, childID, key, id)
	if err != nil || !found {
		return digest.Zero, agg.Agg{}, found, err
	}
	if pos > 0 {
		n.entries[pos-1].x = n.entries[pos-1].x.XOR(d)
		n.entries[pos-1].childAgg = childAgg
	} else {
		n.e0X = n.e0X.XOR(d)
		n.e0Agg = childAgg
	}
	if err := t.writeNode(ctx, nodeID, n); err != nil {
		return digest.Zero, agg.Agg{}, false, err
	}
	return d, n.aggAll(), true, nil
}

// GenerateVT computes the verification token for the range [lo, hi]: the
// XOR of the digests of every tuple whose search key falls in the range.
// This is the algorithm of the paper's Figure 4, with the fictitious
// boundary keys e0.sk = -∞ and ef.sk = +∞. Leaf entries use their stored X
// instead of re-reading their list (a leaf entry's X equals its L⊕); only
// partially covered internal entries read a list page, which happens at
// most once per boundary.
func (t *Tree) GenerateVT(lo, hi record.Key) (digest.Digest, error) {
	return t.GenerateVTCtx(nil, lo, hi)
}

// GenerateVTCtx is GenerateVT charging node accesses to the request
// context.
func (t *Tree) GenerateVTCtx(ctx *exec.Context, lo, hi record.Key) (digest.Digest, error) {
	if lo > hi {
		return digest.Zero, nil
	}
	var acc digest.Accumulator
	if err := t.generateVT(ctx, t.root, lo, hi, &acc); err != nil {
		return digest.Zero, err
	}
	return acc.Sum(), nil
}

func (t *Tree) generateVT(ctx *exec.Context, id pagestore.PageID, lo, hi record.Key, acc *digest.Accumulator) error {
	n, err := t.readNode(ctx, id)
	if err != nil {
		return err
	}
	// Walk the virtual entry sequence e0, e1, ..., e_{f-1} with sk bounds
	// (-∞ for e0, +∞ past the end). For leaves e0 is a no-op (X = 0,
	// c = nil) and is skipped.
	f := len(n.entries)
	for i := -1; i < f; i++ {
		var (
			sk      record.Key
			skValid bool // false ⇒ sk is -∞
			x       digest.Digest
			child   pagestore.PageID
			lref    listRef
		)
		if i == -1 {
			if n.leaf {
				continue
			}
			skValid = false
			x = n.e0X
			child = n.e0C
		} else {
			e := &n.entries[i]
			sk, skValid = e.sk, true
			x = e.x
			child = e.child
			lref = e.lref
		}
		nextSk, nextValid := record.Key(0), false // false ⇒ +∞
		if i+1 < f {
			nextSk, nextValid = n.entries[i+1].sk, true
		}

		loLEsk := skValid && lo <= sk // q.ql ≤ ei.sk (always false for -∞... except lo can't be -∞)
		hiGEnext := nextValid && hi >= nextSk
		switch {
		case loLEsk && hiGEnext:
			// The entry's list and its whole subtree are inside q.
			acc.Add(x)
		case loLEsk && hi >= sk:
			// Only the entry's own tuples qualify.
			if n.leaf {
				acc.Add(x) // leaf X == L⊕
			} else {
				lx, err := t.lists.xorOf(ctx, lref)
				if err != nil {
					return err
				}
				acc.Add(lx)
			}
		}
		// Recurse where a query boundary falls strictly inside
		// (ei.sk, ei+1.sk).
		loInGap := (!skValid || lo > sk) && (!nextValid || lo < nextSk)
		hiInGap := (!skValid || hi > sk) && (!nextValid || hi < nextSk)
		if (loInGap || hiInGap) && child != pagestore.InvalidPage {
			if err := t.generateVT(ctx, child, lo, hi, acc); err != nil {
				return err
			}
		}
	}
	return nil
}

// Aggregate answers COUNT/SUM/MIN/MAX over [lo, hi] with no request
// context; see AggregateCtx.
func (t *Tree) Aggregate(lo, hi record.Key) (agg.Agg, error) {
	return t.AggregateCtx(nil, lo, hi)
}

// AggregateCtx computes the trusted aggregate for the range [lo, hi] by the
// same boundary recursion as GenerateVTCtx, substituting the (COUNT, SUM,
// MIN, MAX) annotations for the XOR values: a fully covered entry folds in
// its own list aggregate plus its child annotation, a partially covered
// entry folds only its list aggregate, and the walk recurses where a query
// boundary falls inside a key gap. O(log n) node accesses and — unlike VT
// generation — zero list-page reads, because OfKey(sk, listCount) replaces
// the list XOR.
func (t *Tree) AggregateCtx(ctx *exec.Context, lo, hi record.Key) (agg.Agg, error) {
	if lo > hi {
		return agg.Agg{}, nil
	}
	var a agg.Agg
	if err := t.aggregateRec(ctx, t.root, lo, hi, &a); err != nil {
		return agg.Agg{}, err
	}
	return a, nil
}

func (t *Tree) aggregateRec(ctx *exec.Context, id pagestore.PageID, lo, hi record.Key, a *agg.Agg) error {
	n, err := t.readNode(ctx, id)
	if err != nil {
		return err
	}
	f := len(n.entries)
	for i := -1; i < f; i++ {
		var (
			sk      record.Key
			skValid bool // false ⇒ sk is -∞
			own     agg.Agg
			sub     agg.Agg
			child   pagestore.PageID
		)
		if i == -1 {
			if n.leaf {
				continue
			}
			skValid = false
			sub = n.e0Agg
			child = n.e0C
		} else {
			e := &n.entries[i]
			sk, skValid = e.sk, true
			own = e.ownAgg()
			sub = e.childAgg
			child = e.child
		}
		nextSk, nextValid := record.Key(0), false // false ⇒ +∞
		if i+1 < f {
			nextSk, nextValid = n.entries[i+1].sk, true
		}

		loLEsk := skValid && lo <= sk
		hiGEnext := nextValid && hi >= nextSk
		switch {
		case loLEsk && hiGEnext:
			// The entry's list and its whole subtree are inside q.
			*a = a.Merge(own).Merge(sub)
		case loLEsk && hi >= sk:
			// Only the entry's own tuples qualify.
			*a = a.Merge(own)
		}
		loInGap := (!skValid || lo > sk) && (!nextValid || lo < nextSk)
		hiInGap := (!skValid || hi > sk) && (!nextValid || hi < nextSk)
		if (loInGap || hiInGap) && child != pagestore.InvalidPage {
			if err := t.aggregateRec(ctx, child, lo, hi, a); err != nil {
				return err
			}
		}
	}
	return nil
}

// Height returns the number of levels (1 = the root is a leaf).
func (t *Tree) Height() int { return t.height }

// NodeCount returns the number of tree nodes (excluding list pages).
func (t *Tree) NodeCount() int { return t.nodes }

// ListPages returns the number of tuple-list pages.
func (t *Tree) ListPages() int { return t.lists.pages }

// Tuples returns the number of live tuples.
func (t *Tree) Tuples() int { return t.tuples }

// Keys returns the number of distinct keys ever inserted (tombstones
// included).
func (t *Tree) Keys() int { return t.keys }

// Bytes returns the TE's total storage: tree nodes plus list pages.
func (t *Tree) Bytes() int64 {
	return int64(t.nodes+t.lists.pages) * pagestore.PageSize
}
