package xbtree

import (
	"math/rand"
	"testing"

	"sae/internal/agg"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// refAgg computes the expected aggregate by brute force over the reference.
func refAgg(r *reference, lo, hi record.Key) agg.Agg {
	var a agg.Agg
	for k, ts := range r.byKey {
		if k >= lo && k <= hi {
			a = a.Merge(agg.OfKey(k, uint64(len(ts))))
		}
	}
	return a
}

func checkAggs(t *testing.T, tree *Tree, ref *reference, domain int, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		lo := record.Key(rng.Intn(domain))
		hi := lo + record.Key(rng.Intn(domain/4+1))
		got, err := tree.Aggregate(lo, hi)
		if err != nil {
			t.Fatalf("Aggregate(%d,%d): %v", lo, hi, err)
		}
		if want := refAgg(ref, lo, hi); got.Normalize() != want.Normalize() {
			t.Fatalf("Aggregate(%d,%d) = %v, want %v", lo, hi, got, want)
		}
	}
}

func TestAggregateParityBulkload(t *testing.T) {
	ref := populate(3000, 10_000, 31)
	tree, err := Bulkload(pagestore.NewMem(), ref.bulkItems())
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	checkAggs(t, tree, ref, 10_000, 200, 32)
	// Full domain, point range, empty range.
	got, err := tree.Aggregate(0, record.KeyDomain)
	if err != nil {
		t.Fatalf("Aggregate full: %v", err)
	}
	if want := refAgg(ref, 0, record.KeyDomain); got.Normalize() != want.Normalize() {
		t.Fatalf("full aggregate = %v, want %v", got, want)
	}
	if got, _ := tree.Aggregate(9, 3); !got.Empty() {
		t.Fatalf("inverted range aggregate = %v, want empty", got)
	}
}

func TestAggregateMaintenanceRandomized(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref := newReference()
	rng := rand.New(rand.NewSource(33))
	var nextID record.ID
	type live struct {
		k  record.Key
		id record.ID
	}
	var tuples []live
	for step := 0; step < 5000; step++ {
		if len(tuples) == 0 || rng.Intn(3) != 0 {
			k := record.Key(rng.Intn(1500))
			tup := tupleFor(nextID)
			nextID++
			if err := tree.Insert(k, tup); err != nil {
				t.Fatalf("Insert: %v", err)
			}
			ref.insert(k, tup)
			tuples = append(tuples, live{k: k, id: tup.ID})
		} else {
			i := rng.Intn(len(tuples))
			v := tuples[i]
			if err := tree.Delete(v.k, v.id); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			ref.remove(v.k, v.id)
			tuples = append(tuples[:i], tuples[i+1:]...)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after workload: %v", err)
	}
	checkAggs(t, tree, ref, 1500, 150, 34)
}
