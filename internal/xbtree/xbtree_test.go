package xbtree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sae/internal/digest"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// tupleFor fabricates a tuple whose digest is derived from its id, so
// reference computations are reproducible.
func tupleFor(id record.ID) Tuple {
	return Tuple{ID: id, Digest: digest.OfBytes([]byte(fmt.Sprintf("tuple-%d", id)))}
}

// reference mirrors the tree's logical content for brute-force checks.
type reference struct {
	byKey map[record.Key][]Tuple
}

func newReference() *reference {
	return &reference{byKey: make(map[record.Key][]Tuple)}
}

func (r *reference) insert(k record.Key, t Tuple) {
	r.byKey[k] = append(r.byKey[k], t)
}

func (r *reference) remove(k record.Key, id record.ID) bool {
	ts := r.byKey[k]
	for i, t := range ts {
		if t.ID == id {
			r.byKey[k] = append(ts[:i], ts[i+1:]...)
			return true
		}
	}
	return false
}

// vt computes the expected verification token by brute force.
func (r *reference) vt(lo, hi record.Key) digest.Digest {
	var acc digest.Accumulator
	for k, ts := range r.byKey {
		if k >= lo && k <= hi {
			for _, t := range ts {
				acc.Add(t.Digest)
			}
		}
	}
	return acc.Sum()
}

func (r *reference) tuples() int {
	n := 0
	for _, ts := range r.byKey {
		n += len(ts)
	}
	return n
}

// bulkItems converts the reference into sorted bulk-load input.
func (r *reference) bulkItems() []KeyTuples {
	keys := make([]record.Key, 0, len(r.byKey))
	for k, ts := range r.byKey {
		if len(ts) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	items := make([]KeyTuples, len(keys))
	for i, k := range keys {
		items[i] = KeyTuples{Key: k, Tuples: r.byKey[k]}
	}
	return items
}

// populate fills a reference with n tuples over domain keys.
func populate(n int, domain int, seed int64) *reference {
	ref := newReference()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		ref.insert(record.Key(rng.Intn(domain)), tupleFor(record.ID(i+1)))
	}
	return ref
}

func checkVTs(t *testing.T, tree *Tree, ref *reference, domain int, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		lo := record.Key(rng.Intn(domain))
		hi := lo + record.Key(rng.Intn(domain/4+1))
		got, err := tree.GenerateVT(lo, hi)
		if err != nil {
			t.Fatalf("GenerateVT(%d,%d): %v", lo, hi, err)
		}
		if want := ref.vt(lo, hi); got != want {
			t.Fatalf("VT(%d,%d) = %s, want %s", lo, hi, got, want)
		}
	}
}

func TestBulkloadSmall(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 50, LeafCapacity, LeafCapacity + 1, 3 * LeafCapacity} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			ref := populate(n, 1000, int64(n+1))
			tree, err := Bulkload(pagestore.NewMem(), ref.bulkItems())
			if err != nil {
				t.Fatalf("Bulkload: %v", err)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if tree.Tuples() != ref.tuples() {
				t.Fatalf("Tuples = %d, want %d", tree.Tuples(), ref.tuples())
			}
			checkVTs(t, tree, ref, 1000, 25, int64(n+2))
		})
	}
}

func TestBulkloadMultiLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-level build is slow in -short mode")
	}
	// Enough distinct keys for height 3: > LeafCapacity * (InnerCapacity+1).
	n := LeafCapacity*(InnerCapacity+2) + 7
	items := make([]KeyTuples, n)
	for i := range items {
		items[i] = KeyTuples{Key: record.Key(i * 3), Tuples: []Tuple{tupleFor(record.ID(i + 1))}}
	}
	tree, err := Bulkload(pagestore.NewMem(), items)
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	if tree.Height() < 3 {
		t.Fatalf("Height = %d, want >= 3", tree.Height())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Spot-check VTs against arithmetic over the regular key pattern.
	got, err := tree.GenerateVT(record.Key(30), record.Key(60))
	if err != nil {
		t.Fatalf("GenerateVT: %v", err)
	}
	var acc digest.Accumulator
	for i := range items {
		if items[i].Key >= 30 && items[i].Key <= 60 {
			acc.Add(items[i].Tuples[0].Digest)
		}
	}
	if got != acc.Sum() {
		t.Fatal("VT mismatch on multi-level tree")
	}
}

func TestBulkloadRejectsBadInput(t *testing.T) {
	unsorted := []KeyTuples{
		{Key: 5, Tuples: []Tuple{tupleFor(1)}},
		{Key: 3, Tuples: []Tuple{tupleFor(2)}},
	}
	if _, err := Bulkload(pagestore.NewMem(), unsorted); err == nil {
		t.Fatal("Bulkload accepted unsorted keys")
	}
	dup := []KeyTuples{
		{Key: 5, Tuples: []Tuple{tupleFor(1)}},
		{Key: 5, Tuples: []Tuple{tupleFor(2)}},
	}
	if _, err := Bulkload(pagestore.NewMem(), dup); err == nil {
		t.Fatal("Bulkload accepted duplicate keys")
	}
	empty := []KeyTuples{{Key: 5}}
	if _, err := Bulkload(pagestore.NewMem(), empty); err == nil {
		t.Fatal("Bulkload accepted an empty tuple list")
	}
}

func TestInsertIncremental(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref := newReference()
	rng := rand.New(rand.NewSource(11))
	const domain = 2000
	for i := 0; i < 5000; i++ {
		k := record.Key(rng.Intn(domain))
		tup := tupleFor(record.ID(i + 1))
		if err := tree.Insert(k, tup); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		ref.insert(k, tup)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.Tuples() != ref.tuples() {
		t.Fatalf("Tuples = %d, want %d", tree.Tuples(), ref.tuples())
	}
	checkVTs(t, tree, ref, domain, 60, 12)
}

func TestInsertForcesInternalSplits(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref := newReference()
	// Sequential keys stress the rightmost path and guarantee internal
	// splits once the root leaf has split enough times.
	n := LeafCapacity * 4
	for i := 0; i < n; i++ {
		k := record.Key(i)
		tup := tupleFor(record.ID(i + 1))
		if err := tree.Insert(k, tup); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		ref.insert(k, tup)
	}
	if tree.Height() < 2 {
		t.Fatalf("Height = %d, want >= 2", tree.Height())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	checkVTs(t, tree, ref, n, 40, 13)
}

func TestInsertIntoBulkloaded(t *testing.T) {
	ref := populate(3000, 5000, 21)
	tree, err := Bulkload(pagestore.NewMem(), ref.bulkItems())
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 2000; i++ {
		k := record.Key(rng.Intn(5000))
		tup := tupleFor(record.ID(100_000 + i))
		if err := tree.Insert(k, tup); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		ref.insert(k, tup)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	checkVTs(t, tree, ref, 5000, 60, 23)
}

func TestDelete(t *testing.T) {
	ref := populate(2000, 3000, 31)
	tree, err := Bulkload(pagestore.NewMem(), ref.bulkItems())
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	rng := rand.New(rand.NewSource(32))
	// Delete half of the tuples.
	var all []struct {
		k  record.Key
		id record.ID
	}
	for k, ts := range ref.byKey {
		for _, tup := range ts {
			all = append(all, struct {
				k  record.Key
				id record.ID
			}{k, tup.ID})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for _, victim := range all[:len(all)/2] {
		if err := tree.Delete(victim.k, victim.id); err != nil {
			t.Fatalf("Delete(%d,%d): %v", victim.k, victim.id, err)
		}
		if !ref.remove(victim.k, victim.id) {
			t.Fatal("reference desync")
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after deletes: %v", err)
	}
	if tree.Tuples() != ref.tuples() {
		t.Fatalf("Tuples = %d, want %d", tree.Tuples(), ref.tuples())
	}
	checkVTs(t, tree, ref, 3000, 60, 33)
}

func TestDeleteNotFound(t *testing.T) {
	ref := populate(100, 200, 41)
	tree, err := Bulkload(pagestore.NewMem(), ref.bulkItems())
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	if err := tree.Delete(9999, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(absent key) error = %v, want ErrNotFound", err)
	}
	// Existing key, absent id.
	var k record.Key
	for key := range ref.byKey {
		k = key
		break
	}
	if err := tree.Delete(k, 123456); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(absent id) error = %v, want ErrNotFound", err)
	}
}

func TestTombstoneAndReinsert(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tup := tupleFor(1)
	if err := tree.Insert(77, tup); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := tree.Delete(77, 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// Tombstone: key remains with an empty list and zero X contribution.
	ts, ok, err := tree.Lookup(77)
	if err != nil || !ok {
		t.Fatalf("Lookup after delete: ts=%v ok=%v err=%v", ts, ok, err)
	}
	if len(ts) != 0 {
		t.Fatalf("tombstoned list has %d tuples, want 0", len(ts))
	}
	vt, err := tree.GenerateVT(0, 100)
	if err != nil {
		t.Fatalf("GenerateVT: %v", err)
	}
	if !vt.IsZero() {
		t.Fatal("VT over tombstoned-only content must be zero")
	}
	// Reinsert resurrects the entry.
	tup2 := tupleFor(2)
	if err := tree.Insert(77, tup2); err != nil {
		t.Fatalf("reinsert: %v", err)
	}
	vt, err = tree.GenerateVT(77, 77)
	if err != nil {
		t.Fatalf("GenerateVT: %v", err)
	}
	if vt != tup2.Digest {
		t.Fatal("VT after reinsert must equal the new tuple's digest")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestHeavyDuplicatesChainLists(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref := newReference()
	// Far more duplicates of one key than fit an inline list or one chain
	// page.
	n := 3*chainCapacity + 5
	for i := 0; i < n; i++ {
		tup := tupleFor(record.ID(i + 1))
		if err := tree.Insert(500, tup); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		ref.insert(500, tup)
	}
	// Some surrounding keys.
	for i := 0; i < 50; i++ {
		tup := tupleFor(record.ID(10_000 + i))
		k := record.Key(i * 37)
		if err := tree.Insert(k, tup); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		ref.insert(k, tup)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ts, ok, err := tree.Lookup(500)
	if err != nil || !ok {
		t.Fatalf("Lookup: ok=%v err=%v", ok, err)
	}
	if len(ts) != n {
		t.Fatalf("chained list has %d tuples, want %d", len(ts), n)
	}
	checkVTs(t, tree, ref, 2000, 40, 51)

	// Shrink the chain back below the inline threshold.
	for i := 0; i < n-5; i++ {
		if err := tree.Delete(500, record.ID(i+1)); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		ref.remove(500, record.ID(i+1))
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after chain shrink: %v", err)
	}
	checkVTs(t, tree, ref, 2000, 20, 52)
}

func TestBulkloadHeavyDuplicates(t *testing.T) {
	tuples := make([]Tuple, 2*chainCapacity)
	for i := range tuples {
		tuples[i] = tupleFor(record.ID(i + 1))
	}
	items := []KeyTuples{
		{Key: 10, Tuples: []Tuple{tupleFor(9001)}},
		{Key: 20, Tuples: tuples},
		{Key: 30, Tuples: []Tuple{tupleFor(9002)}},
	}
	tree, err := Bulkload(pagestore.NewMem(), items)
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	vt, err := tree.GenerateVT(20, 20)
	if err != nil {
		t.Fatalf("GenerateVT: %v", err)
	}
	var acc digest.Accumulator
	for _, tup := range tuples {
		acc.Add(tup.Digest)
	}
	if vt != acc.Sum() {
		t.Fatal("VT over chained list mismatch")
	}
}

func TestGenerateVTEdgeCases(t *testing.T) {
	ref := populate(500, 1000, 61)
	tree, err := Bulkload(pagestore.NewMem(), ref.bulkItems())
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	// Inverted range.
	vt, err := tree.GenerateVT(500, 100)
	if err != nil || !vt.IsZero() {
		t.Fatalf("inverted range: vt=%s err=%v, want zero", vt, err)
	}
	// Whole domain.
	vt, err = tree.GenerateVT(0, record.KeyDomain)
	if err != nil {
		t.Fatalf("GenerateVT: %v", err)
	}
	if want := ref.vt(0, record.KeyDomain); vt != want {
		t.Fatal("whole-domain VT mismatch")
	}
	// Empty gap between keys.
	vt, err = tree.GenerateVT(0, 0)
	if err != nil {
		t.Fatalf("GenerateVT: %v", err)
	}
	if want := ref.vt(0, 0); vt != want {
		t.Fatal("point VT mismatch")
	}
	// Point queries on every key present.
	n := 0
	for k := range ref.byKey {
		vt, err := tree.GenerateVT(k, k)
		if err != nil {
			t.Fatalf("GenerateVT(%d,%d): %v", k, k, err)
		}
		if want := ref.vt(k, k); vt != want {
			t.Fatalf("point VT(%d) mismatch", k)
		}
		if n++; n >= 50 {
			break
		}
	}
}

func TestGenerateVTAccessCountLogarithmic(t *testing.T) {
	counting := pagestore.NewCounting(pagestore.NewMem())
	ref := populate(20_000, 100_000, 71)
	tree, err := Bulkload(counting, ref.bulkItems())
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 20; trial++ {
		lo := record.Key(rng.Intn(100_000))
		hi := lo + record.Key(rng.Intn(30_000))
		before := counting.Stats()
		if _, err := tree.GenerateVT(lo, hi); err != nil {
			t.Fatalf("GenerateVT: %v", err)
		}
		accesses := counting.Stats().Sub(before).Accesses()
		// Two root-to-leaf traversals plus at most two boundary list
		// reads: comfortably within 4*height + 4 regardless of result
		// cardinality.
		if limit := int64(4*tree.Height() + 4); accesses > limit {
			t.Fatalf("GenerateVT(%d,%d) used %d accesses, limit %d (height %d)",
				lo, hi, accesses, limit, tree.Height())
		}
	}
}

func TestCapacityConstants(t *testing.T) {
	// Aggregate annotations (listCount per entry, childAgg per child) cost
	// fanout: inner 119 -> 65, leaf 136 -> 120.
	if InnerCapacity != 65 {
		t.Fatalf("InnerCapacity = %d, want 65", InnerCapacity)
	}
	if LeafCapacity != 120 {
		t.Fatalf("LeafCapacity = %d, want 120", LeafCapacity)
	}
	if TupleSize != 28 {
		t.Fatalf("TupleSize = %d, want 28", TupleSize)
	}
}

func TestLookupAbsent(t *testing.T) {
	ref := populate(100, 1000, 81)
	tree, err := Bulkload(pagestore.NewMem(), ref.bulkItems())
	if err != nil {
		t.Fatalf("Bulkload: %v", err)
	}
	for k := record.Key(0); k < 1000; k++ {
		ts, ok, err := tree.Lookup(k)
		if err != nil {
			t.Fatalf("Lookup(%d): %v", k, err)
		}
		want, present := ref.byKey[k]
		if ok != (present && len(want) > 0) {
			t.Fatalf("Lookup(%d) ok = %v, want %v", k, ok, present)
		}
		if ok && len(ts) != len(want) {
			t.Fatalf("Lookup(%d) returned %d tuples, want %d", k, len(ts), len(want))
		}
	}
}

func TestMixedWorkloadRandomized(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref := newReference()
	rng := rand.New(rand.NewSource(91))
	nextID := record.ID(1)
	type liveTuple struct {
		k  record.Key
		id record.ID
	}
	var live []liveTuple
	const domain = 800
	for op := 0; op < 6000; op++ {
		if len(live) == 0 || rng.Intn(4) != 0 {
			k := record.Key(rng.Intn(domain))
			tup := tupleFor(nextID)
			if err := tree.Insert(k, tup); err != nil {
				t.Fatalf("Insert: %v", err)
			}
			ref.insert(k, tup)
			live = append(live, liveTuple{k, nextID})
			nextID++
		} else {
			i := rng.Intn(len(live))
			v := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := tree.Delete(v.k, v.id); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			ref.remove(v.k, v.id)
		}
		if op%1500 == 1499 {
			if err := tree.Validate(); err != nil {
				t.Fatalf("Validate at op %d: %v", op, err)
			}
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("final Validate: %v", err)
	}
	checkVTs(t, tree, ref, domain, 80, 92)
}
