package xbtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sae/internal/pagestore"
	"sae/internal/record"
)

// TestGenerateVTQuickProperty drives GenerateVT with testing/quick over a
// randomized tree built by interleaved inserts: for arbitrary (lo, width)
// the token must equal the brute-force XOR.
func TestGenerateVTQuickProperty(t *testing.T) {
	tree, err := New(pagestore.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	ref := newReference()
	rng := rand.New(rand.NewSource(123))
	const domain = 20_000
	for i := 0; i < 4000; i++ {
		k := record.Key(rng.Intn(domain))
		tup := tupleFor(record.ID(i + 1))
		if err := tree.Insert(k, tup); err != nil {
			t.Fatal(err)
		}
		ref.insert(k, tup)
	}
	prop := func(a uint16, w uint16) bool {
		lo := record.Key(a) % domain
		hi := lo + record.Key(w)
		got, err := tree.GenerateVT(lo, hi)
		if err != nil {
			return false
		}
		return got == ref.vt(lo, hi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestInsertDeleteQuickProperty checks that an arbitrary insert-then-delete
// of the same tuple leaves every token unchanged (XOR self-inverse at the
// system level).
func TestInsertDeleteQuickProperty(t *testing.T) {
	ref := populate(800, 5000, 124)
	tree, err := Bulkload(pagestore.NewMem(), ref.bulkItems())
	if err != nil {
		t.Fatal(err)
	}
	nextID := record.ID(1_000_000)
	prop := func(a uint16, w uint8) bool {
		k := record.Key(a) % 5000
		lo := k - record.Key(w)%k1(k)
		hi := k + record.Key(w)
		before, err := tree.GenerateVT(lo, hi)
		if err != nil {
			return false
		}
		tup := tupleFor(nextID)
		nextID++
		if err := tree.Insert(k, tup); err != nil {
			return false
		}
		if err := tree.Delete(k, tup.ID); err != nil {
			return false
		}
		after, err := tree.GenerateVT(lo, hi)
		if err != nil {
			return false
		}
		return before == after
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after quick churn: %v", err)
	}
}

// k1 avoids division/modulo by zero for keys at the domain edge.
func k1(k record.Key) record.Key {
	if k == 0 {
		return 1
	}
	return k
}

// TestMetaRoundTrip reopens a tree from its metadata and revalidates.
func TestMetaRoundTrip(t *testing.T) {
	ref := populate(2000, 10_000, 125)
	store := pagestore.NewMem()
	tree, err := Bulkload(store, ref.bulkItems())
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(store, tree.Meta())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := reopened.Validate(); err != nil {
		t.Fatalf("Validate after Open: %v", err)
	}
	checkVTs(t, reopened, ref, 10_000, 40, 126)
	// Post-reopen inserts must work (the list allocator resumes too).
	for i := 0; i < 200; i++ {
		tup := tupleFor(record.ID(2_000_000 + i))
		k := record.Key(i * 50)
		if err := reopened.Insert(k, tup); err != nil {
			t.Fatalf("post-reopen insert: %v", err)
		}
		ref.insert(k, tup)
	}
	if err := reopened.Validate(); err != nil {
		t.Fatalf("Validate after post-reopen inserts: %v", err)
	}
	checkVTs(t, reopened, ref, 10_000, 20, 127)

	bad := tree.Meta()
	bad.Height = 7
	if _, err := Open(store, bad); err == nil {
		t.Fatal("Open accepted an inconsistent height")
	}
}
