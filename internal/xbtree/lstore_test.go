package xbtree

import (
	"testing"

	"sae/internal/pagestore"
	"sae/internal/record"
)

func newTestLStore() (*lstore, *pagestore.Counting) {
	counting := pagestore.NewCounting(pagestore.NewMem())
	return newLStore(counting), counting
}

func tuplesOf(ids ...record.ID) []Tuple {
	out := make([]Tuple, len(ids))
	for i, id := range ids {
		out[i] = tupleFor(id)
	}
	return out
}

func sameTuples(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLStoreAllocRead(t *testing.T) {
	s, _ := newTestLStore()
	ts := tuplesOf(1, 2, 3)
	ref, err := s.alloc(nil, ts)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	got, err := s.read(nil, ref)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !sameTuples(got, ts) {
		t.Fatal("read returned different tuples")
	}
}

func TestLStoreSharesPages(t *testing.T) {
	s, _ := newTestLStore()
	refs := make([]listRef, 20)
	for i := range refs {
		ref, err := s.alloc(nil, tuplesOf(record.ID(i)))
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		refs[i] = ref
	}
	// Twenty singleton lists easily fit one shared page.
	if s.pages != 1 {
		t.Fatalf("20 singleton lists used %d pages, want 1", s.pages)
	}
	for i, ref := range refs {
		got, err := s.read(nil, ref)
		if err != nil || len(got) != 1 || got[0].ID != record.ID(i) {
			t.Fatalf("list %d corrupted: %v err=%v", i, got, err)
		}
	}
}

func TestLStoreAppendGrowsInPlaceViaCompaction(t *testing.T) {
	s, _ := newTestLStore()
	ref, err := s.alloc(nil, tuplesOf(1))
	if err != nil {
		t.Fatal(err)
	}
	// Repeated appends leave dead space that compaction must reclaim; all
	// growth fits a single page until near the inline limit.
	want := tuplesOf(1)
	for i := record.ID(2); i <= 60; i++ {
		tup := tupleFor(i)
		want = append(want, tup)
		ref, err = s.appendTuple(nil, ref, tup)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	got, err := s.read(nil, ref)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !sameTuples(got, want) {
		t.Fatal("list content diverged under append churn")
	}
	if s.pages > 2 {
		t.Fatalf("append churn leaked pages: %d", s.pages)
	}
}

func TestLStoreInlineToChainTransition(t *testing.T) {
	s, _ := newTestLStore()
	ts := make([]Tuple, maxInlineTuples)
	for i := range ts {
		ts[i] = tupleFor(record.ID(i + 1))
	}
	ref, err := s.alloc(nil, ts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.slot == chainSlot {
		t.Fatal("list at the inline limit should not be a chain")
	}
	// One more tuple crosses into a chain.
	ref, err = s.appendTuple(nil, ref, tupleFor(record.ID(maxInlineTuples+1)))
	if err != nil {
		t.Fatal(err)
	}
	if ref.slot != chainSlot {
		t.Fatal("list past the inline limit should be a chain")
	}
	got, err := s.read(nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != maxInlineTuples+1 {
		t.Fatalf("chain holds %d tuples, want %d", len(got), maxInlineTuples+1)
	}
	// Removing brings it back inline.
	for i := 0; i < 2; i++ {
		var d = got[len(got)-1-i].ID
		_, ref, err = s.removeTuple(nil, ref, d)
		if err != nil {
			t.Fatal(err)
		}
	}
	if ref.slot == chainSlot {
		t.Fatal("shrunken list should have moved back inline")
	}
}

func TestLStoreChainMultiplePages(t *testing.T) {
	s, _ := newTestLStore()
	n := 2*chainCapacity + 3
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = tupleFor(record.ID(i + 1))
	}
	ref, err := s.allocChain(nil, ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.read(nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("chain read %d tuples, want %d", len(got), n)
	}
	// All tuples present (order may differ across chain operations).
	seen := map[record.ID]bool{}
	for _, tup := range got {
		seen[tup.ID] = true
	}
	if len(seen) != n {
		t.Fatal("chain lost or duplicated tuples")
	}
}

func TestLStoreRemoveMissing(t *testing.T) {
	s, _ := newTestLStore()
	ref, err := s.alloc(nil, tuplesOf(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.removeTuple(nil, ref, 99); err == nil {
		t.Fatal("removeTuple of absent id succeeded")
	}
}

func TestLStoreEmptyListTombstone(t *testing.T) {
	s, _ := newTestLStore()
	ref, err := s.alloc(nil, tuplesOf(7))
	if err != nil {
		t.Fatal(err)
	}
	_, ref, err = s.removeTuple(nil, ref, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.read(nil, ref)
	if err != nil {
		t.Fatalf("read of empty list: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty list read %d tuples", len(got))
	}
	// And it can grow again.
	ref, err = s.appendTuple(nil, ref, tupleFor(8))
	if err != nil {
		t.Fatal(err)
	}
	got, err = s.read(nil, ref)
	if err != nil || len(got) != 1 || got[0].ID != 8 {
		t.Fatalf("regrown list wrong: %v err=%v", got, err)
	}
}

func TestLStoreXorOf(t *testing.T) {
	s, _ := newTestLStore()
	ts := tuplesOf(1, 2, 3, 4)
	ref, err := s.alloc(nil, ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.xorOf(nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := ts[0].Digest.XOR(ts[1].Digest).XOR(ts[2].Digest).XOR(ts[3].Digest)
	if got != want {
		t.Fatal("xorOf mismatch")
	}
}

func TestLStoreManyListsStress(t *testing.T) {
	s, _ := newTestLStore()
	const lists = 2000
	refs := make([]listRef, lists)
	for i := range refs {
		size := 1 + i%5
		ts := make([]Tuple, size)
		for j := range ts {
			ts[j] = tupleFor(record.ID(i*10 + j))
		}
		ref, err := s.alloc(nil, ts)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		refs[i] = ref
	}
	for i, ref := range refs {
		got, err := s.read(nil, ref)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if len(got) != 1+i%5 {
			t.Fatalf("list %d has %d tuples, want %d", i, len(got), 1+i%5)
		}
		for j, tup := range got {
			if tup.ID != record.ID(i*10+j) {
				t.Fatalf("list %d tuple %d corrupted", i, j)
			}
		}
	}
	// Sanity on space usage: ~2000 lists averaging 3 tuples = ~168 KB of
	// payload; the store should not need more than ~60 pages (245 KB).
	if s.pages > 60 {
		t.Fatalf("stress used %d pages, expected tight packing", s.pages)
	}
}

func TestTupleEncodingRoundTrip(t *testing.T) {
	ts := tuplesOf(1, 1<<40, 3)
	buf := make([]byte, len(ts)*TupleSize)
	encodeTuples(buf, ts)
	got := decodeTuples(buf, len(ts))
	if !sameTuples(got, ts) {
		t.Fatal("tuple codec round trip failed")
	}
}

func TestLStoreCapacityConstants(t *testing.T) {
	if maxInlineTuples != 146 {
		t.Fatalf("maxInlineTuples = %d, want 146", maxInlineTuples)
	}
	if chainCapacity != 146 {
		t.Fatalf("chainCapacity = %d, want 146", chainCapacity)
	}
}
