package xbtree

import (
	"fmt"

	"sae/internal/agg"
	"sae/internal/bufpool"
	"sae/internal/digest"
	"sae/internal/pagestore"
	"sae/internal/record"
)

// KeyTuples is a bulk-load item: one distinct search key and the tuples of
// all records carrying it.
type KeyTuples struct {
	Key    record.Key
	Tuples []Tuple
}

// Bulkload builds an XB-Tree from items sorted by strictly ascending key.
// Leaves are packed to capacity with single separator entries pulled up
// between them (the classic bottom-up B-tree build), and all X values are
// computed during construction. This is how the TE indexes the data owner's
// initial transfer.
func Bulkload(store pagestore.Store, items []KeyTuples) (*Tree, error) {
	for i := range items {
		if i > 0 && items[i-1].Key >= items[i].Key {
			return nil, fmt.Errorf("xbtree: bulkload keys not strictly ascending at %d", i)
		}
		if len(items[i].Tuples) == 0 {
			return nil, fmt.Errorf("xbtree: bulkload item %d has no tuples", i)
		}
	}
	if len(items) == 0 {
		return New(store)
	}
	t := &Tree{io: bufpool.NewIO(store, nil), lists: newLStore(store)}

	// Materialize every tuple list up front.
	type loaded struct {
		sk    record.Key
		lref  listRef
		lxor  digest.Digest
		count uint32
	}
	flat := make([]loaded, len(items))
	for i, it := range items {
		lref, err := t.lists.alloc(nil, it.Tuples)
		if err != nil {
			return nil, err
		}
		var acc digest.Accumulator
		for _, tup := range it.Tuples {
			acc.Add(tup.Digest)
		}
		flat[i] = loaded{sk: it.Key, lref: lref, lxor: acc.Sum(), count: uint32(len(it.Tuples))}
		t.tuples += len(it.Tuples)
	}
	t.keys = len(items)

	// Build the leaf level: runs of LeafCapacity entries separated by one
	// pulled-up item each.
	type builtNode struct {
		id   pagestore.PageID
		agg  digest.Digest
		aggA agg.Agg
	}
	var nodes []builtNode
	var seps []loaded
	for i := 0; i < len(flat); {
		chunk := LeafCapacity
		if rem := len(flat) - i; chunk > rem {
			chunk = rem
		}
		if len(flat)-i-chunk == 1 {
			chunk-- // never strand a separator without a right sibling
		}
		n := &xnode{leaf: true}
		for _, it := range flat[i : i+chunk] {
			n.entries = append(n.entries, entry{sk: it.sk, lref: it.lref, x: it.lxor, child: pagestore.InvalidPage, listCount: it.count})
		}
		id, err := t.allocNode(nil, n)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, builtNode{id: id, agg: n.agg(), aggA: n.aggAll()})
		i += chunk
		if i < len(flat) {
			seps = append(seps, flat[i])
			i++
		}
	}

	// Build internal levels until one node remains. seps[k] sits between
	// nodes[k] and nodes[k+1].
	t.height = 1
	for len(nodes) > 1 {
		var upNodes []builtNode
		var upSeps []loaded
		for j := 0; j < len(nodes); {
			rem := len(nodes) - j
			g := InnerCapacity
			if g > rem-1 {
				g = rem - 1
			}
			if rem-(g+1) == 1 {
				g-- // leave the trailing node a sibling and separator
			}
			n := &xnode{leaf: false, e0C: nodes[j].id, e0X: nodes[j].agg, e0Agg: nodes[j].aggA}
			for k := 0; k < g; k++ {
				s := seps[j+k]
				child := nodes[j+k+1]
				n.entries = append(n.entries, entry{
					sk:        s.sk,
					lref:      s.lref,
					x:         s.lxor.XOR(child.agg),
					child:     child.id,
					listCount: s.count,
					childAgg:  child.aggA,
				})
			}
			id, err := t.allocNode(nil, n)
			if err != nil {
				return nil, err
			}
			upNodes = append(upNodes, builtNode{id: id, agg: n.agg(), aggA: n.aggAll()})
			j += g + 1
			if j < len(nodes) {
				upSeps = append(upSeps, seps[j-1])
			}
		}
		nodes, seps = upNodes, upSeps
		t.height++
	}
	t.root = nodes[0].id
	return t, nil
}

// Lookup returns the tuples stored under key, or ok == false if the key has
// never been inserted. Tombstoned keys return an empty slice and ok == true.
func (t *Tree) Lookup(key record.Key) ([]Tuple, bool, error) {
	id := t.root
	for {
		n, err := t.readNode(nil, id)
		if err != nil {
			return nil, false, err
		}
		pos, ok := searchEntries(n.entries, key)
		if ok {
			ts, err := t.lists.read(nil, n.entries[pos].lref)
			return ts, true, err
		}
		if n.leaf {
			return nil, false, nil
		}
		if pos == 0 {
			id = n.e0C
		} else {
			id = n.entries[pos-1].child
		}
	}
}

// Validate checks every structural and cryptographic invariant of the tree:
// strict key ordering within and across nodes, child pointers consistent
// with leaf level, the XB-Tree's defining property — that every entry's X
// equals its list's XOR combined with its child subtree's aggregate — and
// the (COUNT, SUM, MIN, MAX) annotations (listCount against the actual
// list, childAgg/e0.agg against the recomputed subtree aggregate). It
// recomputes everything from the page images, so tests can run it after
// arbitrary operation interleavings.
func (t *Tree) Validate() error {
	tuples := 0
	type subSummary struct {
		x digest.Digest
		a agg.Agg
	}
	var walk func(id pagestore.PageID, level int, lo, hi *record.Key) (subSummary, error)
	walk = func(id pagestore.PageID, level int, lo, hi *record.Key) (subSummary, error) {
		n, err := t.readNode(nil, id)
		if err != nil {
			return subSummary{}, err
		}
		if (level == 1) != n.leaf {
			return subSummary{}, fmt.Errorf("xbtree: node %d leaf flag inconsistent with level %d", id, level)
		}
		for i := range n.entries {
			e := &n.entries[i]
			if i > 0 && n.entries[i-1].sk >= e.sk {
				return subSummary{}, fmt.Errorf("xbtree: node %d keys not strictly ascending at %d", id, i)
			}
			if lo != nil && e.sk <= *lo {
				return subSummary{}, fmt.Errorf("xbtree: node %d key %d violates lower bound %d", id, e.sk, *lo)
			}
			if hi != nil && e.sk >= *hi {
				return subSummary{}, fmt.Errorf("xbtree: node %d key %d violates upper bound %d", id, e.sk, *hi)
			}
		}
		var acc digest.Accumulator
		var agr agg.Agg
		if n.leaf {
			for i := range n.entries {
				e := &n.entries[i]
				if e.child != pagestore.InvalidPage {
					return subSummary{}, fmt.Errorf("xbtree: leaf %d entry %d has a child", id, i)
				}
				ts, err := t.lists.read(nil, e.lref)
				if err != nil {
					return subSummary{}, err
				}
				tuples += len(ts)
				var lx digest.Accumulator
				for _, tup := range ts {
					lx.Add(tup.Digest)
				}
				if e.x != lx.Sum() {
					return subSummary{}, fmt.Errorf("xbtree: leaf %d entry sk=%d X != L⊕", id, e.sk)
				}
				if int(e.listCount) != len(ts) {
					return subSummary{}, fmt.Errorf("xbtree: leaf %d entry sk=%d listCount=%d, list has %d", id, e.sk, e.listCount, len(ts))
				}
				acc.Add(e.x)
				agr = agr.Merge(e.ownAgg())
			}
			return subSummary{x: acc.Sum(), a: agr}, nil
		}
		// e0 covers keys below the first entry.
		var e0Hi *record.Key
		if len(n.entries) > 0 {
			e0Hi = &n.entries[0].sk
		} else {
			e0Hi = hi
		}
		sub, err := walk(n.e0C, level-1, lo, e0Hi)
		if err != nil {
			return subSummary{}, err
		}
		if n.e0X != sub.x {
			return subSummary{}, fmt.Errorf("xbtree: node %d e0.X mismatch", id)
		}
		if n.e0Agg.Normalize() != sub.a.Normalize() {
			return subSummary{}, fmt.Errorf("xbtree: node %d e0 annotation %v, subtree is %v", id, n.e0Agg, sub.a)
		}
		acc.Add(n.e0X)
		agr = agr.Merge(sub.a)
		for i := range n.entries {
			e := &n.entries[i]
			ts, err := t.lists.read(nil, e.lref)
			if err != nil {
				return subSummary{}, err
			}
			tuples += len(ts)
			var lx digest.Accumulator
			for _, tup := range ts {
				lx.Add(tup.Digest)
			}
			if int(e.listCount) != len(ts) {
				return subSummary{}, fmt.Errorf("xbtree: node %d entry sk=%d listCount=%d, list has %d", id, e.sk, e.listCount, len(ts))
			}
			var nextHi *record.Key
			if i+1 < len(n.entries) {
				nextHi = &n.entries[i+1].sk
			} else {
				nextHi = hi
			}
			sub, err := walk(e.child, level-1, &e.sk, nextHi)
			if err != nil {
				return subSummary{}, err
			}
			if want := lx.Sum().XOR(sub.x); e.x != want {
				return subSummary{}, fmt.Errorf("xbtree: node %d entry sk=%d X invariant violated", id, e.sk)
			}
			if e.childAgg.Normalize() != sub.a.Normalize() {
				return subSummary{}, fmt.Errorf("xbtree: node %d entry sk=%d annotation %v, subtree is %v", id, e.sk, e.childAgg, sub.a)
			}
			acc.Add(e.x)
			agr = agr.Merge(e.ownAgg()).Merge(sub.a)
		}
		return subSummary{x: acc.Sum(), a: agr}, nil
	}
	if _, err := walk(t.root, t.height, nil, nil); err != nil {
		return err
	}
	if tuples != t.tuples {
		return fmt.Errorf("xbtree: walked %d tuples, tree says %d", tuples, t.tuples)
	}
	return nil
}
