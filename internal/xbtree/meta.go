package xbtree

import (
	"fmt"

	"sae/internal/bufpool"
	"sae/internal/pagestore"
)

// Meta is the XB-Tree's out-of-page state for persistence: tree anchors,
// counters and the tuple-list allocator's fill page.
type Meta struct {
	Root      pagestore.PageID
	Height    int
	Nodes     int
	Tuples    int
	Keys      int
	ListPages int
	FillPage  pagestore.PageID
}

// Meta captures the tree's current metadata.
func (t *Tree) Meta() Meta {
	return Meta{
		Root:      t.root,
		Height:    t.height,
		Nodes:     t.nodes,
		Tuples:    t.tuples,
		Keys:      t.keys,
		ListPages: t.lists.pages,
		FillPage:  t.lists.fillPage,
	}
}

// Open reattaches an XB-Tree to a store that already contains its pages.
func Open(store pagestore.Store, m Meta) (*Tree, error) {
	if m.Height < 1 {
		return nil, fmt.Errorf("xbtree: invalid meta height %d", m.Height)
	}
	t := &Tree{
		io:     bufpool.NewIO(store, nil),
		lists:  &lstore{store: store, fillPage: m.FillPage, pages: m.ListPages},
		root:   m.Root,
		height: m.Height,
		nodes:  m.Nodes,
		tuples: m.Tuples,
		keys:   m.Keys,
	}
	// Sanity probe: the leftmost path must reach a leaf exactly at level 1.
	id := t.root
	for level := m.Height; ; level-- {
		n, err := t.readNode(nil, id)
		if err != nil {
			return nil, fmt.Errorf("xbtree: opening level %d: %w", level, err)
		}
		if n.leaf != (level == 1) {
			return nil, fmt.Errorf("xbtree: meta height %d inconsistent with node depth", m.Height)
		}
		if n.leaf {
			break
		}
		id = n.e0C
	}
	return t, nil
}
